// Command benchjson turns `go test -bench` output into a checked-in JSON
// artifact (BENCH_<pr>.json), so benchmark numbers are comparable across
// PRs instead of living only in ROADMAP prose. It reads the benchmark
// stream on stdin, echoes every line through to stdout unchanged (the
// human-readable output stays visible in CI logs), and writes one JSON
// document mapping benchmark → ns/op, allocs, and the host fingerprint
// (GOOS/GOARCH, CPU line, GOMAXPROCS, Go version).
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH_6.json
//
// Exits nonzero when the stream contains a FAIL line or no benchmark
// results at all, so a broken bench run cannot silently produce an empty
// artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCheckSumStar-8   100   16500000 ns/op   1234 B/op   56 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output JSON file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required")
		os.Exit(2)
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var (
		pkg    string
		failed bool
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: ") && report.CPU == "":
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL in benchmark stream")
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}
