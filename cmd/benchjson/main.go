// Command benchjson turns `go test -bench` output into a checked-in JSON
// artifact (BENCH_<pr>.json), so benchmark numbers are comparable across
// PRs instead of living only in ROADMAP prose. It reads the benchmark
// stream on stdin, echoes every line through to stdout unchanged (the
// human-readable output stays visible in CI logs), and writes one JSON
// document mapping benchmark → ns/op, allocs, and the host fingerprint
// (GOOS/GOARCH, CPU line, GOMAXPROCS, Go version).
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH_6.json
//
// Exits nonzero when the stream contains a FAIL line or no benchmark
// results at all, so a broken bench run cannot silently produce an empty
// artifact.
//
// Diff mode compares two artifacts (the bench gate in CI):
//
//	benchjson -diff -threshold 15 BENCH_6.json BENCH_7.json
//
// It flags every non-parallel benchmark whose cost regressed by more than
// the threshold percentage between the two reports and exits 1 when any
// regression is found. Because the checked-in artifacts are single-
// iteration runs (-benchtime=1x), wall time is a one-sample estimate:
// ns/op regressions are flagged but only fail the gate when the
// deterministic allocs/op count regressed too, or when the time blew past
// 4× the threshold — a structural slowdown, not scheduler noise.
// Benchmarks with "Parallel" in the name are skipped entirely (their
// cost is scheduling, not work), as are benchmarks present in only one
// report. When the two reports carry different host fingerprints
// (Go version, GOOS/GOARCH, CPU, GOMAXPROCS) the comparison would be
// meaningless, so the gate prints the mismatch and exits 0.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkCheckSumStar-8   100   16500000 ns/op   1234 B/op   56 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output JSON file (required unless -diff)")
	diff := flag.Bool("diff", false, "compare two artifacts: benchjson -diff [-threshold pct] OLD NEW")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent for -diff")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifact paths")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required")
		os.Exit(2)
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var (
		pkg    string
		failed bool
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: ") && report.CPU == "":
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL in benchmark stream")
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// fingerprint is the host identity a comparison is only meaningful
// within.
func (r *Report) fingerprint() string {
	return fmt.Sprintf("%s %s/%s %q gomaxprocs=%d", r.GoVersion, r.GOOS, r.GOARCH, r.CPU, r.GOMAXPROCS)
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// pctChange returns the percentage change from old to new; a zero old
// value compares as unchanged (nothing meaningful to gate on).
func pctChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// runDiff is the bench gate: it compares every non-parallel benchmark
// present in both artifacts and returns the process exit code. A
// benchmark fails the gate when its deterministic allocs/op count
// regressed past the threshold, or its ns/op regressed past 4× the
// threshold (single-iteration artifacts make moderate time swings
// noise); ns/op regressions past the plain threshold are printed as
// warnings either way.
func runDiff(oldPath, newPath string, threshold float64) int {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cur, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if of, nf := old.fingerprint(), cur.fingerprint(); of != nf {
		fmt.Printf("benchjson: host fingerprints differ, skipping bench gate\n  %s: %s\n  %s: %s\n",
			oldPath, of, newPath, nf)
		return 0
	}
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Package+"."+r.Name] = r
	}
	var compared, failed, warned int
	for _, r := range cur.Benchmarks {
		if strings.Contains(r.Name, "Parallel") {
			continue
		}
		o, ok := prev[r.Package+"."+r.Name]
		if !ok {
			continue
		}
		compared++
		nsPct := pctChange(o.NsPerOp, r.NsPerOp)
		allocPct := pctChange(float64(o.AllocsPerOp), float64(r.AllocsPerOp))
		switch {
		case allocPct > threshold:
			failed++
			fmt.Printf("FAIL %s: allocs/op %d -> %d (%+.1f%%), ns/op %.0f -> %.0f (%+.1f%%)\n",
				r.Name, o.AllocsPerOp, r.AllocsPerOp, allocPct, o.NsPerOp, r.NsPerOp, nsPct)
		case nsPct > 4*threshold:
			failed++
			fmt.Printf("FAIL %s: ns/op %.0f -> %.0f (%+.1f%%)\n", r.Name, o.NsPerOp, r.NsPerOp, nsPct)
		case nsPct > threshold:
			warned++
			fmt.Printf("warn %s: ns/op %.0f -> %.0f (%+.1f%%)\n", r.Name, o.NsPerOp, r.NsPerOp, nsPct)
		}
	}
	fmt.Printf("benchjson: compared %d benchmarks (%s -> %s): %d failed, %d warned\n",
		compared, oldPath, newPath, failed, warned)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no comparable benchmarks between artifacts")
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}
