package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, r Report) string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseReport(benches ...Result) Report {
	return Report{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		CPU: "test cpu", GOMAXPROCS: 1, Benchmarks: benches,
	}
}

// TestRunDiffGate pins the bench gate's verdicts: deterministic allocs/op
// regressions and ns/op blowups past 4× the threshold fail, moderate
// ns/op swings only warn, parallel benchmarks and host mismatches are
// skipped.
func TestRunDiffGate(t *testing.T) {
	dir := t.TempDir()
	old := baseReport(
		Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: 100},
		Result{Name: "BenchmarkB", Package: "p", NsPerOp: 1000, AllocsPerOp: 100},
		Result{Name: "BenchmarkParallelC", Package: "p", NsPerOp: 1000, AllocsPerOp: 100},
	)
	oldPath := writeReport(t, dir, "old.json", old)

	cases := []struct {
		name string
		cur  Report
		want int
	}{
		{"unchanged", old, 0},
		{"allocs regression fails", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: 120},
		), 1},
		{"moderate ns swing warns only", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1400, AllocsPerOp: 100},
		), 0},
		{"ns blowup past 4x threshold fails", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1700, AllocsPerOp: 100},
		), 1},
		{"parallel benchmarks exempt", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: 100},
			Result{Name: "BenchmarkParallelC", Package: "p", NsPerOp: 9000, AllocsPerOp: 900},
		), 0},
		{"new benchmarks uncompared", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 1000, AllocsPerOp: 100},
			Result{Name: "BenchmarkNew", Package: "p", NsPerOp: 5, AllocsPerOp: 5},
		), 0},
		{"improvements pass", baseReport(
			Result{Name: "BenchmarkA", Package: "p", NsPerOp: 200, AllocsPerOp: 10},
			Result{Name: "BenchmarkB", Package: "p", NsPerOp: 100, AllocsPerOp: 1},
		), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			curPath := writeReport(t, dir, "new.json", tc.cur)
			if got := runDiff(oldPath, curPath, 15); got != tc.want {
				t.Errorf("runDiff = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestRunDiffHostMismatch: artifacts from different hosts are
// incomparable; the gate must pass without judging anything.
func TestRunDiffHostMismatch(t *testing.T) {
	dir := t.TempDir()
	old := baseReport(Result{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: 10})
	cur := baseReport(Result{Name: "BenchmarkA", Package: "p", NsPerOp: 9999, AllocsPerOp: 999})
	cur.CPU = "a different cpu"
	oldPath := writeReport(t, dir, "old.json", old)
	curPath := writeReport(t, dir, "new.json", cur)
	if got := runDiff(oldPath, curPath, 15); got != 0 {
		t.Errorf("host-mismatched diff = %d, want 0 (graceful skip)", got)
	}
}

// TestRunDiffNoOverlap: two artifacts with no benchmark in common is a
// broken gate (wrong files), not a pass.
func TestRunDiffNoOverlap(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", baseReport(
		Result{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: 10}))
	curPath := writeReport(t, dir, "new.json", baseReport(
		Result{Name: "BenchmarkZ", Package: "p", NsPerOp: 100, AllocsPerOp: 10}))
	if got := runDiff(oldPath, curPath, 15); got != 1 {
		t.Errorf("no-overlap diff = %d, want 1", got)
	}
}
