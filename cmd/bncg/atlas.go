package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/atlas"
)

// cmdAtlas dispatches the equilibrium-atlas subcommands:
//
//	bncg atlas hunt   -dir testdata/atlas [-seed 1] [-quick] [-nearmiss 16]
//	bncg atlas verify -dir testdata/atlas
//	bncg atlas stats  -dir testdata/atlas
//
// hunt runs the bounded deterministic search (families, exhaustive small
// trees, dynamics-converged positions, perturbed near-misses) and writes
// the corpus; verify re-certifies every checked-in entry bit-for-bit
// through both checker paths; stats renders the per-model structure
// tables.
func cmdAtlas(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("atlas: usage: bncg atlas hunt|verify|stats [flags]")
	}
	switch args[0] {
	case "hunt":
		return cmdAtlasHunt(args[1:])
	case "verify":
		return cmdAtlasVerify(args[1:])
	case "stats":
		return cmdAtlasStats(args[1:])
	default:
		return fmt.Errorf("atlas: unknown subcommand %q (want hunt, verify, or stats)", args[0])
	}
}

func cmdAtlasHunt(args []string) error {
	fs := flag.NewFlagSet("atlas hunt", flag.ExitOnError)
	dir := fs.String("dir", "testdata/atlas", "corpus directory to write")
	seed := fs.Int64("seed", 1, "hunt seed (same seed ⇒ byte-identical corpus)")
	quick := fs.Bool("quick", false, "smoke-sized hunt (small families only)")
	nearMiss := fs.Int("nearmiss", 16, "max near-miss counterexamples to record")
	workers := fs.Int("workers", 0, "pricing workers (0 = all cores; verdicts identical for any count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := atlas.Hunt(atlas.HuntConfig{
		Seed: *seed, Workers: *workers, Quick: *quick, MaxNearMisses: *nearMiss,
	})
	if err != nil {
		return err
	}
	if err := c.Write(*dir); err != nil {
		return err
	}
	printSummary(os.Stdout, atlas.Summarize(c), *dir)
	return nil
}

func cmdAtlasVerify(args []string) error {
	fs := flag.NewFlagSet("atlas verify", flag.ExitOnError)
	dir := fs.String("dir", "testdata/atlas", "corpus directory to verify")
	workers := fs.Int("workers", 0, "pricing workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := atlas.Verify(*dir, *workers)
	if err != nil {
		return err
	}
	s := atlas.Summarize(c)
	fmt.Printf("atlas verify: %d entries re-certified bit-identically (%d equilibria, %d near-misses)\n",
		s.Entries, s.Equilibria, s.NearMisses)
	return nil
}

func cmdAtlasStats(args []string) error {
	fs := flag.NewFlagSet("atlas stats", flag.ExitOnError)
	dir := fs.String("dir", "testdata/atlas", "corpus directory to analyze")
	workers := fs.Int("workers", 0, "APSP workers for the uniformity profiles (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := atlas.Read(*dir)
	if err != nil {
		return err
	}
	tables, err := atlas.StatsTables(c, *workers)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func printSummary(w *os.File, s atlas.Summary, dir string) {
	fmt.Fprintf(w, "atlas hunt: %d entries written to %s (%d equilibria, %d near-misses)\n",
		s.Entries, dir, s.Equilibria, s.NearMisses)
	models := make([]string, 0, len(s.Models))
	for m := range s.Models {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		fmt.Fprintf(w, "  %-10s %d\n", m, s.Models[m])
	}
	objs := make([]string, 0, len(s.Objectives))
	for o := range s.Objectives {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	for _, o := range objs {
		fmt.Fprintf(w, "  obj %-6s %d\n", o, s.Objectives[o])
	}
}
