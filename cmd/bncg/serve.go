package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	bncg "repro"
	"repro/internal/atlas"
	"repro/internal/game"
	"repro/internal/serve"
)

// newAPI resolves where check / dynamics requests go: a remote server when
// -server is set, otherwise an in-process serve.Server — the identical
// code path minus the HTTP transport.
func newAPI(serverURL string, workers int) serve.API {
	if serverURL != "" {
		return serve.NewClient(serverURL)
	}
	srv, err := serve.NewServer(serve.Config{
		CacheSize:      -1, // one-shot runs gain nothing from a verdict LRU
		MaxWorkers:     workers,
		DefaultTimeout: -1,
	})
	if err != nil {
		// Unreachable: only a configured store path can fail, and the
		// in-process one-shot config never sets one.
		panic(err)
	}
	return srv
}

// modelDTOFromFlags resolves the -model / -edgecost / -interests / -budget
// flags into the wire ModelDTO shared with the service. Interest sets load
// from a graphio.ReadInterests file; with no file, random sets are drawn
// from the run's seed (p = 0.3), exactly as the pre-service CLI did.
func modelDTOFromFlags(name string, n int, edgeCost int64, interestsPath string, budget int, seed int64) (serve.ModelDTO, error) {
	switch name {
	case "swap":
		return serve.ModelDTO{}, nil
	case "greedy":
		return serve.ModelDTO{Name: "greedy", EdgeCost: edgeCost}, nil
	case "budget":
		return serve.ModelDTO{Name: "budget", Budget: budget}, nil
	case "2nb", "twonb":
		return serve.ModelDTO{Name: "2nb"}, nil
	case "interests":
		if interestsPath == "" {
			rng := rand.New(rand.NewSource(seed ^ 0x1e7e5e57)) // decouple from the start-graph draw
			return serve.ModelDTO{Name: "interests", Interests: game.RandomInterests(n, 0.3, rng).Sets()}, nil
		}
		f, err := os.Open(interestsPath)
		if err != nil {
			return serve.ModelDTO{}, err
		}
		defer f.Close()
		sets, err := bncg.ReadInterests(f)
		if err != nil {
			return serve.ModelDTO{}, err
		}
		if len(sets) != n {
			return serve.ModelDTO{}, fmt.Errorf("interests file declares %d vertices, run has n=%d", len(sets), n)
		}
		return serve.ModelDTO{Name: "interests", Interests: sets}, nil
	default:
		return serve.ModelDTO{}, fmt.Errorf("unknown model %q", name)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8347", "listen address")
	pool := fs.Int("pool", 0, "concurrent session slots (0 = 2×cores); excess requests queue")
	cacheSize := fs.Int("cache", 0, "verdict LRU entries (0 = default 512, negative disables)")
	maxN := fs.Int("maxn", 0, "largest accepted graph (0 = default 4096)")
	maxMoves := fs.Int("maxmoves", 0, "dynamics move-budget ceiling (0 = default 100000)")
	workers := fs.Int("workers", 0, "per-request pricing-worker cap and default (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "default per-request deadline (0 = 30s, negative = none)")
	store := fs.String("store", "", "persistent verdict store: JSONL journal path, replayed at boot and appended on every certification (empty disables)")
	storeSeed := fs.String("storeseed", "", "warm-start the store from an atlas corpus (atlas.jsonl file or its directory; read-only)")
	storeFsync := fs.Int("storefsync", 0, "journal fsync policy: 0 every append, N every Nth, negative never")
	storeMax := fs.Int64("storemax", 0, "compact the journal past this many bytes (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.Config{
		Addr:            *addr,
		PoolSize:        *pool,
		CacheSize:       *cacheSize,
		MaxN:            *maxN,
		MaxMoves:        *maxMoves,
		MaxWorkers:      *workers,
		DefaultTimeout:  *timeout,
		StorePath:       *store,
		StoreSeed:       *storeSeed,
		StoreFsyncEvery: *storeFsync,
		StoreMaxBytes:   *storeMax,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	cfg := srv.Config()
	fmt.Fprintf(os.Stderr, "bncg serve: listening on %s (pool=%d cache=%d maxn=%d workers=%d)\n",
		cfg.Addr, cfg.PoolSize, cfg.CacheSize, cfg.MaxN, cfg.MaxWorkers)
	if cfg.StorePath != "" {
		fmt.Fprintf(os.Stderr, "bncg serve: verdict store at %s (%d verdicts warm)\n",
			cfg.StorePath, srv.Stats().Store.Entries)
	}
	return srv.ListenAndServe()
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "", "server base URL; empty boots an in-process server on a loopback port")
	k := fs.Int("k", 8, "concurrent clients")
	rounds := fs.Int("rounds", 2, "corpus replays per client")
	seed := fs.Int64("seed", 1, "corpus seed (also selects the atlas sample)")
	atlasDir := fs.String("atlas", "testdata/atlas", "equilibrium-atlas corpus directory to seed extra scenarios from (empty disables; a missing directory is skipped with a notice)")
	atlasMax := fs.Int("atlasmax", 48, "max atlas scenarios to replay (<= 0 replays the whole corpus)")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON")
	dup := fs.Bool("dup", false, "duplicate-heavy mode: all clients fire identical requests simultaneously per scenario, reporting the coalescing rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var extra []serve.Scenario
	if *atlasDir != "" {
		var err error
		extra, err = atlas.LoadScenarios(*atlasDir, *atlasMax, *seed)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "bncg load: no atlas corpus at %s, replaying the built-in mix only\n", *atlasDir)
		case err != nil:
			return err
		default:
			fmt.Fprintf(os.Stderr, "bncg load: seeded %d scenarios from the atlas corpus at %s\n", len(extra), *atlasDir)
		}
	}

	baseURL := *url
	if baseURL == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := serve.NewServer(serve.Config{})
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "bncg load: booted in-process server at %s\n", baseURL)
	}

	opts := serve.LoadOptions{Clients: *k, Rounds: *rounds, Seed: *seed, Extra: extra}
	if *dup {
		report, err := serve.RunDuplicateLoad(context.Background(), baseURL, opts)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				return err
			}
		} else {
			printDuplicateReport(report)
		}
		if len(report.Failures) > 0 {
			return fmt.Errorf("load -dup: %d of %d responses failed or diverged from the one-shot path",
				len(report.Failures), report.Requests)
		}
		return nil
	}

	report, err := serve.RunLoad(context.Background(), baseURL, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printLoadReport(report)
	}
	if len(report.Failures) > 0 {
		return fmt.Errorf("load: %d of %d responses failed or diverged from the one-shot path",
			len(report.Failures), report.Requests)
	}
	return nil
}

func printDuplicateReport(r *serve.DuplicateReport) {
	rps := float64(r.Requests) / (float64(r.DurationMS) / 1000)
	fmt.Printf("load -dup: %d clients × %d distinct scenarios, %d requests in %v (%.0f req/s), %d failures\n",
		r.Clients, r.Scenarios, r.Requests, r.Duration.Round(time.Millisecond), rps, len(r.Failures))
	fmt.Printf("  coalescing    %d leaders, %d coalesced (rate %.1f%%)\n",
		r.Leaders, r.Coalesced, 100*r.CoalesceRate)
	c := r.Stats.Cache
	fmt.Printf("  verdict LRU   %d hits / %d misses (hit rate %.1f%%), %d entries\n",
		c.Hits, c.Misses, 100*c.HitRate, c.Entries)
	for _, f := range r.Failures {
		fmt.Printf("  FAIL %s\n", f)
	}
}

func printLoadReport(r *serve.LoadReport) {
	rps := float64(r.Requests) / (float64(r.DurationMS) / 1000)
	fmt.Printf("load: %d clients × %d rounds, %d requests in %v (%.0f req/s), %d failures\n",
		r.Clients, r.Rounds, r.Requests, r.Duration.Round(time.Millisecond), rps, len(r.Failures))
	names := make([]string, 0, len(r.Stats.Endpoints))
	for name := range r.Stats.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := r.Stats.Endpoints[name]
		fmt.Printf("  %-15s %5d requests  %3d errors  mean %7.2fms  max %7.2fms\n",
			name, ep.Requests, ep.Errors, ep.MeanLatencyMS, ep.MaxLatencyMS)
	}
	c := r.Stats.Cache
	fmt.Printf("  verdict LRU   %d hits / %d misses (hit rate %.1f%%), %d entries\n",
		c.Hits, c.Misses, 100*c.HitRate, c.Entries)
	co := r.Stats.Coalesce
	if co.Leaders+co.Coalesced > 0 {
		fmt.Printf("  coalescing    %d leaders, %d coalesced (rate %.1f%%)\n",
			co.Leaders, co.Coalesced, 100*co.Rate)
	}
	if st := r.Stats.Store; st != nil {
		fmt.Printf("  verdict store %d hits, %d appends, %d entries\n", st.Hits, st.Appends, st.Entries)
	}
	for _, f := range r.Failures {
		fmt.Printf("  FAIL %s\n", f)
	}
}
