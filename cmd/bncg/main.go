// Command bncg is the CLI for the basic network creation game library:
//
//	bncg construct  -family torus -k 5 -format edgelist|graph6|dot [-o file]
//	bncg check      -in graph.txt [-format edgelist|graph6] [-obj sum|max]
//	bncg dynamics   -n 40 -init tree|chords [-obj sum|max] [-policy best|first|random]
//	                [-model swap|greedy|interests|budget|2nb] [-edgecost 2]
//	                [-interests file] [-budget 3] [-seed 1]
//	bncg experiments [-id E5] [-quick] [-seed 1]
//	bncg serve      [-addr :8347] [-pool 16] [-cache 512] [-timeout 30s]
//	bncg load       [-url http://host:8347] [-k 8] [-rounds 2] [-atlas dir] [-json]
//	bncg atlas      hunt|verify|stats [-dir testdata/atlas] [-seed 1]
//
// `construct` emits one of the paper's graphs, `check` runs every
// equilibrium and stability predicate on an input graph, `dynamics` runs
// move dynamics from a random start under the selected deviation model
// (the basic game's swap, greedy add/delete/swap, communication
// interests, bounded edge budgets, or 2-neighborhood maximization) and
// certifies the result, and `experiments` regenerates the paper's tables
// (see EXPERIMENTS.md). `serve` exposes check / best-response / dynamics
// as a long-lived HTTP+JSON service on a warm session pool with a
// certified-verdict LRU; `check` and `dynamics` are thin clients of the
// same code path (in process by default, remote with -server). `load`
// replays a mixed scenario corpus against a server from k concurrent
// clients and verifies every verdict bit-for-bit against the one-shot
// path.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	bncg "repro"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/experiments"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "construct":
		err = cmdConstruct(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "dynamics":
		err = cmdDynamics(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "proofs":
		err = cmdProofs(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "atlas":
		err = cmdAtlas(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bncg: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bncg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bncg <command> [flags]

commands:
  construct    build one of the paper's graphs (star, doublestar, fig3,
               repaired, torus, multitorus, cycle, path, complete, hypercube)
  check        run equilibrium + stability predicates on a graph file
  dynamics     run move dynamics (swap|greedy|interests|budget|2nb) from a
               random start and certify the result
  experiments  regenerate the paper's tables (E1..E19)
  proofs       construct the Theorem 1 / Lemma 2 improving moves for a graph
  serve        long-lived HTTP equilibrium service (check / best-response /
               dynamics on a warm session pool with a certified-verdict LRU)
  load         replay the mixed scenario corpus against a server from k
               concurrent clients, verifying every verdict bit-for-bit
  atlas        equilibrium atlas: hunt (bounded deterministic search for
               certified equilibria), verify (re-certify the checked-in
               corpus bit-for-bit), stats (per-model structure tables)

run 'bncg <command> -h' for flags`)
}

func buildFamily(family string, n, k, d, left, right int) (*graph.Graph, error) {
	switch family {
	case "star":
		return bncg.Star(n), nil
	case "path":
		return bncg.Path(n), nil
	case "cycle":
		return bncg.Cycle(n), nil
	case "complete":
		return bncg.Complete(n), nil
	case "hypercube":
		return bncg.Hypercube(d), nil
	case "doublestar":
		return bncg.DoubleStar(left, right), nil
	case "fig3":
		return bncg.Fig3(), nil
	case "repaired":
		if k < 4 {
			k = 4
		}
		return bncg.DiameterThreeSumEquilibrium(k), nil
	case "torus":
		return bncg.NewTorus(k).Graph(), nil
	case "multitorus":
		return bncg.NewMultiTorus(d, k).Graph(), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func cmdConstruct(args []string) error {
	fs := flag.NewFlagSet("construct", flag.ExitOnError)
	family := fs.String("family", "torus", "graph family")
	n := fs.Int("n", 10, "vertex count (families parameterized by n)")
	k := fs.Int("k", 4, "torus half-period / repaired branch count")
	d := fs.Int("d", 3, "dimension (hypercube, multitorus)")
	left := fs.Int("left", 2, "double star left leaves")
	right := fs.Int("right", 2, "double star right leaves")
	format := fs.String("format", "edgelist", "edgelist|graph6|dot")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildFamily(*family, *n, *k, *d, *left, *right)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		return bncg.WriteEdgeList(w, g)
	case "graph6":
		s, err := bncg.ToGraph6(g)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, s)
		return err
	case "dot":
		var labels map[int]string
		if *family == "fig3" {
			labels = bncg.Fig3Labels()
		}
		_, err := fmt.Fprint(w, bncg.ToDOT(g, *family, labels))
		return err
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func readGraph(path, format string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "graph6" {
		buf := make([]byte, 1<<20)
		n, _ := f.Read(buf)
		return bncg.FromGraph6(strings.TrimSpace(string(buf[:n])))
	}
	return bncg.ReadEdgeList(f)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	format := fs.String("format", "edgelist", "edgelist|graph6|sparse6")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	batched := fs.Bool("batched", false, "equilibrium checks via the batched cross-agent sweep (same verdicts/witnesses; reuses endpoint BFS rows across agents, O(n²) transient memory)")
	server := fs.String("server", "", "base URL of a running `bncg serve` to check against; empty runs the identical code path in process")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("check: -in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	dto := serve.GraphDTO{Format: *format, Data: string(data)}
	g, err := dto.Decode()
	if err != nil {
		return err
	}
	diam, connected := g.Diameter()
	fmt.Printf("graph: n=%d m=%d connected=%v", g.N(), g.M(), connected)
	if connected {
		girth := "acyclic"
		if gv, ok := g.Girth(); ok {
			girth = fmt.Sprint(gv)
		}
		fmt.Printf(" diameter=%d girth=%s", diam, girth)
	}
	fmt.Println()
	if !connected {
		return fmt.Errorf("predicates need a connected graph")
	}

	report := func(name string, ok bool, viol *core.Violation, err error) {
		if err != nil {
			fmt.Printf("%-22s error: %v\n", name, err)
			return
		}
		if ok {
			fmt.Printf("%-22s yes\n", name)
		} else {
			fmt.Printf("%-22s no   (%v)\n", name, viol)
		}
	}
	// The equilibrium checks ride the service DTOs — in process or against
	// a remote server, the same request shape and engine path either way.
	api := newAPI(*server, *workers)
	equilibrium := func(objective string) (bool, *core.Violation, error) {
		resp, err := api.Check(context.Background(), serve.CheckRequest{
			Graph: dto, Objective: objective, Batched: *batched, Workers: *workers,
		})
		if err != nil {
			return false, nil, err
		}
		return resp.Stable, resp.Violation.Violation(), nil
	}
	ok, viol, err := equilibrium("sum")
	report("sum equilibrium", ok, viol, err)
	ok, viol, err = equilibrium("max")
	report("max equilibrium", ok, viol, err)
	// Insertion stability and deletion criticality are local predicates
	// outside the service surface.
	ok, viol, err = core.IsInsertionStable(g, *workers)
	report("insertion-stable", ok, viol, err)
	ok, viol, err = core.IsDeletionCritical(g, *workers)
	report("deletion-critical", ok, viol, err)
	spread, err := core.LocalDiameterSpread(g)
	if err == nil {
		fmt.Printf("%-22s %d\n", "local diam spread", spread)
	}
	return nil
}

func cmdDynamics(args []string) error {
	fs := flag.NewFlagSet("dynamics", flag.ExitOnError)
	n := fs.Int("n", 40, "vertex count")
	initKind := fs.String("init", "tree", "tree|chords (tree plus n/4 chords)")
	obj := fs.String("obj", "sum", "sum|max")
	policy := fs.String("policy", "best", "best|first|random")
	model := fs.String("model", "swap", "deviation model: swap|greedy|interests|budget|2nb")
	edgeCost := fs.Int64("edgecost", game.DefaultEdgeCost, "greedy model: per-incident-edge maintenance price")
	interests := fs.String("interests", "", "interests model: interest-set file (graphio format); empty = random sets (p=0.3) from the seed")
	budget := fs.Int("budget", game.DefaultBudget, "budget model: uniform per-vertex edge budget k (re-points must target a vertex with deg < k)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "pricing workers for every policy, including the random policy's certification sweeps (0 = all cores; trajectories are identical for any count)")
	batched := fs.Bool("batched", false, "certification sweeps via the batched cross-agent pass, with shared rows persisted in the session's row cache across sweeps (identical trajectories; trades O(n²) resident memory for fewer BFS; every BFS-priced model has one, greedy included — only 2nb and naive oracles fall back per agent, reported as batched=fallback)")
	trace := fs.Bool("trace", false, "print every applied move")
	stream := fs.Bool("stream", false, "run over the streaming endpoint, printing moves as they are applied (NDJSON /v1/dynamics/stream when -server is set)")
	server := fs.String("server", "", "base URL of a running `bncg serve` to run on; empty runs the identical code path in process")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	g := bncg.RandomTree(*n, rng)
	if *initKind == "chords" {
		for i := 0; i < *n/4; i++ {
			u, v := rng.Intn(*n), rng.Intn(*n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	objective := "sum"
	if *obj == "max" {
		objective = "max"
	}
	var pol dynamics.Policy
	switch *policy {
	case "best":
		pol = dynamics.BestResponse
	case "first":
		pol = dynamics.FirstImprovement
	case "random":
		pol = dynamics.RandomImproving
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	mdto, err := modelDTOFromFlags(*model, *n, *edgeCost, *interests, *budget, *seed)
	if err != nil {
		return err
	}
	mdl, err := mdto.Build(*n)
	if err != nil {
		return err
	}
	dto, err := serve.EncodeGraph(g, serve.FormatSparse6)
	if err != nil {
		return err
	}
	before, _ := g.Diameter()
	mBefore := g.M()
	// The run itself is a service request — in process or remote, the same
	// DTOs and the same engine path as `bncg serve`. Certify asks the
	// server for a fresh one-shot stability check of the final graph.
	api := newAPI(*server, *workers)
	req := serve.DynamicsRequest{
		Graph: dto, Model: mdto, Objective: objective, Policy: *policy,
		Seed: *seed, Batched: *batched, Workers: *workers,
		Trace: *trace, Certify: true,
	}
	var res *serve.DynamicsResponse
	if *stream {
		// The streaming path prints moves as the run applies them, so a
		// long convergence shows progress instead of a silent wait.
		res, err = api.DynamicsStream(context.Background(), req, func(ev serve.StreamEvent) error {
			switch ev.Event {
			case serve.StreamMove:
				fmt.Printf("move %3d: %v cost %d→%d\n",
					ev.Move.MoveRank, ev.Move.Move.Move(), ev.Move.OldCost, ev.Move.NewCost)
			case serve.StreamHeartbeat:
				fmt.Fprintf(os.Stderr, "… %d moves, %.1fs\n", ev.Moves, float64(ev.ElapsedMS)/1000)
			}
			return nil
		})
	} else {
		res, err = api.Dynamics(context.Background(), req)
	}
	if err != nil {
		return err
	}
	if *trace && !*stream {
		for _, e := range res.Trace {
			fmt.Printf("move %3d: %v cost %d→%d\n", e.MoveRank, e.Move.Move(), e.OldCost, e.NewCost)
		}
	}
	final, err := res.Final.Decode()
	if err != nil {
		return err
	}
	after, _ := final.Diameter()
	fmt.Printf("n=%d init=%s obj=%s policy=%s model=%s: converged=%v moves=%d sweeps=%d diameter %d→%d m %d→%d",
		*n, *initKind, objective, pol, mdl.Name(), res.Converged, res.Moves, res.Sweeps, before, after, mBefore, final.M())
	if res.Batched != "off" {
		// An explicit fallback report: requesting -batched on a model
		// without a batched pass used to silently run per agent.
		fmt.Printf(" batched=%s", res.Batched)
	}
	if res.RowsRecomputed > 0 || res.RowsInvalidated > 0 {
		// The row cache's effectiveness over the run: BFS rebuilds paid
		// vs rows invalidated by applied moves. Near equilibrium both
		// stay O(1) per move under the exact remove test.
		fmt.Printf(" rows recomputed=%d invalidated=%d", res.RowsRecomputed, res.RowsInvalidated)
	}
	fmt.Println()
	if res.Converged && res.Certified != nil {
		fmt.Printf("certified %s-stable: %v", mdl.Name(), res.Certified.Stable)
		if res.Certified.Violation != nil {
			fmt.Printf(" (%v)", res.Certified.Violation.Violation())
		}
		fmt.Println()
	}
	return nil
}

func cmdProofs(args []string) error {
	fs := flag.NewFlagSet("proofs", flag.ExitOnError)
	in := fs.String("in", "", "input graph file (required)")
	format := fs.String("format", "edgelist", "edgelist|graph6")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("proofs: -in is required")
	}
	g, err := readGraph(*in, *format)
	if err != nil {
		return err
	}
	if m, err := core.Theorem1Witness(g); err != nil {
		fmt.Printf("Theorem 1 witness: not applicable (%v)\n", err)
	} else {
		before := core.SumCost(g, m.V)
		after := core.EvaluateMove(g, m, core.Sum)
		fmt.Printf("Theorem 1 witness: %v lowers agent %d's distance sum %d→%d\n",
			m, m.V, before, after)
	}
	if m, err := core.Lemma2Witness(g); err != nil {
		fmt.Printf("Lemma 2 witness:   not applicable (%v)\n", err)
	} else {
		before := core.MaxCost(g, m.V)
		after := core.EvaluateMove(g, m, core.Max)
		fmt.Printf("Lemma 2 witness:   %v lowers agent %d's eccentricity %d→%d\n",
			m, m.V, before, after)
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "", "single experiment id (e.g. E5); empty = all")
	quick := fs.Bool("quick", false, "reduced instance sizes")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Workers: *workers, Quick: *quick, Seed: *seed}
	if *id == "" {
		return bncg.RunExperiments(os.Stdout, cfg)
	}
	e, ok := experiments.ByID(*id)
	if !ok {
		return fmt.Errorf("unknown experiment %q", *id)
	}
	return bncg.RunExperiment(os.Stdout, e, cfg)
}
