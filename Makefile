# Targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race bench fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# One iteration per benchmark: the CI smoke that keeps bench_test.go alive.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test bench
