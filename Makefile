# Targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race bench benchgate benchmulti fuzz smoke atlas-smoke fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Three iterations per benchmark (1x single samples proved too noisy to
# gate on — micro benches swing ±80% run to run on a busy host), teed
# through cmd/benchjson into a checked-in JSON artifact (benchmark →
# ns/op, allocs, GOMAXPROCS, host fingerprint) so numbers are comparable
# across PRs. benchjson fails on FAIL lines or an empty stream. The CI
# benchmark smoke keeps 1x: it proves the pipeline, not the numbers.
BENCH_JSON ?= BENCH_9.json
bench:
	$(GO) test -run=NONE -bench=. -benchtime=3x -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Bench gate: diff the two most recent checked-in artifacts. Same-host
# artifacts are compared at a 15% regression threshold (deterministic
# allocs/op gate hard, single-sample ns/op gates at 4×); artifacts from
# different hosts skip gracefully.
benchgate:
	@arts="$$(ls BENCH_*.json | sort -V | tail -2)"; \
	old="$$(echo "$$arts" | head -1)"; new="$$(echo "$$arts" | tail -1)"; \
	if [ "$$old" = "$$new" ]; then echo "benchgate: single artifact $$old, nothing to diff"; exit 0; fi; \
	$(GO) run ./cmd/benchjson -diff -threshold 15 "$$old" "$$new"

# Multicore sweep: the BenchmarkMulti* targets size their workers from
# GOMAXPROCS, so -cpu produces scaling datapoints for the three parallel
# datapaths (sharded scan engine, batched cross-agent sweep, row-cache
# Sync) at 1/2/4/8 workers. Informational — numbers land in the job log,
# not in the BENCH artifact, because per-host core counts vary.
benchmulti:
	$(GO) test -run=NONE -bench='^BenchmarkMulti' -benchtime=3x -benchmem -cpu=1,2,4,8 .

# Bounded fuzz of the incremental pricing session's swap mutation path, the
# session RowCache's invalidation rules against fresh BFS ground truth, the
# greedy model's add/delete/swap apply/undo path, the budget model's
# feasibility-guarded swap apply/undo path, the unified scan engine's
# witnesses against the naive sequential enumeration, the batched
# cross-agent sweep against the per-agent sweep, and the atlas corpus
# format (sparse6 round-trip stability + iso dedupe-key soundness).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzApplySwap -fuzztime=30s ./internal/pricing
	$(GO) test -run=NONE -fuzz=FuzzRowCache -fuzztime=30s ./internal/pricing
	$(GO) test -run=NONE -fuzz=FuzzGreedyApply -fuzztime=30s ./internal/game
	$(GO) test -run=NONE -fuzz=FuzzBudgetApply -fuzztime=30s ./internal/game
	$(GO) test -run=NONE -fuzz=FuzzScanEngine -fuzztime=30s ./internal/game
	$(GO) test -run=NONE -fuzz=FuzzBatchedSweep -fuzztime=30s ./internal/game
	$(GO) test -run=NONE -fuzz=FuzzAtlasRoundTrip -fuzztime=30s ./internal/atlas

# End-to-end CLI smoke of every deviation model (mirrors the CI step),
# then the service load harness: k concurrent clients replay the mixed
# corpus against an in-process server and every verdict is compared
# bit-for-bit with the direct engine path. The -dup pass fires all clients
# simultaneously per scenario and fails unless the coalescer holds
# certifications to one per distinct key. The streamed dynamics run
# exercises the NDJSON move feed end to end.
smoke:
	$(GO) run ./cmd/bncg dynamics -n 24 -model swap -policy first -workers 2
	$(GO) run ./cmd/bncg dynamics -n 24 -model greedy -edgecost 3 -policy best -workers 2
	$(GO) run ./cmd/bncg dynamics -n 24 -model interests -policy random -seed 3 -workers 2
	$(GO) run ./cmd/bncg dynamics -n 24 -model budget -budget 3 -policy best -workers 2
	$(GO) run ./cmd/bncg dynamics -n 24 -model 2nb -policy first -seed 2 -workers 2
	$(GO) run ./cmd/bncg dynamics -n 24 -model swap -policy best -stream -workers 2
	$(GO) run ./cmd/bncg load -k 8 -rounds 2
	$(GO) run ./cmd/bncg load -k 8 -dup

# Atlas smoke (mirrors the CI step): a quick deterministic hunt into a
# scratch directory must itself pass the bit-for-bit verify gate, and the
# checked-in corpus must re-certify and render its structure tables.
atlas-smoke:
	rm -rf /tmp/atlas_smoke
	$(GO) run ./cmd/bncg atlas hunt -dir /tmp/atlas_smoke -quick -seed 1
	$(GO) run ./cmd/bncg atlas verify -dir /tmp/atlas_smoke
	$(GO) run ./cmd/bncg atlas verify -dir testdata/atlas
	$(GO) run ./cmd/bncg atlas stats -dir testdata/atlas

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test bench smoke
