# Targets mirror the CI jobs in .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race bench fuzz fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# One iteration per benchmark: the CI smoke that keeps bench_test.go alive.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Bounded fuzz of the incremental pricing session's mutation path.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzApplySwap -fuzztime=30s ./internal/pricing

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build test bench
