package iso_test

import (
	"math/rand"
	"testing"

	"repro/internal/atlas"
	"repro/internal/graph"
	"repro/internal/iso"
)

// relabel returns g with vertices renamed by a random permutation.
func relabel(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	perm := rng.Perm(g.N())
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	return h
}

// randomGraph draws a connected-ish random graph: a random spanning tree
// plus extra chords at the given rate.
func randomGraph(n int, chords int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestCertificateRelabelingInvariant is the property at the heart of the
// atlas dedupe: certificates (exact below MaxExactN, color refinement
// above) and the exact Isomorphic decision are invariant under vertex
// relabeling, across sizes straddling the exact/refinement switchover.
func TestCertificateRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, iso.MaxExactN, iso.MaxExactN + 1, 12, 20, 33} {
		for trial := 0; trial < 20; trial++ {
			g := randomGraph(n, trial%4, rng)
			h := relabel(g, rng)
			if iso.Certificate(g) != iso.Certificate(h) {
				t.Fatalf("n=%d trial %d: certificate changed under relabeling", n, trial)
			}
			if !iso.Isomorphic(g, h) {
				t.Fatalf("n=%d trial %d: relabeled copy reported non-isomorphic", n, trial)
			}
			d := iso.NewDeduper()
			k1, _ := d.Key(g)
			k2, fresh := d.Key(h)
			if fresh || k1 != k2 {
				t.Fatalf("n=%d trial %d: dedupe keys %q vs %q (fresh=%v)", n, trial, k1, k2, fresh)
			}
		}
	}
}

// TestCorpusIsoKeysAreCanonical checks the checked-in atlas corpus against
// both directions of the key contract: entries sharing an IsoKey are
// exactly isomorphic (same graph up to relabeling, and invariant under a
// fresh random relabeling), while the representatives of distinct keys are
// pairwise non-isomorphic — distinct canonical forms for non-isomorphic
// entries, with certificate collisions resolved exactly.
func TestCorpusIsoKeysAreCanonical(t *testing.T) {
	c, err := atlas.Read("../../testdata/atlas")
	if err != nil {
		t.Fatalf("read corpus: %v (regenerate with: bncg atlas hunt)", err)
	}
	rng := rand.New(rand.NewSource(7))
	reps := map[string]*graph.Graph{}
	for i := range c.Entries {
		e := &c.Entries[i]
		g, err := e.Graph()
		if err != nil {
			t.Fatalf("entry %s: %v", e.ID, err)
		}
		if rep, seen := reps[e.IsoKey]; seen {
			if !iso.Isomorphic(rep, g) {
				t.Errorf("entry %s shares key %q with a non-isomorphic representative", e.ID, e.IsoKey)
			}
			continue
		}
		reps[e.IsoKey] = g
		if got := iso.Certificate(relabel(g, rng)); got != iso.Certificate(g) {
			t.Errorf("entry %s: certificate not relabeling-invariant", e.ID)
		}
	}
	if len(reps) < 2 {
		t.Fatalf("corpus has %d isomorphism classes, expected many", len(reps))
	}

	// Distinctness: different certificates are non-isomorphic by invariance,
	// so the exact cross-check only needs the certificate-colliding pairs —
	// plus a spot-check sample of the rest to guard the invariance claim.
	keys := make([]string, 0, len(reps))
	certs := make(map[string]string, len(reps))
	for k, g := range reps {
		keys = append(keys, k)
		certs[k] = iso.Certificate(g)
	}
	checked := 0
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			collide := certs[keys[i]] == certs[keys[j]]
			if collide || checked%37 == 0 {
				if iso.Isomorphic(reps[keys[i]], reps[keys[j]]) {
					t.Errorf("distinct keys %q and %q hold isomorphic graphs", keys[i], keys[j])
				}
			}
			checked++
		}
	}
}
