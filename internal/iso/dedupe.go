package iso

import (
	"strconv"

	"repro/internal/graph"
)

// Deduper assigns stable isomorphism-class keys to a stream of graphs: two
// graphs receive the same key iff they are isomorphic. Certificates are the
// first filter (exact for n <= MaxExactN, the color-refinement invariant
// beyond), with certificate collisions resolved exactly by Isomorphic, so
// keys are collision-free even where the refinement invariant is not. The
// equilibrium atlas uses it to dedupe hunt hits and as the canonical half
// of every corpus entry's identity.
//
// Keys are "<certificate>" for the first class seen under a certificate and
// "<certificate>#<i>" for the i-th distinct non-isomorphic class colliding
// on it, in order of first appearance. A Deduper fed the same graphs in the
// same order therefore produces the same keys, which the corpus format
// relies on; feeding orders that differ may permute the #i suffixes of
// colliding classes (certificate collisions are rare — refinement separates
// almost all graphs this library produces).
type Deduper struct {
	buckets map[string][]*graph.Graph
}

// NewDeduper returns an empty Deduper.
func NewDeduper() *Deduper {
	return &Deduper{buckets: map[string][]*graph.Graph{}}
}

// Key returns g's isomorphism-class key, registering a new class when g is
// not isomorphic to any previously keyed graph. fresh reports whether the
// class is new. The Deduper keeps a reference to one representative per
// class; callers must not mutate graphs after keying them.
func (d *Deduper) Key(g *graph.Graph) (key string, fresh bool) {
	cert := Certificate(g)
	reps := d.buckets[cert]
	for i, rep := range reps {
		if Isomorphic(rep, g) {
			return suffixed(cert, i), false
		}
	}
	d.buckets[cert] = append(reps, g)
	return suffixed(cert, len(reps)), true
}

// Classes returns the number of distinct isomorphism classes seen.
func (d *Deduper) Classes() int {
	total := 0
	for _, reps := range d.buckets {
		total += len(reps)
	}
	return total
}

func suffixed(cert string, i int) string {
	if i == 0 {
		return cert
	}
	return cert + "#" + strconv.Itoa(i)
}
