// Package iso provides graph-isomorphism utilities sized for the
// reproduction's needs: exact canonical certificates for small graphs
// (minimization over all vertex permutations), a color-refinement invariant
// for larger ones, and an exact backtracking isomorphism test with
// refinement pruning. The experiment harness uses it to count equilibrium
// graphs up to isomorphism — e.g. that the star is the unique
// sum-equilibrium tree (Theorem 1) and that exactly two families survive in
// the max version (Theorem 4).
package iso

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// MaxExactN bounds the exact canonical certificate (n! permutations).
const MaxExactN = 8

// Certificate returns a string that is identical for isomorphic graphs.
// For n <= MaxExactN it is a complete invariant (canonical form); beyond
// that it is the color-refinement invariant, which distinguishes most but
// not all non-isomorphic graphs (equal certificates then require
// Isomorphic for confirmation).
func Certificate(g *graph.Graph) string {
	if g.N() <= MaxExactN {
		return fmt.Sprintf("exact:%d:%x", g.N(), exactCode(g))
	}
	return refineCert(g)
}

// exactCode returns the lexicographically smallest upper-triangle adjacency
// bit code over all vertex permutations.
func exactCode(g *graph.Graph) uint64 {
	n := g.N()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := ^uint64(0)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var code uint64
			for j := 1; j < n; j++ {
				for i := 0; i < j; i++ {
					code <<= 1
					if adj[perm[i]][perm[j]] {
						code |= 1
					}
				}
			}
			if code < best {
				best = code
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	if n*(n-1)/2 > 64 {
		panic("iso: exactCode overflow") // unreachable: MaxExactN = 8 → 28 bits
	}
	rec(0)
	return best
}

// RefinementColors runs 1-dimensional Weisfeiler–Leman color refinement to
// a fixpoint and returns the stable color of every vertex. Colors are
// normalized to 0..k-1 in order of first appearance of their signature.
func RefinementColors(g *graph.Graph) []int {
	n := g.N()
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = g.Degree(v)
	}
	colors = normalize(colors)
	for iter := 0; iter < n; iter++ {
		sigs := make([]string, n)
		for v := 0; v < n; v++ {
			nb := make([]int, 0, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				nb = append(nb, colors[u])
			}
			sort.Ints(nb)
			sigs[v] = fmt.Sprintf("%d|%v", colors[v], nb)
		}
		next := canonicalize(sigs)
		if equalInts(next, colors) {
			break
		}
		colors = next
	}
	return colors
}

func normalize(colors []int) []int {
	seen := map[int]int{}
	out := make([]int, len(colors))
	nextID := 0
	// Deterministic: assign ids by sorted distinct values.
	distinct := append([]int(nil), colors...)
	sort.Ints(distinct)
	for _, c := range distinct {
		if _, ok := seen[c]; !ok {
			seen[c] = nextID
			nextID++
		}
	}
	for i, c := range colors {
		out[i] = seen[c]
	}
	return out
}

func canonicalize(sigs []string) []int {
	distinct := append([]string(nil), sigs...)
	sort.Strings(distinct)
	id := map[string]int{}
	next := 0
	for _, s := range distinct {
		if _, ok := id[s]; !ok {
			id[s] = next
			next++
		}
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = id[s]
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refineCert builds an isomorphism-invariant string from the refinement
// colors: class sizes plus the color profile of every edge.
func refineCert(g *graph.Graph) string {
	colors := RefinementColors(g)
	classCount := map[int]int{}
	for _, c := range colors {
		classCount[c]++
	}
	var classes []string
	for c, cnt := range classCount {
		classes = append(classes, fmt.Sprintf("%d*%d", c, cnt))
	}
	sort.Strings(classes)
	edgeProfile := map[string]int{}
	for _, e := range g.Edges() {
		a, b := colors[e.U], colors[e.V]
		if a > b {
			a, b = b, a
		}
		edgeProfile[fmt.Sprintf("%d-%d", a, b)]++
	}
	var edges []string
	for k, v := range edgeProfile {
		edges = append(edges, fmt.Sprintf("%s*%d", k, v))
	}
	sort.Strings(edges)
	return fmt.Sprintf("wl:%d:%d:[%s]:[%s]", g.N(), g.M(),
		strings.Join(classes, ","), strings.Join(edges, ","))
}

// Isomorphic decides graph isomorphism exactly via backtracking with
// color-refinement pruning. Intended for the moderate sizes of this
// repository's experiments (tens of vertices).
func Isomorphic(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	n := a.N()
	if n == 0 {
		return true
	}
	ca := RefinementColors(a)
	cb := RefinementColors(b)
	if !sameColorHistogram(ca, cb) {
		return false
	}
	// Map a's vertices in order of most-constrained color class first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	classSize := map[int]int{}
	for _, c := range ca {
		classSize[c]++
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := ca[order[i]], ca[order[j]]
		if classSize[ci] != classSize[cj] {
			return classSize[ci] < classSize[cj]
		}
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return true
		}
		v := order[k]
		for w := 0; w < n; w++ {
			if used[w] || cb[w] != ca[v] {
				continue
			}
			okMap := true
			for j := 0; j < k; j++ {
				u := order[j]
				if a.HasEdge(v, u) != b.HasEdge(w, mapping[u]) {
					okMap = false
					break
				}
			}
			if !okMap {
				continue
			}
			mapping[v] = w
			used[w] = true
			if rec(k + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	return rec(0)
}

func sameColorHistogram(a, b []int) bool {
	ha := map[int]int{}
	hb := map[int]int{}
	for _, c := range a {
		ha[c]++
	}
	for _, c := range b {
		hb[c]++
	}
	if len(ha) != len(hb) {
		return false
	}
	for c, n := range ha {
		if hb[c] != n {
			return false
		}
	}
	return true
}

// CountClasses groups graphs into isomorphism classes and returns the
// number of classes, using certificates as a first filter and Isomorphic to
// resolve collisions exactly.
func CountClasses(graphs []*graph.Graph) int {
	buckets := map[string][]*graph.Graph{}
	for _, g := range graphs {
		cert := Certificate(g)
		placed := false
		for _, rep := range buckets[cert] {
			if Isomorphic(rep, g) {
				placed = true
				break
			}
		}
		if !placed {
			buckets[cert] = append(buckets[cert], g)
		}
	}
	count := 0
	for _, reps := range buckets {
		count += len(reps)
	}
	return count
}
