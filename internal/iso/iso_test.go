package iso

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// relabel applies a random vertex permutation.
func relabel(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.N()
	perm := rng.Perm(n)
	out := graph.New(n)
	for _, e := range g.Edges() {
		out.AddEdge(perm[e.U], perm[e.V])
	}
	return out
}

func TestCertificateInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []*graph.Graph{
		constructions.Path(6),
		constructions.Cycle(7),
		constructions.Star(8),
		constructions.Petersen(),   // n=10: refinement branch
		constructions.Hypercube(4), // n=16
		treegen.RandomTree(7, rng),
		treegen.RandomTree(15, rng),
	}
	for i, g := range cases {
		c0 := Certificate(g)
		for trial := 0; trial < 5; trial++ {
			h := relabel(g, rng)
			if Certificate(h) != c0 {
				t.Errorf("case %d: certificate changed under relabeling", i)
			}
		}
	}
}

func TestCertificateSeparatesSmallGraphs(t *testing.T) {
	// All non-isomorphic trees on 6 vertices (there are 6) get distinct
	// exact certificates.
	certs := map[string]bool{}
	treegen.AllTrees(6, func(g *graph.Graph) bool {
		certs[Certificate(g)] = true
		return true
	})
	if len(certs) != 6 {
		t.Errorf("trees on 6 vertices: %d certificates, want 6 classes", len(certs))
	}
}

func TestIsomorphicBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := constructions.Petersen()
	if !Isomorphic(g, relabel(g, rng)) {
		t.Error("Petersen not isomorphic to its relabeling")
	}
	if Isomorphic(constructions.Path(5), constructions.Star(5)) {
		t.Error("P5 isomorphic to star")
	}
	if Isomorphic(constructions.Cycle(6), constructions.Path(6)) {
		t.Error("C6 isomorphic to P6 (different m)")
	}
	if !Isomorphic(graph.New(0), graph.New(0)) {
		t.Error("empty graphs not isomorphic")
	}
	if Isomorphic(graph.New(3), graph.New(4)) {
		t.Error("different sizes isomorphic")
	}
}

func TestIsomorphicHardPair(t *testing.T) {
	// C6 vs two disjoint triangles: same degree sequence (all degree 2),
	// same n and m — distinguished only by structure.
	c6 := constructions.Cycle(6)
	twoTriangles := graph.New(6)
	twoTriangles.AddEdge(0, 1)
	twoTriangles.AddEdge(1, 2)
	twoTriangles.AddEdge(2, 0)
	twoTriangles.AddEdge(3, 4)
	twoTriangles.AddEdge(4, 5)
	twoTriangles.AddEdge(5, 3)
	if Isomorphic(c6, twoTriangles) {
		t.Error("C6 isomorphic to 2×K3")
	}
	// Exact certificates must also differ (n=6 <= MaxExactN).
	if Certificate(c6) == Certificate(twoTriangles) {
		t.Error("exact certificates collide for C6 vs 2×K3")
	}
}

func TestIsomorphicRegularPair(t *testing.T) {
	// 3-regular pair on 8 vertices: cube Q3 vs K_{3,3} plus... use Q3 vs
	// the circulant C8(1,4) (the Möbius–Kantor-like graph, also 3-regular).
	q3 := constructions.Hypercube(3)
	c814 := constructions.Circulant(8, []int{1, 4})
	if q3.M() != c814.M() {
		t.Fatalf("m mismatch %d vs %d", q3.M(), c814.M())
	}
	// Q3 is bipartite with girth 4; C8(1,4) has girth 4 too but contains
	// odd cycles? C8(1,4): edges ±1 and antipodal. Cycle 0-1-2-3-4-0 using
	// jumps 1,1,1,1,4: length 5 — odd: not bipartite, so not isomorphic.
	if Isomorphic(q3, c814) {
		t.Error("Q3 isomorphic to C8(1,4)")
	}
}

func TestRefinementColorsClasses(t *testing.T) {
	// Star: two classes (center, leaves).
	colors := RefinementColors(constructions.Star(7))
	if colors[0] == colors[1] {
		t.Error("star center shares leaf color")
	}
	for v := 2; v < 7; v++ {
		if colors[v] != colors[1] {
			t.Error("star leaves not uniform")
		}
	}
	// Vertex-transitive graphs collapse to one class.
	colors = RefinementColors(constructions.Cycle(9))
	for _, c := range colors {
		if c != colors[0] {
			t.Error("cycle refinement not uniform")
		}
	}
}

func TestCountClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	star := constructions.Star(7)
	path := constructions.Path(7)
	graphs := []*graph.Graph{
		star, relabel(star, rng), relabel(star, rng),
		path, relabel(path, rng),
		constructions.Cycle(7),
	}
	if got := CountClasses(graphs); got != 3 {
		t.Errorf("CountClasses = %d, want 3", got)
	}
	if CountClasses(nil) != 0 {
		t.Error("empty CountClasses != 0")
	}
}

func TestCountClassesLargerGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pet := constructions.Petersen()
	graphs := []*graph.Graph{
		pet, relabel(pet, rng),
		constructions.Circulant(10, []int{1, 2}),
	}
	if got := CountClasses(graphs); got != 2 {
		t.Errorf("CountClasses = %d, want 2", got)
	}
}

func TestAllTreeClassesMatchOEIS(t *testing.T) {
	// Number of non-isomorphic trees on n vertices: 1, 1, 1, 2, 3, 6, 11
	// (OEIS A000055). Verify via exhaustive enumeration + CountClasses.
	want := map[int]int{3: 1, 4: 2, 5: 3, 6: 6, 7: 11}
	for n, classes := range want {
		var all []*graph.Graph
		treegen.AllTrees(n, func(g *graph.Graph) bool {
			all = append(all, g.Clone())
			return true
		})
		if got := CountClasses(all); got != classes {
			t.Errorf("n=%d: %d tree classes, want %d", n, got, classes)
		}
	}
}
