// Package scan owns the repository's single sharded candidate-scan
// protocol: the add-major first-improvement and best-move merges that every
// deviation model's per-agent scan runs on.
//
// The paper's equilibrium checks and best-response dynamics all reduce to
// the same inner loop — enumerate an agent's candidate moves, price each,
// keep the best (or first) improving one. Until PR 5 that loop existed in
// two deliberately divergent copies: pricing.Scan's sharded machinery (the
// basic swap checker, tie-broken by (cost, drop, add)) and the game layer's
// scanAddMajor (interests/budget, tie-broken by enumeration position). This
// package extracts the protocol once, parameterized by
//
//   - a price callback (Pricer) that owns whatever per-endpoint work the
//     model needs (a BFS row, a thresholded interest-set reduction, a
//     2-neighborhood counter toggle), and
//   - an explicit tie-break Order, so each model's historical witness
//     order is a declared parameter instead of an accident of which copy
//     it ran on.
//
// Two entry points cover every consumer:
//
//   - First returns the first candidate in add-major enumeration order
//     whose cost prices strictly below Spec.Threshold. Chunks past an
//     already-found endpoint are pruned through an atomic CAS on the
//     smallest improving endpoint, so the result equals the sequential
//     early-exit scan for any worker count.
//   - Best returns the minimum-cost candidate under the Spec's Order, with
//     per-chunk running-threshold tightening and a deterministic total-
//     order merge.
//
// Both are bit-identical to their workers == 1 runs for any worker count:
// the merges use total orders and the pruning only discards candidates a
// sequential scan would never have returned.
//
// The package depends only on internal/par; per-worker pricing state (BFS
// scratch, counters) is supplied by the caller through a state factory, so
// internal/pricing can sit above this package and lend its pooled buffers.
package scan

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Cand is one candidate of an add-major scan: the candidate endpoint, the
// index of the dropped slot in the caller's ascending drop list, and the
// priced cost. Callers map DropIdx back to their move representation.
type Cand struct {
	Add     int
	DropIdx int
	Cost    int64
}

// Order selects the total order the best-move merge breaks cost ties with.
// It is an explicit per-model parameter: the basic swap game's historical
// witnesses order ties by dropped-edge value, the interests/budget scans by
// enumeration position, and conformance tests pin each model to its
// declared order.
type Order int

const (
	// ByEnumeration breaks cost ties toward the earliest candidate in
	// add-major enumeration order: (cost, add, dropIdx).
	ByEnumeration Order = iota
	// ByDropFirst breaks cost ties toward the smallest dropped slot first:
	// (cost, dropIdx, add) — with ascending drop lists this is the
	// (cost, drop, add) order of the historical swap-checker witnesses.
	ByDropFirst
)

// Less reports whether c precedes o under ord.
func (c Cand) Less(o Cand, ord Order) bool {
	if c.Cost != o.Cost {
		return c.Cost < o.Cost
	}
	if ord == ByDropFirst {
		if c.DropIdx != o.DropIdx {
			return c.DropIdx < o.DropIdx
		}
		return c.Add < o.Add
	}
	if c.Add != o.Add {
		return c.Add < o.Add
	}
	return c.DropIdx < o.DropIdx
}

// NoThreshold admits every candidate: Best scans become an unconditional
// minimum search (the historical Scan.BestMove contract, where the caller
// compares the winner against the current cost itself).
const NoThreshold = int64(math.MaxInt64)

// Spec describes one sharded add-major candidate scan.
type Spec struct {
	// Workers bounds the sharding (<= 1 runs the scan inline on the
	// calling goroutine — stateful single-threaded pricers rely on this).
	Workers int
	// N is the candidate-endpoint universe [0, N).
	N int
	// Threshold is the strict admission bound: only candidates pricing
	// strictly below it are eligible. NoThreshold admits all.
	Threshold int64
	// Order is the best-move tie-break (ignored by First, which always
	// returns the enumeration-first candidate).
	Order Order
	// Skip filters endpoints before any pricing work is paid (nil skips
	// nothing). It must be safe for concurrent calls.
	Skip func(add int) bool
	// Cancel, when non-nil, is polled once per candidate endpoint — between
	// pricing units, never inside one — and a true return makes every chunk
	// stop enumerating. A cancelled scan's result is unspecified (it may be
	// partial or absent); callers that install Cancel must check their own
	// cancellation source after the scan and discard the result on expiry.
	// It must be safe for concurrent calls and cheap (it rides the hot
	// loop); the serve layer installs an atomic-flag-guarded ctx.Err poll.
	Cancel func() bool
}

// Pricer prices the drop slots of one candidate endpoint using per-worker
// state ws. threshold() returns the scan's current admission bound; the
// pricer must invoke yield(dropIdx, cost) with the exact cost for every
// drop slot pricing strictly below threshold(), in ascending dropIdx order,
// and may skip — or abort mid-reduction — any slot it can prove is not
// (thresholded reducers like pricing.PatchedSubsetBelow plug in directly).
// yield returning false means the scan needs no further slots from this
// endpoint; the pricer should unwind any endpoint-local state and return.
type Pricer[S any] func(ws S, add int, threshold func() int64, yield func(dropIdx int, cost int64) bool)

// First returns the first candidate in add-major enumeration order — adds
// ascending, drop slots ascending within an endpoint — pricing strictly
// below spec.Threshold. Endpoints are sharded across spec.Workers; chunks
// past an already-found endpoint are pruned via an atomic bound on the
// smallest improving endpoint, so the result equals a sequential early-exit
// scan for any worker count. state is invoked once per chunk.
func First[S any](spec Spec, state func() (S, func()), price Pricer[S]) (Cand, bool) {
	if spec.N <= 0 {
		return Cand{}, false
	}
	var mu sync.Mutex
	var first Cand
	found := false
	// Smallest improving endpoint so far; later chunks are pruned.
	var bestAdd atomic.Int64
	bestAdd.Store(int64(spec.N))
	threshold := func() int64 { return spec.Threshold }
	par.ForChunked(spec.Workers, spec.N, func(lo, hi int) {
		if int64(lo) > bestAdd.Load() {
			return
		}
		ws, release := state()
		defer release()
		// One yield closure per chunk (not per endpoint): cur tracks the
		// endpoint under scan, keeping per-candidate allocations at zero.
		cur := lo
		yield := func(dropIdx int, cost int64) bool {
			mu.Lock()
			if !found || cur < first.Add {
				first, found = Cand{Add: cur, DropIdx: dropIdx, Cost: cost}, true
				for {
					seen := bestAdd.Load()
					if int64(cur) >= seen || bestAdd.CompareAndSwap(seen, int64(cur)) {
						break
					}
				}
			}
			mu.Unlock()
			// Drop slots ascend, so the first improving slot of this
			// endpoint is already the enumeration-first one.
			return false
		}
		for add := lo; add < hi; add++ {
			if int64(add) > bestAdd.Load() {
				return
			}
			if spec.Cancel != nil && spec.Cancel() {
				return
			}
			if spec.Skip != nil && spec.Skip(add) {
				continue
			}
			cur = add
			price(ws, add, threshold, yield)
		}
	})
	return first, found
}

// Best returns the minimum-cost candidate strictly below spec.Threshold
// under spec.Order. Endpoints are sharded across spec.Workers; each chunk
// tightens its own admission threshold as its running best improves (with
// cost ties admitted only when the Order needs them to settle a tie), and
// chunk winners merge under the total order, so the result is identical
// for any worker count. state is invoked once per chunk.
func Best[S any](spec Spec, state func() (S, func()), price Pricer[S]) (Cand, bool) {
	if spec.N <= 0 {
		return Cand{}, false
	}
	var mu sync.Mutex
	var best Cand
	found := false
	par.ForChunked(spec.Workers, spec.N, func(lo, hi int) {
		ws, release := state()
		defer release()
		var local Cand
		haveLocal := false
		threshold := func() int64 {
			t := spec.Threshold
			if haveLocal {
				lt := local.Cost
				if spec.Order == ByDropFirst {
					// Admit cost ties so the (dropIdx, add) comparison can
					// settle them: a later endpoint may carry a smaller
					// dropped slot. ByEnumeration resolves ties by scan
					// position — within a chunk the first-seen candidate
					// wins — so strict admission suffices there.
					lt++
				}
				if lt < t {
					t = lt
				}
			}
			return t
		}
		// One yield closure per chunk; cur tracks the endpoint under scan.
		cur := lo
		yield := func(dropIdx int, cost int64) bool {
			c := Cand{Add: cur, DropIdx: dropIdx, Cost: cost}
			if !haveLocal || c.Less(local, spec.Order) {
				local, haveLocal = c, true
			}
			return true
		}
		for add := lo; add < hi; add++ {
			if spec.Cancel != nil && spec.Cancel() {
				break
			}
			if spec.Skip != nil && spec.Skip(add) {
				continue
			}
			cur = add
			price(ws, add, threshold, yield)
		}
		if haveLocal {
			mu.Lock()
			if !found || local.Less(best, spec.Order) {
				best, found = local, true
			}
			mu.Unlock()
		}
	})
	return best, found
}
