package scan_test

import (
	"math/rand"
	"testing"

	"repro/internal/scan"
)

// table is a synthetic cost surface: costs[add][dropIdx], with skip marking
// endpoints the spec filters out. It prices through the same thresholded
// contract real pricers use (yield only strictly-below costs).
type table struct {
	costs [][]int64
	skip  []bool
}

func randomTable(rng *rand.Rand, n, drops int) *table {
	tb := &table{costs: make([][]int64, n), skip: make([]bool, n)}
	for a := 0; a < n; a++ {
		tb.costs[a] = make([]int64, drops)
		for d := 0; d < drops; d++ {
			// Small range forces many cost ties, stressing the tie-breaks.
			tb.costs[a][d] = int64(rng.Intn(6))
		}
		tb.skip[a] = rng.Intn(5) == 0
	}
	return tb
}

func (tb *table) spec(workers int, ord scan.Order, threshold int64) scan.Spec {
	return scan.Spec{
		Workers:   workers,
		N:         len(tb.costs),
		Threshold: threshold,
		Order:     ord,
		Skip:      func(add int) bool { return tb.skip[add] },
	}
}

func (tb *table) pricer() scan.Pricer[struct{}] {
	return func(_ struct{}, add int, threshold func() int64, yield func(int, int64) bool) {
		for d, c := range tb.costs[add] {
			if c < threshold() {
				if !yield(d, c) {
					return
				}
			}
		}
	}
}

func noState() (struct{}, func()) { return struct{}{}, func() {} }

// naiveFirst is the sequential reference: first (add, dropIdx) in add-major
// order strictly below threshold.
func (tb *table) naiveFirst(threshold int64) (scan.Cand, bool) {
	for a := range tb.costs {
		if tb.skip[a] {
			continue
		}
		for d, c := range tb.costs[a] {
			if c < threshold {
				return scan.Cand{Add: a, DropIdx: d, Cost: c}, true
			}
		}
	}
	return scan.Cand{}, false
}

// naiveBest is the sequential reference: minimum under ord among candidates
// strictly below threshold.
func (tb *table) naiveBest(ord scan.Order, threshold int64) (scan.Cand, bool) {
	var best scan.Cand
	found := false
	for a := range tb.costs {
		if tb.skip[a] {
			continue
		}
		for d, c := range tb.costs[a] {
			if c >= threshold {
				continue
			}
			cand := scan.Cand{Add: a, DropIdx: d, Cost: c}
			if !found || cand.Less(best, ord) {
				best, found = cand, true
			}
		}
	}
	return best, found
}

func TestFirstAndBestMatchSequentialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		drops := 1 + rng.Intn(4)
		tb := randomTable(rng, n, drops)
		for _, threshold := range []int64{0, 2, 4, scan.NoThreshold} {
			for _, workers := range []int{1, 2, 4, 8} {
				got, ok := scan.First(tb.spec(workers, scan.ByEnumeration, threshold), noState, tb.pricer())
				want, wok := tb.naiveFirst(threshold)
				if ok != wok || (ok && got != want) {
					t.Fatalf("trial %d th=%d workers=%d: First %+v/%v, want %+v/%v",
						trial, threshold, workers, got, ok, want, wok)
				}
				for _, ord := range []scan.Order{scan.ByEnumeration, scan.ByDropFirst} {
					got, ok := scan.Best(tb.spec(workers, ord, threshold), noState, tb.pricer())
					want, wok := tb.naiveBest(ord, threshold)
					if ok != wok || (ok && got != want) {
						t.Fatalf("trial %d th=%d workers=%d ord=%d: Best %+v/%v, want %+v/%v",
							trial, threshold, workers, ord, got, ok, want, wok)
					}
				}
			}
		}
	}
}

// TestOrderLess pins the two declared total orders.
func TestOrderLess(t *testing.T) {
	a := scan.Cand{Add: 3, DropIdx: 5, Cost: 7}
	b := scan.Cand{Add: 5, DropIdx: 2, Cost: 7}
	if !a.Less(b, scan.ByEnumeration) || b.Less(a, scan.ByEnumeration) {
		t.Fatal("ByEnumeration must order by (cost, add, dropIdx)")
	}
	if !b.Less(a, scan.ByDropFirst) || a.Less(b, scan.ByDropFirst) {
		t.Fatal("ByDropFirst must order by (cost, dropIdx, add)")
	}
	c := scan.Cand{Add: 3, DropIdx: 5, Cost: 6}
	if !c.Less(a, scan.ByEnumeration) || !c.Less(a, scan.ByDropFirst) {
		t.Fatal("cost must dominate both orders")
	}
}

// TestEmptyUniverse pins the degenerate contracts.
func TestEmptyUniverse(t *testing.T) {
	spec := scan.Spec{Workers: 4, N: 0, Threshold: scan.NoThreshold}
	price := func(_ struct{}, _ int, _ func() int64, _ func(int, int64) bool) {
		t.Fatal("pricer must not run on an empty universe")
	}
	if _, ok := scan.First(spec, noState, price); ok {
		t.Fatal("First on empty universe")
	}
	if _, ok := scan.Best(spec, noState, price); ok {
		t.Fatal("Best on empty universe")
	}
}
