package pricing_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/pricing"
)

// requireViewMatches asserts the session's live snapshot equals a fresh
// Freeze of the mirror graph.
func requireViewMatches(t *testing.T, s *pricing.Session, mirror *graph.Graph) {
	t.Helper()
	d := s.View()
	f := mirror.Freeze()
	if d.N() != f.N() || d.M() != f.M() {
		t.Fatalf("view n=%d m=%d, mirror n=%d m=%d", d.N(), d.M(), f.N(), f.M())
	}
	for v := 0; v < f.N(); v++ {
		got, want := d.Neighbors(v), f.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: view degree %d, mirror %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d adjacency: view %v, mirror %v", v, got, want)
			}
		}
	}
}

func TestSessionApplySwapAndUndo(t *testing.T) {
	g := constructions.Cycle(8)
	mirror := g.Clone()
	s := pricing.New(1).NewSession(g)

	// Proper swap.
	s.ApplySwap(0, 1, 4)
	mirror.RemoveEdge(0, 1)
	mirror.AddEdge(0, 4)
	requireViewMatches(t, s, mirror)

	// Swap onto an existing edge: pure deletion.
	s.ApplySwap(0, 7, 4)
	mirror.RemoveEdge(0, 7)
	requireViewMatches(t, s, mirror)

	// No-op swap (add == drop).
	s.ApplySwap(2, 3, 3)
	requireViewMatches(t, s, mirror)

	if s.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", s.Depth())
	}
	// Undo all three; the view must return to the starting cycle.
	for s.Undo() {
	}
	requireViewMatches(t, s, g)
	if s.Undo() {
		t.Error("Undo on empty stack reported success")
	}
}

func TestSessionApplySwapPanicsOnMissingDrop(t *testing.T) {
	s := pricing.New(1).NewSession(constructions.Path(5))
	defer func() {
		if recover() == nil {
			t.Error("ApplySwap with absent drop edge did not panic")
		}
	}()
	s.ApplySwap(0, 3, 2)
}

func TestSessionScanStalenessPanics(t *testing.T) {
	s := pricing.New(1).NewSession(constructions.Cycle(6))
	scan := s.NewScan(0)
	s.ApplySwap(0, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("stale scan did not panic")
		}
	}()
	scan.ForEach(pricing.Sum, false, func(int, int, int64) bool { return true })
}

func TestSessionScanPricesLikeFreshFreeze(t *testing.T) {
	// After a chain of applied swaps the session's scans must price every
	// candidate exactly like a one-shot scan over a fresh Freeze of the
	// mirrored graph.
	rng := rand.New(rand.NewSource(11))
	eng := pricing.New(2)
	for trial := 0; trial < 6; trial++ {
		g := randomConnected(rng, 6+rng.Intn(8), 0.3)
		mirror := g.Clone()
		s := eng.NewSession(g)
		for step := 0; step < 8; step++ {
			v := rng.Intn(g.N())
			if mirror.Degree(v) == 0 {
				continue
			}
			nbs := mirror.Neighbors(v)
			w := nbs[rng.Intn(len(nbs))]
			wp := rng.Intn(g.N())
			if wp == v {
				continue
			}
			s.ApplySwap(v, w, wp)
			mirror.RemoveEdge(v, w)
			mirror.AddEdge(v, wp)
		}
		f := mirror.Freeze()
		for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
			for v := 0; v < mirror.N(); v++ {
				live := s.NewScan(v)
				fresh := eng.NewScan(f, v)
				if live.CurrentUsage(obj) != fresh.CurrentUsage(obj) {
					t.Fatalf("trial %d v=%d: current usage diverged", trial, v)
				}
				type key struct{ drop, add int }
				want := map[key]int64{}
				fresh.ForEach(obj, false, func(i, add int, cost int64) bool {
					want[key{int(fresh.Drops()[i]), add}] = cost
					return true
				})
				count := 0
				live.ForEach(obj, false, func(i, add int, cost int64) bool {
					count++
					k := key{int(live.Drops()[i]), add}
					if c, ok := want[k]; !ok || c != cost {
						t.Fatalf("trial %d obj=%d v=%d candidate %v: live %d, fresh %d (present=%v)",
							trial, obj, v, k, cost, c, ok)
					}
					return true
				})
				if count != len(want) {
					t.Fatalf("trial %d v=%d: live %d candidates, fresh %d", trial, v, count, len(want))
				}
				lb, lok := live.BestMove(obj, false)
				fb, fok := fresh.BestMove(obj, false)
				if lok != fok || lb != fb {
					t.Fatalf("trial %d obj=%d v=%d: live best %+v/%v, fresh %+v/%v",
						trial, obj, v, lb, lok, fb, fok)
				}
				live.Close()
				fresh.Close()
			}
		}
	}
}

func TestFirstImprovingMatchesSequentialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, g := range testInstances(rng) {
		f := g.Freeze()
		for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
			for v := 0; v < g.N(); v++ {
				ref := pricing.New(1).NewScan(f, v)
				cur := ref.CurrentUsage(obj)
				// Sequential early-exit reference over the same enumeration.
				var want pricing.Best
				wantOK := false
				ref.ForEach(obj, false, func(i, add int, cost int64) bool {
					if cost < cur {
						want = pricing.Best{Drop: int(ref.Drops()[i]), Add: add, Cost: cost}
						wantOK = true
						return false
					}
					return true
				})
				ref.Close()
				for _, workers := range []int{1, 2, 5} {
					scan := pricing.New(workers).NewScan(f, v)
					got, ok := scan.FirstImproving(obj, false, cur)
					scan.Close()
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("%s obj=%d v=%d workers=%d: FirstImproving %+v/%v, want %+v/%v",
							name, obj, v, workers, got, ok, want, wantOK)
					}
				}
			}
		}
	}
}

func TestSessionAddRemoveMirrorsGraph(t *testing.T) {
	g := constructions.Path(6)
	mirror := g.Clone()
	s := pricing.New(1).NewSession(g)
	if !s.ApplyAdd(0, 3) || !mirror.AddEdge(0, 3) {
		t.Fatal("add failed")
	}
	if s.ApplyAdd(0, 3) {
		t.Error("duplicate add reported success")
	}
	if !s.ApplyRemove(2, 3) || !mirror.RemoveEdge(2, 3) {
		t.Fatal("remove failed")
	}
	if s.ApplyRemove(2, 3) {
		t.Error("absent remove reported success")
	}
	requireViewMatches(t, s, mirror)
	for s.Undo() {
	}
	requireViewMatches(t, s, g)
}
