package pricing_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pricing"
)

// FuzzApplySwap drives a pricing session with a fuzzer-chosen sequence of
// legal swaps and interleaved undos, mirroring every operation onto a
// plain map-backed graph. After every mutation the session's live snapshot
// must agree with a fresh Freeze of the mirror on vertex count, edge
// count, degrees, sorted adjacency, and one full BFS row.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzApplySwap -fuzztime=30s ./internal/pricing
func FuzzApplySwap(f *testing.F) {
	f.Add(uint8(8), int64(1), []byte{0, 7, 13, 2, 250, 9, 4, 44, 251})
	f.Add(uint8(3), int64(9), []byte{255, 254, 1, 2, 3})
	f.Add(uint8(20), int64(42), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, ops []byte) {
		n := 2 + int(nRaw)%30
		rng := rand.New(rand.NewSource(seed))
		// Connected start: a random spanning tree plus a few chords.
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}

		mirror := g.Clone()
		sess := pricing.New(1).NewSession(g)
		type rec struct {
			v, drop, add int
			added        bool
		}
		var applied []rec

		check := func(step int) {
			t.Helper()
			d := sess.View()
			fz := mirror.Freeze()
			if d.N() != fz.N() || d.M() != fz.M() {
				t.Fatalf("step %d: view n=%d m=%d, mirror n=%d m=%d",
					step, d.N(), d.M(), fz.N(), fz.M())
			}
			for v := 0; v < n; v++ {
				got, want := d.Neighbors(v), fz.Neighbors(v)
				if len(got) != len(want) || d.Degree(v) != len(want) {
					t.Fatalf("step %d vertex %d: degree %d, want %d", step, v, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("step %d vertex %d: adjacency %v, want %v", step, v, got, want)
					}
				}
			}
			src := (step%n + n) % n
			distD := make([]int32, n)
			distF := make([]int32, n)
			queue := make([]int32, 0, n)
			d.BFSInto(src, distD, queue)
			fz.BFSInto(src, distF, queue)
			for x := range distD {
				if distD[x] != distF[x] {
					t.Fatalf("step %d: BFS row from %d differs at %d: %d vs %d",
						step, src, x, distD[x], distF[x])
				}
			}
		}

		check(-1)
		for i := 0; i+2 < len(ops); i += 3 {
			if ops[i] >= 224 && len(applied) > 0 {
				// Undo the most recent applied swap on both structures.
				if !sess.Undo() {
					t.Fatal("Undo failed with non-empty stack")
				}
				last := applied[len(applied)-1]
				applied = applied[:len(applied)-1]
				if last.added {
					mirror.RemoveEdge(last.v, last.add)
				}
				mirror.AddEdge(last.v, last.drop)
				check(i)
				continue
			}
			v := int(ops[i]) % n
			if mirror.Degree(v) == 0 {
				continue
			}
			nbs := mirror.Neighbors(v)
			drop := nbs[int(ops[i+1])%len(nbs)]
			add := int(ops[i+2]) % n
			if add == v {
				continue
			}
			sess.ApplySwap(v, drop, add)
			mirror.RemoveEdge(v, drop)
			added := mirror.AddEdge(v, add)
			applied = append(applied, rec{v: v, drop: drop, add: add, added: added})
			check(i)
		}
		if sess.Depth() != len(applied) {
			t.Fatalf("Depth %d, applied %d", sess.Depth(), len(applied))
		}
		// Drain the undo stack: the session must return to the start graph.
		for sess.Undo() {
		}
		mirror = g
		check(len(ops))
	})
}
