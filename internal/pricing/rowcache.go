package pricing

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// RowCache is a session-attached cache of full-graph BFS rows d_G(w,·)
// over the session's live snapshot — the shared-row matrix of the batched
// cross-agent sweep, kept alive across sweeps instead of rebuilt per
// sweep. It is maintained under the session's mutations exactly as
// graph.Dyn patch-maintains adjacency: every ApplySwap/ApplyAdd/
// ApplyRemove/Undo invalidates only the rows whose distances the edge
// change can affect, and invalid rows are recomputed lazily at the next
// Sync. In and near equilibrium — the regime certification sweeps live in
// — a single applied move invalidates a small fraction of the rows, so a
// trajectory of sweeps pays #invalidated BFS per sweep instead of n.
//
// The invalidation tests are O(1) per cached row, reading only the row's
// own entries at the mutated edge's endpoints (distances in the graph the
// row was computed for):
//
//   - adding edge ab changes row w iff |d(w,a) − d(w,b)| ≥ 2 (the new
//     edge shortcuts some w-shortest path iff the endpoints' distances
//     differ by more than the edge's length), or exactly one endpoint is
//     unreachable from w (the edge joins w's component to another);
//   - removing edge ab can change row w only if |d(w,a) − d(w,b)| = 1
//     (an edge on no w-shortest path — including any edge in a component
//     not containing w — cannot lengthen any distance).
//
// The add test is exact; the remove test is conservative (the edge may lie
// on a shortest path that has equal-length alternatives), which only costs
// a spurious recompute, never a stale row.
//
// The memory trade is the batched sweep's: one n² int32 arena per session,
// allocated once at first use and reused for the session's lifetime. A
// RowCache is not safe for concurrent mutation with its session; concurrent
// reads between mutations (the sharded sweep) are safe.
type RowCache struct {
	s     *Session
	arena []int32   // n² backing store, rows sliced out of it
	rows  [][]int32 // rows[w] = d_G(w,·) when valid[w]
	valid []bool
	todo  []int32 // scratch: rows to recompute this Sync
	// recomputed counts BFS row rebuilds over the cache's lifetime; the
	// reuse tests and benchmarks read it to prove rows actually persist.
	recomputed uint64
}

// RowCache returns the session's shared-row cache, creating it (and its n²
// arena) on first use. The cache is invalidation-maintained by every
// subsequent session mutation; rows are computed lazily by Sync.
func (s *Session) RowCache() *RowCache {
	if s.rows == nil {
		n := s.d.N()
		c := &RowCache{
			s:     s,
			arena: make([]int32, n*n),
			rows:  make([][]int32, n),
			valid: make([]bool, n),
		}
		for w := 0; w < n; w++ {
			c.rows[w] = c.arena[w*n : (w+1)*n : (w+1)*n]
		}
		s.rows = c
	}
	return s.rows
}

// Recomputed returns the number of BFS row rebuilds the cache has paid
// since creation — the denominator of the reuse win.
func (c *RowCache) Recomputed() uint64 { return c.recomputed }

// noteAdd records the insertion of edge ab: a valid row w survives iff the
// new edge cannot shortcut any shortest path from w.
func (c *RowCache) noteAdd(a, b int) {
	for w, ok := range c.valid {
		if !ok {
			continue
		}
		da, db := c.rows[w][a], c.rows[w][b]
		if da == graph.Unreachable || db == graph.Unreachable {
			// Both endpoints unreachable: the edge lives entirely outside
			// w's component and changes nothing for w. Exactly one
			// unreachable: the edge joins new vertices to w's component.
			c.valid[w] = da == graph.Unreachable && db == graph.Unreachable
			continue
		}
		if d := da - db; d >= 2 || d <= -2 {
			c.valid[w] = false
		}
	}
}

// noteRemove records the deletion of edge ab: a valid row w survives iff
// the edge was on no shortest path from w. Endpoints of an existing edge
// are reachable from w together or not at all; in the latter case the edge
// is outside w's component and removal changes nothing for w.
func (c *RowCache) noteRemove(a, b int) {
	for w, ok := range c.valid {
		if !ok {
			continue
		}
		da, db := c.rows[w][a], c.rows[w][b]
		if da == graph.Unreachable || db == graph.Unreachable {
			continue
		}
		if d := da - db; d == 1 || d == -1 {
			c.valid[w] = false
		}
	}
}

// RowView is the read handle a Sync returns: rows at one session
// generation. Like a Scan, a view outlived by a session mutation panics on
// its next read instead of serving stale rows.
type RowView struct {
	c   *RowCache
	gen uint64
}

// Sync brings every row selected by need (nil selects all) up to date —
// recomputing only the invalidated ones, sharded across workers — and
// returns a read view pinned to the session's current generation. Rows not
// selected are left as they are: a later Sync with a wider need computes
// them then.
func (c *RowCache) Sync(workers int, need func(w int) bool) *RowView {
	n := c.s.d.N()
	c.todo = c.todo[:0]
	for w := 0; w < n; w++ {
		if need != nil && !need(w) {
			continue
		}
		if !c.valid[w] {
			c.todo = append(c.todo, int32(w))
		}
	}
	if len(c.todo) > 0 {
		eng, view := c.s.e, c.s.d
		par.ForChunked(workers, len(c.todo), func(lo, hi int) {
			_, queue, release := eng.Scratch(n)
			defer release()
			for i := lo; i < hi; i++ {
				w := int(c.todo[i])
				view.BFSInto(w, c.rows[w], queue)
			}
		})
		for _, w := range c.todo {
			c.valid[w] = true
		}
		c.recomputed += uint64(len(c.todo))
	}
	return &RowView{c: c, gen: c.s.gen}
}

// Row returns d_G(w,·) as of the view's Sync. The row is owned by the
// cache; do not modify. It panics when the session has mutated since the
// Sync (stale rows no longer describe the graph) and when w was outside
// the Sync's need set (the row was never brought up to date).
func (v *RowView) Row(w int) []int32 {
	c := v.c
	if v.gen != c.s.gen {
		panic("pricing: RowCache view used after Session mutation; re-Sync")
	}
	if !c.valid[w] {
		panic("pricing: RowCache row read outside the synced set")
	}
	return c.rows[w]
}
