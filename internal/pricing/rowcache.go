package pricing

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
)

// RowCache is a session-attached cache of full-graph BFS rows d_G(w,·)
// over the session's live snapshot — the shared-row matrix of the batched
// cross-agent sweep and the row-cached per-agent scans, kept alive across
// sweeps instead of rebuilt per sweep. It is maintained under the
// session's mutations exactly as graph.Dyn patch-maintains adjacency:
// every ApplySwap/ApplyAdd/ApplyRemove/Undo invalidates only the rows
// whose distances the edge change actually affects, and invalid rows are
// recomputed lazily at the next Sync. In and near equilibrium — the
// regime certification sweeps and dynamics hot loops live in — a single
// applied move invalidates a handful of rows, so a trajectory pays
// #invalidated BFS per applied move instead of n.
//
// The invalidation tests are O(1) per cached row, reading only the row's
// own entries at the mutated edge's endpoints (distances in the graph the
// row was computed for) plus the row's tight-parent counts:
//
//   - adding edge ab changes row w iff |d(w,a) − d(w,b)| ≥ 2 (the new
//     edge shortcuts some w-shortest path iff the endpoints' distances
//     differ by more than the edge's length), or exactly one endpoint is
//     unreachable from w (the edge joins w's component to another). A
//     surviving gap-1 add leaves every distance intact and gives the
//     deeper endpoint one more tight parent — an O(1) count patch;
//   - removing edge ab with |d(w,a) − d(w,b)| = 1 changes row w iff the
//     deeper endpoint x has no alternative tight parent: if d(w,x)
//     survives, every deeper distance survives too, so the row is kept
//     and x's count decremented. A gap-0 edge lies on no w-shortest path
//     and is tight for neither endpoint — nothing changes.
//
// Both tests are exact up to count saturation: alongside each row the
// cache keeps a per-vertex saturating (≤ 255) tight-parent count — how
// many neighbors of x sit at distance d(w,x)−1 — filled during the same
// BFS pass (graph.Dyn.BFSIntoCounts). Saturation keeps the stored count
// ≤ the true count, so a keep decision (stored ≥ 2 ⟹ true ≥ 2) is always
// sound; understating can only cost a spurious recompute, never a stale
// row.
//
// The memory trade is the batched sweep's: one n² int32 arena plus one n²
// uint8 arena per session, drawn from a size-keyed pool at first use and
// returned by Session.Close. A RowCache is not safe for concurrent
// mutation with its session; concurrent reads between mutations (the
// sharded sweep) are safe.
type RowCache struct {
	s      *Session
	arena  []int32   // n² distance backing store, rows sliced out of it
	tArena []uint8   // n² tight-parent counts, same layout
	idx    []int32   // 3n pooled backing of liveList/livePos/todo
	rows   [][]int32 // rows[w] = d_G(w,·) when livePos[w] >= 0
	tight  [][]uint8 // tight[w][x] = saturating #tight parents of x from w
	// liveList/livePos index the valid rows densely (swap-remove on
	// invalidation), so the per-mutation note loops cost O(valid), not
	// O(n) — a cold cache pays nothing per move. livePos doubles as the
	// validity bit: row w is up to date iff livePos[w] >= 0.
	liveList []int32
	livePos  []int32 // livePos[w] = index into liveList, -1 when invalid
	todo     []int32 // scratch: rows to recompute this Sync
	// recomputed counts BFS row rebuilds and invalidated counts rows
	// flagged by mutations, over the cache's lifetime; the reuse tests,
	// benchmarks, and the dynamics/serve observability surface read them.
	recomputed  uint64
	invalidated uint64
}

// rowArenas is the poolable backing store of one RowCache: the n²
// distance matrix, the n² tight-parent counts, and the 3n live/todo index.
type rowArenas struct {
	dist  []int32
	tight []uint8
	idx   []int32
}

// rowArenaPools pools released RowCache arenas by vertex count, so a
// service recycling its session slots across same-sized requests reuses
// the 5n² bytes instead of growing a fresh set per session, while a slot
// recycled for a different n misses that size's pool and lets the GC
// reclaim the old arenas instead of pinning them for the pool's lifetime.
var rowArenaPools sync.Map // n (int) -> *sync.Pool of *rowArenas

func arenaPool(n int) *sync.Pool {
	if p, ok := rowArenaPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := rowArenaPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

func getRowArenas(n int) *rowArenas {
	if a, ok := arenaPool(n).Get().(*rowArenas); ok {
		return a
	}
	return &rowArenas{
		dist:  make([]int32, n*n),
		tight: make([]uint8, n*n),
		idx:   make([]int32, 3*n),
	}
}

func putRowArenas(n int, a *rowArenas) {
	arenaPool(n).Put(a)
}

// RowCache returns the session's shared-row cache, creating it (arenas
// from the size-keyed pool) on first use. The cache is invalidation-
// maintained by every subsequent session mutation; rows are computed
// lazily by Sync.
func (s *Session) RowCache() *RowCache {
	if s.rows == nil {
		n := s.d.N()
		a := getRowArenas(n)
		c := &RowCache{
			s:      s,
			arena:  a.dist,
			tArena: a.tight,
			idx:    a.idx,
			rows:   make([][]int32, n),
			tight:  make([][]uint8, n),
			// liveList and todo both top out at n, so the pooled 3n index
			// arena covers them and the warm-up Sync never append-doubles.
			liveList: a.idx[0:0:n],
			livePos:  a.idx[n : 2*n : 2*n],
			todo:     a.idx[2*n : 2*n : 3*n],
		}
		for w := 0; w < n; w++ {
			c.rows[w] = c.arena[w*n : (w+1)*n : (w+1)*n]
			c.tight[w] = c.tArena[w*n : (w+1)*n : (w+1)*n]
			c.livePos[w] = -1
		}
		s.rows = c
	}
	return s.rows
}

// Recomputed returns the number of BFS row rebuilds the cache has paid
// since creation — the denominator of the reuse win.
func (c *RowCache) Recomputed() uint64 { return c.recomputed }

// Invalidated returns the number of row invalidations mutations have
// forced since creation. Together with Recomputed it makes the cache's
// effectiveness observable: near equilibrium on tree-like positions the
// exact remove test keeps both O(1) per applied move.
func (c *RowCache) Invalidated() uint64 { return c.invalidated }

// Live returns the number of currently valid rows.
func (c *RowCache) Live() int { return len(c.liveList) }

// Valid reports whether row w is currently up to date — kept through every
// mutation since it was last computed. The invalidation-accounting tests
// read it to pin the exact test's keep/flag decisions row by row.
func (c *RowCache) Valid(w int) bool { return c.livePos[w] >= 0 }

// release returns the arenas to the size-keyed pool and drops every
// reference, so a stale read through a leaked view fails fast on the nil
// slices instead of observing recycled memory.
func (c *RowCache) release() {
	putRowArenas(c.s.d.N(), &rowArenas{dist: c.arena, tight: c.tArena, idx: c.idx})
	c.arena, c.tArena, c.idx = nil, nil, nil
	c.rows, c.tight = nil, nil
	c.liveList, c.livePos, c.todo = nil, nil, nil
}

// invalidate flags row w (caller guarantees it is currently valid).
func (c *RowCache) invalidate(w int32) {
	p := c.livePos[w]
	last := int32(len(c.liveList) - 1)
	moved := c.liveList[last]
	c.liveList[p] = moved
	c.livePos[moved] = p
	c.liveList = c.liveList[:last]
	c.livePos[w] = -1
	c.invalidated++
}

// validate marks row w up to date (caller guarantees it is invalid).
func (c *RowCache) validate(w int32) {
	c.livePos[w] = int32(len(c.liveList))
	c.liveList = append(c.liveList, w)
}

// noteAdd records the insertion of edge ab: a valid row w survives iff
// the new edge cannot shortcut any shortest path from w, and a surviving
// gap-1 row's deeper endpoint gains a tight parent. The loop walks the
// live-row index backwards so the swap-remove in invalidate never skips
// an unvisited entry.
func (c *RowCache) noteAdd(a, b int) {
	for i := len(c.liveList) - 1; i >= 0; i-- {
		w := c.liveList[i]
		row := c.rows[w]
		da, db := row[a], row[b]
		if da == graph.Unreachable || db == graph.Unreachable {
			// Both endpoints unreachable: the edge lives entirely outside
			// w's component and changes nothing for w. Exactly one
			// unreachable: the edge joins new vertices to w's component.
			if da != db {
				c.invalidate(w)
			}
			continue
		}
		switch d := da - db; {
		case d >= 2 || d <= -2:
			c.invalidate(w)
		case d == 1:
			// b becomes a new tight parent of a; distances are unchanged.
			if t := c.tight[w]; t[a] < 255 {
				t[a]++
			}
		case d == -1:
			if t := c.tight[w]; t[b] < 255 {
				t[b]++
			}
		}
	}
}

// noteRemove records the deletion of edge ab: a valid row w survives iff
// the edge was on no shortest path from w (gap 0, or either endpoint
// outside w's component — endpoints of an existing edge are reachable
// from w together or not at all) or the deeper endpoint keeps an
// alternative tight parent, in which case only its count changes.
func (c *RowCache) noteRemove(a, b int) {
	for i := len(c.liveList) - 1; i >= 0; i-- {
		w := c.liveList[i]
		row := c.rows[w]
		da, db := row[a], row[b]
		if da == graph.Unreachable || db == graph.Unreachable {
			continue
		}
		var deeper int
		switch da - db {
		case 1:
			deeper = a
		case -1:
			deeper = b
		default:
			// A gap-0 edge lies on no shortest path from w and is tight
			// for neither endpoint: distances and counts both survive.
			continue
		}
		if t := c.tight[w]; t[deeper] > 1 {
			// An alternative tight parent keeps d(w,deeper) — and with it
			// every deeper distance — intact; only the count shrinks.
			t[deeper]--
		} else {
			c.invalidate(w)
		}
	}
}

// RowView is the read handle a Sync returns: rows at one session
// generation. Like a Scan, a view outlived by a session mutation panics on
// its next read instead of serving stale rows. It is a value (two words),
// so handing one out costs no allocation in the dynamics hot loop.
type RowView struct {
	c   *RowCache
	gen uint64
}

// Sync brings every row selected by need (nil selects all) up to date —
// recomputing only the invalidated ones, sharded across workers — and
// returns a read view pinned to the session's current generation. Rows not
// selected are left as they are: a later Sync with a wider need computes
// them then.
func (c *RowCache) Sync(workers int, need func(w int) bool) RowView {
	n := c.s.d.N()
	c.todo = c.todo[:0]
	for w := 0; w < n; w++ {
		if need != nil && !need(w) {
			continue
		}
		if c.livePos[w] < 0 {
			c.todo = append(c.todo, int32(w))
		}
	}
	if len(c.todo) > 0 {
		eng, view := c.s.e, c.s.d
		par.ForChunked(workers, len(c.todo), func(lo, hi int) {
			s := eng.getScratch(n)
			defer eng.putScratch(s)
			for i := lo; i < hi; i++ {
				w := int(c.todo[i])
				view.BFSIntoCounts(w, c.rows[w], c.tight[w], s.queue)
			}
		})
		for _, w := range c.todo {
			c.validate(w)
		}
		c.recomputed += uint64(len(c.todo))
	}
	return RowView{c: c, gen: c.s.gen}
}

// SyncRow brings the single row w up to date and returns it — the probe
// path's allocation-free equivalent of Sync(1, w-only).Row(w). The row is
// owned by the cache and valid only until the session's next mutation;
// callers must consume it immediately (the thresholded probe reductions
// do), since unlike a RowView there is no generation stamp to panic on a
// stale read.
func (c *RowCache) SyncRow(w int) []int32 {
	if c.livePos[w] < 0 {
		s := c.s.e.getScratch(c.s.d.N())
		c.s.d.BFSIntoCounts(w, c.rows[w], c.tight[w], s.queue)
		c.s.e.putScratch(s)
		c.validate(int32(w))
		c.recomputed++
	}
	return c.rows[w]
}

// Row returns d_G(w,·) as of the view's Sync. The row is owned by the
// cache; do not modify. It panics when the session has mutated since the
// Sync (stale rows no longer describe the graph) and when w was outside
// the Sync's need set (the row was never brought up to date).
func (v RowView) Row(w int) []int32 {
	c := v.c
	if v.gen != c.s.gen {
		panic("pricing: RowCache view used after Session mutation; re-Sync")
	}
	if c.livePos[w] < 0 {
		panic("pricing: RowCache row read outside the synced set")
	}
	return c.rows[w]
}

// Tight returns row w's saturating tight-parent counts — Tight(w)[x] is
// min(255, #neighbors of x at distance d(w,x)−1), the multiplicity the
// remove test consults — under the same staleness contract as Row. The
// differential suites cross-check it against fresh parent enumeration;
// pricing reductions never need it.
func (v RowView) Tight(w int) []uint8 {
	c := v.c
	if v.gen != c.s.gen {
		panic("pricing: RowCache view used after Session mutation; re-Sync")
	}
	if c.livePos[w] < 0 {
		panic("pricing: RowCache row read outside the synced set")
	}
	return c.tight[w]
}
