package pricing_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/pricing"
	"repro/internal/treegen"
)

// oracle prices one swap the slow way: clone, apply, BFS, measure. The
// engine must agree with it on every candidate — kind (no-op, deletion,
// proper swap), delta, and verdict.
func oracle(g *graph.Graph, v, drop, add int, obj pricing.Objective) int64 {
	h := g.Clone()
	h.RemoveEdge(v, drop)
	h.AddEdge(v, add)
	return pricing.Usage(h.BFS(v), obj)
}

func randomConnected(rng *rand.Rand, n int, extra float64) *graph.Graph {
	g := treegen.RandomTree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < extra {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func testInstances(rng *rand.Rand) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":    constructions.Path(9),
		"cycle":   constructions.Cycle(10),
		"star":    constructions.Star(8),
		"torus":   constructions.NewTorus(2).Graph(),
		"random1": randomConnected(rng, 8, 0.2),
		"random2": randomConnected(rng, 12, 0.35),
		"random3": randomConnected(rng, 6, 0.6),
	}
}

func TestEngineMatchesOracleOnEveryCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng := pricing.New(1)
	for name, g := range testInstances(rng) {
		f := g.Freeze()
		for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
			for v := 0; v < g.N(); v++ {
				scan := eng.NewScan(f, v)
				if got, want := scan.CurrentUsage(obj), pricing.Usage(g.BFS(v), obj); got != want {
					t.Fatalf("%s obj=%d v=%d: current usage %d, want %d", name, obj, v, got, want)
				}
				candidates := 0
				scan.ForEach(obj, false, func(i, add int, cost int64) bool {
					candidates++
					drop := int(scan.Drops()[i])
					if want := oracle(g, v, drop, add, obj); cost != want {
						t.Fatalf("%s obj=%d swap %d: %d→%d priced %d, oracle %d",
							name, obj, v, drop, add, cost, want)
					}
					return true
				})
				if want := g.Degree(v) * (g.N() - 1); candidates != want {
					t.Fatalf("%s v=%d: %d candidates, want %d", name, v, candidates, want)
				}
				scan.Close()
			}
		}
	}
}

func TestEngineMatchesOracleOnDisconnectedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eng := pricing.New(1)
	// Two components: a path and a triangle.
	g := graph.New(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	_ = rng
	f := g.Freeze()
	for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
		for v := 0; v < g.N(); v++ {
			scan := eng.NewScan(f, v)
			scan.ForEach(obj, false, func(i, add int, cost int64) bool {
				drop := int(scan.Drops()[i])
				if want := oracle(g, v, drop, add, obj); cost != want {
					t.Fatalf("obj=%d swap %d: %d→%d priced %d, oracle %d",
						obj, v, drop, add, cost, want)
				}
				return true
			})
			scan.Close()
		}
	}
}

func TestDeletionAndNoOpSemantics(t *testing.T) {
	eng := pricing.New(1)
	g := constructions.Cycle(7)
	g.AddEdge(0, 3) // give vertex 0 a chord so it has an adjacent non-drop add
	f := g.Freeze()
	scan := eng.NewScan(f, 0)
	defer scan.Close()
	cur := scan.CurrentUsage(pricing.Sum)
	scan.ForEach(pricing.Sum, false, func(i, add int, cost int64) bool {
		drop := int(scan.Drops()[i])
		switch {
		case add == drop: // no-op reprices the current position
			if cost != cur {
				t.Errorf("no-op %d→%d priced %d, want current %d", drop, add, cost, cur)
			}
		case g.HasEdge(0, add): // swap onto an existing edge is a pure deletion
			if want := scan.DeletionUsage(i, pricing.Sum); cost != want {
				t.Errorf("deletion-swap %d→%d priced %d, want %d", drop, add, cost, want)
			}
		}
		return true
	})
}

func TestSkipAdjacentExcludesNeighbors(t *testing.T) {
	eng := pricing.New(1)
	g := constructions.Cycle(8)
	g.AddEdge(0, 4)
	f := g.Freeze()
	scan := eng.NewScan(f, 0)
	defer scan.Close()
	scan.ForEach(pricing.Sum, true, func(i, add int, cost int64) bool {
		if g.HasEdge(0, add) || add == 0 {
			t.Errorf("skipAdjacent offered add=%d", add)
		}
		return true
	})
}

func TestForEachEarlyStop(t *testing.T) {
	eng := pricing.New(1)
	f := constructions.Complete(6).Freeze()
	calls := 0
	scan := eng.NewScan(f, 0)
	defer scan.Close()
	scan.ForEach(pricing.Sum, false, func(int, int, int64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestBestMoveMatchesExhaustiveAndIsWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, g := range testInstances(rng) {
		f := g.Freeze()
		for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
			for v := 0; v < g.N(); v++ {
				// Exhaustive reference with the documented tie-break.
				var want pricing.Best
				wantOK := false
				for _, w := range g.Neighbors(v) {
					for add := 0; add < g.N(); add++ {
						if add == v {
							continue
						}
						cand := pricing.Best{Drop: w, Add: add, Cost: oracle(g, v, w, add, obj)}
						if !wantOK || less(cand, want) {
							want, wantOK = cand, true
						}
					}
				}
				var results []pricing.Best
				for _, workers := range []int{1, 2, 7} {
					scan := pricing.New(workers).NewScan(f, v)
					got, ok := scan.BestMove(obj, false)
					scan.Close()
					if ok != wantOK {
						t.Fatalf("%s obj=%d v=%d workers=%d: ok=%v, want %v", name, obj, v, workers, ok, wantOK)
					}
					if ok {
						results = append(results, got)
					}
				}
				for _, got := range results {
					if got != want {
						t.Fatalf("%s obj=%d v=%d: BestMove %+v, want %+v", name, obj, v, got, want)
					}
				}
			}
		}
	}
}

func less(a, b pricing.Best) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Drop != b.Drop {
		return a.Drop < b.Drop
	}
	return a.Add < b.Add
}

func TestStabilityVerdictMatchesOracle(t *testing.T) {
	// The engine and the oracle must agree on the binary verdict "some
	// swap strictly improves some agent" for every instance and objective.
	rng := rand.New(rand.NewSource(4))
	eng := pricing.New(2)
	for name, g := range testInstances(rng) {
		f := g.Freeze()
		for _, obj := range []pricing.Objective{pricing.Sum, pricing.Max} {
			engineUnstable := false
			oracleUnstable := false
			for v := 0; v < g.N(); v++ {
				scan := eng.NewScan(f, v)
				cur := scan.CurrentUsage(obj)
				if best, ok := scan.BestMove(obj, false); ok && best.Cost < cur {
					engineUnstable = true
				}
				scan.Close()
				for _, w := range g.Neighbors(v) {
					for add := 0; add < g.N(); add++ {
						if add != v && oracle(g, v, w, add, obj) < pricing.Usage(g.BFS(v), obj) {
							oracleUnstable = true
						}
					}
				}
			}
			if engineUnstable != oracleUnstable {
				t.Fatalf("%s obj=%d: engine unstable=%v, oracle unstable=%v",
					name, obj, engineUnstable, oracleUnstable)
			}
		}
	}
}

func TestScanWithoutDrops(t *testing.T) {
	eng := pricing.New(1)
	g := graph.New(3)
	g.AddEdge(1, 2)
	f := g.Freeze()
	scan := eng.NewScan(f, 0) // isolated vertex: no moves
	defer scan.Close()
	if _, ok := scan.BestMove(pricing.Sum, false); ok {
		t.Error("isolated vertex reported a best move")
	}
	called := false
	scan.ForEach(pricing.Sum, false, func(int, int, int64) bool { called = true; return true })
	if called {
		t.Error("isolated vertex enumerated candidates")
	}
}
