package pricing

import (
	"repro/internal/graph"
)

// Session is a long-lived incremental pricing context: it owns a mutable
// CSR snapshot (graph.Dyn) of the game graph and patches it in O(deg) per
// applied move instead of re-freezing in O(n+m). Swap dynamics and
// best-response iterations hold one Session across an entire trajectory,
// issuing a fresh Scan per deviator over the live snapshot; the engine's
// pooled BFS scratch is shared with one-shot scans, and outstanding Scans
// are invalidated cheaply by a generation counter — a Scan issued before a
// mutation panics on its next use instead of pricing stale rows.
//
// The Session's lifecycle is freeze → apply → invalidate → certify: thaw
// the starting graph once, patch adjacency per applied (or undone) move,
// let the generation bump invalidate outstanding scans, and run
// certification sweeps against the same live snapshot. A Session is not
// safe for concurrent mutation; concurrent reads (sharded scans) between
// mutations are safe.
type Session struct {
	e      *Engine
	d      *graph.Dyn
	gen    uint64
	undo   []sessionOp
	rows   *RowCache   // shared-row cache, created lazily by RowCache()
	cancel func() bool // cooperative scan-cancel hook, see SetCancel
}

// sessionOp records one applied mutation for Undo. added/removed record
// what actually changed, so degenerate moves (swap onto an existing edge =
// pure deletion, swap with add == drop = no-op) roll back exactly.
type sessionOp struct {
	v, drop, add int32
	removed      bool // the v–drop edge was removed
	added        bool // the v–add edge was inserted
}

// NewSession starts an incremental pricing session on a thawed snapshot
// of g. Later mutations of g are not observed; route every move through
// ApplySwap/ApplyAdd/ApplyRemove (mirroring them onto g if the caller
// keeps g authoritative).
func (e *Engine) NewSession(g *graph.Graph) *Session {
	return &Session{e: e, d: g.Thaw()}
}

// Engine returns the engine whose workers and scratch pool back the
// session's scans.
func (s *Session) Engine() *Engine { return s.e }

// View returns the live snapshot. It remains valid across mutations (its
// contents change in place); readers that must not observe a mutation
// should hold the session's generation via Gen.
func (s *Session) View() *graph.Dyn { return s.d }

// N returns the vertex count of the session's snapshot.
func (s *Session) N() int { return s.d.N() }

// Gen returns the mutation generation, incremented by every applied or
// undone move. Scans remember the generation they were issued at.
func (s *Session) Gen() uint64 { return s.gen }

// Depth returns the number of applied moves available to Undo.
func (s *Session) Depth() int { return len(s.undo) }

// ApplySwap applies the basic game's move for agent v: the edge v–drop is
// removed and the edge v–add inserted, each endpoint's adjacency patched
// in O(deg). A swap onto an existing edge realizes a pure deletion and
// add == drop realizes a no-op, matching core.ApplyMove. It panics when
// the dropped edge is absent, mirroring core.ApplyMove's contract.
//
// The insertion is patched before the removal (the two operations commute
// — they touch distinct edges): near equilibrium the inserted edge
// usually leaves the dropped edge with an equal-length alternative, so
// the row cache's exact remove test keeps rows that a remove-first
// ordering would have had to flag — on a path, a local re-point
// invalidates O(1) rows instead of all n.
func (s *Session) ApplySwap(v, drop, add int) {
	if !s.d.HasEdge(v, drop) {
		panic("pricing: Session.ApplySwap drop edge missing")
	}
	if add == drop {
		// Remove-then-reinsert of the same edge: the graph is unchanged,
		// so the cache sees no notes and Undo has nothing to revert.
		s.push(sessionOp{v: int32(v), drop: int32(drop), add: int32(add)})
		return
	}
	added := s.d.AddEdge(v, add)
	if added {
		s.noteAdded(v, add)
	}
	s.d.RemoveEdge(v, drop)
	s.noteRemoved(v, drop)
	s.push(sessionOp{v: int32(v), drop: int32(drop), add: int32(add), removed: true, added: added})
}

// ApplyAdd inserts edge uv (the α-game's buy), reporting whether the edge
// was actually added.
func (s *Session) ApplyAdd(u, v int) bool {
	added := s.d.AddEdge(u, v)
	if added {
		s.noteAdded(u, v)
	}
	s.push(sessionOp{v: int32(u), add: int32(v), added: added})
	return added
}

// ApplyRemove deletes edge uv (the α-game's delete), reporting whether the
// edge was present.
func (s *Session) ApplyRemove(u, v int) bool {
	removed := s.d.RemoveEdge(u, v)
	if removed {
		s.noteRemoved(u, v)
	}
	s.push(sessionOp{v: int32(u), drop: int32(v), removed: removed})
	return removed
}

// noteRemoved and noteAdded forward an actual edge change to the attached
// RowCache's O(1)-per-row invalidation tests; sessions without a cache pay
// one nil check per mutation. They must be called after the corresponding
// graph.Dyn patch and before any further edge change, so the cache's valid
// rows still describe the pre-change graph when tested.
func (s *Session) noteRemoved(a, b int) {
	if s.rows != nil {
		s.rows.noteRemove(a, b)
	}
}

func (s *Session) noteAdded(a, b int) {
	if s.rows != nil {
		s.rows.noteAdd(a, b)
	}
}

func (s *Session) push(op sessionOp) {
	s.undo = append(s.undo, op)
	s.gen++
}

// Undo reverts the most recent applied move, returning false when the
// undo stack is empty. Like every mutation it bumps the generation, so
// scans issued before the Undo are invalidated too. It mirrors
// ApplySwap's insert-before-remove ordering (the operations commute
// whenever both ran), for the same row-cache benefit.
func (s *Session) Undo() bool {
	if len(s.undo) == 0 {
		return false
	}
	op := s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	if op.removed {
		s.d.AddEdge(int(op.v), int(op.drop))
		s.noteAdded(int(op.v), int(op.drop))
	}
	if op.added {
		s.d.RemoveEdge(int(op.v), int(op.add))
		s.noteRemoved(int(op.v), int(op.add))
	}
	s.gen++
	return true
}

// Close releases the session's row-cache arenas into the size-keyed pool
// for the next same-n session and invalidates every outstanding scan and
// row view through a generation bump. The session itself stays usable — a
// later RowCache call simply provisions fresh arenas — so Close is
// idempotent and safe to defer from any instance owner (the dynamics
// driver, the service layer).
func (s *Session) Close() {
	if s.rows == nil {
		return
	}
	s.rows.release()
	s.rows = nil
	s.gen++
}

// RowCacheStats reports the attached row cache's lifetime counters — BFS
// row rebuilds and mutation-forced invalidations — without creating a
// cache on a session that never attached one.
func (s *Session) RowCacheStats() (recomputed, invalidated uint64, attached bool) {
	if s.rows == nil {
		return 0, 0, false
	}
	return s.rows.recomputed, s.rows.invalidated, true
}

// NewScan prepares pricing state for deviator v over the live snapshot,
// with every incident edge as a dropped-edge candidate. The Scan is valid
// until the session's next mutation.
func (s *Session) NewScan(v int) *Scan {
	sc := s.e.NewScan(s.d, v)
	sc.sess, sc.gen, sc.cancel = s, s.gen, s.cancel
	return sc
}

// SetCancel installs a cooperative cancel hook on every Scan the session
// issues from now on: the unified scan engine polls it between candidate
// endpoints (one poll per endpoint BFS, never inside one) and stops
// enumerating once it returns true. A cancelled scan's result is
// unspecified; the installer must check its own cancellation source after
// the scan and discard the result on expiry. nil uninstalls. The hook must
// be cheap and safe for concurrent calls (the serve layer installs an
// atomic-flag-guarded ctx.Err poll, the pattern batchRows uses).
func (s *Session) SetCancel(cancel func() bool) { s.cancel = cancel }

// CancelHook returns the installed cancel hook (nil when none), so
// higher-layer scans that assemble their own scan.Spec — the game layer's
// add-major and staged scans — can honor the same hook.
func (s *Session) CancelHook() func() bool { return s.cancel }

// NewScanDrops is NewScan restricted to the given dropped-edge endpoints
// (ascending neighbors of v).
func (s *Session) NewScanDrops(v int, drops []int32) *Scan {
	sc := s.e.NewScanDrops(s.d, v, drops)
	sc.sess, sc.gen, sc.cancel = s, s.gen, s.cancel
	return sc
}
