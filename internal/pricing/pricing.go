// Package pricing implements the sharded swap-pricing engine for the basic
// network creation game.
//
// The core computational object of the game is the single-edge swap: agent v
// replaces an incident edge vw by an edge vw'. Equilibrium checking and
// best-response dynamics price Θ(n·deg(v)) candidate swaps per agent, and
// the naive path pays a fresh shortest-path computation for every candidate.
// The engine prices every candidate from two patched BFS rows instead:
//
//	d_{G−vw+vw'}(v, x) = min( d_{G−vw}(v, x), 1 + d_{G−v}(w', x) )
//
// The identity is exact: a shortest v–x path in the post-swap graph either
// avoids the new edge vw' (so it lives in G−vw, the first term), or uses it;
// a simple path that uses vw' starts with it, and its remainder is a w'–x
// path that avoids v entirely — and a w'–x path that avoids v automatically
// avoids the deleted edge vw, so it lives in G−v (the second term). A w'–x
// detour through v never helps, because 1 + d(w',v) + d(v,x) > d_{G−vw}(v,x).
//
// A Scan therefore prepares deg(v)+1 rows once per deviator (the deviator's
// row in G and in each G−vw), and then prices all candidates for one
// endpoint w' from a single BFS row of G−v, shared across every dropped
// edge. Per-worker scratch (distance rows and queues) lives in pooled
// buffers, and the best-move and first-improvement searches run on the
// unified scan engine (internal/scan) with the ByDropFirst tie-break —
// (cost, drop, add) — so the outcome is deterministic for any worker
// count.
//
// The package depends only on internal/graph, internal/par, and
// internal/scan so that both the basic-game checkers (internal/core) and
// the α-game dynamics (internal/nash) can share one engine.
package pricing

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/scan"
)

// Objective selects which usage cost is priced.
type Objective int

const (
	// Sum prices Σ_x d(v,x) (the sum version of the game).
	Sum Objective = iota
	// Max prices max_x d(v,x) (the local-diameter version).
	Max
)

// InfCost is the usage cost of a disconnected position. It equals
// core.InfCost; the engine duplicates the constant rather than importing
// internal/core, which sits above it in the dependency order.
const InfCost = int64(1) << 60

// Snapshot is the read surface the engine prices against: vertex count,
// sorted int32 adjacency, edge membership, and the three BFS kernels.
// Both graph.Frozen (the immutable CSR used by one-shot scans) and
// graph.Dyn (the mutable CSR owned by a Session) implement it. Snapshots
// must be safe for concurrent reads while a scan is sharded across
// workers.
type Snapshot interface {
	N() int
	Degree(v int) int
	Neighbors(v int) []int32
	HasEdge(u, v int) bool
	BFSInto(src int, dist, queue []int32) int
	BFSSkipVertex(src, skip int, dist, queue []int32) int
	BFSSkipEdge(src, a, b int, dist, queue []int32) int
}

var (
	_ Snapshot = (*graph.Frozen)(nil)
	_ Snapshot = (*graph.Dyn)(nil)
)

// Engine prices swaps over frozen CSR snapshots with pooled per-worker
// scratch. The zero worker count selects par.DefaultWorkers. An Engine is
// safe for concurrent use; Scans are not.
type Engine struct {
	workers int
	pool    sync.Pool // *scratch
}

type scratch struct {
	dist  []int32
	queue []int32
}

// New returns an engine. workers bounds the sharded best-move search
// (<= 0 means par.DefaultWorkers).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's effective worker count.
func (e *Engine) Workers() int { return e.workers }

var (
	sharedMu  sync.Mutex
	sharedByW = map[int]*Engine{}
)

// Shared returns the process-wide engine for a worker count (<= 0 means
// par.DefaultWorkers), so scratch pools survive across calls and every
// caller at the same parallelism — one-shot scans, sessions, checkers —
// shares one pool instead of growing its own.
func Shared(workers int) *Engine {
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	e, ok := sharedByW[workers]
	if !ok {
		e = New(workers)
		sharedByW[workers] = e
	}
	return e
}

func (e *Engine) getScratch(n int) *scratch {
	if s, ok := e.pool.Get().(*scratch); ok && len(s.dist) == n {
		return s
	}
	return &scratch{dist: make([]int32, n), queue: make([]int32, 0, n)}
}

func (e *Engine) putScratch(s *scratch) { e.pool.Put(s) }

// Scratch borrows a pooled (dist, queue) buffer pair sized for an n-vertex
// graph; release returns it to the pool. Callers running their own sharded
// BFS loops (e.g. the α-game's buy scan) use this to share the engine's
// per-worker scratch instead of allocating per chunk.
func (e *Engine) Scratch(n int) (dist, queue []int32, release func()) {
	s := e.getScratch(n)
	return s.dist, s.queue, func() { e.putScratch(s) }
}

// Scan holds the per-deviator pricing state: the deviator's BFS row in G and
// in each edge-deleted graph G−vw for the scanned dropped edges. Building a
// Scan costs len(drops)+1 BFS passes; pricing a candidate endpoint then
// costs one BFS pass shared across all dropped edges. A Scan prices against
// the snapshot it was built from; re-freeze (or re-issue Session.NewScan)
// and re-scan after mutating the underlying graph — scans issued by a
// Session detect mutation and panic rather than price stale rows. Close
// detaches the Scan from its snapshot (its row buffers are plain
// allocations, reclaimed by the GC); using a Scan after Close is invalid.
type Scan struct {
	e        *Engine
	f        Snapshot
	v        int
	drops    []int32     // dropped-edge endpoints, ascending
	cur      []int32     // d_G(v,·)
	dropRows [][]int32   // dropRows[i] = d_{G−v·drops[i]}(v,·)
	sess     *Session    // issuing session, nil for one-shot scans
	gen      uint64      // session generation at build time
	cancel   func() bool // cooperative cancel hook, see Session.SetCancel
}

// NewScan prepares pricing state for deviator v with every incident edge as
// a dropped-edge candidate (the basic game's move set).
func (e *Engine) NewScan(f Snapshot, v int) *Scan {
	return e.NewScanDrops(f, v, f.Neighbors(v))
}

// scanParThreshold is the dropped-edge count past which scan construction
// shards its per-drop BFS rows across the engine's workers: below it the
// spawn overhead outweighs the row work, above it (high-degree deviators —
// hubs, star centers) the construction would otherwise be the serial
// bottleneck of an otherwise sharded per-agent scan.
const scanParThreshold = 16

// NewScanDrops prepares pricing state for deviator v restricted to the given
// dropped-edge endpoints (e.g. the owned edges in the α-game). drops must be
// neighbors of v, in ascending order; the slice is not retained. The
// dropped-edge rows are independent BFS passes and are sharded across the
// engine's workers for high-degree deviators.
func (e *Engine) NewScanDrops(f Snapshot, v int, drops []int32) *Scan {
	n := f.N()
	s := &Scan{
		e:        e,
		f:        f,
		v:        v,
		drops:    append([]int32(nil), drops...),
		cur:      make([]int32, n),
		dropRows: make([][]int32, len(drops)),
	}
	sc := e.getScratch(n)
	f.BFSInto(v, s.cur, sc.queue)
	e.putScratch(sc)
	fill := func(lo, hi int) {
		sc := e.getScratch(n)
		defer e.putScratch(sc)
		for i := lo; i < hi; i++ {
			row := make([]int32, n)
			f.BFSSkipEdge(v, v, int(s.drops[i]), row, sc.queue)
			s.dropRows[i] = row
		}
	}
	if e.workers > 1 && len(s.drops) >= scanParThreshold {
		par.ForChunked(e.workers, len(s.drops), fill)
	} else {
		fill(0, len(s.drops))
	}
	return s
}

// Close detaches the Scan from its snapshot, invalidating further use.
func (s *Scan) Close() { s.f = nil }

// checkFresh panics when a session-issued Scan outlived a mutation of its
// session's live snapshot: its precomputed rows no longer describe the
// graph, so pricing from them would be silently wrong.
func (s *Scan) checkFresh() {
	if s.sess != nil && s.sess.gen != s.gen {
		panic("pricing: Scan used after Session mutation; re-issue the scan")
	}
}

// V returns the deviator.
func (s *Scan) V() int { return s.v }

// Drops returns the scanned dropped-edge endpoints in ascending order. The
// slice is owned by the Scan; do not modify.
func (s *Scan) Drops() []int32 { return s.drops }

// CurrentRow returns d_G(v,·) (owned by the Scan; do not modify).
func (s *Scan) CurrentRow() []int32 { return s.cur }

// CurrentUsage returns the deviator's usage cost in G.
func (s *Scan) CurrentUsage(obj Objective) int64 { return Usage(s.cur, obj) }

// DropRow returns d_{G−v·drops[i]}(v,·) (owned by the Scan; do not modify).
func (s *Scan) DropRow(i int) []int32 { return s.dropRows[i] }

// DeletionUsage returns the deviator's usage cost in G−v·drops[i], i.e. the
// price of a pure deletion of the i-th dropped edge.
func (s *Scan) DeletionUsage(i int, obj Objective) int64 {
	return Usage(s.dropRows[i], obj)
}

// ForEach prices every candidate swap (drop = drops[i], add) sequentially
// and invokes fn with the deviator's post-move usage cost. Candidates are
// enumerated add-major: add ascending over all vertices except v, and for
// each add, dropped edges in ascending order. skipAdjacent skips every add
// that is currently a neighbor of v — the α-game's rule, where the target
// edge must not exist; without it, an adjacent add prices the pure deletion
// of the dropped edge and add == drop prices the current cost (a no-op),
// the basic game's semantics. fn returning false stops the scan.
func (s *Scan) ForEach(obj Objective, skipAdjacent bool, fn func(dropIdx, add int, cost int64) bool) {
	s.checkFresh()
	if len(s.drops) == 0 {
		return
	}
	n := s.f.N()
	sc := s.e.getScratch(n)
	defer s.e.putScratch(sc)
	for add := 0; add < n; add++ {
		if add == s.v || (skipAdjacent && s.f.HasEdge(s.v, add)) {
			continue
		}
		s.f.BFSSkipVertex(add, s.v, sc.dist, sc.queue)
		for i := range s.drops {
			if !fn(i, add, Patched(s.dropRows[i], sc.dist, obj)) {
				return
			}
		}
	}
}

// Best is a priced swap candidate.
type Best struct {
	Drop int   // endpoint losing its edge to the deviator
	Add  int   // new endpoint
	Cost int64 // deviator's usage cost after the swap
}

// spec assembles the scan-engine description of this Scan's candidate
// universe: every vertex but the deviator (and, when skipAdjacent, its
// current neighbors), the engine's workers, and the given admission bound
// and tie-break order.
func (s *Scan) spec(ord scan.Order, threshold int64, skipAdjacent bool) scan.Spec {
	return scan.Spec{
		Workers:   s.e.workers,
		N:         s.f.N(),
		Threshold: threshold,
		Order:     ord,
		Skip: func(add int) bool {
			return add == s.v || (skipAdjacent && s.f.HasEdge(s.v, add))
		},
		Cancel: s.cancel,
	}
}

// SetCancel installs a cooperative cancel hook on this scan (see
// Session.SetCancel); scans issued by a session inherit the session's hook.
func (s *Scan) SetCancel(cancel func() bool) { s.cancel = cancel }

// CancelHook returns the scan's cancel hook (nil when none).
func (s *Scan) CancelHook() func() bool { return s.cancel }

// state lends the engine's pooled BFS scratch to the scan engine as its
// per-worker state.
func (s *Scan) state() (*scratch, func()) {
	sc := s.e.getScratch(s.f.N())
	return sc, func() { s.e.putScratch(sc) }
}

// pricer builds the endpoint's G−v row once and yields every dropped edge
// pricing strictly below the admission threshold; the thresholded reduction
// aborts a Θ(n) sum as soon as it proves the candidate cannot qualify.
func (s *Scan) pricer(obj Objective) scan.Pricer[*scratch] {
	return func(sc *scratch, add int, threshold func() int64, yield func(int, int64) bool) {
		s.f.BFSSkipVertex(add, s.v, sc.dist, sc.queue)
		for i := range s.drops {
			if cost, below := PatchedBelow(s.dropRows[i], sc.dist, obj, threshold()); below {
				if !yield(i, cost) {
					return
				}
			}
		}
	}
}

// BestMove returns the minimum-cost candidate swap, with ties broken toward
// the lexicographically smallest (Drop, Add) — the scan engine's
// ByDropFirst order over the ascending drop list. Candidate endpoints are
// sharded across the engine's workers; the merge order is deterministic for
// any worker count. ok is false when v has no candidate swaps.
func (s *Scan) BestMove(obj Objective, skipAdjacent bool) (best Best, ok bool) {
	s.checkFresh()
	if len(s.drops) == 0 {
		return Best{}, false
	}
	c, found := scan.Best(s.spec(scan.ByDropFirst, scan.NoThreshold, skipAdjacent), s.state, s.pricer(obj))
	if !found {
		return Best{}, false
	}
	return Best{Drop: int(s.drops[c.DropIdx]), Add: c.Add, Cost: c.Cost}, true
}

// FirstImproving returns the first candidate in the ForEach enumeration
// order — add-major, dropped edges ascending within an endpoint — whose
// cost is strictly below threshold. Candidate endpoints are sharded across
// the engine's workers and chunks past an already-found endpoint are
// pruned (the scan engine's CAS protocol), so the result equals a
// sequential early-exit scan for any worker count. It powers the
// first-improvement dynamics policy and the random-improving certification
// sweep.
func (s *Scan) FirstImproving(obj Objective, skipAdjacent bool, threshold int64) (first Best, ok bool) {
	s.checkFresh()
	if len(s.drops) == 0 {
		return Best{}, false
	}
	c, found := scan.First(s.spec(scan.ByEnumeration, threshold, skipAdjacent), s.state, s.pricer(obj))
	if !found {
		return Best{}, false
	}
	return Best{Drop: int(s.drops[c.DropIdx]), Add: c.Add, Cost: c.Cost}, true
}

// Usage prices a BFS row under obj: the row's sum (Sum) or maximum (Max),
// or InfCost when some vertex is unreachable.
func Usage(row []int32, obj Objective) int64 {
	if obj == Max {
		var ecc int64
		for _, d := range row {
			if d == graph.Unreachable {
				return InfCost
			}
			if int64(d) > ecc {
				ecc = int64(d)
			}
		}
		return ecc
	}
	var sum int64
	for _, d := range row {
		if d == graph.Unreachable {
			return InfCost
		}
		sum += int64(d)
	}
	return sum
}

// Patched prices the one-edge patch of two BFS rows under obj: the sum or
// maximum over x of min(dv[x], 1+dw[x]), with graph.Unreachable entries
// treated as infinite and InfCost returned when some x is unreachable via
// both rows. dv is the deviator's row and dw the new endpoint's row, both
// measured in the graph without the patching edge.
func Patched(dv, dw []int32, obj Objective) int64 {
	if obj == Max {
		return patchedEcc(dv, dw)
	}
	return patchedSum(dv, dw)
}

func patchedSum(dv, dw []int32) int64 {
	var sum int64
	for x := range dv {
		a, b := dv[x], dw[x]
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return InfCost
		case a == graph.Unreachable:
			sum += int64(b) + 1
		case b == graph.Unreachable:
			sum += int64(a)
		case b+1 < a:
			sum += int64(b) + 1
		default:
			sum += int64(a)
		}
	}
	return sum
}

// UsageSubset prices a BFS row restricted to the given target vertices
// (the interest-set cost of the communication-interests game): the sum or
// maximum of row[x] over x in subset, or InfCost when some target is
// unreachable. An empty subset prices to 0.
func UsageSubset(row []int32, subset []int32, obj Objective) int64 {
	var sum, ecc int64
	for _, x := range subset {
		d := row[x]
		if d == graph.Unreachable {
			return InfCost
		}
		if obj == Max {
			if int64(d) > ecc {
				ecc = int64(d)
			}
		} else {
			sum += int64(d)
		}
	}
	if obj == Max {
		return ecc
	}
	return sum
}

// patchDist is the single-target patch rule shared by every thresholded
// reducer: the post-move distance min(dv[x], 1+dw[x]) with Unreachable
// treated as infinite; reachable is false when both rows miss the target.
func patchDist(a, b int32) (d int64, reachable bool) {
	switch {
	case a == graph.Unreachable && b == graph.Unreachable:
		return 0, false
	case a == graph.Unreachable:
		return int64(b) + 1, true
	case b == graph.Unreachable:
		return int64(a), true
	default:
		d = int64(a)
		if alt := int64(b) + 1; alt < d {
			d = alt
		}
		return d, true
	}
}

// PatchedSubsetBelow prices the one-edge patch restricted to subset like
// PatchedSubset, but aborts as soon as the partial reduction proves the
// result cannot be strictly below threshold: the sum accumulates
// non-negative terms and the maximum only grows, so a partial value ≥
// threshold is final. It returns (exact cost, true) when the cost is
// strictly below threshold, and (unspecified partial, false) otherwise —
// callers comparing candidates against a current best pay only as much of
// a dense interest set as the comparison needs. The loop shell is kept
// separate from PatchedBelow's (a per-element subset/full branch measured
// ~8% on the dense 256-vertex sweep); the patch rule itself is the shared
// patchDist.
func PatchedSubsetBelow(dv, dw []int32, subset []int32, obj Objective, threshold int64) (int64, bool) {
	var sum, ecc int64
	for _, x := range subset {
		d, reachable := patchDist(dv[x], dw[x])
		if !reachable {
			return InfCost, InfCost < threshold
		}
		if obj == Max {
			if d > ecc {
				ecc = d
			}
			if ecc >= threshold {
				return ecc, false
			}
		} else {
			sum += d
			if sum >= threshold {
				return sum, false
			}
		}
	}
	if obj == Max {
		return ecc, ecc < threshold
	}
	return sum, sum < threshold
}

// PatchedBelow is PatchedSubsetBelow over the full vertex set: the
// one-edge patch of two whole BFS rows with the same threshold abort.
func PatchedBelow(dv, dw []int32, obj Objective, threshold int64) (int64, bool) {
	var sum, ecc int64
	for x := range dv {
		d, reachable := patchDist(dv[x], dw[x])
		if !reachable {
			return InfCost, InfCost < threshold
		}
		if obj == Max {
			if d > ecc {
				ecc = d
			}
			if ecc >= threshold {
				return ecc, false
			}
		} else {
			sum += d
			if sum >= threshold {
				return sum, false
			}
		}
	}
	if obj == Max {
		return ecc, ecc < threshold
	}
	return sum, sum < threshold
}

// PatchedSubset prices the one-edge patch min(dv[x], 1+dw[x]) restricted
// to the given target vertices, under the same row conventions as Patched.
// An empty subset prices to 0.
func PatchedSubset(dv, dw []int32, subset []int32, obj Objective) int64 {
	var sum, ecc int64
	for _, x := range subset {
		a, b := dv[x], dw[x]
		var d int64
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return InfCost
		case a == graph.Unreachable:
			d = int64(b) + 1
		case b == graph.Unreachable:
			d = int64(a)
		default:
			d = int64(a)
			if alt := int64(b) + 1; alt < d {
				d = alt
			}
		}
		if obj == Max {
			if d > ecc {
				ecc = d
			}
		} else {
			sum += d
		}
	}
	if obj == Max {
		return ecc
	}
	return sum
}

func patchedEcc(dv, dw []int32) int64 {
	var ecc int64
	for x := range dv {
		a, b := dv[x], dw[x]
		var d int64
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return InfCost
		case a == graph.Unreachable:
			d = int64(b) + 1
		case b == graph.Unreachable:
			d = int64(a)
		default:
			d = int64(a)
			if alt := int64(b) + 1; alt < d {
				d = alt
			}
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
