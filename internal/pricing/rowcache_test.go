package pricing_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/pricing"
)

// rowCacheGraph builds a random connected graph (tree plus chords) whose
// mutations exercise every invalidation branch: tree edges whose removal
// reroutes shortest paths, chords whose removal changes nothing, and
// disconnecting cuts once the fuzzer removes enough.
func rowCacheGraph(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// driveRowCache applies `steps` random session mutations (swaps, adds,
// removes, undos) with a Sync-and-verify after each: every cached row —
// in particular every row the invalidation tests decided to KEEP — must
// equal a fresh BFS of the current snapshot. A keep decision that was
// wrong (a stale row surviving a mutation that changed its distances)
// fails here and nowhere else, which is the point: the O(1)-per-row
// invalidation rules are the only unverified trust in the cache.
func driveRowCache(t *testing.T, g *graph.Graph, rng *rand.Rand, steps int) {
	t.Helper()
	eng := pricing.Shared(2)
	s := eng.NewSession(g)
	n := s.N()
	cache := s.RowCache()
	fresh := make([]int32, n)
	queue := make([]int32, 0, n)

	verify := func(step int) {
		view := cache.Sync(2, nil)
		for w := 0; w < n; w++ {
			row := view.Row(w)
			s.View().BFSInto(w, fresh, queue)
			for x := 0; x < n; x++ {
				if row[x] != fresh[x] {
					t.Fatalf("step %d: cached row %d entry %d = %d, fresh BFS = %d (gen %d)",
						step, w, x, row[x], fresh[x], s.Gen())
				}
			}
			// The tight-parent counts the exact remove test consults must
			// match fresh parent enumeration: multiplicity of x's shortest
			// paths' last hops, saturated at 255. Patched counts (gap-1
			// adds and removes that kept the row) are verified here too.
			tight := view.Tight(w)
			for x := 0; x < n; x++ {
				want := 0
				if fresh[x] > 0 {
					for _, u := range s.View().Neighbors(x) {
						if fresh[u] == fresh[x]-1 {
							want++
						}
					}
					if want > 255 {
						want = 255
					}
				}
				if int(tight[x]) != want {
					t.Fatalf("step %d: row %d tight[%d] = %d, fresh parent count = %d (gen %d)",
						step, w, x, tight[x], want, s.Gen())
				}
			}
		}
	}

	verify(-1)
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // swap: drop a random incident edge, add elsewhere
			v := rng.Intn(n)
			nbrs := s.View().Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			drop := int(nbrs[rng.Intn(len(nbrs))])
			add := rng.Intn(n)
			if add == v {
				continue
			}
			s.ApplySwap(v, drop, add)
		case op < 6:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.ApplyAdd(u, v)
		case op < 8:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.ApplyRemove(u, v)
		default:
			s.Undo()
		}
		verify(step)
	}
	// Unwind the whole trajectory: undo invalidation must be as honest as
	// apply invalidation.
	for s.Undo() {
	}
	verify(steps)
}

// TestRowCacheDifferential is the cache's ground-truth differential over
// random mutation sequences on random graphs and the paper's families.
func TestRowCacheDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	for trial := 0; trial < 4; trial++ {
		driveRowCache(t, rowCacheGraph(20+trial*7, rng), rng, 30)
	}
	driveRowCache(t, constructions.Path(24), rng, 25)
	driveRowCache(t, constructions.Star(24), rng, 25)
	driveRowCache(t, constructions.NewTorus(3).Graph(), rng, 25)
}

// TestRowCacheBatchedMutations pins the compound-mutation composition:
// several mutations between two Syncs must leave exactly the union of
// their invalidations, and the next Sync must restore every row.
func TestRowCacheBatchedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := rowCacheGraph(30, rng)
	eng := pricing.Shared(1)
	s := eng.NewSession(g)
	n := s.N()
	cache := s.RowCache()
	cache.Sync(1, nil)
	for round := 0; round < 10; round++ {
		for k := 0; k < 3; k++ {
			v := rng.Intn(n)
			nbrs := s.View().Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			drop := int(nbrs[rng.Intn(len(nbrs))])
			add := rng.Intn(n)
			if add != v {
				s.ApplySwap(v, drop, add)
			}
		}
		view := cache.Sync(1, nil)
		fresh := make([]int32, n)
		queue := make([]int32, 0, n)
		for w := 0; w < n; w++ {
			s.View().BFSInto(w, fresh, queue)
			row := view.Row(w)
			for x := 0; x < n; x++ {
				if row[x] != fresh[x] {
					t.Fatalf("round %d: row %d entry %d = %d, want %d", round, w, x, row[x], fresh[x])
				}
			}
		}
	}
}

// TestRowCacheStaleViewPanics pins the two misuse panics: a view read
// after a session mutation, and a row read outside the synced set.
func TestRowCacheStaleViewPanics(t *testing.T) {
	g := constructions.Path(8)
	s := pricing.Shared(1).NewSession(g)
	cache := s.RowCache()

	view := cache.Sync(1, nil)
	s.ApplySwap(0, 1, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Row after mutation: no panic")
			}
		}()
		view.Row(0)
	}()

	// Sync restricted to even vertices: reading an odd row must panic even
	// at the right generation.
	view = cache.Sync(1, func(w int) bool { return w%2 == 0 })
	view.Row(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Row outside synced set: no panic")
			}
		}()
		view.Row(3)
	}()
}

// TestRowCacheRecomputeAccounting pins the reuse ledger: a second Sync at
// an unchanged position recomputes nothing, and a single chord far from
// most shortest paths invalidates only a fraction of the rows.
func TestRowCacheRecomputeAccounting(t *testing.T) {
	g := constructions.NewTorus(4).Graph() // n = 32
	s := pricing.Shared(1).NewSession(g)
	n := s.N()
	cache := s.RowCache()
	cache.Sync(1, nil)
	if got := cache.Recomputed(); got != uint64(n) {
		t.Fatalf("first sync recomputed %d rows, want %d", got, n)
	}
	cache.Sync(1, nil)
	if got := cache.Recomputed(); got != uint64(n) {
		t.Fatalf("idle sync recomputed %d extra rows", got-uint64(n))
	}
	// A chord between two already-adjacent-ish vertices (distance ≤ 1
	// apart for every witness) invalidates no rows at all: pick u,v with
	// d(u,v) == 2 so only rows seeing a 2-gap are touched.
	view := cache.Sync(1, nil)
	var u, v int
	found := false
	for u = 0; u < n && !found; u++ {
		row := view.Row(u)
		for v = 0; v < n; v++ {
			if row[v] == 2 {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no distance-2 pair in torus")
	}
	s.ApplyAdd(u, v)
	cache.Sync(1, nil)
	delta := cache.Recomputed() - uint64(n)
	if delta == 0 || delta == uint64(n) {
		t.Fatalf("chord add recomputed %d of %d rows; want a proper nonzero fraction", delta, n)
	}
}

// checkExactInvalidation pins the tentpole claim that the O(1) tests are
// EXACT, not merely sound: from a fully warm cache, one mutation must
// invalidate precisely the rows whose distances genuinely changed — every
// kept row still equals a fresh BFS (soundness) and every flagged row
// genuinely differs (no spurious recomputes). It returns the number of
// rows the mutation invalidated.
func checkExactInvalidation(t *testing.T, g *graph.Graph, mutate func(*pricing.Session)) int {
	t.Helper()
	s := pricing.Shared(1).NewSession(g)
	n := s.N()
	cache := s.RowCache()
	view := cache.Sync(1, nil)
	old := make([][]int32, n)
	for w := 0; w < n; w++ {
		old[w] = append([]int32(nil), view.Row(w)...)
	}
	before := cache.Invalidated()
	mutate(s)
	fresh := make([]int32, n)
	queue := make([]int32, 0, n)
	for w := 0; w < n; w++ {
		s.View().BFSInto(w, fresh, queue)
		changed := false
		for x := 0; x < n; x++ {
			if fresh[x] != old[w][x] {
				changed = true
				break
			}
		}
		if valid := cache.Valid(w); valid == changed {
			t.Fatalf("row %d: valid=%v but distances changed=%v — invalidation test not exact", w, valid, changed)
		}
	}
	return int(cache.Invalidated() - before)
}

// twinRePointGraph is the O(1)-invalidation witness: a long chain hung off
// anchor 3, twin vertices 1 and 2 both attached to the anchor, and agent 0
// attached to twin 1. Re-pointing 0 from one twin to the other preserves
// d(w,0) for every chain witness — under ApplySwap's insert-before-remove
// ordering the add raises 0's tight-parent count to 2 and the remove
// decrements it back, so only the three local rows {0,1,2} change.
func twinRePointGraph(n int) *graph.Graph {
	g := graph.New(n)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	for v := 4; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

// TestRowCacheExactInvalidation drives checkExactInvalidation over the
// paper's families and random positions: single swaps, adds, removes —
// including disconnecting tree-edge cuts, where "all n rows invalidated"
// is the exact answer, not a conservative one.
func TestRowCacheExactInvalidation(t *testing.T) {
	// A bare tree-edge removal genuinely changes every row (the far side
	// goes unreachable for every witness): exactness means all n flagged.
	if inv := checkExactInvalidation(t, constructions.Path(128), func(s *pricing.Session) {
		s.ApplyRemove(63, 64)
	}); inv != 128 {
		t.Fatalf("path cut invalidated %d rows, want all 128", inv)
	}
	// A leaf re-point on the path end: the chord 0–2 shortcuts almost
	// every witness's route to 0, so near-full invalidation is exact too.
	checkExactInvalidation(t, constructions.Path(128), func(s *pricing.Session) {
		s.ApplySwap(0, 1, 2)
	})
	// Random positions, every mutation kind.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		g := rowCacheGraph(24+trial*5, rng)
		n := g.N()
		checkExactInvalidation(t, g, func(s *pricing.Session) {
			v := rng.Intn(n)
			nbrs := s.View().Neighbors(v)
			if len(nbrs) == 0 {
				return
			}
			s.ApplySwap(v, int(nbrs[rng.Intn(len(nbrs))]), rng.Intn(n))
		})
		checkExactInvalidation(t, g, func(s *pricing.Session) {
			s.ApplyAdd(rng.Intn(n), rng.Intn(n))
		})
		checkExactInvalidation(t, g, func(s *pricing.Session) {
			s.ApplyRemove(rng.Intn(n), rng.Intn(n))
		})
	}
}

// TestRowCacheSwapInvalidationO1 pins the tentpole win: an equidistant
// re-point on a 128-vertex position invalidates exactly the three local
// rows — not all n, which both the old conservative remove rule (every
// gap-1 removal flags the row) and a remove-first ApplySwap ordering (the
// chain is momentarily disconnected) would have forced.
func TestRowCacheSwapInvalidationO1(t *testing.T) {
	const n = 128
	if inv := checkExactInvalidation(t, twinRePointGraph(n), func(s *pricing.Session) {
		s.ApplySwap(0, 1, 2)
	}); inv != 3 {
		t.Fatalf("twin re-point invalidated %d rows, want exactly 3 (agent and both twins)", inv)
	}

	// The same bound holds across a full apply → sync → undo cycle, and
	// the ledger shows it: 3 rows per direction, n + 6 recomputes total.
	s := pricing.Shared(1).NewSession(twinRePointGraph(n))
	cache := s.RowCache()
	cache.Sync(1, nil)
	s.ApplySwap(0, 1, 2)
	if live := cache.Live(); live != n-3 {
		t.Fatalf("after swap: %d live rows, want %d", live, n-3)
	}
	for w := 3; w < n; w++ {
		if !cache.Valid(w) {
			t.Fatalf("chain row %d invalidated by an equidistant re-point", w)
		}
	}
	cache.Sync(1, nil)
	s.Undo()
	if got := cache.Invalidated(); got != 6 {
		t.Fatalf("apply+undo invalidated %d rows, want 6", got)
	}
	cache.Sync(1, nil)
	if got := cache.Recomputed(); got != n+6 {
		t.Fatalf("apply+undo recomputed %d rows, want %d", got, n+6)
	}
}

// FuzzRowCache is the fuzzing harness over driveRowCache's mutation
// space: fuzzer-chosen size, seed, and step count.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzRowCache -fuzztime=30s ./internal/pricing
func FuzzRowCache(f *testing.F) {
	f.Add(uint8(8), int64(1), uint8(10))
	f.Add(uint8(20), int64(9), uint8(25))
	f.Add(uint8(3), int64(42), uint8(40))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, stepsRaw uint8) {
		n := 3 + int(nRaw)%30
		steps := 1 + int(stepsRaw)%40
		rng := rand.New(rand.NewSource(seed))
		driveRowCache(t, rowCacheGraph(n, rng), rng, steps)
	})
}
