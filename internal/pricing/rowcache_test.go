package pricing_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/pricing"
)

// rowCacheGraph builds a random connected graph (tree plus chords) whose
// mutations exercise every invalidation branch: tree edges whose removal
// reroutes shortest paths, chords whose removal changes nothing, and
// disconnecting cuts once the fuzzer removes enough.
func rowCacheGraph(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// driveRowCache applies `steps` random session mutations (swaps, adds,
// removes, undos) with a Sync-and-verify after each: every cached row —
// in particular every row the invalidation tests decided to KEEP — must
// equal a fresh BFS of the current snapshot. A keep decision that was
// wrong (a stale row surviving a mutation that changed its distances)
// fails here and nowhere else, which is the point: the O(1)-per-row
// invalidation rules are the only unverified trust in the cache.
func driveRowCache(t *testing.T, g *graph.Graph, rng *rand.Rand, steps int) {
	t.Helper()
	eng := pricing.Shared(2)
	s := eng.NewSession(g)
	n := s.N()
	cache := s.RowCache()
	fresh := make([]int32, n)
	queue := make([]int32, 0, n)

	verify := func(step int) {
		view := cache.Sync(2, nil)
		for w := 0; w < n; w++ {
			row := view.Row(w)
			s.View().BFSInto(w, fresh, queue)
			for x := 0; x < n; x++ {
				if row[x] != fresh[x] {
					t.Fatalf("step %d: cached row %d entry %d = %d, fresh BFS = %d (gen %d)",
						step, w, x, row[x], fresh[x], s.Gen())
				}
			}
		}
	}

	verify(-1)
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // swap: drop a random incident edge, add elsewhere
			v := rng.Intn(n)
			nbrs := s.View().Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			drop := int(nbrs[rng.Intn(len(nbrs))])
			add := rng.Intn(n)
			if add == v {
				continue
			}
			s.ApplySwap(v, drop, add)
		case op < 6:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.ApplyAdd(u, v)
		case op < 8:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			s.ApplyRemove(u, v)
		default:
			s.Undo()
		}
		verify(step)
	}
	// Unwind the whole trajectory: undo invalidation must be as honest as
	// apply invalidation.
	for s.Undo() {
	}
	verify(steps)
}

// TestRowCacheDifferential is the cache's ground-truth differential over
// random mutation sequences on random graphs and the paper's families.
func TestRowCacheDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	for trial := 0; trial < 4; trial++ {
		driveRowCache(t, rowCacheGraph(20+trial*7, rng), rng, 30)
	}
	driveRowCache(t, constructions.Path(24), rng, 25)
	driveRowCache(t, constructions.Star(24), rng, 25)
	driveRowCache(t, constructions.NewTorus(3).Graph(), rng, 25)
}

// TestRowCacheBatchedMutations pins the compound-mutation composition:
// several mutations between two Syncs must leave exactly the union of
// their invalidations, and the next Sync must restore every row.
func TestRowCacheBatchedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := rowCacheGraph(30, rng)
	eng := pricing.Shared(1)
	s := eng.NewSession(g)
	n := s.N()
	cache := s.RowCache()
	cache.Sync(1, nil)
	for round := 0; round < 10; round++ {
		for k := 0; k < 3; k++ {
			v := rng.Intn(n)
			nbrs := s.View().Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			drop := int(nbrs[rng.Intn(len(nbrs))])
			add := rng.Intn(n)
			if add != v {
				s.ApplySwap(v, drop, add)
			}
		}
		view := cache.Sync(1, nil)
		fresh := make([]int32, n)
		queue := make([]int32, 0, n)
		for w := 0; w < n; w++ {
			s.View().BFSInto(w, fresh, queue)
			row := view.Row(w)
			for x := 0; x < n; x++ {
				if row[x] != fresh[x] {
					t.Fatalf("round %d: row %d entry %d = %d, want %d", round, w, x, row[x], fresh[x])
				}
			}
		}
	}
}

// TestRowCacheStaleViewPanics pins the two misuse panics: a view read
// after a session mutation, and a row read outside the synced set.
func TestRowCacheStaleViewPanics(t *testing.T) {
	g := constructions.Path(8)
	s := pricing.Shared(1).NewSession(g)
	cache := s.RowCache()

	view := cache.Sync(1, nil)
	s.ApplySwap(0, 1, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Row after mutation: no panic")
			}
		}()
		view.Row(0)
	}()

	// Sync restricted to even vertices: reading an odd row must panic even
	// at the right generation.
	view = cache.Sync(1, func(w int) bool { return w%2 == 0 })
	view.Row(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Row outside synced set: no panic")
			}
		}()
		view.Row(3)
	}()
}

// TestRowCacheRecomputeAccounting pins the reuse ledger: a second Sync at
// an unchanged position recomputes nothing, and a single chord far from
// most shortest paths invalidates only a fraction of the rows.
func TestRowCacheRecomputeAccounting(t *testing.T) {
	g := constructions.NewTorus(4).Graph() // n = 32
	s := pricing.Shared(1).NewSession(g)
	n := s.N()
	cache := s.RowCache()
	cache.Sync(1, nil)
	if got := cache.Recomputed(); got != uint64(n) {
		t.Fatalf("first sync recomputed %d rows, want %d", got, n)
	}
	cache.Sync(1, nil)
	if got := cache.Recomputed(); got != uint64(n) {
		t.Fatalf("idle sync recomputed %d extra rows", got-uint64(n))
	}
	// A chord between two already-adjacent-ish vertices (distance ≤ 1
	// apart for every witness) invalidates no rows at all: pick u,v with
	// d(u,v) == 2 so only rows seeing a 2-gap are touched.
	view := cache.Sync(1, nil)
	var u, v int
	found := false
	for u = 0; u < n && !found; u++ {
		row := view.Row(u)
		for v = 0; v < n; v++ {
			if row[v] == 2 {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no distance-2 pair in torus")
	}
	s.ApplyAdd(u, v)
	cache.Sync(1, nil)
	delta := cache.Recomputed() - uint64(n)
	if delta == 0 || delta == uint64(n) {
		t.Fatalf("chord add recomputed %d of %d rows; want a proper nonzero fraction", delta, n)
	}
}

// FuzzRowCache is the fuzzing harness over driveRowCache's mutation
// space: fuzzer-chosen size, seed, and step count.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzRowCache -fuzztime=30s ./internal/pricing
func FuzzRowCache(f *testing.F) {
	f.Add(uint8(8), int64(1), uint8(10))
	f.Add(uint8(20), int64(9), uint8(25))
	f.Add(uint8(3), int64(42), uint8(40))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, stepsRaw uint8) {
		n := 3 + int(nRaw)%30
		steps := 1 + int(stepsRaw)%40
		rng := rand.New(rand.NewSource(seed))
		driveRowCache(t, rowCacheGraph(n, rng), rng, steps)
	})
}
