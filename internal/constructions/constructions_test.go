package constructions

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestElementaryFamilies(t *testing.T) {
	cases := []struct {
		name       string
		g          *graph.Graph
		n, m, diam int
	}{
		{"path6", Path(6), 6, 5, 5},
		{"cycle7", Cycle(7), 7, 7, 3},
		{"star8", Star(8), 8, 7, 2},
		{"K6", Complete(6), 6, 15, 1},
		{"K34", CompleteBipartite(3, 4), 7, 12, 2},
		{"Q3", Hypercube(3), 8, 12, 3},
		{"Q4", Hypercube(4), 16, 32, 4},
		{"grid34", Grid(3, 4), 12, 17, 5},
		{"petersen", Petersen(), 10, 15, 2},
		{"doubleStar22", DoubleStar(2, 2), 6, 5, 3},
		{"broom", Broom(3, 4), 7, 6, 3},
		{"caterpillar", Caterpillar(3, 2), 9, 8, 4},
		{"spider", Spider(3, 2), 7, 6, 4},
		{"circulant", Circulant(8, []int{1, 2}), 8, 16, 2},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Errorf("%s: n=%d want %d", c.name, c.g.N(), c.n)
		}
		if c.g.M() != c.m {
			t.Errorf("%s: m=%d want %d", c.name, c.g.M(), c.m)
		}
		diam, ok := c.g.Diameter()
		if !ok || diam != c.diam {
			t.Errorf("%s: diam=%d,%v want %d,true", c.name, diam, ok, c.diam)
		}
	}
}

func TestTreesAreTrees(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":        Path(9),
		"star":        Star(9),
		"doubleStar":  DoubleStar(3, 4),
		"broom":       Broom(4, 3),
		"caterpillar": Caterpillar(4, 3),
		"spider":      Spider(4, 3),
	} {
		if !g.IsTree() {
			t.Errorf("%s is not a tree (n=%d m=%d)", name, g.N(), g.M())
		}
	}
}

func TestHypercubeRegularity(t *testing.T) {
	g := Hypercube(5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("Q5 degree(%d)=%d, want 5", v, g.Degree(v))
		}
	}
}

func TestCirculantIgnoresBadJumps(t *testing.T) {
	g := Circulant(6, []int{0, 6, 12, -1, 1})
	// jumps 0, 6, 12 are no-ops mod 6; -1 and 1 coincide: C6.
	if g.M() != 6 {
		t.Errorf("m=%d, want 6 (plain cycle)", g.M())
	}
}

func TestFig3StructuralClaims(t *testing.T) {
	g := Fig3()
	if g.N() != 13 || g.M() != 21 {
		t.Fatalf("Fig3 n=%d m=%d, want 13, 21", g.N(), g.M())
	}
	if diam, ok := g.Diameter(); !ok || diam != 3 {
		t.Errorf("Fig3 diameter = %d,%v, want 3", diam, ok)
	}
	if girth, ok := g.Girth(); !ok || girth != 4 {
		t.Errorf("Fig3 girth = %d,%v, want 4", girth, ok)
	}
	if !g.NeighborhoodsIndependent() {
		t.Error("Fig3 has a triangle; paper claims girth 4")
	}
	// Paper's local diameters: a, b_i, d_i: 3; c_{i,k}: 2.
	labels := Fig3Labels()
	for v := 0; v < g.N(); v++ {
		ecc, ok := g.Eccentricity(v)
		if !ok {
			t.Fatalf("Fig3 disconnected at %d", v)
		}
		want := 3
		if labels[v][0] == 'c' {
			want = 2
		}
		if ecc != want {
			t.Errorf("Fig3 ecc(%s) = %d, want %d", labels[v], ecc, want)
		}
	}
}

func TestFig3LabelsComplete(t *testing.T) {
	labels := Fig3Labels()
	if len(labels) != 13 {
		t.Fatalf("labels cover %d vertices, want 13", len(labels))
	}
	counts := map[byte]int{}
	for v := 0; v < 13; v++ {
		name, ok := labels[v]
		if !ok || name == "" {
			t.Fatalf("vertex %d unlabeled", v)
		}
		counts[name[0]]++
	}
	if counts['a'] != 1 || counts['b'] != 3 || counts['c'] != 6 || counts['d'] != 3 {
		t.Errorf("label distribution wrong: %v", counts)
	}
}

func TestFig3IsNotASumEquilibrium(t *testing.T) {
	// Reproduction finding: the literal Figure 3 graph admits an improving
	// swap for an agent d_i onto a matched partner, so it is not a sum
	// equilibrium. Pin the exact witness so regressions are caught.
	g := Fig3()
	ok, viol, err := core.CheckSum(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Fig3 reported as sum equilibrium; expected the d_i violation")
	}
	if viol == nil || viol.Kind != core.SwapImproves {
		t.Fatalf("violation = %v, want SwapImproves", viol)
	}
	// The improving move must involve a d vertex dropping a C-edge for a
	// matched partner, improving cost by exactly 1 (27→26).
	labels := Fig3Labels()
	if labels[viol.Move.V][0] != 'd' {
		t.Errorf("violating agent = %s, want a d vertex", labels[viol.Move.V])
	}
	if viol.OldCost != 27 || viol.NewCost != 26 {
		t.Errorf("violation costs %d→%d, want 27→26", viol.OldCost, viol.NewCost)
	}
	// Confirm with the independent evaluator.
	if got := core.EvaluateMove(g, viol.Move, core.Sum); got != viol.NewCost {
		t.Errorf("EvaluateMove = %d, want %d", got, viol.NewCost)
	}
}

func TestDiameterThreeSumEquilibrium(t *testing.T) {
	for _, groups := range []int{4, 5, 6} {
		g := DiameterThreeSumEquilibrium(groups)
		if g.N() != 4*groups+1 {
			t.Fatalf("groups=%d: n=%d, want %d", groups, g.N(), 4*groups+1)
		}
		if diam, ok := g.Diameter(); !ok || diam != 3 {
			t.Errorf("groups=%d: diameter = %d,%v, want 3", groups, diam, ok)
		}
		if girth, ok := g.Girth(); !ok || girth != 4 {
			t.Errorf("groups=%d: girth = %d,%v, want 4", groups, girth, ok)
		}
		ok, viol, err := core.CheckSum(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("groups=%d: not a sum equilibrium, witness %v", groups, viol)
		}
	}
}

func TestDiameterThreeSumEquilibriumPanicsBelow4(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("groups=3 did not panic")
		}
	}()
	DiameterThreeSumEquilibrium(3)
}

func TestDoubleStarMaxEquilibrium(t *testing.T) {
	// Theorem 4 / Figure 2: double stars with >= 2 leaves per root are the
	// extremal (diameter 3) max-equilibrium trees.
	g := DoubleStar(2, 3)
	ok, viol, err := core.CheckMax(g, 1)
	if err != nil || !ok {
		t.Errorf("DoubleStar(2,3) should be a max equilibrium: %v %v", viol, err)
	}
}
