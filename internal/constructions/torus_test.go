package constructions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestTorusBasicShape(t *testing.T) {
	for k := 1; k <= 6; k++ {
		tor := NewTorus(k)
		g := tor.Graph()
		if g.N() != 2*k*k {
			t.Fatalf("k=%d: n=%d, want %d", k, g.N(), 2*k*k)
		}
		if k >= 2 {
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) != 4 {
					t.Fatalf("k=%d: degree(%d)=%d, want 4", k, v, g.Degree(v))
				}
			}
		}
		if diam, ok := g.Diameter(); !ok || diam != k {
			t.Errorf("k=%d: diameter = %d,%v, want %d (Θ(√n))", k, diam, ok, k)
		}
	}
}

func TestTorusIndexCoordsRoundTrip(t *testing.T) {
	tor := NewTorus(4)
	for v := 0; v < tor.N(); v++ {
		i, j := tor.Coords(v)
		if (i+j)%2 != 0 {
			t.Fatalf("Coords(%d) = (%d,%d) has odd parity", v, i, j)
		}
		if got := tor.Index(i, j); got != v {
			t.Fatalf("Index(Coords(%d)) = %d", v, got)
		}
	}
	// Index must accept arbitrary residues.
	if tor.Index(8, 8) != tor.Index(0, 0) {
		t.Error("Index does not reduce mod 2k")
	}
	if tor.Index(-1, 1) != tor.Index(7, 1) {
		t.Error("Index does not handle negatives")
	}
}

func TestTorusIndexOddParityPanics(t *testing.T) {
	tor := NewTorus(3)
	defer func() {
		if recover() == nil {
			t.Fatal("odd-parity Index did not panic")
		}
	}()
	tor.Index(0, 1)
}

func TestTorusDistanceFormulaMatchesBFS(t *testing.T) {
	// The closed-form oracle max(cd(i,i'), cd(j,j')) must agree with BFS on
	// the materialized graph — validating the paper's distance claim.
	for k := 1; k <= 6; k++ {
		tor := NewTorus(k)
		g := tor.Graph()
		ap := g.AllPairs()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if got, want := tor.Dist(u, v), ap.Dist(u, v); got != want {
					t.Fatalf("k=%d: Dist(%d,%d) = %d, BFS %d", k, u, v, got, want)
				}
			}
		}
	}
}

func TestTorusVertexTransitivityOfDistances(t *testing.T) {
	// Every vertex must see the identical multiset of distances.
	tor := NewTorus(5)
	g := tor.Graph()
	ap := g.AllPairs()
	ref := ap.Histogram(0)
	for v := 1; v < g.N(); v++ {
		h := ap.Histogram(v)
		if len(h) != len(ref) {
			t.Fatalf("vertex %d histogram %v != %v", v, h, ref)
		}
		for i := range ref {
			if h[i] != ref[i] {
				t.Fatalf("vertex %d histogram %v != %v", v, h, ref)
			}
		}
	}
}

func TestTorusLocalDiameterExactlyK(t *testing.T) {
	for k := 2; k <= 5; k++ {
		g := NewTorus(k).Graph()
		for v := 0; v < g.N(); v++ {
			ecc, ok := g.Eccentricity(v)
			if !ok || ecc != k {
				t.Fatalf("k=%d: ecc(%d) = %d,%v, want %d", k, v, ecc, ok, k)
			}
		}
	}
}

func TestTorusIsMaxEquilibrium(t *testing.T) {
	// Theorem 12: the torus is insertion-stable and deletion-critical,
	// hence a max equilibrium. Exhaustive check for small k.
	for k := 2; k <= 4; k++ {
		g := NewTorus(k).Graph()
		ins, iv, err := core.IsInsertionStable(g, 0)
		if err != nil || !ins {
			t.Errorf("k=%d: not insertion-stable: %v %v", k, iv, err)
		}
		del, dv, err := core.IsDeletionCritical(g, 0)
		if err != nil || !del {
			t.Errorf("k=%d: not deletion-critical: %v %v", k, dv, err)
		}
		eq, ev, err := core.CheckMax(g, 0)
		if err != nil || !eq {
			t.Errorf("k=%d: not a max equilibrium: %v %v", k, ev, err)
		}
	}
}

func TestTorusSampledStabilityLargeK(t *testing.T) {
	// At k=12 (n=288) use the closed-form oracle + sampling.
	tor := NewTorus(12)
	rng := rand.New(rand.NewSource(77))
	if ok, e := core.SampleInsertionStable(tor, 150, rng); !ok {
		t.Errorf("sampled insertion-stability failed at %v", e)
	}
	g := tor.Graph()
	if ok, e := core.SampleDeletionCritical(g, 80, rng); !ok {
		t.Errorf("sampled deletion-criticality failed at %v", e)
	}
}

func TestMultiTorusShape(t *testing.T) {
	cases := []struct {
		d, k, n, deg int
	}{
		{1, 4, 8, 2},
		{2, 3, 18, 4},
		{3, 2, 16, 8},
		{3, 3, 54, 8},
		{4, 2, 32, 16},
	}
	for _, c := range cases {
		mt := NewMultiTorus(c.d, c.k)
		g := mt.Graph()
		if g.N() != c.n {
			t.Fatalf("d=%d k=%d: n=%d, want %d", c.d, c.k, g.N(), c.n)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != c.deg {
				t.Fatalf("d=%d k=%d: degree(%d)=%d, want %d", c.d, c.k, v, g.Degree(v), c.deg)
			}
		}
		if diam, ok := g.Diameter(); !ok || diam != c.k {
			t.Errorf("d=%d k=%d: diameter = %d,%v, want %d (Θ(n^{1/d}))", c.d, c.k, diam, ok, c.k)
		}
	}
}

func TestMultiTorusIndexCoordsRoundTrip(t *testing.T) {
	mt := NewMultiTorus(3, 3)
	coords := make([]int, 3)
	for v := 0; v < mt.N(); v++ {
		mt.Coords(v, coords)
		p := coords[0] % 2
		for _, c := range coords {
			if c%2 != p {
				t.Fatalf("Coords(%d) = %v mixes parity", v, coords)
			}
		}
		if got := mt.Index(coords); got != v {
			t.Fatalf("Index(Coords(%d)) = %d", v, got)
		}
	}
}

func TestMultiTorusDistanceFormulaMatchesBFS(t *testing.T) {
	for _, dk := range [][2]int{{1, 3}, {2, 3}, {3, 2}, {3, 3}} {
		mt := NewMultiTorus(dk[0], dk[1])
		g := mt.Graph()
		ap := g.AllPairs()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if got, want := mt.Dist(u, v), ap.Dist(u, v); got != want {
					t.Fatalf("d=%d k=%d: Dist(%d,%d) = %d, BFS %d",
						dk[0], dk[1], u, v, got, want)
				}
			}
		}
	}
}

func TestMultiTorusMatchesTorusForD2(t *testing.T) {
	// Same family, different labeling: distance histograms must agree.
	k := 4
	a := NewTorus(k).Graph().AllPairs().Histogram(0)
	b := NewMultiTorus(2, k).Graph().AllPairs().Histogram(0)
	if len(a) != len(b) {
		t.Fatalf("histograms differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histograms differ: %v vs %v", a, b)
		}
	}
}

func TestMultiTorusKInsertionStability(t *testing.T) {
	// Section 4 trade-off: the d-dimensional torus is deletion-critical and
	// stable under up to d−1 simultaneous insertions at one vertex.
	for _, dk := range [][2]int{{3, 2}, {3, 3}} {
		d, k := dk[0], dk[1]
		g := NewMultiTorus(d, k).Graph()
		del, dv, err := core.IsDeletionCritical(g, 0)
		if err != nil || !del {
			t.Errorf("d=%d k=%d: not deletion-critical: %v %v", d, k, dv, err)
		}
		for kk := 1; kk <= d-1; kk++ {
			st, wit, err := core.IsKInsertionStable(g, kk, 0)
			if err != nil || !st {
				t.Errorf("d=%d k=%d: not %d-insertion-stable: %+v %v", d, k, kk, wit, err)
			}
		}
	}
}

func TestNewTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTorus(0) did not panic")
		}
	}()
	NewTorus(0)
}

func TestNewMultiTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMultiTorus(0,3) did not panic")
		}
	}()
	NewMultiTorus(0, 3)
}

func TestMultiTorusIndexArityPanics(t *testing.T) {
	mt := NewMultiTorus(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	mt.Index([]int{1})
}

var _ graph.Metric = (*Torus)(nil)
