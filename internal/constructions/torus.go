package constructions

import (
	"fmt"

	"repro/internal/graph"
)

// Torus is the diagonal 2D torus of Theorem 12 / Figure 4: a 2D torus
// rotated 45°. It has n = 2k² vertices, one per pair (i,j) with
// 0 ≤ i,j < 2k and i+j even; vertex (i,j) is adjacent to (i±1, j±1)
// (all four sign combinations, coordinates mod 2k). The graph is
// vertex-transitive, 4-regular (k ≥ 2), has local diameter exactly k at
// every vertex, and is both insertion-stable and deletion-critical — hence
// a max equilibrium of diameter Θ(√n).
//
// Torus doubles as a closed-form distance oracle (graph.Metric):
// d((i,j),(i',j')) = max(cd(i,i'), cd(j,j')) with cd the circular distance
// on Z_{2k}, allowing equilibrium spot-checks at sizes where explicit APSP
// is infeasible.
type Torus struct {
	K int
}

// NewTorus returns the Theorem 12 torus oracle for the given k >= 1.
func NewTorus(k int) *Torus {
	if k < 1 {
		panic(fmt.Sprintf("constructions: torus k=%d out of range", k))
	}
	return &Torus{K: k}
}

// N returns the number of vertices, 2k².
func (t *Torus) N() int { return 2 * t.K * t.K }

// Index maps coordinates (i,j) (with i+j even, taken mod 2k) to a vertex id.
func (t *Torus) Index(i, j int) int {
	m := 2 * t.K
	i = ((i % m) + m) % m
	j = ((j % m) + m) % m
	if (i+j)%2 != 0 {
		panic(fmt.Sprintf("constructions: torus coordinate (%d,%d) has odd parity", i, j))
	}
	// Rows are indexed by i; within row i the valid j share i's parity.
	return i*t.K + (j-(i%2))/2
}

// Coords inverts Index.
func (t *Torus) Coords(v int) (i, j int) {
	i = v / t.K
	j = 2*(v%t.K) + (i % 2)
	return i, j
}

// Dist returns the closed-form distance max(cd(i,i'), cd(j,j')).
func (t *Torus) Dist(u, v int) int {
	iu, ju := t.Coords(u)
	iv, jv := t.Coords(v)
	m := 2 * t.K
	return maxInt(circDist(iu, iv, m), circDist(ju, jv, m))
}

// Graph materializes the torus as an explicit graph.
func (t *Torus) Graph() *graph.Graph {
	g := graph.New(t.N())
	for v := 0; v < t.N(); v++ {
		i, j := t.Coords(v)
		for _, di := range [2]int{-1, 1} {
			for _, dj := range [2]int{-1, 1} {
				u := t.Index(i+di, j+dj)
				if u != v {
					g.AddEdge(v, u)
				}
			}
		}
	}
	return g
}

// LocalDiameter returns k, the proven local diameter of every vertex.
func (t *Torus) LocalDiameter() int { return t.K }

// MultiTorus is the d-dimensional generalization from Section 4: one vertex
// per tuple (i_1,…,i_d) with i_1 ≡ i_2 ≡ … ≡ i_d (mod 2), each coordinate
// in Z_{2k}, and edges to (i_1±1, …, i_d±1) for all 2^d independent sign
// choices. It has n = 2k^d vertices, diameter Θ(n^{1/d}) = k, is
// deletion-critical, and is stable under the insertion (or swapping) of up
// to d−1 edges at one vertex — the diameter-versus-agent-power trade-off.
type MultiTorus struct {
	D int // dimension (>= 1)
	K int // half-period: coordinates live in Z_{2k}
}

// NewMultiTorus returns the d-dimensional torus oracle.
func NewMultiTorus(d, k int) *MultiTorus {
	if d < 1 || k < 1 {
		panic(fmt.Sprintf("constructions: multitorus d=%d k=%d out of range", d, k))
	}
	return &MultiTorus{D: d, K: k}
}

// N returns the number of vertices, 2·k^d.
func (t *MultiTorus) N() int {
	n := 2
	for i := 0; i < t.D; i++ {
		n *= t.K
	}
	return n
}

// Index maps a coordinate tuple (all entries sharing one parity, mod 2k) to
// a vertex id: parity·k^d + Σ_j ((i_j − parity)/2)·k^j.
func (t *MultiTorus) Index(coords []int) int {
	if len(coords) != t.D {
		panic("constructions: multitorus coordinate arity mismatch")
	}
	m := 2 * t.K
	parity := (((coords[0] % m) + m) % m) % 2
	id := 0
	for j := t.D - 1; j >= 0; j-- {
		c := ((coords[j] % m) + m) % m
		if c%2 != parity {
			panic(fmt.Sprintf("constructions: multitorus coordinates %v mix parity", coords))
		}
		id = id*t.K + (c-parity)/2
	}
	half := t.N() / 2
	return parity*half + id
}

// Coords inverts Index into the provided slice (length D) and returns it.
func (t *MultiTorus) Coords(v int, coords []int) []int {
	if coords == nil {
		coords = make([]int, t.D)
	}
	half := t.N() / 2
	parity := 0
	if v >= half {
		parity = 1
		v -= half
	}
	for j := 0; j < t.D; j++ {
		coords[j] = 2*(v%t.K) + parity
		v /= t.K
	}
	return coords
}

// Dist returns the closed-form distance max_j cd(i_j, i'_j).
func (t *MultiTorus) Dist(u, v int) int {
	cu := t.Coords(u, nil)
	cv := t.Coords(v, nil)
	m := 2 * t.K
	best := 0
	for j := 0; j < t.D; j++ {
		if d := circDist(cu[j], cv[j], m); d > best {
			best = d
		}
	}
	return best
}

// Graph materializes the multitorus as an explicit graph (2^d-regular for
// k >= 2).
func (t *MultiTorus) Graph() *graph.Graph {
	g := graph.New(t.N())
	coords := make([]int, t.D)
	shifted := make([]int, t.D)
	m := 2 * t.K
	for v := 0; v < t.N(); v++ {
		t.Coords(v, coords)
		for signs := 0; signs < 1<<uint(t.D); signs++ {
			for j := 0; j < t.D; j++ {
				delta := 1
				if signs&(1<<uint(j)) != 0 {
					delta = -1
				}
				shifted[j] = ((coords[j]+delta)%m + m) % m
			}
			u := t.Index(shifted)
			if u != v {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// LocalDiameter returns k, the diameter of the multitorus.
func (t *MultiTorus) LocalDiameter() int { return t.K }

// circDist is the circular distance min(|a-b|, m-|a-b|) on Z_m.
func circDist(a, b, m int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m-d < d {
		return m - d
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Interface conformance: both tori are distance oracles.
var (
	_ graph.Metric = (*Torus)(nil)
	_ graph.Metric = (*MultiTorus)(nil)
)
