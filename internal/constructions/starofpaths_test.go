package constructions

import "testing"

func TestStarOfPathsShape(t *testing.T) {
	spokes, pathLen, blob := 4, 3, 5
	g := StarOfPaths(spokes, pathLen, blob)
	wantN := 1 + spokes*(pathLen+blob)
	if g.N() != wantN {
		t.Fatalf("n = %d, want %d", g.N(), wantN)
	}
	// Edges: per spoke: pathLen path edges + blob edges to the path end +
	// C(blob,2) internal blob edges.
	wantM := spokes * (pathLen + blob + blob*(blob-1)/2)
	if g.M() != wantM {
		t.Fatalf("m = %d, want %d", g.M(), wantM)
	}
	if g.Degree(0) != spokes {
		t.Errorf("center degree = %d, want %d", g.Degree(0), spokes)
	}
	if !g.IsConnected() {
		t.Error("disconnected")
	}
	// Diameter: blob → center → blob = 2*(pathLen+1).
	if diam, _ := g.Diameter(); diam != 2*(pathLen+1) {
		t.Errorf("diameter = %d, want %d", diam, 2*(pathLen+1))
	}
}

func TestStarOfPathsBlobIsClique(t *testing.T) {
	g := StarOfPaths(2, 2, 4)
	// First spoke's blob starts at 1+2 = 3: vertices 3,4,5,6.
	for i := 3; i <= 6; i++ {
		for j := i + 1; j <= 6; j++ {
			if !g.HasEdge(i, j) {
				t.Errorf("blob edge %d-%d missing", i, j)
			}
		}
	}
}

func TestStarOfPathsZeroPath(t *testing.T) {
	// pathLen 0: blobs attach directly to the center.
	g := StarOfPaths(3, 0, 2)
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7", g.N())
	}
	if diam, ok := g.Diameter(); !ok || diam != 2 {
		t.Errorf("diameter = %d,%v, want 2", diam, ok)
	}
}
