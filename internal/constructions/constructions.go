// Package constructions builds the named graph families used throughout the
// paper: the elementary families (paths, cycles, stars, complete and
// bipartite graphs, hypercubes, grids), the equilibrium witnesses (the
// double star of Figure 2, the diameter-3 sum equilibrium of Figure 3 /
// Theorem 5), and the lower-bound constructions of Section 4 (the diagonal
// torus of Figure 4 / Theorem 12 and its d-dimensional generalization),
// together with closed-form distance oracles for the tori.
package constructions

import (
	"fmt"

	"repro/internal/graph"
)

// Path returns the path graph P_n (vertices 0..n-1 in a line).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle C_n; for n < 3 it degenerates to a path.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// DoubleStar returns the Figure 2 tree: adjacent roots 0 and 1 carrying
// left and right leaves respectively. With left, right >= 2 it is a max
// equilibrium of diameter 3 — the extremal max-equilibrium tree
// (Theorem 4).
func DoubleStar(left, right int) *graph.Graph {
	g := graph.New(2 + left + right)
	g.AddEdge(0, 1)
	for i := 0; i < left; i++ {
		g.AddEdge(0, 2+i)
	}
	for i := 0; i < right; i++ {
		g.AddEdge(1, 2+left+i)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices, with
// vertex x adjacent to x XOR 2^i.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			g.AddEdge(v, v^(1<<uint(i)))
		}
	}
	return g
}

// Grid returns the rows×cols king-free grid (4-neighborhood, no wraparound).
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return g
}

// Petersen returns the Petersen graph (outer C5 on 0..4, inner pentagram on
// 5..9, spokes i–i+5). Girth 5, diameter 2; a classic stress test for the
// structural predicates.
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
		g.AddEdge(5+i, 5+(i+2)%5)
		g.AddEdge(i, 5+i)
	}
	return g
}

// Broom returns a path of handle vertices ending in a star of bristles:
// vertices 0..handle-1 form the handle, the last handle vertex carries
// bristles leaves.
func Broom(handle, bristles int) *graph.Graph {
	g := graph.New(handle + bristles)
	for v := 0; v+1 < handle; v++ {
		g.AddEdge(v, v+1)
	}
	for i := 0; i < bristles; i++ {
		g.AddEdge(handle-1, handle+i)
	}
	return g
}

// Caterpillar returns a spine of `spine` vertices each carrying `legs`
// leaves.
func Caterpillar(spine, legs int) *graph.Graph {
	g := graph.New(spine * (1 + legs))
	for s := 0; s+1 < spine; s++ {
		g.AddEdge(s, s+1)
	}
	leaf := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(s, leaf)
			leaf++
		}
	}
	return g
}

// Spider returns `legs` paths of length legLen joined at a center (vertex 0).
func Spider(legs, legLen int) *graph.Graph {
	g := graph.New(1 + legs*legLen)
	v := 1
	for l := 0; l < legs; l++ {
		prev := 0
		for i := 0; i < legLen; i++ {
			g.AddEdge(prev, v)
			prev = v
			v++
		}
	}
	return g
}

// StarOfPaths returns the construction behind the paper's Conjecture 14
// remark: a center of degree `spokes` attached to paths of length pathLen,
// with a clique "blob" of blobSize vertices at the end of each path. With
// many spokes and large blobs, almost all *pairs* of vertices realize the
// same distance (blob-to-blob through the center), yet the per-vertex
// distance-uniformity of Conjecture 14 fails badly and the diameter is
// large — showing why the conjecture must quantify over every vertex.
//
// Layout: vertex 0 is the center; spoke s occupies path vertices
// 1+s*(pathLen+blobSize) … and then its blob.
func StarOfPaths(spokes, pathLen, blobSize int) *graph.Graph {
	per := pathLen + blobSize
	g := graph.New(1 + spokes*per)
	for s := 0; s < spokes; s++ {
		base := 1 + s*per
		prev := 0
		for i := 0; i < pathLen; i++ {
			g.AddEdge(prev, base+i)
			prev = base + i
		}
		blob := base + pathLen
		for i := 0; i < blobSize; i++ {
			g.AddEdge(prev, blob+i)
			for j := 0; j < i; j++ {
				g.AddEdge(blob+i, blob+j)
			}
		}
	}
	return g
}

// Circulant returns the circulant graph on n vertices with the given jump
// set: v is adjacent to v±j (mod n) for each jump j. Jumps are reduced
// modulo n; jump 0 and duplicates are ignored.
func Circulant(n int, jumps []int) *graph.Graph {
	g := graph.New(n)
	for _, j := range jumps {
		j = ((j % n) + n) % n
		if j == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			g.AddEdge(v, (v+j)%n)
		}
	}
	return g
}

// Fig3 returns the 13-vertex graph of Figure 3 exactly as described in
// Theorem 5 of the SPAA 2010 paper. Vertex layout: a=0; b_i=i (i=1..3);
// c_{i,k}=3+2(i-1)+k (i=1..3, k=1..2, so c-range 4..9); d_i=9+i (i=1..3).
//
// One vertex a has neighbors b1..b3; each b_i has two private neighbors
// C_i = {c_{i,1}, c_{i,2}}; each d_i is joined to all of C_i; and the C_i
// are pairwise joined by perfect matchings — the straight matching between
// C1,C2 and C2,C3, and the crossed matching between C1,C3.
//
// Reproduction note: this graph has diameter 3, girth 4, and the local
// diameters claimed in the paper (3 for a, b_i, d_i; 2 for c_{i,k}) —
// but it is NOT a sum equilibrium. Agent d_1 strictly improves by swapping
// its edge d_1–c_{1,1} onto the matched partner c_{2,1} (cost 27→26): the
// swap gains 1 each for c_{2,1}, b_2 and d_2 while losing only 1 each for
// c_{1,1} and its other matching partner, because the "at least 2" loss
// from Lemma 8 does not apply when the new endpoint is adjacent to the
// dropped one. The same improving swap exists under every straight/crossed
// matching assignment on three branches. See DiameterThreeSumEquilibrium
// for the repaired witness (four branches), which restores the theorem's
// statement.
func Fig3() *graph.Graph {
	g := graph.New(13)
	a := 0
	b := func(i int) int { return i }                  // i in 1..3
	c := func(i, k int) int { return 3 + 2*(i-1) + k } // i in 1..3, k in 1..2
	d := func(i int) int { return 9 + i }              // i in 1..3

	for i := 1; i <= 3; i++ {
		g.AddEdge(a, b(i))
		g.AddEdge(b(i), c(i, 1))
		g.AddEdge(b(i), c(i, 2))
		g.AddEdge(d(i), c(i, 1))
		g.AddEdge(d(i), c(i, 2))
	}
	// Straight matchings C1–C2 and C2–C3.
	for k := 1; k <= 2; k++ {
		g.AddEdge(c(1, k), c(2, k))
		g.AddEdge(c(2, k), c(3, k))
	}
	// Crossed matching C1–C3.
	g.AddEdge(c(1, 1), c(3, 2))
	g.AddEdge(c(1, 2), c(3, 1))
	return g
}

// Fig3Labels maps Fig3 vertex indices to the paper's vertex names.
func Fig3Labels() map[int]string {
	labels := map[int]string{0: "a"}
	for i := 1; i <= 3; i++ {
		labels[i] = fmt.Sprintf("b%d", i)
		labels[9+i] = fmt.Sprintf("d%d", i)
		for k := 1; k <= 2; k++ {
			labels[3+2*(i-1)+k] = fmt.Sprintf("c%d,%d", i, k)
		}
	}
	return labels
}

// DiameterThreeSumEquilibrium returns a verified diameter-3 sum equilibrium
// on 4g+1 vertices — the repaired witness for Theorem 5. It generalizes the
// Figure 3 skeleton to `groups` >= 4 branches: a center a adjacent to
// b_1..b_g; each b_i with two private neighbors C_i = {c_{i,1}, c_{i,2}};
// each d_i joined to all of C_i; and *crossed* perfect matchings
// c_{i,1}–c_{j,2}, c_{i,2}–c_{j,1} between every pair C_i, C_j.
//
// With four or more branches, dropping an edge d_i–c_{i,k} distances d_i
// from c_{i,k} and from its >= 3 matching partners, which absorbs the
// gain of at most 3 (the new endpoint plus b_j and d_j) that broke the
// three-branch construction. All-crossed matchings keep every triple of
// matchings triangle-free (girth 4). The result is verified exhaustively
// to be a sum equilibrium for groups = 4, 5, 6 in the test suite; the
// checker accepts any groups >= 4.
//
// Vertex layout: a=0; b_i=i (1..g); c_{i,k}=g+2(i-1)+k; d_i=3g+i.
func DiameterThreeSumEquilibrium(groups int) *graph.Graph {
	if groups < 4 {
		panic(fmt.Sprintf("constructions: DiameterThreeSumEquilibrium requires groups >= 4, got %d", groups))
	}
	g := graph.New(4*groups + 1)
	b := func(i int) int { return i }
	c := func(i, k int) int { return groups + 2*(i-1) + k }
	d := func(i int) int { return 3*groups + i }
	for i := 1; i <= groups; i++ {
		g.AddEdge(0, b(i))
		g.AddEdge(b(i), c(i, 1))
		g.AddEdge(b(i), c(i, 2))
		g.AddEdge(d(i), c(i, 1))
		g.AddEdge(d(i), c(i, 2))
	}
	for i := 1; i <= groups; i++ {
		for j := i + 1; j <= groups; j++ {
			g.AddEdge(c(i, 1), c(j, 2))
			g.AddEdge(c(i, 2), c(j, 1))
		}
	}
	return g
}
