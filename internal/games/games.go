// Package games implements the classic α-parametrized network creation
// game of Fabrikant, Luthra, Maneva, Papadimitriou and Shenker [9] that the
// basic game abstracts: each vertex owns (pays for) some of its incident
// edges, and the cost of vertex v is
//
//	cost_α(v) = α · (edges bought by v) + Σ_u d(v,u).
//
// The package provides the α-cost accounting, the single-edge greedy move
// analysis (buy / delete / swap), the α-interval for which a given
// ownership configuration is greedily stable, the social optimum frontier
// (star versus clique), and price-of-anarchy ratios. Its central
// reproduction role is the paper's transfer principle: a swap changes no
// ownership count, so its profitability is independent of α — hence every
// upper bound proved for swap equilibria of the basic game applies to the
// α-games for every α simultaneously.
package games

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Ownership assigns every edge of a graph to one of its endpoints (the
// player that pays α for it).
type Ownership map[graph.Edge]int

// ErrBadOwnership is returned when an ownership map does not exactly cover
// the edge set.
var ErrBadOwnership = errors.New("games: ownership must assign every edge to one endpoint")

// MinOwnership assigns every edge to its smaller endpoint.
func MinOwnership(g *graph.Graph) Ownership {
	o := make(Ownership, g.M())
	for _, e := range g.Edges() {
		o[e] = e.U
	}
	return o
}

// BalancedOwnership greedily assigns each edge to the endpoint currently
// owning fewer edges (ties to the smaller id), spreading creation cost.
func BalancedOwnership(g *graph.Graph) Ownership {
	o := make(Ownership, g.M())
	owned := make([]int, g.N())
	for _, e := range g.Edges() {
		if owned[e.V] < owned[e.U] {
			o[e] = e.V
			owned[e.V]++
		} else {
			o[e] = e.U
			owned[e.U]++
		}
	}
	return o
}

// Validate checks that o assigns exactly the edges of g to endpoints.
func (o Ownership) Validate(g *graph.Graph) error {
	if len(o) != g.M() {
		return fmt.Errorf("%w: %d assignments for %d edges", ErrBadOwnership, len(o), g.M())
	}
	for e, owner := range o {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("%w: assigned edge %v missing", ErrBadOwnership, e)
		}
		if owner != e.U && owner != e.V {
			return fmt.Errorf("%w: edge %v owned by non-endpoint %d", ErrBadOwnership, e, owner)
		}
	}
	return nil
}

// Bought returns the number of edges v owns.
func (o Ownership) Bought(v int) int {
	c := 0
	for e, owner := range o {
		_ = e
		if owner == v {
			c++
		}
	}
	return c
}

// PlayerCost returns cost_α(v) = α·bought(v) + Σ_u d(v,u). Disconnected
// positions cost +Inf (represented as core.InfCost in the usage term).
func PlayerCost(g *graph.Graph, o Ownership, v int, alpha float64) float64 {
	usage := core.SumCost(g, v)
	return alpha*float64(o.Bought(v)) + float64(usage)
}

// SocialCost returns α·m + Σ_v Σ_u d(v,u), the standard social cost of the
// α-game (each edge paid once).
func SocialCost(g *graph.Graph, alpha float64) float64 {
	total := float64(alpha) * float64(g.M())
	for v := 0; v < g.N(); v++ {
		total += float64(core.SumCost(g, v))
	}
	return total
}

// StarCost returns the social cost of the star on n vertices:
// α(n−1) + (n−1)·1 + (n−1)·(1 + 2(n−2)).
func StarCost(n int, alpha float64) float64 {
	if n <= 1 {
		return 0
	}
	usage := float64(n-1) + float64(n-1)*(1+2*float64(n-2))
	return alpha*float64(n-1) + usage
}

// CliqueCost returns the social cost of K_n: α·n(n−1)/2 + n(n−1).
func CliqueCost(n int, alpha float64) float64 {
	return alpha*float64(n)*float64(n-1)/2 + float64(n)*float64(n-1)
}

// OptUpperBound returns min(StarCost, CliqueCost) — an upper bound on the
// social optimum that is tight in the classic regimes (clique for α ≤ 2,
// star for α ≥ 2, cf. [9] §2).
func OptUpperBound(n int, alpha float64) float64 {
	s, c := StarCost(n, alpha), CliqueCost(n, alpha)
	if s < c {
		return s
	}
	return c
}

// PriceOfAnarchyProxy returns SocialCost(g,α) / OptUpperBound(n,α), a lower
// bound on nothing and an upper bound on the true PoA contribution of g
// (since OptUpperBound ≥ OPT it actually *under*-estimates the ratio; for
// the classic regimes where star/clique are optimal it is exact).
func PriceOfAnarchyProxy(g *graph.Graph, alpha float64) float64 {
	return SocialCost(g, alpha) / OptUpperBound(g.N(), alpha)
}

// MaxBuyGain returns the largest usage-cost decrease any player can obtain
// by buying one absent edge, together with the maximizing (player, new
// neighbor) pair. A configuration is stable against single-edge purchases
// iff α ≥ MaxBuyGain (buying costs α and recoups at most the gain).
func MaxBuyGain(g *graph.Graph) (gain int64, buyer, peer int) {
	n := g.N()
	ap := g.AllPairs()
	gain, buyer, peer = 0, -1, -1
	for v := 0; v < n; v++ {
		dv := ap.Row(v)
		base, _ := ap.RowSum(v)
		for w := 0; w < n; w++ {
			if w == v || g.HasEdge(v, w) {
				continue
			}
			after := patchedRowSum(dv, ap.Row(w))
			if g := base - after; g > gain {
				gain, buyer, peer = g, v, w
			}
		}
	}
	return gain, buyer, peer
}

// MinDeleteLoss returns the smallest usage-cost increase any player incurs
// by deleting one edge it owns (disconnections count as +Inf and are
// skipped unless every deletion disconnects, in which case loss is
// core.InfCost). A configuration is stable against deletions iff
// α ≤ MinDeleteLoss (deleting saves α but costs the loss).
func MinDeleteLoss(g *graph.Graph, o Ownership) (loss int64, edge graph.Edge) {
	loss = core.InfCost
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	for e, owner := range o {
		base := core.SumCost(g, owner)
		g.RemoveEdge(e.U, e.V)
		reached := g.BFSInto(owner, dist, queue)
		var after int64 = core.InfCost
		if reached == g.N() {
			after = 0
			for _, d := range dist {
				after += int64(d)
			}
		}
		g.AddEdge(e.U, e.V)
		// A deletion that disconnects can never be profitable at any α:
		// report the loss as InfCost rather than InfCost − base.
		l := core.InfCost
		if after < core.InfCost {
			l = after - base
		}
		if l < loss {
			loss, edge = l, e
		}
	}
	return loss, edge
}

// StableAlphaInterval returns the interval [lo, hi] of α for which the
// configuration (g, o) is a greedy equilibrium of the α-game under
// single-edge moves: swap-stable (α-independent!), no profitable buy
// (α ≥ lo = MaxBuyGain) and no profitable delete (α ≤ hi = MinDeleteLoss).
// ok is false when g is not swap-stable — then no α works.
//
// This is the quantitative form of the paper's transfer principle: the
// swap condition fixes the equilibrium structure once, and the α-dependent
// conditions only clip an interval.
func StableAlphaInterval(g *graph.Graph, o Ownership, obj core.Objective, workers int) (lo, hi int64, ok bool, err error) {
	stable, _, err := core.CheckSwapStable(g, obj, workers)
	if err != nil {
		return 0, 0, false, err
	}
	if !stable {
		return 0, 0, false, nil
	}
	gain, _, _ := MaxBuyGain(g)
	loss, _ := MinDeleteLoss(g, o)
	return gain, loss, gain <= loss, nil
}

// SwapDelta returns the change in player cost caused by a move, evaluated
// at two different α values. For a genuine swap (Add not already adjacent)
// the two deltas are identical — the paper's α-independence of swap moves.
// For a deletion-style move (Add already a neighbor) the deltas differ by
// exactly α_A − α_B, since the player sheds one owned edge. Exposed for
// tests and the E10 experiment.
func SwapDelta(g *graph.Graph, o Ownership, m core.Move, alphaA, alphaB float64) (deltaA, deltaB float64) {
	// The mover owns the edge it swaps, so a genuine swap leaves its bought
	// count unchanged while a deletion-style move sheds one owned edge.
	// Computing the delta from the integer usage difference and the integer
	// bought-count difference keeps the α-independence of genuine swaps
	// exact in floating point.
	_ = o // ownership normalization: the mover owns the dropped edge
	deltaBought := 0
	if g.HasEdge(m.V, m.Add) {
		deltaBought = -1
	}
	before := core.SumCost(g, m.V)
	undo := core.ApplyMove(g, m)
	after := core.SumCost(g, m.V)
	undo()
	deltaUsage := float64(after - before)
	return alphaA*float64(deltaBought) + deltaUsage,
		alphaB*float64(deltaBought) + deltaUsage
}

// patchedRowSum sums min(dv[x], 1+dw[x]) treating -1 as unreachable,
// returning core.InfCost when some vertex stays unreachable.
func patchedRowSum(dv, dw []int32) int64 {
	var sum int64
	for x := range dv {
		a, b := dv[x], dw[x]
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return core.InfCost
		case a == graph.Unreachable:
			sum += int64(b) + 1
		case b == graph.Unreachable:
			sum += int64(a)
		case b+1 < a:
			sum += int64(b) + 1
		default:
			sum += int64(a)
		}
	}
	return sum
}
