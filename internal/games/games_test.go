package games

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestOwnershipConstructorsValid(t *testing.T) {
	g := constructions.Petersen()
	for name, o := range map[string]Ownership{
		"min":      MinOwnership(g),
		"balanced": BalancedOwnership(g),
	} {
		if err := o.Validate(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOwnershipValidateErrors(t *testing.T) {
	g := constructions.Cycle(4)
	o := MinOwnership(g)
	delete(o, graph.NewEdge(0, 1))
	if err := o.Validate(g); err == nil {
		t.Error("missing edge assignment accepted")
	}
	o = MinOwnership(g)
	o[graph.NewEdge(0, 2)] = 0 // not an edge of C4
	delete(o, graph.NewEdge(0, 1))
	if err := o.Validate(g); err == nil {
		t.Error("phantom edge accepted")
	}
	o = MinOwnership(g)
	o[graph.NewEdge(0, 1)] = 3 // non-endpoint
	if err := o.Validate(g); err == nil {
		t.Error("non-endpoint owner accepted")
	}
}

func TestBalancedOwnershipSpreads(t *testing.T) {
	g := constructions.Star(9)
	o := BalancedOwnership(g)
	// Center is endpoint of all 8 edges; balanced assignment should give
	// the center at most ceil(m / 2)... in fact each leaf can own its edge
	// after the center owns one.
	if got := o.Bought(0); got > 4 {
		t.Errorf("balanced center owns %d of 8", got)
	}
	min := MinOwnership(g)
	if got := min.Bought(0); got != 8 {
		t.Errorf("min ownership center owns %d, want 8", got)
	}
}

func TestPlayerCostStar(t *testing.T) {
	g := constructions.Star(5)
	o := MinOwnership(g) // center owns everything
	alpha := 3.0
	if got := PlayerCost(g, o, 0, alpha); got != 3*4+4 {
		t.Errorf("center cost = %v, want 16", got)
	}
	if got := PlayerCost(g, o, 1, alpha); got != 0+7 {
		t.Errorf("leaf cost = %v, want 7", got)
	}
}

func TestSocialCostMatchesDefinition(t *testing.T) {
	g := constructions.Cycle(5)
	alpha := 2.5
	want := alpha*5 + float64(5*6) // each vertex sum-dist = 1+1+2+2 = 6
	if got := SocialCost(g, alpha); got != want {
		t.Errorf("SocialCost = %v, want %v", got, want)
	}
}

func TestStarAndCliqueCosts(t *testing.T) {
	// n=4, alpha=1: star = 3 + [3 + 3*(1+4)] = 3+18 = 21? compute:
	// usage = (n-1) + (n-1)(1+2(n-2)) = 3 + 3*5 = 18; total 21.
	if got := StarCost(4, 1); got != 21 {
		t.Errorf("StarCost(4,1) = %v, want 21", got)
	}
	if got := CliqueCost(4, 1); got != 6+12 {
		t.Errorf("CliqueCost(4,1) = %v, want 18", got)
	}
	if StarCost(1, 5) != 0 {
		t.Error("StarCost(1) should be 0")
	}
	// Social cost of the explicit star graph must equal the formula.
	for _, n := range []int{2, 3, 7, 12} {
		g := constructions.Star(n)
		for _, alpha := range []float64{0.5, 1, 2, 10} {
			if got, want := SocialCost(g, alpha), StarCost(n, alpha); math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d α=%v: SocialCost(star)=%v, formula %v", n, alpha, got, want)
			}
		}
	}
	for _, n := range []int{2, 3, 6} {
		g := constructions.Complete(n)
		for _, alpha := range []float64{0.5, 2} {
			if got, want := SocialCost(g, alpha), CliqueCost(n, alpha); math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d α=%v: SocialCost(K_n)=%v, formula %v", n, alpha, got, want)
			}
		}
	}
}

func TestOptFrontierCrossover(t *testing.T) {
	// Clique wins for α < 2, star for α > 2 (classic frontier).
	n := 10
	if OptUpperBound(n, 1) != CliqueCost(n, 1) {
		t.Error("α=1: clique should be optimal")
	}
	if OptUpperBound(n, 3) != StarCost(n, 3) {
		t.Error("α=3: star should be optimal")
	}
}

func TestMaxBuyGainStar(t *testing.T) {
	// In a star, buying leaf-leaf saves exactly 1 (distance 2 → 1).
	g := constructions.Star(6)
	gain, buyer, peer := MaxBuyGain(g)
	if gain != 1 {
		t.Errorf("star buy gain = %d, want 1", gain)
	}
	if buyer == 0 || peer == 0 || buyer == peer {
		t.Errorf("buy pair (%d,%d) should be two distinct leaves", buyer, peer)
	}
}

func TestMaxBuyGainPath(t *testing.T) {
	// On P5, buying 0–4 gains (4−1)+(3−2) = 4, and buying 0–3 also gains
	// (3−1)+(4−2) = 4; the maximum gain is 4 from an endpoint.
	g := constructions.Path(5)
	gain, buyer, peer := MaxBuyGain(g)
	if gain != 4 {
		t.Errorf("P5 buy gain = %d (%d,%d), want 4", gain, buyer, peer)
	}
	e := graph.NewEdge(buyer, peer)
	if e != graph.NewEdge(0, 3) && e != graph.NewEdge(0, 4) &&
		e != graph.NewEdge(1, 4) {
		t.Errorf("P5 best buy = %v, want an endpoint long-range edge", e)
	}
	// Verify the reported gain against direct evaluation.
	base := core.SumCost(g, buyer)
	g.AddEdge(buyer, peer)
	after := core.SumCost(g, buyer)
	if base-after != gain {
		t.Errorf("reported gain %d, measured %d", gain, base-after)
	}
}

func TestMaxBuyGainComplete(t *testing.T) {
	gain, buyer, _ := MaxBuyGain(constructions.Complete(5))
	if gain != 0 || buyer != -1 {
		t.Errorf("K5 buy gain = %d (buyer %d), want 0, -1", gain, buyer)
	}
}

func TestMinDeleteLossStarAndCycle(t *testing.T) {
	// Star, center owns all: deleting any edge disconnects → InfCost loss.
	g := constructions.Star(5)
	loss, _ := MinDeleteLoss(g, MinOwnership(g))
	if loss != core.InfCost {
		t.Errorf("star delete loss = %d, want InfCost", loss)
	}
	// C5: deleting an edge turns distances 1,1,2,2 into 1,2,3,4 for the
	// owner: loss = 10-6 = 4.
	c := constructions.Cycle(5)
	loss, e := MinDeleteLoss(c, MinOwnership(c))
	if loss != 4 {
		t.Errorf("C5 delete loss = %d (edge %v), want 4", loss, e)
	}
	if !c.HasEdge(e.U, e.V) {
		t.Error("MinDeleteLoss did not restore the graph")
	}
}

func TestStableAlphaIntervalStar(t *testing.T) {
	// Star with center ownership: swap-stable, buy gain 1, delete loss ∞:
	// stable for every α >= 1.
	g := constructions.Star(7)
	lo, hi, ok, err := StableAlphaInterval(g, MinOwnership(g), core.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || lo != 1 || hi != core.InfCost {
		t.Errorf("star interval = [%d,%d] ok=%v, want [1,InfCost] true", lo, hi, ok)
	}
}

func TestStableAlphaIntervalNonEquilibrium(t *testing.T) {
	// C6 is not swap-stable: no α makes it greedily stable.
	g := constructions.Cycle(6)
	_, _, ok, err := StableAlphaInterval(g, MinOwnership(g), core.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("C6 reported greedily stable for some α")
	}
}

func TestStableAlphaIntervalTorus(t *testing.T) {
	// The Theorem 12 torus is a max-version witness; in the sum version it
	// is swap-stable for k=2 (n=8) — check the interval machinery runs and
	// is consistent: if ok, buying must not be profitable at α=lo.
	g := constructions.NewTorus(2).Graph()
	stable, _, err := core.CheckSwapStable(g, core.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok, err := StableAlphaInterval(g, MinOwnership(g), core.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stable != (ok || lo > hi) && !stable {
		// If not swap stable, interval must report not-ok.
		if ok {
			t.Error("interval ok for non-swap-stable graph")
		}
	}
	_ = lo
	_ = hi
}

func TestSwapDeltaAlphaIndependent(t *testing.T) {
	// The paper's transfer principle: genuine swaps price identically for
	// every α.
	rng := rand.New(rand.NewSource(3))
	g := constructions.Cycle(9)
	o := MinOwnership(g)
	for trial := 0; trial < 40; trial++ {
		v := rng.Intn(g.N())
		nbs := g.Neighbors(v)
		w := nbs[rng.Intn(len(nbs))]
		wp := rng.Intn(g.N())
		if wp == v || g.HasEdge(v, wp) {
			continue // keep it a genuine swap
		}
		dA, dB := SwapDelta(g, o, core.Move{V: v, Drop: w, Add: wp}, 0.1, 1e6)
		if math.Abs(dA-dB) > 1e-6 {
			t.Fatalf("swap delta depends on α: %v vs %v", dA, dB)
		}
	}
}

func TestSwapDeltaDeletionDependsOnAlpha(t *testing.T) {
	// Deletion-style moves shed an owned edge: deltas differ by α_A − α_B.
	g := constructions.Complete(5)
	o := MinOwnership(g)
	alphaA, alphaB := 2.0, 7.0
	dA, dB := SwapDelta(g, o, core.Move{V: 0, Drop: 1, Add: 2}, alphaA, alphaB)
	if math.Abs((dA-dB)-(alphaB-alphaA)) > 1e-9 {
		t.Errorf("deletion deltas %v, %v; difference should be α_B−α_A = %v",
			dA, dB, alphaB-alphaA)
	}
}

func TestPriceOfAnarchyProxyStarIsOne(t *testing.T) {
	// For α >= 2 the star is the optimum, so its PoA contribution is 1.
	g := constructions.Star(9)
	if got := PriceOfAnarchyProxy(g, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("star PoA proxy = %v, want 1", got)
	}
}

func TestBoughtCounts(t *testing.T) {
	g := constructions.Path(4)
	o := MinOwnership(g)
	if o.Bought(0) != 1 || o.Bought(1) != 1 || o.Bought(3) != 0 {
		t.Errorf("bought counts wrong: %d %d %d", o.Bought(0), o.Bought(1), o.Bought(3))
	}
}
