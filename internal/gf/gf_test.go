package gf

import (
	"testing"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13}
	composites := []int{-1, 0, 1, 4, 6, 8, 9, 15, 49}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestNewPlaneRejectsNonPrime(t *testing.T) {
	if _, err := NewPlane(4); err == nil {
		t.Error("NewPlane(4) accepted a prime power (unsupported)")
	}
	if _, err := NewPlane(1); err == nil {
		t.Error("NewPlane(1) accepted")
	}
}

func TestPlaneAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7} {
		p, err := NewPlane(q)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumPoints() != q*q+q+1 {
			t.Errorf("q=%d: %d points, want %d", q, p.NumPoints(), q*q+q+1)
		}
		if err := p.VerifyAxioms(); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestFanoPlane(t *testing.T) {
	// PG(2,2) is the Fano plane: 7 points, 7 lines, 3 points per line.
	p, err := NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPoints() != 7 {
		t.Fatalf("Fano has %d points", p.NumPoints())
	}
	for l := 0; l < 7; l++ {
		if len(p.PointsOnLine(l)) != 3 {
			t.Errorf("line %d has %d points, want 3", l, len(p.PointsOnLine(l)))
		}
	}
}

func TestIncident(t *testing.T) {
	p, _ := NewPlane(3)
	for l := 0; l < p.NumPoints(); l++ {
		for _, pt := range p.PointsOnLine(l) {
			if !p.Incident(pt, l) {
				t.Fatalf("Incident(%d,%d) = false for listed point", pt, l)
			}
		}
	}
}

func TestIncidenceGraphProperties(t *testing.T) {
	// The incidence graph of PG(2,q) is (q+1)-regular, bipartite with girth
	// 6 and diameter 3.
	for _, q := range []int{2, 3} {
		p, _ := NewPlane(q)
		g := p.IncidenceGraph()
		if g.N() != 2*p.NumPoints() {
			t.Fatalf("q=%d: n=%d", q, g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("q=%d: degree(%d)=%d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		if girth, ok := g.Girth(); !ok || girth != 6 {
			t.Errorf("q=%d: girth = %d,%v, want 6", q, girth, ok)
		}
		if diam, ok := g.Diameter(); !ok || diam != 3 {
			t.Errorf("q=%d: diameter = %d,%v, want 3", q, diam, ok)
		}
	}
}
