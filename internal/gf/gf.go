// Package gf implements finite projective planes PG(2,q) over prime fields
// — the substrate behind the projective-plane equilibria of Albers et al.
// cited by the paper as the disproof of the tree conjecture. Points and
// lines are the 1- and 2-dimensional subspaces of F_q³, normalized so the
// first nonzero coordinate is 1; a point lies on a line when their
// representative vectors are orthogonal over F_q.
//
// The plane's bipartite point–line incidence graph is a (q+1)-regular
// C4-free graph of diameter 3 and girth 6 on 2(q²+q+1) vertices, a useful
// structured family for exercising the equilibrium checkers and the
// distance-uniformity tools.
package gf

import (
	"fmt"

	"repro/internal/graph"
)

// IsPrime reports whether q is prime (trial division; q is small here).
func IsPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}

// Triple is a projective representative vector over F_q with the first
// nonzero coordinate normalized to 1.
type Triple [3]int

// Plane is the projective plane PG(2,q) for prime q: q²+q+1 points and as
// many lines, each line containing q+1 points.
type Plane struct {
	Q      int
	Points []Triple
	Lines  []Triple
	// onLine[l] lists the indices of points incident to line l.
	onLine [][]int
}

// NewPlane constructs PG(2,q). q must be prime (prime powers would need
// full field arithmetic; the experiments only use prime q).
func NewPlane(q int) (*Plane, error) {
	if !IsPrime(q) {
		return nil, fmt.Errorf("gf: q=%d is not prime", q)
	}
	pts := projectivePoints(q)
	p := &Plane{Q: q, Points: pts, Lines: pts}
	p.onLine = make([][]int, len(pts))
	for l, lv := range p.Lines {
		for i, pv := range p.Points {
			if dot(lv, pv, q) == 0 {
				p.onLine[l] = append(p.onLine[l], i)
			}
		}
	}
	return p, nil
}

// projectivePoints enumerates normalized representatives: (1,y,z), (0,1,z),
// (0,0,1) — exactly q² + q + 1 triples.
func projectivePoints(q int) []Triple {
	var pts []Triple
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			pts = append(pts, Triple{1, y, z})
		}
	}
	for z := 0; z < q; z++ {
		pts = append(pts, Triple{0, 1, z})
	}
	pts = append(pts, Triple{0, 0, 1})
	return pts
}

func dot(a, b Triple, q int) int {
	return (a[0]*b[0] + a[1]*b[1] + a[2]*b[2]) % q
}

// NumPoints returns q²+q+1.
func (p *Plane) NumPoints() int { return len(p.Points) }

// PointsOnLine returns the indices of the q+1 points on line l.
func (p *Plane) PointsOnLine(l int) []int { return p.onLine[l] }

// Incident reports whether point pt lies on line l.
func (p *Plane) Incident(pt, l int) bool {
	return dot(p.Points[pt], p.Lines[l], p.Q) == 0
}

// IncidenceGraph returns the bipartite point–line incidence graph: points
// are vertices 0..N-1, lines N..2N-1 with N = q²+q+1.
func (p *Plane) IncidenceGraph() *graph.Graph {
	n := p.NumPoints()
	g := graph.New(2 * n)
	for l, pts := range p.onLine {
		for _, pt := range pts {
			g.AddEdge(pt, n+l)
		}
	}
	return g
}

// VerifyAxioms checks the projective-plane axioms: every line has exactly
// q+1 points, every point is on exactly q+1 lines, and any two distinct
// points lie on exactly one common line. It returns a descriptive error on
// the first violation (used by tests and as a construction self-check).
func (p *Plane) VerifyAxioms() error {
	n := p.NumPoints()
	if n != p.Q*p.Q+p.Q+1 {
		return fmt.Errorf("gf: %d points, want q²+q+1 = %d", n, p.Q*p.Q+p.Q+1)
	}
	onPoint := make([]int, n)
	for l, pts := range p.onLine {
		if len(pts) != p.Q+1 {
			return fmt.Errorf("gf: line %d has %d points, want %d", l, len(pts), p.Q+1)
		}
		for _, pt := range pts {
			onPoint[pt]++
		}
	}
	for pt, c := range onPoint {
		if c != p.Q+1 {
			return fmt.Errorf("gf: point %d on %d lines, want %d", pt, c, p.Q+1)
		}
	}
	// Two distinct points determine exactly one line.
	common := make(map[[2]int]int)
	for _, pts := range p.onLine {
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				common[[2]int{pts[i], pts[j]}]++
			}
		}
	}
	wantPairs := n * (n - 1) / 2
	if len(common) != wantPairs {
		return fmt.Errorf("gf: %d collinear pairs, want all %d", len(common), wantPairs)
	}
	for pair, c := range common {
		if c != 1 {
			return fmt.Errorf("gf: points %v share %d lines, want 1", pair, c)
		}
	}
	return nil
}
