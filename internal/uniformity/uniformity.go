// Package uniformity implements the Section 5 machinery connecting sum
// equilibria to distance-uniform graphs: per-vertex distance profiles,
// recognition of ε-distance-uniform and ε-distance-almost-uniform graphs,
// skew-triple counting, and the Theorem 13 power-graph reduction that turns
// a high-diameter sum equilibrium into a distance-(almost-)uniform graph
// whose diameter is smaller by only a polylogarithmic factor.
package uniformity

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ErrDisconnected is returned when a connected graph is required.
var ErrDisconnected = errors.New("uniformity: graph must be connected")

// Profile describes how distance-uniform a graph is.
//
// A graph is ε-distance-uniform when some radius r has, from every vertex,
// at least (1−ε)n vertices at distance exactly r; ε-distance-almost-uniform
// relaxes "exactly r" to "r or r+1". Epsilon/AlmostEpsilon are the minimal
// achievable ε over all radii, and R/AlmostR the optimizing radii (smallest
// radius on ties).
type Profile struct {
	N             int
	Diameter      int
	R             int
	Epsilon       float64
	AlmostR       int
	AlmostEpsilon float64
}

// Analyze computes the distance-uniformity profile from an APSP matrix.
func Analyze(m *graph.Matrix) (Profile, error) {
	n := m.N()
	if n == 0 || !m.Connected() {
		return Profile{}, ErrDisconnected
	}
	diam, _ := m.Diameter()
	p := Profile{N: n, Diameter: diam}

	// minAt[r] = min over vertices of #{w : d(v,w) = r};
	// minPair[r] = same for distance r or r+1.
	minAt := make([]int, diam+2)
	minPair := make([]int, diam+2)
	for r := range minAt {
		minAt[r] = n + 1
		minPair[r] = n + 1
	}
	counts := make([]int, diam+2)
	for v := 0; v < n; v++ {
		for i := range counts {
			counts[i] = 0
		}
		for _, d := range m.Row(v) {
			counts[d]++
		}
		for r := 0; r <= diam; r++ {
			if counts[r] < minAt[r] {
				minAt[r] = counts[r]
			}
			pair := counts[r]
			if r+1 <= diam+1 {
				pair += counts[r+1]
			}
			if pair < minPair[r] {
				minPair[r] = pair
			}
		}
	}
	p.R, p.Epsilon = bestRadius(minAt, diam, n)
	p.AlmostR, p.AlmostEpsilon = bestRadius(minPair, diam, n)
	return p, nil
}

func bestRadius(minCount []int, diam, n int) (int, float64) {
	bestR, bestEps := 0, math.Inf(1)
	for r := 0; r <= diam; r++ {
		eps := 1 - float64(minCount[r])/float64(n)
		if eps < bestEps {
			bestR, bestEps = r, eps
		}
	}
	return bestR, bestEps
}

// IsDistanceUniform reports whether the graph behind m is ε-distance-
// uniform, returning the witnessing radius.
func IsDistanceUniform(m *graph.Matrix, eps float64) (bool, int, error) {
	p, err := Analyze(m)
	if err != nil {
		return false, 0, err
	}
	return p.Epsilon <= eps, p.R, nil
}

// IsDistanceAlmostUniform reports whether the graph behind m is ε-distance-
// almost-uniform, returning the witnessing radius.
func IsDistanceAlmostUniform(m *graph.Matrix, eps float64) (bool, int, error) {
	p, err := Analyze(m)
	if err != nil {
		return false, 0, err
	}
	return p.AlmostEpsilon <= eps, p.AlmostR, nil
}

// PairProfile measures the *pairwise* analogue of distance uniformity: the
// largest fraction of ordered vertex pairs realizing one common distance r
// (or r/r+1 for the almost variant). The paper's Conjecture 14 remark shows
// this weaker pairwise notion admits large-diameter examples (StarOfPaths),
// which is why the conjecture quantifies over every vertex.
type PairProfile struct {
	R              int
	Fraction       float64 // fraction of pairs at distance exactly R
	AlmostR        int
	AlmostFraction float64 // fraction of pairs at distance AlmostR or AlmostR+1
}

// AnalyzePairs computes the pairwise distance concentration.
func AnalyzePairs(m *graph.Matrix) (PairProfile, error) {
	n := m.N()
	if n < 2 || !m.Connected() {
		return PairProfile{}, ErrDisconnected
	}
	diam, _ := m.Diameter()
	counts := make([]int64, diam+2)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v {
				counts[m.At(v, u)]++
			}
		}
	}
	total := float64(n) * float64(n-1)
	var p PairProfile
	for r := 1; r <= diam; r++ {
		if f := float64(counts[r]) / total; f > p.Fraction {
			p.R, p.Fraction = r, f
		}
		if f := float64(counts[r]+counts[r+1]) / total; f > p.AlmostFraction {
			p.AlmostR, p.AlmostFraction = r, f
		}
	}
	return p, nil
}

// SkewFractionExact counts the fraction of ordered triples (a,b,c) of
// distinct vertices with d(a,c) > p·lg n + d(a,b) — the "skew" triples of
// the Theorem 13 proof, of which equilibria may only have an α fraction.
// O(n³): intended for small graphs; use SkewFractionSampled beyond.
func SkewFractionExact(m *graph.Matrix, p float64) float64 {
	n := m.N()
	if n < 3 {
		return 0
	}
	threshold := p * math.Log2(float64(n))
	var skew, total int64
	for a := 0; a < n; a++ {
		row := m.Row(a)
		for b := 0; b < n; b++ {
			if b == a {
				continue
			}
			for c := 0; c < n; c++ {
				if c == a || c == b {
					continue
				}
				total++
				if float64(row[c]) > threshold+float64(row[b]) {
					skew++
				}
			}
		}
	}
	return float64(skew) / float64(total)
}

// SkewFractionSampled estimates the skew-triple fraction from `samples`
// uniform ordered triples.
func SkewFractionSampled(m *graph.Matrix, p float64, samples int, rng *rand.Rand) float64 {
	n := m.N()
	if n < 3 || samples <= 0 {
		return 0
	}
	threshold := p * math.Log2(float64(n))
	skew := 0
	for s := 0; s < samples; s++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		c := rng.Intn(n)
		if a == b || b == c || a == c {
			s--
			continue
		}
		if float64(m.At(a, c)) > threshold+float64(m.At(a, b)) {
			skew++
		}
	}
	return float64(skew) / float64(samples)
}

// MiddleInterval returns the smallest interval [lo, hi] that, for every
// vertex, contains all its distances after discarding the nearest and
// farthest ⌊beta·n⌋ vertices — the "middle (1−2β)n nodes" of the
// Theorem 13 proof.
func MiddleInterval(m *graph.Matrix, beta float64) (lo, hi int, err error) {
	n := m.N()
	if n == 0 || !m.Connected() {
		return 0, 0, ErrDisconnected
	}
	drop := int(beta * float64(n))
	lo, hi = math.MaxInt32, 0
	buf := make([]int, n)
	for v := 0; v < n; v++ {
		row := m.Row(v)
		for i, d := range row {
			buf[i] = int(d)
		}
		sort.Ints(buf)
		left, right := drop, n-1-drop
		if left > right {
			left, right = 0, n-1
		}
		if buf[left] < lo {
			lo = buf[left]
		}
		if buf[right] > hi {
			hi = buf[right]
		}
	}
	return lo, hi, nil
}

// PowerAvoidingInterval returns the smallest x >= 2 such that no integer
// multiple of x lies in [lo, hi] — the prime-selection step that upgrades
// Theorem 13 from almost-uniform to uniform. The paper shows some
// x = O(lg² n) always works when hi−lo = O(lg n); this exhaustive search
// returns the true minimum. ok is false when lo <= 1 (1 divides x·1 for
// every candidate... i.e. every x has a multiple below 2) or lo > hi.
func PowerAvoidingInterval(lo, hi int) (x int, ok bool) {
	if lo > hi || lo <= 1 {
		return 0, false
	}
	for x = 2; ; x++ {
		if x > hi {
			// x itself exceeds hi and hi/x == 0: no positive multiple fits.
			return x, true
		}
		if hi/x == (lo-1)/x {
			return x, true
		}
	}
}

// Reduction reports one application of the Theorem 13 power-graph pipeline.
type Reduction struct {
	Beta      float64
	Lo, Hi    int // middle-distance interval of the input
	X         int // chosen power
	InputDiam int
	PowerDiam int
	Profile   Profile // uniformity profile of the power graph
	Uniform   bool    // true when the X avoided all multiples (exact-r mode)
}

// Reduce applies the Theorem 13 reduction to a connected graph g: compute
// the middle-distance interval at the given beta, choose the power x —
// preferring the smallest x whose multiples avoid the interval (yielding a
// distance-uniform target), else hi−lo+1 (yielding distance-almost-uniform)
// — and return the profile of G^x.
func Reduce(g *graph.Graph, beta float64, workers int) (*Reduction, error) {
	m := g.AllPairsParallel(workers)
	if !m.Connected() {
		return nil, ErrDisconnected
	}
	lo, hi, err := MiddleInterval(m, beta)
	if err != nil {
		return nil, err
	}
	red := &Reduction{Beta: beta, Lo: lo, Hi: hi}
	red.InputDiam, _ = m.Diameter()

	if x, ok := PowerAvoidingInterval(lo, hi); ok && x <= red.InputDiam {
		red.X, red.Uniform = x, true
	} else {
		red.X = hi - lo + 1
		if red.X < 1 {
			red.X = 1
		}
	}
	power := g.Power(red.X)
	pm := power.AllPairsParallel(workers)
	red.PowerDiam, _ = pm.Diameter()
	prof, err := Analyze(pm)
	if err != nil {
		return nil, err
	}
	red.Profile = prof
	return red, nil
}
