package uniformity

import (
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
)

func TestAnalyzePairsCompleteGraph(t *testing.T) {
	p, err := AnalyzePairs(constructions.Complete(8).AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	if p.R != 1 || p.Fraction != 1 {
		t.Errorf("K8 pair profile = %+v, want all pairs at distance 1", p)
	}
}

func TestAnalyzePairsDisconnected(t *testing.T) {
	if _, err := AnalyzePairs(graph.New(3).AllPairs()); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestAnalyzePairsStarOfPathsSeparation(t *testing.T) {
	// The Conjecture 14 remark construction: most pairs are blob-to-blob
	// at one common distance, but per-vertex uniformity fails.
	g := constructions.StarOfPaths(8, 3, 20)
	m := g.AllPairs()
	pairs, err := AnalyzePairs(m)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.AlmostFraction < 0.5 {
		t.Errorf("pairwise concentration %v too small; construction ineffective", pairs.AlmostFraction)
	}
	perVertexMass := 1 - prof.AlmostEpsilon
	if pairs.AlmostFraction <= perVertexMass {
		t.Errorf("no separation: pairwise %v <= per-vertex %v",
			pairs.AlmostFraction, perVertexMass)
	}
	// And the diameter is large (2·(pathLen+1)): that is the point of the
	// remark — pairwise uniformity does NOT force small diameter.
	if diam, _ := g.Diameter(); diam < 8 {
		t.Errorf("diameter %d too small for the separation argument", diam)
	}
}

func TestAnalyzePairsVsPerVertexOnVertexTransitive(t *testing.T) {
	// On vertex-transitive graphs the two notions coincide: the pairwise
	// fraction at r equals the per-vertex fraction at r.
	m := constructions.NewTorus(5).Graph().AllPairs()
	pairs, err := AnalyzePairs(m)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's per-vertex fraction uses denominator n (self included),
	// the pairwise one n·(n−1): on a vertex-transitive graph they differ by
	// exactly the factor n/(n−1).
	n := float64(m.N())
	perVertexMass := (1 - prof.AlmostEpsilon) * n / (n - 1)
	diff := pairs.AlmostFraction - perVertexMass
	if diff < -1e-9 || diff > 1e-9 {
		t.Errorf("vertex-transitive mismatch: pairwise %v vs per-vertex %v",
			pairs.AlmostFraction, perVertexMass)
	}
}
