package uniformity

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
)

func TestAnalyzeCompleteGraph(t *testing.T) {
	// K_n: every vertex sees n-1 vertices at distance 1: ε = 1/n.
	m := constructions.Complete(10).AllPairs()
	p, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.R != 1 {
		t.Errorf("R = %d, want 1", p.R)
	}
	if math.Abs(p.Epsilon-0.1) > 1e-12 {
		t.Errorf("Epsilon = %v, want 0.1", p.Epsilon)
	}
	if p.AlmostEpsilon > p.Epsilon {
		t.Error("almost-uniform ε cannot exceed exact ε")
	}
}

func TestAnalyzeCycle(t *testing.T) {
	// C_n is far from distance-uniform: each vertex sees only 2 vertices
	// per distance (1 at the antipode for even n).
	m := constructions.Cycle(12).AllPairs()
	p, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epsilon < 0.8 {
		t.Errorf("C12 Epsilon = %v, expected near 1", p.Epsilon)
	}
	if p.Diameter != 6 {
		t.Errorf("C12 diameter = %d, want 6", p.Diameter)
	}
}

func TestAnalyzeHypercube(t *testing.T) {
	// Q_d concentrates distances around d/2: the best exact radius is the
	// mode of the binomial (d choose r), ε = 1 − C(d, d/2)/2^d.
	d := 8
	m := constructions.Hypercube(d).AllPairs()
	p, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.R != d/2 {
		t.Errorf("Q%d best radius = %d, want %d", d, p.R, d/2)
	}
	wantEps := 1 - 70.0/256.0 // C(8,4)/2^8
	if math.Abs(p.Epsilon-wantEps) > 1e-12 {
		t.Errorf("Q%d Epsilon = %v, want %v", d, p.Epsilon, wantEps)
	}
}

func TestAnalyzeDisconnected(t *testing.T) {
	if _, err := Analyze(graph.New(3).AllPairs()); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestIsDistanceUniformThresholds(t *testing.T) {
	m := constructions.Complete(10).AllPairs()
	ok, r, err := IsDistanceUniform(m, 0.1)
	if err != nil || !ok || r != 1 {
		t.Errorf("K10 at ε=0.1: ok=%v r=%d err=%v", ok, r, err)
	}
	ok, _, err = IsDistanceUniform(m, 0.05)
	if err != nil || ok {
		t.Error("K10 at ε=0.05 should fail (needs ε >= 1/10)")
	}
	ok, _, err = IsDistanceAlmostUniform(constructions.Path(3).AllPairs(), 0.34)
	if err != nil || !ok {
		t.Error("P3 should be 1/3-distance-almost-uniform (radii {1,2})")
	}
}

func TestSkewFractionExactZeroOnLowDiameter(t *testing.T) {
	// Diameter 2 with p*lg n >= 2 means no skew triples at all.
	m := constructions.Star(16).AllPairs()
	if got := SkewFractionExact(m, 1); got != 0 {
		t.Errorf("star skew fraction = %v, want 0", got)
	}
}

func TestSkewFractionPathHasSkew(t *testing.T) {
	// Long path with small p: plenty of skew triples.
	m := constructions.Path(40).AllPairs()
	got := SkewFractionExact(m, 0.5)
	if got <= 0 {
		t.Error("P40 should have skew triples at p=0.5")
	}
	sampled := SkewFractionSampled(m, 0.5, 20000, rand.New(rand.NewSource(5)))
	if math.Abs(sampled-got) > 0.05 {
		t.Errorf("sampled %v vs exact %v differ by more than 0.05", sampled, got)
	}
}

func TestSkewFractionTinyGraphs(t *testing.T) {
	m := constructions.Path(2).AllPairs()
	if SkewFractionExact(m, 1) != 0 {
		t.Error("n<3 should have zero skew fraction")
	}
	if SkewFractionSampled(m, 1, 100, rand.New(rand.NewSource(1))) != 0 {
		t.Error("n<3 sampled should be 0")
	}
}

func TestMiddleInterval(t *testing.T) {
	// P11 from an endpoint: distances 0..10. With β=0.2 (drop 2 each side)
	// vertex 0 contributes [2,8]; middle vertices contribute tighter
	// intervals; union is [lo, hi] with lo <= 2 and hi >= 8... compute:
	m := constructions.Path(11).AllPairs()
	lo, hi, err := MiddleInterval(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi > 10 || lo > hi {
		t.Errorf("interval [%d,%d] out of bounds", lo, hi)
	}
	if hi < 8 {
		t.Errorf("hi = %d, want >= 8 (endpoint's middle reaches 8)", hi)
	}
	// β=0 keeps everything: full range 0..10.
	lo, hi, err = MiddleInterval(m, 0)
	if err != nil || lo != 0 || hi != 10 {
		t.Errorf("β=0 interval = [%d,%d], want [0,10]", lo, hi)
	}
}

func TestMiddleIntervalDegenerateBeta(t *testing.T) {
	// β >= 1/2 would drop everything; the implementation falls back to the
	// full range instead of inverting.
	m := constructions.Path(4).AllPairs()
	lo, hi, err := MiddleInterval(m, 0.9)
	if err != nil || lo > hi {
		t.Errorf("degenerate beta: [%d,%d] err=%v", lo, hi, err)
	}
}

func TestPowerAvoidingInterval(t *testing.T) {
	cases := []struct {
		lo, hi, want int
		ok           bool
	}{
		{5, 7, 4, true},   // 2→6, 3→6 hit; 4's multiples 4, 8 miss [5,7]
		{2, 3, 4, true},   // 2, 3 hit themselves; 4's first multiple is 4 > 3
		{10, 11, 3, true}, // 2→10 hits; 3's multiples 9, 12 miss [10,11]
		{1, 5, 0, false},  // lo <= 1 impossible
		{6, 5, 0, false},  // empty interval
	}
	for _, c := range cases {
		x, ok := PowerAvoidingInterval(c.lo, c.hi)
		if ok != c.ok {
			t.Errorf("[%d,%d]: ok=%v want %v", c.lo, c.hi, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		// x must genuinely avoid the interval.
		for mult := x; mult <= c.hi; mult += x {
			if mult >= c.lo {
				t.Errorf("[%d,%d]: returned x=%d has multiple %d inside", c.lo, c.hi, x, mult)
			}
		}
		// And be minimal.
		for y := 2; y < x; y++ {
			bad := false
			for mult := y; mult <= c.hi; mult += y {
				if mult >= c.lo {
					bad = true
					break
				}
			}
			if !bad {
				t.Errorf("[%d,%d]: x=%d not minimal, %d also avoids", c.lo, c.hi, x, y)
			}
		}
	}
}

func TestPowerAvoidingIntervalMatchesTheorem13Scale(t *testing.T) {
	// For intervals of width O(lg n) the paper guarantees x = O(lg² n).
	for _, lo := range []int{10, 50, 200} {
		width := 8
		x, ok := PowerAvoidingInterval(lo, lo+width)
		if !ok {
			t.Fatalf("no x for [%d,%d]", lo, lo+width)
		}
		if x > (lo+width)*2 {
			t.Errorf("x=%d implausibly large for [%d,%d]", x, lo, lo+width)
		}
	}
}

func TestReduceCycle(t *testing.T) {
	// The Theorem 13 pipeline on a long cycle must produce a power graph
	// with much smaller diameter that is almost-uniform at modest ε.
	g := constructions.Cycle(64)
	red, err := Reduce(g, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if red.InputDiam != 32 {
		t.Errorf("input diameter = %d, want 32", red.InputDiam)
	}
	if red.PowerDiam >= red.InputDiam {
		t.Errorf("power diameter %d did not shrink from %d", red.PowerDiam, red.InputDiam)
	}
	wantDiam := (red.InputDiam + red.X - 1) / red.X
	if red.PowerDiam != wantDiam {
		t.Errorf("power diameter = %d, want ceil(d/x) = %d", red.PowerDiam, wantDiam)
	}
	// The coalesced middle distances must make the power graph
	// almost-uniform at ε comparable to 6β (Theorem 13 gives (1-6β)n mass
	// on two levels).
	if red.Profile.AlmostEpsilon > 6*red.Beta+0.05 {
		t.Errorf("almost-ε = %v too large (β=%v)", red.Profile.AlmostEpsilon, red.Beta)
	}
}

func TestReduceTorus(t *testing.T) {
	g := constructions.NewTorus(8).Graph() // n=128, diameter 8
	red, err := Reduce(g, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if red.InputDiam != 8 {
		t.Errorf("torus diameter = %d, want 8", red.InputDiam)
	}
	if red.PowerDiam > red.InputDiam {
		t.Error("power graph diameter grew")
	}
}

func TestReduceDisconnected(t *testing.T) {
	if _, err := Reduce(graph.New(4), 0.1, 1); err == nil {
		t.Error("disconnected Reduce did not error")
	}
}
