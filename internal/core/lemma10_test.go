package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestLemma10SmallDiameterBranch(t *testing.T) {
	// Star: diameter 2 <= 2 lg n for n >= 3.
	g := starGraph(8)
	res, err := Lemma10Check(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SmallDiameter || !res.Holds {
		t.Errorf("star: %+v, want small-diameter branch", res)
	}
}

func TestLemma10EdgeBranchOnEquilibrium(t *testing.T) {
	// C5 is a sum equilibrium with diameter 2 < 2 lg 5 ≈ 4.6: small branch.
	res, err := Lemma10Check(cycleGraph(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("C5: lemma must hold: %+v", res)
	}
}

func TestLemma10LongPathEdgeBranch(t *testing.T) {
	// P40 has diameter 39 > 2 lg 40 ≈ 10.6, so the edge branch is taken.
	// The path is NOT a sum equilibrium, but near the start vertex the
	// cheap edge still exists (removing a pendant-side edge disconnects,
	// but edges near u have bounded cost... in fact every tree edge
	// disconnects: cost = InfCost, so Lemma 10 FAILS — which is consistent,
	// because P40 is not an equilibrium).
	g := pathGraph(40)
	res, err := Lemma10Check(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallDiameter {
		t.Fatal("P40 diameter should exceed 2 lg n")
	}
	if res.Holds {
		t.Errorf("P40 (non-equilibrium tree): lemma unexpectedly holds: %+v", res)
	}
}

func TestLemma10CycleEdgeBranch(t *testing.T) {
	// C64: diameter 32 > 2 lg 64 = 12. Removing any edge xy increases x's
	// sum by a bounded amount (the alternate path around the cycle):
	// the check must find an edge within the budget 2n(1+lg n) ≈ 896.
	g := cycleGraph(64)
	res, err := Lemma10Check(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallDiameter {
		t.Fatal("C64 diameter should exceed 2 lg n")
	}
	if !res.Found {
		t.Fatal("no candidate edge found within radius lg n")
	}
	// Removal cost of a cycle edge for endpoint x: every former distance
	// d becomes... sum goes from 2*(1+..+31)+32 = 1024 to 1+2+...+63 = 2016:
	// increase 992. Hmm — that exceeds 896; but cost is minimized over
	// candidate edges and all are symmetric: expect 992 > bound, so Holds
	// may be false. C64 is not a sum equilibrium, so either way is
	// consistent; just validate the numbers.
	if res.RemovalCost != 992 {
		t.Errorf("C64 removal cost = %d, want 992", res.RemovalCost)
	}
}

func TestLemma10Disconnected(t *testing.T) {
	if _, err := Lemma10Check(graph.New(4), 0); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestLemma10CheckAllOnEquilibria(t *testing.T) {
	// Sum equilibria must satisfy Lemma 10 at every vertex.
	for name, g := range map[string]*graph.Graph{
		"star": starGraph(10),
		"C5":   cycleGraph(5),
		"K7":   completeGraph(7),
	} {
		ok, at, err := Lemma10CheckAll(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: Lemma 10 fails at vertex %d", name, at)
		}
	}
}

func TestBallSizesPath(t *testing.T) {
	m := pathGraph(5).AllPairs()
	balls := BallSizes(m)
	// From vertex 0: B_0=1, B_1=2, B_2=3, B_3=4, B_4=5.
	want0 := []int{1, 2, 3, 4, 5}
	for k, w := range want0 {
		if balls[0][k] != w {
			t.Errorf("B_%d(0) = %d, want %d", k, balls[0][k], w)
		}
	}
	// From the middle vertex 2: B_0=1, B_1=3, B_2=5 then saturated.
	if balls[2][1] != 3 || balls[2][2] != 5 {
		t.Errorf("middle balls = %v", balls[2])
	}
}

func TestMinBall(t *testing.T) {
	m := pathGraph(5).AllPairs()
	mb := MinBall(BallSizes(m))
	want := []int{1, 2, 3, 4, 5}
	for k, w := range want {
		if mb[k] != w {
			t.Errorf("minB_%d = %d, want %d", k, mb[k], w)
		}
	}
	if MinBall(nil) != nil {
		t.Error("MinBall(nil) should be nil")
	}
}

func TestBallGrowthHoldsOnEquilibriumTorus(t *testing.T) {
	// The torus is a max equilibrium (not necessarily sum), but its
	// homogeneous ball growth B_k = Θ(k²) easily satisfies inequality (1):
	// B_4k / B_k ≈ 16 ≥ k/(20 lg n) for the sizes here.
	m := torusGraph(8).AllPairs()
	points := BallGrowth(m)
	if len(points) == 0 {
		t.Fatal("no ball-growth points for torus k=8 (diameter 8)")
	}
	for _, p := range points {
		if !p.Holds {
			t.Errorf("inequality (1) fails at k=%d: %+v", p.K, p)
		}
	}
}

// torusGraph builds the diagonal torus inline (avoiding an import cycle
// with constructions, which imports core in its tests).
func torusGraph(k int) *graph.Graph {
	m := 2 * k
	idx := func(i, j int) int {
		i = ((i % m) + m) % m
		j = ((j % m) + m) % m
		return i*k + (j-(i%2))/2
	}
	g := graph.New(2 * k * k)
	for i := 0; i < m; i++ {
		for j := i % 2; j < m; j += 2 {
			for _, di := range [2]int{-1, 1} {
				for _, dj := range [2]int{-1, 1} {
					u := idx(i+di, j+dj)
					if u != idx(i, j) {
						g.AddEdge(idx(i, j), u)
					}
				}
			}
		}
	}
	return g
}

func TestBallGrowthPathViolations(t *testing.T) {
	// A long path has linear ball growth: B_4k ≈ 4·B_k, so the inequality
	// holds only while k/(20 lg n) <= 4 — at these sizes it always does.
	// Validate consistency: Holds must equal the recomputed condition.
	m := pathGraph(60).AllPairs()
	n := 60
	for _, p := range BallGrowth(m) {
		recheck := p.B4K > n/2 || float64(p.B4K) >= p.Factor*float64(p.BK)
		if p.Holds != recheck {
			t.Errorf("k=%d: Holds=%v inconsistent", p.K, p.Holds)
		}
	}
}

func TestBallGrowthRandomEquilibria(t *testing.T) {
	// Equilibria reached by exhaustive improvement (via findAnyImprovement
	// from the dynamics package would be an import cycle; emulate a tiny
	// best-response loop here) must satisfy inequality (1).
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		g := randomConnected(rng, 20, 0.1)
		for moves := 0; moves < 500; moves++ {
			improved := false
			for v := 0; v < g.N() && !improved; v++ {
				m, _, ok := BestSwap(g, v, Sum)
				if ok {
					ApplyMove(g, m)
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if ok, _, _ := CheckSum(g, 1); !ok {
			continue // budget exhausted; skip
		}
		for _, p := range BallGrowth(g.AllPairs()) {
			if !p.Holds {
				t.Errorf("trial %d: inequality (1) fails at k=%d on an equilibrium", trial, p.K)
			}
		}
		_ = math.Sqrt // keep math imported if assertions change
	}
}
