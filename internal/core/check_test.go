package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := pathGraph(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// doubleStar builds the Fig 2 tree: roots 0 and 1 joined by an edge, with
// `left` leaves on 0 and `right` leaves on 1.
func doubleStar(left, right int) *graph.Graph {
	g := graph.New(2 + left + right)
	g.AddEdge(0, 1)
	for i := 0; i < left; i++ {
		g.AddEdge(0, 2+i)
	}
	for i := 0; i < right; i++ {
		g.AddEdge(1, 2+left+i)
	}
	return g
}

func randomConnected(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestSumCostAndMaxCost(t *testing.T) {
	g := starGraph(5)
	if c := SumCost(g, 0); c != 4 {
		t.Errorf("SumCost(center) = %d, want 4", c)
	}
	if c := SumCost(g, 1); c != 7 {
		t.Errorf("SumCost(leaf) = %d, want 7", c)
	}
	if c := MaxCost(g, 0); c != 1 {
		t.Errorf("MaxCost(center) = %d, want 1", c)
	}
	if c := MaxCost(g, 1); c != 2 {
		t.Errorf("MaxCost(leaf) = %d, want 2", c)
	}
	d := graph.New(3)
	d.AddEdge(0, 1)
	if SumCost(d, 0) != InfCost || MaxCost(d, 2) != InfCost {
		t.Error("disconnected costs should be InfCost")
	}
}

func TestSocialCost(t *testing.T) {
	g := starGraph(4)
	// center 3, each of 3 leaves 1+2+2=5 → 18
	if c := SocialCost(g, Sum); c != 18 {
		t.Errorf("SocialCost(star4, Sum) = %d, want 18", c)
	}
	if c := SocialCost(g, Max); c != 1+3*2 {
		t.Errorf("SocialCost(star4, Max) = %d, want 7", c)
	}
	d := graph.New(2)
	if SocialCost(d, Sum) != InfCost {
		t.Error("disconnected social cost should be InfCost")
	}
}

func TestObjectiveString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" {
		t.Error("Objective.String wrong")
	}
	if Objective(9).String() == "" {
		t.Error("unknown objective should still format")
	}
}

func TestCheckSumStar(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 16} {
		ok, viol, err := CheckSum(starGraph(n), 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ok {
			t.Errorf("star n=%d not in sum equilibrium: %v", n, viol)
		}
	}
}

func TestCheckSumCompleteGraph(t *testing.T) {
	ok, viol, err := CheckSum(completeGraph(6), 0)
	if err != nil || !ok {
		t.Errorf("K6 should be a sum equilibrium, got ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestCheckSumCycle5(t *testing.T) {
	ok, viol, err := CheckSum(cycleGraph(5), 1)
	if err != nil || !ok {
		t.Errorf("C5 should be a sum equilibrium, got ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestCheckSumCycle6Fails(t *testing.T) {
	ok, viol, err := CheckSum(cycleGraph(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C6 incorrectly reported as sum equilibrium")
	}
	if viol == nil || viol.Kind != SwapImproves {
		t.Fatalf("C6 violation = %v, want a SwapImproves witness", viol)
	}
	// Verify the witness against the slow evaluator.
	g := cycleGraph(6)
	before := SumCost(g, viol.Move.V)
	after := EvaluateMove(g, viol.Move, Sum)
	if before != viol.OldCost || after != viol.NewCost || after >= before {
		t.Errorf("witness inconsistent: reported %d→%d, measured %d→%d",
			viol.OldCost, viol.NewCost, before, after)
	}
}

func TestCheckSumPathFails(t *testing.T) {
	// Theorem 1: the only sum-equilibrium tree is the star, so P4 fails.
	ok, viol, err := CheckSum(pathGraph(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("P4 incorrectly reported as sum equilibrium")
	}
	if viol == nil {
		t.Fatal("no witness for P4")
	}
}

func TestCheckSumTrivial(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := graph.New(n)
		ok, _, err := CheckSum(g, 1)
		if err != nil || !ok {
			t.Errorf("trivial graph n=%d: ok=%v err=%v", n, ok, err)
		}
	}
	two := pathGraph(2)
	ok, _, err := CheckSum(two, 1)
	if err != nil || !ok {
		t.Errorf("single edge: ok=%v err=%v", ok, err)
	}
}

func TestCheckDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if _, _, err := CheckSum(g, 1); err != ErrDisconnected {
		t.Errorf("CheckSum disconnected err = %v, want ErrDisconnected", err)
	}
	if _, _, err := CheckMax(g, 1); err != ErrDisconnected {
		t.Errorf("CheckMax disconnected err = %v, want ErrDisconnected", err)
	}
}

func TestCheckMaxStar(t *testing.T) {
	ok, viol, err := CheckMax(starGraph(7), 1)
	if err != nil || !ok {
		t.Errorf("star should be a max equilibrium, got ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestCheckMaxCompleteGraph(t *testing.T) {
	ok, viol, err := CheckMax(completeGraph(5), 2)
	if err != nil || !ok {
		t.Errorf("K5 should be a max equilibrium, got ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestCheckMaxDoubleStar(t *testing.T) {
	// Fig 2: double stars with >=2 leaves per root are max equilibria of
	// diameter 3.
	g := doubleStar(2, 2)
	if d, _ := g.Diameter(); d != 3 {
		t.Fatalf("double star diameter = %d, want 3", d)
	}
	ok, viol, err := CheckMax(g, 1)
	if err != nil || !ok {
		t.Errorf("double star (2,2) should be max equilibrium, got ok=%v viol=%v err=%v",
			ok, viol, err)
	}
	g2 := doubleStar(3, 4)
	ok, viol, err = CheckMax(g2, 1)
	if err != nil || !ok {
		t.Errorf("double star (3,4) should be max equilibrium, got ok=%v viol=%v err=%v",
			ok, viol, err)
	}
}

func TestCheckMaxDegenerateDoubleStarFails(t *testing.T) {
	// With a single leaf on one root the lone leaf can swap onto the far
	// root and lower its eccentricity (paper, Fig 2 discussion).
	g := doubleStar(1, 2)
	ok, viol, err := CheckMax(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("double star (1,2) incorrectly reported as max equilibrium")
	}
	if viol == nil {
		t.Fatal("no witness")
	}
	if viol.Kind == SwapImproves {
		g := doubleStar(1, 2)
		before := MaxCost(g, viol.Move.V)
		after := EvaluateMove(g, viol.Move, Max)
		if after >= before {
			t.Errorf("witness swap does not improve: %d→%d", before, after)
		}
	}
}

func TestCheckMaxPath4Fails(t *testing.T) {
	ok, _, err := CheckMax(pathGraph(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("P4 incorrectly reported as max equilibrium")
	}
}

func TestCheckMaxCycleDeletionSafeDetected(t *testing.T) {
	// C5 with a chord: deleting the chord leaves eccentricities unchanged,
	// so the graph violates the deletion-criticality half of max
	// equilibrium (or has an improving swap; both are valid rejections).
	g := cycleGraph(5)
	g.AddEdge(0, 2)
	ok, viol, err := CheckMax(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C5+chord incorrectly reported as max equilibrium")
	}
	if viol == nil {
		t.Fatal("no witness")
	}
}

func TestCheckParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(rng, 3+rng.Intn(10), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			seqV, err1 := Check(g, CheckSpec{Objective: obj, Workers: 1})
			parV, err2 := Check(g, CheckSpec{Objective: obj, Workers: 4})
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v %v", err1, err2)
			}
			if seqV.Stable != parV.Stable {
				t.Fatalf("trial %d obj=%v: sequential=%v parallel=%v", trial, obj, seqV.Stable, parV.Stable)
			}
		}
	}
}

func TestPriceSwapsMatchesEvaluateMove(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		g := randomConnected(rng, 3+rng.Intn(9), rng.Float64()*0.5)
		ref := g.Clone()
		for _, obj := range []Objective{Sum, Max} {
			for v := 0; v < g.N(); v++ {
				PriceSwaps(g, v, obj, func(m Move, c int64) bool {
					want := EvaluateMove(g, m, obj)
					if c != want {
						t.Fatalf("trial %d obj=%v move %v: priced %d, evaluated %d",
							trial, obj, m, c, want)
					}
					return true
				})
			}
		}
		if !g.Equal(ref) {
			t.Fatal("PriceSwaps did not restore the graph")
		}
	}
}

func TestPriceSwapsNoOpPricesCurrentCost(t *testing.T) {
	g := cycleGraph(7)
	cur := SumCost(g, 0)
	seen := false
	PriceSwaps(g, 0, Sum, func(m Move, c int64) bool {
		if m.Add == m.Drop {
			seen = true
			if c != cur {
				t.Errorf("no-op move %v priced %d, want current %d", m, c, cur)
			}
		}
		return true
	})
	if !seen {
		t.Error("no-op candidates never offered")
	}
}

func TestPriceSwapsEarlyStop(t *testing.T) {
	g := completeGraph(6)
	calls := 0
	PriceSwaps(g, 0, Sum, func(Move, int64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestBestSwapFindsImprovement(t *testing.T) {
	g := cycleGraph(6)
	// Find an agent with an improving swap; on C6 every agent has one.
	m, newCost, improves := BestSwap(g, 0, Sum)
	if !improves {
		t.Fatal("BestSwap found no improvement on C6")
	}
	cur := SumCost(g, 0)
	if newCost >= cur {
		t.Errorf("newCost %d not better than %d", newCost, cur)
	}
	if got := EvaluateMove(g, m, Sum); got != newCost {
		t.Errorf("EvaluateMove(%v) = %d, want %d", m, got, newCost)
	}
}

func TestBestSwapNoImprovementOnStar(t *testing.T) {
	g := starGraph(8)
	for v := 0; v < g.N(); v++ {
		if _, _, improves := BestSwap(g, v, Sum); improves {
			t.Errorf("BestSwap claims improvement for %d on star", v)
		}
	}
}

func TestBestSwapDeterministic(t *testing.T) {
	g := cycleGraph(8)
	m1, c1, _ := BestSwap(g, 3, Sum)
	m2, c2, _ := BestSwap(g, 3, Sum)
	if m1 != m2 || c1 != c2 {
		t.Errorf("BestSwap nondeterministic: %v/%d vs %v/%d", m1, c1, m2, c2)
	}
}

func TestApplyMoveUndo(t *testing.T) {
	g := cycleGraph(6)
	ref := g.Clone()
	undo := ApplyMove(g, Move{V: 0, Drop: 1, Add: 3})
	if !g.HasEdge(0, 3) || g.HasEdge(0, 1) {
		t.Error("ApplyMove did not apply")
	}
	undo()
	if !g.Equal(ref) {
		t.Error("undo did not restore")
	}
	// Deletion-style move (Add already a neighbor).
	undo = ApplyMove(g, Move{V: 0, Drop: 1, Add: 5})
	if g.HasEdge(0, 1) || !g.HasEdge(0, 5) || g.M() != ref.M()-1 {
		t.Error("deletion-style move wrong")
	}
	undo()
	if !g.Equal(ref) {
		t.Error("undo after deletion-style move did not restore")
	}
}

func TestApplyMovePanicsOnBadDrop(t *testing.T) {
	g := cycleGraph(5)
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyMove with missing drop edge did not panic")
		}
	}()
	ApplyMove(g, Move{V: 0, Drop: 2, Add: 3})
}

func TestLocalDiameterSpread(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path5", pathGraph(5), 2},
		{"star6", starGraph(6), 1},
		{"cycle6", cycleGraph(6), 0},
		{"K4", completeGraph(4), 0},
	}
	for _, c := range cases {
		got, err := LocalDiameterSpread(c.g)
		if err != nil || got != c.want {
			t.Errorf("%s: spread = %d, %v, want %d", c.name, got, err, c.want)
		}
	}
	if _, err := LocalDiameterSpread(graph.New(3)); err == nil {
		t.Error("disconnected spread should error")
	}
}

func TestMoveAndViolationString(t *testing.T) {
	m := Move{V: 1, Drop: 2, Add: 3}
	if m.String() != "1: 2→3" {
		t.Errorf("Move.String = %q", m.String())
	}
	v := &Violation{Kind: SwapImproves, Move: m, OldCost: 9, NewCost: 7}
	if v.String() == "" {
		t.Error("empty Violation.String")
	}
	for _, k := range []ViolationKind{SwapImproves, DeletionSafe, InsertionHelps, ViolationKind(9)} {
		if k.String() == "" {
			t.Error("empty ViolationKind.String")
		}
	}
}
