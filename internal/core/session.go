package core

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pricing"
)

// Session is an incremental pricing session over a game graph: it owns a
// live CSR snapshot (pricing.Session over graph.Dyn) kept in sync with the
// authoritative map-backed graph, so a whole dynamics trajectory — or a
// best-response iteration, or an equilibrium-certification sweep — prices
// every move against one snapshot that is patched in O(deg) per applied
// move instead of re-frozen in O(n+m).
//
// Lifecycle: NewSession thaws the graph once (freeze), Apply routes each
// move to both structures (apply), the session's generation counter
// invalidates any outstanding scans (invalidate), and BestSwap /
// FirstImproving / FindImprovement / CheckSwapStable certify against the
// same live snapshot (certify). All pricing results are bit-identical to
// the one-shot engine paths (BestSwapParallel, PriceSwaps) on the same
// graph, for any worker count; the differential tests in internal/dynamics
// pin that move-for-move.
//
// A Session is single-writer: Apply and Undo must not race with pricing
// calls. The pricing calls themselves shard internally across the
// session's workers.
type Session struct {
	g       *graph.Graph
	ps      *pricing.Session
	eng     *pricing.Engine
	workers int
}

// NewSession starts a session on g with the given pricing parallelism
// (<= 0 means all cores). The engine (and its pooled BFS scratch) is
// shared with other sessions and one-shot calls at the same worker count.
func NewSession(g *graph.Graph, workers int) *Session {
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	eng := engineFor(workers)
	return &Session{g: g, ps: eng.NewSession(g), eng: eng, workers: workers}
}

// Graph returns the authoritative mutable graph. Mutating it directly
// desynchronizes the session; route moves through Apply.
func (s *Session) Graph() *graph.Graph { return s.g }

// Workers returns the session's pricing parallelism.
func (s *Session) Workers() int { return s.workers }

// View returns the live CSR snapshot for read-only use (e.g. sampling
// neighbors without allocating); mutate only through Apply.
func (s *Session) View() *graph.Dyn { return s.ps.View() }

// Apply performs m on both the graph and the live snapshot, returning a
// function that undoes the move on both (undos must be invoked in LIFO
// order). Invalid moves (Drop not a neighbor) panic, like ApplyMove.
func (s *Session) Apply(m Move) (undo func()) {
	gundo := ApplyMove(s.g, m)
	s.ps.ApplySwap(m.V, m.Drop, m.Add)
	return func() {
		s.ps.Undo()
		gundo()
	}
}

// Cost returns agent v's usage cost from one BFS row over the live
// snapshot. It equals Cost(g, v, obj) on the synced graph.
func (s *Session) Cost(v int, obj Objective) int64 {
	dist, queue, release := s.eng.Scratch(s.ps.N())
	defer release()
	s.ps.View().BFSInto(v, dist, queue)
	return pricing.Usage(dist, pobj(obj))
}

// SocialCost returns the sum of all agents' usage costs (InfCost when the
// graph is disconnected), computed over the live snapshot. It equals
// SocialCost(g, obj) on the synced graph.
func (s *Session) SocialCost(obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dist, queue, release := s.eng.Scratch(n)
	defer release()
	var total int64
	for v := 0; v < n; v++ {
		view.BFSInto(v, dist, queue)
		c := pricing.Usage(dist, pobj(obj))
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

// BestSwap returns agent v's cost-minimizing swap over the live snapshot,
// with the same deterministic (cost, drop, add) tie-break as
// BestSwapParallel, plus v's current cost (read from the scan for free).
// The candidate-endpoint scan is sharded across the session's workers.
func (s *Session) BestSwap(v int, obj Objective) (best Move, oldCost, newCost int64, improves bool) {
	scan := s.ps.NewScan(v)
	defer scan.Close()
	cur := scan.CurrentUsage(pobj(obj))
	if b, ok := scan.BestMove(pobj(obj), false); ok && b.Cost < cur {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, cur, b.Cost, true
	}
	return best, cur, cur, false
}

// FirstImproving returns agent v's first improving swap in the engine's
// add-major enumeration order — the first-improvement policy's move —
// sharded across the session's workers with a deterministic merge, so the
// result equals the sequential early-exit scan for any worker count.
func (s *Session) FirstImproving(v int, obj Objective) (m Move, oldCost, newCost int64, found bool) {
	scan := s.ps.NewScan(v)
	defer scan.Close()
	cur := scan.CurrentUsage(pobj(obj))
	if b, ok := scan.FirstImproving(pobj(obj), false, cur); ok {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, cur, b.Cost, true
	}
	return m, cur, cur, false
}

// PriceSwaps streams every candidate swap of agent v over the live
// snapshot in the same add-major order as the package-level PriceSwaps,
// without re-freezing.
func (s *Session) PriceSwaps(v int, obj Objective, fn func(m Move, newCost int64) bool) {
	scan := s.ps.NewScan(v)
	defer scan.Close()
	drops := scan.Drops()
	scan.ForEach(pobj(obj), false, func(i, add int, cost int64) bool {
		return fn(Move{V: v, Drop: int(drops[i]), Add: add}, cost)
	})
}

// PriceMove prices a single candidate move from two BFS rows over the live
// snapshot — d_{G−vw}(v,·) patched with d_{G−v}(w',·) — without mutating
// anything. It equals EvaluateMove(g, m, obj) on the synced graph and is
// the random-improving policy's probe path. Requires Add != V; Drop need
// not be a neighbor (a non-edge drop degenerates to pricing the insertion
// alone, matching EvaluateMove).
func (s *Session) PriceMove(m Move, obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dv, qv, releaseV := s.eng.Scratch(n)
	defer releaseV()
	dw, qw, releaseW := s.eng.Scratch(n)
	defer releaseW()
	view.BFSSkipEdge(m.V, m.V, m.Drop, dv, qv)
	view.BFSSkipVertex(m.Add, m.V, dw, qw)
	return pricing.Patched(dv, dw, pobj(obj))
}

// FindImprovement scans agents in ascending order for the first improving
// swap — the certification sweep of the random-improving policy. Within
// each agent the scan is sharded across the session's workers with the
// deterministic first-improvement merge, so the returned move is the same
// for any worker count. found is false exactly when the graph is in swap
// equilibrium under obj.
func (s *Session) FindImprovement(obj Objective) (m Move, oldCost, newCost int64, found bool) {
	n := s.ps.N()
	for v := 0; v < n; v++ {
		if m, oldCost, newCost, found = s.FirstImproving(v, obj); found {
			return m, oldCost, newCost, true
		}
	}
	return Move{}, 0, 0, false
}

// CheckSwapStable reports whether no single swap strictly improves any
// agent, certifying against the live snapshot without re-freezing; agents
// are sharded across the session's workers. The verdict agrees with the
// one-shot CheckSwapStable / CheckSwapEquilibrium on the synced graph.
func (s *Session) CheckSwapStable(obj Objective) (bool, *Violation, error) {
	n := s.ps.N()
	if n <= 1 {
		return true, nil, nil
	}
	dist, queue, release := s.eng.Scratch(n)
	if s.ps.View().BFSInto(0, dist, queue) != n {
		release()
		return false, nil, ErrDisconnected
	}
	release()
	workers := s.workers
	if workers > n {
		workers = n
	}
	found := scanAgents(s.ps.View(), obj, workers, false)
	return found == nil, found, nil
}
