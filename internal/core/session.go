package core

import (
	"repro/internal/game"
	"repro/internal/graph"
)

// Session is the basic game's incremental pricing session. It is a thin
// facade over game.SwapSession — the Swap model's fast instance in the
// deviation-model layer — kept so the historical core surface (and its
// method names: BestSwap, CheckSwapStable) stays stable: a live CSR
// snapshot is patched in O(deg) per applied move instead of re-frozen in
// O(n+m), and every probe, sweep, and certification pass prices against
// it. See game.SwapSession for the lifecycle and determinism contract.
//
// A Session is single-writer: Apply and undo must not race with pricing
// calls. The pricing calls themselves shard internally across the
// session's workers.
type Session struct {
	inst *game.SwapSession
}

// NewSession starts a session on g with the given pricing parallelism
// (<= 0 means all cores). The engine (and its pooled BFS scratch) is
// shared with other sessions and one-shot calls at the same worker count.
func NewSession(g *graph.Graph, workers int) *Session {
	return &Session{inst: game.NewSwapSession(g, workers)}
}

// Instance returns the underlying Swap model instance (the game.Instance
// the model-generic engines drive).
func (s *Session) Instance() *game.SwapSession { return s.inst }

// Graph returns the authoritative mutable graph. Mutating it directly
// desynchronizes the session; route moves through Apply.
func (s *Session) Graph() *graph.Graph { return s.inst.Graph() }

// Workers returns the session's pricing parallelism.
func (s *Session) Workers() int { return s.inst.Workers() }

// View returns the live CSR snapshot for read-only use (e.g. sampling
// neighbors without allocating); mutate only through Apply.
func (s *Session) View() *graph.Dyn { return s.inst.View() }

// Apply performs m on both the graph and the live snapshot, returning a
// function that undoes the move on both (undos must be invoked in LIFO
// order). Invalid moves (Drop not a neighbor) panic, like ApplyMove.
func (s *Session) Apply(m Move) (undo func()) { return s.inst.Apply(m) }

// Cost returns agent v's usage cost from one BFS row over the live
// snapshot. It equals Cost(g, v, obj) on the synced graph.
func (s *Session) Cost(v int, obj Objective) int64 { return s.inst.Cost(v, obj) }

// SocialCost returns the sum of all agents' usage costs (InfCost when the
// graph is disconnected), computed over the live snapshot. It equals
// SocialCost(g, obj) on the synced graph.
func (s *Session) SocialCost(obj Objective) int64 { return s.inst.SocialCost(obj) }

// BestSwap returns agent v's cost-minimizing swap over the live snapshot,
// with the same deterministic (cost, drop, add) tie-break as
// BestSwapParallel, plus v's current cost (read from the scan for free).
// The candidate-endpoint scan is sharded across the session's workers.
func (s *Session) BestSwap(v int, obj Objective) (best Move, oldCost, newCost int64, improves bool) {
	return s.inst.BestMove(v, obj)
}

// FirstImproving returns agent v's first improving swap in the engine's
// add-major enumeration order — the first-improvement policy's move —
// sharded across the session's workers with a deterministic merge, so the
// result equals the sequential early-exit scan for any worker count.
func (s *Session) FirstImproving(v int, obj Objective) (m Move, oldCost, newCost int64, found bool) {
	return s.inst.FirstImproving(v, obj)
}

// PriceSwaps streams every candidate swap of agent v over the live
// snapshot in the same add-major order as the package-level PriceSwaps,
// without re-freezing.
func (s *Session) PriceSwaps(v int, obj Objective, fn func(m Move, newCost int64) bool) {
	s.inst.PriceSwaps(v, obj, fn)
}

// PriceMove prices a single candidate move from two BFS rows over the live
// snapshot — d_{G−vw}(v,·) patched with d_{G−v}(w',·) — without mutating
// anything. It equals EvaluateMove(g, m, obj) on the synced graph and is
// the random-improving policy's probe path. Requires Add != V; Drop need
// not be a neighbor (a non-edge drop degenerates to pricing the insertion
// alone, matching EvaluateMove). Rows are memoized across probes within
// one mutation generation (see game.SwapSession).
func (s *Session) PriceMove(m Move, obj Objective) int64 { return s.inst.PriceMove(m, obj) }

// FindImprovement scans agents in ascending order for the first improving
// swap — the certification sweep of the random-improving policy. Within
// each agent the scan is sharded across the session's workers with the
// deterministic first-improvement merge, so the returned move is the same
// for any worker count. found is false exactly when the graph is in swap
// equilibrium under obj.
func (s *Session) FindImprovement(obj Objective) (m Move, oldCost, newCost int64, found bool) {
	return s.inst.FindImprovement(obj)
}

// FindImprovementBatched is FindImprovement computed via the batched
// cross-agent sweep: candidate-endpoint BFS rows are computed once over
// the live snapshot and reused across deviators as lower-bound filters
// (O(n²) transient memory). The result is bit-identical to
// FindImprovement.
func (s *Session) FindImprovementBatched(obj Objective) (m Move, oldCost, newCost int64, found bool) {
	return s.inst.FindImprovementBatched(obj)
}

// CheckSwapStable reports whether no single swap strictly improves any
// agent, certifying against the live snapshot without re-freezing; each
// agent's scan is sharded across the session's workers. The verdict agrees
// with the one-shot CheckSwapStable / CheckSwapEquilibrium on the synced
// graph.
func (s *Session) CheckSwapStable(obj Objective) (bool, *Violation, error) {
	return s.inst.CheckStable(obj)
}
