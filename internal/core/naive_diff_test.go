package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// The engine-backed pricing paths must agree with the pre-engine Naive*
// oracles on every move: same candidate set, same costs, same best move,
// and the same stability verdict.

func TestPriceSwapsAgreesWithNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 4+rng.Intn(9), rng.Float64()*0.5)
		for _, obj := range []Objective{Sum, Max} {
			for v := 0; v < g.N(); v++ {
				engine := map[Move]int64{}
				PriceSwaps(g, v, obj, func(m Move, c int64) bool {
					engine[m] = c
					return true
				})
				naive := map[Move]int64{}
				NaivePriceSwaps(g, v, obj, func(m Move, c int64) bool {
					naive[m] = c
					return true
				})
				if len(engine) != len(naive) {
					t.Fatalf("trial %d obj=%v v=%d: engine %d candidates, naive %d",
						trial, obj, v, len(engine), len(naive))
				}
				for m, c := range naive {
					if got, ok := engine[m]; !ok || got != c {
						t.Fatalf("trial %d obj=%v move %v: engine %d (present=%v), naive %d",
							trial, obj, m, got, ok, c)
					}
				}
			}
		}
	}
}

func TestBestSwapAgreesWithNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 4+rng.Intn(9), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			for v := 0; v < g.N(); v++ {
				for _, workers := range []int{1, 3} {
					m, c, ok := BestSwapParallel(g, v, obj, workers)
					nm, nc, nok := NaiveBestSwap(g, v, obj)
					if ok != nok || c != nc || (ok && m != nm) {
						t.Fatalf("trial %d obj=%v v=%d workers=%d: engine (%v,%d,%v) naive (%v,%d,%v)",
							trial, obj, v, workers, m, c, ok, nm, nc, nok)
					}
				}
			}
		}
	}
}

func TestCheckVerdictAgreesWithNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(rng, 4+rng.Intn(8), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			got, viol, err := CheckSwapStable(g, obj, 2)
			if err != nil {
				t.Fatal(err)
			}
			want := true
			for v := 0; v < g.N() && want; v++ {
				if _, _, improves := NaiveBestSwap(g, v, obj); improves {
					want = false
				}
			}
			if got != want {
				t.Fatalf("trial %d obj=%v: engine stable=%v, naive stable=%v", trial, obj, got, want)
			}
			if viol != nil && EvaluateMove(g, viol.Move, obj) != viol.NewCost {
				t.Fatalf("trial %d obj=%v: witness %v does not evaluate to its cost", trial, obj, viol)
			}
		}
	}
}

// graph import is used by randomConnected in check_test.go; keep the
// compiler honest if that helper moves.
var _ = graph.NewEdge
