package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestDeletionCriticalCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 11} {
		ok, viol, err := IsDeletionCritical(cycleGraph(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("C%d should be deletion-critical, witness %v", n, viol)
		}
	}
}

func TestDeletionCriticalTrees(t *testing.T) {
	// Deleting any tree edge disconnects, so every tree is
	// deletion-critical.
	for _, g := range []*graph.Graph{pathGraph(6), starGraph(7), doubleStar(2, 3)} {
		ok, viol, err := IsDeletionCritical(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("tree %v should be deletion-critical, witness %v", g, viol)
		}
	}
}

func TestDeletionCriticalCompleteGraph(t *testing.T) {
	ok, viol, err := IsDeletionCritical(completeGraph(5), 1)
	if err != nil || !ok {
		t.Errorf("K5 should be deletion-critical: ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestDeletionCriticalChordalCycleFails(t *testing.T) {
	// C5 + chord {0,2}: deleting edge {0,1} leaves ecc(0) at 2.
	g := cycleGraph(5)
	g.AddEdge(0, 2)
	ok, viol, err := IsDeletionCritical(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C5+chord incorrectly deletion-critical")
	}
	if viol == nil || viol.Kind != DeletionSafe {
		t.Fatalf("witness = %v, want DeletionSafe", viol)
	}
	// Confirm the witness: removing the edge must leave the agent's
	// eccentricity unchanged or smaller.
	g2 := cycleGraph(5)
	g2.AddEdge(0, 2)
	before, _ := g2.Eccentricity(viol.Agent)
	g2.RemoveEdge(viol.Edge.U, viol.Edge.V)
	after, stillConn := g2.Eccentricity(viol.Agent)
	if !stillConn || after > before {
		t.Errorf("witness wrong: ecc %d→%d (connected=%v)", before, after, stillConn)
	}
}

func TestDeletionCriticalDisconnected(t *testing.T) {
	if _, _, err := IsDeletionCritical(graph.New(3), 1); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestInsertionStableC5(t *testing.T) {
	ok, viol, err := IsInsertionStable(cycleGraph(5), 1)
	if err != nil || !ok {
		t.Errorf("C5 should be insertion-stable: ok=%v viol=%v err=%v", ok, viol, err)
	}
}

func TestInsertionStableCompleteGraph(t *testing.T) {
	// No absent edges: vacuously stable.
	ok, _, err := IsInsertionStable(completeGraph(4), 1)
	if err != nil || !ok {
		t.Error("K4 should be insertion-stable")
	}
}

func TestInsertionStableC6Fails(t *testing.T) {
	ok, viol, err := IsInsertionStable(cycleGraph(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C6 incorrectly insertion-stable")
	}
	if viol == nil || viol.Kind != InsertionHelps {
		t.Fatalf("witness = %v, want InsertionHelps", viol)
	}
	// Verify the witness by explicit insertion.
	g := cycleGraph(6)
	before, _ := g.Eccentricity(viol.Agent)
	g.AddEdge(viol.Edge.U, viol.Edge.V)
	after, _ := g.Eccentricity(viol.Agent)
	if after >= before {
		t.Errorf("witness wrong: ecc %d→%d after inserting %v", before, after, viol.Edge)
	}
}

func TestInsertionStableStarFails(t *testing.T) {
	// Adding a leaf-leaf edge drops that leaf's eccentricity from 2 to... 2
	// (other leaves still at 2) — so the star IS insertion stable for n>=4.
	// For n=3 (path 1-0-2) adding {1,2} lowers ecc(1) from 2 to 1.
	ok, _, err := IsInsertionStable(starGraph(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("star3 (=P3) incorrectly insertion-stable")
	}
	ok, viol, err := IsInsertionStable(starGraph(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("star5 should be insertion-stable, witness %v", viol)
	}
}

func TestKInsertionStableMatchesInsertionStableForK1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(rng, 3+rng.Intn(8), rng.Float64()*0.4)
		want, _, err1 := IsInsertionStable(g, 1)
		got, _, err2 := IsKInsertionStable(g, 1, 1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if want != got {
			t.Fatalf("trial %d: IsInsertionStable=%v IsKInsertionStable(1)=%v", trial, want, got)
		}
	}
}

func TestKInsertionStableWitness(t *testing.T) {
	// C8 is not even 1-insertion stable; with k=2 a witness must exist and
	// verify: inserting the returned edges lowers the agent's ecc.
	g := cycleGraph(8)
	ok, res, err := IsKInsertionStable(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C8 incorrectly 2-insertion-stable")
	}
	if res == nil || len(res.Adds) == 0 {
		t.Fatal("missing witness")
	}
	before, _ := g.Eccentricity(res.V)
	for _, a := range res.Adds {
		g.AddEdge(res.V, a)
	}
	after, _ := g.Eccentricity(res.V)
	if int64(before) != res.OldCost || int64(after) > res.NewCost {
		t.Errorf("witness inconsistent: reported %d→%d, measured %d→%d",
			res.OldCost, res.NewCost, before, after)
	}
	if after >= before {
		t.Errorf("witness does not improve: %d→%d", before, after)
	}
}

func TestKInsertionStableKZero(t *testing.T) {
	ok, res, err := IsKInsertionStable(cycleGraph(6), 0, 1)
	if err != nil || !ok || res != nil {
		t.Error("k=0 should be vacuously stable")
	}
}

func TestKInsertionStableCompleteGraph(t *testing.T) {
	ok, _, err := IsKInsertionStable(completeGraph(5), 3, 2)
	if err != nil || !ok {
		t.Error("K5 should be k-insertion-stable (no candidates)")
	}
}

func TestSampleInsertionStable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c5 := cycleGraph(5).AllPairs()
	if ok, e := SampleInsertionStable(c5, 300, rng); !ok {
		t.Errorf("C5 sampled insertion-stability failed at %v", e)
	}
	c8 := cycleGraph(8).AllPairs()
	ok, e := SampleInsertionStable(c8, 300, rng)
	if ok {
		t.Error("C8 sampled insertion-stability should find a violation")
	} else if e == nil {
		t.Error("violation without witness edge")
	}
}

func TestSampleInsertionStableTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := graph.New(1).AllPairs()
	if ok, _ := SampleInsertionStable(m, 10, rng); !ok {
		t.Error("single vertex should be trivially stable")
	}
}

func TestSampleDeletionCritical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := cycleGraph(9)
	ref := g.Clone()
	if ok, e := SampleDeletionCritical(g, 200, rng); !ok {
		t.Errorf("C9 sampled deletion-criticality failed at %v", e)
	}
	if !g.Equal(ref) {
		t.Error("SampleDeletionCritical mutated the graph")
	}
	bad := cycleGraph(5)
	bad.AddEdge(0, 2)
	if ok, e := SampleDeletionCritical(bad, 200, rng); ok {
		t.Error("C5+chord sampled deletion-criticality should fail")
	} else if e == nil {
		t.Error("violation without witness edge")
	}
}

func TestSampleDeletionCriticalEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if ok, _ := SampleDeletionCritical(graph.New(3), 5, rng); !ok {
		t.Error("edgeless graph trivially deletion-critical under sampling")
	}
}

func TestInsertionPlusDeletionImpliesMaxEquilibrium(t *testing.T) {
	// Paper §1: insertion-stable + deletion-critical ⇒ max equilibrium.
	// Cross-check the three predicates against each other on families
	// where all three are decidable.
	graphs := map[string]*graph.Graph{
		"C5":         cycleGraph(5),
		"K6":         completeGraph(6),
		"star6":      starGraph(6),
		"doubleStar": doubleStar(2, 2),
		"C5+chord":   func() *graph.Graph { g := cycleGraph(5); g.AddEdge(0, 2); return g }(),
		"path5":      pathGraph(5),
		"C4":         cycleGraph(4),
	}
	for name, g := range graphs {
		ins, _, err1 := IsInsertionStable(g, 1)
		del, _, err2 := IsDeletionCritical(g, 1)
		eq, _, err3 := CheckMax(g, 1)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("%s: errors %v %v %v", name, err1, err2, err3)
		}
		if ins && del && !eq {
			t.Errorf("%s: insertion-stable and deletion-critical but not max equilibrium", name)
		}
	}
}
