package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// Lemma10Result is the outcome of the constructive Lemma 10 check at a
// vertex u: either the graph already has diameter ≤ 2·lg n, or some edge xy
// with d(u,x) ≤ lg n can be removed at bounded cost to x.
type Lemma10Result struct {
	U int
	// SmallDiameter is true when diameter ≤ 2 lg n (first disjunct).
	SmallDiameter bool
	// Edge is the cheapest qualifying edge (valid when !SmallDiameter and
	// Found).
	Edge graph.Edge
	// RemovalCost is the increase in x's distance sum caused by deleting
	// Edge (InfCost when deletion disconnects).
	RemovalCost int64
	// Bound is the lemma's budget 2n(1+lg n).
	Bound float64
	// Found is true when some edge within radius lg n exists.
	Found bool
	// Holds reports whether the lemma's disjunction is satisfied at u.
	Holds bool
}

// Lemma10Check constructively evaluates Lemma 10 at vertex u: it scans all
// edges xy with d(u,x) ≤ lg n, prices the deletion cost to x, and reports
// the cheapest. For sum equilibrium graphs the lemma guarantees
// Holds == true; on arbitrary graphs the check may fail, which the
// experiments use as a sanity control.
func Lemma10Check(g *graph.Graph, u int) (Lemma10Result, error) {
	n := g.N()
	if n == 0 || !g.IsConnected() {
		return Lemma10Result{}, ErrDisconnected
	}
	lgn := math.Log2(float64(n))
	res := Lemma10Result{U: u, Bound: 2 * float64(n) * (1 + lgn)}

	if diam, ok := g.Diameter(); ok && float64(diam) <= 2*lgn {
		res.SmallDiameter = true
		res.Holds = true
		return res, nil
	}

	du := g.BFS(u)
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	best := InfCost
	var bestEdge graph.Edge
	for _, e := range g.Edges() {
		// The lemma's x is the endpoint within radius lg n of u.
		for _, xy := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			x, y := xy[0], xy[1]
			if float64(du[x]) > lgn {
				continue
			}
			baseSum, _ := g.SumOfDistances(x)
			g.RemoveEdge(x, y)
			reached := g.BFSInto(x, dist, queue)
			var after int64 = InfCost
			if reached == n {
				after = 0
				for _, d := range dist {
					after += int64(d)
				}
			}
			g.AddEdge(x, y)
			cost := InfCost
			if after < InfCost {
				cost = after - baseSum
			}
			if cost < best {
				best, bestEdge = cost, graph.NewEdge(x, y)
				res.Found = true
			}
		}
	}
	res.Edge, res.RemovalCost = bestEdge, best
	res.Holds = res.Found && float64(best) <= res.Bound
	return res, nil
}

// BallSizes returns, for every vertex u, the cumulative ball sizes
// B_k(u) = #{v : d(u,v) ≤ k} for k = 0..diameter, from an APSP matrix.
func BallSizes(m *graph.Matrix) [][]int {
	n := m.N()
	diam, _ := m.Diameter()
	out := make([][]int, n)
	for u := 0; u < n; u++ {
		counts := make([]int, diam+1)
		for _, d := range m.Row(u) {
			if d >= 0 {
				counts[d]++
			}
		}
		for k := 1; k <= diam; k++ {
			counts[k] += counts[k-1]
		}
		out[u] = counts
	}
	return out
}

// MinBall returns B_k = min_u B_k(u) for each k, the quantity driving the
// Theorem 9 ball-growth recursion.
func MinBall(balls [][]int) []int {
	if len(balls) == 0 {
		return nil
	}
	diam := len(balls[0]) - 1
	out := make([]int, diam+1)
	for k := 0; k <= diam; k++ {
		out[k] = int(math.MaxInt32)
		for _, b := range balls {
			v := b[min(k, len(b)-1)]
			if v < out[k] {
				out[k] = v
			}
		}
	}
	return out
}

// BallGrowthPoint is one row of the Theorem 9 inequality (1) evaluation:
// for each k, either B_{4k} > n/2 or B_{4k} ≥ (k / 20 lg n) · B_k.
type BallGrowthPoint struct {
	K      int
	BK     int
	B4K    int
	Factor float64 // k / (20 lg n)
	Holds  bool
}

// BallGrowth evaluates inequality (1) of Theorem 9 for every k with
// 4k ≤ diameter. Sum equilibrium graphs must satisfy every row.
func BallGrowth(m *graph.Matrix) []BallGrowthPoint {
	n := m.N()
	if n < 2 {
		return nil
	}
	minBall := MinBall(BallSizes(m))
	diam := len(minBall) - 1
	lgn := math.Log2(float64(n))
	var out []BallGrowthPoint
	for k := 1; 4*k <= diam; k++ {
		p := BallGrowthPoint{
			K:      k,
			BK:     minBall[k],
			B4K:    minBall[4*k],
			Factor: float64(k) / (20 * lgn),
		}
		p.Holds = p.B4K > n/2 || float64(p.B4K) >= p.Factor*float64(p.BK)
		out = append(out, p)
	}
	return out
}

// Lemma10CheckAll runs Lemma10Check from every vertex in parallel and
// reports whether the lemma holds everywhere, with the first failing vertex.
func Lemma10CheckAll(g *graph.Graph, workers int) (bool, int, error) {
	n := g.N()
	if !g.IsConnected() {
		return false, -1, ErrDisconnected
	}
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	fails := make([]bool, n)
	errs := make([]error, n)
	var next par.Counter
	par.Workers(workers, func(int) {
		gw := g.Clone()
		for u := next.Next(); u < n; u = next.Next() {
			res, err := Lemma10Check(gw, u)
			if err != nil {
				errs[u] = err
				return
			}
			fails[u] = !res.Holds
		}
	})
	for u := 0; u < n; u++ {
		if errs[u] != nil {
			return false, u, errs[u]
		}
		if fails[u] {
			return false, u, nil
		}
	}
	return true, -1, nil
}
