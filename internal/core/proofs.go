package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// This file makes two of the paper's proofs *executable*: given an object
// the theorem forbids, it constructs the exact improving move the proof
// exhibits, so the test suite can verify the argument itself (not merely
// the statement) over exhaustively enumerated instances.

// ErrNotApplicable is returned when a proof witness is requested for an
// object the corresponding lemma/theorem does not constrain.
var ErrNotApplicable = errors.New("core: proof witness not applicable")

// Theorem1Witness takes a tree of diameter at least 3 and returns the
// improving sum-version swap constructed in the proof of Theorem 1.
//
// The proof: pick vertices v, w at distance exactly 3 along a path
// v–a–b–w, and let s_v, s_a, s_b, s_w be the sizes of the four components
// obtained by deleting the path's edges. Swapping va→vb gains
// s_b + s_w − s_a; swapping wb→wa gains s_v + s_a − s_b. If neither were
// positive then s_v + s_w ≤ 0 — absurd — so at least one strictly improves.
// The returned move is one that does (preferring the v-side on ties).
func Theorem1Witness(t *graph.Graph) (Move, error) {
	if !t.IsTree() {
		return Move{}, fmt.Errorf("%w: input is not a tree", ErrNotApplicable)
	}
	v, a, b, w, err := distanceThreePath(t)
	if err != nil {
		return Move{}, err
	}
	sizes := pathComponentSizes(t, []int{v, a, b, w})
	sv, sa, sb, sw := sizes[0], sizes[1], sizes[2], sizes[3]

	if sb+sw > sa {
		return Move{V: v, Drop: a, Add: b}, nil
	}
	if sv+sa > sb {
		return Move{V: w, Drop: b, Add: a}, nil
	}
	// Unreachable by the proof's counting argument.
	return Move{}, fmt.Errorf("core: Theorem 1 argument failed: sizes %v", sizes)
}

// distanceThreePath finds vertices (v,a,b,w) forming a shortest path of
// length exactly 3 in a tree of diameter >= 3.
func distanceThreePath(t *graph.Graph) (v, a, b, w int, err error) {
	// Double sweep: the second BFS finds a diametral path.
	d0 := t.BFS(0)
	far := 0
	for x, d := range d0 {
		if d > d0[far] {
			far = x
		}
	}
	parent, dist := t.BFSTree(far)
	end := far
	for x, d := range dist {
		if d > dist[end] {
			end = x
		}
	}
	if dist[end] < 3 {
		return 0, 0, 0, 0, fmt.Errorf("%w: tree diameter %d < 3", ErrNotApplicable, dist[end])
	}
	// Walk up from end: end, parent, grandparent, great-grandparent.
	w = end
	b = int(parent[w])
	a = int(parent[b])
	v = int(parent[a])
	return v, a, b, w, nil
}

// pathComponentSizes deletes the consecutive edges of the given path in a
// tree and returns the component size containing each path vertex.
func pathComponentSizes(t *graph.Graph, path []int) []int {
	work := t.Clone()
	for i := 0; i+1 < len(path); i++ {
		work.RemoveEdge(path[i], path[i+1])
	}
	sizes := make([]int, len(path))
	dist := make([]int32, work.N())
	queue := make([]int, 0, work.N())
	for i, p := range path {
		sizes[i] = work.BFSInto(p, dist, queue)
	}
	return sizes
}

// Lemma2Witness takes a connected graph whose local diameters differ by at
// least 2 and returns the improving max-version move from the Lemma 2
// proof: the vertex w of largest eccentricity swaps its BFS-tree parent
// edge (toward the vertex v of smallest eccentricity) for a direct edge to
// v, dropping its eccentricity to at most ecc(v)+1.
//
// It returns ErrNotApplicable when the spread is at most 1 (Lemma 2 places
// no constraint), so on max equilibria it always returns ErrNotApplicable —
// which is exactly the lemma.
func Lemma2Witness(g *graph.Graph) (Move, error) {
	if !g.IsConnected() {
		return Move{}, ErrDisconnected
	}
	n := g.N()
	bestV, minEcc := -1, 0
	worstW, maxEcc := -1, -1
	for x := 0; x < n; x++ {
		ecc, _ := g.Eccentricity(x)
		if bestV < 0 || ecc < minEcc {
			bestV, minEcc = x, ecc
		}
		if ecc > maxEcc {
			worstW, maxEcc = x, ecc
		}
	}
	if maxEcc-minEcc < 2 {
		return Move{}, fmt.Errorf("%w: eccentricity spread %d <= 1", ErrNotApplicable, maxEcc-minEcc)
	}
	parent, _ := g.BFSTree(bestV)
	p := int(parent[worstW])
	if p < 0 {
		return Move{}, fmt.Errorf("core: BFS tree has no parent for %d", worstW)
	}
	return Move{V: worstW, Drop: p, Add: bestV}, nil
}
