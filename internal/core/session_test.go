package core

import (
	"math/rand"
	"testing"
)

// The session's pricing surface must stay interchangeable with the
// one-shot engine paths on the synced graph, including after a chain of
// applied moves has patched the live snapshot.

// advance applies up to steps session moves (best swaps of random agents),
// keeping the session and graph in sync through Session.Apply.
func advance(rng *rand.Rand, s *Session, obj Objective, steps int) {
	for i := 0; i < steps; i++ {
		v := rng.Intn(s.Graph().N())
		if m, _, _, improves := s.BestSwap(v, obj); improves {
			s.Apply(m)
		}
	}
}

func TestSessionPriceSwapsMatchesPackageLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(rng, 4+rng.Intn(10), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			s := NewSession(g, 1)
			advance(rng, s, obj, 3)
			for v := 0; v < g.N(); v++ {
				type cand struct {
					m Move
					c int64
				}
				var fromSession, fromPackage []cand
				s.PriceSwaps(v, obj, func(m Move, c int64) bool {
					fromSession = append(fromSession, cand{m, c})
					return true
				})
				PriceSwaps(g, v, obj, func(m Move, c int64) bool {
					fromPackage = append(fromPackage, cand{m, c})
					return true
				})
				if len(fromSession) != len(fromPackage) {
					t.Fatalf("trial %d obj=%v v=%d: session %d candidates, package %d",
						trial, obj, v, len(fromSession), len(fromPackage))
				}
				for i := range fromPackage {
					if fromSession[i] != fromPackage[i] {
						t.Fatalf("trial %d obj=%v v=%d: candidate %d diverges: %+v vs %+v",
							trial, obj, v, i, fromSession[i], fromPackage[i])
					}
				}
			}
		}
	}
}

func TestSessionCheckSwapStableAgreesWithOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 4+rng.Intn(10), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			for _, workers := range []int{1, 3} {
				s := NewSession(g, workers)
				advance(rng, s, obj, 2)
				gotStable, gotViol, err := s.CheckSwapStable(obj)
				if err != nil {
					t.Fatal(err)
				}
				wantStable, _, err := CheckSwapEquilibrium(g, obj, workers)
				if err != nil {
					t.Fatal(err)
				}
				if gotStable != wantStable {
					t.Fatalf("trial %d obj=%v workers=%d: session stable=%v, one-shot stable=%v",
						trial, obj, workers, gotStable, wantStable)
				}
				if gotViol != nil && EvaluateMove(g, gotViol.Move, obj) != gotViol.NewCost {
					t.Fatalf("trial %d obj=%v: witness %v does not evaluate to its cost", trial, obj, gotViol)
				}
			}
		}
	}
}

func TestSessionCostAndSocialCostMatchGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 6; trial++ {
		g := randomConnected(rng, 4+rng.Intn(10), rng.Float64()*0.4)
		for _, obj := range []Objective{Sum, Max} {
			s := NewSession(g, 1)
			advance(rng, s, obj, 3)
			for v := 0; v < g.N(); v++ {
				if got, want := s.Cost(v, obj), Cost(g, v, obj); got != want {
					t.Fatalf("trial %d obj=%v v=%d: session cost %d, graph cost %d", trial, obj, v, got, want)
				}
			}
			if got, want := s.SocialCost(obj), SocialCost(g, obj); got != want {
				t.Fatalf("trial %d obj=%v: session social cost %d, graph %d", trial, obj, got, want)
			}
		}
	}
}

func TestSessionApplyUndoRestoresPricing(t *testing.T) {
	g := randomConnected(rand.New(rand.NewSource(64)), 10, 0.3)
	s := NewSession(g, 1)
	before := s.SocialCost(Sum)
	m, _, _, improves := s.BestSwap(0, Sum)
	if !improves {
		t.Skip("instance already stable at agent 0")
	}
	undo := s.Apply(m)
	if s.SocialCost(Sum) == before {
		// Possible in principle (social cost need not move), but with an
		// improving swap of agent 0 the distance sums must change somewhere.
		t.Log("social cost unchanged after improving swap")
	}
	undo()
	if got := s.SocialCost(Sum); got != before {
		t.Fatalf("undo did not restore pricing: social cost %d, want %d", got, before)
	}
	if got, want := s.SocialCost(Sum), SocialCost(g, Sum); got != want {
		t.Fatalf("undo desynced graph and session: %d vs %d", got, want)
	}
}
