package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomTreeLocal builds a random labeled tree without importing treegen
// (which would not cycle, but keep core self-contained).
func randomTreeLocal(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

func TestTheorem1WitnessOnPaths(t *testing.T) {
	for _, n := range []int{4, 5, 9, 17} {
		g := pathGraph(n)
		m, err := Theorem1Witness(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		before := SumCost(g, m.V)
		after := EvaluateMove(g, m, Sum)
		if after >= before {
			t.Errorf("n=%d: witness %v does not improve (%d→%d)", n, m, before, after)
		}
	}
}

func TestTheorem1WitnessOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g := randomTreeLocal(rng, 4+rng.Intn(30))
		diam, _ := g.Diameter()
		m, err := Theorem1Witness(g)
		if diam <= 2 {
			if !errors.Is(err, ErrNotApplicable) {
				t.Fatalf("star-like tree: err = %v, want ErrNotApplicable", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (diam %d): %v", trial, diam, err)
		}
		before := SumCost(g, m.V)
		after := EvaluateMove(g, m, Sum)
		if after >= before {
			t.Errorf("trial %d: witness %v does not improve (%d→%d)", trial, m, before, after)
		}
	}
}

func TestTheorem1WitnessRejectsNonTrees(t *testing.T) {
	if _, err := Theorem1Witness(cycleGraph(6)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("cycle: err = %v, want ErrNotApplicable", err)
	}
	if _, err := Theorem1Witness(starGraph(6)); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("star (diameter 2): err = %v, want ErrNotApplicable", err)
	}
}

func TestLemma2WitnessOnUnbalancedGraphs(t *testing.T) {
	broom := graph.New(9) // path 0..5 with leaves 6,7,8 on vertex 5
	for v := 0; v < 5; v++ {
		broom.AddEdge(v, v+1)
	}
	broom.AddEdge(5, 6)
	broom.AddEdge(5, 7)
	broom.AddEdge(5, 8)
	cases := map[string]*graph.Graph{
		"path7":  pathGraph(7),
		"path12": pathGraph(12),
		"broom":  broom,
	}

	for name, gg := range cases {
		m, err := Lemma2Witness(gg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := MaxCost(gg, m.V)
		after := EvaluateMove(gg, m, Max)
		if after >= before {
			t.Errorf("%s: witness %v does not improve ecc (%d→%d)", name, m, before, after)
		}
	}
}

func TestLemma2WitnessNotApplicableOnEquilibria(t *testing.T) {
	// Max equilibria have spread <= 1: the witness must refuse — that IS
	// Lemma 2.
	for name, g := range map[string]*graph.Graph{
		"star":       starGraph(8),
		"doubleStar": doubleStar(2, 2),
		"K5":         completeGraph(5),
		"C6":         cycleGraph(6),
	} {
		if _, err := Lemma2Witness(g); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s: err = %v, want ErrNotApplicable", name, err)
		}
	}
}

func TestLemma2WitnessRandomGraphs(t *testing.T) {
	// On arbitrary connected graphs: whenever the spread is >= 2, the
	// constructed move strictly improves the mover — the full proof
	// statement, checked over random instances.
	rng := rand.New(rand.NewSource(77))
	applicable := 0
	for trial := 0; trial < 80; trial++ {
		g := randomConnected(rng, 4+rng.Intn(20), rng.Float64()*0.15)
		m, err := Lemma2Witness(g)
		if errors.Is(err, ErrNotApplicable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		applicable++
		before := MaxCost(g, m.V)
		after := EvaluateMove(g, m, Max)
		if after >= before {
			t.Errorf("trial %d: witness %v does not improve (%d→%d)", trial, m, before, after)
		}
	}
	if applicable == 0 {
		t.Error("no applicable instances generated; test is vacuous")
	}
}

func TestLemma2WitnessDisconnected(t *testing.T) {
	if _, err := Lemma2Witness(graph.New(4)); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestBFSTreeProperties(t *testing.T) {
	g := cycleGraph(8)
	parent, dist := g.BFSTree(3)
	if parent[3] != -1 || dist[3] != 0 {
		t.Error("root parent/dist wrong")
	}
	for v := 0; v < 8; v++ {
		if v == 3 {
			continue
		}
		p := int(parent[v])
		if p < 0 || !g.HasEdge(v, p) {
			t.Fatalf("parent[%d]=%d is not a neighbor", v, p)
		}
		if dist[v] != dist[p]+1 {
			t.Errorf("dist[%d]=%d but parent dist %d", v, dist[v], dist[p])
		}
	}
	// Disconnected: unreachable vertices keep parent -1.
	h := graph.New(3)
	h.AddEdge(0, 1)
	parent, dist = h.BFSTree(0)
	if parent[2] != -1 || dist[2] != graph.Unreachable {
		t.Error("unreachable vertex has parent/dist set")
	}
}
