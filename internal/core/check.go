package core

import (
	"repro/internal/game"
	"repro/internal/graph"
)

// PriceSwaps invokes fn once for every candidate swap of agent v — every
// pair (w, w') with w a current neighbor and w' any other vertex — passing
// the agent's usage cost after performing Move{v, w, w'}. Candidates are
// enumerated add-major: w' ascending, and for each w', dropped edges w in
// ascending order. Candidates where w' == w (no-ops) are included and price
// to the current cost, which callers may use as a consistency check. fn
// returning false stops the scan early. The graph is not mutated: pricing
// runs over a frozen snapshot through the swap-pricing engine
// (internal/pricing), costing one BFS per candidate endpoint shared across
// all dropped edges instead of an all-pairs sweep per dropped edge.
func PriceSwaps(g *graph.Graph, v int, obj Objective, fn func(m Move, newCost int64) bool) {
	game.PriceSwaps(g, v, obj, fn)
}

// NaivePriceSwaps is the pre-engine pricing path, kept as the differential-
// test oracle: for every dropped edge it recomputes all-pairs shortest
// paths on G−vw and prices each candidate from the patched rows. Candidates
// are enumerated drop-major (w ascending, then w'), the historical order.
// g is mutated during the scan and restored before return; it must not be
// shared concurrently.
func NaivePriceSwaps(g *graph.Graph, v int, obj Objective, fn func(m Move, newCost int64) bool) {
	n := g.N()
	for _, w := range g.Neighbors(v) {
		g.RemoveEdge(v, w)
		ap := g.AllPairs()
		dv := ap.Row(v)
		stop := false
		for wp := 0; wp < n && !stop; wp++ {
			if wp == v {
				continue
			}
			var cost int64
			if obj == Sum {
				cost = patchedSum(dv, ap.Row(wp))
			} else {
				cost = patchedEcc(dv, ap.Row(wp))
			}
			if !fn(Move{V: v, Drop: w, Add: wp}, cost) {
				stop = true
			}
		}
		g.AddEdge(v, w)
		if stop {
			return
		}
	}
}

// BestSwap returns the cost-minimizing swap for agent v under obj, its new
// cost, and whether it strictly improves on v's current cost. Ties are
// broken toward the lexicographically smallest (Drop, Add), making the
// result deterministic. The graph is not mutated.
func BestSwap(g *graph.Graph, v int, obj Objective) (best Move, newCost int64, improves bool) {
	return game.BestSwap(g, v, obj, 1)
}

// BestSwapParallel is BestSwap with the candidate-endpoint scan sharded
// across the given number of workers (<= 0 means par.DefaultWorkers). The
// result is identical for every worker count.
func BestSwapParallel(g *graph.Graph, v int, obj Objective, workers int) (best Move, newCost int64, improves bool) {
	return game.BestSwap(g, v, obj, workers)
}

// NaiveBestSwap is BestSwap over the NaivePriceSwaps oracle.
func NaiveBestSwap(g *graph.Graph, v int, obj Objective) (best Move, newCost int64, improves bool) {
	cur := Cost(g, v, obj)
	newCost = cur
	NaivePriceSwaps(g, v, obj, func(m Move, c int64) bool {
		if c < newCost {
			newCost = c
			best = m
		}
		return true
	})
	return best, newCost, newCost < cur
}

// The historical Check* surface — CheckSum / CheckMax / CheckSwapStable
// crossed with their *Batched twins — collapsed into the single
// Check(g, CheckSpec) entry point (spec.go). The old names survive below
// as one-line deprecated wrappers with unchanged signatures, verdicts, and
// witnesses, so golden traces and examples stay bit-identical.

// unwrap adapts a Verdict to the historical (ok, violation, error) shape.
func unwrap(v Verdict, err error) (bool, *Violation, error) {
	return v.Stable, v.Violation, err
}

// CheckSum reports whether g is in sum equilibrium: no edge swap strictly
// decreases the moving agent's total distance. On failure a witness
// violation is returned. workers <= 0 selects par.DefaultWorkers.
// Returns ErrDisconnected for disconnected input.
//
// Deprecated: use Check with CheckSpec{Objective: Sum, Workers: workers}.
func CheckSum(g *graph.Graph, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{Objective: Sum, Workers: workers}))
}

// CheckMax reports whether g is in max equilibrium: no edge swap strictly
// decreases the moving agent's local diameter, and deleting any edge
// strictly increases the local diameter of the agent. On failure a witness
// violation is returned. workers <= 0 selects par.DefaultWorkers.
//
// Deprecated: use Check with CheckSpec{Objective: Max, Workers: workers}.
func CheckMax(g *graph.Graph, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{Objective: Max, Workers: workers}))
}

// CheckSwapStable reports whether no single swap strictly improves any
// agent under obj. For Sum this coincides with sum equilibrium; for Max it
// is the weaker half of max equilibrium that swap dynamics converge to
// (the deletion-criticality condition is checked separately by
// IsDeletionCritical). Agents are scanned in ascending order with each
// agent's candidate scan sharded across workers (the engine's
// deterministic first-improvement merge), so the witness is identical for
// any worker count and single-agent workloads on huge n use every worker.
//
// Deprecated: use Check with CheckSpec{Objective: obj, StableOnly: true}.
func CheckSwapStable(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{Objective: obj, StableOnly: true, Workers: workers}))
}

// CheckSwapEquilibrium is CheckSwapStable under the paper's name for the
// condition dynamics converge to: no single swap strictly improves any
// agent. Certification sweeps (dynamics.Run, Session.FindImprovement) and
// this one-shot checker must agree on every graph; the regression tests in
// internal/dynamics pin that.
//
// Deprecated: use Check with CheckSpec{Objective: obj, StableOnly: true}.
func CheckSwapEquilibrium(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	return CheckSwapStable(g, obj, workers)
}

// CheckSumBatched is CheckSum computed via the batched cross-agent sweep:
// every candidate endpoint's full-graph BFS row is computed once and
// reused across deviators as a sound lower-bound filter, with exact
// verification only for flagged candidates. Verdict and witness are
// bit-identical to CheckSum; the pass trades O(n²) transient memory for
// an O(n²) → O(n + m + #flagged) drop in BFS count.
//
// Deprecated: use Check with CheckSpec{Objective: Sum, Batched: true}.
func CheckSumBatched(g *graph.Graph, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{Objective: Sum, Batched: true, Workers: workers}))
}

// CheckMaxBatched is CheckMax via the batched cross-agent sweep; the
// deletion-criticality half still runs per agent from the scan's
// dropped-edge rows. Verdict and witness match CheckMax exactly.
//
// Deprecated: use Check with CheckSpec{Objective: Max, Batched: true}.
func CheckMaxBatched(g *graph.Graph, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{Objective: Max, Batched: true, Workers: workers}))
}

// CheckSwapStableBatched is CheckSwapStable via the batched cross-agent
// sweep (no deletion-criticality condition). Verdict and witness match
// CheckSwapStable exactly.
//
// Deprecated: use Check with CheckSpec{Objective: obj, StableOnly: true,
// Batched: true}.
func CheckSwapStableBatched(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	return unwrap(Check(g, CheckSpec{
		Objective: obj, StableOnly: true, Batched: true, Workers: workers,
	}))
}

// LocalDiameterSpread returns max_v ecc(v) − min_v ecc(v). Lemma 2 of the
// paper proves the spread is at most 1 in any max equilibrium.
func LocalDiameterSpread(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, ErrDisconnected
	}
	lo, hi := -1, -1
	for v := 0; v < g.N(); v++ {
		ecc, ok := g.Eccentricity(v)
		if !ok {
			return 0, ErrDisconnected
		}
		if lo < 0 || ecc < lo {
			lo = ecc
		}
		if ecc > hi {
			hi = ecc
		}
	}
	return hi - lo, nil
}
