package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pricing"
)

// seqEngine is the shared sequential pricing engine behind the streaming
// APIs; its scratch pool is reused across calls. Parallel paths share
// per-worker-count engines through engineFor so the pools survive across
// calls (dynamics sweeps call BestSwapParallel once per vertex per sweep).
var seqEngine = pricing.New(1)

var (
	engineMu  sync.Mutex
	engineByW = map[int]*pricing.Engine{1: seqEngine}
)

// engineFor returns the shared pricing engine for a worker count.
func engineFor(workers int) *pricing.Engine {
	engineMu.Lock()
	defer engineMu.Unlock()
	e, ok := engineByW[workers]
	if !ok {
		e = pricing.New(workers)
		engineByW[workers] = e
	}
	return e
}

// pobj maps the package's objective onto the pricing engine's.
func pobj(obj Objective) pricing.Objective {
	if obj == Max {
		return pricing.Max
	}
	return pricing.Sum
}

// PriceSwaps invokes fn once for every candidate swap of agent v — every
// pair (w, w') with w a current neighbor and w' any other vertex — passing
// the agent's usage cost after performing Move{v, w, w'}. Candidates are
// enumerated add-major: w' ascending, and for each w', dropped edges w in
// ascending order. Candidates where w' == w (no-ops) are included and price
// to the current cost, which callers may use as a consistency check. fn
// returning false stops the scan early. The graph is not mutated: pricing
// runs over a frozen snapshot through the swap-pricing engine
// (internal/pricing), costing one BFS per candidate endpoint shared across
// all dropped edges instead of an all-pairs sweep per dropped edge.
func PriceSwaps(g *graph.Graph, v int, obj Objective, fn func(m Move, newCost int64) bool) {
	scan := seqEngine.NewScan(g.Freeze(), v)
	defer scan.Close()
	drops := scan.Drops()
	scan.ForEach(pobj(obj), false, func(i, add int, cost int64) bool {
		return fn(Move{V: v, Drop: int(drops[i]), Add: add}, cost)
	})
}

// NaivePriceSwaps is the pre-engine pricing path, kept as the differential-
// test oracle: for every dropped edge it recomputes all-pairs shortest
// paths on G−vw and prices each candidate from the patched rows. Candidates
// are enumerated drop-major (w ascending, then w'), the historical order.
// g is mutated during the scan and restored before return; it must not be
// shared concurrently.
func NaivePriceSwaps(g *graph.Graph, v int, obj Objective, fn func(m Move, newCost int64) bool) {
	n := g.N()
	for _, w := range g.Neighbors(v) {
		g.RemoveEdge(v, w)
		ap := g.AllPairs()
		dv := ap.Row(v)
		stop := false
		for wp := 0; wp < n && !stop; wp++ {
			if wp == v {
				continue
			}
			var cost int64
			if obj == Sum {
				cost = patchedSum(dv, ap.Row(wp))
			} else {
				cost = patchedEcc(dv, ap.Row(wp))
			}
			if !fn(Move{V: v, Drop: w, Add: wp}, cost) {
				stop = true
			}
		}
		g.AddEdge(v, w)
		if stop {
			return
		}
	}
}

// BestSwap returns the cost-minimizing swap for agent v under obj, its new
// cost, and whether it strictly improves on v's current cost. Ties are
// broken toward the lexicographically smallest (Drop, Add), making the
// result deterministic. The graph is not mutated.
func BestSwap(g *graph.Graph, v int, obj Objective) (best Move, newCost int64, improves bool) {
	return BestSwapParallel(g, v, obj, 1)
}

// BestSwapParallel is BestSwap with the candidate-endpoint scan sharded
// across the given number of workers (<= 0 means par.DefaultWorkers). The
// result is identical for every worker count.
func BestSwapParallel(g *graph.Graph, v int, obj Objective, workers int) (best Move, newCost int64, improves bool) {
	scan := engineFor(workers).NewScan(g.Freeze(), v)
	defer scan.Close()
	cur := scan.CurrentUsage(pobj(obj))
	newCost = cur
	if b, ok := scan.BestMove(pobj(obj), false); ok && b.Cost < cur {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, b.Cost, true
	}
	return best, newCost, false
}

// NaiveBestSwap is BestSwap over the NaivePriceSwaps oracle.
func NaiveBestSwap(g *graph.Graph, v int, obj Objective) (best Move, newCost int64, improves bool) {
	cur := Cost(g, v, obj)
	newCost = cur
	NaivePriceSwaps(g, v, obj, func(m Move, c int64) bool {
		if c < newCost {
			newCost = c
			best = m
		}
		return true
	})
	return best, newCost, newCost < cur
}

// EvaluateMove prices a single move by applying it, measuring the agent's
// cost, and reverting. It is the slow-but-simple reference the patch-based
// pricing is validated against. The graph is restored before returning.
// Applying a no-op (Add == Drop) or a move whose Add edge already exists
// (a deletion) is handled per the game's semantics.
func EvaluateMove(g *graph.Graph, m Move, obj Objective) int64 {
	removedDrop := g.RemoveEdge(m.V, m.Drop)
	addedNew := g.AddEdge(m.V, m.Add)
	cost := Cost(g, m.V, obj)
	if addedNew {
		g.RemoveEdge(m.V, m.Add)
	}
	if removedDrop {
		g.AddEdge(m.V, m.Drop)
	}
	return cost
}

// ApplyMove applies m to g: removes V–Drop and inserts V–Add. It returns a
// function that undoes the move. Invalid moves (Drop not a neighbor) panic.
func ApplyMove(g *graph.Graph, m Move) (undo func()) {
	if !g.HasEdge(m.V, m.Drop) {
		panic("core: ApplyMove drop edge missing")
	}
	g.RemoveEdge(m.V, m.Drop)
	added := g.AddEdge(m.V, m.Add)
	return func() {
		if added {
			g.RemoveEdge(m.V, m.Add)
		}
		g.AddEdge(m.V, m.Drop)
	}
}

// CheckSum reports whether g is in sum equilibrium: no edge swap strictly
// decreases the moving agent's total distance. On failure a witness
// violation is returned. workers <= 0 selects par.DefaultWorkers.
// Returns ErrDisconnected for disconnected input.
func CheckSum(g *graph.Graph, workers int) (bool, *Violation, error) {
	return checkEquilibrium(g, Sum, workers)
}

// CheckMax reports whether g is in max equilibrium: no edge swap strictly
// decreases the moving agent's local diameter, and deleting any edge
// strictly increases the local diameter of the agent. On failure a witness
// violation is returned. workers <= 0 selects par.DefaultWorkers.
func CheckMax(g *graph.Graph, workers int) (bool, *Violation, error) {
	return checkEquilibrium(g, Max, workers)
}

// Check dispatches to CheckSum or CheckMax.
func Check(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	if obj == Sum {
		return CheckSum(g, workers)
	}
	return CheckMax(g, workers)
}

// CheckSwapStable reports whether no single swap strictly improves any
// agent under obj. For Sum this coincides with sum equilibrium; for Max it
// is the weaker half of max equilibrium that swap dynamics converge to
// (the deletion-criticality condition is checked separately by
// IsDeletionCritical).
func CheckSwapStable(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	if obj == Sum {
		return checkEquilibrium(g, Sum, workers)
	}
	return checkEquilibriumOpts(g, Max, workers, false)
}

// CheckSwapEquilibrium is CheckSwapStable under the paper's name for the
// condition dynamics converge to: no single swap strictly improves any
// agent. Certification sweeps (dynamics.Run, Session.CheckSwapStable) and
// this one-shot checker must agree on every graph; the regression tests in
// internal/dynamics pin that.
func CheckSwapEquilibrium(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	return CheckSwapStable(g, obj, workers)
}

func checkEquilibrium(g *graph.Graph, obj Objective, workers int) (bool, *Violation, error) {
	return checkEquilibriumOpts(g, obj, workers, true)
}

// checkEquilibriumOpts shards agents across workers over one shared frozen
// snapshot; each worker prices its agent's swaps through the engine with
// pooled scratch, so no worker clones or mutates the graph.
func checkEquilibriumOpts(g *graph.Graph, obj Objective, workers int, deletionCritical bool) (bool, *Violation, error) {
	n := g.N()
	if n <= 1 {
		return true, nil, nil
	}
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	if workers > n {
		workers = n
	}

	found := scanAgents(g.Freeze(), obj, workers, deletionCritical)
	return found == nil, found, nil
}

// scanAgents shards agents across workers over one shared snapshot —
// a one-shot Frozen or a session's live CSR — and returns the first
// violation recorded, nil when every agent is stable.
func scanAgents(view pricing.Snapshot, obj Objective, workers int, deletionCritical bool) *Violation {
	n := view.N()
	var stop atomic.Bool
	var mu sync.Mutex
	var found *Violation
	record := func(viol Violation) {
		mu.Lock()
		if found == nil {
			found = &viol
		}
		mu.Unlock()
		stop.Store(true)
	}

	var next par.Counter
	par.Workers(workers, func(int) {
		for v := next.Next(); v < n; v = next.Next() {
			if stop.Load() {
				return
			}
			checkVertex(view, v, obj, deletionCritical, &stop, record)
		}
	})
	return found
}

// checkVertex scans all moves of agent v over the snapshot, recording the
// first violation found in the engine's add-major enumeration order.
func checkVertex(f pricing.Snapshot, v int, obj Objective, deletionCritical bool, stop *atomic.Bool, record func(Violation)) {
	scan := seqEngine.NewScan(f, v)
	defer scan.Close()
	cur := scan.CurrentUsage(pobj(obj))

	if obj == Max && deletionCritical {
		// Deletion-criticality half of the max-equilibrium condition:
		// deleting vw must strictly increase v's local diameter.
		for i, w := range scan.Drops() {
			if del := scan.DeletionUsage(i, pricing.Max); del <= cur {
				record(Violation{
					Kind:    DeletionSafe,
					Edge:    graph.NewEdge(v, int(w)),
					Agent:   v,
					OldCost: cur,
					NewCost: del,
				})
				return
			}
		}
	}

	drops := scan.Drops()
	scan.ForEach(pobj(obj), false, func(i, add int, cost int64) bool {
		if stop.Load() {
			return false
		}
		if cost < cur {
			record(Violation{
				Kind:    SwapImproves,
				Move:    Move{V: v, Drop: int(drops[i]), Add: add},
				Agent:   v,
				OldCost: cur,
				NewCost: cost,
			})
			return false
		}
		return true
	})
}

// LocalDiameterSpread returns max_v ecc(v) − min_v ecc(v). Lemma 2 of the
// paper proves the spread is at most 1 in any max equilibrium.
func LocalDiameterSpread(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, ErrDisconnected
	}
	lo, hi := -1, -1
	for v := 0; v < g.N(); v++ {
		ecc, ok := g.Eccentricity(v)
		if !ok {
			return 0, ErrDisconnected
		}
		if lo < 0 || ecc < lo {
			lo = ecc
		}
		if ecc > hi {
			hi = ecc
		}
	}
	return hi - lo, nil
}
