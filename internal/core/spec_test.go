package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// specCorpus is a small graph zoo exercising stable and unstable cases.
func specCorpus() map[string]*graph.Graph {
	star := graph.New(9)
	for v := 1; v < 9; v++ {
		star.AddEdge(0, v)
	}
	rng := rand.New(rand.NewSource(7))
	return map[string]*graph.Graph{
		"path9":   pathGraph(9),
		"star9":   star,
		"rtree13": treegen.RandomTree(13, rng),
	}
}

// TestCheckSpecMatchesDeprecatedSurface pins that the unified Check
// reproduces every historical checker bit-for-bit across the spec axes —
// the compatibility contract of the API collapse.
func TestCheckSpecMatchesDeprecatedSurface(t *testing.T) {
	for name, g := range specCorpus() {
		for _, obj := range []Objective{Sum, Max} {
			for _, batched := range []bool{false, true} {
				for _, stableOnly := range []bool{false, true} {
					spec := CheckSpec{Objective: obj, StableOnly: stableOnly, Batched: batched, Workers: 2}
					v, err := Check(g.Clone(), spec)
					if err != nil {
						t.Fatalf("%s %v: %v", name, spec, err)
					}
					// The historical path: game-layer checkers invoked the
					// way the old named wrappers did.
					var (
						wantOK   bool
						wantViol *Violation
						wantErr  error
					)
					if batched {
						wantOK, wantViol, wantErr = game.CheckSwapBatched(g.Clone(), obj, 2, !stableOnly)
					} else {
						wantOK, wantViol, wantErr = game.CheckSwap(g.Clone(), obj, 2, !stableOnly)
					}
					if wantErr != nil {
						t.Fatalf("%s: reference: %v", name, wantErr)
					}
					if v.Stable != wantOK || !reflect.DeepEqual(v.Violation, wantViol) {
						t.Errorf("%s %+v: Check=(%v,%+v), game layer=(%v,%+v)",
							name, spec, v.Stable, v.Violation, wantOK, wantViol)
					}
					if v.Batched != batched {
						t.Errorf("%s: swap model Verdict.Batched=%v, requested %v", name, v.Batched, batched)
					}
				}
			}
		}
	}
}

// TestCheckSpecBatchedFallbackReporting pins Verdict.Batched for non-swap
// models: true only when the model's instance actually has a batched
// cross-agent pass.
func TestCheckSpecBatchedFallbackReporting(t *testing.T) {
	g := pathGraph(8)
	sets := make([][]int32, 8)
	for v := range sets {
		sets[v] = []int32{int32((v + 1) % 8)}
	}
	cases := []struct {
		name        string
		model       game.Model
		wantBatched bool
	}{
		{"greedy", game.Greedy{EdgeCost: 2}, true},
		{"2nb", game.TwoNeighborhood{}, false},
		{"interests", game.NewInterests(sets), true},
		{"budget", game.Budget{K: 3}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Check(g.Clone(), CheckSpec{Model: tc.model, Batched: true})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if v.Batched != tc.wantBatched {
				t.Errorf("Verdict.Batched=%v, want %v", v.Batched, tc.wantBatched)
			}
			// And identical verdicts with and without the batched request.
			plain, err := Check(g.Clone(), CheckSpec{Model: tc.model})
			if err != nil {
				t.Fatalf("plain check: %v", err)
			}
			if v.Stable != plain.Stable || !reflect.DeepEqual(v.Violation, plain.Violation) {
				t.Errorf("batched verdict (%v,%+v) != plain (%v,%+v)",
					v.Stable, v.Violation, plain.Stable, plain.Violation)
			}
		})
	}
}

// TestCheckCtxCancellation: an already-canceled context aborts the check
// with the context error for every execution path.
func TestCheckCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := pathGraph(16)
	for _, spec := range []CheckSpec{
		{},
		{Batched: true},
		{Model: game.Greedy{EdgeCost: 2}},
		{Model: game.Budget{K: 3}, Batched: true},
	} {
		if _, err := CheckCtx(ctx, g.Clone(), spec); err != context.Canceled {
			t.Errorf("spec %+v: err=%v, want context.Canceled", spec, err)
		}
	}
}
