package core

import (
	"context"

	"repro/internal/game"
	"repro/internal/graph"
)

// CheckSpec selects one equilibrium check: which deviation model, which
// usage cost, which half of the max condition, and which execution path.
// It is the single request shape the historical CheckSum / CheckMax /
// CheckSwapStable × *Batched surface collapsed into: every one of those
// names is now a one-line wrapper over Check with a fixed spec, and the
// service layer (internal/serve) and the CLI share the same struct.
//
// The zero value checks full sum equilibrium of the basic swap game on the
// per-agent path with default workers.
type CheckSpec struct {
	// Model is the deviation model; nil selects the basic swap game
	// (game.Swap). The swap model runs the paper's checkers (connectivity
	// gate, deletion-criticality side condition); every other model is
	// certified by its own stability sweep.
	Model game.Model
	// Objective is the usage cost (Sum or Max). Models that price without
	// a distance objective (TwoNeighborhood) ignore it.
	Objective Objective
	// StableOnly skips the max version's deletion-criticality side
	// condition, checking only that no single move strictly improves any
	// agent — the condition move dynamics converge to (the historical
	// CheckSwapStable). It is a no-op under Sum and for non-swap models,
	// whose stability has no side conditions.
	StableOnly bool
	// Batched routes the check through the batched cross-agent sweep when
	// the model has one: candidate-endpoint BFS rows are computed once and
	// reused across deviators as sound lower-bound filters (O(n²)
	// transient memory, far fewer BFS). Verdicts and witnesses are
	// bit-identical either way; models without a batched pass fall back to
	// the per-agent sweep, and Verdict.Batched reports which path actually
	// ran.
	Batched bool
	// Workers bounds the pricing parallelism (<= 0 means all cores).
	// Verdicts and witnesses are identical for every worker count.
	Workers int
}

// Verdict is the outcome of a Check: the stability bit and, on failure,
// the witness violation.
type Verdict struct {
	// Stable reports whether the graph passed the spec'd check.
	Stable bool
	// Violation is the witness on failure (nil when Stable).
	Violation *Violation
	// Batched reports whether the batched cross-agent pass actually ran —
	// false when it was not requested or when the model lacks one and the
	// check fell back to the per-agent sweep.
	Batched bool
}

// Check runs the equilibrium check selected by spec on g. It is the one
// entry point behind the deprecated CheckSum / CheckMax / CheckSwapStable
// × *Batched names and returns bit-identically their verdicts and
// witnesses for the corresponding specs.
func Check(g *graph.Graph, spec CheckSpec) (Verdict, error) {
	return CheckCtx(context.Background(), g, spec)
}

// CheckCtx is Check with cooperative cancellation: ctx is polled between
// per-agent scans (for batched non-swap models, between whole passes) and
// its error is returned on expiry. The service layer uses it to enforce
// per-request timeouts mid-scan.
func CheckCtx(ctx context.Context, g *graph.Graph, spec CheckSpec) (Verdict, error) {
	model := spec.Model
	if model == nil {
		model = game.Swap{}
	}
	if _, isSwap := model.(game.Swap); isSwap {
		deletionCritical := !spec.StableOnly
		var (
			ok   bool
			viol *Violation
			err  error
		)
		if spec.Batched {
			ok, viol, err = game.CheckSwapBatchedCtx(ctx, g, spec.Objective, spec.Workers, deletionCritical)
		} else {
			ok, viol, err = game.CheckSwapCtx(ctx, g, spec.Objective, spec.Workers, deletionCritical)
		}
		if err != nil {
			return Verdict{}, err
		}
		return Verdict{Stable: ok, Violation: viol, Batched: spec.Batched}, nil
	}
	inst := model.New(g, spec.Workers)
	batched := spec.Batched && game.HasBatchedSweep(inst)
	ok, viol, err := game.CheckStableCtx(ctx, inst, spec.Objective, batched)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Stable: ok, Violation: viol, Batched: batched}, nil
}
