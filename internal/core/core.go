// Package core implements the basic network creation game of Alon, Demaine,
// Hajiaghayi and Leighton, "Basic Network Creation Games" (SPAA 2010).
//
// In the basic game the players are the vertices of a connected undirected
// graph, and the only move is an edge swap: vertex v replaces one incident
// edge vw by another incident edge vw'. Swapping onto an already existing
// edge realizes a pure deletion. Two usage costs are studied:
//
//   - sum: the total distance from v to all other vertices, and
//   - max: the local diameter (eccentricity) of v.
//
// A graph is in sum (resp. max) equilibrium when no single swap strictly
// decreases the moving agent's usage cost — and, in the max version, when
// additionally deleting any edge strictly increases the local diameter of
// the agent. Unlike Nash equilibria of the α-parametrized network creation
// games, these conditions are decidable in polynomial time; this package
// provides exhaustive checkers returning witness moves, the related
// structural predicates (deletion-critical, insertion-stable,
// k-insertion-stable), and move-pricing used by the dynamics engines.
//
// The swap rule itself — move enumeration, incremental pricing over live
// snapshots, equilibrium scans — lives in internal/game as the Swap model
// of the deviation-model layer (alongside the Greedy and Interests
// variants from related work); this package re-exports the basic game's
// types from there and keeps the paper-specific predicates, structural
// checkers, and the historical Naive* oracles that the differential tests
// pin the engine against.
package core

import (
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/pricing"
)

// Objective selects which usage cost the agents minimize. It is the game
// layer's objective; Sum and Max are re-exported below.
type Objective = game.Objective

const (
	// Sum is the local-average-distance version: cost(v) = Σ_u d(v,u).
	Sum = game.Sum
	// Max is the local-diameter version: cost(v) = max_u d(v,u).
	Max = game.Max
)

// InfCost is the usage cost of a disconnected position. Any swap that
// disconnects the agent from some vertex prices to InfCost and is therefore
// never improving.
const InfCost = game.InfCost

// ErrDisconnected is returned by checkers that require connected input.
var ErrDisconnected = game.ErrDisconnected

// Move is an edge move performed by agent V. The basic game's literals
// Move{V, Drop, Add} denote a swap (the zero Kind): the edge V–Drop is
// replaced by the edge V–Add; Add == Drop encodes a no-op and Add being an
// existing neighbor of V a net deletion. Richer models (internal/game's
// Greedy) set Kind to KindAdd or KindDelete.
type Move = game.Move

// ViolationKind classifies why a graph fails an equilibrium or stability
// predicate.
type ViolationKind = game.ViolationKind

const (
	// SwapImproves: the recorded Move strictly decreases the agent's cost.
	SwapImproves = game.SwapImproves
	// DeletionSafe: deleting the recorded edge does not strictly increase
	// the endpoint's local diameter (violates the max-equilibrium and
	// deletion-critical conditions).
	DeletionSafe = game.DeletionSafe
	// InsertionHelps: inserting the recorded edge strictly decreases the
	// endpoint's local diameter (violates insertion stability).
	InsertionHelps = game.InsertionHelps
)

// Violation is a witness that a predicate fails: either an improving swap
// (SwapImproves, see Move) or an offending edge with the affected agent.
type Violation = game.Violation

// SumCost returns agent v's usage cost in the sum version: the total
// distance to all other vertices, or InfCost if some vertex is unreachable.
func SumCost(g *graph.Graph, v int) int64 { return game.Cost(g, v, Sum) }

// MaxCost returns agent v's usage cost in the max version: its local
// diameter (eccentricity), or InfCost if some vertex is unreachable.
func MaxCost(g *graph.Graph, v int) int64 { return game.Cost(g, v, Max) }

// Cost returns agent v's usage cost under the given objective.
func Cost(g *graph.Graph, v int, obj Objective) int64 { return game.Cost(g, v, obj) }

// SocialCost returns the sum over all agents of their usage cost (the
// quantity whose ratio to the optimum defines the price of anarchy), or
// InfCost when g is disconnected.
func SocialCost(g *graph.Graph, obj Objective) int64 { return game.SocialCost(g, obj) }

// EvaluateMove prices a single move by applying it, measuring the agent's
// cost, and reverting. It is the slow-but-simple reference the patch-based
// pricing is validated against. The graph is restored before returning.
// Applying a no-op (Add == Drop) or a move whose Add edge already exists
// (a deletion) is handled per the game's semantics.
func EvaluateMove(g *graph.Graph, m Move, obj Objective) int64 {
	return game.Evaluate(g, m, obj)
}

// ApplyMove applies m to g: removes V–Drop and inserts V–Add. It returns a
// function that undoes the move. Invalid moves (Drop not a neighbor) panic.
func ApplyMove(g *graph.Graph, m Move) (undo func()) { return game.ApplyToGraph(g, m) }

// patchedSum prices Σ_x min(dv[x], 1+dw[x]) where dv are distances from v
// and dw distances from the new neighbor w', both measured in G' = G − vw;
// -1 entries mean unreachable. Returns InfCost when the patched graph
// leaves some vertex unreachable from v. Delegates to the engine's patch
// arithmetic (pricing.InfCost equals InfCost); independence of the
// differential tests rests on the clone-apply-BFS oracles, not on
// duplicating this identity.
func patchedSum(dv, dw []int32) int64 {
	return pricing.Patched(dv, dw, pricing.Sum)
}

// patchedEcc prices max_x min(dv[x], 1+dw[x]) under the same conventions as
// patchedSum.
func patchedEcc(dv, dw []int32) int64 {
	return pricing.Patched(dv, dw, pricing.Max)
}

// eccOfRow returns the maximum entry of a BFS row, or InfCost when some
// vertex is unreachable.
func eccOfRow(row []int32) int64 {
	var ecc int64
	for _, d := range row {
		if d == graph.Unreachable {
			return InfCost
		}
		if int64(d) > ecc {
			ecc = int64(d)
		}
	}
	return ecc
}
