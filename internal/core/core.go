// Package core implements the basic network creation game of Alon, Demaine,
// Hajiaghayi and Leighton, "Basic Network Creation Games" (SPAA 2010).
//
// In the basic game the players are the vertices of a connected undirected
// graph, and the only move is an edge swap: vertex v replaces one incident
// edge vw by another incident edge vw'. Swapping onto an already existing
// edge realizes a pure deletion. Two usage costs are studied:
//
//   - sum: the total distance from v to all other vertices, and
//   - max: the local diameter (eccentricity) of v.
//
// A graph is in sum (resp. max) equilibrium when no single swap strictly
// decreases the moving agent's usage cost — and, in the max version, when
// additionally deleting any edge strictly increases the local diameter of
// the agent. Unlike Nash equilibria of the α-parametrized network creation
// games, these conditions are decidable in polynomial time; this package
// provides exhaustive checkers returning witness moves, the related
// structural predicates (deletion-critical, insertion-stable,
// k-insertion-stable), and move-pricing used by the dynamics engines.
//
// Swap pricing relies on the single-edge patch identity: in G' = G − vw,
// adding edge vw' yields d(v,x) = min(d_{G'}(v,x), 1 + d_{G'}(w',x)). The
// engine-backed paths (internal/pricing) sharpen the second term to the
// vertex-deleted graph G−v, which is independent of the dropped edge, so
// one BFS row per candidate endpoint prices that endpoint against every
// dropped edge at once; the historical all-pairs-per-dropped-edge path
// survives as NaivePriceSwaps/NaiveBestSwap, the differential-test oracle.
package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pricing"
)

// Objective selects which usage cost the agents minimize.
type Objective int

const (
	// Sum is the local-average-distance version: cost(v) = Σ_u d(v,u).
	Sum Objective = iota
	// Max is the local-diameter version: cost(v) = max_u d(v,u).
	Max
)

// String returns "sum" or "max".
func (o Objective) String() string {
	switch o {
	case Sum:
		return "sum"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// InfCost is the usage cost of a disconnected position. Any swap that
// disconnects the agent from some vertex prices to InfCost and is therefore
// never improving.
const InfCost = int64(1) << 60

// ErrDisconnected is returned by checkers that require connected input.
var ErrDisconnected = errors.New("core: graph must be connected")

// Move is an edge swap performed by agent V: the edge V–Drop is replaced by
// the edge V–Add. Add == Drop encodes a no-op; Add being an existing
// neighbor of V encodes a net deletion of V–Drop.
type Move struct {
	V    int // the moving agent
	Drop int // current neighbor losing its edge to V
	Add  int // new endpoint of V's edge
}

// String formats the move as "v: drop→add".
func (m Move) String() string { return fmt.Sprintf("%d: %d→%d", m.V, m.Drop, m.Add) }

// ViolationKind classifies why a graph fails an equilibrium or stability
// predicate.
type ViolationKind int

const (
	// SwapImproves: the recorded Move strictly decreases the agent's cost.
	SwapImproves ViolationKind = iota
	// DeletionSafe: deleting the recorded edge does not strictly increase
	// the endpoint's local diameter (violates the max-equilibrium and
	// deletion-critical conditions).
	DeletionSafe
	// InsertionHelps: inserting the recorded edge strictly decreases the
	// endpoint's local diameter (violates insertion stability).
	InsertionHelps
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case SwapImproves:
		return "swap-improves"
	case DeletionSafe:
		return "deletion-safe"
	case InsertionHelps:
		return "insertion-helps"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is a witness that a predicate fails: either an improving swap
// (SwapImproves, see Move) or an offending edge with the affected agent.
type Violation struct {
	Kind    ViolationKind
	Move    Move       // valid when Kind == SwapImproves
	Edge    graph.Edge // valid for DeletionSafe / InsertionHelps
	Agent   int        // the agent whose cost witnesses the violation
	OldCost int64      // agent's cost before the change
	NewCost int64      // agent's cost after the change
}

// String renders the witness with costs.
func (v *Violation) String() string {
	switch v.Kind {
	case SwapImproves:
		return fmt.Sprintf("swap %v improves cost %d→%d", v.Move, v.OldCost, v.NewCost)
	case DeletionSafe:
		return fmt.Sprintf("deleting %v leaves agent %d cost %d→%d (no increase)",
			v.Edge, v.Agent, v.OldCost, v.NewCost)
	case InsertionHelps:
		return fmt.Sprintf("inserting %v improves agent %d cost %d→%d",
			v.Edge, v.Agent, v.OldCost, v.NewCost)
	default:
		return "unknown violation"
	}
}

// SumCost returns agent v's usage cost in the sum version: the total
// distance to all other vertices, or InfCost if some vertex is unreachable.
func SumCost(g *graph.Graph, v int) int64 {
	sum, reached := g.SumOfDistances(v)
	if reached != g.N() {
		return InfCost
	}
	return sum
}

// MaxCost returns agent v's usage cost in the max version: its local
// diameter (eccentricity), or InfCost if some vertex is unreachable.
func MaxCost(g *graph.Graph, v int) int64 {
	ecc, ok := g.Eccentricity(v)
	if !ok {
		return InfCost
	}
	return int64(ecc)
}

// Cost returns agent v's usage cost under the given objective.
func Cost(g *graph.Graph, v int, obj Objective) int64 {
	if obj == Sum {
		return SumCost(g, v)
	}
	return MaxCost(g, v)
}

// SocialCost returns the sum over all agents of their usage cost (the
// quantity whose ratio to the optimum defines the price of anarchy), or
// InfCost when g is disconnected.
func SocialCost(g *graph.Graph, obj Objective) int64 {
	var total int64
	for v := 0; v < g.N(); v++ {
		c := Cost(g, v, obj)
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

// patchedSum prices Σ_x min(dv[x], 1+dw[x]) where dv are distances from v
// and dw distances from the new neighbor w', both measured in G' = G − vw;
// -1 entries mean unreachable. Returns InfCost when the patched graph
// leaves some vertex unreachable from v. Delegates to the engine's patch
// arithmetic (pricing.InfCost equals InfCost); independence of the
// differential tests rests on the clone-apply-BFS oracles, not on
// duplicating this identity.
func patchedSum(dv, dw []int32) int64 {
	return pricing.Patched(dv, dw, pricing.Sum)
}

// patchedEcc prices max_x min(dv[x], 1+dw[x]) under the same conventions as
// patchedSum.
func patchedEcc(dv, dw []int32) int64 {
	return pricing.Patched(dv, dw, pricing.Max)
}

// eccOfRow returns the maximum entry of a BFS row, or InfCost when some
// vertex is unreachable.
func eccOfRow(row []int32) int64 {
	var ecc int64
	for _, d := range row {
		if d == graph.Unreachable {
			return InfCost
		}
		if int64(d) > ecc {
			ecc = int64(d)
		}
	}
	return ecc
}
