package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// These tests pin down cross-predicate invariants of the model on random
// instances — the implications the paper's definitions promise.

func randomConnectedQuick(rng *rand.Rand) *graph.Graph {
	n := 3 + rng.Intn(10)
	return randomConnected(rng, n, rng.Float64()*0.4)
}

func TestQuickBestSwapIsOptimal(t *testing.T) {
	// BestSwap must equal the exhaustive minimum over EvaluateMove.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		for _, obj := range []Objective{Sum, Max} {
			for v := 0; v < g.N(); v++ {
				_, got, _ := BestSwap(g, v, obj)
				best := Cost(g, v, obj)
				for _, w := range g.Neighbors(v) {
					for wp := 0; wp < g.N(); wp++ {
						if wp == v {
							continue
						}
						if c := EvaluateMove(g, Move{V: v, Drop: w, Add: wp}, obj); c < best {
							best = c
						}
					}
				}
				if got != best {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxEquilibriumImpliesSwapStable(t *testing.T) {
	// CheckMax is strictly stronger than CheckSwapStable(Max).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		eq, _, err := CheckMax(g, 1)
		if err != nil {
			return false
		}
		stable, _, err := CheckSwapStable(g, Max, 1)
		if err != nil {
			return false
		}
		return !eq || stable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertionPlusDeletionImpliesMaxEq(t *testing.T) {
	// Paper §1: insertion-stable ∧ deletion-critical ⇒ max equilibrium.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		ins, _, err1 := IsInsertionStable(g, 1)
		del, _, err2 := IsDeletionCritical(g, 1)
		eq, _, err3 := CheckMax(g, 1)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return !(ins && del) || eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickEquilibriumImpliesLemma2(t *testing.T) {
	// Max equilibria have eccentricity spread <= 1 (Lemma 2), on random
	// instances that happen to be equilibria — plus the contrapositive:
	// spread >= 2 implies CheckMax fails.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		eq, _, err := CheckMax(g, 1)
		if err != nil {
			return false
		}
		spread, err := LocalDiameterSpread(g)
		if err != nil {
			return false
		}
		return !eq || spread <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSumEquilibriumNoImprovingAddForFree(t *testing.T) {
	// In a sum equilibrium, a swap is never improving — but a pure ADD can
	// be (that's the α-game's buy move). Sanity: the checker must not
	// conflate them: C5 is a sum equilibrium although adding a chord
	// improves the adder.
	g := cycleGraph(5)
	ok, _, err := CheckSum(g, 1)
	if err != nil || !ok {
		t.Fatal("C5 must be a sum equilibrium")
	}
	base := SumCost(g, 0)
	g.AddEdge(0, 2)
	after := SumCost(g, 0)
	if after >= base {
		t.Error("adding a chord to C5 should improve the adder")
	}
}

func TestQuickCheckersRestoreGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		ref := g.Clone()
		CheckSum(g, 2)
		CheckMax(g, 2)
		IsInsertionStable(g, 2)
		IsDeletionCritical(g, 2)
		IsKInsertionStable(g, 2, 2)
		Lemma10CheckAll(g, 2)
		return g.Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickViolationWitnessesVerify(t *testing.T) {
	// Every violation reported by any checker must be independently
	// verifiable with the slow evaluator.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedQuick(rng)
		for _, obj := range []Objective{Sum, Max} {
			v, err := Check(g, CheckSpec{Objective: obj, Workers: 1})
			if err != nil {
				return false
			}
			ok, viol := v.Stable, v.Violation
			if ok || viol == nil {
				continue
			}
			switch viol.Kind {
			case SwapImproves:
				if EvaluateMove(g, viol.Move, obj) >= Cost(g, viol.Move.V, obj) {
					return false
				}
			case DeletionSafe:
				before := MaxCost(g, viol.Agent)
				g.RemoveEdge(viol.Edge.U, viol.Edge.V)
				after := MaxCost(g, viol.Agent)
				g.AddEdge(viol.Edge.U, viol.Edge.V)
				if after > before {
					return false // deletion did increase: witness wrong
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
