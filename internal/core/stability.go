package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// IsDeletionCritical reports whether deleting any edge strictly increases
// the local diameter of *both* endpoints (the paper's deletion-critical
// property, used in the Section 4 lower-bound constructions). Disconnection
// counts as an increase. Returns a witness violation on failure. Edges are
// sharded across workers over one frozen snapshot; each probe is a
// skip-edge BFS, so no worker clones or mutates the graph.
func IsDeletionCritical(g *graph.Graph, workers int) (bool, *Violation, error) {
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	edges := g.Edges()
	f := g.Freeze()
	ecc := eccentricities(f, workers)

	var stop atomic.Bool
	var mu sync.Mutex
	var found *Violation
	var next par.Counter
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	par.Workers(workers, func(int) {
		dist := make([]int32, f.N())
		queue := make([]int32, 0, f.N())
		for i := next.Next(); i < len(edges); i = next.Next() {
			if stop.Load() {
				return
			}
			e := edges[i]
			for _, endpoint := range [2]int{e.U, e.V} {
				f.BFSSkipEdge(endpoint, e.U, e.V, dist, queue)
				after := eccOfRow(dist)
				if after <= int64(ecc[endpoint]) {
					mu.Lock()
					if found == nil {
						found = &Violation{
							Kind:    DeletionSafe,
							Edge:    e,
							Agent:   endpoint,
							OldCost: int64(ecc[endpoint]),
							NewCost: after,
						}
					}
					mu.Unlock()
					stop.Store(true)
					break
				}
			}
		}
	})
	return found == nil, found, nil
}

// IsInsertionStable reports whether inserting any single absent edge leaves
// the local diameter of both endpoints unchanged or larger (it can never
// grow, so "stable" means no strict decrease for either endpoint). Returns
// a witness violation on failure.
func IsInsertionStable(g *graph.Graph, workers int) (bool, *Violation, error) {
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	n := g.N()
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	ap := g.AllPairsParallel(workers)

	var stop atomic.Bool
	var mu sync.Mutex
	var found *Violation
	var next par.Counter
	par.Workers(workers, func(int) {
		for u := next.Next(); u < n; u = next.Next() {
			if stop.Load() {
				return
			}
			du := ap.Row(u)
			eccU := eccOfRow(du)
			for v := u + 1; v < n; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				dv := ap.Row(v)
				// After inserting uv, ecc(u) becomes max_x min(du[x], 1+dv[x])
				// and symmetrically for v.
				if after := patchedEcc(du, dv); after < eccU {
					record(&mu, &stop, &found, Violation{
						Kind: InsertionHelps, Edge: graph.NewEdge(u, v),
						Agent: u, OldCost: eccU, NewCost: after,
					})
					return
				}
				if after := patchedEcc(dv, du); after < eccOfRow(dv) {
					record(&mu, &stop, &found, Violation{
						Kind: InsertionHelps, Edge: graph.NewEdge(u, v),
						Agent: v, OldCost: eccOfRow(dv), NewCost: after,
					})
					return
				}
			}
		}
	})
	return found == nil, found, nil
}

func record(mu *sync.Mutex, stop *atomic.Bool, found **Violation, v Violation) {
	mu.Lock()
	if *found == nil {
		c := v
		*found = &c
	}
	mu.Unlock()
	stop.Store(true)
}

// eccentricities computes every vertex's local diameter in parallel over a
// frozen snapshot. Unreachable pairs yield InfCost-capped values; callers
// checking connectivity first will only see finite entries.
func eccentricities(f *graph.Frozen, workers int) []int64 {
	n := f.N()
	out := make([]int64, n)
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	var next par.Counter
	par.Workers(workers, func(int) {
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for v := next.Next(); v < n; v = next.Next() {
			f.BFSInto(v, dist, queue)
			out[v] = eccOfRow(dist)
		}
	})
	return out
}

// KInsertionResult reports a k-insertion-stability counterexample: agent V
// strictly lowered its local diameter by inserting the edges V–Adds[i].
type KInsertionResult struct {
	V       int
	Adds    []int
	OldCost int64
	NewCost int64
}

// IsKInsertionStable reports whether no agent can strictly decrease its
// local diameter by inserting up to k incident edges simultaneously (the
// Section 4 generalization trading diameter against agent power). The scan
// enumerates all C(candidates, k) subsets per vertex and is exponential in
// k; it is intended for the small k (k ≤ d−1) of the paper's constructions.
func IsKInsertionStable(g *graph.Graph, k, workers int) (bool, *KInsertionResult, error) {
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	if k < 1 {
		return true, nil, nil
	}
	n := g.N()
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	ap := g.AllPairsParallel(workers)

	var stop atomic.Bool
	var mu sync.Mutex
	var found *KInsertionResult
	var next par.Counter
	par.Workers(workers, func(int) {
		patched := make([]int32, n)
		for v := next.Next(); v < n; v = next.Next() {
			if stop.Load() {
				return
			}
			dv := ap.Row(v)
			eccV := eccOfRow(dv)
			cands := g.NonNeighbors(v)
			if len(cands) == 0 {
				continue
			}
			kk := k
			if kk > len(cands) {
				kk = len(cands)
			}
			// Enumerate subsets of size exactly 1..kk. A subset of size
			// j < kk that helps is found when enumerating size j.
			for size := 1; size <= kk && !stop.Load(); size++ {
				subset := make([]int, size)
				if res := enumSubsets(cands, subset, 0, 0, func(sel []int) *KInsertionResult {
					copy(patched, dv)
					for _, a := range sel {
						da := ap.Row(a)
						for x := 0; x < n; x++ {
							if alt := da[x] + 1; alt < patched[x] {
								patched[x] = alt
							}
						}
					}
					after := eccOfRow(patched)
					if after < eccV {
						adds := append([]int(nil), sel...)
						return &KInsertionResult{V: v, Adds: adds, OldCost: eccV, NewCost: after}
					}
					return nil
				}); res != nil {
					mu.Lock()
					if found == nil {
						found = res
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}
	})
	return found == nil, found, nil
}

// enumSubsets enumerates size-len(subset) subsets of cands starting at
// index from, invoking fn for each completed subset; the first non-nil
// result aborts the enumeration.
func enumSubsets(cands, subset []int, from, depth int, fn func([]int) *KInsertionResult) *KInsertionResult {
	if depth == len(subset) {
		return fn(subset)
	}
	for i := from; i <= len(cands)-(len(subset)-depth); i++ {
		subset[depth] = cands[i]
		if res := enumSubsets(cands, subset, i+1, depth+1, fn); res != nil {
			return res
		}
	}
	return nil
}

// SampleInsertionStable draws trials random vertex pairs from a distance
// oracle and checks the insertion-stability inequality on each, scanning
// all n vertices per pair. It supports closed-form metrics (e.g. the
// Theorem 12 torus) at sizes where an explicit APSP is infeasible.
// It returns the first violating pair, if any.
func SampleInsertionStable(m graph.Metric, trials int, rng *rand.Rand) (bool, *graph.Edge) {
	n := m.N()
	if n < 2 {
		return true, nil
	}
	for t := 0; t < trials; t++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		// ecc(u) before and after inserting uv.
		var before, after int64
		for x := 0; x < n; x++ {
			du := int64(m.Dist(u, x))
			dv := int64(m.Dist(v, x))
			if du > before {
				before = du
			}
			d := du
			if alt := dv + 1; alt < d {
				d = alt
			}
			if d > after {
				after = d
			}
		}
		if after < before {
			e := graph.NewEdge(u, v)
			return false, &e
		}
	}
	return true, nil
}

// SampleDeletionCritical removes `trials` random edges (with replacement)
// and verifies both endpoints' local diameters strictly increase,
// restoring the graph after each probe.
func SampleDeletionCritical(g *graph.Graph, trials int, rng *rand.Rand) (bool, *graph.Edge) {
	edges := g.Edges()
	if len(edges) == 0 {
		return true, nil
	}
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	for t := 0; t < trials; t++ {
		e := edges[rng.Intn(len(edges))]
		g.BFSInto(e.U, dist, queue)
		eccU := eccOfRow(dist)
		g.BFSInto(e.V, dist, queue)
		eccV := eccOfRow(dist)
		g.RemoveEdge(e.U, e.V)
		g.BFSInto(e.U, dist, queue)
		afterU := eccOfRow(dist)
		g.BFSInto(e.V, dist, queue)
		afterV := eccOfRow(dist)
		g.AddEdge(e.U, e.V)
		if afterU <= eccU || afterV <= eccV {
			ee := e
			return false, &ee
		}
	}
	return true, nil
}
