package cayley

import (
	"math"
	"testing"

	"repro/internal/constructions"
	"repro/internal/uniformity"
)

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := NewGroup(3, 0); err == nil {
		t.Error("zero modulus accepted")
	}
	g, err := NewGroup(3, 4, 5)
	if err != nil || g.Order() != 60 {
		t.Errorf("Order = %d err=%v, want 60", g.Order(), err)
	}
}

func TestIndexElemRoundTrip(t *testing.T) {
	g, _ := NewGroup(3, 5, 2)
	for idx := 0; idx < g.Order(); idx++ {
		if got := g.Index(g.Elem(idx, nil)); got != idx {
			t.Fatalf("Index(Elem(%d)) = %d", idx, got)
		}
	}
	// Reduction of out-of-range components.
	if g.Index([]int{-1, 7, 3}) != g.Index([]int{2, 2, 1}) {
		t.Error("Index does not reduce components")
	}
}

func TestGroupOps(t *testing.T) {
	g, _ := NewGroup(5)
	sum := g.Add([]int{3}, []int{4})
	if sum[0] != 2 {
		t.Errorf("3+4 mod 5 = %d, want 2", sum[0])
	}
	neg := g.Neg([]int{2})
	if neg[0] != 3 {
		t.Errorf("-2 mod 5 = %d, want 3", neg[0])
	}
	if g.Neg([]int{0})[0] != 0 {
		t.Error("-0 != 0")
	}
}

func TestCayleyGraphCycle(t *testing.T) {
	// Z_n with S={±1} is the cycle C_n.
	g, _ := NewGroup(7)
	cg, err := g.CayleyGraph([][]int{{1}, {6}})
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Equal(constructions.Cycle(7)) {
		// Edge sets may be labeled differently... C7 is 0-1-...-6-0 and the
		// Cayley graph of Z7 with ±1 is exactly that labeling.
		t.Error("Cayley(Z7, ±1) != C7")
	}
}

func TestCayleyGraphHypercube(t *testing.T) {
	// Z_2^d with unit generators is Q_d (generators are self-inverse).
	g, _ := NewGroup(2, 2, 2)
	cg, err := g.CayleyGraph([][]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if cg.N() != 8 || cg.M() != 12 {
		t.Fatalf("Cayley(Z2^3) n=%d m=%d", cg.N(), cg.M())
	}
	if diam, ok := cg.Diameter(); !ok || diam != 3 {
		t.Errorf("diameter = %d,%v, want 3", diam, ok)
	}
}

func TestCayleyGraphRejectsBadGens(t *testing.T) {
	g, _ := NewGroup(6)
	if _, err := g.CayleyGraph([][]int{{0}}); err == nil {
		t.Error("identity generator accepted")
	}
	if _, err := g.CayleyGraph([][]int{{1}}); err == nil {
		t.Error("asymmetric set accepted (missing -1)")
	}
	if _, err := g.CayleyGraph([][]int{{1, 2}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := g.CayleyGraph(nil); err == nil {
		t.Error("empty generating set accepted")
	}
	// Self-inverse generator (3 in Z6) is fine alone.
	if _, err := g.CayleyGraph([][]int{{3}}); err != nil {
		t.Errorf("self-inverse generator rejected: %v", err)
	}
}

func TestSymmetricClosure(t *testing.T) {
	g, _ := NewGroup(9)
	gens := g.SymmetricClosure([][]int{{2}})
	if len(gens) != 2 {
		t.Fatalf("closure size %d, want 2", len(gens))
	}
	if _, err := g.CayleyGraph(gens); err != nil {
		t.Errorf("closure not accepted: %v", err)
	}
	// Self-inverse and identity handling.
	g2, _ := NewGroup(2)
	gens2 := g2.SymmetricClosure([][]int{{1}, {0}})
	if len(gens2) != 1 {
		t.Errorf("Z2 closure = %v, want single element", gens2)
	}
}

func TestTorusIsCayleyGraphComponent(t *testing.T) {
	// The paper: the Theorem 12 torus is the Cayley graph of the even-sum
	// subgroup of Z_{2k}² with generators (±1, ±1). The full Cayley graph
	// on Z_{2k}² splits into the even and odd components; each has the
	// torus's distance profile.
	k := 3
	zg, _ := NewGroup(2*k, 2*k)
	gens := zg.SymmetricClosure([][]int{{1, 1}, {1, 2*k - 1}})
	cg, err := zg.CayleyGraph(gens)
	if err != nil {
		t.Fatal(err)
	}
	comps := cg.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("Cayley(Z6²,diag) has %d components, want 2", len(comps))
	}
	if len(comps[0]) != 2*k*k {
		t.Fatalf("component size %d, want %d", len(comps[0]), 2*k*k)
	}
	// Compare distance histograms with the torus construction.
	tor := constructions.NewTorus(k).Graph()
	torHist := tor.AllPairs().Histogram(0)
	// BFS from component vertex 0 within cg.
	dist := cg.BFS(comps[0][0])
	hist := make([]int, len(torHist))
	for _, d := range dist {
		if d >= 0 && int(d) < len(hist) {
			hist[d]++
		} else if int(d) >= len(hist) {
			t.Fatalf("component distance %d exceeds torus diameter %d", d, len(torHist)-1)
		}
	}
	for i := range torHist {
		if hist[i] != torHist[i] {
			t.Fatalf("distance histograms differ at %d: %v vs %v", i, hist, torHist)
		}
	}
}

func TestSumsetSizesCycle(t *testing.T) {
	// Z_9 with ±1: |iS| = 1+2i until wrapping covers everything.
	g, _ := NewGroup(9)
	sizes, err := g.SumsetSizes(g.SymmetricClosure([][]int{{1}}), 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7}
	// iS for Z9 ±1: sums of exactly i steps: i=1: {±1} = 2 elements;
	// i=2: {-2,0,2} = 3; i=3: {-3,-1,1,3} = 4...
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestSumsetSizesHypercube(t *testing.T) {
	// Z_2^4 with unit gens: iS = vectors of weight ≡ i (mod 2) and weight
	// <= i: |1S|=4, |2S|= C(4,0)+C(4,2)=7, |3S|=C(4,1)+C(4,3)=8,
	// |4S|=1+6+1=8... compute: weight<=4 even: 1+6+1=8.
	g, _ := NewGroup(2, 2, 2, 2)
	gens := [][]int{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
	sizes, err := g.SumsetSizes(gens, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 7, 8, 8}
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestPlunneckeHoldsOnExamples(t *testing.T) {
	groups := []struct {
		mods []int
		gens [][]int
	}{
		{[]int{17}, [][]int{{1}, {16}}},
		{[]int{12}, [][]int{{1}, {11}, {3}, {9}}},
		{[]int{2, 2, 2, 2, 2}, [][]int{{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 0, 0}, {0, 0, 0, 1, 0}, {0, 0, 0, 0, 1}}},
		{[]int{6, 6}, [][]int{{1, 1}, {5, 5}, {1, 5}, {5, 1}}},
	}
	for _, c := range groups {
		g, err := NewGroup(c.mods...)
		if err != nil {
			t.Fatal(err)
		}
		sizes, err := g.SumsetSizes(c.gens, 8)
		if err != nil {
			t.Fatal(err)
		}
		if v := PlunneckeViolations(sizes); len(v) != 0 {
			t.Errorf("mods=%v: Plünnecke violations %v on sizes %v", c.mods, v, sizes)
		}
	}
}

func TestPlunneckeDetectsFabricatedViolation(t *testing.T) {
	// |2S| > |1S|² is impossible; fabricate it to prove the checker works.
	if v := PlunneckeViolations([]int{1, 2, 5}); len(v) == 0 {
		t.Error("fabricated violation not detected")
	}
}

func TestTheorem15BoundOnHypercube(t *testing.T) {
	// Q_d is ε-distance-uniform with ε = 1 − C(d,d/2)/2^d (around 0.73 for
	// d=8 — too coarse), but the *bound* must at least hold whenever
	// ε < 1/4. Use K_n (Cayley graph of Z_n with all non-identity
	// generators): ε = 1/n, diameter 1.
	n := 32
	g, _ := NewGroup(n)
	var gens [][]int
	for s := 1; s < n; s++ {
		gens = append(gens, []int{s})
	}
	cg, err := g.CayleyGraph(gens)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := uniformity.Analyze(cg.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Epsilon >= 0.25 {
		t.Fatalf("K32 ε = %v, want < 1/4", prof.Epsilon)
	}
	diam, _ := cg.Diameter()
	bound := Theorem15Bound(cg.N(), prof.Epsilon)
	if float64(diam) > bound {
		t.Errorf("diameter %d exceeds Theorem 15 bound %v", diam, bound)
	}
}

func TestTheorem15BoundEdgeCases(t *testing.T) {
	if !math.IsInf(Theorem15Bound(100, 0.6), 1) {
		t.Error("ε >= 1/2 should give +Inf")
	}
	if Theorem15Bound(1, 0.1) != 0 {
		t.Error("n<2 should give 0")
	}
	if b := Theorem15Bound(100, 0); math.IsInf(b, 1) || b <= 0 {
		t.Errorf("ε=0 bound = %v, want finite positive", b)
	}
}

func TestIndexArityPanics(t *testing.T) {
	g, _ := NewGroup(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	g.Index([]int{1})
}
