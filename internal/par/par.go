// Package par provides small, dependency-free parallel iteration helpers
// used by the graph algorithms, equilibrium checkers, and experiment sweeps.
//
// The helpers use dynamic chunked scheduling: workers repeatedly claim the
// next chunk of indices with an atomic counter, so uneven per-item cost
// (common when pricing edge swaps on irregular graphs) still balances well.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0.
// It defaults to GOMAXPROCS at package initialization.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// clampWorkers normalizes a requested worker count against the item count.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunkFor picks a chunk size that amortizes the atomic claim while keeping
// enough chunks for load balancing (targeting ~8 chunks per worker).
func chunkFor(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// For runs fn(i) for every i in [0, n), distributing indices over workers.
// It blocks until all invocations complete. fn must be safe for concurrent
// invocation on distinct indices.
func For(workers, n int, fn func(i int)) {
	ForChunked(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked runs fn(lo, hi) over disjoint half-open chunks covering [0, n).
// Each worker claims chunks dynamically. fn must be safe for concurrent
// invocation on disjoint ranges.
func ForChunked(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := chunkFor(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Workers runs fn(worker) once for each worker id in [0, workers).
// Useful when each worker owns reusable scratch buffers and pulls work
// itself via Counter.
func Workers(workers int, fn func(worker int)) {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(w)
	}
	wg.Wait()
}

// Counter is a dynamic work counter for worker-owned-scratch loops:
//
//	var c par.Counter
//	par.Workers(k, func(int) {
//	    for i := c.Next(); i < n; i = c.Next() { ... }
//	})
type Counter struct {
	v atomic.Int64
}

// Next claims and returns the next index, starting from 0.
func (c *Counter) Next() int {
	return int(c.v.Add(1)) - 1
}

// Reset resets the counter to zero. Not safe concurrently with Next.
func (c *Counter) Reset() {
	c.v.Store(0)
}
