package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 97, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedDisjointCover(t *testing.T) {
	const n = 1234
	hits := make([]int32, n)
	ForChunked(7, n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForChunkedZero(t *testing.T) {
	called := false
	ForChunked(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("ForChunked called fn for n=0")
	}
}

func TestWorkersRunsEach(t *testing.T) {
	var count atomic.Int64
	seen := make([]int32, 5)
	Workers(5, func(id int) {
		count.Add(1)
		atomic.AddInt32(&seen[id], 1)
	})
	if count.Load() != 5 {
		t.Errorf("Workers ran %d times, want 5", count.Load())
	}
	for id, s := range seen {
		if s != 1 {
			t.Errorf("worker id %d ran %d times", id, s)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	var count atomic.Int64
	Workers(0, func(int) { count.Add(1) })
	if int(count.Load()) != DefaultWorkers {
		t.Errorf("Workers(0) ran %d, want DefaultWorkers=%d", count.Load(), DefaultWorkers)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	const n = 10000
	claimed := make([]int32, n)
	Workers(8, func(int) {
		for i := c.Next(); i < n; i = c.Next() {
			atomic.AddInt32(&claimed[i], 1)
		}
	})
	for i, h := range claimed {
		if h != 1 {
			t.Fatalf("index %d claimed %d times", i, h)
		}
	}
	c.Reset()
	if c.Next() != 0 {
		t.Error("Reset did not restart counter")
	}
}

func TestClampWorkers(t *testing.T) {
	if got := clampWorkers(-1, 10); got != min(DefaultWorkers, 10) {
		t.Errorf("clampWorkers(-1,10) = %d", got)
	}
	if got := clampWorkers(5, 3); got != 3 {
		t.Errorf("clampWorkers(5,3) = %d, want 3", got)
	}
	if got := clampWorkers(2, 100); got != 2 {
		t.Errorf("clampWorkers(2,100) = %d, want 2", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
