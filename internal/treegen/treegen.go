// Package treegen provides labeled-tree machinery for the tree theorems of
// Section 2: Prüfer-sequence encoding and decoding, exhaustive enumeration
// of all n^(n-2) labeled trees on n vertices, and uniform random tree
// sampling. The exhaustive enumerator powers the experiments that verify
// Theorem 1 (the only sum-equilibrium tree is the star) and Theorem 4
// (max-equilibrium trees have diameter at most 3) over the entire tree
// space for small n.
package treegen

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// MaxEnumN caps AllTrees: n^(n-2) grows too fast beyond this.
const MaxEnumN = 10

// ErrNotTree is returned by PruferEncode for non-tree input.
var ErrNotTree = errors.New("treegen: input graph is not a tree")

// PruferDecode builds the labeled tree on n = len(seq)+2 vertices encoded
// by the Prüfer sequence. Sequence entries must lie in [0, n).
func PruferDecode(seq []int) (*graph.Graph, error) {
	n := len(seq) + 2
	for _, s := range seq {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("treegen: sequence entry %d out of range [0,%d)", s, n)
		}
	}
	g := graph.New(n)
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, s := range seq {
		degree[s]++
	}
	used := make([]bool, n)
	for _, s := range seq {
		leaf := -1
		for v := 0; v < n; v++ {
			if degree[v] == 1 && !used[v] {
				leaf = v
				break
			}
		}
		g.AddEdge(leaf, s)
		used[leaf] = true
		degree[s]--
	}
	// Join the two remaining degree-1 vertices.
	u := -1
	for v := 0; v < n; v++ {
		if !used[v] && degree[v] == 1 {
			if u < 0 {
				u = v
			} else {
				g.AddEdge(u, v)
				break
			}
		}
	}
	return g, nil
}

// PruferEncode returns the Prüfer sequence of a labeled tree (length n−2).
// It returns ErrNotTree if t is not a tree. Trees on fewer than 2 vertices
// are rejected; the tree on 2 vertices encodes to the empty sequence.
func PruferEncode(t *graph.Graph) ([]int, error) {
	n := t.N()
	if n < 2 || !t.IsTree() {
		return nil, ErrNotTree
	}
	work := t.Clone()
	seq := make([]int, 0, n-2)
	for work.M() > 1 {
		// Smallest remaining leaf.
		leaf := -1
		for v := 0; v < n; v++ {
			if work.Degree(v) == 1 {
				leaf = v
				break
			}
		}
		nb := work.Neighbors(leaf)[0]
		seq = append(seq, nb)
		work.RemoveEdge(leaf, nb)
	}
	return seq, nil
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (uniform over all n^(n-2) trees, via a uniform Prüfer sequence).
// n must be >= 1.
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	switch {
	case n < 1:
		panic(fmt.Sprintf("treegen: RandomTree n=%d", n))
	case n == 1:
		return graph.New(1)
	case n == 2:
		g := graph.New(2)
		g.AddEdge(0, 1)
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	g, err := PruferDecode(seq)
	if err != nil {
		panic(err) // unreachable: entries are in range by construction
	}
	return g
}

// Count returns the number of labeled trees on n vertices, n^(n-2)
// (Cayley's formula), for 1 <= n <= MaxEnumN.
func Count(n int) uint64 {
	if n < 1 || n > MaxEnumN {
		panic(fmt.Sprintf("treegen: Count n=%d out of range", n))
	}
	if n <= 2 {
		return 1
	}
	c := uint64(1)
	for i := 0; i < n-2; i++ {
		c *= uint64(n)
	}
	return c
}

// AllTrees enumerates every labeled tree on n vertices (all n^(n-2) Prüfer
// sequences in lexicographic order), invoking fn for each. fn returning
// false stops the enumeration early. AllTrees returns the number of trees
// visited. It panics for n > MaxEnumN.
func AllTrees(n int, fn func(t *graph.Graph) bool) uint64 {
	if n < 1 || n > MaxEnumN {
		panic(fmt.Sprintf("treegen: AllTrees n=%d out of range [1,%d]", n, MaxEnumN))
	}
	if n <= 2 {
		g, _ := PruferDecode(make([]int, 0))
		if n == 1 {
			g = graph.New(1)
		}
		fn(g)
		return 1
	}
	seq := make([]int, n-2)
	var visited uint64
	for {
		g, _ := PruferDecode(seq)
		visited++
		if !fn(g) {
			return visited
		}
		// Next sequence in base-n counting order.
		i := len(seq) - 1
		for ; i >= 0; i-- {
			seq[i]++
			if seq[i] < n {
				break
			}
			seq[i] = 0
		}
		if i < 0 {
			return visited
		}
	}
}

// DoubleSweepDiameter returns the exact diameter of a tree via two BFS
// passes (and a lower bound on the diameter of a general connected graph).
// ok is false for disconnected input.
func DoubleSweepDiameter(g *graph.Graph) (int, bool) {
	if g.N() == 0 {
		return 0, false
	}
	d0 := g.BFS(0)
	far, best := 0, int32(0)
	for v, d := range d0 {
		if d == graph.Unreachable {
			return 0, false
		}
		if d > best {
			best, far = d, v
		}
	}
	d1 := g.BFS(far)
	diam := int32(0)
	for _, d := range d1 {
		if d > diam {
			diam = d
		}
	}
	return int(diam), true
}
