package treegen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPruferDecodeKnown(t *testing.T) {
	// Sequence [3,3,3,3] on n=6 decodes to the star centered at 3.
	g, err := PruferDecode([]int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() || g.Degree(3) != 5 {
		t.Errorf("star decode wrong: deg(3)=%d tree=%v", g.Degree(3), g.IsTree())
	}
	// Empty sequence: single edge on 2 vertices.
	g, err = PruferDecode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("empty sequence decode: %v", g)
	}
}

func TestPruferDecodeRange(t *testing.T) {
	if _, err := PruferDecode([]int{5}); err == nil {
		t.Error("out-of-range entry accepted (5 on n=3)")
	}
	if _, err := PruferDecode([]int{-1}); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestPruferDecodeAlwaysTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(12)
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = rng.Intn(n)
		}
		g, err := PruferDecode(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTree() {
			t.Fatalf("decode of %v is not a tree", seq)
		}
	}
}

func TestPruferRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 10 {
			raw = raw[:10]
		}
		n := len(raw) + 2
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r) % n
		}
		g, err := PruferDecode(seq)
		if err != nil {
			return false
		}
		back, err := PruferEncode(g)
		if err != nil {
			return false
		}
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPruferEncodeRejectsNonTrees(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	if _, err := PruferEncode(g); err != ErrNotTree {
		t.Errorf("cyclic graph: err=%v, want ErrNotTree", err)
	}
	if _, err := PruferEncode(graph.New(1)); err != ErrNotTree {
		t.Errorf("K1: err=%v, want ErrNotTree (too small)", err)
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	if _, err := PruferEncode(disc); err != ErrNotTree {
		t.Errorf("forest: err=%v, want ErrNotTree", err)
	}
}

func TestRandomTreeUniform(t *testing.T) {
	// On n=3 there are 3 labeled trees (paths with each vertex as the
	// middle). Check rough uniformity.
	rng := rand.New(rand.NewSource(11))
	counts := map[int]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		g := RandomTree(3, rng)
		for v := 0; v < 3; v++ {
			if g.Degree(v) == 2 {
				counts[v]++
			}
		}
	}
	for v := 0; v < 3; v++ {
		if counts[v] < trials/4 {
			t.Errorf("middle vertex %v count %d far from uniform (%d trials)", v, counts[v], trials)
		}
	}
}

func TestRandomTreeSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := RandomTree(1, rng); g.N() != 1 || g.M() != 0 {
		t.Error("RandomTree(1) wrong")
	}
	if g := RandomTree(2, rng); g.M() != 1 {
		t.Error("RandomTree(2) wrong")
	}
	for trial := 0; trial < 50; trial++ {
		if !RandomTree(2+rng.Intn(40), rng).IsTree() {
			t.Fatal("RandomTree produced a non-tree")
		}
	}
}

func TestCountCayley(t *testing.T) {
	want := map[int]uint64{1: 1, 2: 1, 3: 3, 4: 16, 5: 125, 6: 1296, 7: 16807, 8: 262144}
	for n, c := range want {
		if got := Count(n); got != c {
			t.Errorf("Count(%d) = %d, want %d", n, got, c)
		}
	}
}

func TestAllTreesVisitsCayleyCount(t *testing.T) {
	for n := 1; n <= 6; n++ {
		var visited uint64
		got := AllTrees(n, func(g *graph.Graph) bool {
			visited++
			if !g.IsTree() || g.N() != n {
				t.Fatalf("n=%d: enumerated non-tree %v", n, g)
			}
			return true
		})
		if got != Count(n) || visited != Count(n) {
			t.Errorf("AllTrees(%d) visited %d, want %d", n, got, Count(n))
		}
	}
}

func TestAllTreesEarlyStop(t *testing.T) {
	count := 0
	visited := AllTrees(6, func(*graph.Graph) bool {
		count++
		return count < 10
	})
	if visited != 10 || count != 10 {
		t.Errorf("early stop visited %d (fn ran %d), want 10", visited, count)
	}
}

func TestAllTreesDistinct(t *testing.T) {
	// All enumerated trees on n=5 must be pairwise distinct as labeled
	// graphs: collect edge-set signatures.
	seen := map[string]bool{}
	AllTrees(5, func(g *graph.Graph) bool {
		sig := ""
		for _, e := range g.Edges() {
			sig += string(rune('a'+e.U)) + string(rune('a'+e.V))
		}
		if seen[sig] {
			t.Fatalf("duplicate tree %s", sig)
		}
		seen[sig] = true
		return true
	})
	if len(seen) != 125 {
		t.Errorf("enumerated %d distinct trees, want 125", len(seen))
	}
}

func TestAllTreesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllTrees(11) did not panic")
		}
	}()
	AllTrees(MaxEnumN+1, func(*graph.Graph) bool { return true })
}

func TestDoubleSweepDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		g := RandomTree(2+rng.Intn(30), rng)
		want, _ := g.Diameter()
		got, ok := DoubleSweepDiameter(g)
		if !ok || got != want {
			t.Fatalf("tree diameter: double sweep %d,%v, full %d", got, ok, want)
		}
	}
	if _, ok := DoubleSweepDiameter(graph.New(3)); ok {
		t.Error("disconnected double sweep reported ok")
	}
}
