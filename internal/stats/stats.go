// Package stats provides the small statistics toolkit used by the
// experiment harness: summaries, least-squares fits (including log-log fits
// for scaling-exponent estimation, e.g. confirming the Θ(√n) diameter of
// the Theorem 12 torus), and plain-text table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// LinearFit returns the least-squares slope and intercept of y ≈ a·x + b.
// It requires len(xs) == len(ys) >= 2 and non-degenerate xs; otherwise it
// returns NaNs.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	return slope, intercept
}

// LogLogFit fits y ≈ c·x^slope by least squares in log-log space, returning
// the scaling exponent and the constant c. All inputs must be positive.
func LogLogFit(xs, ys []float64) (slope, c float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i >= len(ys) || ys[i] <= 0 {
			return math.NaN(), math.NaN()
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, b := LinearFit(lx, ly)
	return slope, math.Exp(b)
}

// Table accumulates rows of cells and renders them with aligned columns —
// the output format of every experiment in the harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (4 significant decimals, trimmed).
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Render writes the aligned table to w. Column widths are measured in
// runes so headers containing α, ², – etc. stay aligned.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if n := utf8.RuneCountInString(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}
