package stats

import (
	"math"
	"strings"
	"testing"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.Std, 1.2909944, 1e-6) {
		t.Errorf("Std = %v", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v, want 3", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Errorf("single summary = %+v", single)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Errorf("fit = %v, %v, want 2, 1", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, _ := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(s) {
		t.Error("short input did not return NaN")
	}
	if s, _ := LinearFit([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(s) {
		t.Error("constant xs did not return NaN")
	}
	if s, _ := LinearFit([]float64{1, 2}, []float64{1}); !math.IsNaN(s) {
		t.Error("length mismatch did not return NaN")
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 3·x^0.5 exactly.
	xs := []float64{1, 4, 9, 16, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	slope, c := LogLogFit(xs, ys)
	if !almostEqual(slope, 0.5, 1e-9) || !almostEqual(c, 3, 1e-9) {
		t.Errorf("LogLogFit = %v, %v, want 0.5, 3", slope, c)
	}
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	if s, _ := LogLogFit([]float64{1, 0}, []float64{1, 1}); !math.IsNaN(s) {
		t.Error("zero x did not return NaN")
	}
	if s, _ := LogLogFit([]float64{1, 2}, []float64{1, -1}); !math.IsNaN(s) {
		t.Error("negative y did not return NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Add("alpha", 1)
	tab.Add("beta-long", 2.5)
	out := tab.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "beta-long", "2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "x")
	tab.Add(1)
	if strings.Contains(tab.String(), "==") {
		t.Error("untitled table printed a title")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		2:      "2",
		2.5:    "2.5",
		0.3333: "0.3333",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
