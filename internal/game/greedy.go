package game

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pricing"
	"repro/internal/scan"
)

// DefaultEdgeCost is the CLI default for the greedy model's per-edge
// maintenance price.
const DefaultEdgeCost = int64(2)

// Greedy is the greedy add/delete/swap deviation model studied by Kawald &
// Lenzner ("On Dynamics in Selfish Network Creation"): one single-edge
// operation per move — buy a new incident edge, delete an incident edge,
// or swap one — priced as
//
//	cost(v) = EdgeCost·deg(v) + usage(v)
//
// where usage is the SUM or MAX distance cost of the basic game and every
// vertex pays maintenance for each incident edge (the ownerless, bilateral
// accounting; the ownership-tracked α-game lives in internal/nash).
// Feasibility rules: an add target must be a non-neighbor, a delete target
// an incident edge, and a swap's new endpoint a fresh non-neighbor (a swap
// onto an existing edge would be a disguised deletion with the wrong
// maintenance delta, so it is excluded — deletions are enumerated
// explicitly). Deletions that disconnect the agent price to InfCost and
// are never improving.
//
// With EdgeCost = 0 adds are almost always improving and dynamics converge
// toward the complete graph; with large EdgeCost the model degenerates to
// pure delete/swap. Moderate costs trade edges against distance, the
// regime the related work studies.
type Greedy struct {
	// EdgeCost is the per-incident-edge maintenance price.
	EdgeCost int64
}

// Name returns "greedy".
func (Greedy) Name() string { return "greedy" }

// New starts an incremental greedy session on g.
func (m Greedy) New(g *graph.Graph, workers int) Instance {
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	return &greedySession{g: g, ps: eng.NewSession(g), eng: eng, workers: workers, edgeCost: m.EdgeCost}
}

// Naive returns the apply-measure-revert oracle instance.
func (m Greedy) Naive(g *graph.Graph, workers int) Instance {
	return &greedyNaive{g: g, workers: normWorkers(workers), edgeCost: m.EdgeCost}
}

// sampleGreedy draws the greedy model's random probe: a uniform vertex, a
// uniform move kind, then the kind's endpoints; infeasible draws are
// wasted probes. The adjacency accessors abstract the fast/naive source so
// both instances consume rng identically.
func sampleGreedy(rng *rand.Rand, n int, deg func(v int) int, nb func(v, i int) int, hasEdge func(u, v int) bool) (Move, bool) {
	v := rng.Intn(n)
	switch rng.Intn(3) {
	case 0: // add
		w := rng.Intn(n)
		if w == v || hasEdge(v, w) {
			return Move{}, false
		}
		return Move{Kind: KindAdd, V: v, Add: w}, true
	case 1: // delete
		d := deg(v)
		if d == 0 {
			return Move{}, false
		}
		return Move{Kind: KindDelete, V: v, Drop: nb(v, rng.Intn(d))}, true
	default: // swap
		d := deg(v)
		if d == 0 {
			return Move{}, false
		}
		w := nb(v, rng.Intn(d))
		wp := rng.Intn(n)
		if wp == v || hasEdge(v, wp) {
			return Move{}, false
		}
		return Move{Kind: KindSwap, V: v, Drop: w, Add: wp}, true
	}
}

// ---------------------------------------------------------------------------
// Fast instance.

// greedySession prices greedy moves over a live pricing session. Per-agent
// scans enumerate adds (endpoints ascending), then deletions (dropped
// edges ascending), then swaps (the add-major order restricted to fresh
// endpoints); ties keep the enumeration-first candidate within a stage and
// the earlier stage across stages, so results are deterministic. The add
// and swap stages shard candidate endpoints across the session's workers
// on the unified scan engine with thresholded (abort-early) reductions;
// the merge is bit-identical to the sequential scan for any worker count.
type greedySession struct {
	g        *graph.Graph
	ps       *pricing.Session
	eng      *pricing.Engine
	workers  int
	edgeCost int64
}

func (s *greedySession) Graph() *graph.Graph { return s.g }

// SetScanCancel installs a cooperative cancel hook on the session's
// per-agent scans (see ScanCanceller).
func (s *greedySession) SetScanCancel(cancel func() bool) { s.ps.SetCancel(cancel) }

func (s *greedySession) Cost(v int, obj Objective) int64 {
	dist, queue, release := s.eng.Scratch(s.ps.N())
	defer release()
	s.ps.View().BFSInto(v, dist, queue)
	return s.edgeCost*int64(s.ps.View().Degree(v)) + pricing.Usage(dist, pobj(obj))
}

// SocialCost returns Σ_v cost(v) = 2·EdgeCost·m + Σ_v usage(v), InfCost
// when the graph is disconnected.
func (s *greedySession) SocialCost(obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dist, queue, release := s.eng.Scratch(n)
	defer release()
	total := 2 * s.edgeCost * int64(view.M())
	for v := 0; v < n; v++ {
		view.BFSInto(v, dist, queue)
		c := pricing.Usage(dist, pobj(obj))
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

func (s *greedySession) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *greedySession) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

// scanMoves enumerates all feasible moves of agent v in the model's
// deterministic order — adds (endpoints ascending), then deletions
// (dropped edges ascending), then swaps (add-major over fresh endpoints) —
// returning the minimum-cost strictly improving move (or the first one
// when firstOnly). The add and swap stages run on the unified scan engine,
// sharded across the session's workers; each stage's admission threshold
// is the running best of the earlier stages, so cost ties resolve toward
// the earlier stage and, within a stage, toward the enumeration-first
// candidate — exactly the sequential loop's outcome for any worker count.
func (s *greedySession) scanMoves(v int, obj Objective, firstOnly bool) (best Move, oldCost, newCost int64, ok bool) {
	po := pobj(obj)
	view := s.ps.View()
	n := view.N()
	psc := s.ps.NewScan(v)
	defer psc.Close()
	deg := int64(view.Degree(v))
	cur := s.edgeCost*deg + psc.CurrentUsage(po)
	bestCost := cur
	state := scratchState(s.eng, n)
	skipKnown := func(add int) bool { return add == v || view.HasEdge(v, add) }
	runStage := func(pricer scan.Pricer[bfsRow], toMove func(c scan.Cand) Move) bool {
		spec := scan.Spec{
			Workers:   s.workers,
			N:         n,
			Threshold: bestCost,
			Order:     scan.ByEnumeration,
			Skip:      skipKnown,
			Cancel:    psc.CancelHook(),
		}
		var c scan.Cand
		var found bool
		if firstOnly {
			c, found = scan.First(spec, state, pricer)
		} else {
			c, found = scan.Best(spec, state, pricer)
		}
		if found {
			best, bestCost, ok = toMove(c), c.Cost, true
		}
		return found && firstOnly
	}

	// Adds: d_{G+vw}(v,·) = min(d_G(v,·), 1+d_G(w,·)), one BFS per fresh
	// endpoint against the scan's current row, offset by the maintenance
	// price of the extra edge.
	addOffset := s.edgeCost * (deg + 1)
	addPricer := func(ws bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		view.BFSInto(add, ws.dist, ws.queue)
		if c, below := pricing.PatchedBelow(psc.CurrentRow(), ws.dist, po, threshold()-addOffset); below {
			yield(0, addOffset+c)
		}
	}
	if runStage(addPricer, func(c scan.Cand) Move { return Move{Kind: KindAdd, V: v, Add: c.Add} }) {
		return best, cur, bestCost, true
	}

	// Deletions: the scan's dropped-edge rows price them for free; no BFS
	// to shard, so this stage stays a sequential strict-improvement fold.
	for i, w := range psc.Drops() {
		if c := s.edgeCost*(deg-1) + psc.DeletionUsage(i, po); c < bestCost {
			best, bestCost, ok = Move{Kind: KindDelete, V: v, Drop: int(w)}, c, true
			if firstOnly {
				return best, cur, bestCost, true
			}
		}
	}

	// Swaps: add-major over fresh endpoints (the target edge must not
	// exist; deletions were priced above), against the dropped-edge rows.
	swapOffset := s.edgeCost * deg
	drops := psc.Drops()
	swapPricer := func(ws bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		view.BFSSkipVertex(add, v, ws.dist, ws.queue)
		for i := range drops {
			if c, below := pricing.PatchedBelow(psc.DropRow(i), ws.dist, po, threshold()-swapOffset); below {
				if !yield(i, swapOffset+c) {
					return
				}
			}
		}
	}
	runStage(swapPricer, func(c scan.Cand) Move {
		return Move{Kind: KindSwap, V: v, Drop: int(drops[c.DropIdx]), Add: c.Add}
	})
	return best, cur, bestCost, ok
}

func (s *greedySession) PriceMove(m Move, obj Objective) int64 {
	po := pobj(obj)
	view := s.ps.View()
	n := view.N()
	deg := int64(view.Degree(m.V))
	switch m.Kind {
	case KindAdd:
		dv, qv, relV := s.eng.Scratch(n)
		defer relV()
		dw, qw, relW := s.eng.Scratch(n)
		defer relW()
		view.BFSInto(m.V, dv, qv)
		view.BFSInto(m.Add, dw, qw)
		return s.edgeCost*(deg+1) + pricing.Patched(dv, dw, po)
	case KindDelete:
		dist, queue, release := s.eng.Scratch(n)
		defer release()
		view.BFSSkipEdge(m.V, m.V, m.Drop, dist, queue)
		return s.edgeCost*(deg-1) + pricing.Usage(dist, po)
	default:
		dv, qv, relV := s.eng.Scratch(n)
		defer relV()
		dw, qw, relW := s.eng.Scratch(n)
		defer relW()
		view.BFSSkipEdge(m.V, m.V, m.Drop, dv, qv)
		view.BFSSkipVertex(m.Add, m.V, dw, qw)
		return s.edgeCost*deg + pricing.Patched(dv, dw, po)
	}
}

func (s *greedySession) Sample(rng *rand.Rand) (Move, bool) {
	view := s.ps.View()
	return sampleGreedy(rng, view.N(), view.Degree, func(v, i int) int {
		return int(view.Neighbors(v)[i])
	}, view.HasEdge)
}

func (s *greedySession) Apply(m Move) (undo func()) {
	gundo := ApplyToGraph(s.g, m)
	switch m.Kind {
	case KindAdd:
		s.ps.ApplyAdd(m.V, m.Add)
	case KindDelete:
		s.ps.ApplyRemove(m.V, m.Drop)
	default:
		s.ps.ApplySwap(m.V, m.Drop, m.Add)
	}
	return func() {
		s.ps.Undo()
		gundo()
	}
}

func (s *greedySession) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *greedySession) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}

// ---------------------------------------------------------------------------
// Naive instance.

// greedyNaive prices every candidate by apply-measure-revert on the map
// graph, in the same enumeration order as greedySession.
type greedyNaive struct {
	g        *graph.Graph
	workers  int
	edgeCost int64
}

func (s *greedyNaive) Graph() *graph.Graph { return s.g }

func (s *greedyNaive) Cost(v int, obj Objective) int64 {
	return s.edgeCost*int64(s.g.Degree(v)) + Cost(s.g, v, obj)
}

func (s *greedyNaive) SocialCost(obj Objective) int64 {
	usage := SocialCost(s.g, obj)
	if usage >= InfCost {
		return InfCost
	}
	return 2*s.edgeCost*int64(s.g.M()) + usage
}

func (s *greedyNaive) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *greedyNaive) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

func (s *greedyNaive) scanMoves(v int, obj Objective, firstOnly bool) (best Move, oldCost, newCost int64, ok bool) {
	n := s.g.N()
	cur := s.Cost(v, obj)
	bestCost := cur
	consider := func(m Move, c int64) bool {
		if c < bestCost {
			bestCost, best, ok = c, m, true
			return !firstOnly
		}
		return true
	}
	deg := int64(s.g.Degree(v))

	for w := 0; w < n; w++ {
		if w == v || s.g.HasEdge(v, w) {
			continue
		}
		m := Move{Kind: KindAdd, V: v, Add: w}
		if !consider(m, s.edgeCost*(deg+1)+Evaluate(s.g, m, obj)) {
			return best, cur, bestCost, true
		}
	}
	nbs := s.g.Neighbors(v)
	for _, w := range nbs {
		m := Move{Kind: KindDelete, V: v, Drop: w}
		if !consider(m, s.edgeCost*(deg-1)+Evaluate(s.g, m, obj)) {
			return best, cur, bestCost, true
		}
	}
	for add := 0; add < n; add++ {
		if add == v || s.g.HasEdge(v, add) {
			continue
		}
		for _, w := range nbs {
			m := Move{Kind: KindSwap, V: v, Drop: w, Add: add}
			if !consider(m, s.edgeCost*deg+Evaluate(s.g, m, obj)) {
				return best, cur, bestCost, true
			}
		}
	}
	return best, cur, bestCost, ok
}

func (s *greedyNaive) PriceMove(m Move, obj Objective) int64 {
	deg := int64(s.g.Degree(m.V))
	switch m.Kind {
	case KindAdd:
		deg++
	case KindDelete:
		deg--
	}
	return s.edgeCost*deg + Evaluate(s.g, m, obj)
}

func (s *greedyNaive) Sample(rng *rand.Rand) (Move, bool) {
	return sampleGreedy(rng, s.g.N(), s.g.Degree, func(v, i int) int {
		return s.g.Neighbors(v)[i]
	}, s.g.HasEdge)
}

func (s *greedyNaive) Apply(m Move) (undo func()) { return ApplyToGraph(s.g, m) }

func (s *greedyNaive) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *greedyNaive) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}
