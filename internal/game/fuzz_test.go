package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// FuzzGreedyApply drives a greedy fast instance with a fuzzer-chosen
// sequence of adds, deletes, swaps, and interleaved undos, mirroring every
// operation onto a plain map-backed graph. After every mutation the
// instance's authoritative graph must equal the mirror, and its
// session-backed pricing must agree with a fresh naive instance on the
// mirror (per-agent cost and social cost) — the apply/undo path of every
// move kind is exercised against the O(deg) snapshot patches.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzGreedyApply -fuzztime=30s ./internal/game
func FuzzGreedyApply(f *testing.F) {
	f.Add(uint8(8), int64(1), []byte{0, 7, 13, 2, 250, 9, 4, 44, 251, 1, 2, 3})
	f.Add(uint8(3), int64(9), []byte{255, 254, 1, 2, 3, 200, 100, 0})
	f.Add(uint8(20), int64(42), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, ops []byte) {
		n := 2 + int(nRaw)%24
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}

		model := game.Greedy{EdgeCost: 2}
		start := g.Clone()
		mirror := g.Clone()
		inst := model.New(g, 1)
		var undos []func()

		check := func(step int) {
			t.Helper()
			if !g.Equal(mirror) {
				t.Fatalf("step %d: instance graph diverged from mirror", step)
			}
			oracle := model.Naive(mirror, 1)
			v := (step%n + n) % n
			if got, want := inst.Cost(v, game.Sum), oracle.Cost(v, game.Sum); got != want {
				t.Fatalf("step %d: Cost(%d) live %d, oracle %d", step, v, got, want)
			}
			if got, want := inst.SocialCost(game.Max), oracle.SocialCost(game.Max); got != want {
				t.Fatalf("step %d: SocialCost live %d, oracle %d", step, got, want)
			}
		}

		check(-1)
		for i := 0; i+2 < len(ops); i += 3 {
			if ops[i] >= 224 && len(undos) > 0 {
				// Undo the most recent applied move on the instance; the
				// mirror replays from scratch below via graph equality.
				undos[len(undos)-1]()
				undos = undos[:len(undos)-1]
				mirror = g.Clone()
				check(i)
				continue
			}
			v := int(ops[i]) % n
			var m game.Move
			switch ops[i+1] % 3 {
			case 0: // add
				w := int(ops[i+2]) % n
				if w == v || mirror.HasEdge(v, w) {
					continue
				}
				m = game.Move{Kind: game.KindAdd, V: v, Add: w}
			case 1: // delete
				if mirror.Degree(v) == 0 {
					continue
				}
				nbs := mirror.Neighbors(v)
				m = game.Move{Kind: game.KindDelete, V: v, Drop: nbs[int(ops[i+2])%len(nbs)]}
			default: // swap
				if mirror.Degree(v) == 0 {
					continue
				}
				nbs := mirror.Neighbors(v)
				drop := nbs[int(ops[i+1]/3)%len(nbs)]
				add := int(ops[i+2]) % n
				if add == v {
					continue
				}
				m = game.Move{Kind: game.KindSwap, V: v, Drop: drop, Add: add}
			}
			undos = append(undos, inst.Apply(m))
			applyToMirror(mirror, m)
			check(i)
		}
		// Drain the undo stack: the instance must return to the start graph.
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
		if !g.Equal(start) {
			t.Fatal("undo chain did not restore the start graph")
		}
		mirror = start
		check(len(ops))
	})
}

// FuzzBudgetApply drives a bounded-budget fast instance with a
// fuzzer-chosen sequence of feasible swaps and interleaved undos, mirroring
// every operation onto a plain map-backed graph. Infeasible candidates
// (over-budget targets) are filtered against the mirror exactly as the
// model's scans filter them, so every generated move must be accepted by
// Apply; after every mutation the instance's authoritative graph must equal
// the mirror and its session-backed pricing must agree with a fresh naive
// instance on the mirror (per-agent cost and social cost), and the budget's
// degree invariant deg(u) ≤ max(deg₀(u), K) must hold.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzBudgetApply -fuzztime=30s ./internal/game
func FuzzBudgetApply(f *testing.F) {
	f.Add(uint8(8), uint8(2), int64(1), []byte{0, 7, 13, 2, 250, 9, 4, 44, 251, 1, 2, 3})
	f.Add(uint8(3), uint8(1), int64(9), []byte{255, 254, 1, 2, 3, 200, 100, 0})
	f.Add(uint8(20), uint8(5), int64(42), []byte{})
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, seed int64, ops []byte) {
		n := 2 + int(nRaw)%24
		k := 1 + int(kRaw)%6
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}

		model := game.Budget{K: k}
		start := g.Clone()
		mirror := g.Clone()
		bound := make([]int, n)
		for v := 0; v < n; v++ {
			bound[v] = g.Degree(v)
			if bound[v] < k {
				bound[v] = k
			}
		}
		inst := model.New(g, 1)
		var undos []func()

		check := func(step int) {
			t.Helper()
			if !g.Equal(mirror) {
				t.Fatalf("step %d: instance graph diverged from mirror", step)
			}
			for u := 0; u < n; u++ {
				if g.Degree(u) > bound[u] {
					t.Fatalf("step %d: deg(%d) = %d exceeds max(deg0, k) = %d", step, u, g.Degree(u), bound[u])
				}
			}
			oracle := model.Naive(mirror, 1)
			v := (step%n + n) % n
			if got, want := inst.Cost(v, game.Sum), oracle.Cost(v, game.Sum); got != want {
				t.Fatalf("step %d: Cost(%d) live %d, oracle %d", step, v, got, want)
			}
			if got, want := inst.SocialCost(game.Max), oracle.SocialCost(game.Max); got != want {
				t.Fatalf("step %d: SocialCost live %d, oracle %d", step, got, want)
			}
		}

		check(-1)
		for i := 0; i+2 < len(ops); i += 3 {
			if ops[i] >= 224 && len(undos) > 0 {
				undos[len(undos)-1]()
				undos = undos[:len(undos)-1]
				mirror = g.Clone()
				check(i)
				continue
			}
			v := int(ops[i]) % n
			if mirror.Degree(v) == 0 {
				continue
			}
			nbs := mirror.Neighbors(v)
			drop := nbs[int(ops[i+1])%len(nbs)]
			add := int(ops[i+2]) % n
			if add == v {
				continue
			}
			// The model's feasibility rule: a fresh target needs budget room.
			if !mirror.HasEdge(v, add) && mirror.Degree(add) >= k {
				continue
			}
			m := game.Move{V: v, Drop: drop, Add: add}
			undos = append(undos, inst.Apply(m))
			applyToMirror(mirror, m)
			check(i)
		}
		for i := len(undos) - 1; i >= 0; i-- {
			undos[i]()
		}
		if !g.Equal(start) {
			t.Fatal("undo chain did not restore the start graph")
		}
		mirror = start
		check(len(ops))
	})
}

// applyToMirror replays a move on the mirror with the same degenerate-move
// semantics as game.ApplyToGraph.
func applyToMirror(g *graph.Graph, m game.Move) {
	switch m.Kind {
	case game.KindAdd:
		g.AddEdge(m.V, m.Add)
	case game.KindDelete:
		g.RemoveEdge(m.V, m.Drop)
	default:
		g.RemoveEdge(m.V, m.Drop)
		g.AddEdge(m.V, m.Add)
	}
}
