package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// The interests fast-vs-naive differential and probe-pricing suites moved
// to the model-generic tables in models_test.go; the tests here cover
// interest-set semantics only.

func TestUniformInterestsMatchesSwap(t *testing.T) {
	// With every vertex interested in every other, the interests model
	// degenerates to the basic swap game: same costs, same best-move
	// prices, same stability verdicts (moves themselves may differ on
	// cost ties because the two models break them differently).
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(10)
		g := randomConnected(rng, n, rng.Intn(5))
		ints := game.UniformInterests(n).New(g.Clone(), 1)
		swap := game.Swap{}.New(g.Clone(), 1)
		for _, obj := range []game.Objective{game.Sum, game.Max} {
			for v := 0; v < n; v++ {
				if got, want := ints.Cost(v, obj), swap.Cost(v, obj); got != want {
					t.Fatalf("trial %d obj=%v: Cost(%d) interests %d, swap %d", trial, obj, v, got, want)
				}
				_, io, in, iok := ints.BestMove(v, obj)
				_, so, sn, sok := swap.BestMove(v, obj)
				if iok != sok || io != so || in != sn {
					t.Fatalf("trial %d obj=%v v=%d: BestMove interests (%d,%d,%v), swap (%d,%d,%v)",
						trial, obj, v, io, in, iok, so, sn, sok)
				}
			}
			is, _, _ := ints.CheckStable(obj)
			ss, _, _ := swap.CheckStable(obj)
			if is != ss {
				t.Fatalf("trial %d obj=%v: stability interests %v, swap %v", trial, obj, is, ss)
			}
		}
	}
}

func TestInterestsEmptySetAgentIsInert(t *testing.T) {
	// A vertex with an empty interest set has cost 0 and never moves.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	sets := [][]int32{{}, {0, 2, 3}, {1}, {1}}
	inst := game.NewInterests(sets).New(g, 1)
	if c := inst.Cost(0, game.Sum); c != 0 {
		t.Fatalf("empty-set cost = %d, want 0", c)
	}
	if m, _, _, ok := inst.BestMove(0, game.Sum); ok {
		t.Fatalf("empty-set agent found move %v", m)
	}
}

func TestInterestsToleratesDisconnection(t *testing.T) {
	// Agents are indifferent to vertices outside their interest sets, so
	// pricing and stability checks must work on disconnected graphs (an
	// improving move may legally strand uninterested vertices).
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	sets := [][]int32{{1}, {0}, {3}, {2}, {3}}
	model := game.NewInterests(sets)
	for _, inst := range []game.Instance{model.New(g.Clone(), 1), model.Naive(g.Clone(), 1)} {
		stable, viol, err := inst.CheckStable(game.Sum)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("components serving all interests reported unstable: %v", viol)
		}
		if sc := inst.SocialCost(game.Sum); sc != 5 {
			t.Fatalf("social cost = %d, want 5", sc)
		}
	}
	// Strand an interested target: cost goes to InfCost.
	h := g.Clone()
	h.RemoveEdge(0, 1)
	if c := model.New(h, 1).Cost(0, game.Sum); c != game.InfCost {
		t.Fatalf("stranded interest cost = %d, want InfCost", c)
	}
}

func TestNewInterestsNormalizes(t *testing.T) {
	m := game.NewInterests([][]int32{{3, 1, 1, 0, 3}, {1}})
	sets := m.Sets()
	if got := sets[0]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("normalized set = %v, want [1 3]", got)
	}
	if len(sets[1]) != 0 {
		t.Fatalf("self-interest survived normalization: %v", sets[1])
	}
}
