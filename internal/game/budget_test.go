package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/game"
)

// The budget fast-vs-naive differential, sample-parity, and probe-pricing
// suites live in the model-generic tables in models_test.go, and the
// K ≥ n−1 ≡ swap degeneration in metamorphic_test.go; the tests here cover
// the feasibility rule itself.

func TestBudgetScansRespectFeasibility(t *testing.T) {
	// No scan entry point may ever return a move that re-points an edge
	// onto a vertex already at its budget.
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		g := randomConnected(rng, n, rng.Intn(8))
		k := 2 + rng.Intn(2)
		for _, inst := range []game.Instance{
			game.Budget{K: k}.New(g.Clone(), 2),
			game.Budget{K: k}.Naive(g.Clone(), 2),
		} {
			gg := inst.Graph()
			for v := 0; v < n; v++ {
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					if m, _, _, ok := inst.BestMove(v, obj); ok {
						if !gg.HasEdge(m.V, m.Add) && gg.Degree(m.Add) >= k {
							t.Fatalf("trial %d: BestMove(%d) targets full vertex: %v (deg %d, k %d)",
								trial, v, m, gg.Degree(m.Add), k)
						}
					}
					if m, _, _, ok := inst.FirstImproving(v, obj); ok {
						if !gg.HasEdge(m.V, m.Add) && gg.Degree(m.Add) >= k {
							t.Fatalf("trial %d: FirstImproving(%d) targets full vertex: %v", trial, v, m)
						}
					}
				}
			}
		}
	}
}

func TestBudgetDegreeInvariant(t *testing.T) {
	// Along any trajectory deg(u) ≤ max(deg₀(u), K): vertices at or over
	// budget never receive edges.
	rng := rand.New(rand.NewSource(112))
	n := 20
	g := randomConnected(rng, n, 6)
	k := 3
	bound := make([]int, n)
	for v := 0; v < n; v++ {
		bound[v] = g.Degree(v)
		if bound[v] < k {
			bound[v] = k
		}
	}
	inst := game.Budget{K: k}.New(g, 1)
	_, _, converged := game.RoundRobin(n, 2000, func(v int) bool {
		m, _, _, ok := inst.BestMove(v, game.Sum)
		if !ok {
			return false
		}
		inst.Apply(m)
		for u := 0; u < n; u++ {
			if g.Degree(u) > bound[u] {
				t.Fatalf("after %v: deg(%d) = %d exceeds max(deg0, k) = %d", m, u, g.Degree(u), bound[u])
			}
		}
		return true
	})
	if !converged {
		t.Fatal("budget best response did not converge")
	}
	if stable, viol, err := (game.Budget{K: k}).New(g, 1).CheckStable(game.Sum); err != nil || !stable {
		t.Fatalf("converged graph fails certification: %v %v", viol, err)
	}
}

func TestBudgetTwoFreezesPath(t *testing.T) {
	// Contrast pin for the feasibility rule: Path(12) is NOT a swap
	// equilibrium (an endpoint improves by re-pointing into the middle),
	// but with K = 2 every interior vertex is a full target and the only
	// feasible endpoint re-point just mirrors the path at equal cost — the
	// budget freezes the dynamics entirely.
	g := constructions.Path(12)
	if stable, _, err := (game.Swap{}).New(g.Clone(), 1).CheckStable(game.Sum); err != nil || stable {
		t.Fatalf("Path(12) unexpectedly swap-stable (err %v)", err)
	}
	for _, inst := range []game.Instance{
		game.Budget{K: 2}.New(g.Clone(), 1),
		game.Budget{K: 2}.Naive(g.Clone(), 1),
	} {
		stable, viol, err := inst.CheckStable(game.Sum)
		if err != nil || !stable {
			t.Fatalf("Path(12) not budget-2 stable: %v %v", viol, err)
		}
	}
}

func TestBudgetBoundedDegreeEquilibrium(t *testing.T) {
	// With K = 3 the sum star (hub degree n−1) is unreachable from a path:
	// best response converges to a bounded-degree equilibrium whose
	// diameter must exceed the unbudgeted equilibrium's 2 — the
	// budget/diameter trade-off E18 sweeps.
	n := 16
	g := constructions.Path(n)
	inst := game.Budget{K: 3}.New(g, 1)
	moves, _, converged := game.RoundRobin(n, 2000, func(v int) bool {
		m, _, _, ok := inst.BestMove(v, game.Sum)
		if !ok {
			return false
		}
		inst.Apply(m)
		return true
	})
	if !converged {
		t.Fatal("budget-3 dynamics on a path did not converge")
	}
	if moves == 0 {
		t.Fatal("Path(16) should not be budget-3 stable")
	}
	if g.MaxDegree() > 3 {
		t.Fatalf("equilibrium max degree %d exceeds budget 3", g.MaxDegree())
	}
	diam, connected := g.Diameter()
	if !connected || diam <= 2 {
		t.Fatalf("budget-3 equilibrium diameter %d (connected=%v), want > 2", diam, connected)
	}
	if stable, viol, err := (game.Budget{K: 3}).New(g, 1).CheckStable(game.Sum); err != nil || !stable {
		t.Fatalf("final graph fails budget-3 certification: %v %v", viol, err)
	}
}

func TestBudgetApplyPanicsOverBudget(t *testing.T) {
	// Applying a move that re-points onto a full vertex must panic rather
	// than silently break the degree invariant.
	g := constructions.Path(5) // vertex 2 has degree 2
	inst := game.Budget{K: 2}.New(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-budget Apply did not panic")
		}
	}()
	inst.Apply(game.Move{V: 0, Drop: 1, Add: 2})
}

func TestBudgetSampleRejectsInfeasible(t *testing.T) {
	// Star center neighbors are full at K = 1, so every fresh re-point is
	// rejected as a wasted probe; only degenerate draws (add == an existing
	// neighbor) survive.
	g := constructions.Star(8)
	inst := game.Budget{K: 1}.New(g, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		m, ok := inst.Sample(rng)
		if !ok {
			continue
		}
		if !g.HasEdge(m.V, m.Add) && g.Degree(m.Add) >= 1 {
			t.Fatalf("probe %d: sampled infeasible move %v", i, m)
		}
	}
}
