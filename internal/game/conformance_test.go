package game_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/constructions"
	"repro/internal/game"
	"repro/internal/graph"
)

// Scan-conformance suite: pins that the unified scan engine's witness —
// move, cost, and tie-break — is bit-identical to the pre-refactor
// sequential enumeration for every model, worker count, and objective.
//
// The reference below is deliberately independent of the engine: it
// re-enumerates each model's documented candidate order with a plain
// sequential loop and prices every candidate through the model's *naive*
// instance (apply-measure-revert / re-freeze pricing), so a regression in
// the engine's enumeration, admission threshold, pruning, or merge order
// cannot cancel out. The reference also enumerates the candidates the
// fast paths deliberately skip (adds onto existing neighbors — pure
// deletions — and over-nothing no-ops), proving the deletion-skip is
// outcome-preserving.
//
// Trajectory-level conformance is pinned separately by the golden traces
// in internal/dynamics (the PR 2 random-improving trace and the PR 4
// greedy/interests traces) and the Run-vs-NaiveRun differential suite;
// this file pins the per-call witnesses those trajectories are built from.

// refCand is one reference candidate: its move and exact oracle price.
type refCand struct {
	m    game.Move
	cost int64
}

// sortedNeighbors returns v's neighbors ascending — the scan engines' drop
// order.
func sortedNeighbors(g *graph.Graph, v int) []int {
	nbs := append([]int(nil), g.Neighbors(v)...)
	sort.Ints(nbs)
	return nbs
}

// refEnumerate lists agent v's candidates in the model's documented
// sequential order, pricing each through the naive oracle.
func refEnumerate(model game.Model, naive game.Instance, v int, obj game.Objective) []refCand {
	g := naive.Graph()
	n := g.N()
	nbs := sortedNeighbors(g, v)
	var out []refCand
	swapLike := func(feasible func(add int) bool, skipNoop bool) {
		for add := 0; add < n; add++ {
			if add == v || (feasible != nil && !feasible(add)) {
				continue
			}
			for _, w := range nbs {
				if skipNoop && w == add {
					continue
				}
				m := game.Move{V: v, Drop: w, Add: add}
				out = append(out, refCand{m, naive.PriceMove(m, obj)})
			}
		}
	}
	switch md := model.(type) {
	case game.Swap:
		swapLike(nil, false)
	case game.Interests:
		swapLike(nil, false)
	case game.Budget:
		swapLike(func(add int) bool {
			return g.HasEdge(v, add) || g.Degree(add) < md.K
		}, false)
	case game.TwoNeighborhood:
		swapLike(nil, true)
	case game.Greedy:
		for w := 0; w < n; w++ {
			if w == v || g.HasEdge(v, w) {
				continue
			}
			m := game.Move{Kind: game.KindAdd, V: v, Add: w}
			out = append(out, refCand{m, naive.PriceMove(m, obj)})
		}
		for _, w := range nbs {
			m := game.Move{Kind: game.KindDelete, V: v, Drop: w}
			out = append(out, refCand{m, naive.PriceMove(m, obj)})
		}
		for add := 0; add < n; add++ {
			if add == v || g.HasEdge(v, add) {
				continue
			}
			for _, w := range nbs {
				m := game.Move{Kind: game.KindSwap, V: v, Drop: w, Add: add}
				out = append(out, refCand{m, naive.PriceMove(m, obj)})
			}
		}
	default:
		panic("refEnumerate: unknown model " + model.Name())
	}
	return out
}

// refFirst is the pre-refactor first-improvement result: the first
// candidate in enumeration order pricing strictly below cur.
func refFirst(cands []refCand, cur int64) (refCand, bool) {
	for _, c := range cands {
		if c.cost < cur {
			return c, true
		}
	}
	return refCand{}, false
}

// refBest is the pre-refactor best-move result among strictly improving
// candidates: for the swap model (and only it) ties break by
// (cost, drop, add) — the historical checker order — and for every other
// model toward the enumeration-first candidate.
func refBest(model game.Model, cands []refCand, cur int64) (refCand, bool) {
	var best refCand
	found := false
	_, dropFirst := model.(game.Swap)
	better := func(a, b refCand) bool {
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		if !dropFirst {
			return false // enumeration order settles ties: first seen wins
		}
		if a.m.Drop != b.m.Drop {
			return a.m.Drop < b.m.Drop
		}
		return a.m.Add < b.m.Add
	}
	for _, c := range cands {
		if c.cost >= cur {
			continue
		}
		if !found || better(c, best) {
			best, found = c, true
		}
	}
	return best, found
}

// conformanceModels mirrors the five-model roster with fixed, seeded
// configurations.
func conformanceModels(n int, rng *rand.Rand) []game.Model {
	return []game.Model{
		game.Swap{},
		game.Greedy{EdgeCost: 2},
		game.RandomInterests(n, 0.5, rng),
		game.Budget{K: 3},
		game.TwoNeighborhood{},
	}
}

func conformanceGraphs(rng *rand.Rand) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path12":  constructions.Path(12),
		"star12":  constructions.Star(12),
		"torus18": constructions.NewTorus(3).Graph(),
		"tree20":  randomConnected(rng, 20, 6),
	}
}

func TestScanConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for gname, g := range conformanceGraphs(rng) {
		n := g.N()
		for _, model := range conformanceModels(n, rng) {
			naive := model.Naive(g.Clone(), 1)
			for _, workers := range []int{1, 2, 4, 8} {
				fast := model.New(g.Clone(), workers)
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					for v := 0; v < n; v++ {
						cands := refEnumerate(model, naive, v, obj)
						cur := naive.Cost(v, obj)

						wm, wok := refFirst(cands, cur)
						m, old, newCost, ok := fast.FirstImproving(v, obj)
						if ok != wok || old != cur || (ok && (m != wm.m || newCost != wm.cost)) {
							t.Fatalf("%s/%s workers=%d obj=%v v=%d: FirstImproving (%v,%d,%d,%v), reference (%v,%d,%d,%v)",
								gname, model.Name(), workers, obj, v, m, old, newCost, ok, wm.m, cur, wm.cost, wok)
						}

						wm, wok = refBest(model, cands, cur)
						m, old, newCost, ok = fast.BestMove(v, obj)
						if ok != wok || old != cur || (ok && (m != wm.m || newCost != wm.cost)) {
							t.Fatalf("%s/%s workers=%d obj=%v v=%d: BestMove (%v,%d,%d,%v), reference (%v,%d,%d,%v)",
								gname, model.Name(), workers, obj, v, m, old, newCost, ok, wm.m, cur, wm.cost, wok)
						}
					}
				}
			}
		}
	}
}
