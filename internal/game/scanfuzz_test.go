package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// fuzzGraph builds a random connected graph (tree plus chords) from the
// fuzzer-chosen size and seed.
func fuzzGraph(nRaw uint8, seed int64) (*graph.Graph, *rand.Rand) {
	n := 4 + int(nRaw)%20
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < n/3; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g, rng
}

// fuzzModel resolves a fuzzer-chosen model configuration, drawing any
// per-model parameters from the graph's rng so they replay with the seed.
func fuzzModel(sel uint8, n int, rng *rand.Rand) game.Model {
	switch sel % 5 {
	case 0:
		return game.Swap{}
	case 1:
		return game.Greedy{EdgeCost: int64(rng.Intn(4))}
	case 2:
		return game.RandomInterests(n, 0.2+rng.Float64()*0.7, rng)
	case 3:
		return game.Budget{K: 2 + rng.Intn(3)}
	default:
		return game.TwoNeighborhood{}
	}
}

// FuzzScanEngine cross-checks the unified scan engine's per-agent
// witnesses — FirstImproving and BestMove for every agent, plus the
// certification sweep — against the naive O(candidates) sequential
// enumeration of conformance_test.go, over fuzzer-chosen graphs, model
// configurations, worker counts, and objectives.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzScanEngine -fuzztime=30s ./internal/game
func FuzzScanEngine(f *testing.F) {
	f.Add(uint8(8), int64(1), uint8(0), uint8(1), false)
	f.Add(uint8(12), int64(7), uint8(1), uint8(3), true)
	f.Add(uint8(5), int64(42), uint8(2), uint8(8), false)
	f.Add(uint8(16), int64(3), uint8(3), uint8(4), true)
	f.Add(uint8(9), int64(11), uint8(4), uint8(2), false)
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, modelSel, workersRaw uint8, useMax bool) {
		g, rng := fuzzGraph(nRaw, seed)
		n := g.N()
		model := fuzzModel(modelSel, n, rng)
		workers := 1 + int(workersRaw)%8
		obj := game.Sum
		if useMax {
			obj = game.Max
		}
		fast := model.New(g.Clone(), workers)
		naive := model.Naive(g.Clone(), 1)

		var wantSweep game.Move
		var wantSweepCost int64
		sweepFound := false
		for v := 0; v < n; v++ {
			cands := refEnumerate(model, naive, v, obj)
			cur := naive.Cost(v, obj)

			wm, wok := refFirst(cands, cur)
			m, old, newCost, ok := fast.FirstImproving(v, obj)
			if ok != wok || old != cur || (ok && (m != wm.m || newCost != wm.cost)) {
				t.Fatalf("%s workers=%d obj=%v v=%d: FirstImproving (%v,%d,%d,%v), reference (%v,%d,%d,%v)",
					model.Name(), workers, obj, v, m, old, newCost, ok, wm.m, cur, wm.cost, wok)
			}
			if wok && !sweepFound {
				wantSweep, wantSweepCost, sweepFound = wm.m, wm.cost, true
			}

			wm, wok = refBest(model, cands, cur)
			m, old, newCost, ok = fast.BestMove(v, obj)
			if ok != wok || old != cur || (ok && (m != wm.m || newCost != wm.cost)) {
				t.Fatalf("%s workers=%d obj=%v v=%d: BestMove (%v,%d,%d,%v), reference (%v,%d,%d,%v)",
					model.Name(), workers, obj, v, m, old, newCost, ok, wm.m, cur, wm.cost, wok)
			}
		}

		m, _, newCost, ok := fast.FindImprovement(obj)
		if ok != sweepFound || (ok && (m != wantSweep || newCost != wantSweepCost)) {
			t.Fatalf("%s workers=%d obj=%v: FindImprovement (%v,%d,%v), reference (%v,%d,%v)",
				model.Name(), workers, obj, m, newCost, ok, wantSweep, wantSweepCost, sweepFound)
		}
	})
}

// FuzzBatchedSweep cross-checks the batched cross-agent certification
// sweep — shared endpoint rows, persisted in the session's RowCache
// across the driven steps, as lower-bound filters with exact verification
// for flagged candidates (exact add prices for greedy) — against the
// per-agent sweep on fuzzer-chosen graphs and configurations of the four
// batched models, driving a few improvement steps so near-equilibrium and
// mid-dynamics positions are both hit, and so the cache's selective
// invalidation is exercised by every applied move between sweeps. For the
// swap model the one-shot batched checker (with the deletion-criticality
// condition) is compared too.
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzBatchedSweep -fuzztime=30s ./internal/game
func FuzzBatchedSweep(f *testing.F) {
	f.Add(uint8(8), int64(1), uint8(0), uint8(1), false)
	f.Add(uint8(14), int64(5), uint8(1), uint8(3), true)
	f.Add(uint8(20), int64(9), uint8(2), uint8(4), false)
	f.Add(uint8(16), int64(13), uint8(3), uint8(2), true)
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, modelSel, workersRaw uint8, useMax bool) {
		g, rng := fuzzGraph(nRaw, seed)
		n := g.N()
		var model game.Model
		switch modelSel % 4 {
		case 0:
			model = game.Swap{}
		case 1:
			model = game.RandomInterests(n, 0.2+rng.Float64()*0.7, rng)
		case 2:
			model = game.Budget{K: 2 + rng.Intn(3)}
		default:
			model = game.Greedy{EdgeCost: int64(rng.Intn(4))}
		}
		workers := 1 + int(workersRaw)%8
		obj := game.Sum
		if useMax {
			obj = game.Max
		}

		gB, gS := g.Clone(), g.Clone()
		batched := model.New(gB, workers)
		seq := model.New(gS, workers)
		if _, ok := batched.(game.BatchedSweeper); !ok {
			t.Fatalf("%s: no batched sweep", model.Name())
		}
		for step := 0; step < 4; step++ {
			bm, bo, bn, bok := game.FindImprovementBatched(batched, obj)
			sm, so, sn, sok := seq.FindImprovement(obj)
			if bok != sok || (bok && (bm != sm || bo != so || bn != sn)) {
				t.Fatalf("%s step %d: batched (%v,%d,%d,%v), per-agent (%v,%d,%d,%v)",
					model.Name(), step, bm, bo, bn, bok, sm, so, sn, sok)
			}
			if !bok {
				break
			}
			batched.Apply(bm)
			seq.Apply(sm)
		}

		if _, isSwap := model.(game.Swap); isSwap && g.IsConnected() {
			for _, critical := range []bool{false, true} {
				sok, sviol, serr := game.CheckSwap(g, obj, workers, critical)
				bok, bviol, berr := game.CheckSwapBatched(g, obj, workers, critical)
				if sok != bok || (serr == nil) != (berr == nil) || (sviol == nil) != (bviol == nil) {
					t.Fatalf("critical=%v: checker verdict per-agent (%v,%v,%v), batched (%v,%v,%v)",
						critical, sok, sviol, serr, bok, bviol, berr)
				}
				if sviol != nil && *sviol != *bviol {
					t.Fatalf("critical=%v: witness per-agent %+v, batched %+v", critical, sviol, bviol)
				}
			}
		}
	})
}
