package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// permuteGraph relabels g by perm: edge uv becomes perm[u]–perm[v].
func permuteGraph(g *graph.Graph, perm []int) *graph.Graph {
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	return h
}

// permuteModel relabels a model's per-vertex configuration alongside the
// graph; label-free models pass through unchanged.
func permuteModel(m game.Model, perm []int) game.Model {
	ints, ok := m.(game.Interests)
	if !ok {
		return m
	}
	sets := ints.Sets()
	out := make([][]int32, len(sets))
	for v, set := range sets {
		ps := make([]int32, len(set))
		for i, u := range set {
			ps[i] = int32(perm[u])
		}
		out[perm[v]] = ps
	}
	return game.NewInterests(out)
}

// TestRelabelingInvariance is the metamorphic pin that no model's pricing
// depends on vertex labels: relabel the graph (and the model's per-vertex
// configuration) by a random permutation, and per-agent costs, best-move
// prices, social cost, and the certified-equilibrium verdict must all be
// permutation-equivariant. Witness moves and first-improvement picks may
// legitimately differ — enumeration order follows labels — so only
// label-free quantities are compared.
func TestRelabelingInvariance(t *testing.T) {
	for _, mc := range modelTable() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for trial := 0; trial < 4; trial++ {
				n := 6 + rng.Intn(10)
				g := randomConnected(rng, n, rng.Intn(5))
				model := mc.build(n, rng)
				perm := rng.Perm(n)
				gp := permuteGraph(g, perm)
				mp := permuteModel(model, perm)
				inst := model.New(g, 1)
				instP := mp.New(gp, 1)
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					for v := 0; v < n; v++ {
						if got, want := instP.Cost(perm[v], obj), inst.Cost(v, obj); got != want {
							t.Fatalf("trial %d obj=%v: Cost(π(%d)) = %d, Cost(%d) = %d",
								trial, obj, v, got, v, want)
						}
						_, po, pn, pok := instP.BestMove(perm[v], obj)
						_, o, nn, ok := inst.BestMove(v, obj)
						if pok != ok || po != o || pn != nn {
							t.Fatalf("trial %d obj=%v v=%d: BestMove permuted (%d,%d,%v), original (%d,%d,%v)",
								trial, obj, v, po, pn, pok, o, nn, ok)
						}
					}
					if got, want := instP.SocialCost(obj), inst.SocialCost(obj); got != want {
						t.Fatalf("trial %d obj=%v: SocialCost permuted %d, original %d", trial, obj, got, want)
					}
					ps, _, perr := instP.CheckStable(obj)
					s, _, err := inst.CheckStable(obj)
					if ps != s || (perr == nil) != (err == nil) {
						t.Fatalf("trial %d obj=%v: CheckStable permuted (%v,%v), original (%v,%v)",
							trial, obj, ps, perr, s, err)
					}
				}
			}
		})
	}
}

// TestUniformBudgetMatchesSwap pins the bounded-budget degeneration: with
// K ≥ n−1 ≥ deg(u) for every vertex no feasibility rule ever binds, and
// the budget model coincides with the basic swap game — same costs, same
// best-move prices, same stability verdicts (moves themselves may differ
// on cost ties because the two models break them differently). It mirrors
// the uniform-interests ≡ swap test.
func TestUniformBudgetMatchesSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(10)
		g := randomConnected(rng, n, rng.Intn(5))
		bud := game.Budget{K: n - 1}.New(g.Clone(), 1)
		swap := game.Swap{}.New(g.Clone(), 1)
		for _, obj := range []game.Objective{game.Sum, game.Max} {
			for v := 0; v < n; v++ {
				if got, want := bud.Cost(v, obj), swap.Cost(v, obj); got != want {
					t.Fatalf("trial %d obj=%v: Cost(%d) budget %d, swap %d", trial, obj, v, got, want)
				}
				_, bo, bn, bok := bud.BestMove(v, obj)
				_, so, sn, sok := swap.BestMove(v, obj)
				if bok != sok || bo != so || bn != sn {
					t.Fatalf("trial %d obj=%v v=%d: BestMove budget (%d,%d,%v), swap (%d,%d,%v)",
						trial, obj, v, bo, bn, bok, so, sn, sok)
				}
			}
			bs, _, _ := bud.CheckStable(obj)
			ss, _, _ := swap.CheckStable(obj)
			if bs != ss {
				t.Fatalf("trial %d obj=%v: stability budget %v, swap %v", trial, obj, bs, ss)
			}
		}
	}
}
