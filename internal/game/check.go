package game

import (
	"context"

	"repro/internal/graph"
)

// This file is the context-aware face of the certification machinery: the
// same sweeps as CheckSwap / Instance.CheckStable / the batched passes,
// with cooperative cancellation polled between per-agent scan units. A
// long-lived service (internal/serve) needs to abandon a half-done
// whole-graph sweep when the client's deadline expires; the per-agent scan
// is the natural poll granularity — each unit is one bounded bundle of BFS
// work, so cancellation latency is one agent's scan, not one whole sweep.
// All *Ctx functions return ctx.Err() on cancellation and are otherwise
// bit-identical to their context-free counterparts (which delegate here
// with a nil context).

// pollCtx reports the context's error, tolerating a nil context (never
// cancels). It is called between per-agent scan units.
func pollCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// CheckSwapCtx is CheckSwap with cooperative cancellation: ctx is polled
// between per-agent scans and its error returned on expiry. Verdict and
// witness are bit-identical to CheckSwap for any worker count.
func CheckSwapCtx(ctx context.Context, g *graph.Graph, obj Objective, workers int, deletionCritical bool) (bool, *Violation, error) {
	n := g.N()
	if n <= 1 {
		return true, nil, nil
	}
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	found, err := swapScan(ctx, g.Freeze(), obj, normWorkers(workers), deletionCritical)
	if err != nil {
		return false, nil, err
	}
	return found == nil, found, nil
}

// HasBatchedSweep reports whether the instance ships a batched cross-agent
// certification pass (BatchedSweeper). Callers use it to report whether a
// Batched request will actually batch or silently run per agent.
func HasBatchedSweep(inst Instance) bool {
	_, ok := inst.(BatchedSweeper)
	return ok
}

// FindImprovementCtx is the shared certification sweep (agents ascending,
// first improving move in the instance's enumeration order) with ctx
// polled between agents. The found result is identical to
// Instance.FindImprovement.
func FindImprovementCtx(ctx context.Context, inst Instance, obj Objective) (m Move, oldCost, newCost int64, ok bool, err error) {
	n := inst.Graph().N()
	for v := 0; v < n; v++ {
		if err := pollCtx(ctx); err != nil {
			return Move{}, 0, 0, false, err
		}
		if m, oldCost, newCost, ok := inst.FirstImproving(v, obj); ok {
			return m, oldCost, newCost, true, nil
		}
	}
	return Move{}, 0, 0, false, nil
}

// CheckStableCtx certifies the instance's position like
// Instance.CheckStable for the models whose stability is exactly the
// certification sweep (greedy, interests, budget, 2-neighborhood — the
// swap model's one-shot checks go through CheckSwapCtx instead, which adds
// the connectivity gate and deletion-criticality side condition). With
// batched set the sweep routes through the instance's batched cross-agent
// pass when it has one (bit-identical results; cancellation granularity is
// then the whole pass rather than one agent) and falls back to the
// per-agent ctx sweep otherwise.
func CheckStableCtx(ctx context.Context, inst Instance, obj Objective, batched bool) (bool, *Violation, error) {
	var (
		m                Move
		oldCost, newCost int64
		found            bool
	)
	if b, ok := inst.(BatchedSweeper); batched && ok {
		if err := pollCtx(ctx); err != nil {
			return false, nil, err
		}
		m, oldCost, newCost, found = b.FindImprovementBatched(obj)
	} else {
		var err error
		m, oldCost, newCost, found, err = FindImprovementCtx(ctx, inst, obj)
		if err != nil {
			return false, nil, err
		}
	}
	if !found {
		return true, nil, nil
	}
	return false, &Violation{
		Kind: SwapImproves, Move: m, Agent: m.V,
		OldCost: oldCost, NewCost: newCost,
	}, nil
}
