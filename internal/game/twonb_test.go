package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/game"
	"repro/internal/graph"
)

// The 2-neighborhood fast-vs-naive differential, sample-parity, and
// probe-pricing suites live in the model-generic tables in models_test.go;
// the tests here pin the objective itself.

func TestTwoNBKnownCosts(t *testing.T) {
	// cost(v) = n − 1 − |N₂(v)|.
	cases := []struct {
		name string
		g    *graph.Graph
		v    int
		want int64
	}{
		{"path endpoint", constructions.Path(6), 0, 3},     // sees 1, 2
		{"path interior", constructions.Path(6), 2, 1},     // sees 0,1,3,4
		{"star center", constructions.Star(9), 0, 0},       // sees everyone
		{"star leaf", constructions.Star(9), 1, 0},         // center at 1, leaves at 2
		{"cycle", constructions.Cycle(7), 3, 2},            // sees 4 of 6
		{"triangle", constructions.Complete(3), 0, 0},      // complete graph
		{"K5 vertex", constructions.Complete(5), 2, 0},     // all at distance 1
		{"long path middle", constructions.Path(11), 5, 6}, // sees 3,4,6,7
	}
	for _, c := range cases {
		for _, inst := range []game.Instance{
			game.TwoNeighborhood{}.New(c.g.Clone(), 1),
			game.TwoNeighborhood{}.Naive(c.g.Clone(), 1),
		} {
			if got := inst.Cost(c.v, game.Sum); got != c.want {
				t.Errorf("%s: Cost(%d) = %d, want %d", c.name, c.v, got, c.want)
			}
		}
	}
}

func TestTwoNBObjectiveIgnored(t *testing.T) {
	// The model has a single objective: Sum and Max price identically.
	rng := rand.New(rand.NewSource(121))
	g := randomConnected(rng, 14, 4)
	inst := game.TwoNeighborhood{}.New(g, 1)
	for v := 0; v < g.N(); v++ {
		if a, b := inst.Cost(v, game.Sum), inst.Cost(v, game.Max); a != b {
			t.Fatalf("Cost(%d) differs across objectives: %d vs %d", v, a, b)
		}
		ms, os, ns, oks := inst.BestMove(v, game.Sum)
		mm, om, nm, okm := inst.BestMove(v, game.Max)
		if oks != okm || ms != mm || os != om || ns != nm {
			t.Fatalf("BestMove(%d) differs across objectives", v)
		}
	}
}

func TestTwoNBImprovingMoveGrowsNeighborhood(t *testing.T) {
	// A path endpoint grows its 2-neighborhood by re-pointing into the
	// middle; the priced cost must realize on the live state.
	g := constructions.Path(8)
	inst := game.TwoNeighborhood{}.New(g, 1)
	m, old, newCost, ok := inst.BestMove(0, game.Sum)
	if !ok || newCost >= old {
		t.Fatalf("path endpoint found no improving 2-neighborhood swap: (%v,%d,%d,%v)", m, old, newCost, ok)
	}
	inst.Apply(m)
	if got := inst.Cost(0, game.Sum); got != newCost {
		t.Fatalf("move %v priced %d, realizes %d", m, newCost, got)
	}
}

func TestTwoNBToleratesDisconnection(t *testing.T) {
	// Vertices beyond distance two count the same at distance three or ∞,
	// so pricing and stability checks must work on disconnected graphs.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	fast := game.TwoNeighborhood{}.New(g.Clone(), 1)
	naive := game.TwoNeighborhood{}.Naive(g.Clone(), 1)
	for v := 0; v < 6; v++ {
		f, n := fast.Cost(v, game.Sum), naive.Cost(v, game.Sum)
		if f != n {
			t.Fatalf("Cost(%d) fast %d, naive %d", v, f, n)
		}
		if f != 3 { // each vertex sees its own 3-path only
			t.Fatalf("Cost(%d) = %d, want 3", v, f)
		}
	}
	fs, _, ferr := fast.CheckStable(game.Sum)
	ns, _, nerr := naive.CheckStable(game.Sum)
	if fs != ns || ferr != nil || nerr != nil {
		t.Fatalf("disconnected CheckStable: fast (%v,%v), naive (%v,%v)", fs, ferr, ns, nerr)
	}
}

func TestTwoNBApplyUndoRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	base := randomConnected(rng, 12, 4)
	g := base.Clone()
	inst := game.TwoNeighborhood{}.New(g, 1)
	var undos []func()
	probe := rand.New(rand.NewSource(2))
	for len(undos) < 6 {
		m, ok := inst.Sample(probe)
		if !ok || !g.HasEdge(m.V, m.Drop) {
			continue
		}
		undos = append(undos, inst.Apply(m))
	}
	for i := len(undos) - 1; i >= 0; i-- {
		undos[i]()
	}
	if !g.Equal(base) {
		t.Fatal("undo chain did not restore the graph")
	}
	requireSameScan(t, "2nb-after-undo", inst, game.TwoNeighborhood{}.Naive(base.Clone(), 1), game.Sum)
}
