package game

import (
	"repro/internal/pricing"
	"repro/internal/scan"
)

// bfsRow is the per-worker state the game layer's scans lend to the scan
// engine: one pooled (dist, queue) BFS buffer pair from the pricing
// engine's scratch pool.
type bfsRow struct {
	dist, queue []int32
}

// scratchState adapts the pricing engine's pooled scratch to the scan
// engine's per-worker state factory.
func scratchState(eng *pricing.Engine, n int) func() (bfsRow, func()) {
	return func() (bfsRow, func()) {
		dist, queue, release := eng.Scratch(n)
		return bfsRow{dist: dist, queue: queue}, release
	}
}

// scanAddMajor runs the add-major swap-candidate scan shared by the
// Interests and Budget models on the unified scan engine: candidate
// endpoints ascending over all vertices except the deviator (skipAdd
// filters endpoints before their BFS is paid), and for each endpoint the
// scan's dropped edges ascending, priced by the model-supplied thresholded
// reduction over the scan's dropped-edge row and the endpoint's G−v row.
// price must return the exact cost with below=true when the candidate
// prices strictly below the given threshold, and may abort early
// (returning below=false) as soon as the partial reduction proves it
// cannot — dense interest sets pay only as much of their Θ(|I(v)|)
// reduction as each comparison needs. The winner is the minimum
// (cost, add, dropIdx) strictly below cur — the scan engine's
// ByEnumeration order, the enumeration-first tie-break of the sequential
// loop these models used to run — or, when firstOnly, the first improving
// candidate in enumeration order. Results are bit-identical to the
// workers == 1 scan for any worker count (the engine's merge contract).
func scanAddMajor(eng *pricing.Engine, view pricing.Snapshot, ps *pricing.Scan,
	workers int, skipAdd func(add int) bool,
	price func(dropIdx int, dw []int32, threshold int64) (int64, bool),
	cur int64, firstOnly bool) (scan.Cand, bool) {
	v := ps.V()
	drops := ps.Drops()
	if len(drops) == 0 {
		return scan.Cand{}, false
	}
	spec := scan.Spec{
		Workers:   workers,
		N:         view.N(),
		Threshold: cur,
		Order:     scan.ByEnumeration,
		Skip: func(add int) bool {
			return add == v || (skipAdd != nil && skipAdd(add))
		},
		Cancel: ps.CancelHook(),
	}
	pricer := func(ws bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		view.BFSSkipVertex(add, v, ws.dist, ws.queue)
		for i := range drops {
			if c, below := price(i, ws.dist, threshold()); below {
				if !yield(i, c) {
					return
				}
			}
		}
	}
	state := scratchState(eng, view.N())
	if firstOnly {
		return scan.First(spec, state, pricer)
	}
	return scan.Best(spec, state, pricer)
}
