package game

import (
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/pricing"
)

// swapCand is one candidate of the add-major swap enumeration: the new
// endpoint, the index of the dropped edge in the scan's ascending drop
// list, and the deviator's priced post-move cost.
type swapCand struct {
	add     int
	dropIdx int
	cost    int64
}

// scanAddMajor runs the add-major swap-candidate scan shared by the
// Interests and Budget models: candidate endpoints ascending over all
// vertices except the deviator (skipAdd filters endpoints before their BFS
// is paid), and for each endpoint the scan's dropped edges ascending,
// priced by the model-supplied thresholded reduction over the scan's
// dropped-edge row and the endpoint's G−v row. price must return the exact
// cost with below=true when the candidate prices strictly below the given
// threshold, and may abort early (returning below=false) as soon as the
// partial reduction proves it cannot — dense interest sets pay only as
// much of their Θ(|I(v)|) reduction as each comparison needs. The winner
// is the minimum (cost, add, dropIdx) strictly below cur — the
// enumeration-first tie-break of the sequential loop these models used to
// run — or, when firstOnly, the first improving candidate in enumeration
// order.
//
// Candidate endpoints are sharded across workers the way swapScan shards
// inside a vertex: each worker owns pooled BFS scratch, first-improvement
// chunks past an already-found endpoint are pruned, and both merge orders
// are total, so the result is bit-identical to the workers == 1 scan for
// any worker count.
func scanAddMajor(eng *pricing.Engine, view pricing.Snapshot, scan *pricing.Scan,
	workers int, skipAdd func(add int) bool,
	price func(dropIdx int, dw []int32, threshold int64) (int64, bool),
	cur int64, firstOnly bool) (swapCand, bool) {
	v := scan.V()
	n := view.N()
	drops := scan.Drops()
	if len(drops) == 0 {
		return swapCand{}, false
	}
	var mu sync.Mutex
	var best swapCand
	found := false

	if firstOnly {
		// Smallest improving endpoint found so far; later chunks are pruned
		// (the same early-exit structure as pricing.Scan.FirstImproving).
		var bestAdd atomic.Int64
		bestAdd.Store(int64(n))
		par.ForChunked(workers, n, func(lo, hi int) {
			if int64(lo) > bestAdd.Load() {
				return
			}
			dw, qw, release := eng.Scratch(n)
			defer release()
			for add := lo; add < hi; add++ {
				if int64(add) > bestAdd.Load() {
					return
				}
				if add == v || (skipAdd != nil && skipAdd(add)) {
					continue
				}
				view.BFSSkipVertex(add, v, dw, qw)
				for i := range drops {
					c, below := price(i, dw, cur)
					if !below {
						continue
					}
					mu.Lock()
					if !found || add < best.add {
						best, found = swapCand{add: add, dropIdx: i, cost: c}, true
						for {
							seen := bestAdd.Load()
							if int64(add) >= seen || bestAdd.CompareAndSwap(seen, int64(add)) {
								break
							}
						}
					}
					mu.Unlock()
					// Drops ascend, so the first improving drop of this
					// endpoint is already the enumeration-first one.
					break
				}
			}
		})
		return best, found
	}

	par.ForChunked(workers, n, func(lo, hi int) {
		dw, qw, release := eng.Scratch(n)
		defer release()
		var local swapCand
		haveLocal := false
		for add := lo; add < hi; add++ {
			if add == v || (skipAdd != nil && skipAdd(add)) {
				continue
			}
			view.BFSSkipVertex(add, v, dw, qw)
			for i := range drops {
				// The chunk's running best tightens the abort threshold;
				// within a chunk the enumeration ascends, so the strict <
				// keeps the enumeration-first candidate on cost ties.
				threshold := cur
				if haveLocal && local.cost < threshold {
					threshold = local.cost
				}
				if c, below := price(i, dw, threshold); below {
					local, haveLocal = swapCand{add: add, dropIdx: i, cost: c}, true
				}
			}
		}
		if haveLocal {
			mu.Lock()
			if !found || local.less(best) {
				best, found = local, true
			}
			mu.Unlock()
		}
	})
	return best, found
}

// less orders candidates by (cost, add, dropIdx) — cost first, enumeration
// position on ties — the total order the sharded best-move merge uses.
func (c swapCand) less(o swapCand) bool {
	if c.cost != o.cost {
		return c.cost < o.cost
	}
	if c.add != o.add {
		return c.add < o.add
	}
	return c.dropIdx < o.dropIdx
}
