// Package game is the deviation-model layer of the repository: it
// abstracts *which single move an agent may play* away from the engines
// that price, schedule, and certify moves. The basic network creation game
// of the source paper has exactly one deviation rule — the single-edge
// swap, priced under SUM or MAX usage cost — and that rule used to be
// hard-wired through internal/core, internal/dynamics, internal/nash, and
// the CLI. Related work studies the same machinery under richer deviation
// sets: greedy add/delete/swap dynamics (Kawald & Lenzner, "On Dynamics in
// Selfish Network Creation") and per-vertex communication interests
// (Cord-Landwehr et al., "Basic Network Creation Games with Communication
// Interests"). A Model packages one such rule; every engine above this
// package is generic in the Model.
//
// A Model is a factory for Instances. An Instance binds the rule to a
// concrete position: it owns candidate-move enumeration and incremental
// pricing over a pricing.Session (enumerate a deviator's moves, price a
// move from patched BFS rows, apply/undo it on the live snapshot). Each
// model ships two instance flavors:
//
//   - New: the fast path — one incremental pricing session per trajectory,
//     O(deg) adjacency patches per applied move, engine-sharded scans; and
//   - Naive: the differential-test oracle — re-freeze or apply-measure-
//     revert pricing on the map-backed graph, no shared state.
//
// Both flavors implement Instance, enumerate candidates in the same
// deterministic order, and consume randomness identically, so a dynamics
// trajectory driven through a fast instance must reproduce the naive
// instance move-for-move; internal/dynamics pins that for every model.
//
// The five shipped models are Swap (the paper's game — bit-identical to
// the pre-refactor swap-only stack), Greedy, Interests, Budget (bounded
// per-vertex edge budgets, Ehsani et al.), and TwoNeighborhood
// (2-neighborhood maximization, de la Haye et al.). Further variants plug
// in here.
package game

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pricing"
)

// Objective selects which usage cost the agents minimize.
type Objective int

const (
	// Sum is the local-average-distance version: cost(v) = Σ_u d(v,u).
	Sum Objective = iota
	// Max is the local-diameter version: cost(v) = max_u d(v,u).
	Max
)

// String returns "sum" or "max".
func (o Objective) String() string {
	switch o {
	case Sum:
		return "sum"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// pobj maps the package's objective onto the pricing engine's.
func pobj(obj Objective) pricing.Objective {
	if obj == Max {
		return pricing.Max
	}
	return pricing.Sum
}

// InfCost is the usage cost of a disconnected position. Any move that
// disconnects the agent from a vertex it cares about prices to InfCost and
// is therefore never improving.
const InfCost = int64(1) << 60

// ErrDisconnected is returned by checkers that require connected input.
var ErrDisconnected = errors.New("game: graph must be connected")

// Kind labels a move's edge operation. The zero value is KindSwap, so the
// basic game's Move{V, Drop, Add} literals keep meaning a swap.
type Kind int8

const (
	// KindSwap replaces edge V–Drop by V–Add (the basic game's only move).
	KindSwap Kind = iota
	// KindAdd inserts edge V–Add (greedy model).
	KindAdd
	// KindDelete removes edge V–Drop (greedy model).
	KindDelete
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSwap:
		return "swap"
	case KindAdd:
		return "add"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Move is a single-edge move performed by agent V. For KindSwap the edge
// V–Drop is replaced by V–Add (Add == Drop encodes a no-op, Add an
// existing neighbor a net deletion); KindAdd uses only Add, KindDelete
// only Drop.
type Move struct {
	V    int  // the moving agent
	Drop int  // current neighbor losing its edge to V (swap, delete)
	Add  int  // new endpoint of V's edge (swap, add)
	Kind Kind // edge operation; zero value is KindSwap
}

// String formats swaps as "v: drop→add" (the historical rendering), adds
// as "v: +add", deletions as "v: -drop".
func (m Move) String() string {
	switch m.Kind {
	case KindAdd:
		return fmt.Sprintf("%d: +%d", m.V, m.Add)
	case KindDelete:
		return fmt.Sprintf("%d: -%d", m.V, m.Drop)
	default:
		return fmt.Sprintf("%d: %d→%d", m.V, m.Drop, m.Add)
	}
}

// ViolationKind classifies why a graph fails an equilibrium or stability
// predicate.
type ViolationKind int

const (
	// SwapImproves: the recorded Move strictly decreases the agent's cost
	// (despite the name, the move may be any kind under non-swap models).
	SwapImproves ViolationKind = iota
	// DeletionSafe: deleting the recorded edge does not strictly increase
	// the endpoint's local diameter (violates the max-equilibrium and
	// deletion-critical conditions).
	DeletionSafe
	// InsertionHelps: inserting the recorded edge strictly decreases the
	// endpoint's local diameter (violates insertion stability).
	InsertionHelps
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case SwapImproves:
		return "swap-improves"
	case DeletionSafe:
		return "deletion-safe"
	case InsertionHelps:
		return "insertion-helps"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation is a witness that a predicate fails: either an improving move
// (SwapImproves, see Move) or an offending edge with the affected agent.
type Violation struct {
	Kind    ViolationKind
	Move    Move       // valid when Kind == SwapImproves
	Edge    graph.Edge // valid for DeletionSafe / InsertionHelps
	Agent   int        // the agent whose cost witnesses the violation
	OldCost int64      // agent's cost before the change
	NewCost int64      // agent's cost after the change
}

// String renders the witness with costs.
func (v *Violation) String() string {
	switch v.Kind {
	case SwapImproves:
		return fmt.Sprintf("move %v improves cost %d→%d", v.Move, v.OldCost, v.NewCost)
	case DeletionSafe:
		return fmt.Sprintf("deleting %v leaves agent %d cost %d→%d (no increase)",
			v.Edge, v.Agent, v.OldCost, v.NewCost)
	case InsertionHelps:
		return fmt.Sprintf("inserting %v improves agent %d cost %d→%d",
			v.Edge, v.Agent, v.OldCost, v.NewCost)
	default:
		return "unknown violation"
	}
}

// Model is one deviation rule of a network creation game: it knows which
// single moves an agent may play and how to price them. Models are small
// immutable values (safe to copy); all position state lives in Instances.
type Model interface {
	// Name returns the CLI-facing model name ("swap", "greedy", ...).
	Name() string
	// New binds the model to g with an incremental pricing session:
	// applied moves patch the live CSR snapshot in O(deg), scans shard
	// across the given workers (<= 0 means all cores). g stays the
	// authoritative graph; route every move through Instance.Apply.
	New(g *graph.Graph, workers int) Instance
	// Naive binds the model to g with oracle pricing: every probe pays a
	// re-freeze or an apply-measure-revert on the map graph. Trajectories
	// driven through a Naive instance are the differential-test reference
	// for the fast instance.
	Naive(g *graph.Graph, workers int) Instance
}

// Instance is a model bound to a live position. It is single-writer:
// Apply/undo must not race with pricing calls; the pricing calls
// themselves may shard internally across the instance's workers.
type Instance interface {
	// Graph returns the authoritative mutable graph. Mutating it directly
	// desynchronizes fast instances; route moves through Apply.
	Graph() *graph.Graph
	// Cost returns agent v's cost under the model (InfCost when v is
	// disconnected from a vertex it cares about).
	Cost(v int, obj Objective) int64
	// SocialCost returns the sum of all agents' costs, InfCost-saturated.
	SocialCost(obj Objective) int64
	// BestMove returns v's cost-minimizing move with a deterministic
	// tie-break, v's current cost, and whether the move strictly improves.
	BestMove(v int, obj Objective) (m Move, oldCost, newCost int64, ok bool)
	// FirstImproving returns v's first strictly improving move in the
	// model's deterministic enumeration order.
	FirstImproving(v int, obj Objective) (m Move, oldCost, newCost int64, ok bool)
	// PriceMove prices a single candidate move without mutating anything.
	PriceMove(m Move, obj Objective) int64
	// Sample draws a random candidate move. It must consume rng
	// identically across the fast and naive instances of a model, and may
	// report ok=false (a wasted probe) when the draw is infeasible.
	Sample(rng *rand.Rand) (Move, bool)
	// Apply performs m on the position (graph and live snapshot),
	// returning a function that undoes it (LIFO order). Infeasible moves
	// panic.
	Apply(m Move) (undo func())
	// FindImprovement scans agents in ascending order for the first
	// improving move — the certification sweep. ok is false exactly when
	// the position is an equilibrium of the model under obj.
	FindImprovement(obj Objective) (m Move, oldCost, newCost int64, ok bool)
	// CheckStable reports whether no single move strictly improves any
	// agent, with a witness violation on failure.
	CheckStable(obj Objective) (bool, *Violation, error)
}

// normWorkers resolves a worker-count option.
func normWorkers(workers int) int {
	if workers <= 0 {
		return par.DefaultWorkers
	}
	return workers
}

// Cost returns agent v's usage cost on the map-backed graph: the distance
// sum (Sum) or eccentricity (Max), InfCost when disconnected. It is the
// oracle-side counterpart of the session pricers.
func Cost(g *graph.Graph, v int, obj Objective) int64 {
	if obj == Sum {
		sum, reached := g.SumOfDistances(v)
		if reached != g.N() {
			return InfCost
		}
		return sum
	}
	ecc, ok := g.Eccentricity(v)
	if !ok {
		return InfCost
	}
	return int64(ecc)
}

// SocialCost returns the sum over all agents of their usage cost, or
// InfCost when g is disconnected.
func SocialCost(g *graph.Graph, obj Objective) int64 {
	var total int64
	for v := 0; v < g.N(); v++ {
		c := Cost(g, v, obj)
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

// Evaluate prices a single move of any kind by applying it to g, measuring
// the agent's usage cost, and reverting — the slow-but-simple reference
// the patch-based pricers are validated against. Degenerate moves (swap
// no-ops, swaps onto existing edges, deletes of absent edges) follow the
// game semantics of Apply-side handling: only the edges actually changed
// are rolled back.
func Evaluate(g *graph.Graph, m Move, obj Objective) int64 {
	undo := applyLoose(g, m)
	cost := Cost(g, m.V, obj)
	undo()
	return cost
}

// applyLoose applies m to g tolerating degenerate moves, returning the
// exact rollback.
func applyLoose(g *graph.Graph, m Move) (undo func()) {
	var removed, added bool
	switch m.Kind {
	case KindAdd:
		added = g.AddEdge(m.V, m.Add)
	case KindDelete:
		removed = g.RemoveEdge(m.V, m.Drop)
	default:
		removed = g.RemoveEdge(m.V, m.Drop)
		added = g.AddEdge(m.V, m.Add)
	}
	return func() {
		if added {
			g.RemoveEdge(m.V, m.Add)
		}
		if removed {
			g.AddEdge(m.V, m.Drop)
		}
	}
}

// ApplyToGraph applies m to the map-backed graph, panicking on infeasible
// moves (swap/delete of an absent edge), and returns the undo. It is the
// graph half of every fast instance's Apply and the whole of the naive
// instances'.
func ApplyToGraph(g *graph.Graph, m Move) (undo func()) {
	switch m.Kind {
	case KindAdd:
		added := g.AddEdge(m.V, m.Add)
		return func() {
			if added {
				g.RemoveEdge(m.V, m.Add)
			}
		}
	case KindDelete:
		if !g.RemoveEdge(m.V, m.Drop) {
			panic("game: ApplyToGraph delete edge missing")
		}
		return func() { g.AddEdge(m.V, m.Drop) }
	default:
		if !g.HasEdge(m.V, m.Drop) {
			panic("game: ApplyToGraph drop edge missing")
		}
		g.RemoveEdge(m.V, m.Drop)
		added := g.AddEdge(m.V, m.Add)
		return func() {
			if added {
				g.RemoveEdge(m.V, m.Add)
			}
			g.AddEdge(m.V, m.Drop)
		}
	}
}

// findImprovement is the shared certification sweep: agents ascending,
// first improving move in the instance's enumeration order.
func findImprovement(inst Instance, obj Objective) (Move, int64, int64, bool) {
	n := inst.Graph().N()
	for v := 0; v < n; v++ {
		if m, oldCost, newCost, ok := inst.FirstImproving(v, obj); ok {
			return m, oldCost, newCost, true
		}
	}
	return Move{}, 0, 0, false
}

// sweepStable is the shared equilibrium check for models without extra
// side conditions: stable iff the certification sweep finds nothing.
func sweepStable(inst Instance, obj Objective) (bool, *Violation, error) {
	m, oldCost, newCost, ok := findImprovement(inst, obj)
	if !ok {
		return true, nil, nil
	}
	return false, &Violation{
		Kind: SwapImproves, Move: m, Agent: m.V,
		OldCost: oldCost, NewCost: newCost,
	}, nil
}

// RoundRobin drives round-robin best-response sweeps over n agents: step
// is invoked per agent and reports whether it applied a move; the loop
// ends when a full sweep applies no move (converged) or after maxMoves
// applied moves. It is the shared convergence loop of the sweeping
// dynamics policies (internal/dynamics) and the greedy α-game
// (internal/nash).
func RoundRobin(n, maxMoves int, step func(v int) (moved bool)) (moves, sweeps int, converged bool) {
	for moves < maxMoves {
		sweeps++
		movedThisSweep := false
		for v := 0; v < n && moves < maxMoves; v++ {
			if step(v) {
				moves++
				movedThisSweep = true
			}
		}
		if !movedThisSweep {
			return moves, sweeps, true
		}
	}
	return moves, sweeps, false
}
