package game

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pricing"
)

// DefaultBudget is the CLI default for the bounded-budget model's uniform
// per-vertex edge budget.
const DefaultBudget = 3

// Budget is the bounded-budget variant of the basic game, after Ehsani et
// al. ("On a Bounded Budget Network Creation Game"): agents still play the
// single-edge swap priced under SUM or MAX usage cost, but every vertex can
// maintain at most K incident edges, so a deviation may only re-point an
// edge onto a vertex with spare budget. Concretely, a candidate v: drop→add
// that would create a new edge v–add is feasible only when deg(add) < K —
// the receiving endpoint must have room for one more link. The mover's own
// budget is never at issue (a swap keeps deg(v) unchanged), and degenerate
// candidates (add == drop no-ops, adds onto existing neighbors, which price
// as pure deletions) create no edge and stay feasible, exactly as in the
// swap model.
//
// Two structural consequences the tests and experiment E18 pin down:
//
//   - deg(u) ≤ max(deg₀(u), K) is invariant along any trajectory — a vertex
//     at or over budget never receives another edge, so vertices that start
//     over budget can only shed edges; and
//   - with K ≥ n−1 no constraint ever binds and the model coincides with
//     Swap (same costs, same improving-move prices, same verdicts), the
//     bounded-budget analog of the uniform-interests degeneration.
//
// Small budgets forbid the paper's low-diameter equilibria (the sum star
// needs a hub of degree n−1), so equilibrium diameter grows as K shrinks —
// the budget/diameter trade-off of the bounded-budget literature.
type Budget struct {
	// K is the uniform per-vertex budget (maximum maintained edges). Values
	// < 1 are rejected by New/Naive.
	K int
}

// Name returns "budget".
func (Budget) Name() string { return "budget" }

// validate panics on a non-positive budget (every edge needs two units of
// budget somewhere, so K < 1 admits no graphs at all).
func (m Budget) validate() {
	if m.K < 1 {
		panic(fmt.Sprintf("game: Budget.K = %d, need K >= 1", m.K))
	}
}

// New starts an incremental budget session on g.
func (m Budget) New(g *graph.Graph, workers int) Instance {
	m.validate()
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	return &budgetSession{g: g, ps: eng.NewSession(g), eng: eng, workers: workers, k: m.K}
}

// Naive returns the re-freeze oracle instance: scans price over a fresh
// frozen snapshot per call, probes by apply-measure-revert.
func (m Budget) Naive(g *graph.Graph, workers int) Instance {
	m.validate()
	return &budgetNaive{g: g, workers: normWorkers(workers), k: m.K}
}

// budgetFresh reports whether the candidate endpoint add would receive a
// new edge from v — the only case the budget constrains.
func budgetFresh(v, add int, hasEdge func(u, v int) bool) bool {
	return add != v && !hasEdge(v, add)
}

// ---------------------------------------------------------------------------
// Fast instance.

// budgetSession prices budget-feasible swaps over a live pricing session.
// The enumeration is the basic game's add-major order with over-budget
// fresh endpoints filtered out before their BFS is paid; per-agent scans
// are sharded across the session's workers with the deterministic
// enumeration-first merge (scanAddMajor), so witnesses are identical for
// any worker count.
type budgetSession struct {
	g       *graph.Graph
	ps      *pricing.Session
	eng     *pricing.Engine
	workers int
	k       int
}

func (s *budgetSession) Graph() *graph.Graph { return s.g }

// SetScanCancel installs a cooperative cancel hook on the session's
// per-agent scans (see ScanCanceller).
func (s *budgetSession) SetScanCancel(cancel func() bool) { s.ps.SetCancel(cancel) }

func (s *budgetSession) Cost(v int, obj Objective) int64 {
	dist, queue, release := s.eng.Scratch(s.ps.N())
	defer release()
	s.ps.View().BFSInto(v, dist, queue)
	return pricing.Usage(dist, pobj(obj))
}

func (s *budgetSession) SocialCost(obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dist, queue, release := s.eng.Scratch(n)
	defer release()
	var total int64
	for v := 0; v < n; v++ {
		view.BFSInto(v, dist, queue)
		c := pricing.Usage(dist, pobj(obj))
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

func (s *budgetSession) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *budgetSession) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

func (s *budgetSession) scanMoves(v int, obj Objective, firstOnly bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	scan := s.ps.NewScan(v)
	defer scan.Close()
	cur := scan.CurrentUsage(po)
	// Skip infeasible fresh targets (no budget room) and adds onto existing
	// neighbors — the latter are pure deletions, which never price strictly
	// below cur under a distance cost (the naive oracle keeps enumerating
	// everything, pinning that the skip is outcome-preserving).
	cand, found := scanAddMajor(s.eng, view, scan, s.workers,
		func(add int) bool {
			return view.HasEdge(v, add) || view.Degree(add) >= s.k
		},
		func(i int, dw []int32, threshold int64) (int64, bool) {
			return pricing.PatchedBelow(scan.DropRow(i), dw, po, threshold)
		},
		cur, firstOnly)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(scan.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

// PriceMove prices a single feasible candidate from two patched BFS rows
// over the live snapshot; it equals Evaluate(g, m, obj) on the synced
// graph. Feasibility is the caller's contract (Sample never emits an
// over-budget move).
func (s *budgetSession) PriceMove(m Move, obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dv, qv, relV := s.eng.Scratch(n)
	defer relV()
	dw, qw, relW := s.eng.Scratch(n)
	defer relW()
	view.BFSSkipEdge(m.V, m.V, m.Drop, dv, qv)
	view.BFSSkipVertex(m.Add, m.V, dw, qw)
	return pricing.Patched(dv, dw, pobj(obj))
}

// Sample draws the swap model's probe and rejects budget-infeasible draws
// as wasted probes; the rng consumption is identical to the naive instance
// (and to the plain swap model).
func (s *budgetSession) Sample(rng *rand.Rand) (Move, bool) {
	view := s.ps.View()
	m, ok := sampleSwap(rng, view.N(), view.Degree, func(v, i int) int {
		return int(view.Neighbors(v)[i])
	})
	if !ok || (budgetFresh(m.V, m.Add, view.HasEdge) && view.Degree(m.Add) >= s.k) {
		return Move{}, false
	}
	return m, true
}

// Apply performs the swap on both structures, panicking on over-budget
// targets so a desynchronized caller cannot silently break the degree
// invariant.
func (s *budgetSession) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: budget Apply: move kind " + m.Kind.String())
	}
	if budgetFresh(m.V, m.Add, s.g.HasEdge) && s.g.Degree(m.Add) >= s.k {
		panic(fmt.Sprintf("game: budget Apply: target %d already at budget %d", m.Add, s.k))
	}
	gundo := ApplyToGraph(s.g, m)
	s.ps.ApplySwap(m.V, m.Drop, m.Add)
	return func() {
		s.ps.Undo()
		gundo()
	}
}

func (s *budgetSession) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *budgetSession) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}

// ---------------------------------------------------------------------------
// Naive instance.

// budgetNaive is the re-freeze oracle: every scan prices over a fresh
// frozen snapshot (the pre-session lifecycle), probes pay apply-measure-
// revert on the map graph.
type budgetNaive struct {
	g       *graph.Graph
	workers int
	k       int
}

func (s *budgetNaive) Graph() *graph.Graph { return s.g }

func (s *budgetNaive) Cost(v int, obj Objective) int64 { return Cost(s.g, v, obj) }

func (s *budgetNaive) SocialCost(obj Objective) int64 { return SocialCost(s.g, obj) }

func (s *budgetNaive) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *budgetNaive) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

func (s *budgetNaive) scanMoves(v int, obj Objective, firstOnly bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	f := s.g.Freeze()
	eng := pricing.Shared(s.workers)
	scan := eng.NewScan(f, v)
	defer scan.Close()
	cur := scan.CurrentUsage(po)
	// The oracle skips only what feasibility demands: adjacent adds stay
	// enumerated (they can never win), pinning the fast instance's
	// deletion-skip as outcome-preserving.
	cand, found := scanAddMajor(eng, f, scan, s.workers,
		func(add int) bool {
			return budgetFresh(v, add, f.HasEdge) && f.Degree(add) >= s.k
		},
		func(i int, dw []int32, threshold int64) (int64, bool) {
			c := pricing.Patched(scan.DropRow(i), dw, po)
			return c, c < threshold
		},
		cur, firstOnly)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(scan.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

func (s *budgetNaive) PriceMove(m Move, obj Objective) int64 { return Evaluate(s.g, m, obj) }

func (s *budgetNaive) Sample(rng *rand.Rand) (Move, bool) {
	m, ok := sampleSwap(rng, s.g.N(), s.g.Degree, func(v, i int) int {
		return s.g.Neighbors(v)[i]
	})
	if !ok || (budgetFresh(m.V, m.Add, s.g.HasEdge) && s.g.Degree(m.Add) >= s.k) {
		return Move{}, false
	}
	return m, true
}

func (s *budgetNaive) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: budget naive Apply: move kind " + m.Kind.String())
	}
	if budgetFresh(m.V, m.Add, s.g.HasEdge) && s.g.Degree(m.Add) >= s.k {
		panic(fmt.Sprintf("game: budget naive Apply: target %d already at budget %d", m.Add, s.k))
	}
	return ApplyToGraph(s.g, m)
}

func (s *budgetNaive) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *budgetNaive) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}
