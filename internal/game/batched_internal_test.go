package game

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/graph"
)

// internalFuzzGraph mirrors scanfuzz_test.go's fuzzGraph for the
// in-package tests: a random tree plus chords, connected by construction.
func internalFuzzGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < n/3; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// batchedReuseSweeper is the in-package seam the cache-vs-fresh
// differential and the row-reuse ablation benchmarks drive: the same
// batched sweep with the shared rows either read through the session's
// RowCache or rebuilt fresh per call.
type batchedReuseSweeper interface {
	Instance
	findImprovementBatched(obj Objective, reuse bool) (Move, int64, int64, bool)
}

// TestBatchedSweepCacheMatchesFresh pins the RowCache's end-to-end
// contract: a full batched sweep whose shared rows come from the
// invalidation-maintained cache is bit-identical to the same sweep over
// rows rebuilt fresh — across a trajectory of applied moves, so the
// cache's selective invalidation (not a full rebuild) is what keeps the
// rows honest.
func TestBatchedSweepCacheMatchesFresh(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := internalFuzzGraph(24, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		insts := map[string]batchedReuseSweeper{
			"swap":      Swap{}.New(g.Clone(), 2).(*SwapSession),
			"greedy":    Greedy{EdgeCost: 2}.New(g.Clone(), 2).(*greedySession),
			"budget":    Budget{K: 3}.New(g.Clone(), 2).(*budgetSession),
			"interests": RandomInterests(g.N(), 0.5, rng).New(g.Clone(), 2).(*interestsSession),
		}
		for name, inst := range insts {
			for _, obj := range []Objective{Sum, Max} {
				for step := 0; step < 6; step++ {
					fm, fo, fn, fok := inst.findImprovementBatched(obj, false)
					cm, co, cn, cok := inst.findImprovementBatched(obj, true)
					if fok != cok || (fok && (fm != cm || fo != co || fn != cn)) {
						t.Fatalf("seed %d %s/%v step %d: fresh (%v,%d,%d,%v), cached (%v,%d,%d,%v)",
							seed, name, obj, step, fm, fo, fn, fok, cm, co, cn, cok)
					}
					if !fok {
						break
					}
					inst.Apply(fm)
				}
			}
		}
	}
}

// TestBatchedSweepRowReusePersists pins that the cache actually persists
// across sweeps: repeated sweeps of an unchanged position pay the n row
// BFS exactly once, and a sweep after one applied move recomputes only
// the invalidated rows, never more than n.
func TestBatchedSweepRowReusePersists(t *testing.T) {
	g := constructions.NewTorus(8).Graph() // max-stable: full sweeps
	n := g.N()
	s := Swap{}.New(g, 1).(*SwapSession)
	for i := 0; i < 3; i++ {
		if _, _, _, ok := s.FindImprovementBatched(Max); ok {
			t.Fatal("torus must be max-stable")
		}
	}
	cache := s.ps.RowCache()
	if got := cache.Recomputed(); got != uint64(n) {
		t.Fatalf("3 sweeps of an unchanged position recomputed %d rows, want exactly n=%d", got, n)
	}
	// One applied move (and its undo) invalidates a subset of rows; the
	// next sweep recomputes only those.
	v := 0
	drop := int(s.ps.View().Neighbors(v)[0])
	add := n / 2
	if s.ps.View().HasEdge(v, add) {
		t.Fatalf("bad test setup: %d-%d already an edge", v, add)
	}
	s.Apply(Move{V: v, Drop: drop, Add: add})()
	before := cache.Recomputed()
	s.FindImprovementBatched(Max)
	if delta := cache.Recomputed() - before; delta > uint64(n) {
		t.Fatalf("sweep after apply+undo recomputed %d rows, want ≤ n=%d", delta, n)
	}
}

// benchCertifySweeps times the random-improving certification cadence:
// the trajectory is first driven to equilibrium (outside the timer, with
// the same reuse setting so both variants arrive at bit-identical state —
// TestBatchedSweepCacheMatchesFresh), then every timed iteration is one
// full certification sweep of the converged position, exactly what
// repeated service rechecks and post-patience certifications pay. With
// reuse the shared rows persist in the RowCache (zero row BFS per sweep);
// without it every sweep rebuilds all n rows (the pre-cache behavior).
func benchCertifySweeps(b *testing.B, mk func() *graph.Graph, obj Objective, reuse bool) {
	inst := Swap{}.New(mk(), 1).(*SwapSession)
	for moves := 0; ; moves++ {
		if moves > 10_000 {
			b.Fatal("trajectory did not converge")
		}
		m, _, _, ok := inst.findImprovementBatched(obj, reuse)
		if !ok {
			break
		}
		inst.Apply(m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := inst.findImprovementBatched(obj, reuse); ok {
			b.Fatal("equilibrium regressed")
		}
	}
}

func BenchmarkCertifySweepsRowReusePath128(b *testing.B) {
	benchCertifySweeps(b, func() *graph.Graph { return constructions.Path(128) }, Sum, true)
}

func BenchmarkCertifySweepsFreshRowsPath128(b *testing.B) {
	benchCertifySweeps(b, func() *graph.Graph { return constructions.Path(128) }, Sum, false)
}

func BenchmarkCertifySweepsRowReuseTorus256(b *testing.B) {
	benchCertifySweeps(b, func() *graph.Graph { return constructions.NewTorus(8).Graph() }, Max, true)
}

func BenchmarkCertifySweepsFreshRowsTorus256(b *testing.B) {
	benchCertifySweeps(b, func() *graph.Graph { return constructions.NewTorus(8).Graph() }, Max, false)
}

// benchSweepRows isolates the row-provisioning step the cache replaces:
// per iteration, provision the full shared-row set for one certification
// sweep — through the RowCache (recomputes only what the last mutation
// invalidated; nothing, here, at a fixed position) or as a per-sweep
// batchRows rebuild (n BFS plus an n² arena every time). This is the
// mechanism the end-to-end sweep benches dilute with scan-pricing cost.
func benchSweepRows(b *testing.B, g *graph.Graph, reuse bool) {
	s := Swap{}.New(g, 1).(*SwapSession)
	n := g.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := sweepRows(s.eng, s.ps, 1, reuse, nil)
		if rows(0)[0] != 0 {
			b.Fatal("bad row")
		}
		_ = n
	}
}

func BenchmarkSweepRowsReusePath128(b *testing.B) {
	benchSweepRows(b, constructions.Path(128), true)
}

func BenchmarkSweepRowsFreshPath128(b *testing.B) {
	benchSweepRows(b, constructions.Path(128), false)
}

func BenchmarkSweepRowsReuseTorus256(b *testing.B) {
	benchSweepRows(b, constructions.NewTorus(8).Graph(), true)
}

func BenchmarkSweepRowsFreshTorus256(b *testing.B) {
	benchSweepRows(b, constructions.NewTorus(8).Graph(), false)
}
