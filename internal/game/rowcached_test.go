package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
)

// requireSameRowCached compares the row-cached per-agent entry points
// against their uncached twins for every agent: identical move, costs, and
// verdict, on the same live instance. The row-cached scans go through the
// session row cache (lazily synced, invalidation-maintained), the uncached
// ones through fresh per-scan BFS — any divergence is a cache staleness or
// ordering bug.
func requireSameRowCached(t *testing.T, label string, inst game.Instance, rc game.RowCachedScanner, obj game.Objective) {
	t.Helper()
	n := inst.Graph().N()
	for v := 0; v < n; v++ {
		cm, co, cn, cok := rc.BestMoveRowCached(v, obj)
		um, uo, un, uok := inst.BestMove(v, obj)
		if cok != uok || co != uo || cn != un || (cok && cm != um) {
			t.Fatalf("%s: BestMoveRowCached(%d) (%v,%d,%d,%v), BestMove (%v,%d,%d,%v)",
				label, v, cm, co, cn, cok, um, uo, un, uok)
		}
		cm, co, cn, cok = rc.FirstImprovingRowCached(v, obj)
		um, uo, un, uok = inst.FirstImproving(v, obj)
		if cok != uok || co != uo || cn != un || (cok && cm != um) {
			t.Fatalf("%s: FirstImprovingRowCached(%d) (%v,%d,%d,%v), FirstImproving (%v,%d,%d,%v)",
				label, v, cm, co, cn, cok, um, uo, un, uok)
		}
	}
}

// TestRowCachedScanMatchesPerAgent is the bit-identity differential for
// the row-cached per-agent policies across every session-backed model:
// random instances, both objectives, improving moves applied in between so
// the cache's invalidation tests (not just its cold fill) are on the path.
func TestRowCachedScanMatchesPerAgent(t *testing.T) {
	for _, mc := range modelTable() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(mc.name)) * 31))
			for trial := 0; trial < mc.trials; trial++ {
				n := 5 + rng.Intn(mc.maxExtra+1)
				g := randomConnected(rng, n, rng.Intn(n))
				model := mc.build(n, rng)
				inst := model.New(g, 1+rng.Intn(2))
				rc, ok := inst.(game.RowCachedScanner)
				if !ok {
					// The two-neighborhood model scans a composed metric no
					// shared d_G row prices; it stays on the per-agent path.
					if mc.name != "2nb" {
						t.Fatalf("%s instance does not implement RowCachedScanner", mc.name)
					}
					return
				}
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					requireSameRowCached(t, mc.name, inst, rc, obj)
					for step := 0; step < 3; step++ {
						m, _, _, found := rc.BestMoveRowCached(rng.Intn(n), obj)
						if !found {
							break
						}
						inst.Apply(m)
						requireSameRowCached(t, mc.name, inst, rc, obj)
					}
				}
				game.CloseInstance(inst)
			}
		})
	}
}

// TestSwapPriceMoveBelowMatchesPriceMove pins the thresholded probe
// contract on the swap model: ok iff the exact cost is strictly below the
// threshold, the exact PriceMove cost whenever ok, and never more than the
// exact cost on rejection (the patched shared-row bound is a lower bound).
// Thresholds bracket the exact cost so both accept and reject paths run,
// and applied moves in between keep the cache's invalidation tests hot.
func TestSwapPriceMoveBelowMatchesPriceMove(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		n := 10 + trial*6
		g := randomConnected(rng, n, n/3)
		inst := game.Swap{}.New(g, 1)
		pb, ok := inst.(game.MoveBelowPricer)
		if !ok {
			t.Fatal("swap instance does not implement MoveBelowPricer")
		}
		for i := 0; i < 120; i++ {
			m, ok := inst.Sample(rng)
			if !ok {
				continue
			}
			for _, obj := range []game.Objective{game.Sum, game.Max} {
				exact := inst.PriceMove(m, obj)
				for _, threshold := range []int64{exact - 1, exact, exact + 1, exact + 7} {
					c, below := pb.PriceMoveBelow(m, obj, threshold)
					if want := exact < threshold; below != want {
						t.Fatalf("trial %d move %v obj %v: PriceMoveBelow(%d) ok=%v, exact %d",
							trial, m, obj, threshold, below, exact)
					}
					if below && c != exact {
						t.Fatalf("trial %d move %v obj %v: accepted cost %d, exact %d",
							trial, m, obj, c, exact)
					}
					if !below && c > exact {
						t.Fatalf("trial %d move %v obj %v: rejection bound %d above exact %d",
							trial, m, obj, c, exact)
					}
				}
			}
			if i%17 == 0 {
				if mv, _, _, found := inst.FirstImproving(rng.Intn(n), game.Sum); found {
					inst.Apply(mv)
				}
			}
		}
		game.CloseInstance(inst)
	}
}
