package game

// ScanCanceller is the optional capability of session instances whose
// per-agent candidate scans poll a cooperative cancel hook between pricing
// units (one poll per candidate-endpoint BFS, the granularity batchRows
// polls at). Installing a hook makes a long single-agent scan — the
// /v1/bestresponse hot path, where one vertex's scan is Θ(n) BFS —
// abortable mid-scan instead of being one uncancellable pricing unit.
//
// A cancelled scan's result is unspecified (partial or absent); the
// installer must check its own cancellation source after the scan and
// discard the result on expiry. The hook must be cheap and safe for
// concurrent calls. All pricing-session-backed instances implement this;
// naive oracles do not.
type ScanCanceller interface {
	SetScanCancel(cancel func() bool)
}

// SetScanCancel installs cancel on inst's per-agent scans when the
// instance supports it, reporting whether it was installed. Callers whose
// instance lacks the capability fall back to checking cancellation only
// between scans.
func SetScanCancel(inst Instance, cancel func() bool) bool {
	sc, ok := inst.(ScanCanceller)
	if ok {
		sc.SetScanCancel(cancel)
	}
	return ok
}
