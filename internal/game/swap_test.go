package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// randomConnected builds a random tree plus chords.
func randomConnected(rng *rand.Rand, n, chords int) *graph.Graph {
	g := treegen.RandomTree(n, rng)
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// requireSameScan compares a fast and a naive instance on every pricing
// entry point for every agent, then applies one move on both and repeats —
// the per-call contract behind the trajectory-level differential tests in
// internal/dynamics.
func requireSameScan(t *testing.T, label string, fast, naive game.Instance, obj game.Objective) {
	t.Helper()
	n := fast.Graph().N()
	for v := 0; v < n; v++ {
		if got, want := fast.Cost(v, obj), naive.Cost(v, obj); got != want {
			t.Fatalf("%s: Cost(%d) fast %d, naive %d", label, v, got, want)
		}
		fm, fo, fn, fok := fast.BestMove(v, obj)
		nm, no, nn, nok := naive.BestMove(v, obj)
		if fok != nok || fo != no || fn != nn || (fok && fm != nm) {
			t.Fatalf("%s: BestMove(%d) fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
				label, v, fm, fo, fn, fok, nm, no, nn, nok)
		}
		fm, fo, fn, fok = fast.FirstImproving(v, obj)
		nm, no, nn, nok = naive.FirstImproving(v, obj)
		if fok != nok || fo != no || fn != nn || (fok && fm != nm) {
			t.Fatalf("%s: FirstImproving(%d) fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
				label, v, fm, fo, fn, fok, nm, no, nn, nok)
		}
	}
	if got, want := fast.SocialCost(obj), naive.SocialCost(obj); got != want {
		t.Fatalf("%s: SocialCost fast %d, naive %d", label, got, want)
	}
	fm, fo, fn, fok := fast.FindImprovement(obj)
	nm, no, nn, nok := naive.FindImprovement(obj)
	if fok != nok || (fok && (fm != nm || fo != no || fn != nn)) {
		t.Fatalf("%s: FindImprovement fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
			label, fm, fo, fn, fok, nm, no, nn, nok)
	}
	fs, _, ferr := fast.CheckStable(obj)
	ns, _, nerr := naive.CheckStable(obj)
	if fs != ns || (ferr == nil) != (nerr == nil) {
		t.Fatalf("%s: CheckStable fast (%v,%v), naive (%v,%v)", label, fs, ferr, ns, nerr)
	}
}

// driveDifferential runs requireSameScan, then applies a few improving
// moves through both instances and re-checks after each.
func driveDifferential(t *testing.T, label string, model game.Model, base *graph.Graph, obj game.Objective, workers int) {
	t.Helper()
	gFast := base.Clone()
	gNaive := base.Clone()
	fast := model.New(gFast, workers)
	naive := model.Naive(gNaive, workers)
	requireSameScan(t, label, fast, naive, obj)
	for step := 0; step < 4; step++ {
		m, _, newCost, ok := fast.FindImprovement(obj)
		if !ok {
			break
		}
		fast.Apply(m)
		naive.Apply(m)
		if !gFast.Equal(gNaive) {
			t.Fatalf("%s step %d: graphs diverge after %v", label, step, m)
		}
		// The applied move must realize its priced cost on the live state.
		if got := fast.Cost(m.V, obj); got != newCost {
			t.Fatalf("%s step %d: move %v priced %d, realizes %d", label, step, m, newCost, got)
		}
		requireSameScan(t, label, fast, naive, obj)
	}
}

func TestSwapFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		base := randomConnected(rng, 5+rng.Intn(12), rng.Intn(6))
		for _, obj := range []game.Objective{game.Sum, game.Max} {
			for _, workers := range []int{1, 3} {
				driveDifferential(t, "swap", game.Swap{}, base, obj, workers)
			}
		}
	}
}

func TestSwapSampleParity(t *testing.T) {
	// Fast and naive instances must consume rng identically and draw the
	// same probes — the random-improving policy's reproducibility rests on
	// this.
	rng := rand.New(rand.NewSource(72))
	g := randomConnected(rng, 17, 5)
	fast := game.Swap{}.New(g.Clone(), 1)
	naive := game.Swap{}.Naive(g.Clone(), 1)
	ra := rand.New(rand.NewSource(9))
	rb := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		ma, oka := fast.Sample(ra)
		mb, okb := naive.Sample(rb)
		if oka != okb || ma != mb {
			t.Fatalf("probe %d: fast (%v,%v), naive (%v,%v)", i, ma, oka, mb, okb)
		}
	}
}

func TestSwapPriceMoveCacheStaysCorrect(t *testing.T) {
	// PriceMove memoizes BFS rows within a mutation generation; repeated
	// and post-mutation probes must keep agreeing with the naive
	// apply-measure-revert oracle.
	rng := rand.New(rand.NewSource(73))
	g := randomConnected(rng, 14, 4)
	fast := game.Swap{}.New(g, 1).(*game.SwapSession)
	probe := rand.New(rand.NewSource(5))
	for round := 0; round < 6; round++ {
		for i := 0; i < 60; i++ {
			m, ok := fast.Sample(probe)
			if !ok {
				continue
			}
			want := game.Evaluate(g, m, game.Sum)
			if got := fast.PriceMove(m, game.Sum); got != want {
				t.Fatalf("round %d probe %d: move %v priced %d, oracle %d", round, i, m, got, want)
			}
			// Immediately re-price: the second call is a cache hit.
			if got := fast.PriceMove(m, game.Sum); got != want {
				t.Fatalf("round %d probe %d: cached reprice of %v diverged", round, i, m)
			}
		}
		// Mutate (and sometimes undo) to churn the generation counter.
		if m, _, _, ok := fast.FindImprovement(game.Sum); ok {
			undo := fast.Apply(m)
			if round%2 == 1 {
				undo()
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	// Each agent moves twice, then stops: 3 agents → 6 moves, and the
	// convergence sweep is counted.
	left := []int{2, 2, 2}
	moves, sweeps, converged := game.RoundRobin(3, 100, func(v int) bool {
		if left[v] == 0 {
			return false
		}
		left[v]--
		return true
	})
	if !converged || moves != 6 || sweeps != 3 {
		t.Fatalf("RoundRobin = (%d,%d,%v), want (6,3,true)", moves, sweeps, converged)
	}
	// Budget exhaustion mid-sweep.
	moves, _, converged = game.RoundRobin(3, 4, func(v int) bool { return true })
	if converged || moves != 4 {
		t.Fatalf("budgeted RoundRobin = (%d,%v), want (4,false)", moves, converged)
	}
	// Zero agents converge immediately (one empty sweep).
	_, sweeps, converged = game.RoundRobin(0, 10, func(v int) bool { return true })
	if !converged || sweeps != 1 {
		t.Fatalf("empty RoundRobin sweeps=%d converged=%v", sweeps, converged)
	}
}

func TestMoveString(t *testing.T) {
	cases := []struct {
		m    game.Move
		want string
	}{
		{game.Move{V: 3, Drop: 1, Add: 2}, "3: 1→2"},
		{game.Move{Kind: game.KindAdd, V: 3, Add: 2}, "3: +2"},
		{game.Move{Kind: game.KindDelete, V: 3, Drop: 1}, "3: -1"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Move.String() = %q, want %q", got, c.want)
		}
	}
	if game.KindSwap.String() != "swap" || game.KindAdd.String() != "add" || game.KindDelete.String() != "delete" {
		t.Error("Kind.String wrong")
	}
}
