package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
)

// The swap-specific tests below cover the probe-row cache and the shared
// RoundRobin driver; the fast-vs-naive differential, sample-parity, and
// probe-pricing suites that used to live here are now the model-generic
// tables in models_test.go.

func TestSwapPriceMoveCacheStaysCorrect(t *testing.T) {
	// PriceMove memoizes BFS rows within a mutation generation; repeated
	// and post-mutation probes must keep agreeing with the naive
	// apply-measure-revert oracle.
	rng := rand.New(rand.NewSource(73))
	g := randomConnected(rng, 14, 4)
	fast := game.Swap{}.New(g, 1).(*game.SwapSession)
	probe := rand.New(rand.NewSource(5))
	for round := 0; round < 6; round++ {
		for i := 0; i < 60; i++ {
			m, ok := fast.Sample(probe)
			if !ok {
				continue
			}
			want := game.Evaluate(g, m, game.Sum)
			if got := fast.PriceMove(m, game.Sum); got != want {
				t.Fatalf("round %d probe %d: move %v priced %d, oracle %d", round, i, m, got, want)
			}
			// Immediately re-price: the second call is a cache hit.
			if got := fast.PriceMove(m, game.Sum); got != want {
				t.Fatalf("round %d probe %d: cached reprice of %v diverged", round, i, m)
			}
		}
		// Mutate (and sometimes undo) to churn the generation counter.
		if m, _, _, ok := fast.FindImprovement(game.Sum); ok {
			undo := fast.Apply(m)
			if round%2 == 1 {
				undo()
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	// Each agent moves twice, then stops: 3 agents → 6 moves, and the
	// convergence sweep is counted.
	left := []int{2, 2, 2}
	moves, sweeps, converged := game.RoundRobin(3, 100, func(v int) bool {
		if left[v] == 0 {
			return false
		}
		left[v]--
		return true
	})
	if !converged || moves != 6 || sweeps != 3 {
		t.Fatalf("RoundRobin = (%d,%d,%v), want (6,3,true)", moves, sweeps, converged)
	}
	// Budget exhaustion mid-sweep.
	moves, _, converged = game.RoundRobin(3, 4, func(v int) bool { return true })
	if converged || moves != 4 {
		t.Fatalf("budgeted RoundRobin = (%d,%v), want (4,false)", moves, converged)
	}
	// Zero agents converge immediately (one empty sweep).
	_, sweeps, converged = game.RoundRobin(0, 10, func(v int) bool { return true })
	if !converged || sweeps != 1 {
		t.Fatalf("empty RoundRobin sweeps=%d converged=%v", sweeps, converged)
	}
}

func TestMoveString(t *testing.T) {
	cases := []struct {
		m    game.Move
		want string
	}{
		{game.Move{V: 3, Drop: 1, Add: 2}, "3: 1→2"},
		{game.Move{Kind: game.KindAdd, V: 3, Add: 2}, "3: +2"},
		{game.Move{Kind: game.KindDelete, V: 3, Drop: 1}, "3: -1"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Move.String() = %q, want %q", got, c.want)
		}
	}
	if game.KindSwap.String() != "swap" || game.KindAdd.String() != "add" || game.KindDelete.String() != "delete" {
		t.Error("Kind.String wrong")
	}
}
