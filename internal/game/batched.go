package game

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pricing"
	"repro/internal/scan"
)

// This file implements the batched cross-agent certification sweep: a
// whole-graph pass that reuses candidate-endpoint BFS rows across
// deviators instead of recomputing them per agent.
//
// The per-agent sweep pays one BFS of G−v per candidate endpoint per
// deviator — Θ(n) BFS per agent, Θ(n²) for a full certification. The
// batched pass instead computes every full-graph row d_G(w,·) once (n BFS,
// n² int32 of memory — the memory-for-time trade) and observes that
// d_G(w,x) ≤ d_{G−v}(w,x) pointwise, so the patched cost
//
//	Σ_x (or max_x) min(d_{G−vw}(v,x), 1 + d_G(w',x))
//
// is a sound lower bound on the exact post-swap cost: a candidate whose
// bound already prices at or above the admission threshold can be
// discarded without paying its exact G−v BFS, and only flagged candidates
// (those whose shortest paths to some target may run through the deviator)
// are verified exactly. In and near equilibrium — the regime certification
// sweeps live in — almost nothing is flagged, and a full pass costs
// n + 2m + #verified BFS instead of n². The enumeration order, admission
// threshold, and exactness of every returned witness are unchanged, so the
// batched sweep returns bit-identically the same verdict and (lowest-agent,
// enumeration-first) witness as the per-agent FindImprovement.
//
// Session-backed sweeps go one step further: the shared rows live in the
// session's pricing.RowCache, which invalidates only the rows an applied
// move can change, so consecutive sweeps of a trajectory (the random-
// improving certification loop) pay #invalidated BFS instead of n per
// sweep. One-shot checks (CheckSwapBatchedCtx) keep per-call fresh rows.

// rowLookup resolves a candidate endpoint to its full-graph BFS row
// d_G(w,·) — a slice of a fresh per-call arena (batchRows) or of the
// session's generation-checked RowCache view.
type rowLookup func(w int) []int32

// batchRows computes the full-graph BFS row d_G(w,·) for every vertex into
// one n² arena, sharded across workers. need filters endpoints whose row
// no deviator will ever read (nil computes all): the budget model skips
// every over-budget endpoint deviator-independently, so their rows stay
// nil. ctx (nil tolerated) is polled between rows — each row is one
// bounded BFS, so a deadline expiring mid-construction aborts within one
// BFS plus chunk drain instead of overshooting by up to n BFS — and its
// error is returned with nil rows.
func batchRows(ctx context.Context, eng *pricing.Engine, view pricing.Snapshot, workers int, need func(w int) bool) ([][]int32, error) {
	n := view.N()
	rows := make([][]int32, n)
	arena := make([]int32, n*n)
	var stop atomic.Bool
	par.ForChunked(workers, n, func(lo, hi int) {
		_, queue, release := eng.Scratch(n)
		defer release()
		for w := lo; w < hi; w++ {
			if stop.Load() {
				return
			}
			if ctx != nil && ctx.Err() != nil {
				stop.Store(true)
				return
			}
			if need != nil && !need(w) {
				continue
			}
			row := arena[w*n : (w+1)*n : (w+1)*n]
			view.BFSInto(w, row, queue)
			rows[w] = row
		}
	})
	if stop.Load() {
		return nil, ctx.Err()
	}
	return rows, nil
}

// scanAddMajorBatched is scanAddMajor with the shared-row filter in
// front: each candidate is first priced against the endpoint's full-graph
// row (a lower bound on its exact cost — deleting the deviator can only
// lengthen the endpoint's distances), and only candidates whose bound
// passes the admission threshold pay the exact d_{G−v}(add,·) BFS,
// computed at most once per endpoint and shared across its dropped edges.
// price must be monotone in its row argument (all the Patched*Below
// reducers are), which makes the filter sound; exactness of the returned
// candidate is untouched, so the result is bit-identical to
// scanAddMajor's for any worker count. firstOnly selects the
// first-improving engine mode (the certification sweeps); otherwise the
// minimum under order — ByEnumeration for the add-major models,
// ByDropFirst for the swap model's best-move tie-break — strictly below
// cur is returned, matching the unfiltered per-agent scan observably
// (an admitted winner is identical; no candidate below cur is identical
// to a best move that fails the strict-improvement check).
func scanAddMajorBatched(eng *pricing.Engine, view pricing.Snapshot, ps *pricing.Scan,
	workers int, rows rowLookup, skipAdd func(add int) bool,
	price func(dropIdx int, dw []int32, threshold int64) (int64, bool),
	cur int64, firstOnly bool, order scan.Order) (scan.Cand, bool) {
	v := ps.V()
	drops := ps.Drops()
	if len(drops) == 0 {
		return scan.Cand{}, false
	}
	spec := scan.Spec{
		Workers:   workers,
		N:         view.N(),
		Threshold: cur,
		Order:     order,
		Skip: func(add int) bool {
			return add == v || (skipAdd != nil && skipAdd(add))
		},
		Cancel: ps.CancelHook(),
	}
	pricer := func(ws bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		shared := rows(add)
		exact := false
		for i := range drops {
			if _, maybe := price(i, shared, threshold()); !maybe {
				continue
			}
			if !exact {
				view.BFSSkipVertex(add, v, ws.dist, ws.queue)
				exact = true
			}
			if c, below := price(i, ws.dist, threshold()); below {
				if !yield(i, c) {
					return
				}
			}
		}
	}
	state := scratchState(eng, view.N())
	if firstOnly {
		return scan.First(spec, state, pricer)
	}
	return scan.Best(spec, state, pricer)
}

// BatchedSweeper is the optional Instance capability for batched
// whole-graph certification. Implementations must return bit-identically
// the same result as their FindImprovement; the difference is purely
// performance (endpoint-row reuse across deviators and, for session-backed
// instances, across sweeps) bought with O(n²) resident memory.
type BatchedSweeper interface {
	// FindImprovementBatched is FindImprovement computed via the batched
	// cross-agent pass: same contract, same witness, same costs.
	FindImprovementBatched(obj Objective) (m Move, oldCost, newCost int64, ok bool)
}

// FindImprovementBatched runs the batched certification sweep when the
// instance supports it and falls back to the per-agent FindImprovement
// otherwise (naive oracles, BFS-free models). Callers can therefore
// request batching unconditionally.
func FindImprovementBatched(inst Instance, obj Objective) (Move, int64, int64, bool) {
	if b, ok := inst.(BatchedSweeper); ok {
		return b.FindImprovementBatched(obj)
	}
	return inst.FindImprovement(obj)
}

// sweepRows resolves the shared d_G rows for one session-backed sweep:
// through the session's RowCache when reuse is set (only invalidated rows
// are recomputed; the view panics if read across a mutation), or as
// per-call fresh rows otherwise (the pre-cache behavior, kept for the
// reuse-ablation benchmarks and differential tests).
func sweepRows(eng *pricing.Engine, ps *pricing.Session, workers int, reuse bool, needRow func(add int) bool) rowLookup {
	if reuse {
		return ps.RowCache().Sync(workers, needRow).Row
	}
	rows, _ := batchRows(nil, eng, ps.View(), workers, needRow)
	return func(w int) []int32 { return rows[w] }
}

// batchedFindImprovement is the one batched certification sweep the
// swap-move session models share: shared rows once (restricted to
// endpoints some deviator can use), then agents ascending, each agent's
// filtered first-improving scan configured by the model through vertex —
// which returns the agent's current cost, its endpoint filter, and its
// thresholded price reduction over the scan's dropped-edge rows.
func batchedFindImprovement(eng *pricing.Engine, ps *pricing.Session, workers int,
	reuse bool, needRow func(add int) bool,
	vertex func(v int, sc *pricing.Scan) (cur int64, skipAdd func(add int) bool,
		price func(dropIdx int, dw []int32, threshold int64) (int64, bool)),
) (Move, int64, int64, bool) {
	view := ps.View()
	rows := sweepRows(eng, ps, workers, reuse, needRow)
	n := ps.N()
	for v := 0; v < n; v++ {
		sc := ps.NewScan(v)
		cur, skipAdd, price := vertex(v, sc)
		cand, ok := scanAddMajorBatched(eng, view, sc, workers, rows, skipAdd, price, cur,
			true, scan.ByEnumeration)
		if ok {
			m := Move{V: v, Drop: int(sc.Drops()[cand.DropIdx]), Add: cand.Add}
			sc.Close()
			return m, cur, cand.Cost, true
		}
		sc.Close()
	}
	return Move{}, 0, 0, false
}

// FindImprovementBatched is the swap model's batched certification sweep:
// agents ascending, each agent's candidate scan filtered through the
// shared full-graph rows, which persist in the session's RowCache across
// sweeps. It returns exactly FindImprovement's result.
func (s *SwapSession) FindImprovementBatched(obj Objective) (Move, int64, int64, bool) {
	return s.findImprovementBatched(obj, true)
}

func (s *SwapSession) findImprovementBatched(obj Objective, reuse bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	return batchedFindImprovement(s.eng, s.ps, s.workers, reuse, nil,
		func(v int, sc *pricing.Scan) (int64, func(int) bool, func(int, []int32, int64) (int64, bool)) {
			return sc.CurrentUsage(po),
				func(add int) bool { return view.HasEdge(v, add) },
				func(i int, dw []int32, threshold int64) (int64, bool) {
					return pricing.PatchedBelow(sc.DropRow(i), dw, po, threshold)
				}
		})
}

// FindImprovementBatched is the interests model's batched certification
// sweep; the interest-restricted reductions run against the shared rows
// first, exact rows only for flagged candidates.
func (s *interestsSession) FindImprovementBatched(obj Objective) (Move, int64, int64, bool) {
	return s.findImprovementBatched(obj, true)
}

func (s *interestsSession) findImprovementBatched(obj Objective, reuse bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	return batchedFindImprovement(s.eng, s.ps, s.workers, reuse, nil,
		func(v int, sc *pricing.Scan) (int64, func(int) bool, func(int, []int32, int64) (int64, bool)) {
			set := s.model.set(v)
			return pricing.UsageSubset(sc.CurrentRow(), set, po),
				func(add int) bool { return view.HasEdge(v, add) },
				func(i int, dw []int32, threshold int64) (int64, bool) {
					return pricing.PatchedSubsetBelow(sc.DropRow(i), dw, set, po, threshold)
				}
		})
}

// FindImprovementBatched is the budget model's batched certification
// sweep. Over-budget endpoints are infeasible for every deviator (an add
// onto an existing neighbor is skipped regardless), so their shared rows
// are never computed at all; the per-agent filter then only adds the
// adjacency half. The RowCache keeps rows of endpoints that drift in and
// out of budget: a row cached while feasible stays valid (invalidation
// tracks distance changes, not feasibility) and is simply not read while
// the endpoint is over budget.
func (s *budgetSession) FindImprovementBatched(obj Objective) (Move, int64, int64, bool) {
	return s.findImprovementBatched(obj, true)
}

func (s *budgetSession) findImprovementBatched(obj Objective, reuse bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	return batchedFindImprovement(s.eng, s.ps, s.workers, reuse,
		func(add int) bool { return view.Degree(add) < s.k },
		func(v int, sc *pricing.Scan) (int64, func(int) bool, func(int, []int32, int64) (int64, bool)) {
			return sc.CurrentUsage(po),
				func(add int) bool {
					return view.HasEdge(v, add) || view.Degree(add) >= s.k
				},
				func(i int, dw []int32, threshold int64) (int64, bool) {
					return pricing.PatchedBelow(sc.DropRow(i), dw, po, threshold)
				}
		})
}

// FindImprovementBatched is the greedy model's batched certification
// sweep: agents ascending, each agent's staged scan (adds, deletions,
// swaps) priced through the shared full-graph rows. The greedy model is
// the batched pass's best case — its add stage prices candidates from
// exactly the rows the cache holds (d_{G+vw}(v,·) patches d_G(v,·) with
// d_G(w,·); no deviator is excluded), so adds need no verification BFS at
// all; deletions price free from the scan's dropped-edge rows as before;
// only the swap stage keeps the filter-then-verify shape of the swap
// model. Results are bit-identical to FindImprovement.
func (s *greedySession) FindImprovementBatched(obj Objective) (Move, int64, int64, bool) {
	return s.findImprovementBatched(obj, true)
}

func (s *greedySession) findImprovementBatched(obj Objective, reuse bool) (Move, int64, int64, bool) {
	rows := sweepRows(s.eng, s.ps, s.workers, reuse, nil)
	n := s.ps.N()
	for v := 0; v < n; v++ {
		if m, cur, newCost, ok := s.scanMovesBatched(v, obj, rows, true); ok {
			return m, cur, newCost, true
		}
	}
	return Move{}, 0, 0, false
}

// scanMovesBatched is scanMoves priced through the shared rows: the same
// three stages in the same enumeration order with the same
// running-threshold handoff and the same firstOnly semantics, so the
// returned move is bit-identical for any worker count.
func (s *greedySession) scanMovesBatched(v int, obj Objective, rows rowLookup, firstOnly bool) (best Move, oldCost, newCost int64, ok bool) {
	po := pobj(obj)
	view := s.ps.View()
	n := view.N()
	psc := s.ps.NewScan(v)
	defer psc.Close()
	deg := int64(view.Degree(v))
	cur := s.edgeCost*deg + psc.CurrentUsage(po)
	bestCost := cur
	state := scratchState(s.eng, n)
	skipKnown := func(add int) bool { return add == v || view.HasEdge(v, add) }
	runStage := func(pricer scan.Pricer[bfsRow], toMove func(c scan.Cand) Move) bool {
		spec := scan.Spec{
			Workers:   s.workers,
			N:         n,
			Threshold: bestCost,
			Order:     scan.ByEnumeration,
			Skip:      skipKnown,
			Cancel:    psc.CancelHook(),
		}
		var c scan.Cand
		var found bool
		if firstOnly {
			c, found = scan.First(spec, state, pricer)
		} else {
			c, found = scan.Best(spec, state, pricer)
		}
		if found {
			best, bestCost, ok = toMove(c), c.Cost, true
		}
		return found && firstOnly
	}

	// Adds: the shared row IS the exact post-add endpoint row — adding vw
	// excludes no vertex, so d_{G+vw}(v,·) = min(d_G(v,·), 1+d_G(w,·))
	// prices exactly from the cache with no BFS and no verification pass.
	addOffset := s.edgeCost * (deg + 1)
	addPricer := func(_ bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		if c, below := pricing.PatchedBelow(psc.CurrentRow(), rows(add), po, threshold()-addOffset); below {
			yield(0, addOffset+c)
		}
	}
	if runStage(addPricer, func(c scan.Cand) Move { return Move{Kind: KindAdd, V: v, Add: c.Add} }) {
		return best, cur, bestCost, true
	}

	// Deletions: the scan's dropped-edge rows price them for free, exactly
	// as in the per-agent scan.
	for i, w := range psc.Drops() {
		if c := s.edgeCost*(deg-1) + psc.DeletionUsage(i, po); c < bestCost {
			best, bestCost, ok = Move{Kind: KindDelete, V: v, Drop: int(w)}, c, true
			if firstOnly {
				return best, cur, bestCost, true
			}
		}
	}

	// Swaps: the swap model's filter-then-verify — the shared row lower-
	// bounds the deviator-excluded row, flagged candidates pay one exact
	// BFS shared across dropped edges.
	swapOffset := s.edgeCost * deg
	drops := psc.Drops()
	swapPricer := func(ws bfsRow, add int, threshold func() int64, yield func(int, int64) bool) {
		shared := rows(add)
		exact := false
		for i := range drops {
			if _, maybe := pricing.PatchedBelow(psc.DropRow(i), shared, po, threshold()-swapOffset); !maybe {
				continue
			}
			if !exact {
				view.BFSSkipVertex(add, v, ws.dist, ws.queue)
				exact = true
			}
			if c, below := pricing.PatchedBelow(psc.DropRow(i), ws.dist, po, threshold()-swapOffset); below {
				if !yield(i, swapOffset+c) {
					return
				}
			}
		}
	}
	runStage(swapPricer, func(c scan.Cand) Move {
		return Move{Kind: KindSwap, V: v, Drop: int(drops[c.DropIdx]), Add: c.Add}
	})
	return best, cur, bestCost, ok
}

// CheckSwapBatched is CheckSwap computed via the batched cross-agent pass:
// same verdict, same deterministic witness (deletion-criticality checks
// still run per agent from the scan's dropped-edge rows; only the
// candidate-endpoint BFS reuse changes). One frozen snapshot, n shared
// rows in one arena, exact verification for flagged candidates only.
func CheckSwapBatched(g *graph.Graph, obj Objective, workers int, deletionCritical bool) (bool, *Violation, error) {
	return CheckSwapBatchedCtx(nil, g, obj, workers, deletionCritical)
}

// CheckSwapBatchedCtx is CheckSwapBatched with cooperative cancellation:
// ctx (nil tolerated) is polled between the shared-row BFS passes during
// construction and between per-agent scans afterwards, and its error is
// returned on expiry. Verdict and witness are bit-identical to
// CheckSwapBatched.
func CheckSwapBatchedCtx(ctx context.Context, g *graph.Graph, obj Objective, workers int, deletionCritical bool) (bool, *Violation, error) {
	n := g.N()
	if n <= 1 {
		return true, nil, nil
	}
	if !g.IsConnected() {
		return false, nil, ErrDisconnected
	}
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	f := g.Freeze()
	rows, err := batchRows(ctx, eng, f, workers, nil)
	if err != nil {
		return false, nil, err
	}
	po := pobj(obj)
	for v := 0; v < n; v++ {
		if err := pollCtx(ctx); err != nil {
			return false, nil, err
		}
		sc := eng.NewScan(f, v)
		cur := sc.CurrentUsage(po)
		if obj == Max && deletionCritical {
			if viol := deletionViolation(sc, v, cur); viol != nil {
				sc.Close()
				return false, viol, nil
			}
		}
		cand, ok := scanAddMajorBatched(eng, f, sc, workers, func(w int) []int32 { return rows[w] },
			func(add int) bool { return f.HasEdge(v, add) },
			func(i int, dw []int32, threshold int64) (int64, bool) {
				return pricing.PatchedBelow(sc.DropRow(i), dw, po, threshold)
			},
			cur, true, scan.ByEnumeration)
		if ok {
			viol := &Violation{
				Kind:    SwapImproves,
				Move:    Move{V: v, Drop: int(sc.Drops()[cand.DropIdx]), Add: cand.Add},
				Agent:   v,
				OldCost: cur,
				NewCost: cand.Cost,
			}
			sc.Close()
			return false, viol, nil
		}
		sc.Close()
	}
	return true, nil, nil
}
