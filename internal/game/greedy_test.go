package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
)

// The greedy fast-vs-naive differential, sample-parity, and probe-pricing
// suites moved to the model-generic tables in models_test.go; the tests
// here cover greedy-specific semantics only.

func TestGreedySampleCoversAllKinds(t *testing.T) {
	// The greedy probe distribution must exercise every move kind.
	rng := rand.New(rand.NewSource(82))
	g := randomConnected(rng, 15, 6)
	fast := game.Greedy{EdgeCost: 2}.New(g, 1)
	probe := rand.New(rand.NewSource(4))
	sawKind := map[game.Kind]bool{}
	for i := 0; i < 600; i++ {
		if m, ok := fast.Sample(probe); ok {
			sawKind[m.Kind] = true
		}
	}
	for _, k := range []game.Kind{game.KindSwap, game.KindAdd, game.KindDelete} {
		if !sawKind[k] {
			t.Errorf("600 probes never sampled kind %v", k)
		}
	}
}

func TestGreedyApplyUndoRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	base := randomConnected(rng, 10, 3)
	model := game.Greedy{EdgeCost: 1}
	g := base.Clone()
	inst := model.New(g, 1)
	var undos []func()
	probe := rand.New(rand.NewSource(2))
	for len(undos) < 6 {
		m, ok := inst.Sample(probe)
		if !ok {
			continue
		}
		undos = append(undos, inst.Apply(m))
	}
	for i := len(undos) - 1; i >= 0; i-- {
		undos[i]()
	}
	if !g.Equal(base) {
		t.Fatal("undo chain did not restore the graph")
	}
	// The live snapshot must be restored too: pricing still matches naive.
	requireSameScan(t, "greedy-after-undo", inst, model.Naive(base.Clone(), 1), game.Sum)
}

func TestGreedyEdgeCostRegimes(t *testing.T) {
	// EdgeCost 0: adding any vertex at distance >= 2 strictly improves, so
	// a path is unstable toward density. Large EdgeCost: every add is
	// losing; the greedy equilibrium keeps few edges.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	free := game.Greedy{EdgeCost: 0}.New(g.Clone(), 1)
	m, _, _, ok := free.BestMove(0, game.Sum)
	if !ok || m.Kind != game.KindAdd {
		t.Fatalf("EdgeCost 0 best move of path endpoint = (%v,%v), want an add", m, ok)
	}

	costly := game.Greedy{EdgeCost: 1000}.New(g.Clone(), 1)
	if m, _, _, ok := costly.BestMove(0, game.Sum); ok && m.Kind == game.KindAdd {
		t.Fatalf("EdgeCost 1000 still wants to buy: %v", m)
	}
}

func TestGreedyStableStateCertifies(t *testing.T) {
	// Drive best-response rounds through RoundRobin until convergence; the
	// final state must certify on both instance flavors.
	rng := rand.New(rand.NewSource(85))
	for _, edgeCost := range []int64{1, 4} {
		g := randomConnected(rng, 12, 3)
		model := game.Greedy{EdgeCost: edgeCost}
		inst := model.New(g, 1)
		_, _, converged := game.RoundRobin(g.N(), 5000, func(v int) bool {
			m, _, _, ok := inst.BestMove(v, game.Sum)
			if !ok {
				return false
			}
			inst.Apply(m)
			return true
		})
		if !converged {
			t.Fatalf("edgeCost %d: greedy best response did not converge", edgeCost)
		}
		for _, flavor := range []game.Instance{inst, model.Naive(g, 1)} {
			stable, viol, err := flavor.CheckStable(game.Sum)
			if err != nil || !stable {
				t.Fatalf("edgeCost %d: final state not stable: %v %v", edgeCost, viol, err)
			}
		}
	}
}
