package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// batchedModels are the models with a batched cross-agent sweep (the
// BFS-priced models, greedy included since its add stage prices exactly
// from the shared rows); only 2nb falls back to the per-agent sweep
// through game.FindImprovementBatched.
func batchedModels(n int, rng *rand.Rand) []game.Model {
	return []game.Model{
		game.Swap{},
		game.RandomInterests(n, 0.6, rng),
		game.Budget{K: 3},
		game.Greedy{EdgeCost: 2},
	}
}

// requireSameSweep drives both instances through up to four improvement
// steps, comparing the batched sweep against the per-agent sweep — same
// verdict, same (lowest-agent, enumeration-first) witness, same costs —
// after every applied move.
func requireSameSweep(t *testing.T, label string, model game.Model, base *graph.Graph, obj game.Objective, workers int) {
	t.Helper()
	gB := base.Clone()
	gS := base.Clone()
	batched := model.New(gB, workers)
	seq := model.New(gS, workers)
	if _, ok := batched.(game.BatchedSweeper); !ok {
		t.Fatalf("%s: instance does not implement BatchedSweeper", label)
	}
	for step := 0; step < 4; step++ {
		bm, bo, bn, bok := game.FindImprovementBatched(batched, obj)
		sm, so, sn, sok := seq.FindImprovement(obj)
		if bok != sok || (bok && (bm != sm || bo != so || bn != sn)) {
			t.Fatalf("%s step %d: batched (%v,%d,%d,%v), per-agent (%v,%d,%d,%v)",
				label, step, bm, bo, bn, bok, sm, so, sn, sok)
		}
		if !bok {
			return
		}
		batched.Apply(bm)
		seq.Apply(sm)
	}
}

// TestBatchedSweepMatchesPerAgent is the batched-certification
// differential: same verdict and same violation witness as the per-agent
// FindImprovement on the paper's named families and random trees, n ≤ 96.
func TestBatchedSweepMatchesPerAgent(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	graphs := map[string]*graph.Graph{
		"path17":  constructions.Path(17),
		"star33":  constructions.Star(33),
		"torus32": constructions.NewTorus(4).Graph(),
		"tree96":  treegen.RandomTree(96, rng),
		"tree48c": randomConnected(rng, 48, 10),
	}
	for gname, g := range graphs {
		for _, model := range batchedModels(g.N(), rng) {
			for _, obj := range []game.Objective{game.Sum, game.Max} {
				for _, workers := range []int{1, 3} {
					requireSameSweep(t, gname+"/"+model.Name(), model, g, obj, workers)
				}
			}
		}
	}
}

// TestCheckSwapBatchedMatchesCheckSwap pins the one-shot batched checker —
// including the deletion-criticality half of the max condition — against
// the per-agent checker, verdict and witness.
func TestCheckSwapBatchedMatchesCheckSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	graphs := []*graph.Graph{
		constructions.Path(24),
		constructions.Star(40),
		constructions.NewTorus(4).Graph(),
		treegen.RandomTree(64, rng),
		randomConnected(rng, 40, 12),
	}
	for i, g := range graphs {
		for _, obj := range []game.Objective{game.Sum, game.Max} {
			for _, critical := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					sok, sviol, serr := game.CheckSwap(g, obj, workers, critical)
					bok, bviol, berr := game.CheckSwapBatched(g, obj, workers, critical)
					if sok != bok || (serr == nil) != (berr == nil) {
						t.Fatalf("graph %d obj=%v critical=%v workers=%d: verdict per-agent (%v,%v), batched (%v,%v)",
							i, obj, critical, workers, sok, serr, bok, berr)
					}
					if (sviol == nil) != (bviol == nil) {
						t.Fatalf("graph %d obj=%v critical=%v: witness presence differs", i, obj, critical)
					}
					if sviol != nil && *sviol != *bviol {
						t.Fatalf("graph %d obj=%v critical=%v: witness per-agent %+v, batched %+v",
							i, obj, critical, sviol, bviol)
					}
				}
			}
		}
	}
}

// TestBatchedSweepDisconnectedTolerant pins that the interests batched
// sweep matches the per-agent sweep on a disconnected position (the
// interests game legally cuts off uninterested parts; the shared
// full-graph rows then carry Unreachable entries, which the lower-bound
// filter must treat as infinite exactly like the exact rows do).
func TestBatchedSweepDisconnectedTolerant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Two components: a path 0..8 and a triangle 9-10-11.
	g := graph.New(12)
	for v := 1; v < 9; v++ {
		g.AddEdge(v-1, v)
	}
	g.AddEdge(9, 10)
	g.AddEdge(10, 11)
	g.AddEdge(9, 11)
	model := game.RandomInterests(12, 0.4, rng)
	for _, obj := range []game.Objective{game.Sum, game.Max} {
		for _, workers := range []int{1, 3} {
			requireSameSweep(t, "disconnected/interests", model, g, obj, workers)
		}
	}
}

// TestBatchedSweepAllocDelta pins the memory-for-time trade: at one worker
// the batched sweep may allocate O(n) extra — a constant number of
// closures per deviator — on top of the per-agent sweep. The shared rows
// themselves no longer count per sweep: they live in the session's
// RowCache, one n² arena amortized across every sweep of the session's
// lifetime, so a repeated sweep of an unchanged position recomputes and
// allocates no rows at all. The bound is 2n+32: a regression back to n
// per-sweep per-row allocations (64 here) or to per-deviator row
// derivation (Θ(n²)) trips it with a clear margin while the constant
// per-agent closure overhead (~2n) does not.
func TestBatchedSweepAllocDelta(t *testing.T) {
	n := 64
	g := constructions.Star(n)
	inst := game.Swap{}.New(g, 1).(*game.SwapSession)
	seq := testing.AllocsPerRun(10, func() {
		if _, _, _, ok := inst.FindImprovement(game.Sum); ok {
			t.Fatal("star must be sum-stable")
		}
	})
	batched := testing.AllocsPerRun(10, func() {
		if _, _, _, ok := inst.FindImprovementBatched(game.Sum); ok {
			t.Fatal("star must be sum-stable")
		}
	})
	if delta := batched - seq; delta > float64(2*n+32) {
		t.Fatalf("batched sweep allocates %.0f more than per-agent (seq %.0f, batched %.0f); want ≤ 2n+32 = %d",
			delta, seq, batched, 2*n+32)
	}
}
