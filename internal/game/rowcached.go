package game

import (
	"repro/internal/pricing"
	"repro/internal/scan"
)

// This file routes the per-agent sweeping policies through the session's
// persistent row cache. The batched certification sweep (batched.go)
// already prices candidate endpoints from the shared d_G rows; with the
// cache's exact remove-invalidation test (shortest-path multiplicity,
// pricing.RowCache) an applied move near equilibrium invalidates O(1)
// rows, so the same shared-row filter now pays off inside the dynamics
// hot loop too: best-response and first-improvement scans reuse the rows
// across agents and across moves, and the random policy's probes reject
// against a cached endpoint row before paying any BFS. Every row-cached
// path returns observably identical results to its per-agent twin — same
// move, same costs, same ok — which the differential suites pin.

// RowCachedScanner is the optional Instance capability for per-agent
// scans priced through the session row cache: BestMoveRowCached and
// FirstImprovingRowCached are BestMove and FirstImproving with the
// shared-row filter (or, for the greedy add stage, exact shared-row
// pricing) in front. Implementations must return observably identical
// results to the uncached methods; the difference is purely performance,
// bought with the cache's O(n²) resident memory.
type RowCachedScanner interface {
	BestMoveRowCached(v int, obj Objective) (m Move, oldCost, newCost int64, ok bool)
	FirstImprovingRowCached(v int, obj Objective) (m Move, oldCost, newCost int64, ok bool)
}

// MoveBelowPricer is the optional Instance capability for thresholded
// probe pricing: PriceMoveBelow reports whether m prices strictly below
// threshold, returning the exact PriceMove cost whenever it does (ok
// true). When ok is false the returned cost is only a lower bound —
// implementations reject via the cached shared rows without paying the
// probe's endpoint BFS.
type MoveBelowPricer interface {
	PriceMoveBelow(m Move, obj Objective, threshold int64) (int64, bool)
}

// CloseInstance releases an instance's pooled resources (today: the
// pricing session's row-cache arenas) when it implements Close, and is a
// no-op otherwise. Drivers that create instances per run — the dynamics
// driver, the service layer — defer it so a recycled slot does not pin
// 5n² bytes of a graph it has finished with.
func CloseInstance(inst Instance) {
	if c, ok := inst.(interface{ Close() }); ok {
		c.Close()
	}
}

// RowCacheStats reports a session row cache's lifetime counters.
type RowCacheStats struct {
	Recomputed  uint64 // BFS row rebuilds paid at Syncs
	Invalidated uint64 // rows flagged by applied moves' invalidation tests
}

// InstanceRowCacheStats reads the row-cache counters of a session-backed
// instance; ok is false for instances without an attached cache (naive
// oracles, trajectories that never requested batching).
func InstanceRowCacheStats(inst Instance) (RowCacheStats, bool) {
	type statter interface {
		RowCacheStats() (RowCacheStats, bool)
	}
	if s, ok := inst.(statter); ok {
		return s.RowCacheStats()
	}
	return RowCacheStats{}, false
}

// sessionRowCacheStats adapts pricing.Session's counter triple to the
// game-level stats shape shared by the four session models.
func sessionRowCacheStats(ps *pricing.Session) (RowCacheStats, bool) {
	recomputed, invalidated, ok := ps.RowCacheStats()
	return RowCacheStats{Recomputed: recomputed, Invalidated: invalidated}, ok
}

// ---------------------------------------------------------------------------
// Swap model.

// BestMoveRowCached is BestMove priced through the session row cache.
func (s *SwapSession) BestMoveRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, false)
}

// FirstImprovingRowCached is FirstImproving priced through the session
// row cache.
func (s *SwapSession) FirstImprovingRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, true)
}

// scanRowCached runs one agent's swap scan with the shared-row filter:
// the batched sweep's per-vertex pass, with the best-move mode seeded at
// cur under the ByDropFirst tie-break — exactly BestMove's candidate
// order, and a winner exists iff BestMove's winner strictly improves, so
// the (move, costs, ok) quadruple is identical in both modes.
func (s *SwapSession) scanRowCached(v int, obj Objective, firstOnly bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	rows := sweepRows(s.eng, s.ps, s.workers, true, nil)
	sc := s.ps.NewScan(v)
	defer sc.Close()
	cur := sc.CurrentUsage(po)
	order := scan.ByDropFirst
	if firstOnly {
		order = scan.ByEnumeration
	}
	cand, found := scanAddMajorBatched(s.eng, view, sc, s.workers, rows,
		func(add int) bool { return view.HasEdge(v, add) },
		func(i int, dw []int32, threshold int64) (int64, bool) {
			return pricing.PatchedBelow(sc.DropRow(i), dw, po, threshold)
		},
		cur, firstOnly, order)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(sc.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

// PriceMoveBelow is the random policy's row-cached probe: the memoized
// deviator row patched with the endpoint's cached shared row is a sound
// lower bound on the exact post-move cost (d_G(add,·) ≤ d_{G−v}(add,·)
// pointwise and the patched reduction is monotone in the row), so a probe
// whose bound already prices at or above threshold is rejected with no
// BFS at all. Only bound-passing probes — near equilibrium, almost none —
// pay PriceMove's endpoint BFS for the exact cost.
func (s *SwapSession) PriceMoveBelow(m Move, obj Objective, threshold int64) (int64, bool) {
	po := pobj(obj)
	dv := s.probeRow(probeKey{v: int32(m.V), drop: int32(m.Drop)})
	shared := s.ps.RowCache().SyncRow(m.Add)
	if bound, maybe := pricing.PatchedBelow(dv, shared, po, threshold); !maybe {
		return bound, false
	}
	dw, qw, relW := s.eng.Scratch(s.ps.N())
	defer relW()
	s.ps.View().BFSSkipVertex(m.Add, m.V, dw, qw)
	c := pricing.Patched(dv, dw, po)
	return c, c < threshold
}

// Close releases the session's row-cache arenas; see pricing.Session.Close.
func (s *SwapSession) Close() { s.ps.Close() }

// RowCacheStats reports the session row cache's counters.
func (s *SwapSession) RowCacheStats() (RowCacheStats, bool) { return sessionRowCacheStats(s.ps) }

// ---------------------------------------------------------------------------
// Greedy model.

// BestMoveRowCached is BestMove priced through the session row cache: the
// add stage prices exactly from the shared rows (no BFS at all), the swap
// stage filters through them.
func (s *greedySession) BestMoveRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	rows := sweepRows(s.eng, s.ps, s.workers, true, nil)
	return s.scanMovesBatched(v, obj, rows, false)
}

// FirstImprovingRowCached is FirstImproving priced through the session
// row cache.
func (s *greedySession) FirstImprovingRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	rows := sweepRows(s.eng, s.ps, s.workers, true, nil)
	return s.scanMovesBatched(v, obj, rows, true)
}

// Close releases the session's row-cache arenas; see pricing.Session.Close.
func (s *greedySession) Close() { s.ps.Close() }

// RowCacheStats reports the session row cache's counters.
func (s *greedySession) RowCacheStats() (RowCacheStats, bool) { return sessionRowCacheStats(s.ps) }

// ---------------------------------------------------------------------------
// Interests model.

// BestMoveRowCached is BestMove priced through the session row cache.
func (s *interestsSession) BestMoveRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, false)
}

// FirstImprovingRowCached is FirstImproving priced through the session
// row cache.
func (s *interestsSession) FirstImprovingRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, true)
}

// scanRowCached mirrors scanMoves with the shared-row filter in front of
// the interest-restricted reductions; both engine modes keep scanMoves'
// ByEnumeration order and cur threshold, so results are identical.
func (s *interestsSession) scanRowCached(v int, obj Objective, firstOnly bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	set := s.model.set(v)
	view := s.ps.View()
	rows := sweepRows(s.eng, s.ps, s.workers, true, nil)
	sc := s.ps.NewScan(v)
	defer sc.Close()
	cur := pricing.UsageSubset(sc.CurrentRow(), set, po)
	cand, found := scanAddMajorBatched(s.eng, view, sc, s.workers, rows,
		func(add int) bool { return view.HasEdge(v, add) },
		func(i int, dw []int32, threshold int64) (int64, bool) {
			return pricing.PatchedSubsetBelow(sc.DropRow(i), dw, set, po, threshold)
		},
		cur, firstOnly, scan.ByEnumeration)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(sc.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

// Close releases the session's row-cache arenas; see pricing.Session.Close.
func (s *interestsSession) Close() { s.ps.Close() }

// RowCacheStats reports the session row cache's counters.
func (s *interestsSession) RowCacheStats() (RowCacheStats, bool) { return sessionRowCacheStats(s.ps) }

// ---------------------------------------------------------------------------
// Budget model.

// BestMoveRowCached is BestMove priced through the session row cache.
func (s *budgetSession) BestMoveRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, false)
}

// FirstImprovingRowCached is FirstImproving priced through the session
// row cache.
func (s *budgetSession) FirstImprovingRowCached(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanRowCached(v, obj, true)
}

// scanRowCached mirrors scanMoves with the shared-row filter in front;
// over-budget endpoints are skipped before their row is ever read, so
// rows of endpoints no agent can target are not computed by the Sync.
func (s *budgetSession) scanRowCached(v int, obj Objective, firstOnly bool) (Move, int64, int64, bool) {
	po := pobj(obj)
	view := s.ps.View()
	rows := sweepRows(s.eng, s.ps, s.workers, true,
		func(add int) bool { return view.Degree(add) < s.k })
	sc := s.ps.NewScan(v)
	defer sc.Close()
	cur := sc.CurrentUsage(po)
	cand, found := scanAddMajorBatched(s.eng, view, sc, s.workers, rows,
		func(add int) bool {
			return view.HasEdge(v, add) || view.Degree(add) >= s.k
		},
		func(i int, dw []int32, threshold int64) (int64, bool) {
			return pricing.PatchedBelow(sc.DropRow(i), dw, po, threshold)
		},
		cur, firstOnly, scan.ByEnumeration)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(sc.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

// Close releases the session's row-cache arenas; see pricing.Session.Close.
func (s *budgetSession) Close() { s.ps.Close() }

// RowCacheStats reports the session row cache's counters.
func (s *budgetSession) RowCacheStats() (RowCacheStats, bool) { return sessionRowCacheStats(s.ps) }
