package game

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pricing"
	"repro/internal/scan"
)

// TwoNeighborhood is the 2-neighborhood maximization variant of the basic
// game (de la Haye et al., "Network Creation Games with 2-Neighborhood
// Maximization"): the move set is still the single-edge swap, but agent v
// MAXIMIZES |N₂(v)| — the number of vertices within distance two — instead
// of minimizing a distance cost. To fit the cost-minimizing Instance
// contract the model prices the complement,
//
//	cost(v) = n − 1 − |N₂(v)| = #{u ≠ v : d(v,u) > 2},
//
// absorbing the objective's sign flip once, here: improving moves are
// exactly the 2-neighborhood-growing swaps. The Objective parameter is
// ignored — the model has a single objective (Sum and Max price
// identically). Vertices beyond distance two count the same whether they
// sit at distance three or are unreachable, so the model tolerates
// disconnection natively: like the interests game, an improving swap may
// legally cut off remote parts of the graph, and dynamics may cycle.
//
// Pricing needs no BFS. After v: drop→add the deviator's 2-neighborhood is
//
//	N₂'(v) = ∪_{w ∈ N'(v)} ({w} ∪ N(w)) \ {v},   N'(v) = N(v) \ {drop} ∪ {add},
//
// and every adjacency list the union reads is unchanged by the move: the
// two patched lists are v's own (replaced by N'(v)) and those of drop and
// add — drop is not in N'(v), and add's list only gains v, which is
// excluded anyway. The fast instance therefore prices every candidate from
// the live CSR adjacency alone, maintaining a multiplicity counter over
// the covered vertices so toggling one endpoint in or out of the union
// costs O(deg) instead of recounting from scratch.
type TwoNeighborhood struct{}

// Name returns "2nb".
func (TwoNeighborhood) Name() string { return "2nb" }

// New starts an adjacency-only session on g.
func (TwoNeighborhood) New(g *graph.Graph, workers int) Instance {
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	return &twoNBSession{g: g, ps: eng.NewSession(g), workers: workers}
}

// Naive returns the BFS-backed oracle instance: every probe re-runs a BFS
// on the map graph after apply-measure-revert, the slow path the counter
// arithmetic is validated against.
func (TwoNeighborhood) Naive(g *graph.Graph, workers int) Instance {
	return &twoNBNaive{g: g, workers: normWorkers(workers)}
}

// twoNBRowCost reduces a BFS row to the 2-neighborhood cost
// n − 1 − #{u : 1 ≤ d(v,u) ≤ 2} (unreachable entries are simply outside
// the 2-neighborhood; no InfCost saturation is needed).
func twoNBRowCost(row []int32) int64 {
	within := 0
	for _, d := range row {
		if d == 1 || d == 2 {
			within++
		}
	}
	return int64(len(row) - 1 - within)
}

// ---------------------------------------------------------------------------
// Fast instance.

// twoNBSession prices 2-neighborhood swaps from the live CSR adjacency
// with a multiplicity counter: cnt[u] is how many members of the currently
// loaded cover set contribute u, covered counts the distinct u ≠ v with
// cnt[u] > 0. Scans are adjacency-cheap (no BFS), so they run sequentially
// per agent at every worker count; the enumeration is the basic game's
// add-major order with enumeration-first tie-breaks.
type twoNBSession struct {
	g       *graph.Graph
	ps      *pricing.Session
	workers int
	cnt     []int32
	covered int
}

func (s *twoNBSession) Graph() *graph.Graph { return s.g }

// SetScanCancel installs a cooperative cancel hook on the session's
// per-agent scans (see ScanCanceller).
func (s *twoNBSession) SetScanCancel(cancel func() bool) { s.ps.SetCancel(cancel) }

func (s *twoNBSession) ensureScratch() {
	if s.cnt == nil {
		s.cnt = make([]int32, s.ps.N())
	}
}

// addContrib loads w's contribution to deviator v's cover: w itself and
// every neighbor of w, excluding v.
func (s *twoNBSession) addContrib(v, w int, view *graph.Dyn) {
	if w != v {
		if s.cnt[w] == 0 {
			s.covered++
		}
		s.cnt[w]++
	}
	for _, u := range view.Neighbors(w) {
		if int(u) == v {
			continue
		}
		if s.cnt[u] == 0 {
			s.covered++
		}
		s.cnt[u]++
	}
}

// delContrib unloads w's contribution.
func (s *twoNBSession) delContrib(v, w int, view *graph.Dyn) {
	if w != v {
		s.cnt[w]--
		if s.cnt[w] == 0 {
			s.covered--
		}
	}
	for _, u := range view.Neighbors(w) {
		if int(u) == v {
			continue
		}
		s.cnt[u]--
		if s.cnt[u] == 0 {
			s.covered--
		}
	}
}

// loadBase loads every current neighbor of v, returning v's live neighbor
// list (valid until the next mutation).
func (s *twoNBSession) loadBase(v int, view *graph.Dyn) []int32 {
	s.ensureScratch()
	nbs := view.Neighbors(v)
	for _, w := range nbs {
		s.addContrib(v, int(w), view)
	}
	return nbs
}

// unloadBase reverts loadBase; the counter must return to all-zero.
func (s *twoNBSession) unloadBase(v int, nbs []int32, view *graph.Dyn) {
	for _, w := range nbs {
		s.delContrib(v, int(w), view)
	}
}

func (s *twoNBSession) Cost(v int, _ Objective) int64 {
	view := s.ps.View()
	nbs := s.loadBase(v, view)
	c := int64(view.N() - 1 - s.covered)
	s.unloadBase(v, nbs, view)
	return c
}

func (s *twoNBSession) SocialCost(_ Objective) int64 {
	var total int64
	for v := 0; v < s.ps.N(); v++ {
		total += s.Cost(v, Sum)
	}
	return total
}

func (s *twoNBSession) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, false)
}

func (s *twoNBSession) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, true)
}

// scanMoves walks the add-major enumeration on the unified scan engine,
// toggling one contribution in and one out per candidate:
// O(deg(add) + vol(N(v))) per endpoint instead of a BFS. Degenerate
// add == drop candidates are no-ops and skipped; adds onto existing
// neighbors price as pure deletions (which never grow a 2-neighborhood,
// but are enumerated for parity with the oracle). The engine runs at one
// worker: the multiplicity counter is a single mutable structure, the
// per-candidate work is adjacency-cheap, and per-chunk counter reloads
// would cost more than they parallelize — the enumeration order, admission
// threshold, and tie-break still come from the one shared protocol.
func (s *twoNBSession) scanMoves(v int, firstOnly bool) (Move, int64, int64, bool) {
	view := s.ps.View()
	n := view.N()
	nbs := s.loadBase(v, view)
	cur := int64(n - 1 - s.covered)
	spec := scan.Spec{
		Workers:   1,
		N:         n,
		Threshold: cur,
		Order:     scan.ByEnumeration,
		Skip:      func(add int) bool { return add == v },
		Cancel:    s.ps.CancelHook(),
	}
	state := func() (struct{}, func()) { return struct{}{}, func() {} }
	pricer := func(_ struct{}, add int, threshold func() int64, yield func(int, int64) bool) {
		fresh := !view.HasEdge(v, add)
		if fresh {
			s.addContrib(v, add, view)
		}
		for i := range nbs {
			drop := int(nbs[i])
			if drop == add {
				continue
			}
			s.delContrib(v, drop, view)
			c := int64(n - 1 - s.covered)
			s.addContrib(v, drop, view)
			if c < threshold() {
				if !yield(i, c) {
					break
				}
			}
		}
		if fresh {
			s.delContrib(v, add, view)
		}
	}
	var cand scan.Cand
	var found bool
	if firstOnly {
		cand, found = scan.First(spec, state, pricer)
	} else {
		cand, found = scan.Best(spec, state, pricer)
	}
	s.unloadBase(v, nbs, view)
	if !found {
		return Move{}, cur, cur, false
	}
	return Move{V: v, Drop: int(nbs[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

// PriceMove prices one candidate from the counter, with the same
// degenerate-move semantics as Evaluate (a non-edge Drop degenerates to
// pricing the insertion alone, add == drop onto an edge is a no-op).
func (s *twoNBSession) PriceMove(m Move, _ Objective) int64 {
	view := s.ps.View()
	n := view.N()
	nbs := s.loadBase(m.V, view)
	fresh := m.Add != m.V && !view.HasEdge(m.V, m.Add)
	if fresh {
		s.addContrib(m.V, m.Add, view)
	}
	dropped := m.Drop != m.Add && view.HasEdge(m.V, m.Drop)
	if dropped {
		s.delContrib(m.V, m.Drop, view)
	}
	c := int64(n - 1 - s.covered)
	if dropped {
		s.addContrib(m.V, m.Drop, view)
	}
	if fresh {
		s.delContrib(m.V, m.Add, view)
	}
	s.unloadBase(m.V, nbs, view)
	return c
}

func (s *twoNBSession) Sample(rng *rand.Rand) (Move, bool) {
	view := s.ps.View()
	return sampleSwap(rng, view.N(), view.Degree, func(v, i int) int {
		return int(view.Neighbors(v)[i])
	})
}

func (s *twoNBSession) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: 2nb Apply: move kind " + m.Kind.String())
	}
	gundo := ApplyToGraph(s.g, m)
	s.ps.ApplySwap(m.V, m.Drop, m.Add)
	return func() {
		s.ps.Undo()
		gundo()
	}
}

func (s *twoNBSession) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *twoNBSession) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}

// ---------------------------------------------------------------------------
// Naive instance.

// twoNBNaive prices every candidate by apply-BFS-revert on the map graph in
// the same add-major enumeration order as twoNBSession.
type twoNBNaive struct {
	g       *graph.Graph
	workers int
}

func (s *twoNBNaive) Graph() *graph.Graph { return s.g }

func (s *twoNBNaive) Cost(v int, _ Objective) int64 { return twoNBRowCost(s.g.BFS(v)) }

func (s *twoNBNaive) SocialCost(_ Objective) int64 {
	var total int64
	for v := 0; v < s.g.N(); v++ {
		total += s.Cost(v, Sum)
	}
	return total
}

func (s *twoNBNaive) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, false)
}

func (s *twoNBNaive) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, true)
}

func (s *twoNBNaive) scanMoves(v int, firstOnly bool) (Move, int64, int64, bool) {
	n := s.g.N()
	cur := s.Cost(v, Sum)
	nbs := s.g.Neighbors(v)
	var best Move
	bestCost := cur
	found := false
	for add := 0; add < n; add++ {
		if add == v {
			continue
		}
		for _, w := range nbs {
			if w == add {
				continue
			}
			m := Move{V: v, Drop: w, Add: add}
			if c := s.PriceMove(m, Sum); c < bestCost {
				best, bestCost, found = m, c, true
				if firstOnly {
					return best, cur, bestCost, true
				}
			}
		}
	}
	if !found {
		return Move{}, cur, cur, false
	}
	return best, cur, bestCost, true
}

func (s *twoNBNaive) PriceMove(m Move, _ Objective) int64 {
	undo := applyLoose(s.g, m)
	row := s.g.BFS(m.V)
	undo()
	return twoNBRowCost(row)
}

func (s *twoNBNaive) Sample(rng *rand.Rand) (Move, bool) {
	return sampleSwap(rng, s.g.N(), s.g.Degree, func(v, i int) int {
		return s.g.Neighbors(v)[i]
	})
}

func (s *twoNBNaive) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: 2nb naive Apply: move kind " + m.Kind.String())
	}
	return ApplyToGraph(s.g, m)
}

func (s *twoNBNaive) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *twoNBNaive) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}
