package game

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/pricing"
)

// Interests is the communication-interests variant of the basic game
// (Cord-Landwehr et al., "Basic Network Creation Games with Communication
// Interests"): the move set is the single-edge swap, but agent v's cost
// counts only distances to its interest set I(v) —
//
//	cost_sum(v) = Σ_{u ∈ I(v)} d(v,u),   cost_max(v) = max_{u ∈ I(v)} d(v,u)
//
// — InfCost when some interested target is unreachable, 0 when I(v) is
// empty. Because an agent is indifferent to vertices outside I(v), an
// improving swap may disconnect uninterested parts of the graph; the
// pricers therefore never assume connectivity.
//
// Pricing is interest-aware end to end: scans reuse the engine's patched
// BFS rows (one row per candidate endpoint shared across dropped edges)
// but reduce them over I(v) only (pricing.PatchedSubset), so restricting
// interests costs nothing over the basic game's pricing.
type Interests struct {
	sets [][]int32
}

// NewInterests builds the model from per-vertex interest sets: sets[v]
// lists the vertices v cares about. Sets are copied and normalized
// (sorted, deduplicated, self-interest dropped); sets may be shorter than
// the graph — missing tails are empty sets. Interest sets need not be
// symmetric.
func NewInterests(sets [][]int32) Interests {
	norm := make([][]int32, len(sets))
	for v, set := range sets {
		s := append([]int32(nil), set...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out := s[:0]
		var prev int32 = -1
		for _, u := range s {
			if u == int32(v) || u == prev {
				continue
			}
			out = append(out, u)
			prev = u
		}
		norm[v] = out
	}
	return Interests{sets: norm}
}

// UniformInterests returns the model with every vertex interested in every
// other vertex — the degenerate case that coincides with the basic swap
// game (same costs, same improving moves).
func UniformInterests(n int) Interests {
	sets := make([][]int32, n)
	for v := range sets {
		set := make([]int32, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				set = append(set, int32(u))
			}
		}
		sets[v] = set
	}
	return Interests{sets: sets}
}

// RandomInterests draws each ordered pair (v, u), v ≠ u, into I(v)
// independently with probability p.
func RandomInterests(n int, p float64, rng *rand.Rand) Interests {
	sets := make([][]int32, n)
	for v := range sets {
		for u := 0; u < n; u++ {
			if u != v && rng.Float64() < p {
				sets[v] = append(sets[v], int32(u))
			}
		}
	}
	return Interests{sets: sets}
}

// Sets returns the normalized per-vertex interest sets (owned by the
// model; do not modify).
func (m Interests) Sets() [][]int32 { return m.sets }

// Name returns "interests".
func (Interests) Name() string { return "interests" }

// set returns I(v), tolerating vertices past the configured sets.
func (m Interests) set(v int) []int32 {
	if v < len(m.sets) {
		return m.sets[v]
	}
	return nil
}

// validate panics when a configured interest targets a vertex outside g.
func (m Interests) validate(g *graph.Graph) {
	n := int32(g.N())
	for v, set := range m.sets {
		for _, u := range set {
			if u < 0 || u >= n {
				panic(fmt.Sprintf("game: Interests set of %d targets %d, graph has n=%d", v, u, n))
			}
		}
	}
}

// New starts an incremental interests session on g.
func (m Interests) New(g *graph.Graph, workers int) Instance {
	m.validate(g)
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	return &interestsSession{g: g, ps: eng.NewSession(g), eng: eng, workers: workers, model: m}
}

// Naive returns the apply-measure-revert oracle instance.
func (m Interests) Naive(g *graph.Graph, workers int) Instance {
	m.validate(g)
	return &interestsNaive{g: g, workers: normWorkers(workers), model: m}
}

// ---------------------------------------------------------------------------
// Fast instance.

// interestsSession prices interest-restricted swaps over a live pricing
// session: per-agent scans reuse the engine's dropped-edge rows and one
// BFS per candidate endpoint, reduced over I(v). The enumeration is the
// basic game's add-major order; ties keep the enumeration-first candidate.
// Candidate endpoints are sharded across the session's workers *inside*
// each vertex (scanAddMajor), the way swapScan shards the basic game's
// checker: with dense interest sets the per-candidate Θ(|I(v)|) reduction
// rides on top of every per-endpoint BFS, and both now split across cores
// while staying bit-identical to the sequential scan.
type interestsSession struct {
	g       *graph.Graph
	ps      *pricing.Session
	eng     *pricing.Engine
	workers int
	model   Interests
}

func (s *interestsSession) Graph() *graph.Graph { return s.g }

// SetScanCancel installs a cooperative cancel hook on the session's
// per-agent scans (see ScanCanceller).
func (s *interestsSession) SetScanCancel(cancel func() bool) { s.ps.SetCancel(cancel) }

func (s *interestsSession) Cost(v int, obj Objective) int64 {
	dist, queue, release := s.eng.Scratch(s.ps.N())
	defer release()
	s.ps.View().BFSInto(v, dist, queue)
	return pricing.UsageSubset(dist, s.model.set(v), pobj(obj))
}

func (s *interestsSession) SocialCost(obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dist, queue, release := s.eng.Scratch(n)
	defer release()
	var total int64
	for v := 0; v < n; v++ {
		view.BFSInto(v, dist, queue)
		c := pricing.UsageSubset(dist, s.model.set(v), pobj(obj))
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

func (s *interestsSession) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *interestsSession) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

func (s *interestsSession) scanMoves(v int, obj Objective, firstOnly bool) (best Move, oldCost, newCost int64, ok bool) {
	po := pobj(obj)
	set := s.model.set(v)
	scan := s.ps.NewScan(v)
	defer scan.Close()
	cur := pricing.UsageSubset(scan.CurrentRow(), set, po)
	view := s.ps.View()
	// Adds onto existing neighbors realize pure deletions, and a deletion
	// never shortens any distance, so such candidates can never price
	// strictly below cur: skipping them drops the endpoint's BFS and its
	// whole per-drop reduction without changing any scan outcome (the naive
	// oracle still enumerates them, so the differential suite pins this).
	// On hub-heavy positions this removes the hub's entire O(n·deg·|I|)
	// scan.
	cand, found := scanAddMajor(s.eng, view, scan, s.workers,
		func(add int) bool { return view.HasEdge(v, add) },
		func(i int, dw []int32, threshold int64) (int64, bool) {
			return pricing.PatchedSubsetBelow(scan.DropRow(i), dw, set, po, threshold)
		},
		cur, firstOnly)
	if !found {
		return best, cur, cur, false
	}
	return Move{V: v, Drop: int(scan.Drops()[cand.DropIdx]), Add: cand.Add}, cur, cand.Cost, true
}

func (s *interestsSession) PriceMove(m Move, obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dv, qv, relV := s.eng.Scratch(n)
	defer relV()
	dw, qw, relW := s.eng.Scratch(n)
	defer relW()
	view.BFSSkipEdge(m.V, m.V, m.Drop, dv, qv)
	view.BFSSkipVertex(m.Add, m.V, dw, qw)
	return pricing.PatchedSubset(dv, dw, s.model.set(m.V), pobj(obj))
}

func (s *interestsSession) Sample(rng *rand.Rand) (Move, bool) {
	view := s.ps.View()
	return sampleSwap(rng, view.N(), view.Degree, func(v, i int) int {
		return int(view.Neighbors(v)[i])
	})
}

func (s *interestsSession) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: interests Apply: move kind " + m.Kind.String())
	}
	gundo := ApplyToGraph(s.g, m)
	s.ps.ApplySwap(m.V, m.Drop, m.Add)
	return func() {
		s.ps.Undo()
		gundo()
	}
}

func (s *interestsSession) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *interestsSession) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}

// ---------------------------------------------------------------------------
// Naive instance.

// interestsNaive prices every candidate by apply-BFS-revert on the map
// graph, reduced over I(v), in the same add-major enumeration order as
// interestsSession.
type interestsNaive struct {
	g       *graph.Graph
	workers int
	model   Interests
}

func (s *interestsNaive) Graph() *graph.Graph { return s.g }

func (s *interestsNaive) Cost(v int, obj Objective) int64 {
	return pricing.UsageSubset(s.g.BFS(v), s.model.set(v), pobj(obj))
}

func (s *interestsNaive) SocialCost(obj Objective) int64 {
	var total int64
	for v := 0; v < s.g.N(); v++ {
		c := s.Cost(v, obj)
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

func (s *interestsNaive) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, false)
}

func (s *interestsNaive) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	return s.scanMoves(v, obj, true)
}

func (s *interestsNaive) scanMoves(v int, obj Objective, firstOnly bool) (best Move, oldCost, newCost int64, ok bool) {
	n := s.g.N()
	cur := s.Cost(v, obj)
	bestCost := cur
	nbs := s.g.Neighbors(v)
	for add := 0; add < n; add++ {
		if add == v {
			continue
		}
		for _, w := range nbs {
			m := Move{V: v, Drop: w, Add: add}
			if c := s.PriceMove(m, obj); c < bestCost {
				bestCost, best, ok = c, m, true
				if firstOnly {
					return best, cur, bestCost, true
				}
			}
		}
	}
	return best, cur, bestCost, ok
}

func (s *interestsNaive) PriceMove(m Move, obj Objective) int64 {
	undo := applyLoose(s.g, m)
	row := s.g.BFS(m.V)
	undo()
	return pricing.UsageSubset(row, s.model.set(m.V), pobj(obj))
}

func (s *interestsNaive) Sample(rng *rand.Rand) (Move, bool) {
	return sampleSwap(rng, s.g.N(), s.g.Degree, func(v, i int) int {
		return s.g.Neighbors(v)[i]
	})
}

func (s *interestsNaive) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: interests naive Apply: move kind " + m.Kind.String())
	}
	return ApplyToGraph(s.g, m)
}

func (s *interestsNaive) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *interestsNaive) CheckStable(obj Objective) (bool, *Violation, error) {
	return sweepStable(s, obj)
}
