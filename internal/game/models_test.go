package game_test

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// randomConnected builds a random tree plus chords.
func randomConnected(rng *rand.Rand, n, chords int) *graph.Graph {
	g := treegen.RandomTree(n, rng)
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// requireSameScan compares a fast and a naive instance on every pricing
// entry point for every agent, then applies one move on both and repeats —
// the per-call contract behind the trajectory-level differential tests in
// internal/dynamics.
func requireSameScan(t *testing.T, label string, fast, naive game.Instance, obj game.Objective) {
	t.Helper()
	n := fast.Graph().N()
	for v := 0; v < n; v++ {
		if got, want := fast.Cost(v, obj), naive.Cost(v, obj); got != want {
			t.Fatalf("%s: Cost(%d) fast %d, naive %d", label, v, got, want)
		}
		fm, fo, fn, fok := fast.BestMove(v, obj)
		nm, no, nn, nok := naive.BestMove(v, obj)
		if fok != nok || fo != no || fn != nn || (fok && fm != nm) {
			t.Fatalf("%s: BestMove(%d) fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
				label, v, fm, fo, fn, fok, nm, no, nn, nok)
		}
		fm, fo, fn, fok = fast.FirstImproving(v, obj)
		nm, no, nn, nok = naive.FirstImproving(v, obj)
		if fok != nok || fo != no || fn != nn || (fok && fm != nm) {
			t.Fatalf("%s: FirstImproving(%d) fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
				label, v, fm, fo, fn, fok, nm, no, nn, nok)
		}
	}
	if got, want := fast.SocialCost(obj), naive.SocialCost(obj); got != want {
		t.Fatalf("%s: SocialCost fast %d, naive %d", label, got, want)
	}
	fm, fo, fn, fok := fast.FindImprovement(obj)
	nm, no, nn, nok := naive.FindImprovement(obj)
	if fok != nok || (fok && (fm != nm || fo != no || fn != nn)) {
		t.Fatalf("%s: FindImprovement fast (%v,%d,%d,%v), naive (%v,%d,%d,%v)",
			label, fm, fo, fn, fok, nm, no, nn, nok)
	}
	fs, _, ferr := fast.CheckStable(obj)
	ns, _, nerr := naive.CheckStable(obj)
	if fs != ns || (ferr == nil) != (nerr == nil) {
		t.Fatalf("%s: CheckStable fast (%v,%v), naive (%v,%v)", label, fs, ferr, ns, nerr)
	}
}

// driveDifferential runs requireSameScan, then applies a few improving
// moves through both instances and re-checks after each.
func driveDifferential(t *testing.T, label string, model game.Model, base *graph.Graph, obj game.Objective, workers int) {
	t.Helper()
	gFast := base.Clone()
	gNaive := base.Clone()
	fast := model.New(gFast, workers)
	naive := model.Naive(gNaive, workers)
	requireSameScan(t, label, fast, naive, obj)
	for step := 0; step < 4; step++ {
		m, _, newCost, ok := fast.FindImprovement(obj)
		if !ok {
			break
		}
		fast.Apply(m)
		naive.Apply(m)
		if !gFast.Equal(gNaive) {
			t.Fatalf("%s step %d: graphs diverge after %v", label, step, m)
		}
		// The applied move must realize its priced cost on the live state.
		if got := fast.Cost(m.V, obj); got != newCost {
			t.Fatalf("%s step %d: move %v priced %d, realizes %d", label, step, m, newCost, got)
		}
		requireSameScan(t, label, fast, naive, obj)
	}
}

// modelCase is one row of the model-generic differential table: a factory
// so per-instance configuration (budgets, edge costs, interest sets) can
// vary with the trial.
type modelCase struct {
	name  string
	build func(n int, rng *rand.Rand) game.Model
	// maxExtra bounds the random size increment on top of the 5-vertex
	// floor; naive oracles differ widely in cost, so expensive models run
	// slightly smaller instances.
	maxExtra int
	trials   int
}

// modelTable is the five-model roster every model-generic suite iterates.
// New deviation models join the harness by adding one row here.
func modelTable() []modelCase {
	return []modelCase{
		{"swap", func(int, *rand.Rand) game.Model { return game.Swap{} }, 12, 6},
		{"budget", func(_ int, rng *rand.Rand) game.Model {
			return game.Budget{K: 2 + rng.Intn(3)}
		}, 12, 5},
		{"2nb", func(int, *rand.Rand) game.Model { return game.TwoNeighborhood{} }, 12, 5},
		{"greedy", func(_ int, rng *rand.Rand) game.Model {
			return game.Greedy{EdgeCost: []int64{0, 1, 3}[rng.Intn(3)]}
		}, 9, 5},
		{"interests", func(n int, rng *rand.Rand) game.Model {
			return game.RandomInterests(n, 0.2+rng.Float64()*0.6, rng)
		}, 10, 5},
	}
}

// TestModelsFastMatchesNaive is the model-generic fast-vs-naive per-call
// differential: every model of the roster, both objectives, several worker
// counts, random instances with improving moves applied in between. It
// replaces the per-model differential copies the first three models used
// to carry.
func TestModelsFastMatchesNaive(t *testing.T) {
	for _, mc := range modelTable() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			for trial := 0; trial < mc.trials; trial++ {
				n := 5 + rng.Intn(mc.maxExtra)
				base := randomConnected(rng, n, rng.Intn(6))
				model := mc.build(n, rng)
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					for _, workers := range []int{1, 3} {
						driveDifferential(t, mc.name, model, base, obj, workers)
					}
				}
			}
		})
	}
}

// TestModelsScanWorkerInvariant pins that every model's sharded per-agent
// scan stays bit-identical to its workers == 1 scan — same moves, same
// costs, same witnesses — for any worker count (the scanAddMajor merge is
// deterministic by construction; this is the cross-model regression net
// for it). An extra dense-interests row exercises the dense-set lever at
// |I(v)| ≈ 0.9·n, where the thresholded reduction's abort points differ
// between chunks.
func TestModelsScanWorkerInvariant(t *testing.T) {
	cases := append(modelTable(), modelCase{
		"interests-dense", func(n int, rng *rand.Rand) game.Model {
			return game.RandomInterests(n, 0.9, rng)
		}, 0, 0,
	})
	for _, mc := range cases {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(94))
			n := 32
			g := randomConnected(rng, n, 14)
			model := mc.build(n, rng)
			ref := model.New(g.Clone(), 1)
			for _, workers := range []int{2, 4, 8} {
				inst := model.New(g.Clone(), workers)
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					for v := 0; v < n; v++ {
						rm, ro, rn2, rok := ref.BestMove(v, obj)
						im, io, in, iok := inst.BestMove(v, obj)
						if rok != iok || rm != im || ro != io || rn2 != in {
							t.Fatalf("workers=%d obj=%v: BestMove(%d) sequential (%v,%d,%d,%v), sharded (%v,%d,%d,%v)",
								workers, obj, v, rm, ro, rn2, rok, im, io, in, iok)
						}
						rm, ro, rn2, rok = ref.FirstImproving(v, obj)
						im, io, in, iok = inst.FirstImproving(v, obj)
						if rok != iok || rm != im || ro != io || rn2 != in {
							t.Fatalf("workers=%d obj=%v: FirstImproving(%d) diverges", workers, obj, v)
						}
					}
					rm, ro, rn2, rok := ref.FindImprovement(obj)
					im, io, in, iok := inst.FindImprovement(obj)
					if rok != iok || rm != im || ro != io || rn2 != in {
						t.Fatalf("workers=%d obj=%v: FindImprovement diverges", workers, obj)
					}
				}
			}
		})
	}
}

// TestModelsSampleParity pins that fast and naive instances consume rng
// identically and draw the same probes for every model — the
// random-improving policy's reproducibility rests on this.
func TestModelsSampleParity(t *testing.T) {
	for _, mc := range modelTable() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(72))
			n := 17
			g := randomConnected(rng, n, 5)
			model := mc.build(n, rng)
			fast := model.New(g.Clone(), 1)
			naive := model.Naive(g.Clone(), 1)
			ra := rand.New(rand.NewSource(9))
			rb := rand.New(rand.NewSource(9))
			for i := 0; i < 500; i++ {
				ma, oka := fast.Sample(ra)
				mb, okb := naive.Sample(rb)
				if oka != okb || ma != mb {
					t.Fatalf("probe %d: fast (%v,%v), naive (%v,%v)", i, ma, oka, mb, okb)
				}
			}
		})
	}
}

// TestModelsPriceMoveMatchesOracle pins the single-probe pricing path of
// every model against its naive oracle on sampled candidates.
func TestModelsPriceMoveMatchesOracle(t *testing.T) {
	for _, mc := range modelTable() {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(83))
			n := 13
			g := randomConnected(rng, n, 4)
			model := mc.build(n, rng)
			fast := model.New(g.Clone(), 1)
			naive := model.Naive(g.Clone(), 1)
			probe := rand.New(rand.NewSource(6))
			for i := 0; i < 400; i++ {
				m, ok := fast.Sample(probe)
				if !ok {
					continue
				}
				for _, obj := range []game.Objective{game.Sum, game.Max} {
					if got, want := fast.PriceMove(m, obj), naive.PriceMove(m, obj); got != want {
						t.Fatalf("probe %d obj=%v: move %v fast %d, naive %d", i, obj, m, got, want)
					}
				}
			}
		})
	}
}
