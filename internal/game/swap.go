package game

import (
	"context"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pricing"
)

// Swap is the source paper's basic game: the only move is the single-edge
// swap Move{V, Drop, Add}, priced under SUM or MAX usage cost. Its fast
// instance is the incremental pricing session previously hard-wired into
// core.Session; trajectories, selections, and equilibrium verdicts are
// bit-identical to the pre-refactor swap-only stack (the differential
// suites in internal/dynamics and internal/core pin that move-for-move).
type Swap struct{}

// Name returns "swap".
func (Swap) Name() string { return "swap" }

// New starts an incremental swap session on g.
func (Swap) New(g *graph.Graph, workers int) Instance { return NewSwapSession(g, workers) }

// Naive returns the oracle instance: best-swap and first-improvement scans
// re-freeze the graph per call, probes price by apply-BFS-revert.
func (Swap) Naive(g *graph.Graph, workers int) Instance {
	return &swapNaive{g: g, workers: normWorkers(workers)}
}

// ---------------------------------------------------------------------------
// One-shot helpers (shared by core's package-level API and the oracle
// instance).

// BestSwap returns agent v's cost-minimizing swap over one frozen
// snapshot, its new cost, and whether it strictly improves, with ties
// broken toward the lexicographically smallest (Drop, Add). The candidate
// scan is sharded across workers; the result is identical for every count.
func BestSwap(g *graph.Graph, v int, obj Objective, workers int) (best Move, newCost int64, improves bool) {
	sc := pricing.Shared(workers).NewScan(g.Freeze(), v)
	defer sc.Close()
	cur := sc.CurrentUsage(pobj(obj))
	newCost = cur
	// Adds onto existing neighbors realize pure deletions (and add == drop
	// a no-op); a deletion never shortens a distance, so those candidates
	// price >= cur and can never be the improving winner — skipping them
	// drops their BFS without changing any reported result (the Naive*
	// oracles keep enumerating them, pinning the skip).
	if b, ok := sc.BestMove(pobj(obj), true); ok && b.Cost < cur {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, b.Cost, true
	}
	return best, newCost, false
}

// PriceSwaps streams every candidate swap of agent v over one frozen
// snapshot in the engine's add-major order (add ascending; for each add,
// dropped edges ascending), invoking fn with the post-move cost. fn
// returning false stops the scan.
func PriceSwaps(g *graph.Graph, v int, obj Objective, fn func(m Move, newCost int64) bool) {
	scan := pricing.Shared(1).NewScan(g.Freeze(), v)
	defer scan.Close()
	drops := scan.Drops()
	scan.ForEach(pobj(obj), false, func(i, add int, cost int64) bool {
		return fn(Move{V: v, Drop: int(drops[i]), Add: add}, cost)
	})
}

// CheckSwap reports whether no single swap strictly improves any agent —
// and, when deletionCritical is set and obj is Max, whether additionally
// deleting any edge strictly increases the agent's local diameter (the
// full max-equilibrium condition). Returns ErrDisconnected for
// disconnected input and a deterministic witness violation on failure.
func CheckSwap(g *graph.Graph, obj Objective, workers int, deletionCritical bool) (bool, *Violation, error) {
	return CheckSwapCtx(nil, g, obj, workers, deletionCritical)
}

// swapScan walks agents in ascending order over a shared snapshot — a
// one-shot Frozen or a session's live CSR — and returns the first
// violation, nil when every agent is stable. The per-agent candidate scan
// is sharded across workers *inside* the vertex with the engine's
// deterministic first-improvement merge, so single-agent workloads on huge
// n use every worker, the early exit at the first violating vertex wastes
// no cross-vertex work, and the witness is identical for any worker count.
// ctx (nil tolerated) is polled between agents; its error is returned on
// cancellation.
func swapScan(ctx context.Context, view pricing.Snapshot, obj Objective, workers int, deletionCritical bool) (*Violation, error) {
	n := view.N()
	eng := pricing.Shared(workers)
	po := pobj(obj)
	for v := 0; v < n; v++ {
		if err := pollCtx(ctx); err != nil {
			return nil, err
		}
		if viol := swapScanVertex(eng, view, v, obj, po, deletionCritical); viol != nil {
			return viol, nil
		}
	}
	return nil, nil
}

// swapScanVertex scans all moves of agent v, returning the first violation
// in per-vertex order: deletion-criticality (when requested) before swaps,
// swaps in the engine's add-major enumeration order. The swap scan skips
// adds onto current neighbors (the deletion-skip): such candidates realize
// pure deletions or no-ops, which never price strictly below cur, so the
// witness is unchanged while hub-heavy agents (a star center is adjacent
// to everyone) drop their whole endpoint-BFS scan.
func swapScanVertex(eng *pricing.Engine, view pricing.Snapshot, v int, obj Objective, po pricing.Objective, deletionCritical bool) *Violation {
	sc := eng.NewScan(view, v)
	defer sc.Close()
	cur := sc.CurrentUsage(po)

	if obj == Max && deletionCritical {
		if viol := deletionViolation(sc, v, cur); viol != nil {
			return viol
		}
	}

	if b, ok := sc.FirstImproving(po, true, cur); ok {
		return &Violation{
			Kind:    SwapImproves,
			Move:    Move{V: v, Drop: b.Drop, Add: b.Add},
			Agent:   v,
			OldCost: cur,
			NewCost: b.Cost,
		}
	}
	return nil
}

// deletionViolation checks the deletion-criticality half of the
// max-equilibrium condition from the scan's dropped-edge rows: deleting vw
// must strictly increase v's local diameter. Shared by the per-agent
// checker and the batched whole-graph sweep.
func deletionViolation(sc *pricing.Scan, v int, cur int64) *Violation {
	for i, w := range sc.Drops() {
		if del := sc.DeletionUsage(i, pricing.Max); del <= cur {
			return &Violation{
				Kind:    DeletionSafe,
				Edge:    graph.NewEdge(v, int(w)),
				Agent:   v,
				OldCost: cur,
				NewCost: del,
			}
		}
	}
	return nil
}

// sampleSwap draws the swap model's random probe: a uniform vertex, a
// uniform incident edge to drop, and a uniform new endpoint; infeasible
// draws (isolated vertex, add == v, add == drop) are wasted probes. deg
// and nb abstract the adjacency source so the fast (live CSR) and naive
// (map graph) instances consume rng identically.
func sampleSwap(rng *rand.Rand, n int, deg func(v int) int, nb func(v, i int) int) (Move, bool) {
	v := rng.Intn(n)
	d := deg(v)
	if d == 0 {
		return Move{}, false
	}
	w := nb(v, rng.Intn(d))
	wp := rng.Intn(n)
	if wp == v || wp == w {
		return Move{}, false
	}
	return Move{V: v, Drop: w, Add: wp}, true
}

// ---------------------------------------------------------------------------
// Fast instance: the incremental pricing session.

// SwapSession is the swap model's fast instance: it owns a live CSR
// snapshot (pricing.Session over graph.Dyn) kept in sync with the
// authoritative map-backed graph, so a whole dynamics trajectory — or a
// best-response iteration, or an equilibrium-certification sweep — prices
// every move against one snapshot that is patched in O(deg) per applied
// move instead of re-frozen in O(n+m).
//
// Lifecycle: NewSwapSession thaws the graph once (freeze), Apply routes
// each move to both structures (apply), the session's generation counter
// invalidates any outstanding scans and the probe-row cache (invalidate),
// and BestMove / FirstImproving / FindImprovement / CheckStable certify
// against the same live snapshot (certify). All pricing results are
// bit-identical to the one-shot engine paths (BestSwap, PriceSwaps) on the
// same graph, for any worker count.
//
// A SwapSession is single-writer: Apply and undo must not race with
// pricing calls. The pricing calls themselves shard internally across the
// session's workers.
type SwapSession struct {
	g       *graph.Graph
	ps      *pricing.Session
	eng     *pricing.Engine
	workers int
	probe   probeCache
	nbAt    func(v, i int) int // lazily built Sample accessor (avoids a per-probe closure)
}

// NewSwapSession starts a session on g with the given pricing parallelism
// (<= 0 means all cores). The engine (and its pooled BFS scratch) is
// shared with other sessions and one-shot calls at the same worker count.
func NewSwapSession(g *graph.Graph, workers int) *SwapSession {
	workers = normWorkers(workers)
	eng := pricing.Shared(workers)
	return &SwapSession{g: g, ps: eng.NewSession(g), eng: eng, workers: workers}
}

// Graph returns the authoritative mutable graph. Mutating it directly
// desynchronizes the session; route moves through Apply.
func (s *SwapSession) Graph() *graph.Graph { return s.g }

// SetScanCancel installs a cooperative cancel hook on the session's
// per-agent scans (see ScanCanceller).
func (s *SwapSession) SetScanCancel(cancel func() bool) { s.ps.SetCancel(cancel) }

// Workers returns the session's pricing parallelism.
func (s *SwapSession) Workers() int { return s.workers }

// View returns the live CSR snapshot for read-only use (e.g. sampling
// neighbors without allocating); mutate only through Apply.
func (s *SwapSession) View() *graph.Dyn { return s.ps.View() }

// Apply performs the swap m on both the graph and the live snapshot,
// returning a function that undoes the move on both (undos must be
// invoked in LIFO order). Invalid moves (non-swap kind, Drop not a
// neighbor) panic, like ApplyToGraph.
func (s *SwapSession) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: SwapSession.Apply: move kind " + m.Kind.String())
	}
	gundo := ApplyToGraph(s.g, m)
	s.ps.ApplySwap(m.V, m.Drop, m.Add)
	return func() {
		s.ps.Undo()
		gundo()
	}
}

// Cost returns agent v's usage cost from one BFS row over the live
// snapshot. It equals Cost(g, v, obj) on the synced graph.
func (s *SwapSession) Cost(v int, obj Objective) int64 {
	dist, queue, release := s.eng.Scratch(s.ps.N())
	defer release()
	s.ps.View().BFSInto(v, dist, queue)
	return pricing.Usage(dist, pobj(obj))
}

// SocialCost returns the sum of all agents' usage costs (InfCost when the
// graph is disconnected), computed over the live snapshot.
func (s *SwapSession) SocialCost(obj Objective) int64 {
	n := s.ps.N()
	view := s.ps.View()
	dist, queue, release := s.eng.Scratch(n)
	defer release()
	var total int64
	for v := 0; v < n; v++ {
		view.BFSInto(v, dist, queue)
		c := pricing.Usage(dist, pobj(obj))
		if c >= InfCost {
			return InfCost
		}
		total += c
	}
	return total
}

// BestMove returns agent v's cost-minimizing swap over the live snapshot,
// with the same deterministic (cost, drop, add) tie-break as BestSwap,
// plus v's current cost (read from the scan for free). The
// candidate-endpoint scan is sharded across the session's workers and
// skips adds onto current neighbors (pure deletions never price strictly
// below cur, so the improving winner is unchanged).
func (s *SwapSession) BestMove(v int, obj Objective) (best Move, oldCost, newCost int64, ok bool) {
	sc := s.ps.NewScan(v)
	defer sc.Close()
	cur := sc.CurrentUsage(pobj(obj))
	if b, found := sc.BestMove(pobj(obj), true); found && b.Cost < cur {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, cur, b.Cost, true
	}
	return best, cur, cur, false
}

// FirstImproving returns agent v's first improving swap in the engine's
// add-major enumeration order — the first-improvement policy's move —
// sharded across the session's workers with a deterministic merge, so the
// result equals the sequential early-exit scan for any worker count. Like
// BestMove it skips adds onto current neighbors; no such candidate can
// price strictly below cur, so the first improving move is unchanged (the
// naive oracle keeps enumerating everything, pinning the skip).
func (s *SwapSession) FirstImproving(v int, obj Objective) (m Move, oldCost, newCost int64, ok bool) {
	sc := s.ps.NewScan(v)
	defer sc.Close()
	cur := sc.CurrentUsage(pobj(obj))
	if b, found := sc.FirstImproving(pobj(obj), true, cur); found {
		return Move{V: v, Drop: b.Drop, Add: b.Add}, cur, b.Cost, true
	}
	return m, cur, cur, false
}

// PriceSwaps streams every candidate swap of agent v over the live
// snapshot in the same add-major order as the package-level PriceSwaps,
// without re-freezing.
func (s *SwapSession) PriceSwaps(v int, obj Objective, fn func(m Move, newCost int64) bool) {
	scan := s.ps.NewScan(v)
	defer scan.Close()
	drops := scan.Drops()
	scan.ForEach(pobj(obj), false, func(i, add int, cost int64) bool {
		return fn(Move{V: v, Drop: int(drops[i]), Add: add}, cost)
	})
}

// PriceMove prices a single candidate move from two BFS rows over the live
// snapshot — d_{G−vw}(v,·) patched with d_{G−v}(w',·) — without mutating
// anything. It equals Evaluate(g, m, obj) on the synced graph and is the
// random-improving policy's probe path. Requires Add != V; Drop need not
// be a neighbor (a non-edge drop degenerates to pricing the insertion
// alone, matching Evaluate). The deviator's row is memoized across probes
// within one mutation generation (see probeCache), so repeated probes of
// the same (deviator, dropped edge) — the common case inside a patience
// window, whose keyspace is only 2m — skip that BFS entirely. The
// endpoint's row is keyed by (add, v), an n² keyspace that almost never
// repeats, so it is deliberately not cached.
func (s *SwapSession) PriceMove(m Move, obj Objective) int64 {
	dv := s.probeRow(probeKey{v: int32(m.V), drop: int32(m.Drop)})
	dw, qw, relW := s.eng.Scratch(s.ps.N())
	defer relW()
	s.ps.View().BFSSkipVertex(m.Add, m.V, dw, qw)
	return pricing.Patched(dv, dw, pobj(obj))
}

// FindImprovement scans agents in ascending order for the first improving
// swap — the certification sweep of the random-improving policy. Within
// each agent the scan is sharded across the session's workers with the
// deterministic first-improvement merge, so the returned move is the same
// for any worker count. ok is false exactly when the graph is in swap
// equilibrium under obj.
func (s *SwapSession) FindImprovement(obj Objective) (m Move, oldCost, newCost int64, ok bool) {
	return findImprovement(s, obj)
}

// CheckStable reports whether no single swap strictly improves any agent,
// certifying against the live snapshot without re-freezing; each agent's
// scan is sharded across the session's workers. The verdict agrees with
// the one-shot CheckSwap on the synced graph.
func (s *SwapSession) CheckStable(obj Objective) (bool, *Violation, error) {
	n := s.ps.N()
	if n <= 1 {
		return true, nil, nil
	}
	dist, queue, release := s.eng.Scratch(n)
	if s.ps.View().BFSInto(0, dist, queue) != n {
		release()
		return false, nil, ErrDisconnected
	}
	release()
	found, _ := swapScan(nil, s.ps.View(), obj, s.workers, false)
	return found == nil, found, nil
}

// Sample draws the swap model's random probe from the live snapshot.
func (s *SwapSession) Sample(rng *rand.Rand) (Move, bool) {
	view := s.ps.View()
	if s.nbAt == nil {
		s.nbAt = func(v, i int) int { return int(view.Neighbors(v)[i]) }
	}
	return sampleSwap(rng, view.N(), view.Degree, s.nbAt)
}

// ---------------------------------------------------------------------------
// Probe-row cache.

// probeKey identifies one memoizable deviator row of the live snapshot:
// d_{G−v·drop}(v,·), the row PriceMove patches candidate endpoints
// against.
type probeKey struct {
	v, drop int32
}

// probeCache memoizes PriceMove's deviator rows within one mutation
// generation. Random-improving dynamics fire Θ(patience) probes between
// applied moves; the (deviator, dropped edge) pair ranges over only 2m
// keys, so probes repeat it many times inside one patience window, and the
// row depends only on its key while the graph is unchanged — the cache
// converts those repeats into a map hit. Any applied or undone move bumps
// the session generation, which recycles every row (contents would be
// stale). Capacity is bounded; past it, rows are computed into pooled
// scratch uncached.
type probeCache struct {
	gen  uint64
	rows map[probeKey][]int32
	free [][]int32
}

// probeCacheCap bounds the resident rows (n int32 each).
const probeCacheCap = 4096

// probeRow returns the deviator row for k, cached when possible. The row
// is owned by the cache (or pooled scratch pinned until the next PriceMove
// on this session); callers must not retain it across calls.
func (s *SwapSession) probeRow(k probeKey) []int32 {
	c := &s.probe
	if gen := s.ps.Gen(); c.rows == nil || c.gen != gen {
		if c.rows == nil {
			c.rows = make(map[probeKey][]int32)
		} else {
			for key, row := range c.rows {
				c.free = append(c.free, row)
				delete(c.rows, key)
			}
		}
		c.gen = gen
	}
	if row, ok := c.rows[k]; ok {
		return row
	}
	n := s.ps.N()
	var row []int32
	if l := len(c.free); l > 0 {
		row, c.free = c.free[l-1], c.free[:l-1]
	} else {
		row = make([]int32, n)
	}
	_, queue, release := s.eng.Scratch(n)
	s.ps.View().BFSSkipEdge(int(k.v), int(k.v), int(k.drop), row, queue)
	release()
	if len(c.rows) < probeCacheCap {
		c.rows[k] = row
	} else {
		c.free = append(c.free, row)
	}
	return row
}

// ---------------------------------------------------------------------------
// Naive instance: the pre-session oracle.

// swapNaive prices every call against the map-backed graph — best-swap and
// first-improvement scans re-freeze per call, probes apply-measure-revert
// — reproducing the pre-session dynamics loop exactly.
type swapNaive struct {
	g       *graph.Graph
	workers int
}

func (s *swapNaive) Graph() *graph.Graph { return s.g }

func (s *swapNaive) Cost(v int, obj Objective) int64 { return Cost(s.g, v, obj) }

func (s *swapNaive) SocialCost(obj Objective) int64 { return SocialCost(s.g, obj) }

func (s *swapNaive) BestMove(v int, obj Objective) (Move, int64, int64, bool) {
	m, newCost, improves := BestSwap(s.g, v, obj, s.workers)
	if !improves {
		return Move{}, newCost, newCost, false
	}
	old := Cost(s.g, v, obj)
	return m, old, newCost, true
}

func (s *swapNaive) FirstImproving(v int, obj Objective) (Move, int64, int64, bool) {
	cur := Cost(s.g, v, obj)
	var chosen *Move
	var chosenCost int64
	PriceSwaps(s.g, v, obj, func(m Move, c int64) bool {
		if c < cur {
			mm := m
			chosen, chosenCost = &mm, c
			return false
		}
		return true
	})
	if chosen == nil {
		return Move{}, cur, cur, false
	}
	return *chosen, cur, chosenCost, true
}

func (s *swapNaive) PriceMove(m Move, obj Objective) int64 { return Evaluate(s.g, m, obj) }

func (s *swapNaive) Sample(rng *rand.Rand) (Move, bool) {
	return sampleSwap(rng, s.g.N(), s.g.Degree, func(v, i int) int {
		return s.g.Neighbors(v)[i]
	})
}

func (s *swapNaive) Apply(m Move) (undo func()) {
	if m.Kind != KindSwap {
		panic("game: swap Naive Apply: move kind " + m.Kind.String())
	}
	return ApplyToGraph(s.g, m)
}

func (s *swapNaive) FindImprovement(obj Objective) (Move, int64, int64, bool) {
	return findImprovement(s, obj)
}

func (s *swapNaive) CheckStable(obj Objective) (bool, *Violation, error) {
	return CheckSwap(s.g, obj, s.workers, false)
}
