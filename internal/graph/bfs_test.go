package graph

import (
	"math/rand"
	"testing"
)

// floydWarshall is an independent O(n^3) reference implementation used to
// validate the BFS-based APSP.
func floydWarshall(g *Graph) [][]int {
	n := g.N()
	const inf = 1 << 30
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else if g.HasEdge(i, j) {
				d[i][j] = 1
			} else {
				d[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= inf {
				d[i][j] = Unreachable
			}
		}
	}
	return d
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	for v := 0; v < 5; v++ {
		if int(dist[v]) != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Errorf("unreachable distances = %v, want -1", dist[2:])
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", dist[1])
	}
}

func TestBFSIntoReusesBuffers(t *testing.T) {
	g := cycleGraph(6)
	dist := make([]int32, 6)
	queue := make([]int, 0, 6)
	if reached := g.BFSInto(2, dist, queue); reached != 6 {
		t.Fatalf("reached = %d, want 6", reached)
	}
	if dist[5] != 3 {
		t.Errorf("dist[5] = %d, want 3", dist[5])
	}
	// Second call must fully overwrite previous state.
	g2 := New(6)
	g2.AddEdge(0, 1)
	if reached := g2.BFSInto(0, dist, queue); reached != 2 {
		t.Fatalf("second reached = %d, want 2", reached)
	}
	if dist[5] != Unreachable {
		t.Errorf("stale distance survived: dist[5] = %d", dist[5])
	}
}

func TestBFSIntoLengthMismatchPanics(t *testing.T) {
	g := pathGraph(3)
	defer func() {
		if recover() == nil {
			t.Fatal("BFSInto with wrong dist length did not panic")
		}
	}()
	g.BFSInto(0, make([]int32, 2), nil)
}

func TestAllPairsMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		g := randomConnected(rng, n, 0.25)
		if trial%5 == 0 {
			// Also exercise disconnected graphs.
			g = New(n)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if rng.Float64() < 0.15 {
						g.AddEdge(u, v)
					}
				}
			}
		}
		m := g.AllPairs()
		ref := floydWarshall(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if m.Dist(u, v) != ref[u][v] {
					t.Fatalf("trial %d: d(%d,%d) = %d, want %d (n=%d m=%d)",
						trial, u, v, m.Dist(u, v), ref[u][v], n, g.M())
				}
			}
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnected(rng, 60, 0.05)
	seq := g.AllPairs()
	for _, workers := range []int{0, 1, 2, 4, 16} {
		pm := g.AllPairsParallel(workers)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if pm.At(u, v) != seq.At(u, v) {
					t.Fatalf("workers=%d: d(%d,%d) = %d, want %d",
						workers, u, v, pm.At(u, v), seq.At(u, v))
				}
			}
		}
	}
}

func TestSumOfDistances(t *testing.T) {
	g := starGraph(5)
	sum, reached := g.SumOfDistances(0)
	if sum != 4 || reached != 5 {
		t.Errorf("center: sum=%d reached=%d, want 4, 5", sum, reached)
	}
	sum, reached = g.SumOfDistances(1)
	if sum != 1+2*3 || reached != 5 {
		t.Errorf("leaf: sum=%d reached=%d, want 7, 5", sum, reached)
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(6)
	if ecc, ok := g.Eccentricity(0); !ok || ecc != 5 {
		t.Errorf("Eccentricity(0) = %d,%v, want 5,true", ecc, ok)
	}
	if ecc, ok := g.Eccentricity(2); !ok || ecc != 3 {
		t.Errorf("Eccentricity(2) = %d,%v, want 3,true", ecc, ok)
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if _, ok := g2.Eccentricity(0); ok {
		t.Error("Eccentricity on disconnected graph reported ok")
	}
}

func TestIsConnected(t *testing.T) {
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Error("trivial graphs should be connected")
	}
	if New(2).IsConnected() {
		t.Error("two isolated vertices reported connected")
	}
	if !cycleGraph(7).IsConnected() {
		t.Error("cycle reported disconnected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Errorf("second component = %v", comps[1])
	}
}

func TestMatrixHelpers(t *testing.T) {
	g := pathGraph(4)
	m := g.AllPairs()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !m.Connected() {
		t.Error("path matrix not connected")
	}
	if d, ok := m.Diameter(); !ok || d != 3 {
		t.Errorf("Diameter = %d,%v, want 3,true", d, ok)
	}
	if ecc, ok := m.Eccentricity(1); !ok || ecc != 2 {
		t.Errorf("Eccentricity(1) = %d,%v, want 2,true", ecc, ok)
	}
	sum, reached := m.RowSum(0)
	if sum != 6 || reached != 4 {
		t.Errorf("RowSum(0) = %d,%d, want 6,4", sum, reached)
	}
	h := m.Histogram(0)
	want := []int{1, 1, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram(0) = %v, want %v", h, want)
		}
	}
}

func TestMatrixDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	m := g.AllPairs()
	if m.Connected() {
		t.Error("disconnected matrix reported connected")
	}
	if _, ok := m.Diameter(); ok {
		t.Error("disconnected Diameter reported ok")
	}
	if _, ok := m.Eccentricity(0); ok {
		t.Error("disconnected Eccentricity reported ok")
	}
	if _, reached := m.RowSum(0); reached != 2 {
		t.Errorf("RowSum reached = %d, want 2", reached)
	}
}
