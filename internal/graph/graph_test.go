package graph

import (
	"math/rand"
	"testing"
)

// randomConnected returns a random connected graph: a uniform random tree
// plus extra random edges with probability p each.
func randomConnected(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func pathGraph(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

func completeGraph(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func starGraph(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("New(5) = %v, want n=5 m=0", g)
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false on empty graph")
	}
	if g.AddEdge(1, 0) {
		t.Error("AddEdge(1,0) = true for existing edge")
	}
	if g.AddEdge(2, 2) {
		t.Error("AddEdge(2,2) self-loop accepted")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true for absent edge")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(0,3) did not panic")
		}
	}()
	g.AddEdge(0, 3)
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false for existing edge")
	}
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Errorf("after removal: m=%d hasEdge=%v", g.M(), g.HasEdge(0, 1))
	}
	if g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge of absent edge = true")
	}
	if g.RemoveEdge(0, 2) {
		t.Error("RemoveEdge of never-present edge = true")
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Error("HasEdge out-of-range should be false, not panic")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.M() != 2 {
		t.Errorf("M() = %d, want 2", g.M())
	}
	if _, err := FromEdges(3, []Edge{{0, 0}}); err == nil {
		t.Error("FromEdges accepted self-loop")
	}
	if _, err := FromEdges(3, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Error("FromEdges accepted duplicate edge")
	}
	if _, err := FromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Error("FromEdges accepted out-of-range edge")
	}
}

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want {2 5}", e)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	g.AddEdge(3, 5)
	g.AddEdge(3, 0)
	g.AddEdge(3, 4)
	got := g.Neighbors(3)
	want := []int{0, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(3) = %v, want %v", got, want)
		}
	}
}

func TestNonNeighbors(t *testing.T) {
	g := starGraph(5)
	nn := g.NonNeighbors(0)
	if len(nn) != 0 {
		t.Errorf("center NonNeighbors = %v, want empty", nn)
	}
	nn = g.NonNeighbors(1)
	want := []int{2, 3, 4}
	if len(nn) != len(want) {
		t.Fatalf("leaf NonNeighbors = %v, want %v", nn, want)
	}
	for i := range want {
		if nn[i] != want[i] {
			t.Fatalf("leaf NonNeighbors = %v, want %v", nn, want)
		}
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v, want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", es, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := cycleGraph(5)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.RemoveEdge(0, 1)
	if g.Equal(c) {
		t.Error("mutating clone affected Equal")
	}
	if !g.HasEdge(0, 1) {
		t.Error("mutating clone mutated original")
	}
}

func TestEqual(t *testing.T) {
	a := pathGraph(4)
	b := pathGraph(4)
	if !a.Equal(b) {
		t.Error("identical paths not Equal")
	}
	b.AddEdge(0, 3)
	if a.Equal(b) {
		t.Error("different edge sets Equal")
	}
	if a.Equal(New(5)) {
		t.Error("different sizes Equal")
	}
	// Same edge count, different edges.
	c := New(4)
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	c.AddEdge(1, 3)
	if a.Equal(c) {
		t.Error("same m different edges Equal")
	}
}

func TestDegreeStats(t *testing.T) {
	g := starGraph(6)
	if g.MaxDegree() != 5 {
		t.Errorf("MaxDegree = %d, want 5", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d, want 1", g.MinDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 5 || h[5] != 1 {
		t.Errorf("DegreeHistogram = %v", h)
	}
	total := 0
	for d, c := range h {
		total += d * c
	}
	if total != 2*g.M() {
		t.Errorf("sum of degrees = %d, want 2m = %d", total, 2*g.M())
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	g := New(0)
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Error("degree stats on empty graph should be 0")
	}
}

func TestAppendNeighbors(t *testing.T) {
	g := starGraph(4)
	buf := g.AppendNeighbors(nil, 0)
	if len(buf) != 3 {
		t.Errorf("AppendNeighbors len = %d, want 3", len(buf))
	}
	buf = g.AppendNeighbors(buf[:0], 1)
	if len(buf) != 1 || buf[0] != 0 {
		t.Errorf("AppendNeighbors leaf = %v, want [0]", buf)
	}
}

func TestEachNeighbor(t *testing.T) {
	g := completeGraph(5)
	count := 0
	g.EachNeighbor(2, func(u int) {
		if u == 2 {
			t.Error("EachNeighbor visited self")
		}
		count++
	})
	if count != 4 {
		t.Errorf("EachNeighbor visited %d, want 4", count)
	}
}

func TestStringSummary(t *testing.T) {
	g := pathGraph(3)
	if got := g.String(); got != "graph{n=3 m=2}" {
		t.Errorf("String() = %q", got)
	}
}
