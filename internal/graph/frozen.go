package graph

import (
	"repro/internal/par"
)

// Frozen is an immutable compressed-sparse-row snapshot of a graph. BFS
// over the CSR layout avoids per-vertex map iteration and is markedly
// faster, so the all-pairs sweeps behind the equilibrium checkers freeze
// the graph once and fan BFS out over the snapshot. Mutations must go
// through the original Graph; re-freeze after changing it.
type Frozen struct {
	n      int
	offset []int32 // n+1 offsets into neigh
	neigh  []int32 // concatenated adjacency, sorted per vertex
}

// Freeze builds a CSR snapshot of g.
func (g *Graph) Freeze() *Frozen {
	n := g.N()
	f := &Frozen{
		n:      n,
		offset: make([]int32, n+1),
		neigh:  make([]int32, 0, 2*g.M()),
	}
	for v := 0; v < n; v++ {
		f.offset[v] = int32(len(f.neigh))
		for _, u := range g.Neighbors(v) {
			f.neigh = append(f.neigh, int32(u))
		}
	}
	f.offset[n] = int32(len(f.neigh))
	return f
}

// N returns the number of vertices.
func (f *Frozen) N() int { return f.n }

// M returns the number of edges.
func (f *Frozen) M() int { return len(f.neigh) / 2 }

// Degree returns the degree of v.
func (f *Frozen) Degree(v int) int { return int(f.offset[v+1] - f.offset[v]) }

// Neighbors returns the sorted adjacency slice of v (shared storage; do
// not modify).
func (f *Frozen) Neighbors(v int) []int32 {
	return f.neigh[f.offset[v]:f.offset[v+1]]
}

// BFSInto runs a breadth-first search from src over the CSR layout,
// writing distances into dist (length N) and reusing queue storage.
// It returns the number of reached vertices.
func (f *Frozen) BFSInto(src int, dist []int32, queue []int32) int {
	if len(dist) != f.n {
		panic("graph: Frozen.BFSInto dist length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range f.neigh[f.offset[v]:f.offset[v+1]] {
			if dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// BFSSkipVertex runs a breadth-first search from src over the CSR layout of
// the vertex-deleted subgraph G − skip: the skipped vertex is never visited
// and keeps distance Unreachable. It panics if src == skip. The swap-pricing
// engine uses these rows — a candidate endpoint's distances avoiding the
// deviator — to price every swap of the deviator from a single search.
func (f *Frozen) BFSSkipVertex(src, skip int, dist []int32, queue []int32) int {
	if len(dist) != f.n {
		panic("graph: Frozen.BFSSkipVertex dist length mismatch")
	}
	if src == skip {
		panic("graph: Frozen.BFSSkipVertex src == skip")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	skip32 := int32(skip)
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range f.neigh[f.offset[v]:f.offset[v+1]] {
			if u != skip32 && dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// BFSSkipEdge runs a breadth-first search from src over the CSR layout of
// the edge-deleted subgraph G − ab. The edge need not exist; a non-edge
// degenerates to a plain BFS. Deletion pricing and the deletion-critical
// scan use these rows without cloning or mutating the graph.
func (f *Frozen) BFSSkipEdge(src, a, b int, dist []int32, queue []int32) int {
	if len(dist) != f.n {
		panic("graph: Frozen.BFSSkipEdge dist length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	a32, b32 := int32(a), int32(b)
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range f.neigh[f.offset[v]:f.offset[v+1]] {
			if (v == a32 && u == b32) || (v == b32 && u == a32) {
				continue
			}
			if dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// HasEdge reports whether edge uv is present in the snapshot, by binary
// search over u's sorted adjacency.
func (f *Frozen) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= f.n || v >= f.n {
		return false
	}
	nb := f.neigh[f.offset[u]:f.offset[u+1]]
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nb) && nb[lo] == int32(v)
}

// AllPairs computes all-pairs shortest paths over the snapshot with the
// given number of workers (<= 0 means par.DefaultWorkers).
func (f *Frozen) AllPairs(workers int) *Matrix {
	m := NewMatrix(f.n)
	if f.n == 0 {
		return m
	}
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	if workers == 1 {
		queue := make([]int32, 0, f.n)
		for v := 0; v < f.n; v++ {
			f.BFSInto(v, m.Row(v), queue)
		}
		return m
	}
	var next par.Counter
	par.Workers(workers, func(int) {
		queue := make([]int32, 0, f.n)
		for v := next.Next(); v < f.n; v = next.Next() {
			f.BFSInto(v, m.Row(v), queue)
		}
	})
	return m
}

// IsBipartite reports whether g is bipartite, returning a 2-coloring
// (colors 0/1; unreachable vertices get color 0) when it is.
func (g *Graph) IsBipartite() (bool, []int8) {
	n := g.N()
	color := make([]int8, n)
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					color[u] = 1 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return false, nil
				}
			}
		}
	}
	return true, color
}
