package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genGraph is a quick.Generator wrapper producing random graphs (sometimes
// disconnected) of modest size.
type genGraph struct {
	g *Graph
}

func (genGraph) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(14)
	var g *Graph
	if rng.Intn(3) == 0 {
		// Possibly disconnected Erdős–Rényi graph.
		g = New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
	} else {
		g = randomConnected(rng, n, rng.Float64()*0.3)
	}
	return reflect.ValueOf(genGraph{g})
}

var quickCfg = &quick.Config{MaxCount: 60}

func TestQuickMatrixSymmetricZeroDiagonal(t *testing.T) {
	f := func(w genGraph) bool {
		return w.g.AllPairs().Verify() == nil
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgeDistanceOne(t *testing.T) {
	f := func(w genGraph) bool {
		m := w.g.AllPairs()
		for _, e := range w.g.Edges() {
			if m.Dist(e.U, e.V) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequalityOverEdges(t *testing.T) {
	// For every edge xy and vertex u: |d(u,x) - d(u,y)| <= 1 when both
	// finite (the BFS level property).
	f := func(w genGraph) bool {
		m := w.g.AllPairs()
		for _, e := range w.g.Edges() {
			for u := 0; u < w.g.N(); u++ {
				dx, dy := m.Dist(u, e.U), m.Dist(u, e.V)
				if dx == Unreachable || dy == Unreachable {
					if dx != dy {
						return false // one endpoint reachable, other not: impossible
					}
					continue
				}
				diff := dx - dy
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRemoveAddRoundTrip(t *testing.T) {
	f := func(w genGraph, seed int64) bool {
		g := w.g
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		e := edges[rng.Intn(len(edges))]
		before := g.Clone()
		if !g.RemoveEdge(e.U, e.V) {
			return false
		}
		if g.M() != before.M()-1 {
			return false
		}
		if !g.AddEdge(e.U, e.V) {
			return false
		}
		return g.Equal(before)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRemovalNeverShortensDistances(t *testing.T) {
	// Deleting an edge can only increase distances (monotonicity the
	// paper's swap arguments rely on).
	f := func(w genGraph, seed int64) bool {
		g := w.g
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		e := edges[rng.Intn(len(edges))]
		before := g.AllPairs()
		g.RemoveEdge(e.U, e.V)
		after := g.AllPairs()
		g.AddEdge(e.U, e.V)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				b, a := before.Dist(u, v), after.Dist(u, v)
				if a == Unreachable {
					continue // became unreachable: "increased" to infinity
				}
				if b == Unreachable || a < b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertionPatchIdentity(t *testing.T) {
	// The identity the swap checkers rely on: after adding edge vw,
	// d_new(v,x) = min(d(v,x), 1 + d(w,x)).
	f := func(w genGraph, seed int64) bool {
		g := w.g
		rng := rand.New(rand.NewSource(seed))
		v := rng.Intn(g.N())
		non := g.NonNeighbors(v)
		if len(non) == 0 {
			return true
		}
		wp := non[rng.Intn(len(non))]
		dv := g.BFS(v)
		dw := g.BFS(wp)
		g.AddEdge(v, wp)
		after := g.BFS(v)
		g.RemoveEdge(v, wp)
		for x := 0; x < g.N(); x++ {
			want := minPatched(int(dv[x]), int(dw[x]))
			if int(after[x]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// minPatched combines d(v,x) with 1+d(w',x) treating -1 as infinity.
func minPatched(dvx, dwx int) int {
	via := -1
	if dwx != Unreachable {
		via = dwx + 1
	}
	switch {
	case dvx == Unreachable:
		return via
	case via == Unreachable:
		return dvx
	case via < dvx:
		return via
	default:
		return dvx
	}
}

func TestQuickPowerDistanceCeil(t *testing.T) {
	f := func(w genGraph, xRaw uint8) bool {
		x := 1 + int(xRaw%4)
		g := w.g
		gm := g.AllPairs()
		pm := g.Power(x).AllPairs()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				d := gm.Dist(u, v)
				if d == Unreachable {
					if pm.Dist(u, v) != Unreachable {
						return false
					}
					continue
				}
				want := (d + x - 1) / x
				if pm.Dist(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(w genGraph) bool {
		comps := w.g.ConnectedComponents()
		seen := make([]bool, w.g.N())
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == w.g.N()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEqualAndEdgesRoundTrip(t *testing.T) {
	f := func(w genGraph) bool {
		c := w.g.Clone()
		if !w.g.Equal(c) {
			return false
		}
		rebuilt, err := FromEdges(w.g.N(), w.g.Edges())
		if err != nil {
			return false
		}
		return rebuilt.Equal(w.g)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
