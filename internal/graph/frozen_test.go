package graph

import (
	"math/rand"
	"testing"
)

func TestFrozenMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(rng, 2+rng.Intn(30), rng.Float64()*0.3)
		f := g.Freeze()
		if f.N() != g.N() || f.M() != g.M() {
			t.Fatalf("frozen shape n=%d m=%d vs %d %d", f.N(), f.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if f.Degree(v) != g.Degree(v) {
				t.Fatalf("degree(%d) = %d vs %d", v, f.Degree(v), g.Degree(v))
			}
			want := g.Neighbors(v)
			got := f.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("neighbors(%d) length mismatch", v)
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("neighbors(%d)[%d] = %d, want %d (sorted)", v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFrozenBFSMatchesGraphBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(25)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		f := g.Freeze()
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			want := g.BFS(src)
			reached := f.BFSInto(src, dist, queue)
			wantReached := 0
			for v := 0; v < n; v++ {
				if want[v] != Unreachable {
					wantReached++
				}
				if dist[v] != want[v] {
					t.Fatalf("trial %d src %d: dist[%d] = %d, want %d",
						trial, src, v, dist[v], want[v])
				}
			}
			if reached != wantReached {
				t.Fatalf("reached %d, want %d", reached, wantReached)
			}
		}
	}
}

func TestFrozenAllPairsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(rng, 50, 0.08)
	want := g.AllPairs()
	for _, workers := range []int{0, 1, 3} {
		got := g.Freeze().AllPairs(workers)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if got.At(u, v) != want.At(u, v) {
					t.Fatalf("workers=%d: d(%d,%d) mismatch", workers, u, v)
				}
			}
		}
	}
}

func TestFrozenBFSSkipVertexMatchesDeletedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		g := randomConnected(rng, n, rng.Float64()*0.3)
		f := g.Freeze()
		skip := rng.Intn(n)
		// Reference: materialize G − skip by removing all incident edges
		// (the orphaned vertex keeps Unreachable everywhere, matching the
		// skip semantics).
		h := g.Clone()
		for _, u := range g.Neighbors(skip) {
			h.RemoveEdge(skip, u)
		}
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			if src == skip {
				continue
			}
			want := h.BFS(src)
			reached := f.BFSSkipVertex(src, skip, dist, queue)
			wantReached := 0
			for v := 0; v < n; v++ {
				if want[v] != Unreachable {
					wantReached++
				}
				if dist[v] != want[v] {
					t.Fatalf("trial %d src %d skip %d: dist[%d] = %d, want %d",
						trial, src, skip, v, dist[v], want[v])
				}
			}
			if reached != wantReached {
				t.Fatalf("trial %d: reached %d, want %d", trial, reached, wantReached)
			}
		}
	}
}

func TestFrozenBFSSkipEdgeMatchesDeletedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		g := randomConnected(rng, n, rng.Float64()*0.3)
		f := g.Freeze()
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			want := h.BFS(src)
			f.BFSSkipEdge(src, e.U, e.V, dist, queue)
			for v := 0; v < n; v++ {
				if dist[v] != want[v] {
					t.Fatalf("trial %d src %d minus %v: dist[%d] = %d, want %d",
						trial, src, e, v, dist[v], want[v])
				}
			}
		}
		// A non-edge degenerates to plain BFS.
		u, v := rng.Intn(n), rng.Intn(n)
		if !g.HasEdge(u, v) {
			want := g.BFS(0)
			f.BFSSkipEdge(0, u, v, dist, queue)
			for x := 0; x < n; x++ {
				if dist[x] != want[x] {
					t.Fatalf("non-edge skip changed BFS at %d", x)
				}
			}
		}
	}
}

func TestFrozenHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomConnected(rng, 30, 0.2)
	f := g.Freeze()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if f.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
	if f.HasEdge(-1, 0) || f.HasEdge(0, g.N()) {
		t.Error("out-of-range HasEdge returned true")
	}
}

func TestFrozenEmpty(t *testing.T) {
	f := New(0).Freeze()
	if f.N() != 0 || f.M() != 0 {
		t.Error("empty freeze wrong")
	}
	if m := f.AllPairs(2); m.N() != 0 {
		t.Error("empty AllPairs wrong")
	}
}

func TestFrozenBFSLengthMismatchPanics(t *testing.T) {
	f := pathGraph(4).Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad dist length")
		}
	}()
	f.BFSInto(0, make([]int32, 2), nil)
}

func TestIsBipartite(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", pathGraph(7), true},
		{"evenCycle", cycleGraph(8), true},
		{"oddCycle", cycleGraph(7), false},
		{"star", starGraph(9), true},
		{"K4", completeGraph(4), false},
		{"empty", New(5), true},
	}
	for _, c := range cases {
		ok, colors := c.g.IsBipartite()
		if ok != c.want {
			t.Errorf("%s: IsBipartite = %v, want %v", c.name, ok, c.want)
			continue
		}
		if !ok {
			continue
		}
		for _, e := range c.g.Edges() {
			if colors[e.U] == colors[e.V] {
				t.Errorf("%s: invalid coloring at %v", c.name, e)
			}
		}
	}
}

func TestIsBipartiteDisconnectedComponents(t *testing.T) {
	// Bipartite component + odd cycle component: not bipartite overall.
	g := New(8)
	g.AddEdge(0, 1) // K2
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2) // triangle
	if ok, _ := g.IsBipartite(); ok {
		t.Error("graph containing a triangle reported bipartite")
	}
}
