package graph

// Diameter returns the diameter of g (the maximum over vertices of the
// local diameter). ok is false when g is disconnected or has no vertices;
// in that case diam is the largest finite eccentricity found.
func (g *Graph) Diameter() (diam int, ok bool) {
	n := g.N()
	if n == 0 {
		return 0, false
	}
	ok = true
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		reached := g.BFSInto(v, dist, queue)
		if reached != n {
			ok = false
		}
		for _, d := range dist {
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam, ok
}

// Radius returns the radius of g (minimum eccentricity) and ok=false if g
// is disconnected or empty.
func (g *Graph) Radius() (radius int, ok bool) {
	n := g.N()
	if n == 0 {
		return 0, false
	}
	radius = int(^uint(0) >> 1)
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if g.BFSInto(v, dist, queue) != n {
			return 0, false
		}
		ecc := 0
		for _, d := range dist {
			if int(d) > ecc {
				ecc = int(d)
			}
		}
		if ecc < radius {
			radius = ecc
		}
	}
	return radius, true
}

// IsTree reports whether g is connected and has exactly n-1 edges.
func (g *Graph) IsTree() bool {
	return g.N() >= 1 && g.M() == g.N()-1 && g.IsConnected()
}

// Girth returns the length of a shortest cycle, with ok=false when g is
// acyclic (a forest). It runs the standard O(n·m) BFS sweep: the minimum of
// d(u)+d(x)+1 over non-tree edges ux across all BFS roots is exactly the
// girth.
func (g *Graph) Girth() (girth int, ok bool) {
	n := g.N()
	best := -1
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		dist[s] = 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if best >= 0 && int(dist[v])*2 >= best {
				// No shorter cycle can be completed from this depth.
				break
			}
			for u := range g.adj[v] {
				if dist[u] == Unreachable {
					dist[u] = dist[v] + 1
					parent[u] = int32(v)
					queue = append(queue, u)
				} else if int32(u) != parent[v] && int32(v) != parent[u] {
					c := int(dist[u] + dist[v] + 1)
					if best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// CutVertices returns the articulation points of g in increasing order,
// computed with an iterative Tarjan lowlink DFS. Lemma 3 of the paper
// constrains how components hang off cut vertices in max equilibria.
func (g *Graph) CutVertices() []int {
	n := g.N()
	num := make([]int32, n) // DFS numbers, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	isCut := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	var counter int32

	type frame struct {
		v     int
		nbs   []int
		idx   int
		child int // children in DFS tree (for root rule)
	}
	var stack []frame
	var nbBuf []int

	for s := 0; s < n; s++ {
		if num[s] != 0 {
			continue
		}
		counter++
		num[s] = counter
		low[s] = counter
		nbBuf = g.AppendNeighbors(nbBuf[:0], s)
		root := frame{v: s, nbs: append([]int(nil), nbBuf...)}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(f.nbs) {
				u := f.nbs[f.idx]
				f.idx++
				if num[u] == 0 {
					parent[u] = int32(f.v)
					f.child++
					counter++
					num[u] = counter
					low[u] = counter
					nbBuf = g.AppendNeighbors(nbBuf[:0], u)
					stack = append(stack, frame{v: u, nbs: append([]int(nil), nbBuf...)})
				} else if int32(u) != parent[f.v] && num[u] < low[f.v] {
					low[f.v] = num[u]
				}
				continue
			}
			// Post-order: propagate lowlink to parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
				if parent[f.v] == int32(p.v) && low[f.v] >= num[p.v] && parent[p.v] != -1 {
					isCut[p.v] = true
				}
			}
		}
		// Root rule: the DFS root is a cut vertex iff it has >= 2 children.
		if rootChildren(parent, s, n) >= 2 {
			isCut[s] = true
		}
	}
	var out []int
	for v, c := range isCut {
		if c {
			out = append(out, v)
		}
	}
	return out
}

func rootChildren(parent []int32, root, n int) int {
	c := 0
	for v := 0; v < n; v++ {
		if parent[v] == int32(root) {
			c++
		}
	}
	return c
}

// Power returns the x-th power graph G^x on the same vertex set: u and v
// are adjacent in G^x iff 1 <= d_G(u,v) <= x. Distances in G^x equal
// ceil(d_G(u,v)/x) — the coalescing step of Theorem 13. x must be >= 1.
func (g *Graph) Power(x int) *Graph {
	if x < 1 {
		panic("graph: Power requires x >= 1")
	}
	n := g.N()
	p := New(n)
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		// Bounded BFS would suffice; a full BFS keeps the code simple and
		// the cost is the same order for the dense outputs we build.
		g.BFSInto(v, dist, queue)
		for u := v + 1; u < n; u++ {
			if d := dist[u]; d != Unreachable && int(d) <= x {
				p.AddEdge(v, u)
			}
		}
	}
	return p
}

// NeighborhoodsIndependent reports whether the neighborhood of every vertex
// is an independent set, i.e. the graph is triangle-free (equivalently,
// girth >= 4 when a cycle exists). The Theorem 5 proof uses this check.
func (g *Graph) NeighborhoodsIndependent() bool {
	for v := range g.adj {
		nbs := g.Neighbors(v)
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				if g.HasEdge(nbs[i], nbs[j]) {
					return false
				}
			}
		}
	}
	return true
}
