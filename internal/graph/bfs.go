package graph

import (
	"sort"

	"repro/internal/par"
)

// BFS returns the distances (in hops) from src to every vertex.
// Unreachable vertices get Unreachable (-1).
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	g.BFSInto(src, dist, queue)
	return dist
}

// BFSInto runs a breadth-first search from src writing distances into dist
// (which must have length g.N()); queue is scratch space whose backing array
// is reused when large enough. It returns the number of reached vertices
// (including src). Unreachable entries are set to Unreachable.
func (g *Graph) BFSInto(src int, dist []int32, queue []int) int {
	g.check(src)
	if len(dist) != g.N() {
		panic("graph: BFSInto dist length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, src)
	dist[src] = 0
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// BFSTree runs a breadth-first search from src returning parent pointers
// and distances. parent[src] = -1, and parent[u] = -1 for unreachable u.
// The Lemma 2 proof swaps a vertex's BFS-tree parent edge for an edge to
// the root; this provides that tree.
func (g *Graph) BFSTree(src int) (parent, dist []int32) {
	g.check(src)
	n := g.N()
	parent = make([]int32, n)
	dist = make([]int32, n)
	for i := range parent {
		parent[i] = -1
		dist[i] = Unreachable
	}
	queue := make([]int, 0, n)
	queue = append(queue, src)
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dist[v] + 1
				parent[u] = int32(v)
				queue = append(queue, u)
			}
		}
	}
	return parent, dist
}

// SumOfDistances returns the sum of distances from v to all reachable
// vertices and the number of reached vertices (including v itself).
// In the sum version of the game this is the usage cost of v when the
// graph is connected.
func (g *Graph) SumOfDistances(v int) (sum int64, reached int) {
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	reached = g.BFSInto(v, dist, queue)
	for _, d := range dist {
		if d > 0 {
			sum += int64(d)
		}
	}
	return sum, reached
}

// Eccentricity returns the local diameter of v — the maximum distance from
// v to any other vertex — and ok=false if some vertex is unreachable.
func (g *Graph) Eccentricity(v int) (ecc int, ok bool) {
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	reached := g.BFSInto(v, dist, queue)
	if reached != g.N() {
		return 0, false
	}
	for _, d := range dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, true
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	dist := make([]int32, g.N())
	queue := make([]int, 0, g.N())
	return g.BFSInto(0, dist, queue) == g.N()
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted increasingly, ordered by smallest vertex.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	queue := make([]int, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, s)
		seen[s] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		comp := make([]int, len(queue))
		copy(comp, queue)
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// AllPairs computes all-pairs shortest paths by one BFS per source.
// Rows of the result are indexed by source vertex.
func (g *Graph) AllPairs() *Matrix {
	return g.allPairs(1)
}

// AllPairsParallel computes all-pairs shortest paths with the given number
// of workers (<=0 means par.DefaultWorkers).
func (g *Graph) AllPairsParallel(workers int) *Matrix {
	if workers <= 0 {
		workers = par.DefaultWorkers
	}
	return g.allPairs(workers)
}

func (g *Graph) allPairs(workers int) *Matrix {
	n := g.N()
	if n == 0 {
		return NewMatrix(0)
	}
	// Freeze to a CSR snapshot once: CSR BFS avoids map iteration, which
	// dominates the n BFS passes below.
	return g.Freeze().AllPairs(workers)
}

func sortInts(a []int) {
	sort.Ints(a)
}
