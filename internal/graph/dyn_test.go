package graph

import (
	"math/rand"
	"testing"
)

// randomDynGraph builds a connected random graph for Dyn tests.
func randomDynGraph(t *testing.T, rng *rand.Rand, n int, extra int) *Graph {
	t.Helper()
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// requireDynMatches asserts d mirrors g exactly: sizes, degrees, sorted
// adjacency, and edge membership.
func requireDynMatches(t *testing.T, d *Dyn, g *Graph) {
	t.Helper()
	if d.N() != g.N() || d.M() != g.M() {
		t.Fatalf("Dyn n=%d m=%d, graph n=%d m=%d", d.N(), d.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		want := g.Neighbors(v)
		got := d.Neighbors(v)
		if len(got) != len(want) || d.Degree(v) != g.Degree(v) {
			t.Fatalf("vertex %d: Dyn degree %d, graph degree %d", v, len(got), len(want))
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("vertex %d adjacency: Dyn %v, graph %v", v, got, want)
			}
		}
		for u := 0; u < g.N(); u++ {
			if d.HasEdge(v, u) != g.HasEdge(v, u) {
				t.Fatalf("HasEdge(%d,%d) mismatch", v, u)
			}
		}
	}
}

func TestThawMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomDynGraph(t, rng, 3+rng.Intn(20), rng.Intn(12))
		requireDynMatches(t, g.Thaw(), g)
	}
}

func TestDynMutationsMirrorGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(16)
		g := randomDynGraph(t, rng, n, rng.Intn(8))
		d := g.Thaw()
		for step := 0; step < 60; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			var wantOK, gotOK bool
			if rng.Intn(2) == 0 {
				wantOK = g.AddEdge(u, v)
				gotOK = d.AddEdge(u, v)
			} else {
				wantOK = g.RemoveEdge(u, v)
				gotOK = d.RemoveEdge(u, v)
			}
			if wantOK != gotOK {
				t.Fatalf("step %d: mutation verdict mismatch (graph %v, dyn %v)", step, wantOK, gotOK)
			}
			requireDynMatches(t, d, g)
		}
	}
}

func TestDynGrowthPastArenaSegment(t *testing.T) {
	// A vertex growing past its thawed degree must not corrupt the next
	// vertex's arena segment.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.Thaw()
	before := append([]int32(nil), d.Neighbors(2)...)
	for _, w := range []int{3, 4, 5} {
		d.AddEdge(1, w) // vertex 1 grows past its segment
	}
	got := d.Neighbors(2)
	if len(got) != len(before) || got[0] != before[0] || got[1] != before[1] {
		t.Fatalf("vertex 2 adjacency corrupted by vertex 1 growth: %v -> %v", before, got)
	}
}

func TestDynBFSAgreesWithFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(16)
		g := randomDynGraph(t, rng, n, rng.Intn(10))
		d := g.Thaw()
		// Mutate both, then compare every BFS variant against a fresh
		// Freeze of the mutated graph.
		for step := 0; step < 10; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				g.AddEdge(u, v)
				d.AddEdge(u, v)
			} else {
				g.RemoveEdge(u, v)
				d.RemoveEdge(u, v)
			}
		}
		f := g.Freeze()
		distD := make([]int32, n)
		distF := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			if rd, rf := d.BFSInto(src, distD, queue), f.BFSInto(src, distF, queue); rd != rf {
				t.Fatalf("BFSInto reached %d vs %d", rd, rf)
			}
			for x := range distD {
				if distD[x] != distF[x] {
					t.Fatalf("BFSInto(%d) row mismatch at %d: %d vs %d", src, x, distD[x], distF[x])
				}
			}
			skip := (src + 1) % n
			d.BFSSkipVertex(src, skip, distD, queue)
			f.BFSSkipVertex(src, skip, distF, queue)
			for x := range distD {
				if distD[x] != distF[x] {
					t.Fatalf("BFSSkipVertex(%d,%d) mismatch at %d", src, skip, x)
				}
			}
			a, b := rng.Intn(n), rng.Intn(n)
			d.BFSSkipEdge(src, a, b, distD, queue)
			f.BFSSkipEdge(src, a, b, distF, queue)
			for x := range distD {
				if distD[x] != distF[x] {
					t.Fatalf("BFSSkipEdge(%d,%d,%d) mismatch at %d", src, a, b, x)
				}
			}
		}
	}
}

func TestDynFreezeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomDynGraph(t, rng, 12, 8)
	d := g.Thaw()
	d.AddEdge(0, 7)
	g.AddEdge(0, 7)
	d.RemoveEdge(1, 0)
	g.RemoveEdge(1, 0)
	f := d.Freeze()
	want := g.Freeze()
	if f.N() != want.N() || f.M() != want.M() {
		t.Fatalf("round-trip n/m mismatch")
	}
	for v := 0; v < f.N(); v++ {
		got, exp := f.Neighbors(v), want.Neighbors(v)
		if len(got) != len(exp) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
}
