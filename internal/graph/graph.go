// Package graph implements the undirected-graph substrate for the basic
// network creation game: a mutable simple graph with O(1) edge insertion,
// deletion and membership tests, breadth-first search, all-pairs shortest
// paths (sequential and parallel), and the structural predicates the paper's
// proofs refer to (diameter, eccentricity, girth, cut vertices, power
// graphs, distance histograms).
//
// Vertices are the integers 0..n-1. All graphs are simple (no loops, no
// multi-edges) and undirected. Distances are measured in hops; -1 denotes
// "unreachable" in all distance outputs.
package graph

import (
	"fmt"
	"sort"
)

// Unreachable is the distance value reported for unreachable vertex pairs.
const Unreachable = -1

// Edge is an undirected edge with normalized endpoints (U < V).
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge {min(u,v), max(u,v)}.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Graph is a mutable simple undirected graph on vertices 0..n-1.
// The zero value is an empty graph on zero vertices; use New to size it.
type Graph struct {
	adj []map[int]struct{}
	m   int
}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{adj: adj}
}

// FromEdges builds a graph on n vertices from an edge list.
// Duplicate edges and self-loops are rejected with an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at %d", e.U)
		}
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		if !g.AddEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: duplicate edge %v", e)
		}
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether edge uv exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// AddEdge inserts edge uv. It returns false (and does nothing) if the edge
// already exists or u == v. It panics if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes edge uv. It returns false if the edge was absent.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	return true
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in increasing order.
// The returned slice is freshly allocated.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// AppendNeighbors appends the neighbors of v to buf (unsorted) and returns
// the extended slice. It lets hot loops avoid per-call allocation.
func (g *Graph) AppendNeighbors(buf []int, v int) []int {
	for u := range g.adj[v] {
		buf = append(buf, u)
	}
	return buf
}

// EachNeighbor calls fn for every neighbor of v in unspecified order.
// fn must not mutate the graph.
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	for u := range g.adj[v] {
		fn(u)
	}
}

// Edges returns all edges sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// NonNeighbors returns, in increasing order, the vertices that are neither
// v itself nor adjacent to v. These are exactly the candidate endpoints for
// an edge insertion at v.
func (g *Graph) NonNeighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj)-1-len(g.adj[v]))
	for u := 0; u < len(g.adj); u++ {
		if u == v {
			continue
		}
		if _, ok := g.adj[v][u]; !ok {
			out = append(out, u)
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([]map[int]struct{}, len(g.adj)), m: g.m}
	for v, nb := range g.adj {
		c.adj[v] = make(map[int]struct{}, len(nb))
		for u := range nb {
			c.adj[v][u] = struct{}{}
		}
	}
	return c
}

// Equal reports whether g and h have identical vertex counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v, nb := range g.adj {
		if len(nb) != len(h.adj[v]) {
			return false
		}
		for u := range nb {
			if _, ok := h.adj[v][u]; !ok {
				return false
			}
		}
	}
	return true
}

// MinDegree returns the minimum degree (0 for the empty graph on 0 vertices).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if d := len(g.adj[v]); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree (0 for the empty graph on 0 vertices).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns h where h[d] counts vertices of degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := range g.adj {
		h[len(g.adj[v])]++
	}
	return h
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}
