package graph

// Dyn is a mutable compressed-sparse-row adjacency: per-vertex sorted
// neighbor slices carved out of one arena at Thaw time, with O(deg)
// insertion and deletion. It is the live snapshot behind the pricing
// package's incremental sessions — swap dynamics apply a move by patching
// the two or three affected adjacency lists instead of re-freezing the
// whole graph in O(n+m) — and it exposes the same BFS kernels as Frozen,
// so either structure can back a pricing scan.
//
// Dyn never changes its vertex count; a swap, insertion, or deletion only
// touches the endpoint slices involved. A vertex whose slice outgrows its
// arena segment is relocated to a private allocation (amortized O(deg)),
// so the initial locality of the thawed arena degrades only where the
// graph actually churns. Dyn is safe for concurrent reads; mutations must
// be externally serialized, like Graph.
type Dyn struct {
	n   int
	m   int
	adj [][]int32 // sorted per vertex
}

// Thaw copies the frozen snapshot into a mutable CSR.
func (f *Frozen) Thaw() *Dyn {
	arena := append([]int32(nil), f.neigh...)
	d := &Dyn{n: f.n, m: len(f.neigh) / 2, adj: make([][]int32, f.n)}
	for v := 0; v < f.n; v++ {
		lo, hi := f.offset[v], f.offset[v+1]
		// Full slice expressions cap each segment at its own end so a
		// vertex growing past its degree reallocates instead of
		// overwriting its neighbor's segment.
		d.adj[v] = arena[lo:hi:hi]
	}
	return d
}

// Thaw builds a mutable CSR snapshot of g (equivalent to g.Freeze().Thaw()).
func (g *Graph) Thaw() *Dyn {
	return g.Freeze().Thaw()
}

// N returns the number of vertices.
func (d *Dyn) N() int { return d.n }

// M returns the number of edges.
func (d *Dyn) M() int { return d.m }

// Degree returns the degree of v.
func (d *Dyn) Degree(v int) int { return len(d.adj[v]) }

// Neighbors returns the sorted adjacency slice of v. The slice is live
// storage: it is invalidated by the next mutation of v and must not be
// modified.
func (d *Dyn) Neighbors(v int) []int32 { return d.adj[v] }

// searchNeighbor returns the insertion position of x in v's sorted
// adjacency and whether x is present.
func (d *Dyn) searchNeighbor(v int, x int32) (int, bool) {
	nb := d.adj[v]
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(nb) && nb[lo] == x
}

// HasEdge reports whether edge uv is present.
func (d *Dyn) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= d.n || v >= d.n {
		return false
	}
	_, ok := d.searchNeighbor(u, int32(v))
	return ok
}

// insert adds x to v's sorted adjacency (caller guarantees absence).
func (d *Dyn) insert(v int, x int32) {
	i, _ := d.searchNeighbor(v, x)
	nb := append(d.adj[v], 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = x
	d.adj[v] = nb
}

// remove deletes x from v's sorted adjacency (caller guarantees presence).
func (d *Dyn) remove(v int, x int32) {
	i, _ := d.searchNeighbor(v, x)
	nb := d.adj[v]
	copy(nb[i:], nb[i+1:])
	d.adj[v] = nb[:len(nb)-1]
}

// AddEdge inserts edge uv in O(deg(u)+deg(v)). It returns false (and does
// nothing) if the edge already exists or u == v. It panics if either
// endpoint is out of range.
func (d *Dyn) AddEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v || d.HasEdge(u, v) {
		return false
	}
	d.insert(u, int32(v))
	d.insert(v, int32(u))
	d.m++
	return true
}

// RemoveEdge deletes edge uv in O(deg(u)+deg(v)). It returns false if the
// edge was absent.
func (d *Dyn) RemoveEdge(u, v int) bool {
	if !d.HasEdge(u, v) {
		return false
	}
	d.remove(u, int32(v))
	d.remove(v, int32(u))
	d.m--
	return true
}

func (d *Dyn) check(v int) {
	if v < 0 || v >= d.n {
		panic("graph: Dyn vertex out of range")
	}
}

// Freeze compacts the mutable CSR back into an immutable snapshot.
func (d *Dyn) Freeze() *Frozen {
	f := &Frozen{
		n:      d.n,
		offset: make([]int32, d.n+1),
		neigh:  make([]int32, 0, 2*d.m),
	}
	for v := 0; v < d.n; v++ {
		f.offset[v] = int32(len(f.neigh))
		f.neigh = append(f.neigh, d.adj[v]...)
	}
	f.offset[d.n] = int32(len(f.neigh))
	return f
}

// BFSInto runs a breadth-first search from src, writing distances into
// dist (length N) and reusing queue storage. It returns the number of
// reached vertices. The kernel mirrors Frozen.BFSInto over the mutable
// layout.
func (d *Dyn) BFSInto(src int, dist []int32, queue []int32) int {
	if len(dist) != d.n {
		panic("graph: Dyn.BFSInto dist length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range d.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// BFSIntoCounts is BFSInto with shortest-path-DAG multiplicity: alongside
// each distance it records, per vertex, how many neighbors sit at distance
// dist−1 from src — the vertex's tight-parent count, the in-degree of the
// shortest-path DAG rooted at src — saturating at 255. The count is what
// makes edge removal exactly testable per row (pricing.RowCache): d(src,x)
// survives deleting a tight incoming edge iff x keeps another tight
// parent, and then so does every deeper distance. src and unreached
// vertices report 0. The counting adds one comparison per scanned edge to
// the BFSInto kernel: every tight parent of x dequeues at level
// dist(x)−1 and scans x exactly once.
func (d *Dyn) BFSIntoCounts(src int, dist []int32, tight []uint8, queue []int32) int {
	if len(dist) != d.n || len(tight) != d.n {
		panic("graph: Dyn.BFSIntoCounts buffer length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
		tight[i] = 0
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range d.adj[v] {
			switch dist[u] {
			case Unreachable:
				dist[u] = dv
				tight[u] = 1
				queue = append(queue, u)
				reached++
			case dv:
				if tight[u] < 255 {
					tight[u]++
				}
			}
		}
	}
	return reached
}

// BFSSkipVertex runs a breadth-first search from src over the
// vertex-deleted subgraph G − skip; the skipped vertex keeps distance
// Unreachable. It panics if src == skip.
func (d *Dyn) BFSSkipVertex(src, skip int, dist []int32, queue []int32) int {
	if len(dist) != d.n {
		panic("graph: Dyn.BFSSkipVertex dist length mismatch")
	}
	if src == skip {
		panic("graph: Dyn.BFSSkipVertex src == skip")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	skip32 := int32(skip)
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range d.adj[v] {
			if u != skip32 && dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}

// BFSSkipEdge runs a breadth-first search from src over the edge-deleted
// subgraph G − ab. The edge need not exist; a non-edge degenerates to a
// plain BFS.
func (d *Dyn) BFSSkipEdge(src, a, b int, dist []int32, queue []int32) int {
	if len(dist) != d.n {
		panic("graph: Dyn.BFSSkipEdge dist length mismatch")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	a32, b32 := int32(a), int32(b)
	reached := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v] + 1
		for _, u := range d.adj[v] {
			if (v == a32 && u == b32) || (v == b32 && u == a32) {
				continue
			}
			if dist[u] == Unreachable {
				dist[u] = dv
				queue = append(queue, u)
				reached++
			}
		}
	}
	return reached
}
