package graph

import (
	"math/rand"
	"testing"
)

func TestDiameterKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", pathGraph(5), 4},
		{"cycle6", cycleGraph(6), 3},
		{"cycle7", cycleGraph(7), 3},
		{"star9", starGraph(9), 2},
		{"K5", completeGraph(5), 1},
		{"K1", completeGraph(1), 0},
	}
	for _, c := range cases {
		if d, ok := c.g.Diameter(); !ok || d != c.want {
			t.Errorf("%s: Diameter = %d,%v, want %d,true", c.name, d, ok, c.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, ok := g.Diameter(); ok {
		t.Error("disconnected graph Diameter ok=true")
	}
	if _, ok := New(0).Diameter(); ok {
		t.Error("empty graph Diameter ok=true")
	}
}

func TestRadiusKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", pathGraph(5), 2},
		{"path6", pathGraph(6), 3},
		{"cycle8", cycleGraph(8), 4},
		{"star7", starGraph(7), 1},
		{"K4", completeGraph(4), 1},
	}
	for _, c := range cases {
		if r, ok := c.g.Radius(); !ok || r != c.want {
			t.Errorf("%s: Radius = %d,%v, want %d,true", c.name, r, ok, c.want)
		}
	}
	if _, ok := New(2).Radius(); ok {
		t.Error("disconnected Radius ok=true")
	}
}

func TestIsTree(t *testing.T) {
	if !pathGraph(5).IsTree() || !starGraph(8).IsTree() {
		t.Error("path/star not recognized as trees")
	}
	if cycleGraph(4).IsTree() {
		t.Error("cycle recognized as tree")
	}
	g := New(4) // forest: right edge count minus one, disconnected
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.IsTree() {
		t.Error("forest with n-2 edges recognized as tree")
	}
	if !New(1).IsTree() {
		t.Error("K1 should be a tree")
	}
}

func TestGirthKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"triangle", completeGraph(3), 3},
		{"K5", completeGraph(5), 3},
		{"C4", cycleGraph(4), 4},
		{"C9", cycleGraph(9), 9},
	}
	for _, c := range cases {
		if girth, ok := c.g.Girth(); !ok || girth != c.want {
			t.Errorf("%s: Girth = %d,%v, want %d,true", c.name, girth, ok, c.want)
		}
	}
	if _, ok := pathGraph(6).Girth(); ok {
		t.Error("path (acyclic) Girth ok=true")
	}
	if _, ok := starGraph(5).Girth(); ok {
		t.Error("star (acyclic) Girth ok=true")
	}
}

func TestGirthCompleteBipartite(t *testing.T) {
	// K_{3,3}: girth 4.
	g := New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	if girth, ok := g.Girth(); !ok || girth != 4 {
		t.Errorf("K33 Girth = %d,%v, want 4,true", girth, ok)
	}
}

func TestGirthPetersen(t *testing.T) {
	// Petersen graph: outer C5 (0-4), inner pentagram (5-9), spokes.
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
		g.AddEdge(5+i, 5+(i+2)%5)
		g.AddEdge(i, 5+i)
	}
	if girth, ok := g.Girth(); !ok || girth != 5 {
		t.Errorf("Petersen Girth = %d,%v, want 5,true", girth, ok)
	}
	if d, ok := g.Diameter(); !ok || d != 2 {
		t.Errorf("Petersen Diameter = %d,%v, want 2,true", d, ok)
	}
}

// girthBrute finds the shortest cycle by trying all edges: remove edge uv,
// shortest remaining u-v path + 1 is the shortest cycle through uv.
func girthBrute(g *Graph) (int, bool) {
	best := -1
	for _, e := range g.Edges() {
		g.RemoveEdge(e.U, e.V)
		d := g.BFS(e.U)[e.V]
		g.AddEdge(e.U, e.V)
		if d != Unreachable {
			if c := int(d) + 1; best < 0 || c < best {
				best = c
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func TestGirthRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		g := randomConnected(rng, n, rng.Float64()*0.4)
		got, gotOK := g.Girth()
		want, wantOK := girthBrute(g)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("trial %d (n=%d m=%d): Girth = %d,%v, want %d,%v",
				trial, n, g.M(), got, gotOK, want, wantOK)
		}
	}
}

func TestCutVerticesPath(t *testing.T) {
	g := pathGraph(5)
	got := g.CutVertices()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("CutVertices(path5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CutVertices(path5) = %v, want %v", got, want)
		}
	}
}

func TestCutVerticesStarCycleComplete(t *testing.T) {
	if got := starGraph(6).CutVertices(); len(got) != 1 || got[0] != 0 {
		t.Errorf("CutVertices(star) = %v, want [0]", got)
	}
	if got := cycleGraph(6).CutVertices(); len(got) != 0 {
		t.Errorf("CutVertices(cycle) = %v, want []", got)
	}
	if got := completeGraph(5).CutVertices(); len(got) != 0 {
		t.Errorf("CutVertices(K5) = %v, want []", got)
	}
}

func TestCutVerticesTwoTriangles(t *testing.T) {
	// Two triangles sharing vertex 2: cut vertex is 2.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	if got := g.CutVertices(); len(got) != 1 || got[0] != 2 {
		t.Errorf("CutVertices = %v, want [2]", got)
	}
}

// cutVerticesBrute removes each vertex and counts components.
func cutVerticesBrute(g *Graph) []int {
	base := len(g.ConnectedComponents())
	var out []int
	for v := 0; v < g.N(); v++ {
		h := New(g.N() - 1)
		// Relabel skipping v.
		idx := func(u int) int {
			if u > v {
				return u - 1
			}
			return u
		}
		for _, e := range g.Edges() {
			if e.U != v && e.V != v {
				h.AddEdge(idx(e.U), idx(e.V))
			}
		}
		isolated := 0
		if g.Degree(v) == 0 {
			isolated = 1
		}
		if len(h.ConnectedComponents()) > base-isolated {
			out = append(out, v)
		}
	}
	return out
}

func TestCutVerticesRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		g := randomConnected(rng, n, rng.Float64()*0.3)
		got := g.CutVertices()
		want := cutVerticesBrute(g)
		if len(got) != len(want) {
			t.Fatalf("trial %d: CutVertices = %v, want %v (n=%d m=%d)",
				trial, got, want, n, g.M())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: CutVertices = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestPowerGraph(t *testing.T) {
	g := pathGraph(7)
	p := g.Power(2)
	// In P7^2, vertex 0 is adjacent to 1 and 2.
	if !p.HasEdge(0, 1) || !p.HasEdge(0, 2) || p.HasEdge(0, 3) {
		t.Error("Power(2) adjacency wrong on path")
	}
	// Distances in G^x are ceil(d/x).
	gm := g.AllPairs()
	pm := p.AllPairs()
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			d := gm.Dist(u, v)
			want := (d + 1) / 2 // ceil(d/2)
			if pm.Dist(u, v) != want {
				t.Errorf("d_{G^2}(%d,%d) = %d, want %d", u, v, pm.Dist(u, v), want)
			}
		}
	}
}

func TestPowerLargeXGivesClique(t *testing.T) {
	g := pathGraph(5)
	p := g.Power(10)
	if p.M() != 5*4/2 {
		t.Errorf("Power(10) of P5 has m=%d, want complete graph 10", p.M())
	}
}

func TestPowerInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Power(0) did not panic")
		}
	}()
	pathGraph(3).Power(0)
}

func TestNeighborhoodsIndependent(t *testing.T) {
	if completeGraph(3).NeighborhoodsIndependent() {
		t.Error("triangle has independent neighborhoods")
	}
	if !cycleGraph(4).NeighborhoodsIndependent() {
		t.Error("C4 neighborhoods should be independent")
	}
	if !starGraph(6).NeighborhoodsIndependent() {
		t.Error("star neighborhoods should be independent")
	}
	if !cycleGraph(5).NeighborhoodsIndependent() {
		t.Error("C5 neighborhoods should be independent")
	}
}
