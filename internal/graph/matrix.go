package graph

import "fmt"

// Metric is a finite metric (or distance oracle) on vertices 0..n-1.
// Both the APSP Matrix and closed-form oracles (e.g. the diagonal torus of
// Theorem 12) implement it, so equilibrium spot-checks can run on graphs far
// larger than an explicit APSP would allow.
type Metric interface {
	// N returns the number of points.
	N() int
	// Dist returns the distance between u and v, or Unreachable.
	Dist(u, v int) int
}

// Matrix is a dense all-pairs distance matrix with int32 entries.
// Row i holds the distances from source i; Unreachable (-1) marks
// disconnected pairs.
type Matrix struct {
	n int
	d []int32
}

// NewMatrix allocates an n×n distance matrix initialized to Unreachable.
func NewMatrix(n int) *Matrix {
	d := make([]int32, n*n)
	for i := range d {
		d[i] = Unreachable
	}
	return &Matrix{n: n, d: d}
}

// N returns the number of vertices.
func (m *Matrix) N() int { return m.n }

// Dist returns the distance from u to v as an int (Metric interface).
func (m *Matrix) Dist(u, v int) int { return int(m.d[u*m.n+v]) }

// At returns the raw int32 distance from u to v.
func (m *Matrix) At(u, v int) int32 { return m.d[u*m.n+v] }

// Set stores the distance from u to v.
func (m *Matrix) Set(u, v int, d int32) { m.d[u*m.n+v] = d }

// Row returns the mutable distance row for source u.
func (m *Matrix) Row(u int) []int32 { return m.d[u*m.n : (u+1)*m.n] }

// Connected reports whether every entry is reachable.
func (m *Matrix) Connected() bool {
	for _, d := range m.d {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Diameter returns the maximum finite distance and ok=false if any pair is
// unreachable (in which case the max over finite entries is still returned).
func (m *Matrix) Diameter() (diam int, ok bool) {
	ok = true
	for _, d := range m.d {
		if d == Unreachable {
			ok = false
			continue
		}
		if int(d) > diam {
			diam = int(d)
		}
	}
	return diam, ok
}

// Eccentricity returns the maximum distance from u, with ok=false if some
// vertex is unreachable from u.
func (m *Matrix) Eccentricity(u int) (ecc int, ok bool) {
	ok = true
	for _, d := range m.Row(u) {
		if d == Unreachable {
			ok = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, ok
}

// RowSum returns the sum of finite distances from u and the count of
// reachable vertices (including u).
func (m *Matrix) RowSum(u int) (sum int64, reached int) {
	for _, d := range m.Row(u) {
		if d != Unreachable {
			reached++
			sum += int64(d)
		}
	}
	return sum, reached
}

// Histogram returns h where h[k] counts vertices at distance exactly k from
// u (h[0] == 1). Unreachable vertices are not counted.
func (m *Matrix) Histogram(u int) []int {
	ecc, _ := m.Eccentricity(u)
	h := make([]int, ecc+1)
	for _, d := range m.Row(u) {
		if d != Unreachable {
			h[d]++
		}
	}
	return h
}

// Verify checks internal consistency (zero diagonal, symmetry); it is used
// by tests and returns a descriptive error on the first violation.
func (m *Matrix) Verify() error {
	for u := 0; u < m.n; u++ {
		if m.At(u, u) != 0 {
			return fmt.Errorf("matrix: d(%d,%d)=%d, want 0", u, u, m.At(u, u))
		}
		for v := u + 1; v < m.n; v++ {
			if m.At(u, v) != m.At(v, u) {
				return fmt.Errorf("matrix: asymmetric d(%d,%d)=%d d(%d,%d)=%d",
					u, v, m.At(u, v), v, u, m.At(v, u))
			}
		}
	}
	return nil
}
