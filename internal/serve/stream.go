package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamics"
)

// Stream event kinds emitted by POST /v1/dynamics/stream (one JSON object
// per NDJSON line, in order): a single "start", zero or more "move" and
// "heartbeat" events interleaved, and a terminal "result" or "error".
const (
	StreamStart     = "start"
	StreamMove      = "move"
	StreamHeartbeat = "heartbeat"
	StreamResult    = "result"
	StreamError     = "error"
)

// heartbeatInterval paces "heartbeat" events while no move is applied —
// liveness for clients watching a long convergence run.
const heartbeatInterval = time.Second

// StreamEvent is one NDJSON line of a streamed dynamics run.
type StreamEvent struct {
	// Event is one of the Stream* kinds.
	Event string `json:"event"`
	// ElapsedMS is the wall-clock time since the stream started.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Moves is the number of applied moves so far (move and heartbeat
	// events; on a move event it equals Move.MoveRank).
	Moves int `json:"moves,omitempty"`
	// Move carries the applied move (move events only). The sequence of
	// Move values concatenates to exactly the blob endpoint's Trace.
	Move *TraceEntryDTO `json:"move,omitempty"`
	// Result carries the full final response (result events only).
	Result *DynamicsResponse `json:"result,omitempty"`
	// Error and Status report a run failure after streaming began (error
	// events only); pre-stream failures use the ordinary JSON taxonomy.
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
}

// DynamicsStream runs move dynamics like Dynamics, but delivers progress
// incrementally: onEvent receives a "start" event, every applied move in
// application order, heartbeats while the run is quiet, and a terminal
// "result" (or "error") event. onEvent is never called concurrently; an
// error it returns cancels the run and is returned verbatim (the HTTP
// handler uses this to tear down when the client goes away). Validation
// failures are returned without any event, so transports can still answer
// them with a plain status.
func (s *Server) DynamicsStream(ctx context.Context, req DynamicsRequest, onEvent func(StreamEvent) error) (*DynamicsResponse, error) {
	start := time.Now()
	resp, err := s.dynamicsStream(ctx, req, onEvent)
	s.stats.observe("dynamics.stream", time.Since(start), err != nil)
	return resp, err
}

func (s *Server) dynamicsStream(ctx context.Context, req DynamicsRequest, onEvent func(StreamEvent) error) (*DynamicsResponse, error) {
	run, err := s.prepDynamics(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu      sync.Mutex
		emitErr error
		moves   atomic.Int64
		started = time.Now()
	)
	emit := func(ev StreamEvent) {
		mu.Lock()
		defer mu.Unlock()
		if emitErr != nil {
			return
		}
		ev.ElapsedMS = time.Since(started).Milliseconds()
		if err := onEvent(ev); err != nil {
			emitErr = err
			cancel() // the consumer is gone; stop the run
		}
	}

	emit(StreamEvent{Event: StreamStart})
	hbDone := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(heartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				emit(StreamEvent{Event: StreamHeartbeat, Moves: int(moves.Load())})
			}
		}
	}()

	resp, err := s.execDynamics(ctx, req, run, func(te dynamics.TraceEntry) {
		moves.Add(1)
		dto := traceEntryToDTO(te)
		emit(StreamEvent{Event: StreamMove, Moves: te.MoveRank, Move: &dto})
	})
	close(hbDone)
	hb.Wait()

	mu.Lock()
	failed := emitErr
	mu.Unlock()
	if failed != nil {
		return nil, failed
	}
	if err != nil {
		ev := StreamEvent{Event: StreamError, Error: err.Error()}
		var ae *apiError
		if errors.As(err, &ae) {
			ev.Error, ev.Status = ae.Msg, ae.Status
		}
		emit(ev)
		return nil, err
	}
	emit(StreamEvent{Event: StreamResult, Moves: resp.Moves, Result: resp})
	return resp, nil
}

// handleDynamicsStream serves POST /v1/dynamics/stream: NDJSON
// StreamEvent lines, flushed per event. Validation failures answer with
// the ordinary JSON error taxonomy; failures after the first event are
// reported in-band as a terminal "error" event (the 200 is already on
// the wire).
func (s *Server) handleDynamicsStream(w http.ResponseWriter, r *http.Request) {
	var req DynamicsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	onEvent := func(ev StreamEvent) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if _, err := s.DynamicsStream(r.Context(), req, onEvent); err != nil && !wrote {
		writeResult(w, nil, err)
	}
}

// DynamicsStream consumes POST /v1/dynamics/stream: it decodes each
// NDJSON line, forwards it to onEvent (when non-nil), and returns the
// terminal result. A terminal "error" event comes back as the transported
// apiError; an onEvent error aborts the stream and is returned.
func (c *Client) DynamicsStream(ctx context.Context, req DynamicsRequest, onEvent func(StreamEvent) error) (*DynamicsResponse, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/dynamics/stream", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var eb errorBody
		dec := json.NewDecoder(httpResp.Body)
		if dec.Decode(&eb) == nil && eb.Error != "" {
			return nil, &apiError{Status: httpResp.StatusCode, Msg: eb.Error}
		}
		return nil, &apiError{Status: httpResp.StatusCode, Msg: httpResp.Status}
	}
	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var result *DynamicsResponse
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, err
		}
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return nil, err
			}
		}
		switch ev.Event {
		case StreamResult:
			result = ev.Result
		case StreamError:
			status := ev.Status
			if status == 0 {
				status = http.StatusInternalServerError
			}
			return nil, &apiError{Status: status, Msg: ev.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if result == nil {
		return nil, errors.New("stream ended without a result event")
	}
	return result, nil
}
