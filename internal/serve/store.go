package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/graphio"
	"repro/internal/iso"
)

// StoreEntry is one line of the persistent verdict journal: a graph, the
// check it was certified under, and the verdict — the certification prefix
// of the atlas corpus schema (atlas.Entry embeds this struct and extends
// it with discovery metadata), so a checked-in atlas corpus parses
// directly as a warm-start seed and journal lines read as corpus-shaped
// records. Field order is the canonical rendering order; the atlas
// verifier byte-compares re-marshaled entries, so it is load-bearing.
type StoreEntry struct {
	// ID is a stable line identifier ("sv-…" for journal appends, the
	// corpus ID when seeded from an atlas).
	ID string `json:"id"`
	// Kind is "verdict" for journal appends (atlas corpora use their own
	// kinds).
	Kind string `json:"kind"`
	// Source records who certified the line ("serve" for journal appends).
	Source string `json:"source"`
	// Sparse6 is the exact labeled graph (graphio sparse6 encoding) the
	// verdict was certified for — the same soundness rule as the LRU: a
	// lookup hits only on an exact labeled match.
	Sparse6 string `json:"sparse6"`
	// Model selects the deviation model, in the wire shape.
	Model ModelDTO `json:"model"`
	// Objective is "sum" or "max".
	Objective string `json:"objective"`
	// StableOnly mirrors CheckRequest.StableOnly.
	StableOnly bool `json:"stable_only,omitempty"`
	// Batched mirrors CheckRequest.Batched — part of the check's identity
	// (the verdict reports the executed path). Atlas corpora never set it:
	// they pin the per-agent path.
	Batched bool `json:"batched,omitempty"`
	// BatchedRan mirrors VerdictDTO.Batched, the executed-path report.
	BatchedRan bool `json:"batched_ran,omitempty"`
	// Stable is the certified verdict.
	Stable bool `json:"stable"`
	// Witness is the violation witness for unstable graphs.
	Witness *ViolationDTO `json:"witness,omitempty"`
}

// verdict reconstructs the wire verdict the entry persisted.
func (e *StoreEntry) verdict() VerdictDTO {
	return VerdictDTO{Stable: e.Stable, Violation: e.Witness, Batched: e.BatchedRan}
}

// replayKey recomputes the entry's verdict-cache key from its graph and
// spec. Decoding validates the line; entries whose graphs fail to decode
// are skipped by the tolerant readers.
func (e *StoreEntry) replayKey() (string, error) {
	g, err := graphio.FromSparse6(e.Sparse6)
	if err != nil {
		return "", err
	}
	req := CheckRequest{Model: e.Model, Objective: e.Objective, StableOnly: e.StableOnly, Batched: e.Batched}
	return checkCacheKey(iso.Certificate(g), req), nil
}

// verdictStore is the persistent side of the verdict cache: an
// append-only JSONL journal of certified verdicts, replayed into an
// in-memory index at boot and appended on every cache-miss certification,
// so a restarted server answers previously certified checks without
// recomputation. All methods are nil-receiver-safe: a server without a
// configured store path carries a nil store.
//
// The index mirrors the LRU's soundness rule — per key, a bucket of
// exact labeled graphs — but is unbounded: the journal is the durable
// record, and its size is governed by compaction (StoreMaxBytes), not
// by eviction.
type verdictStore struct {
	mu         sync.Mutex
	path       string
	f          *os.File
	index      map[string][]storeItem
	items      int
	size       int64 // journal bytes written, drives compaction
	appends    uint64
	fsyncEvery int   // 1 = every append, N = every N appends, 0 = never
	maxBytes   int64 // compact when the journal exceeds this (0 = never)
}

type storeItem struct {
	exact   string
	entry   StoreEntry
	verdict VerdictDTO
}

// openVerdictStore opens (creating if absent) the journal at
// cfg.StorePath, optionally warm-seeding the index from an atlas corpus
// (cfg.StoreSeed: a JSONL file or a directory holding one) before
// replaying the journal, so journaled verdicts win over seeded ones.
// An empty StorePath returns a nil store.
func openVerdictStore(cfg Config) (*verdictStore, error) {
	if cfg.StorePath == "" {
		return nil, nil
	}
	fsyncEvery := 1
	switch {
	case cfg.StoreFsyncEvery > 0:
		fsyncEvery = cfg.StoreFsyncEvery
	case cfg.StoreFsyncEvery < 0:
		fsyncEvery = 0
	}
	s := &verdictStore{
		path:       cfg.StorePath,
		index:      make(map[string][]storeItem),
		fsyncEvery: fsyncEvery,
		maxBytes:   cfg.StoreMaxBytes,
	}
	if cfg.StoreSeed != "" {
		seed := cfg.StoreSeed
		if fi, err := os.Stat(seed); err == nil && fi.IsDir() {
			seed = filepath.Join(seed, "atlas.jsonl")
		}
		if err := s.loadFile(seed); err != nil {
			return nil, fmt.Errorf("serve: store seed %s: %w", seed, err)
		}
	}
	if err := s.loadFile(cfg.StorePath); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: store %s: %w", cfg.StorePath, err)
	}
	f, err := os.OpenFile(cfg.StorePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: store %s: %w", cfg.StorePath, err)
	}
	if fi, err := f.Stat(); err == nil {
		s.size = fi.Size()
	}
	s.f = f
	return s, nil
}

// loadFile replays one JSONL file into the index. Comment ('#') and blank
// lines are skipped; lines that fail to parse or whose graphs fail to
// decode are tolerated and skipped (a torn tail write must not brick the
// boot), except when the file itself cannot be read.
func (s *verdictStore) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e StoreEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue
		}
		key, err := e.replayKey()
		if err != nil {
			continue
		}
		s.insert(key, e.Sparse6, e)
	}
	return sc.Err()
}

// insert records an entry in the index, replacing the verdict of an
// already-present (key, exact) pair (later lines win: journal over seed,
// newer appends over older).
func (s *verdictStore) insert(key, exact string, e StoreEntry) {
	bucket := s.index[key]
	for i := range bucket {
		if bucket[i].exact == exact {
			bucket[i].entry, bucket[i].verdict = e, e.verdict()
			return
		}
	}
	s.index[key] = append(bucket, storeItem{exact: exact, entry: e, verdict: e.verdict()})
	s.items++
}

// get returns the stored verdict for (key, exact graph), if present.
func (s *verdictStore) get(key, exact string) (VerdictDTO, bool) {
	if s == nil {
		return VerdictDTO{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range s.index[key] {
		if it.exact == exact {
			return it.verdict, true
		}
	}
	return VerdictDTO{}, false
}

// append journals a freshly certified verdict and indexes it. The write
// is fsynced per the configured policy; exceeding the size bound triggers
// a compaction that rewrites one line per indexed (key, exact) pair.
func (s *verdictStore) append(key, exact string, req CheckRequest, v VerdictDTO) error {
	if s == nil {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(exact))
	e := StoreEntry{
		ID:         fmt.Sprintf("sv-%016x", h.Sum64()),
		Kind:       "verdict",
		Source:     "serve",
		Sparse6:    exact,
		Model:      req.Model,
		Objective:  objectiveName(req.Objective),
		StableOnly: req.StableOnly,
		Batched:    req.Batched,
		BatchedRan: v.Batched,
		Stable:     v.Stable,
		Witness:    v.Violation,
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	b = append(b, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	s.insert(key, exact, e)
	if _, err := s.f.Write(b); err != nil {
		return err
	}
	s.size += int64(len(b))
	s.appends++
	if s.fsyncEvery > 0 && s.appends%uint64(s.fsyncEvery) == 0 {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	if s.maxBytes > 0 && s.size > s.maxBytes {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal with exactly one line per indexed
// (key, exact) pair — the live verdicts — via a temp file and rename, so
// a crash mid-compaction leaves either the old or the new journal intact.
func (s *verdictStore) compactLocked() error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for _, bucket := range s.index {
		for i := range bucket {
			b, err := json.Marshal(&bucket[i].entry)
			if err != nil {
				f.Close()
				return err
			}
			b = append(b, '\n')
			if _, err := f.Write(b); err != nil {
				f.Close()
				return err
			}
			size += int64(len(b))
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	s.f.Close()
	nf, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f, s.size = nf, size
	return nil
}

// len returns the number of indexed (key, exact) verdicts.
func (s *verdictStore) len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items
}

// close releases the journal file handle.
func (s *verdictStore) close() error {
	if s == nil || s.f == nil {
		return nil
	}
	return s.f.Close()
}
