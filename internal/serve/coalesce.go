package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// coalescer deduplicates concurrent identical check requests: the first
// request for a key becomes the leader and runs the computation; requests
// arriving for the same key while the leader is in flight become followers
// that park on the leader's completion instead of burning a session slot
// on a duplicate certification. Keys are the verdict-cache key extended
// with the exact labeled sparse6, so only requests the cache itself would
// treat as identical ever share a result — the same soundness rule that
// keeps certificate-colliding labeled graphs apart in the LRU keeps them
// apart here.
//
// Followers honor their own deadlines: a follower whose context expires
// before the leader finishes gets its own context error (504 on the wire)
// without disturbing the flight. A leader's failure propagates to every
// follower of that flight; the next request for the key starts a fresh
// flight.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
	// waiting counts currently parked followers (test observability: the
	// storm test holds the leader until every follower is parked).
	waiting atomic.Int64
}

// flight is one in-progress computation. done is closed after resp/err
// are set and the flight is unregistered, so late arrivals start fresh
// flights rather than joining a completed one.
type flight struct {
	done chan struct{}
	resp *CheckResponse
	err  error
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// do runs fn once per in-flight key. The first caller (the leader) runs
// fn and reports led=true; concurrent callers with the same key park on
// the leader's flight and receive a copy of its result with led=false.
// fn is responsible for its own caching side effects; do guarantees it is
// not invoked twice for one flight.
func (c *coalescer) do(ctx context.Context, key string, fn func() (*CheckResponse, error)) (resp *CheckResponse, led bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.waiting.Add(1)
		defer c.waiting.Add(-1)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false, f.err
			}
			cp := *f.resp
			return &cp, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.resp, f.err = fn()
	// Unregister before release: once done is observable the flight is
	// gone, so a caller can never join a completed flight.
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.resp, true, f.err
}
