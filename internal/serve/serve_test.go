package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/graph"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL)
}

func mustDTO(t *testing.T, g *graph.Graph) GraphDTO {
	t.Helper()
	d, err := EncodeGraph(g, FormatSparse6)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return d
}

// TestCheckAllModels runs /v1/check for every deviation model over HTTP
// and verifies each verdict bit-for-bit against the direct core.Check.
func TestCheckAllModels(t *testing.T) {
	_, client := newTestServer(t, Config{})
	g := constructions.Path(8)
	dto := mustDTO(t, g)
	models := []ModelDTO{
		{},
		{Name: "greedy"},
		{Name: "interests", Interests: ringInterests(8)},
		{Name: "budget", Budget: 2},
		{Name: "2nb"},
	}
	for _, m := range models {
		name := m.Name
		if name == "" {
			name = "swap"
		}
		t.Run(name, func(t *testing.T) {
			req := CheckRequest{Graph: dto, Model: m, Objective: "sum"}
			got, err := client.Check(context.Background(), req)
			if err != nil {
				t.Fatalf("HTTP check: %v", err)
			}
			model, err := m.Build(8)
			if err != nil {
				t.Fatalf("build model: %v", err)
			}
			verdict, err := core.Check(g.Clone(), core.CheckSpec{Model: model, Objective: core.Sum})
			if err != nil {
				t.Fatalf("direct check: %v", err)
			}
			want := verdictToDTO(verdict)
			if !reflect.DeepEqual(got.VerdictDTO, want) {
				t.Errorf("HTTP verdict %+v, direct %+v", got.VerdictDTO, want)
			}
			if got.N != 8 || got.M != 7 {
				t.Errorf("got n=%d m=%d, want 8/7", got.N, got.M)
			}
		})
	}
}

// TestMalformedPayloads checks the error taxonomy of every decode failure.
func TestMalformedPayloads(t *testing.T) {
	srv, client := newTestServer(t, Config{MaxN: 16})
	_ = srv
	post := func(t *testing.T, path, body string) int {
		t.Helper()
		resp, err := http.Post(client.BaseURL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("non-JSON error body: %v", err)
		}
		if resp.StatusCode != http.StatusOK && eb.Error == "" {
			t.Errorf("%s: status %d with empty error message", path, resp.StatusCode)
		}
		return resp.StatusCode
	}
	pathDTO := mustDTO(t, constructions.Path(6))
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"not JSON", "/v1/check", "{", http.StatusBadRequest},
		{"unknown field", "/v1/check", `{"graf": {}}`, http.StatusBadRequest},
		{"bad graph data", "/v1/check", `{"graph": {"format": "sparse6", "data": "!!"}}`, http.StatusBadRequest},
		{"bad graph format", "/v1/check", `{"graph": {"format": "dot", "data": ""}}`, http.StatusBadRequest},
		{"unknown model", "/v1/check", `{"graph": {"format": "sparse6", "data": ` + quote(pathDTO.Data) + `}, "model": {"name": "pony"}}`, http.StatusBadRequest},
		{"interests without sets", "/v1/check", `{"graph": {"format": "sparse6", "data": ` + quote(pathDTO.Data) + `}, "model": {"name": "interests"}}`, http.StatusBadRequest},
		{"bad objective", "/v1/check", `{"graph": {"format": "sparse6", "data": ` + quote(pathDTO.Data) + `}, "objective": "median"}`, http.StatusBadRequest},
		{"bad policy", "/v1/dynamics", `{"graph": {"format": "sparse6", "data": ` + quote(pathDTO.Data) + `}, "policy": "chaotic"}`, http.StatusBadRequest},
		{"agent out of range", "/v1/bestresponse", `{"graph": {"format": "sparse6", "data": ` + quote(pathDTO.Data) + `}, "agent": 11}`, http.StatusBadRequest},
		{"disconnected graph", "/v1/check", `{"graph": {"format": "edgelist", "data": "4 1\n0 1\n"}}`, http.StatusUnprocessableEntity},
		{"oversized graph", "/v1/check", `{"graph": {"format": "edgelist", "data": "40 1\n0 1\n"}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := post(t, tc.path, tc.body); got != tc.want {
				t.Errorf("status %d, want %d", got, tc.want)
			}
		})
	}
}

func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestTimeoutCancelsMidScan submits a check big enough that a 1ms deadline
// expires between per-agent scan units, and expects 504. The graph is a
// star — sum-stable, so the scan cannot exit early on a violation and must
// be cut short by the deadline poll.
func TestTimeoutCancelsMidScan(t *testing.T) {
	_, client := newTestServer(t, Config{MaxN: 1024})
	req := CheckRequest{
		Graph:     mustDTO(t, constructions.Star(512)),
		Objective: "sum",
		TimeoutMS: 1,
	}
	start := time.Now()
	_, err := client.Check(context.Background(), req)
	elapsed := time.Since(start)
	var ae *apiError
	if err == nil {
		t.Fatalf("check of n=512 with 1ms deadline succeeded in %v; expected 504", elapsed)
	}
	if !asAPIError(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("got %v, want 504", err)
	}
	// A full n=512 swap check costs hundreds of thousands of BFS.
	// Cancellation between per-agent units must abort far sooner.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; deadline is not being polled mid-scan", elapsed)
	}
}

// TestTimeoutCancelsMidRowBatch is TestTimeoutCancelsMidScan's batched
// twin: with Batched set, the check front-loads the n shared full-graph
// BFS rows, so a 1ms deadline expires while that arena is still being
// filled. batchRows polls the context once per row (each row is one
// bounded BFS), so the 504 must come back within one BFS of the deadline
// — not after the remaining hundreds of rows.
func TestTimeoutCancelsMidRowBatch(t *testing.T) {
	_, client := newTestServer(t, Config{MaxN: 1024})
	req := CheckRequest{
		Graph:     mustDTO(t, constructions.Star(1024)),
		Objective: "sum",
		Batched:   true,
		TimeoutMS: 1,
	}
	start := time.Now()
	_, err := client.Check(context.Background(), req)
	elapsed := time.Since(start)
	var ae *apiError
	if err == nil {
		t.Fatalf("batched check of n=1024 with 1ms deadline succeeded in %v; expected 504", elapsed)
	}
	if !asAPIError(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("got %v, want 504", err)
	}
	// 1024 shared rows ≫ 1ms; the per-row poll must abort construction
	// within one BFS plus chunk drain.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; deadline is not being polled during row construction", elapsed)
	}
}

func asAPIError(err error, target **apiError) bool {
	ae, ok := err.(*apiError)
	if ok {
		*target = ae
	}
	return ok
}

// TestCacheHitIdenticalVerdict pins the verdict LRU contract: a repeat of
// the same request is served from cache (Cached=true) with a bit-identical
// verdict, and an isomorphic relabeling does NOT hit (witnesses name
// concrete vertices, and the certificate is not a complete invariant).
func TestCacheHitIdenticalVerdict(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	// A path is unstable under sum, so the verdict carries a witness.
	req := CheckRequest{Graph: mustDTO(t, constructions.Path(9)), Objective: "sum"}
	first, err := client.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("first check: %v", err)
	}
	if first.Cached {
		t.Fatalf("first request reported Cached")
	}
	second, err := client.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("second check: %v", err)
	}
	if !second.Cached {
		t.Fatalf("repeat request missed the cache")
	}
	if !reflect.DeepEqual(first.VerdictDTO, second.VerdictDTO) {
		t.Errorf("cached verdict %+v differs from computed %+v", second.VerdictDTO, first.VerdictDTO)
	}
	if snap := srv.Stats(); snap.Cache.Hits == 0 {
		t.Errorf("stats report zero cache hits after a hit")
	}

	// Same path, relabeled (evens then odds along the path): isomorphic,
	// same certificate, different labeled edge set — must be a miss, not a
	// wrong-witness hit.
	order := []int{0, 2, 4, 6, 8, 7, 5, 3, 1}
	relabeled := graph.New(9)
	for i := 0; i+1 < len(order); i++ {
		relabeled.AddEdge(order[i], order[i+1])
	}
	third, err := client.Check(context.Background(), CheckRequest{Graph: mustDTO(t, relabeled), Objective: "sum"})
	if err != nil {
		t.Fatalf("relabeled check: %v", err)
	}
	if third.Cached {
		t.Errorf("isomorphic relabeling served from cache; witness labels would be wrong")
	}
}

// TestBestResponseEndpoint checks /v1/bestresponse against the known best
// swap of a path endpoint's neighbor.
func TestBestResponseEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{})
	resp, err := client.BestResponse(context.Background(), BestResponseRequest{
		Graph: mustDTO(t, constructions.Path(6)),
		Agent: 0,
	})
	if err != nil {
		t.Fatalf("bestresponse: %v", err)
	}
	if !resp.Improves || resp.Move == nil {
		t.Fatalf("agent 0 of a path must have an improving move, got %+v", resp)
	}
	if resp.NewCost >= resp.OldCost {
		t.Errorf("move does not improve: %d -> %d", resp.OldCost, resp.NewCost)
	}
}

// TestDynamicsEndpoint runs best-response dynamics on a path over HTTP and
// verifies the trajectory matches the direct engine run bit-for-bit.
func TestDynamicsEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := DynamicsRequest{
		Graph:     mustDTO(t, constructions.Path(8)),
		Objective: "sum",
		Policy:    "best",
		Trace:     true,
		Certify:   true,
	}
	got, err := client.Dynamics(context.Background(), req)
	if err != nil {
		t.Fatalf("dynamics: %v", err)
	}
	if !got.Converged {
		t.Fatalf("best-response on a path must converge, got %+v", got)
	}
	if got.Certified == nil || !got.Certified.Stable {
		t.Errorf("final graph not certified stable: %+v", got.Certified)
	}
	ref, _ := NewServer(Config{CacheSize: -1})
	want, err := ref.Dynamics(context.Background(), req)
	if err != nil {
		t.Fatalf("direct dynamics: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HTTP trajectory diverges from direct run:\n got %+v\nwant %+v", got, want)
	}
}

// TestHealthzAndStats probes the operational endpoints.
func TestHealthzAndStats(t *testing.T) {
	_, client := newTestServer(t, Config{})
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, err := client.Check(context.Background(), CheckRequest{Graph: mustDTO(t, constructions.Star(5))}); err != nil {
		t.Fatalf("check: %v", err)
	}
	snap, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	ep, ok := snap.Endpoints["check"]
	if !ok || ep.Requests != 1 {
		t.Errorf("stats after one check: %+v", snap.Endpoints)
	}
}

// TestConcurrentClientsSharedPool hammers one server from many goroutines
// across all endpoints; meaningful under -race, and every verdict must
// still match the direct path.
func TestConcurrentClientsSharedPool(t *testing.T) {
	srv, client := newTestServer(t, Config{PoolSize: 2})
	graphs := []GraphDTO{
		mustDTO(t, constructions.Path(7)),
		mustDTO(t, constructions.Star(9)),
		mustDTO(t, constructions.Cycle(8)),
	}
	ref, _ := NewServer(Config{CacheSize: -1})
	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			errs <- func() error {
				for i, dto := range graphs {
					req := CheckRequest{Graph: dto, Objective: "sum", Batched: c%2 == 0}
					got, err := client.Check(context.Background(), req)
					if err != nil {
						return err
					}
					want, err := ref.Check(context.Background(), req)
					if err != nil {
						return err
					}
					if !reflect.DeepEqual(got.VerdictDTO, want.VerdictDTO) {
						t.Errorf("client %d graph %d: verdict %+v, want %+v", c, i, got.VerdictDTO, want.VerdictDTO)
					}
					if _, err := client.BestResponse(context.Background(), BestResponseRequest{Graph: dto, Agent: 1}); err != nil {
						return err
					}
				}
				_, err := client.Dynamics(context.Background(), DynamicsRequest{
					Graph: graphs[0], Policy: "first", Seed: int64(c),
				})
				return err
			}()
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent client: %v", err)
		}
	}
	if snap := srv.Stats(); snap.Cache.Hits == 0 {
		t.Errorf("shared LRU saw no hits across %d clients re-checking %d graphs", clients, len(graphs))
	}
}

// TestDTORoundTrips pins the lossless Move/Violation wire conversions the
// CLI depends on for identical output.
func TestDTORoundTrips(t *testing.T) {
	viols := []*core.Violation{
		nil,
		{Kind: core.SwapImproves, Move: core.Move{V: 3, Drop: 1, Add: 5}, Agent: 3, OldCost: 20, NewCost: 18},
		{Kind: core.DeletionSafe, Edge: graph.NewEdge(2, 4), Agent: 2, OldCost: 3, NewCost: 3},
		{Kind: core.InsertionHelps, Edge: graph.NewEdge(0, 6), Agent: 0, OldCost: 4, NewCost: 3},
	}
	for i, v := range viols {
		got := violationToDTO(v).Violation()
		if !reflect.DeepEqual(got, v) {
			t.Errorf("violation %d: roundtrip %+v != %+v", i, got, v)
		}
	}
}

// TestLoadRoundTrip runs the full load harness (small settings) against an
// httptest server: zero divergences and a warm LRU.
func TestLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("load corpus in -short mode")
	}
	_, client := newTestServer(t, Config{})
	report, err := RunLoad(context.Background(), client.BaseURL, LoadOptions{Clients: 3, Rounds: 1})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(report.Failures) > 0 {
		t.Fatalf("%d load failures, first: %s", len(report.Failures), report.Failures[0])
	}
	if report.Stats.Cache.Hits == 0 {
		t.Errorf("load run left the verdict LRU cold: %+v", report.Stats.Cache)
	}
}
