package serve

import (
	"sync"
	"time"
)

// stats aggregates the server's per-endpoint and cache counters. Both the
// HTTP handlers and in-process thin clients (the CLI's check / dynamics
// subcommands route through the same Server methods) feed it.
type stats struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointCounters
	hits      uint64
	misses    uint64
	// leaders / coalesced count coalescer outcomes: certifications led,
	// and follower requests answered by sharing a leader's flight.
	leaders   uint64
	coalesced uint64
	// storeHits / storeAppends / storeErrors track the persistent verdict
	// store: lookups answered from the journal index, lines appended, and
	// append failures (the request still succeeds; durability did not).
	storeHits    uint64
	storeAppends uint64
	storeErrors  uint64
	// rowsRecomputed / rowsInvalidated aggregate the session row caches'
	// counters over every dynamics run the server has completed.
	rowsRecomputed  uint64
	rowsInvalidated uint64
}

type endpointCounters struct {
	requests uint64
	errors   uint64
	totalNS  int64
	maxNS    int64
}

func newStats() *stats {
	return &stats{start: time.Now(), endpoints: make(map[string]*endpointCounters)}
}

// observe records one finished request against an endpoint.
func (s *stats) observe(endpoint string, d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := s.endpoints[endpoint]
	if ep == nil {
		ep = &endpointCounters{}
		s.endpoints[endpoint] = ep
	}
	ep.requests++
	if failed {
		ep.errors++
	}
	ns := d.Nanoseconds()
	ep.totalNS += ns
	if ns > ep.maxNS {
		ep.maxNS = ns
	}
}

// cacheHit / cacheMiss record verdict-LRU outcomes.
func (s *stats) cacheHit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *stats) cacheMiss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// coalesceLeader / coalesceFollower record request-coalescing outcomes.
func (s *stats) coalesceLeader() {
	s.mu.Lock()
	s.leaders++
	s.mu.Unlock()
}

func (s *stats) coalesceFollower() {
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
}

// storeHit / storeAppend record persistent-store outcomes.
func (s *stats) storeHit() {
	s.mu.Lock()
	s.storeHits++
	s.mu.Unlock()
}

func (s *stats) storeAppend(failed bool) {
	s.mu.Lock()
	s.storeAppends++
	if failed {
		s.storeErrors++
	}
	s.mu.Unlock()
}

// rowCache folds one finished dynamics run's row-cache counters into the
// server-lifetime aggregate.
func (s *stats) rowCache(recomputed, invalidated uint64) {
	s.mu.Lock()
	s.rowsRecomputed += recomputed
	s.rowsInvalidated += invalidated
	s.mu.Unlock()
}

// EndpointSnapshot is one endpoint's counters in a StatsSnapshot.
type EndpointSnapshot struct {
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
}

// CacheSnapshot reports the verdict LRU's hit statistics.
type CacheSnapshot struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
}

// CoalesceSnapshot reports the request coalescer's outcomes: leaders are
// certifications actually run, coalesced are requests answered by joining
// a concurrent leader's flight. Rate is coalesced / (leaders + coalesced)
// — the fraction of would-be duplicate certifications avoided.
type CoalesceSnapshot struct {
	Leaders   uint64  `json:"leaders"`
	Coalesced uint64  `json:"coalesced"`
	Rate      float64 `json:"rate"`
}

// StoreSnapshot reports the persistent verdict store's counters; it is
// present in a StatsSnapshot only when the server has a configured store.
type StoreSnapshot struct {
	Hits    uint64 `json:"hits"`
	Appends uint64 `json:"appends"`
	Errors  uint64 `json:"errors"`
	Entries int    `json:"entries"`
}

// RowCacheSnapshot aggregates the session row caches' counters across all
// finished dynamics runs: BFS row rebuilds paid and rows invalidated by
// applied moves. A recompute count far below moves×n is the reuse win.
type RowCacheSnapshot struct {
	RowsRecomputed  uint64 `json:"rows_recomputed"`
	RowsInvalidated uint64 `json:"rows_invalidated"`
}

// StatsSnapshot is the GET /stats payload.
type StatsSnapshot struct {
	UptimeMS  int64                       `json:"uptime_ms"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Cache     CacheSnapshot               `json:"cache"`
	Coalesce  CoalesceSnapshot            `json:"coalesce"`
	Store     *StoreSnapshot              `json:"store,omitempty"`
	RowCache  RowCacheSnapshot            `json:"row_cache"`
}

// snapshot captures the counters. cacheLen and the store's presence/size
// are supplied by the server so the stats aggregate stays free of cache
// and store internals.
func (s *stats) snapshot(cacheLen int, storeEnabled bool, storeLen int) StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		UptimeMS:  time.Since(s.start).Milliseconds(),
		Endpoints: make(map[string]EndpointSnapshot, len(s.endpoints)),
		Cache: CacheSnapshot{
			Hits:    s.hits,
			Misses:  s.misses,
			Entries: cacheLen,
		},
		Coalesce: CoalesceSnapshot{
			Leaders:   s.leaders,
			Coalesced: s.coalesced,
		},
		RowCache: RowCacheSnapshot{
			RowsRecomputed:  s.rowsRecomputed,
			RowsInvalidated: s.rowsInvalidated,
		},
	}
	if total := s.hits + s.misses; total > 0 {
		snap.Cache.HitRate = float64(s.hits) / float64(total)
	}
	if total := s.leaders + s.coalesced; total > 0 {
		snap.Coalesce.Rate = float64(s.coalesced) / float64(total)
	}
	if storeEnabled {
		snap.Store = &StoreSnapshot{
			Hits:    s.storeHits,
			Appends: s.storeAppends,
			Errors:  s.storeErrors,
			Entries: storeLen,
		}
	}
	for name, ep := range s.endpoints {
		es := EndpointSnapshot{Requests: ep.requests, Errors: ep.errors}
		if ep.requests > 0 {
			es.MeanLatencyMS = float64(ep.totalNS) / float64(ep.requests) / 1e6
		}
		es.MaxLatencyMS = float64(ep.maxNS) / 1e6
		snap.Endpoints[name] = es
	}
	return snap
}
