package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/constructions"
	"repro/internal/iso"
)

// fivePrism is the pentagonal prism (circular ladder CL5) as the circulant
// C10(2,5): jump 2 traces the two 5-cycles, jump 5 the rungs. Like the
// Petersen graph it is 3-regular and vertex-transitive on 10 vertices, but
// it has girth 4 where Petersen has girth 5 — two non-isomorphic graphs
// that WL-1 refinement (iso.Certificate past n = 8) cannot tell apart.
func fivePrism() GraphDTO {
	d, err := EncodeGraph(constructions.Circulant(10, []int{2, 5}), FormatSparse6)
	if err != nil {
		panic(err)
	}
	return d
}

// TestCacheBucketKeepsCollidingExactGraphs unit-tests the per-key bucket:
// two distinct labeled graphs sharing a verdict-cache key must coexist
// instead of evicting each other, and each lookup must return its own
// graph's verdict.
func TestCacheBucketKeepsCollidingExactGraphs(t *testing.T) {
	c := newVerdictCache(8)
	va := VerdictDTO{Stable: true}
	vb := VerdictDTO{Stable: false, Violation: &ViolationDTO{Agent: 3}}
	c.put("k", "graphA", va)
	c.put("k", "graphB", vb)
	for i := 0; i < 3; i++ { // alternate — the pre-bucket cache thrashed here
		if got, ok := c.get("k", "graphA"); !ok || !reflect.DeepEqual(got, va) {
			t.Fatalf("round %d: graphA verdict %+v ok=%t, want %+v", i, got, ok, va)
		}
		if got, ok := c.get("k", "graphB"); !ok || !reflect.DeepEqual(got, vb) {
			t.Fatalf("round %d: graphB verdict %+v ok=%t, want %+v", i, got, ok, vb)
		}
	}
	if c.len() != 1 {
		t.Errorf("bucketed collisions should occupy one LRU key, got %d", c.len())
	}
	// The bucket is bounded: past bucketCap distinct graphs the least
	// recently used one is displaced, never the whole key.
	for i := 0; i < bucketCap; i++ {
		c.put("k", strings.Repeat("x", i+1), VerdictDTO{})
	}
	if _, ok := c.get("k", "graphA"); ok {
		t.Errorf("oldest bucket item survived %d newer collisions (cap %d)", bucketCap, bucketCap)
	}
	if _, ok := c.get("k", strings.Repeat("x", bucketCap)); !ok {
		t.Errorf("newest bucket item missing after displacement")
	}
}

// TestCertCollidingGraphsBothStayWarm is the end-to-end regression for the
// eviction bug: Petersen and the 5-prism share an iso certificate (WL-1
// cannot split 3-regular vertex-transitive graphs), so before the per-key
// bucket, checking them alternately evicted each other on every request —
// and each repeat was a full recertification. Now both stay warm, and each
// hit returns its own graph's verdict, bit-identical to the cache-less
// direct path.
func TestCertCollidingGraphsBothStayWarm(t *testing.T) {
	petersen := mustDTO(t, constructions.Petersen())
	prism := fivePrism()
	pg, _ := petersen.Decode()
	qg, _ := prism.Decode()
	if iso.Certificate(pg) != iso.Certificate(qg) {
		t.Fatalf("test premise broken: Petersen and the 5-prism no longer share a certificate")
	}

	srv, client := newTestServer(t, Config{})
	ref, _ := NewServer(Config{CacheSize: -1})
	reqs := []CheckRequest{
		{Graph: petersen, Objective: "sum"},
		{Graph: prism, Objective: "sum"},
	}
	want := make([]VerdictDTO, len(reqs))
	for i, req := range reqs {
		direct, err := ref.Check(context.Background(), req)
		if err != nil {
			t.Fatalf("direct check %d: %v", i, err)
		}
		want[i] = direct.VerdictDTO
		first, err := client.Check(context.Background(), req)
		if err != nil {
			t.Fatalf("first check %d: %v", i, err)
		}
		if first.Cached {
			t.Fatalf("first check %d reported Cached", i)
		}
	}
	// Alternate repeats: every one must now hit, with the right verdict.
	for round := 0; round < 2; round++ {
		for i, req := range reqs {
			got, err := client.Check(context.Background(), req)
			if err != nil {
				t.Fatalf("round %d check %d: %v", round, i, err)
			}
			if !got.Cached {
				t.Errorf("round %d check %d missed the cache — colliding graphs evict each other", round, i)
			}
			if !reflect.DeepEqual(got.VerdictDTO, want[i]) {
				t.Errorf("round %d check %d verdict %+v, want %+v", round, i, got.VerdictDTO, want[i])
			}
		}
	}
	if snap := srv.Stats(); snap.Cache.Misses != 2 {
		t.Errorf("%d certifications for 2 distinct graphs checked repeatedly", snap.Cache.Misses)
	}
}

// TestBestResponseTimeoutMidScan pins satellite bugfix #1: a deadline
// expiring during the per-agent best-response scan must return 504, cut
// short by the cancel poll between pricing units — not after the scan runs
// its thousands of candidate swaps to completion.
func TestBestResponseTimeoutMidScan(t *testing.T) {
	_, client := newTestServer(t, Config{MaxN: 4096})
	req := BestResponseRequest{
		Graph:     mustDTO(t, constructions.Star(4096)),
		Agent:     1, // a leaf: ~4094 candidate swaps, each a priced unit
		Objective: "sum",
		TimeoutMS: 1,
	}
	start := time.Now()
	_, err := client.BestResponse(context.Background(), req)
	elapsed := time.Since(start)
	var ae *apiError
	if err == nil {
		t.Fatalf("best-response scan over n=4096 with 1ms deadline succeeded in %v; expected 504", elapsed)
	}
	if !asAPIError(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("got %v, want 504", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; deadline is not being polled mid-scan", elapsed)
	}
}

// TestDuplicateStormSingleCertification pins the tentpole coalescing
// contract: k concurrent byte-identical checks against a pool of one slot
// run exactly one certification. The certify hook holds the leader until
// every follower is parked on the flight, so the test is deterministic:
// k-1 followers, 1 leader, 1 cache miss, and all k responses bit-identical
// up to the transport flags. Meaningful under -race.
func TestDuplicateStormSingleCertification(t *testing.T) {
	const k = 8
	srv, client := newTestServer(t, Config{PoolSize: 1})
	srv.certifyHook = func() {
		deadline := time.Now().Add(10 * time.Second)
		for srv.coal.waiting.Load() < k-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	req := CheckRequest{Graph: mustDTO(t, constructions.Path(10)), Objective: "sum"}

	var wg sync.WaitGroup
	gate := make(chan struct{})
	resps := make([]*CheckResponse, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			resps[i], errs[i] = client.Check(context.Background(), req)
		}(i)
	}
	close(gate)
	wg.Wait()

	coalesced := 0
	var wantBody []byte
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if resps[i].Coalesced {
			coalesced++
		}
		body, err := json.Marshal(comparableCheck(resps[i]))
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		if wantBody == nil {
			wantBody = body
		} else if string(body) != string(wantBody) {
			t.Errorf("client %d response diverges:\n  got:  %s\n  want: %s", i, body, wantBody)
		}
	}
	snap := srv.Stats()
	if snap.Coalesce.Leaders != 1 || snap.Coalesce.Coalesced != k-1 {
		t.Errorf("coalesce counters leaders=%d coalesced=%d, want 1/%d (followers seen: %d)",
			snap.Coalesce.Leaders, snap.Coalesce.Coalesced, k-1, coalesced)
	}
	if snap.Cache.Misses != 1 {
		t.Errorf("%d certifications for %d identical concurrent requests, want exactly 1", snap.Cache.Misses, k)
	}
}

// TestCoalescedFollowerHonorsOwnDeadline: a follower whose deadline expires
// while the leader is still certifying gets its own 504 without disturbing
// the flight; the leader still completes normally.
func TestCoalescedFollowerHonorsOwnDeadline(t *testing.T) {
	srv, client := newTestServer(t, Config{PoolSize: 1})
	leaderIn := make(chan struct{})
	followerParked := make(chan struct{})
	srv.certifyHook = func() {
		close(leaderIn)
		deadline := time.Now().Add(10 * time.Second)
		for srv.coal.waiting.Load() < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(followerParked)
		// Outlive the follower's 50ms budget so its deadline, not the
		// leader's completion, resolves the wait.
		<-time.After(300 * time.Millisecond)
	}
	req := CheckRequest{Graph: mustDTO(t, constructions.Path(11)), Objective: "sum"}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := client.Check(context.Background(), req)
		leaderErr <- err
	}()
	// The unbounded request must lead: fire the bounded one only once the
	// leader is inside its certification.
	<-leaderIn
	follower := CheckRequest{Graph: req.Graph, Objective: "sum", TimeoutMS: 50}
	_, err := client.Check(context.Background(), follower)
	// The follower coalesces only if it carries the same cache key; its
	// TimeoutMS is not part of the key, so it parks on the leader's flight
	// and must time out on its own budget.
	var ae *apiError
	if err == nil || !asAPIError(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("parked follower with 50ms budget got %v, want 504", err)
	}
	select {
	case <-followerParked:
	default:
		t.Fatalf("follower never parked on the leader's flight")
	}
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader failed after follower timeout: %v", err)
	}
}

// TestStoreRoundTrip pins the persistent store lifecycle: boot with a
// store, miss, certify (journaled), restart on the same path, and the
// restarted server answers from the store — Cached and Stored set, verdict
// bit-identical — without recomputation.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	cfg := Config{StorePath: path}
	// A path is unstable under sum, so the journaled verdict carries a
	// witness — the round-trip covers the full violation encoding.
	req := CheckRequest{Graph: mustDTO(t, constructions.Path(9)), Objective: "sum"}

	srv1, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot 1: %v", err)
	}
	first, err := srv1.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("first check: %v", err)
	}
	if first.Cached || first.Stored {
		t.Fatalf("cold check reported Cached=%t Stored=%t", first.Cached, first.Stored)
	}
	if snap := srv1.Stats(); snap.Store == nil || snap.Store.Appends != 1 || snap.Store.Entries != 1 {
		t.Fatalf("store counters after one certification: %+v", snap.Store)
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("close 1: %v", err)
	}

	srv2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot 2: %v", err)
	}
	defer srv2.Close()
	if snap := srv2.Stats(); snap.Store == nil || snap.Store.Entries != 1 {
		t.Fatalf("restart replayed %+v, want 1 entry", snap.Store)
	}
	second, err := srv2.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("warm check: %v", err)
	}
	if !second.Cached || !second.Stored {
		t.Fatalf("restarted server did not answer from the store: Cached=%t Stored=%t", second.Cached, second.Stored)
	}
	if !reflect.DeepEqual(second.VerdictDTO, first.VerdictDTO) {
		t.Errorf("stored verdict %+v differs from certified %+v", second.VerdictDTO, first.VerdictDTO)
	}
	snap := srv2.Stats()
	if snap.Store.Hits != 1 || snap.Cache.Misses != 0 {
		t.Errorf("warm check counters: store hits %d, cache misses %d; want 1, 0", snap.Store.Hits, snap.Cache.Misses)
	}
	// The store hit promoted the verdict into the LRU: a third identical
	// request is an ordinary cache hit, not a second store lookup.
	third, err := srv2.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("third check: %v", err)
	}
	if !third.Cached || third.Stored {
		t.Errorf("post-promotion check: Cached=%t Stored=%t, want LRU hit", third.Cached, third.Stored)
	}
}

// TestStoreToleratesCorruptLines: comments, blanks, torn JSON, and entries
// with undecodable graphs must be skipped at replay — a torn tail write
// cannot brick the boot — while intact lines still serve.
func TestStoreToleratesCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	cfg := Config{StorePath: path}
	req := CheckRequest{Graph: mustDTO(t, constructions.Star(7)), Objective: "sum"}

	srv1, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot 1: %v", err)
	}
	if _, err := srv1.Check(context.Background(), req); err != nil {
		t.Fatalf("certify: %v", err)
	}
	srv1.Close()

	garbage := "# a comment\n\n{\"id\":\"sv-torn\",\"kind\":\"verdi" + // torn tail
		"\nnot json at all\n" +
		`{"id":"sv-bad","kind":"verdict","sparse6":"!!invalid!!","model":{},"objective":"sum","stable":true}` + "\n"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot over corrupt journal: %v", err)
	}
	defer srv2.Close()
	if snap := srv2.Stats(); snap.Store.Entries != 1 {
		t.Errorf("replayed %d entries over a corrupt journal, want the 1 intact line", snap.Store.Entries)
	}
	got, err := srv2.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("warm check: %v", err)
	}
	if !got.Stored {
		t.Errorf("intact line did not serve after corrupt-line replay")
	}
}

// TestStoreSeedsFromAtlas boots a store warm-started from the checked-in
// equilibrium atlas and replays one corpus entry as a live check request:
// the answer must come from the store with the corpus verdict, zero
// certifications run.
func TestStoreSeedsFromAtlas(t *testing.T) {
	const corpus = "../../testdata/atlas"
	raw, err := os.ReadFile(filepath.Join(corpus, "atlas.jsonl"))
	if err != nil {
		t.Skipf("no checked-in atlas corpus: %v", err)
	}
	var entry StoreEntry
	n := 0
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if n == 0 {
			if err := json.Unmarshal([]byte(line), &entry); err != nil {
				t.Fatalf("corpus line does not parse as a StoreEntry: %v", err)
			}
		}
		n++
	}
	if n == 0 {
		t.Fatalf("empty atlas corpus")
	}

	srv, err := NewServer(Config{
		StorePath: filepath.Join(t.TempDir(), "verdicts.jsonl"),
		StoreSeed: corpus, // a directory: resolves to atlas.jsonl inside
	})
	if err != nil {
		t.Fatalf("boot with atlas seed: %v", err)
	}
	defer srv.Close()
	if snap := srv.Stats(); snap.Store.Entries != n {
		t.Errorf("seeded %d store entries from a %d-line corpus", snap.Store.Entries, n)
	}

	got, err := srv.Check(context.Background(), CheckRequest{
		Graph:      GraphDTO{Format: FormatSparse6, Data: entry.Sparse6},
		Model:      entry.Model,
		Objective:  entry.Objective,
		StableOnly: entry.StableOnly,
	})
	if err != nil {
		t.Fatalf("check of corpus entry %s: %v", entry.ID, err)
	}
	if !got.Stored {
		t.Fatalf("corpus entry %s not served from the seeded store", entry.ID)
	}
	if got.Stable != entry.Stable {
		t.Errorf("served verdict stable=%t, corpus says %t", got.Stable, entry.Stable)
	}
	if snap := srv.Stats(); snap.Cache.Misses != 0 {
		t.Errorf("%d certifications run for a seeded entry", snap.Cache.Misses)
	}
}

// TestStoreCompaction: a 1-byte size bound forces a compaction on every
// append; the journal must stay replayable (one line per live verdict)
// across a restart.
func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	cfg := Config{StorePath: path, StoreMaxBytes: 1}
	reqs := []CheckRequest{
		{Graph: mustDTO(t, constructions.Path(6)), Objective: "sum"},
		{Graph: mustDTO(t, constructions.Star(6)), Objective: "sum"},
	}
	srv1, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot 1: %v", err)
	}
	for i, req := range reqs {
		if _, err := srv1.Check(context.Background(), req); err != nil {
			t.Fatalf("certify %d: %v", i, err)
		}
	}
	if snap := srv1.Stats(); snap.Store.Errors != 0 {
		t.Fatalf("%d append/compaction errors", snap.Store.Errors)
	}
	srv1.Close()

	srv2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("boot over compacted journal: %v", err)
	}
	defer srv2.Close()
	if snap := srv2.Stats(); snap.Store.Entries != len(reqs) {
		t.Errorf("compacted journal replayed %d entries, want %d", snap.Store.Entries, len(reqs))
	}
	for i, req := range reqs {
		got, err := srv2.Check(context.Background(), req)
		if err != nil {
			t.Fatalf("warm check %d: %v", i, err)
		}
		if !got.Stored {
			t.Errorf("verdict %d lost across compaction + restart", i)
		}
	}
}

// TestStreamMatchesBlobTrace pins the streaming contract: the streamed
// move events concatenate to exactly the blob endpoint's Trace, the event
// order is start → moves → result, and the terminal result equals the blob
// response bit-for-bit.
func TestStreamMatchesBlobTrace(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := DynamicsRequest{
		Graph:     mustDTO(t, constructions.Path(8)),
		Objective: "sum",
		Policy:    "best",
		Trace:     true,
		Certify:   true,
	}
	blob, err := client.Dynamics(context.Background(), req)
	if err != nil {
		t.Fatalf("blob dynamics: %v", err)
	}

	var events []string
	var moves []TraceEntryDTO
	streamed, err := client.DynamicsStream(context.Background(), req, func(ev StreamEvent) error {
		events = append(events, ev.Event)
		if ev.Event == StreamMove {
			if ev.Move == nil {
				t.Errorf("move event without a move payload")
			} else {
				moves = append(moves, *ev.Move)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream dynamics: %v", err)
	}
	if len(events) == 0 || events[0] != StreamStart {
		t.Errorf("stream did not open with a start event: %v", events)
	}
	if events[len(events)-1] != StreamResult {
		t.Errorf("stream did not close with a result event: %v", events)
	}
	// Caching is bypassed for dynamics, so the runs are bit-identical.
	if !reflect.DeepEqual(streamed, blob) {
		t.Errorf("streamed result diverges from blob response:\n got %+v\nwant %+v", streamed, blob)
	}
	if !reflect.DeepEqual(moves, blob.Trace) {
		t.Errorf("streamed moves diverge from blob trace:\n got %+v\nwant %+v", moves, blob.Trace)
	}
}

// TestStreamValidationErrorIsPlainStatus: a request that fails validation
// must come back as the ordinary JSON error taxonomy (no 200, no events).
func TestStreamValidationErrorIsPlainStatus(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := DynamicsRequest{Graph: mustDTO(t, constructions.Path(6)), Policy: "chaotic"}
	events := 0
	_, err := client.DynamicsStream(context.Background(), req, func(StreamEvent) error {
		events++
		return nil
	})
	var ae *apiError
	if err == nil || !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad policy over the stream endpoint got %v, want 400", err)
	}
	if events != 0 {
		t.Errorf("%d events streamed before the validation failure", events)
	}
}

// TestDuplicateLoadRoundTrip runs the duplicate-heavy harness end to end
// against a live server: no divergences, and at most one certification per
// distinct scenario key.
func TestDuplicateLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("load corpus in -short mode")
	}
	_, client := newTestServer(t, Config{})
	report, err := RunDuplicateLoad(context.Background(), client.BaseURL, LoadOptions{Clients: 4})
	if err != nil {
		t.Fatalf("RunDuplicateLoad: %v", err)
	}
	if len(report.Failures) > 0 {
		t.Fatalf("%d duplicate-load failures, first: %s", len(report.Failures), report.Failures[0])
	}
	if int(report.Leaders) > report.Scenarios {
		t.Errorf("%d certifications for %d distinct keys", report.Leaders, report.Scenarios)
	}
	if report.Requests != 4*report.Scenarios {
		t.Errorf("issued %d requests for %d clients × %d scenarios", report.Requests, 4, report.Scenarios)
	}
}
