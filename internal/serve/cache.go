package serve

import (
	"container/list"
	"sync"
)

// verdictCache is the LRU of certified check verdicts. Keys combine the
// graph's internal/iso certificate with the full spec fingerprint (model
// configuration, objective, stable-only bit, batched routing), so repeated
// checks of the same graph under the same spec are answered without a
// single BFS. Worker counts are deliberately excluded from the key:
// verdicts and witnesses are bit-identical for every worker count.
//
// Soundness: iso.Certificate is a complete invariant only up to n = 8, and
// witness violations name concrete vertex labels, so a certificate match
// is not enough to serve a cached verdict. Every entry therefore stores
// the exact labeled sparse6 of the graph it certified, and a lookup hits
// only on an exact match. Distinct labeled graphs that share a key
// (certificate collisions past n = 8, or isomorphic relabelings whose
// witnesses would name the wrong vertices) coexist in a small per-key
// bucket instead of overwriting each other, so two such graphs checked
// alternately both stay warm; only the bucket's least recent exact graph
// is displaced when the bucket fills. The cache can under-hit; it can
// never serve a verdict for a different labeled graph.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

// bucketCap bounds how many distinct exact labeled graphs one key holds.
// Collisions need n > 8 plus a WL-1 refinement tie, so buckets almost
// always hold one item; the cap only bounds the adversarial case.
const bucketCap = 4

// cacheEntry is one key's bucket of exact-labeled-graph verdicts, ordered
// least → most recently used.
type cacheEntry struct {
	key    string
	bucket []bucketItem
}

type bucketItem struct {
	exact   string // exact labeled sparse6 of the certified graph
	verdict VerdictDTO
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached verdict for (key, exact graph), if present.
func (c *verdictCache) get(key, exact string) (VerdictDTO, bool) {
	if c == nil || c.cap <= 0 {
		return VerdictDTO{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return VerdictDTO{}, false
	}
	ent := el.Value.(*cacheEntry)
	for i := range ent.bucket {
		if ent.bucket[i].exact != exact {
			continue
		}
		item := ent.bucket[i]
		ent.bucket = append(append(ent.bucket[:i:i], ent.bucket[i+1:]...), item)
		c.ll.MoveToFront(el)
		return item.verdict, true
	}
	return VerdictDTO{}, false
}

// put records a freshly certified verdict, evicting the least recently
// used key when full. A key collision (same certificate and spec,
// different labeled graph) joins the key's bucket rather than evicting
// the resident entry; past bucketCap distinct graphs, the bucket's least
// recently used graph is displaced.
func (c *verdictCache) put(key, exact string, v VerdictDTO) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		for i := range ent.bucket {
			if ent.bucket[i].exact == exact {
				ent.bucket = append(append(ent.bucket[:i:i], ent.bucket[i+1:]...), bucketItem{exact: exact, verdict: v})
				c.ll.MoveToFront(el)
				return
			}
		}
		ent.bucket = append(ent.bucket, bucketItem{exact: exact, verdict: v})
		if len(ent.bucket) > bucketCap {
			ent.bucket = append(ent.bucket[:0], ent.bucket[1:]...)
		}
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, bucket: []bucketItem{{exact: exact, verdict: v}}})
}

// len returns the number of live keys.
func (c *verdictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
