package serve

import (
	"container/list"
	"sync"
)

// verdictCache is the LRU of certified check verdicts. Keys combine the
// graph's internal/iso certificate with the full spec fingerprint (model
// configuration, objective, stable-only bit, batched routing), so repeated
// checks of the same graph under the same spec are answered without a
// single BFS. Worker counts are deliberately excluded from the key:
// verdicts and witnesses are bit-identical for every worker count.
//
// Soundness: iso.Certificate is a complete invariant only up to n = 8, and
// witness violations name concrete vertex labels, so a certificate match
// is not enough to serve a cached verdict. Every entry therefore stores
// the exact labeled sparse6 of the graph it certified, and a lookup hits
// only on an exact match — a certificate collision (or an isomorphic
// relabeling, whose witness would name the wrong vertices) is a miss that
// re-runs the check and replaces the entry. The cache can under-hit; it
// can never serve a verdict for a different labeled graph.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key     string
	exact   string // exact labeled sparse6 of the certified graph
	verdict VerdictDTO
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached verdict for (key, exact graph), if present.
func (c *verdictCache) get(key, exact string) (VerdictDTO, bool) {
	if c == nil || c.cap <= 0 {
		return VerdictDTO{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return VerdictDTO{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.exact != exact {
		return VerdictDTO{}, false
	}
	c.ll.MoveToFront(el)
	return ent.verdict, true
}

// put records a freshly certified verdict, evicting the least recently
// used entry when full. A key collision (same certificate and spec,
// different labeled graph) overwrites: the cache keeps one entry per key.
func (c *verdictCache) put(key, exact string, v VerdictDTO) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.exact, ent.verdict = exact, v
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, exact: exact, verdict: v})
}

// len returns the number of live entries.
func (c *verdictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
