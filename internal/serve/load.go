package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/constructions"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// Scenario is one replayable request of the load corpus: exactly one of
// Check or Dynamics is set.
type Scenario struct {
	Name     string
	Check    *CheckRequest
	Dynamics *DynamicsRequest
}

// torus is the rows×cols grid with wraparound in both directions.
func torus(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id((r+1)%rows, c))
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return g
}

// ringInterests gives every vertex of an n-vertex graph interest in its
// two cyclic successors — a deterministic nontrivial interest pattern.
func ringInterests(n int) [][]int32 {
	sets := make([][]int32, n)
	for v := 0; v < n; v++ {
		sets[v] = []int32{int32((v + 1) % n), int32((v + 2) % n)}
	}
	return sets
}

// mustSparse6 encodes g, panicking on failure (corpus graphs are fixed
// shapes that always encode).
func mustSparse6(g *graph.Graph) GraphDTO {
	d, err := EncodeGraph(g, FormatSparse6)
	if err != nil {
		panic(err)
	}
	return d
}

// Corpus builds the mixed scenario set the load generator replays: the
// four graph families (path, star, torus, seeded random trees) crossed
// with all five deviation models, both objectives and both scan paths for
// the swap game, plus a dynamics run per policy. Identical for a given
// seed, so every client issues the same requests and the verdict LRU sees
// repeats both across clients and across a client's rounds.
func Corpus(seed int64) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path12", constructions.Path(12)},
		{"star16", constructions.Star(16)},
		{"torus4x4", torus(4, 4)},
		{"rtree18", treegen.RandomTree(18, rng)},
		{"rtree11", treegen.RandomTree(11, rng)},
	}
	models := func(n int) []struct {
		name string
		dto  ModelDTO
	} {
		return []struct {
			name string
			dto  ModelDTO
		}{
			{"swap", ModelDTO{}},
			{"greedy", ModelDTO{Name: "greedy"}},
			{"interests", ModelDTO{Name: "interests", Interests: ringInterests(n)}},
			{"budget", ModelDTO{Name: "budget", Budget: 2}},
			{"2nb", ModelDTO{Name: "2nb"}},
		}
	}

	var out []Scenario
	for _, gr := range graphs {
		dto := mustSparse6(gr.g)
		for _, m := range models(gr.g.N()) {
			out = append(out, Scenario{
				Name:  fmt.Sprintf("check/%s/%s/sum", gr.name, m.name),
				Check: &CheckRequest{Graph: dto, Model: m.dto, Objective: "sum"},
			})
		}
		// The swap game additionally exercises max, the stable-only
		// variant, and the batched cross-agent path.
		out = append(out,
			Scenario{
				Name:  fmt.Sprintf("check/%s/swap/max", gr.name),
				Check: &CheckRequest{Graph: dto, Objective: "max"},
			},
			Scenario{
				Name:  fmt.Sprintf("check/%s/swap/max-stableonly", gr.name),
				Check: &CheckRequest{Graph: dto, Objective: "max", StableOnly: true},
			},
			Scenario{
				Name:  fmt.Sprintf("check/%s/swap/sum-batched", gr.name),
				Check: &CheckRequest{Graph: dto, Objective: "sum", Batched: true},
			},
		)
	}

	dynGraph := mustSparse6(constructions.Path(9))
	out = append(out,
		Scenario{
			Name:     "dynamics/path9/swap/best",
			Dynamics: &DynamicsRequest{Graph: dynGraph, Objective: "sum", Policy: "best"},
		},
		Scenario{
			Name:     "dynamics/path9/greedy/first",
			Dynamics: &DynamicsRequest{Graph: dynGraph, Model: ModelDTO{Name: "greedy"}, Objective: "sum", Policy: "first"},
		},
		Scenario{
			Name: "dynamics/path9/swap/random-batched",
			Dynamics: &DynamicsRequest{
				Graph: dynGraph, Objective: "sum", Policy: "random",
				Seed: seed + 1, Batched: true, Certify: true,
			},
		},
	)
	return out
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// Rounds is how many times each client replays the corpus (default 2,
	// so even a single client re-hits every cacheable verdict).
	Rounds int
	// Seed drives Corpus (default 1).
	Seed int64
	// Extra scenarios are replayed alongside the built-in corpus and
	// verified the same way (bit-identical to the one-shot path). The CLI
	// seeds these from the checked-in equilibrium atlas (internal/atlas),
	// widening scenario diversity far beyond the hardcoded mix.
	Extra []Scenario
	// Timeout bounds each HTTP request (default 60s).
	Timeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// LoadReport is the outcome of a load run.
type LoadReport struct {
	Clients  int           `json:"clients"`
	Rounds   int           `json:"rounds"`
	Requests int           `json:"requests"`
	Failures []string      `json:"failures,omitempty"`
	Duration time.Duration `json:"-"`
	// DurationMS mirrors Duration for the JSON rendering.
	DurationMS int64 `json:"duration_ms"`
	// Stats is the server's /stats snapshot after the run.
	Stats StatsSnapshot `json:"stats"`
}

// RunLoad replays the corpus against a live server from Clients concurrent
// clients and verifies every response bit-for-bit against the direct
// in-process one-shot path (the same code the CLI runs without a server):
// identical JSON for the verdict fields of checks, identical trajectories
// and final graphs for dynamics. Any divergence or transport failure is a
// Failure line; the report also carries the server's /stats snapshot,
// where a warm verdict LRU shows up as a nonzero hit rate.
func RunLoad(ctx context.Context, baseURL string, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	corpus := append(Corpus(opts.Seed), opts.Extra...)

	// Reference answers, computed once through the direct path.
	reference, err := NewServer(Config{CacheSize: -1, DefaultTimeout: -1})
	if err != nil {
		return nil, err
	}
	type expectation struct {
		body []byte // canonical JSON of the expected comparable response
		err  string // expected apiError message, when the request must fail
	}
	expected := make([]expectation, len(corpus))
	for i, sc := range corpus {
		resp, err := directResponse(ctx, reference, sc)
		if err != nil {
			expected[i] = expectation{err: err.Error()}
			continue
		}
		expected[i] = expectation{body: resp}
	}

	client := NewClient(baseURL)
	client.HTTPClient = &http.Client{Timeout: opts.Timeout}
	var (
		mu       sync.Mutex
		failures []string
		requests int
	)
	record := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			for round := 0; round < opts.Rounds; round++ {
				for i, sc := range corpus {
					if ctx.Err() != nil {
						return
					}
					got, err := issue(ctx, client, sc)
					mu.Lock()
					requests++
					mu.Unlock()
					if err != nil {
						if expected[i].err == "" {
							record("client %d %s: %v", clientID, sc.Name, err)
						}
						continue
					}
					if expected[i].err != "" {
						record("client %d %s: expected failure %q, got success", clientID, sc.Name, expected[i].err)
						continue
					}
					if !bytes.Equal(got, expected[i].body) {
						record("client %d %s: verdict diverges from one-shot path\n  got:  %s\n  want: %s",
							clientID, sc.Name, got, expected[i].body)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("fetch /stats: %w", err)
	}
	return &LoadReport{
		Clients:    opts.Clients,
		Rounds:     opts.Rounds,
		Requests:   requests,
		Failures:   failures,
		Duration:   elapsed,
		DurationMS: elapsed.Milliseconds(),
		Stats:      *stats,
	}, nil
}

// DuplicateReport is the outcome of a duplicate-heavy load run.
type DuplicateReport struct {
	Clients   int `json:"clients"`
	Scenarios int `json:"scenarios"`
	Requests  int `json:"requests"`
	// Leaders / Coalesced are the server's coalescing counter deltas over
	// the run: certifications actually executed, and requests answered by
	// joining a concurrent leader's flight.
	Leaders   uint64 `json:"leaders"`
	Coalesced uint64 `json:"coalesced"`
	// CoalesceRate is Coalesced / (Leaders + Coalesced) over the run.
	CoalesceRate float64       `json:"coalesce_rate"`
	Failures     []string      `json:"failures,omitempty"`
	Duration     time.Duration `json:"-"`
	DurationMS   int64         `json:"duration_ms"`
	// Stats is the server's /stats snapshot after the run.
	Stats StatsSnapshot `json:"stats"`
}

// RunDuplicateLoad replays a duplicate-heavy workload: for every check
// scenario of the corpus, Clients clients fire the identical request
// concurrently behind a per-scenario start barrier, so the server sees a
// storm of duplicates per distinct key. Every response is verified
// bit-for-bit against the direct one-shot path, and the report carries
// the server's coalescing counter deltas: against a cold server, Leaders
// stays at most the number of distinct scenarios — exactly one
// certification per distinct key, everything else coalesced or served
// from cache — and exceeding that is reported as a failure.
func RunDuplicateLoad(ctx context.Context, baseURL string, opts LoadOptions) (*DuplicateReport, error) {
	opts = opts.withDefaults()
	var scenarios []Scenario
	for _, sc := range append(Corpus(opts.Seed), opts.Extra...) {
		if sc.Check != nil {
			scenarios = append(scenarios, sc)
		}
	}

	reference, err := NewServer(Config{CacheSize: -1, DefaultTimeout: -1})
	if err != nil {
		return nil, err
	}
	expected := make([][]byte, len(scenarios))
	for i, sc := range scenarios {
		body, err := directResponse(ctx, reference, sc)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", sc.Name, err)
		}
		expected[i] = body
	}

	client := NewClient(baseURL)
	client.HTTPClient = &http.Client{Timeout: opts.Timeout}
	before, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("fetch /stats: %w", err)
	}

	var (
		mu       sync.Mutex
		failures []string
		requests int
	)
	record := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	start := time.Now()
	for i, sc := range scenarios {
		if ctx.Err() != nil {
			break
		}
		gate := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(clientID int) {
				defer wg.Done()
				<-gate
				got, err := issue(ctx, client, sc)
				mu.Lock()
				requests++
				mu.Unlock()
				if err != nil {
					record("client %d %s: %v", clientID, sc.Name, err)
					return
				}
				if !bytes.Equal(got, expected[i]) {
					record("client %d %s: verdict diverges from one-shot path\n  got:  %s\n  want: %s",
						clientID, sc.Name, got, expected[i])
				}
			}(c)
		}
		close(gate)
		wg.Wait()
	}
	elapsed := time.Since(start)

	after, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("fetch /stats: %w", err)
	}
	leaders := after.Coalesce.Leaders - before.Coalesce.Leaders
	coalesced := after.Coalesce.Coalesced - before.Coalesce.Coalesced
	if int(leaders) > len(scenarios) {
		failures = append(failures, fmt.Sprintf(
			"%d certifications for %d distinct keys — duplicates slipped past the coalescer", leaders, len(scenarios)))
	}
	rep := &DuplicateReport{
		Clients:    opts.Clients,
		Scenarios:  len(scenarios),
		Requests:   requests,
		Leaders:    leaders,
		Coalesced:  coalesced,
		Failures:   failures,
		Duration:   elapsed,
		DurationMS: elapsed.Milliseconds(),
		Stats:      *after,
	}
	if total := leaders + coalesced; total > 0 {
		rep.CoalesceRate = float64(coalesced) / float64(total)
	}
	return rep, nil
}

// comparableCheck strips the transport-dependent flags — Cached, Stored,
// Coalesced — so cached, store-served, coalesced, and freshly computed
// responses compare equal exactly when the verdicts are bit-identical.
func comparableCheck(r *CheckResponse) *CheckResponse {
	cp := *r
	cp.Cached = false
	cp.Stored = false
	cp.Coalesced = false
	return &cp
}

// directResponse computes a scenario's expected answer through the
// in-process one-shot path (no HTTP, no cache).
func directResponse(ctx context.Context, ref *Server, sc Scenario) ([]byte, error) {
	switch {
	case sc.Check != nil:
		resp, err := ref.Check(ctx, *sc.Check)
		if err != nil {
			return nil, err
		}
		return json.Marshal(comparableCheck(resp))
	case sc.Dynamics != nil:
		resp, err := ref.Dynamics(ctx, *sc.Dynamics)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	default:
		return nil, fmt.Errorf("scenario %q has no request", sc.Name)
	}
}

// issue sends a scenario through the HTTP client and returns the
// canonical JSON of its comparable response.
func issue(ctx context.Context, client *Client, sc Scenario) ([]byte, error) {
	switch {
	case sc.Check != nil:
		resp, err := client.Check(ctx, *sc.Check)
		if err != nil {
			return nil, err
		}
		return json.Marshal(comparableCheck(resp))
	case sc.Dynamics != nil:
		resp, err := client.Dynamics(ctx, *sc.Dynamics)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	default:
		return nil, fmt.Errorf("scenario %q has no request", sc.Name)
	}
}
