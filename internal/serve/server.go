package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/iso"
	"repro/internal/pricing"
)

// Config bounds a Server. The zero value takes every default.
type Config struct {
	// Addr is the listen address of ListenAndServe ("" means ":8347").
	Addr string
	// PoolSize bounds how many requests may hold a pricing session at
	// once; excess requests queue on the pool until a slot frees or their
	// deadline expires (default 2 × GOMAXPROCS).
	PoolSize int
	// CacheSize is the verdict LRU's entry capacity; 0 means the default
	// (512), negative disables caching.
	CacheSize int
	// MaxN rejects graphs larger than this with 413 (default 4096).
	MaxN int
	// MaxMoves caps a dynamics request's move budget (default 100_000).
	MaxMoves int
	// MaxWorkers caps a request's worker ask and is the default when a
	// request leaves Workers at 0 (default GOMAXPROCS).
	MaxWorkers int
	// DefaultTimeout bounds requests that carry no timeout_ms
	// (default 30s; negative means no default deadline).
	DefaultTimeout time.Duration
	// StorePath, when non-empty, enables the persistent verdict store: an
	// append-only JSONL journal (StoreEntry lines — the certification
	// prefix of the atlas corpus schema) replayed at boot and appended on
	// every cache-miss certification, so a restarted server answers
	// previously certified checks without recomputation.
	StorePath string
	// StoreSeed optionally warm-starts the store's index from an atlas
	// corpus before the journal replays: a JSONL file, or a directory
	// holding atlas.jsonl. The seed is read-only; only StorePath is
	// written.
	StoreSeed string
	// StoreFsyncEvery is the journal durability policy: 0 fsyncs every
	// append (the default — a certified verdict is never lost to a
	// crash), N > 1 fsyncs every Nth append, negative never fsyncs
	// (the OS decides).
	StoreFsyncEvery int
	// StoreMaxBytes compacts the journal (rewriting one line per live
	// verdict) when it grows past this size; 0 never compacts.
	StoreMaxBytes int64
}

const (
	defaultAddr     = ":8347"
	defaultCacheSz  = 512
	defaultMaxN     = 4096
	defaultMaxMoves = 100_000
	defaultTimeout  = 30 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = defaultAddr
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2 * runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = defaultCacheSz
	}
	if c.MaxN <= 0 {
		c.MaxN = defaultMaxN
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = defaultMaxMoves
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = defaultTimeout
	}
	return c
}

// Server is the long-lived equilibrium service. It owns the bounded
// session pool (a semaphore over concurrently held pricing sessions, all
// drawing scratch from the warm pricing.Shared engine registry) and the
// verdict LRU, and exposes the check / best-response / dynamics operations
// both as Go methods (the CLI's thin-client path) and as HTTP handlers
// over the same DTOs.
type Server struct {
	cfg   Config
	slots chan struct{}
	cache *verdictCache
	store *verdictStore // nil without Config.StorePath
	coal  *coalescer
	stats *stats
	// certifyHook, when set, runs on the leader's goroutine immediately
	// before a cache-miss certification — a test seam that lets the storm
	// test hold the one certification until every duplicate has parked on
	// the coalescer.
	certifyHook func()
}

// NewServer builds a server and warms the shared pricing engine for the
// configured worker budget, so the first request pays no engine setup.
// When Config.StorePath is set, the persistent verdict store is opened
// (seeded, replayed) here; an unusable store path is the only error.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pricing.Shared(cfg.MaxWorkers)
	store, err := openVerdictStore(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.PoolSize),
		cache: newVerdictCache(cfg.CacheSize),
		store: store,
		coal:  newCoalescer(),
		stats: newStats(),
	}, nil
}

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Close releases the server's persistent store handle (a no-op without a
// configured store). In-flight requests are not interrupted.
func (s *Server) Close() error { return s.store.close() }

// apiError carries the HTTP status a failure maps to. The Go-level
// methods return it too, so in-process thin clients see the same taxonomy.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func errBadRequest(format string, args ...any) error {
	return &apiError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// classify maps engine errors onto the wire taxonomy: invalid input that
// decoded fine is 422, an expired request deadline is 504.
func classify(err error) error {
	var ae *apiError
	if errors.As(err, &ae) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded mid-scan"}
	}
	if errors.Is(err, context.Canceled) {
		return &apiError{Status: http.StatusGatewayTimeout, Msg: "request canceled"}
	}
	if errors.Is(err, core.ErrDisconnected) || errors.Is(err, dynamics.ErrTooSmall) {
		return &apiError{Status: http.StatusUnprocessableEntity, Msg: err.Error()}
	}
	return &apiError{Status: http.StatusInternalServerError, Msg: err.Error()}
}

// decodeGraph decodes and size-checks a request graph.
func (s *Server) decodeGraph(d GraphDTO) (*graph.Graph, error) {
	g, err := d.Decode()
	if err != nil {
		return nil, errBadRequest("bad graph: %v", err)
	}
	if g.N() > s.cfg.MaxN {
		return nil, &apiError{
			Status: http.StatusRequestEntityTooLarge,
			Msg:    fmt.Sprintf("graph has n=%d, server accepts at most %d", g.N(), s.cfg.MaxN),
		}
	}
	return g, nil
}

// clampWorkers resolves a request's worker ask against the server cap.
func (s *Server) clampWorkers(w int) int {
	if w <= 0 || w > s.cfg.MaxWorkers {
		return s.cfg.MaxWorkers
	}
	return w
}

// withDeadline applies the request timeout (timeout_ms, else the server
// default) to ctx.
func (s *Server) withDeadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	switch {
	case timeoutMS > 0:
		return context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
	case s.cfg.DefaultTimeout > 0:
		return context.WithTimeout(ctx, s.cfg.DefaultTimeout)
	default:
		return context.WithCancel(ctx)
	}
}

// acquire claims a session slot, waiting until one frees or ctx expires.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// checkCacheKey fingerprints a check request for the verdict LRU: the
// graph's isomorphism certificate plus everything of the spec that can
// change the verdict bits. Workers are excluded (verdicts are identical
// for every worker count); Batched is included because Verdict.Batched
// reports the executed path and must round-trip identically.
func checkCacheKey(cert string, req CheckRequest) string {
	return fmt.Sprintf("%s|%s|%s|so=%t|b=%t",
		cert, req.Model.cacheKey(), objectiveName(req.Objective), req.StableOnly, req.Batched)
}

// Check answers a CheckRequest: decode, consult the verdict LRU and the
// persistent store, coalesce with any identical in-flight request, and
// otherwise run the spec'd check on a pooled session with the request
// deadline enforced between per-agent scan units.
//
// Latency is tracked per outcome, not pooled: "check" counts full
// certifications (leaders), "check.hit" LRU hits, "check.store" store
// hits, and "check.coalesced" followers — a cache hit's microseconds no
// longer deflate the certification histogram.
func (s *Server) Check(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	start := time.Now()
	resp, label, err := s.check(ctx, req)
	s.stats.observe(label, time.Since(start), err != nil)
	return resp, err
}

func (s *Server) check(ctx context.Context, req CheckRequest) (*CheckResponse, string, error) {
	const label = "check"
	g, err := s.decodeGraph(req.Graph)
	if err != nil {
		return nil, label, err
	}
	model, err := req.Model.Build(g.N())
	if err != nil {
		return nil, label, errBadRequest("bad model: %v", err)
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return nil, label, errBadRequest("%v", err)
	}

	exact, err := graphio.ToSparse6(g)
	if err != nil {
		return nil, label, errBadRequest("bad graph: %v", err)
	}
	key := checkCacheKey(iso.Certificate(g), req)
	if v, ok := s.cache.get(key, exact); ok {
		s.stats.cacheHit()
		return &CheckResponse{N: g.N(), M: g.M(), VerdictDTO: v, Cached: true}, "check.hit", nil
	}
	if v, ok := s.store.get(key, exact); ok {
		s.stats.storeHit()
		s.cache.put(key, exact, v)
		return &CheckResponse{N: g.N(), M: g.M(), VerdictDTO: v, Cached: true, Stored: true}, "check.store", nil
	}

	ctx, cancel := s.withDeadline(ctx, req.TimeoutMS)
	defer cancel()

	// Coalesce on the cache identity extended with the exact labeled
	// graph: concurrent identical requests share one certification and
	// one session slot. The leader caches and journals before the flight
	// resolves, so by the time any follower (or a later request) proceeds
	// the verdict is already servable without recomputation.
	resp, led, err := s.coal.do(ctx, key+"\x00"+exact, func() (*CheckResponse, error) {
		s.stats.cacheMiss()
		release, err := s.acquire(ctx)
		if err != nil {
			return nil, classify(err)
		}
		defer release()
		if hook := s.certifyHook; hook != nil {
			hook()
		}
		verdict, err := core.CheckCtx(ctx, g, core.CheckSpec{
			Model:      model,
			Objective:  obj,
			StableOnly: req.StableOnly,
			Batched:    req.Batched,
			Workers:    s.clampWorkers(req.Workers),
		})
		if err != nil {
			return nil, classify(err)
		}
		v := verdictToDTO(verdict)
		s.cache.put(key, exact, v)
		if s.store != nil {
			s.stats.storeAppend(s.store.append(key, exact, req, v) != nil)
		}
		return &CheckResponse{N: g.N(), M: g.M(), VerdictDTO: v}, nil
	})
	if led {
		if err != nil {
			return nil, label, err
		}
		s.stats.coalesceLeader()
		return resp, label, nil
	}
	if err != nil {
		return nil, "check.coalesced", classify(err)
	}
	s.stats.coalesceFollower()
	resp.Coalesced = true
	return resp, "check.coalesced", nil
}

// BestResponse answers a BestResponseRequest: one agent's cost-minimizing
// move under the model. The deadline applies to slot wait and to the scan
// itself: the per-agent scan polls a cancel hook between pricing units
// (per candidate endpoint, never inside one), so a deadline expiring
// mid-scan returns 504 instead of running the scan to completion.
func (s *Server) BestResponse(ctx context.Context, req BestResponseRequest) (*BestResponseResponse, error) {
	start := time.Now()
	resp, err := s.bestResponse(ctx, req)
	s.stats.observe("bestresponse", time.Since(start), err != nil)
	return resp, err
}

func (s *Server) bestResponse(ctx context.Context, req BestResponseRequest) (*BestResponseResponse, error) {
	g, err := s.decodeGraph(req.Graph)
	if err != nil {
		return nil, err
	}
	if req.Agent < 0 || req.Agent >= g.N() {
		return nil, errBadRequest("agent %d outside [0,%d)", req.Agent, g.N())
	}
	model, err := req.Model.Build(g.N())
	if err != nil {
		return nil, errBadRequest("bad model: %v", err)
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}

	ctx, cancel := s.withDeadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, classify(err)
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return nil, classify(err)
	}

	inst := model.New(g, s.clampWorkers(req.Workers))
	defer game.CloseInstance(inst)
	// Cooperative mid-scan cancellation, the same shape batchRows uses: a
	// ctx.Err() poll latched through an atomic flag so every scan chunk
	// observes the first expiry without re-querying the context.
	var stop atomic.Bool
	game.SetScanCancel(inst, func() bool {
		if stop.Load() {
			return true
		}
		if ctx.Err() != nil {
			stop.Store(true)
			return true
		}
		return false
	})
	m, oldCost, newCost, ok := inst.BestMove(req.Agent, obj)
	if err := ctx.Err(); err != nil {
		return nil, classify(err)
	}
	resp := &BestResponseResponse{OldCost: oldCost, NewCost: newCost, Improves: ok}
	if ok {
		dto := moveToDTO(m)
		resp.Move = &dto
	} else {
		resp.NewCost = oldCost
	}
	return resp, nil
}

// Dynamics answers a DynamicsRequest: run move dynamics from the request
// graph on a pooled session, optionally re-certifying the final graph with
// a fresh one-shot check.
func (s *Server) Dynamics(ctx context.Context, req DynamicsRequest) (*DynamicsResponse, error) {
	start := time.Now()
	resp, err := s.dynamics(ctx, req)
	s.stats.observe("dynamics", time.Since(start), err != nil)
	return resp, err
}

func (s *Server) dynamics(ctx context.Context, req DynamicsRequest) (*DynamicsResponse, error) {
	run, err := s.prepDynamics(req)
	if err != nil {
		return nil, err
	}
	return s.execDynamics(ctx, req, run, nil)
}

// dynamicsRun is a validated dynamics request, split from execution so
// the streaming endpoint can answer validation failures with an ordinary
// JSON status before the first streamed byte commits the response to 200.
type dynamicsRun struct {
	g       *graph.Graph
	model   game.Model
	obj     core.Objective
	policy  dynamics.Policy
	workers int
}

// prepDynamics decodes and validates a dynamics request (the 4xx half).
func (s *Server) prepDynamics(req DynamicsRequest) (*dynamicsRun, error) {
	g, err := s.decodeGraph(req.Graph)
	if err != nil {
		return nil, err
	}
	model, err := req.Model.Build(g.N())
	if err != nil {
		return nil, errBadRequest("bad model: %v", err)
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if req.MaxMoves < 0 || req.MaxMoves > s.cfg.MaxMoves {
		return nil, errBadRequest("max_moves %d outside [0,%d]", req.MaxMoves, s.cfg.MaxMoves)
	}
	return &dynamicsRun{
		g:       g,
		model:   model,
		obj:     obj,
		policy:  policy,
		workers: s.clampWorkers(req.Workers),
	}, nil
}

// execDynamics runs a validated dynamics request on a pooled session.
// onMove, when non-nil, observes every applied move in order on the run's
// goroutine (the streaming endpoint's feed).
func (s *Server) execDynamics(ctx context.Context, req DynamicsRequest, run *dynamicsRun, onMove func(dynamics.TraceEntry)) (*DynamicsResponse, error) {
	ctx, cancel := s.withDeadline(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, classify(err)
	}
	defer release()

	spec := dynamics.Spec{
		CheckSpec: core.CheckSpec{
			Model:     run.model,
			Objective: run.obj,
			Batched:   req.Batched,
			Workers:   run.workers,
		},
		Policy:   run.policy,
		MaxMoves: req.MaxMoves,
		Seed:     req.Seed,
		Trace:    req.Trace,
		OnMove:   onMove,
	}
	res, err := dynamics.RunSpecCtx(ctx, run.g, spec)
	if err != nil {
		return nil, classify(err)
	}

	final, err := EncodeGraph(run.g, FormatSparse6)
	if err != nil {
		return nil, classify(err)
	}
	resp := &DynamicsResponse{
		Converged:       res.Converged,
		Moves:           res.Moves,
		Sweeps:          res.Sweeps,
		Batched:         res.Batched.String(),
		RowsRecomputed:  res.RowsRecomputed,
		RowsInvalidated: res.RowsInvalidated,
		Final:           final,
	}
	s.stats.rowCache(res.RowsRecomputed, res.RowsInvalidated)
	for _, te := range res.Trace {
		resp.Trace = append(resp.Trace, traceEntryToDTO(te))
	}
	if req.Certify {
		verdict, err := core.CheckCtx(ctx, run.g, core.CheckSpec{
			Model:      run.model,
			Objective:  run.obj,
			StableOnly: true, // dynamics certify exactly the no-improving-move condition
			Batched:    req.Batched,
			Workers:    run.workers,
		})
		if err != nil {
			return nil, classify(err)
		}
		v := verdictToDTO(verdict)
		resp.Certified = &v
	}
	return resp, nil
}

// traceEntryToDTO converts one applied move to the wire shape shared by
// the blob trace and the streamed move events.
func traceEntryToDTO(te dynamics.TraceEntry) TraceEntryDTO {
	return TraceEntryDTO{
		Move:       moveToDTO(te.Move),
		OldCost:    te.OldCost,
		NewCost:    te.NewCost,
		SocialCost: te.SocialCost,
		MoveRank:   te.MoveRank,
	}
}

// Stats returns the live counter snapshot served on GET /stats.
func (s *Server) Stats() StatsSnapshot {
	return s.stats.snapshot(s.cache.len(), s.store != nil, s.store.len())
}

// Handler returns the HTTP surface: POST /v1/check, /v1/bestresponse,
// /v1/dynamics (JSON DTOs of api.go), GET /healthz and /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", func(w http.ResponseWriter, r *http.Request) {
		var req CheckRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := s.Check(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/bestresponse", func(w http.ResponseWriter, r *http.Request) {
		var req BestResponseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := s.BestResponse(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/dynamics", func(w http.ResponseWriter, r *http.Request) {
		var req DynamicsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := s.Dynamics(r.Context(), req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/dynamics/stream", s.handleDynamicsStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"pool_size": s.cfg.PoolSize,
			"in_use":    len(s.slots),
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// ListenAndServe serves the handler on the configured address until the
// listener fails or srv is shut down externally.
func (s *Server) ListenAndServe() error {
	return http.ListenAndServe(s.cfg.Addr, s.Handler())
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// decodeBody parses a JSON request body, answering 400 on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeResult renders a method result: the response on success, the
// apiError taxonomy on failure.
func writeResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			writeJSON(w, ae.Status, errorBody{Error: ae.Msg})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
