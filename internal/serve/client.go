package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// API is the operation surface of the equilibrium service. Both the
// in-process *Server and the HTTP *Client implement it, so callers — the
// CLI's check / dynamics subcommands in particular — are thin clients of
// the same code path whether or not a server process is involved.
type API interface {
	Check(ctx context.Context, req CheckRequest) (*CheckResponse, error)
	BestResponse(ctx context.Context, req BestResponseRequest) (*BestResponseResponse, error)
	Dynamics(ctx context.Context, req DynamicsRequest) (*DynamicsResponse, error)
	// DynamicsStream is Dynamics with incremental delivery: onEvent
	// observes start/move/heartbeat events in order and the terminal
	// result or error (see StreamEvent).
	DynamicsStream(ctx context.Context, req DynamicsRequest, onEvent func(StreamEvent) error) (*DynamicsResponse, error)
}

var (
	_ API = (*Server)(nil)
	_ API = (*Client)(nil)
)

// Client talks to a remote equilibrium server over HTTP with the same
// DTOs and error taxonomy as the in-process methods: non-2xx responses
// come back as *apiError with the transported status and message.
type Client struct {
	BaseURL string
	// HTTPClient defaults to a client with a 60s timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for a server at baseURL
// (e.g. "http://localhost:8347").
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 60 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends a DTO and decodes the 200 body into out.
func (c *Client) post(ctx context.Context, path string, payload, out any) error {
	buf, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return &apiError{Status: resp.StatusCode, Msg: eb.Error}
		}
		return &apiError{Status: resp.StatusCode, Msg: string(body)}
	}
	return json.Unmarshal(body, out)
}

// get decodes a GET endpoint's 200 body into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return &apiError{Status: resp.StatusCode, Msg: string(body)}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Check posts a CheckRequest to /v1/check.
func (c *Client) Check(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	var resp CheckResponse
	if err := c.post(ctx, "/v1/check", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// BestResponse posts a BestResponseRequest to /v1/bestresponse.
func (c *Client) BestResponse(ctx context.Context, req BestResponseRequest) (*BestResponseResponse, error) {
	var resp BestResponseResponse
	if err := c.post(ctx, "/v1/bestresponse", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Dynamics posts a DynamicsRequest to /v1/dynamics.
func (c *Client) Dynamics(ctx context.Context, req DynamicsRequest) (*DynamicsResponse, error) {
	var resp DynamicsResponse
	if err := c.post(ctx, "/v1/dynamics", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's GET /stats snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var snap StatsSnapshot
	if err := c.get(ctx, "/stats", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Healthz probes GET /healthz.
func (c *Client) Healthz(ctx context.Context) error {
	var body map[string]any
	if err := c.get(ctx, "/healthz", &body); err != nil {
		return err
	}
	if status, _ := body["status"].(string); status != "ok" {
		return fmt.Errorf("unhealthy: %v", body)
	}
	return nil
}
