// Package serve is the long-lived equilibrium service: an HTTP+JSON
// server owning a bounded pool of resident request slots, the shared
// pricing-engine registry (pricing.Shared — pooled BFS scratch reused
// across requests), and an LRU of certified verdicts keyed by canonical
// form (internal/iso), serving concurrent check / best-response / dynamics
// requests for every deviation model.
//
// The request and response DTOs in this file are the single wire shape of
// the system: the HTTP handlers decode them, the CLI's check / dynamics
// subcommands construct them and call the same Server methods in process
// (thin clients of the same code path), and the load generator replays
// them against a live server while comparing every verdict bit-for-bit
// with the direct one-shot path.
package serve

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// Graph wire formats accepted by GraphDTO.Format.
const (
	FormatEdgeList = "edgelist"
	FormatGraph6   = "graph6"
	FormatSparse6  = "sparse6"
)

// GraphDTO carries a graph in one of the graphio wire formats.
type GraphDTO struct {
	// Format is "edgelist", "graph6", or "sparse6" (default "edgelist").
	Format string `json:"format,omitempty"`
	// Data is the serialized graph in the chosen format.
	Data string `json:"data"`
}

// Decode parses the carried graph.
func (d GraphDTO) Decode() (*graph.Graph, error) {
	switch d.Format {
	case FormatEdgeList, "":
		return graphio.ReadEdgeList(strings.NewReader(d.Data))
	case FormatGraph6:
		return graphio.FromGraph6(strings.TrimSpace(d.Data))
	case FormatSparse6:
		return graphio.FromSparse6(strings.TrimSpace(d.Data))
	default:
		return nil, fmt.Errorf("unknown graph format %q", d.Format)
	}
}

// EncodeGraph renders g as a GraphDTO in the given format ("" means
// sparse6, the most compact for this library's sparse graphs).
func EncodeGraph(g *graph.Graph, format string) (GraphDTO, error) {
	switch format {
	case FormatSparse6, "":
		s, err := graphio.ToSparse6(g)
		return GraphDTO{Format: FormatSparse6, Data: s}, err
	case FormatGraph6:
		s, err := graphio.ToGraph6(g)
		return GraphDTO{Format: FormatGraph6, Data: s}, err
	case FormatEdgeList:
		var sb strings.Builder
		err := graphio.WriteEdgeList(&sb, g)
		return GraphDTO{Format: FormatEdgeList, Data: sb.String()}, err
	default:
		return GraphDTO{}, fmt.Errorf("unknown graph format %q", format)
	}
}

// ModelDTO selects the deviation model of a request. The zero value is the
// basic swap game.
type ModelDTO struct {
	// Name is "swap" (default), "greedy", "interests", "budget", or "2nb".
	Name string `json:"name,omitempty"`
	// EdgeCost is the greedy model's per-incident-edge maintenance price
	// (0 means game.DefaultEdgeCost).
	EdgeCost int64 `json:"edge_cost,omitempty"`
	// Budget is the budget model's uniform per-vertex edge budget k
	// (0 means game.DefaultBudget).
	Budget int `json:"budget,omitempty"`
	// Interests carries the interests model's per-vertex interest sets;
	// len(Interests) must equal the graph's n.
	Interests [][]int32 `json:"interests,omitempty"`
}

// Build resolves the DTO into a game.Model for a graph on n vertices.
func (d ModelDTO) Build(n int) (game.Model, error) {
	switch d.Name {
	case "", "swap":
		return game.Swap{}, nil
	case "greedy":
		ec := d.EdgeCost
		if ec == 0 {
			ec = game.DefaultEdgeCost
		}
		if ec < 0 {
			return nil, fmt.Errorf("greedy model needs edge_cost >= 0, got %d", ec)
		}
		return game.Greedy{EdgeCost: ec}, nil
	case "budget":
		k := d.Budget
		if k == 0 {
			k = game.DefaultBudget
		}
		if k < 1 {
			return nil, fmt.Errorf("budget model needs budget >= 1, got %d", k)
		}
		return game.Budget{K: k}, nil
	case "2nb", "twonb":
		return game.TwoNeighborhood{}, nil
	case "interests":
		if len(d.Interests) == 0 {
			return nil, fmt.Errorf("interests model needs explicit interest sets")
		}
		if len(d.Interests) != n {
			return nil, fmt.Errorf("interests declare %d vertices, graph has n=%d", len(d.Interests), n)
		}
		for v, set := range d.Interests {
			for _, u := range set {
				if int(u) < 0 || int(u) >= n {
					return nil, fmt.Errorf("interest set of %d names vertex %d outside [0,%d)", v, u, n)
				}
			}
		}
		return game.NewInterests(d.Interests), nil
	default:
		return nil, fmt.Errorf("unknown model %q", d.Name)
	}
}

// cacheKey fingerprints the model configuration for the verdict cache.
// Interest sets are folded in verbatim: two requests with different sets
// are different checks.
func (d ModelDTO) cacheKey() string {
	name := d.Name
	if name == "" {
		name = "swap"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|ec=%d|k=%d", name, d.EdgeCost, d.Budget)
	for _, set := range d.Interests {
		sb.WriteByte(';')
		for _, u := range set {
			fmt.Fprintf(&sb, "%d,", u)
		}
	}
	return sb.String()
}

// parseObjective maps the wire objective onto core's.
func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "", "sum":
		return core.Sum, nil
	case "max":
		return core.Max, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}

// objectiveName renders the wire objective (normalizing the default).
func objectiveName(s string) string {
	if s == "" {
		return "sum"
	}
	return s
}

// CheckRequest asks whether a graph is stable under a model and objective.
type CheckRequest struct {
	Graph GraphDTO `json:"graph"`
	Model ModelDTO `json:"model,omitempty"`
	// Objective is "sum" (default) or "max".
	Objective string `json:"objective,omitempty"`
	// StableOnly skips the max version's deletion-criticality side
	// condition (see core.CheckSpec.StableOnly).
	StableOnly bool `json:"stable_only,omitempty"`
	// Batched routes the check through the batched cross-agent sweep
	// where the model has one (bit-identical verdicts).
	Batched bool `json:"batched,omitempty"`
	// Workers bounds the request's pricing parallelism (0 = server
	// default, capped by the server's MaxWorkers).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the request's wall-clock time; expiry cancels the
	// scan between per-agent units (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MoveDTO is a single-edge move on the wire.
type MoveDTO struct {
	V    int    `json:"v"`
	Drop int    `json:"drop,omitempty"`
	Add  int    `json:"add,omitempty"`
	Kind string `json:"kind,omitempty"` // "swap" (default), "add", "delete"
}

// moveToDTO converts a game move to the wire shape.
func moveToDTO(m game.Move) MoveDTO {
	d := MoveDTO{V: m.V, Drop: m.Drop, Add: m.Add}
	if m.Kind != game.KindSwap {
		d.Kind = m.Kind.String()
	}
	return d
}

// Move converts the wire shape back to a game move (the CLI uses it to
// render moves with the library's String formats).
func (d MoveDTO) Move() game.Move {
	m := game.Move{V: d.V, Drop: d.Drop, Add: d.Add}
	switch d.Kind {
	case "add":
		m.Kind = game.KindAdd
	case "delete":
		m.Kind = game.KindDelete
	}
	return m
}

// ViolationDTO is a witness violation on the wire.
type ViolationDTO struct {
	// Kind is "swap-improves", "deletion-safe", or "insertion-helps".
	Kind string `json:"kind"`
	// Move is the improving move (swap-improves only).
	Move *MoveDTO `json:"move,omitempty"`
	// Edge is the offending edge (deletion-safe / insertion-helps).
	Edge *[2]int `json:"edge,omitempty"`
	// Agent is the agent whose cost witnesses the violation.
	Agent int `json:"agent"`
	// OldCost and NewCost are the agent's costs before / after the change.
	OldCost int64 `json:"old_cost"`
	NewCost int64 `json:"new_cost"`
}

// violationToDTO converts a witness to the wire shape (nil-safe).
func violationToDTO(v *core.Violation) *ViolationDTO {
	if v == nil {
		return nil
	}
	d := &ViolationDTO{
		Kind:    v.Kind.String(),
		Agent:   v.Agent,
		OldCost: v.OldCost,
		NewCost: v.NewCost,
	}
	if v.Kind == core.SwapImproves {
		m := moveToDTO(v.Move)
		d.Move = &m
	} else {
		d.Edge = &[2]int{v.Edge.U, v.Edge.V}
	}
	return d
}

// Violation converts the wire shape back to a core witness (nil-safe).
func (d *ViolationDTO) Violation() *core.Violation {
	if d == nil {
		return nil
	}
	v := &core.Violation{Agent: d.Agent, OldCost: d.OldCost, NewCost: d.NewCost}
	switch d.Kind {
	case "deletion-safe":
		v.Kind = core.DeletionSafe
	case "insertion-helps":
		v.Kind = core.InsertionHelps
	default:
		v.Kind = core.SwapImproves
	}
	if d.Move != nil {
		v.Move = d.Move.Move()
	}
	if d.Edge != nil {
		v.Edge = graph.NewEdge(d.Edge[0], d.Edge[1])
	}
	return v
}

// VerdictDTO is a check outcome on the wire.
type VerdictDTO struct {
	Stable    bool          `json:"stable"`
	Violation *ViolationDTO `json:"violation,omitempty"`
	// Batched reports whether the batched cross-agent pass actually ran.
	Batched bool `json:"batched,omitempty"`
}

// verdictToDTO converts a core verdict to the wire shape.
func verdictToDTO(v core.Verdict) VerdictDTO {
	return VerdictDTO{Stable: v.Stable, Violation: violationToDTO(v.Violation), Batched: v.Batched}
}

// CheckResponse answers a CheckRequest.
type CheckResponse struct {
	N int `json:"n"`
	M int `json:"m"`
	VerdictDTO
	// Cached reports that the verdict was served without a fresh
	// certification (from the LRU, or from the persistent store).
	Cached bool `json:"cached,omitempty"`
	// Stored reports that the verdict came from the persistent store's
	// index rather than the in-memory LRU (Cached is also set).
	Stored bool `json:"stored,omitempty"`
	// Coalesced reports that this request shared a concurrent identical
	// request's certification instead of running its own (it was a
	// follower of a coalesced flight).
	Coalesced bool `json:"coalesced,omitempty"`
}

// BestResponseRequest asks for one agent's cost-minimizing move.
type BestResponseRequest struct {
	Graph GraphDTO `json:"graph"`
	Model ModelDTO `json:"model,omitempty"`
	// Agent is the moving vertex.
	Agent int `json:"agent"`
	// Objective is "sum" (default) or "max".
	Objective string `json:"objective,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// BestResponseResponse answers a BestResponseRequest.
type BestResponseResponse struct {
	// Move is the cost-minimizing move; nil when no move strictly
	// improves.
	Move *MoveDTO `json:"move,omitempty"`
	// OldCost is the agent's current cost, NewCost the move's.
	OldCost int64 `json:"old_cost"`
	NewCost int64 `json:"new_cost"`
	// Improves reports whether the move strictly improves.
	Improves bool `json:"improves"`
}

// DynamicsRequest runs move dynamics from a supplied start graph.
type DynamicsRequest struct {
	Graph GraphDTO `json:"graph"`
	Model ModelDTO `json:"model,omitempty"`
	// Objective is "sum" (default) or "max".
	Objective string `json:"objective,omitempty"`
	// Policy is "best" (default), "first", or "random".
	Policy string `json:"policy,omitempty"`
	// Seed drives the random policy.
	Seed int64 `json:"seed,omitempty"`
	// MaxMoves caps applied moves (0 = engine default, capped by the
	// server's MaxMoves).
	MaxMoves int `json:"max_moves,omitempty"`
	// Batched routes certification sweeps through the batched pass where
	// the model has one; the response reports fallback explicitly.
	Batched bool `json:"batched,omitempty"`
	Workers int  `json:"workers,omitempty"`
	// Trace returns every applied move.
	Trace bool `json:"trace,omitempty"`
	// Certify re-checks the final graph with a fresh one-shot instance
	// and returns the verdict.
	Certify   bool  `json:"certify,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// parsePolicy maps the wire policy onto dynamics'.
func parsePolicy(s string) (dynamics.Policy, error) {
	switch s {
	case "", "best":
		return dynamics.BestResponse, nil
	case "first":
		return dynamics.FirstImprovement, nil
	case "random":
		return dynamics.RandomImproving, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// TraceEntryDTO is one applied move of a dynamics trajectory.
type TraceEntryDTO struct {
	Move       MoveDTO `json:"move"`
	OldCost    int64   `json:"old_cost"`
	NewCost    int64   `json:"new_cost"`
	SocialCost int64   `json:"social_cost"`
	MoveRank   int     `json:"move_rank"`
}

// DynamicsResponse answers a DynamicsRequest.
type DynamicsResponse struct {
	Converged bool `json:"converged"`
	Moves     int  `json:"moves"`
	Sweeps    int  `json:"sweeps"`
	// Batched is "off", "active", or "fallback" — the explicit report of
	// how a batched-sweeps request was honored.
	Batched string `json:"batched"`
	// RowsRecomputed / RowsInvalidated are the session row cache's
	// lifetime counters over the run (0 when the trajectory never
	// attached a cache): BFS row rebuilds paid at syncs, and rows flagged
	// by applied moves' invalidation tests. Their ratio to Moves is the
	// cache-effectiveness signal — near equilibrium both stay O(1) per
	// applied move.
	RowsRecomputed  uint64 `json:"rows_recomputed,omitempty"`
	RowsInvalidated uint64 `json:"rows_invalidated,omitempty"`
	// Final is the end-of-run graph (sparse6).
	Final GraphDTO `json:"final"`
	// Certified carries the fresh one-shot verdict when Certify was set.
	Certified *VerdictDTO     `json:"certified,omitempty"`
	Trace     []TraceEntryDTO `json:"trace,omitempty"`
}
