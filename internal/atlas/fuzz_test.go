package atlas_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/iso"
)

// FuzzAtlasRoundTrip fuzzes the two pillars the corpus format stands on:
// sparse6 round-trip stability (encode → decode → re-encode must be the
// identity on the encoded string, and decode must reproduce the graph) and
// dedupe-key soundness (a relabeled copy keys into the same isomorphism
// class; a one-edge modification keys into a different one, i.e. keys are
// collision-free across the certificate filter).
//
// Run a short bounded hunt with:
//
//	go test -run=NONE -fuzz=FuzzAtlasRoundTrip -fuzztime=30s ./internal/atlas
func FuzzAtlasRoundTrip(f *testing.F) {
	f.Add(uint8(6), int64(1), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add(uint8(3), int64(9), []byte{})
	f.Add(uint8(30), int64(42), []byte{0, 1, 0, 2, 0, 3, 0, 4, 7, 7, 255, 254})
	f.Add(uint8(12), int64(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 200, 100})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, ops []byte) {
		n := 2 + int(nRaw)%32
		g := graph.New(n)
		for i := 0; i+1 < len(ops); i += 2 {
			u, v := int(ops[i])%n, int(ops[i+1])%n
			if u != v {
				g.AddEdge(u, v)
			}
		}

		// Sparse6 round trip: string-stable and graph-faithful.
		s6, err := graphio.ToSparse6(g)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := graphio.FromSparse6(s6)
		if err != nil {
			t.Fatalf("decode %q: %v", s6, err)
		}
		if !back.Equal(g) {
			t.Fatalf("decode(%q) is not the encoded graph", s6)
		}
		s6b, err := graphio.ToSparse6(back)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if s6b != s6 {
			t.Fatalf("re-encode unstable: %q -> %q", s6, s6b)
		}

		// Dedupe keys: relabeling lands in the same class...
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		h := graph.New(n)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		d := iso.NewDeduper()
		k1, fresh1 := d.Key(g)
		if !fresh1 {
			t.Fatal("first graph keyed as already seen")
		}
		k2, fresh2 := d.Key(h)
		if fresh2 || k2 != k1 {
			t.Fatalf("relabeled copy keyed as %q (fresh=%v), original as %q", k2, fresh2, k1)
		}

		// ...and a one-edge modification (different m ⇒ non-isomorphic)
		// must key into a fresh class, even on certificate collisions.
		mod := g.Clone()
		changed := false
		for u := 0; u < n && !changed; u++ {
			for _, v := range mod.NonNeighbors(u) {
				mod.AddEdge(u, v)
				changed = true
				break
			}
		}
		if !changed && g.M() > 0 {
			e := g.Edges()[0]
			mod.RemoveEdge(e.U, e.V)
			changed = true
		}
		if changed {
			k3, fresh3 := d.Key(mod)
			if !fresh3 || k3 == k1 {
				t.Fatalf("modified graph keyed as %q (fresh=%v), colliding with %q", k3, fresh3, k1)
			}
		}
	})
}
