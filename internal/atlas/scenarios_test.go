package atlas_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/atlas"
	"repro/internal/serve"
)

// This file lives in atlas (not serve) because serve must not import atlas:
// the atlas reuses serve's wire shapes, so the dependency runs one way.

// TestLoadReplaysAtlasScenarios is satellite coverage for the load-seeding
// path: the load harness replays a corpus-seeded Extra set against a live
// HTTP server and every response must be bit-identical to the direct
// in-process one-shot path — the same contract the built-in mix is held
// to, now over the much wider atlas instance set.
func TestLoadReplaysAtlasScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("load corpus in -short mode")
	}
	extra, err := atlas.LoadScenarios("../../testdata/atlas", 32, 1)
	if err != nil {
		t.Fatalf("load scenarios: %v", err)
	}
	if len(extra) < 32 {
		t.Fatalf("got %d scenarios from a max=32 draw over the checked-in corpus", len(extra))
	}
	for _, sc := range extra {
		if !strings.HasPrefix(sc.Name, "atlas/") {
			t.Fatalf("scenario %q not namespaced under atlas/", sc.Name)
		}
	}

	srv, err := serve.NewServer(serve.Config{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	report, err := serve.RunLoad(context.Background(), hs.URL, serve.LoadOptions{
		Clients: 2, Rounds: 2, Extra: extra,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(report.Failures) > 0 {
		t.Fatalf("%d load failures with atlas scenarios, first: %s", len(report.Failures), report.Failures[0])
	}
	wantRequests := 2 * 2 * (len(serve.Corpus(1)) + len(extra))
	if report.Requests != wantRequests {
		t.Errorf("replayed %d requests, want %d (built-in corpus + atlas extras)", report.Requests, wantRequests)
	}
	if report.Stats.Cache.Hits == 0 {
		t.Errorf("repeat rounds left the verdict LRU cold: %+v", report.Stats.Cache)
	}
}
