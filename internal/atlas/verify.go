package atlas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graphio"
	"repro/internal/iso"
	"repro/internal/serve"
)

// VerifyEntry re-derives everything derivable about one entry — structure
// metadata, social cost, both checker paths' verdicts and witnesses, and
// the iso key (dedup must be the corpus-order Deduper fed all prior
// entries) — then re-marshals the entry and compares it byte-for-byte with
// the stored JSONL line. Any drift in a verdict, a witness, a cost, or a
// derived field is an error naming the entry; a nil error certifies the
// line is exactly what today's checker stack produces.
func VerifyEntry(stored Entry, raw string, dedup *iso.Deduper, workers int) error {
	g, err := stored.Graph()
	if err != nil {
		return fmt.Errorf("entry %s: %v", stored.ID, err)
	}
	re := Entry{StoreEntry: serve.StoreEntry{
		ID:         stored.ID,
		Kind:       stored.Kind,
		Source:     stored.Source,
		Model:      stored.Model,
		Objective:  stored.Objective,
		StableOnly: stored.StableOnly,
	}}
	if err := describe(&re, g, workers); err != nil {
		return fmt.Errorf("entry %s: %v", stored.ID, err)
	}
	re.IsoKey, _ = dedup.Key(g)
	verdict, err := Certify(g, re.Model, re.Objective, re.StableOnly, workers)
	if err != nil {
		return fmt.Errorf("entry %s: %v", stored.ID, err)
	}
	re.Stable = verdict.Stable
	re.Witness = witnessDTO(verdict.Violation)
	switch re.Kind {
	case KindEquilibrium:
		if !re.Stable {
			return fmt.Errorf("entry %s: stored as equilibrium, now certifies unstable (%v)",
				stored.ID, verdict.Violation)
		}
		re.Witness = nil // equilibria store no witness
	case KindNearMiss:
		if re.Stable {
			return fmt.Errorf("entry %s: stored as near-miss, now certifies stable", stored.ID)
		}
	default:
		return fmt.Errorf("entry %s: unknown kind %q", stored.ID, stored.Kind)
	}
	b, err := json.Marshal(&re)
	if err != nil {
		return err
	}
	if string(b) != raw {
		return fmt.Errorf("entry %s: re-certified entry diverges from stored line\n  stored:   %s\n  recomputed: %s",
			stored.ID, raw, b)
	}
	return nil
}

// Verify re-certifies every corpus entry in dir bit-for-bit (see
// VerifyEntry), cross-checks the companion .s6 graph list against the
// JSONL entries line-by-line, and enforces the corpus floor the regression
// suite relies on: entries must be unique per CheckKey, IDs unique, and
// kinds consistent. It returns the corpus on success.
func Verify(dir string, workers int) (*Corpus, error) {
	c, err := Read(dir)
	if err != nil {
		return nil, err
	}
	s6Raw, err := os.ReadFile(filepath.Join(dir, S6File))
	if err != nil {
		return nil, err
	}
	var s6Lines []string
	for _, line := range strings.Split(string(s6Raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s6Lines = append(s6Lines, line)
	}
	if len(s6Lines) != len(c.Entries) {
		return nil, fmt.Errorf("atlas: %s has %d graphs, %s has %d entries",
			S6File, len(s6Lines), JSONLFile, len(c.Entries))
	}
	if _, err := graphio.ReadSparse6Lines(strings.NewReader(string(s6Raw))); err != nil {
		return nil, err
	}
	dedup := iso.NewDeduper()
	seenKeys := map[string]string{}
	seenIDs := map[string]bool{}
	for i := range c.Entries {
		e := &c.Entries[i]
		if s6Lines[i] != e.Sparse6 {
			return nil, fmt.Errorf("atlas: entry %s: %s line %d is %q, JSONL sparse6 is %q",
				e.ID, S6File, i+1, s6Lines[i], e.Sparse6)
		}
		if seenIDs[e.ID] {
			return nil, fmt.Errorf("atlas: duplicate entry id %s", e.ID)
		}
		seenIDs[e.ID] = true
		if err := VerifyEntry(*e, c.Raw[i], dedup, workers); err != nil {
			return nil, fmt.Errorf("atlas: %w", err)
		}
		if prev, dup := seenKeys[e.CheckKey()]; dup {
			return nil, fmt.Errorf("atlas: entries %s and %s duplicate check key %q", prev, e.ID, e.CheckKey())
		}
		seenKeys[e.CheckKey()] = e.ID
	}
	return c, nil
}

// Summary condenses a corpus for the CLI and the smoke gates.
type Summary struct {
	Entries, Equilibria, NearMisses int
	Models                          map[string]int
	Objectives                      map[string]int
}

// Summarize counts entries per kind, model, and objective.
func Summarize(c *Corpus) Summary {
	s := Summary{Models: map[string]int{}, Objectives: map[string]int{}}
	for i := range c.Entries {
		e := &c.Entries[i]
		s.Entries++
		if e.Kind == KindNearMiss {
			s.NearMisses++
		} else {
			s.Equilibria++
		}
		name := e.Model.Name
		if name == "" {
			name = "swap"
		}
		s.Models[name]++
		s.Objectives[e.Objective]++
	}
	return s
}
