// Package atlas turns the equilibrium checker into a discovery instrument:
// it hunts graph families for certified equilibria of the five deviation
// models under both objectives, canonicalizes hits up to isomorphism
// (internal/iso), and persists them — together with near-miss
// counterexamples and their violation witnesses — as a checked-in corpus
// under testdata/atlas/. The corpus is three things at once: a structure
// dataset validating the tree-equilibrium and budget/diameter predictions
// of the related literature (Nikoletseas et al., Ehsani et al.), a
// standing differential regression suite that pins every future checker
// change against hundreds of known-verdict instances (Verify re-certifies
// each entry through both the per-agent and batched paths and requires
// bit-identical verdicts, witnesses, and metadata), and a scenario pool
// the service load generator replays for wider coverage than the
// hardcoded path/star/torus mix.
package atlas

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/iso"
	"repro/internal/serve"
)

// Entry kinds.
const (
	// KindEquilibrium marks a certified stable position of its model ×
	// objective.
	KindEquilibrium = "equilibrium"
	// KindNearMiss marks a one-move perturbation of a certified
	// equilibrium that fails the same check; Witness records the violation.
	KindNearMiss = "near-miss"
)

// Entry is one corpus line: a graph, the check it was certified under
// (model, objective, side-condition selection), the verdict, and the
// derived structure metadata. Field order is the canonical JSONL rendering
// order — Verify re-marshals recomputed entries and compares bytes, so the
// stored lines pin verdicts, witnesses, and metadata bit-for-bit.
//
// The certification prefix — graph, check spec, verdict — is the
// service's persistent-store line (serve.StoreEntry), embedded so the two
// schemas stay in lockstep and a checked-in corpus parses directly as a
// verdict-store seed. Atlas entries use their own vocabulary inside it:
// ID is "eq-0001"/"nm-0001"-style, Kind is KindEquilibrium or
// KindNearMiss, Source records how the hunt found the graph
// ("family:star8", "trees-exhaustive:n6", "dynamics:best",
// "perturbed:eq-0004"), and Witness is set for near-misses only. The
// store-only Batched / BatchedRan bits are never set (the corpus pins the
// per-agent path), so their omitempty tags keep the corpus rendering
// byte-identical to the pre-embedding layout.
type Entry struct {
	serve.StoreEntry
	// IsoKey is the graph's isomorphism-class key under the corpus
	// Deduper, fed entries in corpus order (see iso.Deduper).
	IsoKey string `json:"iso_key"`
	// Structure metadata, recomputed and re-pinned by Verify.
	N          int   `json:"n"`
	M          int   `json:"m"`
	Diameter   int   `json:"diameter"`
	MaxDegree  int   `json:"max_degree"`
	MinDegree  int   `json:"min_degree"`
	Tree       bool  `json:"tree"`
	SocialCost int64 `json:"social_cost"`
}

// Graph decodes the entry's graph.
func (e *Entry) Graph() (*graph.Graph, error) {
	return graphio.FromSparse6(e.Sparse6)
}

// objective maps the wire objective onto core's.
func (e *Entry) objective() (core.Objective, error) {
	switch e.Objective {
	case "sum":
		return core.Sum, nil
	case "max":
		return core.Max, nil
	default:
		return 0, fmt.Errorf("atlas: entry %s: unknown objective %q", e.ID, e.Objective)
	}
}

// CheckKey is the dedupe identity of a check: the isomorphism class plus
// everything that changes the predicate. Interest sets are label-sensitive
// (they name concrete vertices), so interests entries additionally fold in
// the labeled graph.
func (e *Entry) CheckKey() string {
	var sb strings.Builder
	sb.WriteString(e.IsoKey)
	name := e.Model.Name
	if name == "" {
		name = "swap"
	}
	fmt.Fprintf(&sb, "|%s|ec=%d|k=%d|%s|so=%v", name, e.Model.EdgeCost, e.Model.Budget, e.Objective, e.StableOnly)
	if len(e.Model.Interests) > 0 {
		fmt.Fprintf(&sb, "|%v|%s", e.Model.Interests, e.Sparse6)
	}
	return sb.String()
}

// Corpus is an ordered entry set plus the raw JSONL lines it was read from
// (empty for freshly hunted corpora), kept so Verify can compare
// re-rendered entries byte-for-byte against the checked-in file.
type Corpus struct {
	Entries []Entry
	// Raw holds the stored JSONL line of each entry when the corpus was
	// read from disk; len(Raw) == len(Entries) then, nil otherwise.
	Raw []string
}

// File names inside a corpus directory.
const (
	// JSONLFile is the metadata corpus: one Entry per line.
	JSONLFile = "atlas.jsonl"
	// S6File is the companion .s6 graph list (one sparse6 line per entry,
	// in order) for standard graph tools; Verify cross-checks it.
	S6File = "atlas.s6"
)

// header is written atop the JSONL corpus; readers skip '#' lines.
const header = `# Equilibrium atlas corpus — certified equilibria and near-miss
# counterexamples of the five deviation models (swap, greedy, interests,
# budget, 2nb) under sum/max objectives. One JSON entry per line; graphs in
# graphio sparse6. Regenerate with: bncg atlas hunt. Re-certify with:
# bncg atlas verify (every entry must re-verify bit-identically).`

// Write persists the corpus into dir (created if needed): the JSONL
// metadata file and the companion .s6 graph list.
func (c *Corpus) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var jl strings.Builder
	jl.WriteString(header)
	jl.WriteByte('\n')
	graphs := make([]*graph.Graph, 0, len(c.Entries))
	for i := range c.Entries {
		e := &c.Entries[i]
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		jl.Write(b)
		jl.WriteByte('\n')
		g, err := e.Graph()
		if err != nil {
			return fmt.Errorf("atlas: entry %s: %v", e.ID, err)
		}
		graphs = append(graphs, g)
	}
	if err := os.WriteFile(filepath.Join(dir, JSONLFile), []byte(jl.String()), 0o644); err != nil {
		return err
	}
	var s6 strings.Builder
	if err := graphio.WriteSparse6Lines(&s6, graphs); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, S6File), []byte(s6.String()), 0o644)
}

// Read loads the corpus from dir's JSONL file, keeping the raw line of
// every entry for byte-level verification.
func Read(dir string) (*Corpus, error) {
	f, err := os.Open(filepath.Join(dir, JSONLFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c := &Corpus{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("atlas: %s line %d: %v", JSONLFile, lineNo, err)
		}
		c.Entries = append(c.Entries, e)
		c.Raw = append(c.Raw, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Certify runs the entry's check through both execution paths — per-agent
// and batched — and requires identical verdicts and witnesses before
// returning the per-agent one; a divergence is exactly the class of
// regression the corpus exists to catch, so it is an error, not a pick.
func Certify(g *graph.Graph, model serve.ModelDTO, objective string, stableOnly bool, workers int) (core.Verdict, error) {
	m, err := model.Build(g.N())
	if err != nil {
		return core.Verdict{}, err
	}
	obj := core.Sum
	switch objective {
	case "sum":
	case "max":
		obj = core.Max
	default:
		return core.Verdict{}, fmt.Errorf("atlas: unknown objective %q", objective)
	}
	spec := core.CheckSpec{Model: m, Objective: obj, StableOnly: stableOnly, Workers: workers}
	plain, err := core.Check(g, spec)
	if err != nil {
		return core.Verdict{}, err
	}
	spec.Batched = true
	batched, err := core.Check(g, spec)
	if err != nil {
		return core.Verdict{}, err
	}
	if plain.Stable != batched.Stable || !sameViolation(plain.Violation, batched.Violation) {
		return core.Verdict{}, fmt.Errorf(
			"atlas: batched/per-agent divergence (model=%s obj=%s): per-agent stable=%v %v, batched stable=%v %v",
			model.Name, objective, plain.Stable, plain.Violation, batched.Stable, batched.Violation)
	}
	return plain, nil
}

func sameViolation(a, b *core.Violation) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// witnessDTO converts a core witness to the wire shape (nil-safe). It
// mirrors serve's unexported converter; the DTO type itself is shared.
func witnessDTO(v *core.Violation) *serve.ViolationDTO {
	if v == nil {
		return nil
	}
	d := &serve.ViolationDTO{
		Kind:    v.Kind.String(),
		Agent:   v.Agent,
		OldCost: v.OldCost,
		NewCost: v.NewCost,
	}
	if v.Kind == core.SwapImproves {
		m := serve.MoveDTO{V: v.Move.V, Drop: v.Move.Drop, Add: v.Move.Add}
		if v.Move.Kind != game.KindSwap {
			m.Kind = v.Move.Kind.String()
		}
		d.Move = &m
	} else {
		d.Edge = &[2]int{v.Edge.U, v.Edge.V}
	}
	return d
}

// describe fills an entry's derived fields from its graph and check
// outcome: sparse6, structure metadata, social cost under the model.
func describe(e *Entry, g *graph.Graph, workers int) error {
	s6, err := graphio.ToSparse6(g)
	if err != nil {
		return err
	}
	e.Sparse6 = s6
	e.N = g.N()
	e.M = g.M()
	diam, connected := g.Diameter()
	if !connected {
		diam = -1
	}
	e.Diameter = diam
	e.MaxDegree = g.MaxDegree()
	e.MinDegree = g.MinDegree()
	e.Tree = g.IsTree()
	m, err := e.Model.Build(g.N())
	if err != nil {
		return err
	}
	obj, err := e.objective()
	if err != nil {
		return err
	}
	e.SocialCost = m.New(g.Clone(), workers).SocialCost(obj)
	return nil
}

// AssignIsoKeys feeds every entry's graph through one Deduper in corpus
// order and stores the class keys. The order-dependence of colliding-class
// suffixes is why keys are (re)assigned corpus-wide rather than per entry.
func (c *Corpus) AssignIsoKeys() error {
	d := iso.NewDeduper()
	for i := range c.Entries {
		g, err := c.Entries[i].Graph()
		if err != nil {
			return fmt.Errorf("atlas: entry %s: %v", c.Entries[i].ID, err)
		}
		key, _ := d.Key(g)
		c.Entries[i].IsoKey = key
	}
	return nil
}
