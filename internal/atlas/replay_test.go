package atlas

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/iso"
)

// corpusDir is the checked-in corpus every replay test runs against.
const corpusDir = "../../testdata/atlas"

func readCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Read(corpusDir)
	if err != nil {
		t.Fatalf("read corpus: %v (regenerate with: bncg atlas hunt)", err)
	}
	if len(c.Entries) == 0 {
		t.Fatal("corpus is empty")
	}
	return c
}

// TestCorpusReplay is the standing differential regression suite: every
// checked-in corpus entry is re-certified through both the per-agent and
// batched checker paths for its stored model × objective × side-condition
// combination, and the recomputed entry — verdict, witness, structure
// metadata, iso key — must re-marshal byte-identically to the stored JSONL
// line. A checker change that shifts any verdict, witness tie-break, cost,
// or derived field on any of the hundreds of known-verdict instances fails
// here by entry ID. Runs in CI including under -race.
func TestCorpusReplay(t *testing.T) {
	c := readCorpus(t)
	// The corpus-order Deduper makes iso keys order-dependent, so the
	// table drives a flat loop (not subtests); failures name the entry.
	dedup := iso.NewDeduper()
	for i := range c.Entries {
		if err := VerifyEntry(c.Entries[i], c.Raw[i], dedup, 0); err != nil {
			t.Errorf("replay: %v", err)
		}
	}
}

// TestCorpusReplayWorkerCounts re-runs a deterministic sample of entries
// under explicit worker counts; verdicts and witnesses must not depend on
// parallelism (the engine's determinism contract at atlas scale).
func TestCorpusReplayWorkerCounts(t *testing.T) {
	c := readCorpus(t)
	for i := 0; i < len(c.Entries); i += 17 {
		e := c.Entries[i]
		g, err := e.Graph()
		if err != nil {
			t.Fatalf("entry %s: %v", e.ID, err)
		}
		want, err := json.Marshal(e.Witness)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			v, err := Certify(g, e.Model, e.Objective, e.StableOnly, workers)
			if err != nil {
				t.Fatalf("entry %s workers=%d: %v", e.ID, workers, err)
			}
			if v.Stable != e.Stable {
				t.Errorf("entry %s workers=%d: stable=%v, corpus says %v", e.ID, workers, v.Stable, e.Stable)
			}
			got, err := json.Marshal(witnessDTO(v.Violation))
			if err != nil {
				t.Fatal(err)
			}
			if e.Kind == KindNearMiss && string(got) != string(want) {
				t.Errorf("entry %s workers=%d: witness %s, corpus says %s", e.ID, workers, got, want)
			}
		}
	}
}

// TestCorpusFloor pins the acceptance floor the corpus must keep: at least
// 100 certified equilibria spanning all five models and both objectives,
// and at least 10 near-misses each carrying a violation witness.
func TestCorpusFloor(t *testing.T) {
	c := readCorpus(t)
	s := Summarize(c)
	if s.Equilibria < 100 {
		t.Errorf("corpus has %d certified equilibria, want >= 100", s.Equilibria)
	}
	if s.NearMisses < 10 {
		t.Errorf("corpus has %d near-misses, want >= 10", s.NearMisses)
	}
	for _, model := range []string{"swap", "greedy", "interests", "budget", "2nb"} {
		if s.Models[model] == 0 {
			t.Errorf("corpus has no %s-model entries", model)
		}
	}
	for _, obj := range []string{"sum", "max"} {
		if s.Objectives[obj] == 0 {
			t.Errorf("corpus has no %s-objective entries", obj)
		}
	}
	for i := range c.Entries {
		e := &c.Entries[i]
		switch e.Kind {
		case KindNearMiss:
			if e.Witness == nil {
				t.Errorf("near-miss %s has no witness", e.ID)
			}
			if e.Stable {
				t.Errorf("near-miss %s stored as stable", e.ID)
			}
		case KindEquilibrium:
			if e.Witness != nil {
				t.Errorf("equilibrium %s carries a witness", e.ID)
			}
			if !e.Stable {
				t.Errorf("equilibrium %s stored as unstable", e.ID)
			}
		default:
			t.Errorf("entry %s has unknown kind %q", e.ID, e.Kind)
		}
	}
}

// TestVerifyWholeCorpus runs the full directory-level Verify (s6
// cross-check, dedupe keys, byte-identity) — the same gate `bncg atlas
// verify` and the CI atlas-smoke step exercise.
func TestVerifyWholeCorpus(t *testing.T) {
	if _, err := Verify(corpusDir, 0); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestCorpusStatsRender pins that the structure tables render from the
// checked-in corpus: per-model envelope, budget/diameter trade-off, and
// Conjecture-14 evidence.
func TestCorpusStatsRender(t *testing.T) {
	c := readCorpus(t)
	tables, err := StatsTables(c, 0)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	for _, tab := range tables {
		if tab.String() == "" {
			t.Error("empty table rendering")
		}
	}
}

// TestReplayDetectsDrift proves the replay harness bites: a tampered
// stored line (metadata drift) and a flipped kind must both be rejected.
func TestReplayDetectsDrift(t *testing.T) {
	c := readCorpus(t)
	e := c.Entries[0]
	raw := c.Raw[0]
	tampered := strings.Replace(raw,
		`"social_cost":`+strconv.FormatInt(e.SocialCost, 10),
		`"social_cost":`+strconv.FormatInt(e.SocialCost+1, 10), 1)
	if tampered == raw {
		t.Fatal("tamper replacement did not apply")
	}
	if err := VerifyEntry(e, tampered, iso.NewDeduper(), 0); err == nil {
		t.Error("VerifyEntry accepted a tampered social_cost")
	}
	flipped := e
	flipped.Kind = KindNearMiss // entry 0 certifies stable → kind mismatch
	if err := VerifyEntry(flipped, raw, iso.NewDeduper(), 0); err == nil {
		t.Error("VerifyEntry accepted a flipped kind")
	}
}
