package atlas

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/uniformity"
)

// StatsTables renders the corpus's structure tables — the atlas extension
// of experiments E18/E19 and the Conjecture-14 evidence of E16, computed
// over certified equilibria instead of random samples:
//
//  1. per model × objective: entry counts, tree share, and the diameter /
//     degree envelopes the structure literature bounds;
//  2. the budget/diameter trade-off: max equilibrium diameter per budget k
//     (Ehsani et al. — smaller budgets force deeper equilibria); and
//  3. Conjecture-14 evidence over swap equilibria: distance-uniformity ε
//     and worst diameter/lg n among ε < 1/4 instances.
func StatsTables(c *Corpus, workers int) ([]*stats.Table, error) {
	type groupKey struct {
		model, objective string
		stableOnly       bool
	}
	type agg struct {
		entries, misses, trees            int
		maxDiam, maxDeg, minN, maxN, maxK int
	}
	groups := map[groupKey]*agg{}
	var order []groupKey
	for i := range c.Entries {
		e := &c.Entries[i]
		name := e.Model.Name
		if name == "" {
			name = "swap"
		}
		if name == "budget" {
			name = fmt.Sprintf("budget k=%d", e.Model.Budget)
		}
		k := groupKey{name, e.Objective, e.StableOnly}
		a := groups[k]
		if a == nil {
			a = &agg{minN: e.N}
			groups[k] = a
			order = append(order, k)
		}
		if e.Kind == KindNearMiss {
			a.misses++
			continue
		}
		a.entries++
		if e.Tree {
			a.trees++
		}
		if e.Diameter > a.maxDiam {
			a.maxDiam = e.Diameter
		}
		if e.MaxDegree > a.maxDeg {
			a.maxDeg = e.MaxDegree
		}
		if e.N < a.minN || a.minN == 0 {
			a.minN = e.N
		}
		if e.N > a.maxN {
			a.maxN = e.N
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].model != order[j].model {
			return order[i].model < order[j].model
		}
		if order[i].objective != order[j].objective {
			return order[i].objective < order[j].objective
		}
		return !order[i].stableOnly && order[j].stableOnly
	})
	perModel := stats.NewTable(
		"Atlas corpus: certified equilibria per model × objective",
		"model", "objective", "equilibria", "near-misses", "trees", "n range", "max diameter", "max degree")
	for _, k := range order {
		a := groups[k]
		obj := k.objective
		if k.stableOnly {
			obj += " (stable-only)"
		}
		perModel.Add(k.model, obj, a.entries, a.misses, a.trees,
			fmt.Sprintf("%d–%d", a.minN, a.maxN), a.maxDiam, a.maxDeg)
	}

	// Budget/diameter trade-off over the budget-model equilibria.
	budgetDiam := map[int]*agg{}
	var ks []int
	for i := range c.Entries {
		e := &c.Entries[i]
		if e.Model.Name != "budget" || e.Kind != KindEquilibrium {
			continue
		}
		a := budgetDiam[e.Model.Budget]
		if a == nil {
			a = &agg{}
			budgetDiam[e.Model.Budget] = a
			ks = append(ks, e.Model.Budget)
		}
		a.entries++
		if e.Diameter > a.maxDiam {
			a.maxDiam = e.Diameter
		}
		if e.MaxDegree > a.maxDeg {
			a.maxDeg = e.MaxDegree
		}
	}
	sort.Ints(ks)
	budget := stats.NewTable(
		"Budget/diameter trade-off over certified budget-model equilibria (Ehsani et al.)",
		"budget k", "equilibria", "max diameter", "max degree")
	for _, k := range ks {
		a := budgetDiam[k]
		budget.Add(k, a.entries, a.maxDiam, a.maxDeg)
	}

	// Conjecture-14 evidence over swap equilibria: the certified corpus as
	// the sample the E16 random families approximate.
	conj := stats.NewTable(
		"Conjecture 14 over swap-model equilibria: ε < 1/4 ⇒ diameter = O(lg n)",
		"equilibria analyzed", "ε < 1/4 instances", "worst diameter/lg n", "consistent?")
	analyzed, qualifying := 0, 0
	worstRatio := 0.0
	for i := range c.Entries {
		e := &c.Entries[i]
		if (e.Model.Name != "" && e.Model.Name != "swap") || e.Kind != KindEquilibrium {
			continue
		}
		g, err := e.Graph()
		if err != nil {
			return nil, err
		}
		prof, err := uniformity.Analyze(g.AllPairsParallel(workers))
		if err != nil {
			continue
		}
		analyzed++
		if prof.AlmostEpsilon < 0.25 {
			qualifying++
			if ratio := float64(prof.Diameter) / math.Log2(float64(e.N)); ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	conj.Add(analyzed, qualifying, worstRatio, boolMark(worstRatio < 4))
	return []*stats.Table{perModel, budget, conj}, nil
}

// boolMark renders a boolean as the experiment tables do.
func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
