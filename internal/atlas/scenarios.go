package atlas

import (
	"fmt"
	"math/rand"

	"repro/internal/serve"
)

// Scenarios converts corpus entries into replayable service scenarios for
// the load generator: every selected entry becomes a CheckRequest with the
// entry's exact model, objective, and side-condition selection (so the
// expected verdict is the stored one), and equilibrium entries additionally
// replay through the batched path — the wider scenario-diversity set the
// hardcoded path/star/torus mix lacked. max > 0 bounds the selection by
// drawing a seeded uniform sample without replacement (deterministic per
// seed); max <= 0 takes the whole corpus.
func Scenarios(c *Corpus, max int, seed int64) []serve.Scenario {
	idx := make([]int, len(c.Entries))
	for i := range idx {
		idx[i] = i
	}
	if max > 0 && max < len(idx) {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:max]
	}
	var out []serve.Scenario
	for _, i := range idx {
		e := &c.Entries[i]
		base := serve.CheckRequest{
			Graph:      serve.GraphDTO{Format: serve.FormatSparse6, Data: e.Sparse6},
			Model:      e.Model,
			Objective:  e.Objective,
			StableOnly: e.StableOnly,
		}
		out = append(out, serve.Scenario{
			Name:  fmt.Sprintf("atlas/%s", e.ID),
			Check: &base,
		})
		if e.Kind == KindEquilibrium {
			batched := base
			batched.Batched = true
			out = append(out, serve.Scenario{
				Name:  fmt.Sprintf("atlas/%s/batched", e.ID),
				Check: &batched,
			})
		}
	}
	return out
}

// LoadScenarios reads the corpus in dir and returns up to max scenarios
// (see Scenarios).
func LoadScenarios(dir string, max int, seed int64) ([]serve.Scenario, error) {
	c, err := Read(dir)
	if err != nil {
		return nil, err
	}
	return Scenarios(c, max, seed), nil
}
