package atlas

import (
	"fmt"
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/serve"
	"repro/internal/treegen"
)

// HuntConfig bounds a hunt. Every knob is deterministic: the same config
// produces the same corpus byte-for-byte (all randomness flows from Seed,
// all iteration orders are slices).
type HuntConfig struct {
	// Seed drives random trees, random chords, dynamics random policies,
	// and perturbation draws.
	Seed int64
	// Workers bounds pricing parallelism (verdicts are worker-independent).
	Workers int
	// Quick shrinks every stage to smoke-test size.
	Quick bool
	// MaxNearMisses caps recorded near-miss counterexamples (default 16).
	MaxNearMisses int
}

func (c HuntConfig) withDefaults() HuntConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxNearMisses == 0 {
		c.MaxNearMisses = 16
	}
	return c
}

// check is one (model, objective, side-condition) predicate the hunt
// certifies graphs against.
type check struct {
	label      string
	model      func(n int) serve.ModelDTO
	objective  string
	stableOnly bool
}

// ringInterests gives every vertex interest in its two cyclic successors —
// the same deterministic nontrivial pattern the service load corpus uses.
func ringInterests(n int) [][]int32 {
	sets := make([][]int32, n)
	for v := 0; v < n; v++ {
		sets[v] = []int32{int32((v + 1) % n), int32((v + 2) % n)}
	}
	return sets
}

// checks enumerates the hunt's predicate zoo: the five deviation models
// crossed with both objectives where the model prices them (2nb ignores
// the distance objective and runs once), plus the swap game's stable-only
// max variant — the condition swap dynamics converge to.
func checks() []check {
	swap := func(int) serve.ModelDTO { return serve.ModelDTO{} }
	greedy := func(int) serve.ModelDTO { return serve.ModelDTO{Name: "greedy", EdgeCost: 2} }
	interests := func(n int) serve.ModelDTO {
		return serve.ModelDTO{Name: "interests", Interests: ringInterests(n)}
	}
	budget := func(k int) func(int) serve.ModelDTO {
		return func(int) serve.ModelDTO { return serve.ModelDTO{Name: "budget", Budget: k} }
	}
	twonb := func(int) serve.ModelDTO { return serve.ModelDTO{Name: "2nb"} }
	return []check{
		{"swap/sum", swap, "sum", false},
		{"swap/max", swap, "max", false},
		{"swap/max-stable", swap, "max", true},
		{"greedy/sum", greedy, "sum", false},
		{"greedy/max", greedy, "max", false},
		{"interests/sum", interests, "sum", false},
		{"interests/max", interests, "max", false},
		{"budget2/sum", budget(2), "sum", false},
		{"budget2/max", budget(2), "max", false},
		{"budget3/sum", budget(3), "sum", false},
		{"budget4/sum", budget(4), "sum", false},
		{"2nb", twonb, "sum", false},
	}
}

// hunter accumulates deduped entries. Its Deduper sees every probed graph
// (admitted or not), so admission-time iso keys are bookkeeping only; the
// canonical stored keys are re-derived corpus-wide by AssignIsoKeys, which
// feeds admitted entries alone in corpus order — the pass Verify replays.
type hunter struct {
	cfg     HuntConfig
	corpus  *Corpus
	seen    map[string]bool // CheckKey → present
	dedup   *iso.Deduper
	nEq     int
	nMiss   int
	rng     *rand.Rand
	lastErr error
}

// record certifies g under ck and admits the entry if it is a fresh check
// (new isomorphism class, or same class under a different predicate).
// wantStable selects which verdicts to keep: equilibria (true) or
// near-misses (false); verdicts of the other polarity are dropped.
func (h *hunter) record(g *graph.Graph, ck check, source string, wantStable bool) bool {
	if h.lastErr != nil || g.N() < 3 || !g.IsConnected() {
		return false
	}
	e := Entry{StoreEntry: serve.StoreEntry{
		Kind:       KindEquilibrium,
		Source:     source,
		Model:      ck.model(g.N()),
		Objective:  ck.objective,
		StableOnly: ck.stableOnly,
	}}
	if err := describe(&e, g, h.cfg.Workers); err != nil {
		h.lastErr = err
		return false
	}
	e.IsoKey, _ = h.dedup.Key(g.Clone())
	if h.seen[e.CheckKey()] {
		return false
	}
	verdict, err := Certify(g, e.Model, e.Objective, e.StableOnly, h.cfg.Workers)
	if err != nil {
		h.lastErr = fmt.Errorf("%s (%s): %w", source, ck.label, err)
		return false
	}
	e.Stable = verdict.Stable
	if verdict.Stable != wantStable {
		return false
	}
	if !verdict.Stable {
		if h.nMiss >= h.cfg.MaxNearMisses {
			return false
		}
		e.Kind = KindNearMiss
		e.Witness = witnessDTO(verdict.Violation)
		h.nMiss++
		e.ID = fmt.Sprintf("nm-%04d", h.nMiss)
	} else {
		h.nEq++
		e.ID = fmt.Sprintf("eq-%04d", h.nEq)
	}
	h.seen[e.CheckKey()] = true
	h.corpus.Entries = append(h.corpus.Entries, e)
	return true
}

// Hunt sweeps graph families across the model × objective zoo, certifies
// every hit through both checker paths, dedupes up to isomorphism (per
// predicate), and returns the corpus: known families, exhaustive labeled
// trees for small n, dynamics-converged positions from random starts, and
// near-miss counterexamples obtained by perturbing certified equilibria by
// one random move. Deterministic for a given config.
func Hunt(cfg HuntConfig) (*Corpus, error) {
	cfg = cfg.withDefaults()
	h := &hunter{
		cfg:    cfg,
		corpus: &Corpus{},
		seen:   map[string]bool{},
		dedup:  iso.NewDeduper(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	allChecks := checks()

	// Stage 1 — known families. Stars and complete graphs are the paper's
	// sum/max anchors; cycles, tori, and hypercubes probe the max version;
	// double stars and caterpillars probe the tree structure results.
	starNs := []int{4, 6, 8, 10, 12, 14, 16}
	cycleNs := []int{4, 5, 6, 7, 8, 9, 10, 12}
	completeNs := []int{4, 5, 6, 7, 8}
	pathNs := []int{4, 6, 8, 10}
	if cfg.Quick {
		starNs, cycleNs, completeNs, pathNs = []int{5, 8}, []int{5, 6}, []int{4, 5}, []int{5}
	}
	type fam struct {
		name string
		g    *graph.Graph
	}
	var fams []fam
	for _, n := range starNs {
		fams = append(fams, fam{fmt.Sprintf("star%d", n), constructions.Star(n)})
	}
	for _, n := range pathNs {
		fams = append(fams, fam{fmt.Sprintf("path%d", n), constructions.Path(n)})
	}
	for _, n := range cycleNs {
		fams = append(fams, fam{fmt.Sprintf("cycle%d", n), constructions.Cycle(n)})
	}
	for _, n := range completeNs {
		fams = append(fams, fam{fmt.Sprintf("complete%d", n), constructions.Complete(n)})
	}
	fams = append(fams,
		fam{"doublestar2x2", constructions.DoubleStar(2, 2)},
		fam{"doublestar3x3", constructions.DoubleStar(3, 3)},
		fam{"petersen", constructions.Petersen()},
		fam{"hypercube3", constructions.Hypercube(3)},
		fam{"torus2", constructions.NewTorus(2).Graph()},
	)
	if !cfg.Quick {
		fams = append(fams,
			fam{"torus3", constructions.NewTorus(3).Graph()},
			fam{"caterpillar4x2", constructions.Caterpillar(4, 2)},
			fam{"grid3x4", constructions.Grid(3, 4)},
		)
	}
	for _, f := range fams {
		for _, ck := range allChecks {
			h.record(f.g, ck, "family:"+f.name, true)
		}
	}

	// Stage 2 — exhaustive labeled trees for small n through the swap
	// checks: the whole n^(n-2) tree space, validating Theorem 1 (star is
	// the unique sum-equilibrium tree) and the diameter ≤ 3 structure of
	// max-equilibrium trees over every tree, not a sample.
	treeNs := []int{5, 6, 7}
	if cfg.Quick {
		treeNs = []int{5}
	}
	swapChecks := allChecks[:3]
	for _, n := range treeNs {
		treegen.AllTrees(n, func(t *graph.Graph) bool {
			for _, ck := range swapChecks {
				h.record(t, ck, fmt.Sprintf("trees-exhaustive:n%d", n), true)
			}
			return h.lastErr == nil
		})
	}

	// Stage 3 — dynamics-converged positions: best-response trajectories
	// from seeded random trees (plus a chorded variant) under every check;
	// a converged trajectory ends in a certified equilibrium of its model.
	sizes := []int{10, 14, 18}
	reps := 2
	if cfg.Quick {
		sizes, reps = []int{8}, 1
	}
	for _, n := range sizes {
		for r := 0; r < reps; r++ {
			for _, ck := range allChecks {
				start := treegen.RandomTree(n, h.rng)
				if r%2 == 1 {
					for i := 0; i < n/4; i++ {
						u, v := h.rng.Intn(n), h.rng.Intn(n)
						if u != v {
							start.AddEdge(u, v)
						}
					}
				}
				obj := core.Sum
				if ck.objective == "max" {
					obj = core.Max
				}
				model, err := ck.model(n).Build(n)
				if err != nil {
					return nil, err
				}
				res, err := dynamics.RunSpec(start, dynamics.Spec{
					CheckSpec: core.CheckSpec{Model: model, Objective: obj, Workers: cfg.Workers},
					Policy:    dynamics.BestResponse,
					MaxMoves:  4000,
				})
				if err != nil {
					return nil, fmt.Errorf("atlas: dynamics %s n=%d: %w", ck.label, n, err)
				}
				if res.Converged {
					h.record(start, ck, "dynamics:best", true)
				}
			}
		}
	}
	if h.lastErr != nil {
		return nil, h.lastErr
	}

	// Stage 4 — near-misses: perturb certified equilibria by one random
	// swap and keep the ones that now fail their own check, witness
	// attached. Perturbations that disconnect or accidentally remain
	// stable are skipped.
	equilibria := append([]Entry(nil), h.corpus.Entries...)
	for _, src := range equilibria {
		if h.nMiss >= cfg.MaxNearMisses {
			break
		}
		g, err := src.Graph()
		if err != nil {
			return nil, err
		}
		p := perturb(g, h.rng)
		if p == nil {
			continue
		}
		ck := check{
			label:      "perturbed",
			model:      func(int) serve.ModelDTO { return src.Model },
			objective:  src.Objective,
			stableOnly: src.StableOnly,
		}
		h.record(p, ck, "perturbed:"+src.ID, false)
	}
	if h.lastErr != nil {
		return nil, h.lastErr
	}

	// Re-derive iso keys corpus-wide from the admitted entries alone (the
	// hunter's own Deduper also saw rejected probes, which may shift the
	// rare colliding-class suffixes); this pass is the one Verify replays.
	if err := h.corpus.AssignIsoKeys(); err != nil {
		return nil, err
	}
	return h.corpus, nil
}

// perturb applies one random swap — a random edge (v,w) re-pointed to a
// random non-neighbor — returning nil when the draw is infeasible or
// disconnects the graph.
func perturb(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	edges := g.Edges()
	if len(edges) == 0 {
		return nil
	}
	e := edges[rng.Intn(len(edges))]
	v, w := e.U, e.V
	if rng.Intn(2) == 1 {
		v, w = w, v
	}
	cands := g.NonNeighbors(v)
	if len(cands) == 0 {
		return nil
	}
	add := cands[rng.Intn(len(cands))]
	p := g.Clone()
	p.RemoveEdge(v, w)
	p.AddEdge(v, add)
	if !p.IsConnected() {
		return nil
	}
	return p
}
