package atlas

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickHunt runs the smoke-sized hunt once per test binary; the hunt is
// deterministic, so sharing the corpus across tests loses nothing.
func quickHunt(t *testing.T) *Corpus {
	t.Helper()
	c, err := Hunt(HuntConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("quick hunt: %v", err)
	}
	return c
}

// TestHuntDeterministic pins the hunt's reproducibility contract: the same
// seed must produce a byte-identical corpus, file for file.
func TestHuntDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		c, err := Hunt(HuntConfig{Seed: 7, Quick: true})
		if err != nil {
			t.Fatalf("hunt: %v", err)
		}
		if err := c.Write(dir); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for _, name := range []string{JSONLFile, S6File} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between two hunts with the same seed", name)
		}
	}
}

// TestHuntWriteReadVerifyRoundTrip hunts a fresh quick corpus, persists it,
// and requires the full Verify gate to pass on the round-tripped files —
// the invariant that lets `bncg atlas hunt` output be checked in as-is.
func TestHuntWriteReadVerifyRoundTrip(t *testing.T) {
	c := quickHunt(t)
	if len(c.Entries) == 0 {
		t.Fatal("quick hunt found nothing")
	}
	dir := t.TempDir()
	if err := c.Write(dir); err != nil {
		t.Fatalf("write: %v", err)
	}
	rc, err := Read(dir)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(rc.Entries) != len(c.Entries) {
		t.Fatalf("round trip: wrote %d entries, read %d", len(c.Entries), len(rc.Entries))
	}
	for i := range c.Entries {
		want, _ := json.Marshal(&c.Entries[i])
		if rc.Raw[i] != string(want) {
			t.Fatalf("entry %s: stored line differs from canonical marshal", c.Entries[i].ID)
		}
	}
	if _, err := Verify(dir, 0); err != nil {
		t.Fatalf("verify on fresh hunt output: %v", err)
	}
}

// TestHuntDedupes asserts no two corpus entries share a CheckKey — the
// hunter's admission filter and the final key assignment must agree.
func TestHuntDedupes(t *testing.T) {
	c := quickHunt(t)
	seen := make(map[string]string, len(c.Entries))
	for i := range c.Entries {
		e := &c.Entries[i]
		ck := e.CheckKey()
		if prev, dup := seen[ck]; dup {
			t.Errorf("entries %s and %s share check key %q", prev, e.ID, ck)
		}
		seen[ck] = e.ID
	}
}

// TestScenariosSampling pins the scenario conversion: max bounds the draw
// deterministically per seed, names are unique, equilibria get a batched
// variant and near-misses do not.
func TestScenariosSampling(t *testing.T) {
	c := quickHunt(t)
	all := Scenarios(c, 0, 1)
	names := make(map[string]bool, len(all))
	kinds := make(map[string]string, len(c.Entries))
	for i := range c.Entries {
		kinds[c.Entries[i].ID] = c.Entries[i].Kind
	}
	batched := 0
	for _, sc := range all {
		if sc.Check == nil {
			t.Fatalf("scenario %s has no check request", sc.Name)
		}
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %s", sc.Name)
		}
		names[sc.Name] = true
		id := strings.TrimSuffix(strings.TrimPrefix(sc.Name, "atlas/"), "/batched")
		if sc.Check.Batched {
			batched++
			if kinds[id] != KindEquilibrium {
				t.Errorf("batched scenario %s for non-equilibrium entry", sc.Name)
			}
		}
	}
	if batched == 0 {
		t.Error("no batched scenario variants generated")
	}

	sampleA := Scenarios(c, 5, 42)
	sampleB := Scenarios(c, 5, 42)
	if len(sampleA) == 0 || len(sampleA) > 10 { // 5 entries, at most one batched twin each
		t.Fatalf("sample size %d out of range for max=5", len(sampleA))
	}
	for i := range sampleA {
		if sampleA[i].Name != sampleB[i].Name {
			t.Fatalf("sampling not deterministic: %s vs %s at %d", sampleA[i].Name, sampleB[i].Name, i)
		}
	}
	sampleC := Scenarios(c, 5, 43)
	differs := len(sampleC) != len(sampleA)
	for i := 0; !differs && i < len(sampleA); i++ {
		differs = sampleA[i].Name != sampleC[i].Name
	}
	if !differs {
		t.Error("different seeds drew the identical sample (suspicious for a shuffled draw)")
	}
}

// TestLoadScenariosMissingDir pins the CLI contract: a missing corpus
// directory surfaces as os.ErrNotExist so `bncg load` can skip gracefully.
func TestLoadScenariosMissingDir(t *testing.T) {
	_, err := LoadScenarios(filepath.Join(t.TempDir(), "nope"), 0, 1)
	if err == nil {
		t.Fatal("expected an error for a missing corpus directory")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}
