package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// The session-backed Run must reproduce the pre-session NaiveRun (which
// re-freezes or re-evaluates per move) move-for-move: same applied moves,
// same costs, same sweep counts, same final equilibrium graph — for every
// policy, objective, seed, and worker count.

// diffInstance builds a connected test graph: a random tree plus chords.
func diffInstance(rng *rand.Rand, n, chords int) *graph.Graph {
	g := treegen.RandomTree(n, rng)
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// requireSameRun asserts two results agree on outcome and full trace.
func requireSameRun(t *testing.T, label string, got, want *Result, gg, wg *graph.Graph) {
	t.Helper()
	if got.Converged != want.Converged || got.Moves != want.Moves || got.Sweeps != want.Sweeps {
		t.Fatalf("%s: session (converged=%v moves=%d sweeps=%d), naive (converged=%v moves=%d sweeps=%d)",
			label, got.Converged, got.Moves, got.Sweeps, want.Converged, want.Moves, want.Sweeps)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace lengths %d vs %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace diverges at move %d: session %+v, naive %+v",
				label, i+1, got.Trace[i], want.Trace[i])
		}
	}
	if !gg.Equal(wg) {
		t.Fatalf("%s: final graphs differ", label)
	}
}

// TestRunAgreesWithNaiveRunAllModels is the model-generic trajectory
// differential: one table covering every deviation model of the roster ×
// all three policies × both objectives × several instance sizes × worker
// counts, comparing Run against NaiveRun move-for-move. Per-model instance
// sizes reflect the oracle's cost (the naive greedy and interests scans
// are the slowest); the capped MaxMoves keeps possibly-cycling models
// (interests, 2-neighborhood) deterministic either way. New models join
// the suite by adding one table row.
func TestRunAgreesWithNaiveRunAllModels(t *testing.T) {
	type sz struct{ n, chords int }
	cases := []struct {
		name  string
		build func(n int, rng *rand.Rand) game.Model
		sizes []sz
		// maxMoves caps possibly-cycling models; 0 (the driver default of
		// 10000) lets converging models run to their certified equilibria so
		// the comparison always covers the full trajectory.
		maxMoves int
	}{
		{"swap", func(int, *rand.Rand) game.Model { return nil }, // nil = default Swap
			[]sz{{8, 2}, {17, 5}, {33, 8}, {64, 16}}, 0},
		{"budget", func(int, *rand.Rand) game.Model { return game.Budget{K: 3} },
			[]sz{{8, 2}, {17, 5}, {64, 16}}, 0},
		{"2nb", func(int, *rand.Rand) game.Model { return game.TwoNeighborhood{} },
			[]sz{{8, 2}, {20, 5}, {48, 10}}, 600},
		{"greedy", func(int, *rand.Rand) game.Model { return game.Greedy{EdgeCost: 2} },
			[]sz{{8, 2}, {20, 5}}, 0},
		{"interests", func(n int, rng *rand.Rand) game.Model { return game.RandomInterests(n, 0.4, rng) },
			[]sz{{8, 2}, {20, 5}}, 300},
	}
	for _, mc := range cases {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(51))
			for _, size := range mc.sizes {
				base := diffInstance(rng, size.n, size.chords)
				model := mc.build(size.n, rng)
				for _, obj := range []core.Objective{core.Sum, core.Max} {
					for _, pol := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
						for _, workers := range []int{1, 3} {
							gSess := base.Clone()
							gNaive := base.Clone()
							opt := Options{
								Objective: obj, Policy: pol, Model: model, Workers: workers,
								Seed: 7, MaxMoves: mc.maxMoves, Trace: true,
							}
							rs, err1 := Run(gSess, opt)
							rn, err2 := NaiveRun(gNaive, opt)
							if err1 != nil || err2 != nil {
								t.Fatal(err1, err2)
							}
							label := mc.name + "/" + pol.String() + "/" + obj.String()
							requireSameRun(t, label, rs, rn, gSess, gNaive)
						}
					}
				}
			}
		})
	}
}

func TestModelsReachCertifiedEquilibria(t *testing.T) {
	// The acceptance path: each non-swap model runs end-to-end through
	// dynamics.Run to convergence and the final graph certifies on a fresh
	// instance of the model.
	rng := rand.New(rand.NewSource(55))
	n := 16
	base := diffInstance(rng, n, 4)
	models := []game.Model{
		game.Greedy{EdgeCost: 2},
		game.Budget{K: 3},
		game.TwoNeighborhood{},
		// A sparse interest structure that admits equilibria: each vertex
		// cares about its cyclic successor.
		cyclicInterests(n),
	}
	for _, model := range models {
		for _, pol := range []Policy{BestResponse, RandomImproving} {
			g := base.Clone()
			res, err := Run(g, Options{
				Objective: core.Sum, Policy: pol, Model: model, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s/%v: did not converge", model.Name(), pol)
			}
			stable, viol, err := model.New(g, 2).CheckStable(core.Sum)
			if err != nil {
				t.Fatal(err)
			}
			if !stable {
				t.Fatalf("%s/%v: converged graph fails certification: %v", model.Name(), pol, viol)
			}
		}
	}
}

// cyclicInterests gives vertex v the single interest (v+1) mod n.
func cyclicInterests(n int) game.Model {
	sets := make([][]int32, n)
	for v := range sets {
		sets[v] = []int32{int32((v + 1) % n)}
	}
	return game.NewInterests(sets)
}

func TestBestResponseTrajectoryWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	base := diffInstance(rng, 40, 10)
	for _, pol := range []Policy{BestResponse, FirstImprovement} {
		var ref *Result
		var refG *graph.Graph
		for _, workers := range []int{1, 2, 8} {
			g := base.Clone()
			res, err := Run(g, Options{Objective: core.Sum, Policy: pol, Workers: workers, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref, refG = res, g
				continue
			}
			requireSameRun(t, pol.String(), res, ref, g, refG)
		}
	}
}

func TestFindImprovementAgreesWithCheckSwapEquilibrium(t *testing.T) {
	// The certification sweep (core.Session.FindImprovement over the live
	// snapshot) and the one-shot checker must always agree on the verdict,
	// and a found move must actually improve.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 12; trial++ {
		g := diffInstance(rng, 5+rng.Intn(14), rng.Intn(6))
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			sess := core.NewSession(g.Clone(), 2)
			m, old, newCost, found := sess.FindImprovement(obj)
			stable, _, err := core.CheckSwapEquilibrium(g, obj, 2)
			if err != nil {
				t.Fatal(err)
			}
			if found == stable {
				t.Fatalf("trial %d obj=%v: sweep found=%v, checker stable=%v", trial, obj, found, stable)
			}
			if found {
				if newCost >= old {
					t.Fatalf("trial %d obj=%v: 'improving' move %v prices %d→%d", trial, obj, m, old, newCost)
				}
				if got := core.EvaluateMove(g, m, obj); got != newCost {
					t.Fatalf("trial %d obj=%v: move %v priced %d, evaluates to %d", trial, obj, m, newCost, got)
				}
			}
		}
	}
}
