package dynamics

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(graph.New(1), Options{}); err != ErrTooSmall {
		t.Errorf("tiny graph err = %v, want ErrTooSmall", err)
	}
	g := graph.New(4)
	g.AddEdge(0, 1)
	if _, err := Run(g, Options{}); err != core.ErrDisconnected {
		t.Errorf("disconnected err = %v, want ErrDisconnected", err)
	}
	if _, err := Run(constructions.Cycle(5), Options{Policy: Policy(42)}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunOnEquilibriumIsNoOp(t *testing.T) {
	for _, pol := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
		g := constructions.Star(8)
		ref := g.Clone()
		res, err := Run(g, Options{Objective: core.Sum, Policy: pol, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Moves != 0 {
			t.Errorf("%v on star: converged=%v moves=%d, want true, 0", pol, res.Converged, res.Moves)
		}
		if !g.Equal(ref) {
			t.Errorf("%v mutated an equilibrium graph", pol)
		}
	}
}

func TestSumDynamicsOnTreesReachesStar(t *testing.T) {
	// Theorem 1 corollary: sum swap dynamics on trees can only stop at the
	// star (diameter <= 2). Trees stay trees under swaps that keep the
	// graph connected... actually swaps preserve edge count and improving
	// swaps preserve connectivity, so the equilibrium is a tree and thus a
	// star.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(20)
		g := treegen.RandomTree(n, rng)
		res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		if !g.IsTree() {
			t.Fatalf("trial %d: equilibrium is not a tree (m=%d)", trial, g.M())
		}
		if diam, _ := g.Diameter(); diam > 2 {
			t.Errorf("trial %d: equilibrium tree diameter %d > 2 (not a star)", trial, diam)
		}
		ok, viol, err := core.CheckSum(g, 1)
		if err != nil || !ok {
			t.Errorf("trial %d: final graph not certified equilibrium: %v %v", trial, viol, err)
		}
	}
}

func TestAllPoliciesReachSumEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		base := treegen.RandomTree(n, rng)
		// add a few chords
		for extra := 0; extra < 4; extra++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				base.AddEdge(u, v)
			}
		}
		for _, pol := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
			g := base.Clone()
			res, err := Run(g, Options{Objective: core.Sum, Policy: pol, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("trial %d %v: did not converge", trial, pol)
			}
			if g.M() != base.M() {
				t.Fatalf("trial %d %v: edge count changed %d→%d", trial, pol, base.M(), g.M())
			}
			ok, viol, err := core.CheckSum(g, 1)
			if err != nil || !ok {
				t.Errorf("trial %d %v: final not an equilibrium: %v %v", trial, pol, viol, err)
			}
		}
	}
}

func TestMaxDynamicsReachesSwapStable(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(10)
		g := treegen.RandomTree(n, rng)
		res, err := Run(g, Options{Objective: core.Max, Policy: BestResponse})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		ok, viol, err := core.CheckSwapStable(g, core.Max, 1)
		if err != nil || !ok {
			t.Errorf("trial %d: final not swap-stable: %v %v", trial, viol, err)
		}
		// Lemma 2 applies to full max equilibria; trees reached here are
		// also deletion-critical (tree edges disconnect), so check it.
		if g.IsTree() {
			okEq, violEq, err := core.CheckMax(g, 1)
			if err != nil || !okEq {
				t.Errorf("trial %d: tree equilibrium fails CheckMax: %v %v", trial, violEq, err)
			}
			if diam, _ := g.Diameter(); diam > 3 {
				t.Errorf("trial %d: max-equilibrium tree has diameter %d > 3", trial, diam)
			}
		}
	}
}

func TestTraceRecordsImprovingMoves(t *testing.T) {
	g := constructions.Path(8)
	res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Moves || res.Moves == 0 {
		t.Fatalf("trace length %d, moves %d", len(res.Trace), res.Moves)
	}
	for i, e := range res.Trace {
		if e.NewCost >= e.OldCost {
			t.Errorf("trace %d: move %v not improving (%d→%d)", i, e.Move, e.OldCost, e.NewCost)
		}
		if e.MoveRank != i+1 {
			t.Errorf("trace %d: rank %d", i, e.MoveRank)
		}
		if e.SocialCost <= 0 || e.SocialCost >= core.InfCost {
			t.Errorf("trace %d: social cost %d out of range", i, e.SocialCost)
		}
	}
	// The final trace entry's social cost must match the final graph.
	last := res.Trace[len(res.Trace)-1]
	if got := core.SocialCost(g, core.Sum); got != last.SocialCost {
		t.Errorf("final social cost %d, trace says %d", got, last.SocialCost)
	}
}

func TestMaxMovesBudget(t *testing.T) {
	g := constructions.Path(30)
	res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse, MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Moves != 3 {
		t.Errorf("budget run: converged=%v moves=%d, want false, 3", res.Converged, res.Moves)
	}
}

func TestDeterminismOfSweepingPolicies(t *testing.T) {
	for _, pol := range []Policy{BestResponse, FirstImprovement} {
		a := constructions.Path(12)
		b := constructions.Path(12)
		ra, err1 := Run(a, Options{Objective: core.Sum, Policy: pol})
		rb, err2 := Run(b, Options{Objective: core.Sum, Policy: pol})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ra.Moves != rb.Moves || !a.Equal(b) {
			t.Errorf("%v nondeterministic: %d vs %d moves", pol, ra.Moves, rb.Moves)
		}
	}
}

func TestRandomImprovingSeedReproducible(t *testing.T) {
	a := constructions.Path(12)
	b := constructions.Path(12)
	ra, _ := Run(a, Options{Objective: core.Sum, Policy: RandomImproving, Seed: 99})
	rb, _ := Run(b, Options{Objective: core.Sum, Policy: RandomImproving, Seed: 99})
	if ra.Moves != rb.Moves || !a.Equal(b) {
		t.Error("same seed produced different runs")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{BestResponse, FirstImprovement, RandomImproving, Policy(9)} {
		if p.String() == "" {
			t.Error("empty Policy.String")
		}
	}
}

func TestRandomImprovingGoldenTrace(t *testing.T) {
	// Fixed-seed pin of the random-improving trajectory on Path(12): the
	// policy's probe pricing, rng consumption, and certification sweep are
	// all load-bearing for reproducibility, so any change to them shows up
	// here as a move-for-move diff.
	g := constructions.Path(12)
	res, err := Run(g, Options{
		Objective: core.Sum, Policy: RandomImproving, Seed: 99, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 1 {
		t.Fatalf("converged=%v sweeps=%d, want true, 1", res.Converged, res.Sweeps)
	}
	golden := []struct {
		m        core.Move
		old, new int64
	}{
		{core.Move{V: 0, Drop: 1, Add: 5}, 66, 42},
		{core.Move{V: 7, Drop: 6, Add: 3}, 34, 29},
		{core.Move{V: 5, Drop: 4, Add: 8}, 37, 30},
		{core.Move{V: 11, Drop: 10, Add: 7}, 48, 33},
		{core.Move{V: 1, Drop: 2, Add: 7}, 45, 31},
		{core.Move{V: 4, Drop: 3, Add: 7}, 37, 30},
		{core.Move{V: 10, Drop: 9, Add: 8}, 38, 29},
		{core.Move{V: 2, Drop: 3, Add: 9}, 37, 36},
		{core.Move{V: 1, Drop: 7, Add: 8}, 30, 27},
		{core.Move{V: 4, Drop: 7, Add: 8}, 31, 26},
		{core.Move{V: 0, Drop: 5, Add: 8}, 32, 25},
		{core.Move{V: 6, Drop: 5, Add: 8}, 33, 24},
		{core.Move{V: 2, Drop: 9, Add: 8}, 32, 23},
		{core.Move{V: 3, Drop: 7, Add: 8}, 29, 22},
		{core.Move{V: 11, Drop: 7, Add: 8}, 30, 21},
	}
	if res.Moves != len(golden) || len(res.Trace) != len(golden) {
		t.Fatalf("moves=%d trace=%d, want %d", res.Moves, len(res.Trace), len(golden))
	}
	for i, want := range golden {
		e := res.Trace[i]
		if e.Move != want.m || e.OldCost != want.old || e.NewCost != want.new {
			t.Fatalf("move %d: got %v %d→%d, want %v %d→%d",
				i+1, e.Move, e.OldCost, e.NewCost, want.m, want.old, want.new)
		}
	}
}

// goldenEntry renders one trace entry compactly, with InfCost spelled
// "inf" (interest-restricted agents legally pass through disconnected
// positions).
func goldenEntry(e TraceEntry) string {
	fmtCost := func(c int64) string {
		if c >= core.InfCost {
			return "inf"
		}
		return fmt.Sprint(c)
	}
	return fmt.Sprintf("%v %s→%s", e.Move, fmtCost(e.OldCost), fmtCost(e.NewCost))
}

// requireGoldenTrace pins a fixed-seed trajectory move-for-move.
func requireGoldenTrace(t *testing.T, label string, res *Result, golden []string) {
	t.Helper()
	if res.Moves != len(golden) || len(res.Trace) != len(golden) {
		t.Fatalf("%s: moves=%d trace=%d, want %d", label, res.Moves, len(res.Trace), len(golden))
	}
	for i, want := range golden {
		if got := goldenEntry(res.Trace[i]); got != want {
			t.Fatalf("%s move %d: got %q, want %q", label, i+1, got, want)
		}
	}
}

func TestGreedyGoldenTrace(t *testing.T) {
	// Fixed-seed pin of the greedy random-improving trajectory on Path(12)
	// with EdgeCost 2 — the PR 3 models had no counterpart of the swap
	// golden trace, so changes to greedy probe pricing, rng consumption, or
	// the three-kind enumeration now show up as a move-for-move diff here.
	g := constructions.Path(12)
	res, err := Run(g, Options{
		Objective: core.Sum, Policy: RandomImproving,
		Model: game.Greedy{EdgeCost: 2}, Seed: 99, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 2 {
		t.Fatalf("converged=%v sweeps=%d, want true, 2", res.Converged, res.Sweeps)
	}
	golden := []string{
		"6: 7→9 40→36",
		"4: +0 38→36",
		"7: +5 50→33",
		"3: +5 37→32",
		"0: 1→6 37→32",
		"3: +6 32→30",
		"0: 4→1 32→30",
		"1: +8 36→30",
		"10: +8 33→31",
		"3: 2→1 30→29",
		"4: +11 33→29",
		"10: +4 29→28",
		"0: +3 29→28",
		"11: 10→9 30→29",
		"1: -0 27→26",
		"2: 1→6 32→29",
		"0: 6→8 28→26",
		"9: -10 26→25",
		"2: +4 31→28",
		"11: +8 27→25",
		"2: +1 28→27",
		"8: -11 28→27",
		"11: +8 27→25",
		"8: -11 28→27",
		"0: +4 26→25",
		"3: -0 27→26",
		"11: +8 26→25",
		"6: 9→8 28→26",
		"2: +8 27→26",
		"11: -9 25→24",
		"6: -2 26→25",
		"8: -2 30→29",
		"3: 6→9 27→26",
		"2: +5 27→26",
		"5: -2 27→26",
		"6: 5→4 25→24",
		"2: +8 26→25",
		"2: -1 25→24",
	}
	requireGoldenTrace(t, "greedy", res, golden)
	if last := res.Trace[len(res.Trace)-1].SocialCost; last != 302 {
		t.Fatalf("final social cost %d, want 302", last)
	}
	if g.M() != 19 {
		t.Fatalf("final m=%d, want 19", g.M())
	}
}

func TestInterestsGoldenTrace(t *testing.T) {
	// Fixed-seed pin of the interests random-improving trajectory on
	// Path(12) with p=0.25 random interest sets. The run legally passes
	// through (and converges in) positions where some agents are
	// disconnected from uninterested parts of the graph — the "inf" cost
	// entries and the InfCost final social cost are part of the pin.
	irng := rand.New(rand.NewSource(17))
	model := game.RandomInterests(12, 0.25, irng)
	g := constructions.Path(12)
	res, err := Run(g, Options{
		Objective: core.Sum, Policy: RandomImproving,
		Model: model, Seed: 2, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 1 {
		t.Fatalf("converged=%v sweeps=%d, want true, 1", res.Converged, res.Sweeps)
	}
	golden := []string{
		"10: 9→0 24→22",
		"8: 7→2 18→11",
		"0: 1→3 19→13",
		"11: 10→0 16→13",
		"7: 6→4 7→5",
		"5: 6→9 13→11",
		"1: 2→4 5→3",
		"8: 2→6 inf→11",
		"11: 0→8 13→10",
		"11: 8→5 10→6",
		"0: 3→5 13→9",
		"7: 4→8 3→2",
		"10: 0→5 13→10",
		"2: 3→9 5→2",
		"8: 7→0 9→7",
		"2: 9→8 2→1",
		"3: 4→0 12→10",
		"5: 9→3 8→7",
		"9: 8→4 13→11",
		"6: 8→11 5→4",
		"8: 0→5 13→11",
		"8: 2→11 11→10",
		"6: 11→1 4→3",
		"3: 5→4 9→8",
		"11: 5→9 7→6",
		"11: 8→1 6→5",
		"6: 1→4 3→2",
		"6: 4→9 2→1",
		"9: 4→5 7→6",
		"3: 0→11 9→8",
		"8: 5→9 10→9",
		"4: 3→7 inf→7",
		"7: 4→5 3→2",
		"11: 3→5 4→3",
		"4: 1→9 8→7",
		"9: 11→10 5→4",
		"7: 5→9 2→1",
		"4: 5→0 7→6",
		"0: 5→9 8→7",
	}
	requireGoldenTrace(t, "interests", res, golden)
	// The certified equilibrium strands at least one uninterested agent:
	// the final social cost saturates to InfCost while the position still
	// certifies stable under the model.
	if last := res.Trace[len(res.Trace)-1].SocialCost; last != core.InfCost {
		t.Fatalf("final social cost %d, want InfCost", last)
	}
	if g.M() != 11 {
		t.Fatalf("final m=%d, want 11", g.M())
	}
	stable, viol, err := model.New(g, 1).CheckStable(core.Sum)
	if err != nil || !stable {
		t.Fatalf("golden equilibrium fails certification: %v %v", viol, err)
	}
}

func TestRandomImprovingCertificationMatchesChecker(t *testing.T) {
	// Convergence is declared by the certification sweep; the one-shot
	// equilibrium checker must agree on the final graph, for both
	// objectives and several seeds/worker counts.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		n := 8 + rng.Intn(10)
		base := treegen.RandomTree(n, rng)
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			for _, workers := range []int{1, 4} {
				g := base.Clone()
				res, err := Run(g, Options{
					Objective: obj, Policy: RandomImproving,
					Seed: int64(trial), Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("trial %d obj=%v: did not converge", trial, obj)
				}
				stable, viol, err := core.CheckSwapEquilibrium(g, obj, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !stable {
					t.Errorf("trial %d obj=%v workers=%d: certified graph fails checker: %v",
						trial, obj, workers, viol)
				}
			}
		}
	}
}

func TestRandomImprovingWorkerInvariant(t *testing.T) {
	// Workers only shard the certification sweeps; the trajectory must be
	// bit-identical for every count.
	var ref *Result
	var refG *graph.Graph
	for _, workers := range []int{1, 2, 8} {
		g := constructions.Path(16)
		res, err := Run(g, Options{
			Objective: core.Sum, Policy: RandomImproving, Seed: 5, Workers: workers, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refG = res, g
			continue
		}
		if res.Moves != ref.Moves || res.Sweeps != ref.Sweeps || !g.Equal(refG) {
			t.Fatalf("workers=%d diverged: moves %d vs %d", workers, res.Moves, ref.Moves)
		}
		for i := range ref.Trace {
			if res.Trace[i] != ref.Trace[i] {
				t.Fatalf("workers=%d: trace diverges at move %d", workers, i+1)
			}
		}
	}
}

func TestC6ConvergesToEquilibrium(t *testing.T) {
	// C6 is not a sum equilibrium; dynamics must make at least one move and
	// stop at a certified equilibrium.
	g := constructions.Cycle(6)
	res, err := Run(g, Options{Objective: core.Sum, Policy: FirstImprovement})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves == 0 {
		t.Fatalf("C6 run: converged=%v moves=%d", res.Converged, res.Moves)
	}
	ok, _, _ := core.CheckSum(g, 1)
	if !ok {
		t.Error("C6 dynamics output not a sum equilibrium")
	}
}
