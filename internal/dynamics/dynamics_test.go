package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/treegen"
)

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(graph.New(1), Options{}); err != ErrTooSmall {
		t.Errorf("tiny graph err = %v, want ErrTooSmall", err)
	}
	g := graph.New(4)
	g.AddEdge(0, 1)
	if _, err := Run(g, Options{}); err != core.ErrDisconnected {
		t.Errorf("disconnected err = %v, want ErrDisconnected", err)
	}
	if _, err := Run(constructions.Cycle(5), Options{Policy: Policy(42)}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunOnEquilibriumIsNoOp(t *testing.T) {
	for _, pol := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
		g := constructions.Star(8)
		ref := g.Clone()
		res, err := Run(g, Options{Objective: core.Sum, Policy: pol, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Moves != 0 {
			t.Errorf("%v on star: converged=%v moves=%d, want true, 0", pol, res.Converged, res.Moves)
		}
		if !g.Equal(ref) {
			t.Errorf("%v mutated an equilibrium graph", pol)
		}
	}
}

func TestSumDynamicsOnTreesReachesStar(t *testing.T) {
	// Theorem 1 corollary: sum swap dynamics on trees can only stop at the
	// star (diameter <= 2). Trees stay trees under swaps that keep the
	// graph connected... actually swaps preserve edge count and improving
	// swaps preserve connectivity, so the equilibrium is a tree and thus a
	// star.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(20)
		g := treegen.RandomTree(n, rng)
		res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		if !g.IsTree() {
			t.Fatalf("trial %d: equilibrium is not a tree (m=%d)", trial, g.M())
		}
		if diam, _ := g.Diameter(); diam > 2 {
			t.Errorf("trial %d: equilibrium tree diameter %d > 2 (not a star)", trial, diam)
		}
		ok, viol, err := core.CheckSum(g, 1)
		if err != nil || !ok {
			t.Errorf("trial %d: final graph not certified equilibrium: %v %v", trial, viol, err)
		}
	}
}

func TestAllPoliciesReachSumEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(12)
		base := treegen.RandomTree(n, rng)
		// add a few chords
		for extra := 0; extra < 4; extra++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				base.AddEdge(u, v)
			}
		}
		for _, pol := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
			g := base.Clone()
			res, err := Run(g, Options{Objective: core.Sum, Policy: pol, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("trial %d %v: did not converge", trial, pol)
			}
			if g.M() != base.M() {
				t.Fatalf("trial %d %v: edge count changed %d→%d", trial, pol, base.M(), g.M())
			}
			ok, viol, err := core.CheckSum(g, 1)
			if err != nil || !ok {
				t.Errorf("trial %d %v: final not an equilibrium: %v %v", trial, pol, viol, err)
			}
		}
	}
}

func TestMaxDynamicsReachesSwapStable(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(10)
		g := treegen.RandomTree(n, rng)
		res, err := Run(g, Options{Objective: core.Max, Policy: BestResponse})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		ok, viol, err := core.CheckSwapStable(g, core.Max, 1)
		if err != nil || !ok {
			t.Errorf("trial %d: final not swap-stable: %v %v", trial, viol, err)
		}
		// Lemma 2 applies to full max equilibria; trees reached here are
		// also deletion-critical (tree edges disconnect), so check it.
		if g.IsTree() {
			okEq, violEq, err := core.CheckMax(g, 1)
			if err != nil || !okEq {
				t.Errorf("trial %d: tree equilibrium fails CheckMax: %v %v", trial, violEq, err)
			}
			if diam, _ := g.Diameter(); diam > 3 {
				t.Errorf("trial %d: max-equilibrium tree has diameter %d > 3", trial, diam)
			}
		}
	}
}

func TestTraceRecordsImprovingMoves(t *testing.T) {
	g := constructions.Path(8)
	res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Moves || res.Moves == 0 {
		t.Fatalf("trace length %d, moves %d", len(res.Trace), res.Moves)
	}
	for i, e := range res.Trace {
		if e.NewCost >= e.OldCost {
			t.Errorf("trace %d: move %v not improving (%d→%d)", i, e.Move, e.OldCost, e.NewCost)
		}
		if e.MoveRank != i+1 {
			t.Errorf("trace %d: rank %d", i, e.MoveRank)
		}
		if e.SocialCost <= 0 || e.SocialCost >= core.InfCost {
			t.Errorf("trace %d: social cost %d out of range", i, e.SocialCost)
		}
	}
	// The final trace entry's social cost must match the final graph.
	last := res.Trace[len(res.Trace)-1]
	if got := core.SocialCost(g, core.Sum); got != last.SocialCost {
		t.Errorf("final social cost %d, trace says %d", got, last.SocialCost)
	}
}

func TestMaxMovesBudget(t *testing.T) {
	g := constructions.Path(30)
	res, err := Run(g, Options{Objective: core.Sum, Policy: BestResponse, MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Moves != 3 {
		t.Errorf("budget run: converged=%v moves=%d, want false, 3", res.Converged, res.Moves)
	}
}

func TestDeterminismOfSweepingPolicies(t *testing.T) {
	for _, pol := range []Policy{BestResponse, FirstImprovement} {
		a := constructions.Path(12)
		b := constructions.Path(12)
		ra, err1 := Run(a, Options{Objective: core.Sum, Policy: pol})
		rb, err2 := Run(b, Options{Objective: core.Sum, Policy: pol})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ra.Moves != rb.Moves || !a.Equal(b) {
			t.Errorf("%v nondeterministic: %d vs %d moves", pol, ra.Moves, rb.Moves)
		}
	}
}

func TestRandomImprovingSeedReproducible(t *testing.T) {
	a := constructions.Path(12)
	b := constructions.Path(12)
	ra, _ := Run(a, Options{Objective: core.Sum, Policy: RandomImproving, Seed: 99})
	rb, _ := Run(b, Options{Objective: core.Sum, Policy: RandomImproving, Seed: 99})
	if ra.Moves != rb.Moves || !a.Equal(b) {
		t.Error("same seed produced different runs")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{BestResponse, FirstImprovement, RandomImproving, Policy(9)} {
		if p.String() == "" {
			t.Error("empty Policy.String")
		}
	}
}

func TestRandomImprovingGoldenTrace(t *testing.T) {
	// Fixed-seed pin of the random-improving trajectory on Path(12): the
	// policy's probe pricing, rng consumption, and certification sweep are
	// all load-bearing for reproducibility, so any change to them shows up
	// here as a move-for-move diff.
	g := constructions.Path(12)
	res, err := Run(g, Options{
		Objective: core.Sum, Policy: RandomImproving, Seed: 99, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 1 {
		t.Fatalf("converged=%v sweeps=%d, want true, 1", res.Converged, res.Sweeps)
	}
	golden := []struct {
		m        core.Move
		old, new int64
	}{
		{core.Move{V: 0, Drop: 1, Add: 5}, 66, 42},
		{core.Move{V: 7, Drop: 6, Add: 3}, 34, 29},
		{core.Move{V: 5, Drop: 4, Add: 8}, 37, 30},
		{core.Move{V: 11, Drop: 10, Add: 7}, 48, 33},
		{core.Move{V: 1, Drop: 2, Add: 7}, 45, 31},
		{core.Move{V: 4, Drop: 3, Add: 7}, 37, 30},
		{core.Move{V: 10, Drop: 9, Add: 8}, 38, 29},
		{core.Move{V: 2, Drop: 3, Add: 9}, 37, 36},
		{core.Move{V: 1, Drop: 7, Add: 8}, 30, 27},
		{core.Move{V: 4, Drop: 7, Add: 8}, 31, 26},
		{core.Move{V: 0, Drop: 5, Add: 8}, 32, 25},
		{core.Move{V: 6, Drop: 5, Add: 8}, 33, 24},
		{core.Move{V: 2, Drop: 9, Add: 8}, 32, 23},
		{core.Move{V: 3, Drop: 7, Add: 8}, 29, 22},
		{core.Move{V: 11, Drop: 7, Add: 8}, 30, 21},
	}
	if res.Moves != len(golden) || len(res.Trace) != len(golden) {
		t.Fatalf("moves=%d trace=%d, want %d", res.Moves, len(res.Trace), len(golden))
	}
	for i, want := range golden {
		e := res.Trace[i]
		if e.Move != want.m || e.OldCost != want.old || e.NewCost != want.new {
			t.Fatalf("move %d: got %v %d→%d, want %v %d→%d",
				i+1, e.Move, e.OldCost, e.NewCost, want.m, want.old, want.new)
		}
	}
}

func TestRandomImprovingCertificationMatchesChecker(t *testing.T) {
	// Convergence is declared by the certification sweep; the one-shot
	// equilibrium checker must agree on the final graph, for both
	// objectives and several seeds/worker counts.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		n := 8 + rng.Intn(10)
		base := treegen.RandomTree(n, rng)
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			for _, workers := range []int{1, 4} {
				g := base.Clone()
				res, err := Run(g, Options{
					Objective: obj, Policy: RandomImproving,
					Seed: int64(trial), Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("trial %d obj=%v: did not converge", trial, obj)
				}
				stable, viol, err := core.CheckSwapEquilibrium(g, obj, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !stable {
					t.Errorf("trial %d obj=%v workers=%d: certified graph fails checker: %v",
						trial, obj, workers, viol)
				}
			}
		}
	}
}

func TestRandomImprovingWorkerInvariant(t *testing.T) {
	// Workers only shard the certification sweeps; the trajectory must be
	// bit-identical for every count.
	var ref *Result
	var refG *graph.Graph
	for _, workers := range []int{1, 2, 8} {
		g := constructions.Path(16)
		res, err := Run(g, Options{
			Objective: core.Sum, Policy: RandomImproving, Seed: 5, Workers: workers, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refG = res, g
			continue
		}
		if res.Moves != ref.Moves || res.Sweeps != ref.Sweeps || !g.Equal(refG) {
			t.Fatalf("workers=%d diverged: moves %d vs %d", workers, res.Moves, ref.Moves)
		}
		for i := range ref.Trace {
			if res.Trace[i] != ref.Trace[i] {
				t.Fatalf("workers=%d: trace diverges at move %d", workers, i+1)
			}
		}
	}
}

func TestC6ConvergesToEquilibrium(t *testing.T) {
	// C6 is not a sum equilibrium; dynamics must make at least one move and
	// stop at a certified equilibrium.
	g := constructions.Cycle(6)
	res, err := Run(g, Options{Objective: core.Sum, Policy: FirstImprovement})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves == 0 {
		t.Fatalf("C6 run: converged=%v moves=%d", res.Converged, res.Moves)
	}
	ok, _, _ := core.CheckSum(g, 1)
	if !ok {
		t.Error("C6 dynamics output not a sum equilibrium")
	}
}
