package dynamics

import (
	"math/rand"
	"testing"

	"repro/internal/game"
	"repro/internal/treegen"
)

// TestBatchedSweepsIdenticalTrajectories pins that routing a trajectory
// through the session row cache — the sweeping policies' per-agent scans,
// the random policy's thresholded probes, and every policy's certification
// sweeps all go through the cache's shared rows when BatchedSweeps is set —
// changes nothing observable: same moves, same costs, same sweep and
// convergence accounting, for the models that have the cached paths and
// for one that falls back (2-neighborhood).
func TestBatchedSweepsIdenticalTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	models := []game.Model{
		game.Swap{},
		game.RandomInterests(48, 0.4, rng),
		game.Budget{K: 3},
		game.Greedy{EdgeCost: 2},
		game.TwoNeighborhood{}, // no batched pass: exercises the fallback
	}
	base := treegen.RandomTree(48, rng)
	for _, model := range models {
		for _, policy := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
			for _, obj := range []game.Objective{game.Sum, game.Max} {
				opt := Options{
					Objective: obj, Policy: policy, Model: model,
					Workers: 2, Seed: 5, Trace: true, MaxMoves: 400,
				}
				gSeq, gBat := base.Clone(), base.Clone()
				optBat := opt
				optBat.BatchedSweeps = true
				seq, err := Run(gSeq, opt)
				if err != nil {
					t.Fatal(err)
				}
				bat, err := Run(gBat, optBat)
				if err != nil {
					t.Fatal(err)
				}
				if seq.Converged != bat.Converged || seq.Moves != bat.Moves || seq.Sweeps != bat.Sweeps {
					t.Fatalf("%s/%v/%v: results diverge: sequential %+v, batched %+v",
						model.Name(), policy, obj, seq, bat)
				}
				if len(seq.Trace) != len(bat.Trace) {
					t.Fatalf("%s/%v/%v: trace lengths diverge", model.Name(), policy, obj)
				}
				for i := range seq.Trace {
					if seq.Trace[i] != bat.Trace[i] {
						t.Fatalf("%s/%v/%v: trace entry %d diverges: %+v vs %+v",
							model.Name(), policy, obj, i, seq.Trace[i], bat.Trace[i])
					}
				}
				if !gSeq.Equal(gBat) {
					t.Fatalf("%s/%v/%v: final graphs diverge", model.Name(), policy, obj)
				}
			}
		}
	}
}
