// Package dynamics runs swap dynamics for the basic network creation game:
// agents repeatedly perform improving edge swaps until no agent can improve
// (a swap equilibrium) or a move budget is exhausted. Three scheduling
// policies are provided — deterministic round-robin best response,
// deterministic first improvement, and seeded random improving moves — all
// of which terminate in a certified equilibrium when they converge,
// because convergence is declared only after a full exhaustive pass finds
// no improving swap.
//
// Every trajectory runs inside one incremental pricing session
// (core.Session): the starting graph is thawed into a mutable CSR once,
// each applied move patches the snapshot in O(deg) instead of re-freezing
// in O(n+m), and every probe, sweep, and certification pass prices against
// the live snapshot. The pre-session loop survives as NaiveRun, the
// differential-test oracle; trajectories are bit-identical between the two
// paths for every policy and worker count.
//
// Swap dynamics need not converge in general (the game is not a potential
// game), so Run enforces MaxMoves and reports Converged=false when the
// budget is exhausted; in practice the experiments converge quickly.
package dynamics

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Policy selects the move scheduling rule.
type Policy int

const (
	// BestResponse sweeps vertices round-robin; each vertex plays its
	// cost-minimizing improving swap, if any.
	BestResponse Policy = iota
	// FirstImprovement sweeps vertices round-robin; each vertex plays the
	// first improving swap found in deterministic scan order. The order is
	// the pricing engine's add-major enumeration (see core.PriceSwaps);
	// it differs from the pre-engine drop-major order, so trajectories
	// differ from older builds while remaining deterministic and
	// terminating in the same certified equilibria.
	FirstImprovement
	// RandomImproving samples random candidate swaps; a certification
	// sweep declares equilibrium once random probing stops finding moves.
	RandomImproving
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case BestResponse:
		return "best-response"
	case FirstImprovement:
		return "first-improvement"
	case RandomImproving:
		return "random-improving"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a dynamics run. The zero value is a usable sum-version
// best-response run with default budgets.
type Options struct {
	Objective core.Objective
	Policy    Policy
	// Workers bounds the pricing parallelism of every policy (<= 0 means
	// all cores): BestResponse shards each best-swap scan,
	// FirstImprovement shards each first-improving scan with a
	// deterministic enumeration-order merge, and RandomImproving shards
	// its certification sweeps the same way. Trajectories are bit-identical
	// for every worker count.
	Workers int
	// MaxMoves caps the number of applied moves (default 10_000).
	MaxMoves int
	// Seed drives RandomImproving sampling (ignored by the deterministic
	// policies).
	Seed int64
	// PatienceFactor scales how many consecutive failed random samples
	// trigger a certification sweep (default 20, multiplied by m).
	PatienceFactor int
	// Trace records every applied move when true.
	Trace bool
}

// TraceEntry records one applied move and the mover's cost change,
// together with the social cost after the move — individual improvements
// do not imply social improvement (the game has no potential function),
// and the trace makes that observable.
type TraceEntry struct {
	Move       core.Move
	OldCost    int64
	NewCost    int64
	SocialCost int64 // social cost under the run's objective, post-move
	MoveRank   int   // 1-based index in the run
}

// Result reports the outcome of a dynamics run. The input graph is mutated
// in place and is the equilibrium graph when Converged is true.
type Result struct {
	Converged bool
	Moves     int
	Sweeps    int // full certification / improvement sweeps performed
	Trace     []TraceEntry
}

// ErrTooSmall is returned for graphs with fewer than 2 vertices.
var ErrTooSmall = errors.New("dynamics: graph needs at least 2 vertices")

func validate(g *graph.Graph, opt *Options) error {
	if g.N() < 2 {
		return ErrTooSmall
	}
	if !g.IsConnected() {
		return core.ErrDisconnected
	}
	if opt.MaxMoves <= 0 {
		opt.MaxMoves = 10000
	}
	if opt.PatienceFactor <= 0 {
		opt.PatienceFactor = 20
	}
	switch opt.Policy {
	case BestResponse, FirstImprovement, RandomImproving:
		return nil
	default:
		return fmt.Errorf("dynamics: unknown policy %v", opt.Policy)
	}
}

// Run executes swap dynamics on g (mutating it) until equilibrium or the
// move budget is exhausted. The whole trajectory shares one incremental
// pricing session: applied moves patch the live CSR snapshot in O(deg),
// and all probes and sweeps price against it.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if err := validate(g, &opt); err != nil {
		return nil, err
	}
	res := &Result{}
	sess := core.NewSession(g, opt.Workers)
	switch opt.Policy {
	case BestResponse, FirstImprovement:
		runSweeping(sess, opt, res)
	case RandomImproving:
		runRandom(sess, opt, res)
	}
	return res, nil
}

// applyAndRecord applies m through the session and appends a trace entry
// when enabled; the post-move social cost is measured on the live snapshot.
func applyAndRecord(sess *core.Session, m core.Move, oldCost, newCost int64, opt Options, res *Result) {
	sess.Apply(m)
	res.Moves++
	if opt.Trace {
		res.Trace = append(res.Trace, TraceEntry{
			Move: m, OldCost: oldCost, NewCost: newCost,
			SocialCost: sess.SocialCost(opt.Objective),
			MoveRank:   res.Moves,
		})
	}
}

func runSweeping(sess *core.Session, opt Options, res *Result) {
	n := sess.Graph().N()
	for res.Moves < opt.MaxMoves {
		res.Sweeps++
		movedThisSweep := false
		for v := 0; v < n && res.Moves < opt.MaxMoves; v++ {
			var m core.Move
			var old, newCost int64
			var improves bool
			if opt.Policy == BestResponse {
				m, old, newCost, improves = sess.BestSwap(v, opt.Objective)
			} else {
				m, old, newCost, improves = sess.FirstImproving(v, opt.Objective)
			}
			if improves {
				applyAndRecord(sess, m, old, newCost, opt, res)
				movedThisSweep = true
			}
		}
		if !movedThisSweep {
			res.Converged = true
			return
		}
	}
}

func runRandom(sess *core.Session, opt Options, res *Result) {
	rng := rand.New(rand.NewSource(opt.Seed))
	view := sess.View()
	n := view.N()
	patience := opt.PatienceFactor * view.M()
	if patience < 50 {
		patience = 50
	}
	// Probes against an unchanged graph share the prober's current cost:
	// the cache is stamped with the applied-move generation and only
	// recomputed after a move actually lands, so the patience window
	// between moves pays one current-cost BFS per distinct sampled vertex
	// instead of one per probe.
	curCost := make([]int64, n)
	curGen := make([]uint64, n)
	gen := uint64(1)
	cost := func(v int) int64 {
		if curGen[v] != gen {
			curCost[v] = sess.Cost(v, opt.Objective)
			curGen[v] = gen
		}
		return curCost[v]
	}
	failStreak := 0
	for res.Moves < opt.MaxMoves {
		if failStreak >= patience {
			// Certification sweep: exhaustively search for any improving
			// swap over the live snapshot; none ⇒ certified equilibrium.
			res.Sweeps++
			m, old, newCost, found := sess.FindImprovement(opt.Objective)
			if !found {
				res.Converged = true
				return
			}
			applyAndRecord(sess, m, old, newCost, opt, res)
			gen++
			failStreak = 0
			continue
		}
		v := rng.Intn(n)
		if view.Degree(v) == 0 {
			failStreak++
			continue
		}
		nbs := view.Neighbors(v)
		w := int(nbs[rng.Intn(len(nbs))])
		wp := rng.Intn(n)
		if wp == v || wp == w {
			failStreak++
			continue
		}
		cur := cost(v)
		m := core.Move{V: v, Drop: w, Add: wp}
		if c := sess.PriceMove(m, opt.Objective); c < cur {
			applyAndRecord(sess, m, cur, c, opt, res)
			gen++
			failStreak = 0
		} else {
			failStreak++
		}
	}
}

// NaiveRun is the pre-session dynamics loop, kept as the differential-test
// oracle: every best-swap and first-improvement scan re-freezes the graph
// (core.BestSwapParallel / core.PriceSwaps), random probes are priced by
// apply-BFS-revert on the map graph (core.EvaluateMove), and certification
// sweeps re-freeze per vertex. Run must reproduce its trajectories
// move-for-move for every policy, objective, seed, and worker count.
func NaiveRun(g *graph.Graph, opt Options) (*Result, error) {
	if err := validate(g, &opt); err != nil {
		return nil, err
	}
	res := &Result{}
	switch opt.Policy {
	case BestResponse, FirstImprovement:
		naiveSweeping(g, opt, res)
	case RandomImproving:
		naiveRandom(g, opt, res)
	}
	return res, nil
}

// naiveApplyAndRecord applies m directly to the map graph.
func naiveApplyAndRecord(g *graph.Graph, m core.Move, oldCost, newCost int64, opt Options, res *Result) {
	core.ApplyMove(g, m)
	res.Moves++
	if opt.Trace {
		res.Trace = append(res.Trace, TraceEntry{
			Move: m, OldCost: oldCost, NewCost: newCost,
			SocialCost: core.SocialCost(g, opt.Objective),
			MoveRank:   res.Moves,
		})
	}
}

func naiveSweeping(g *graph.Graph, opt Options, res *Result) {
	n := g.N()
	for res.Moves < opt.MaxMoves {
		res.Sweeps++
		movedThisSweep := false
		for v := 0; v < n && res.Moves < opt.MaxMoves; v++ {
			if opt.Policy == BestResponse {
				m, newCost, improves := core.BestSwapParallel(g, v, opt.Objective, opt.Workers)
				if improves {
					old := core.Cost(g, v, opt.Objective)
					naiveApplyAndRecord(g, m, old, newCost, opt, res)
					movedThisSweep = true
				}
				continue
			}
			// FirstImprovement: apply the first improving swap in scan order.
			cur := core.Cost(g, v, opt.Objective)
			var chosen *core.Move
			var chosenCost int64
			core.PriceSwaps(g, v, opt.Objective, func(m core.Move, c int64) bool {
				if c < cur {
					mm := m
					chosen, chosenCost = &mm, c
					return false
				}
				return true
			})
			if chosen != nil {
				naiveApplyAndRecord(g, *chosen, cur, chosenCost, opt, res)
				movedThisSweep = true
			}
		}
		if !movedThisSweep {
			res.Converged = true
			return
		}
	}
}

func naiveRandom(g *graph.Graph, opt Options, res *Result) {
	rng := rand.New(rand.NewSource(opt.Seed))
	n := g.N()
	patience := opt.PatienceFactor * g.M()
	if patience < 50 {
		patience = 50
	}
	failStreak := 0
	for res.Moves < opt.MaxMoves {
		if failStreak >= patience {
			res.Sweeps++
			m, old, newCost, found := naiveFindAnyImprovement(g, opt.Objective)
			if !found {
				res.Converged = true
				return
			}
			naiveApplyAndRecord(g, m, old, newCost, opt, res)
			failStreak = 0
			continue
		}
		v := rng.Intn(n)
		if g.Degree(v) == 0 {
			failStreak++
			continue
		}
		nbs := g.Neighbors(v)
		w := nbs[rng.Intn(len(nbs))]
		wp := rng.Intn(n)
		if wp == v || wp == w {
			failStreak++
			continue
		}
		cur := core.Cost(g, v, opt.Objective)
		m := core.Move{V: v, Drop: w, Add: wp}
		if c := core.EvaluateMove(g, m, opt.Objective); c < cur {
			naiveApplyAndRecord(g, m, cur, c, opt, res)
			failStreak = 0
		} else {
			failStreak++
		}
	}
}

// naiveFindAnyImprovement scans all vertices for an improving swap,
// re-freezing per vertex.
func naiveFindAnyImprovement(g *graph.Graph, obj core.Objective) (core.Move, int64, int64, bool) {
	for v := 0; v < g.N(); v++ {
		cur := core.Cost(g, v, obj)
		var chosen *core.Move
		var chosenCost int64
		core.PriceSwaps(g, v, obj, func(m core.Move, c int64) bool {
			if c < cur {
				mm := m
				chosen, chosenCost = &mm, c
				return false
			}
			return true
		})
		if chosen != nil {
			return *chosen, cur, chosenCost, true
		}
	}
	return core.Move{}, 0, 0, false
}
