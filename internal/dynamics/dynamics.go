// Package dynamics runs move dynamics for network creation games: agents
// repeatedly perform improving moves until no agent can improve (an
// equilibrium of the game's deviation model) or a move budget is
// exhausted. Three scheduling policies are provided — deterministic
// round-robin best response, deterministic first improvement, and seeded
// random improving moves — all of which terminate in a certified
// equilibrium when they converge, because convergence is declared only
// after a full exhaustive pass finds no improving move.
//
// The deviation model is pluggable (Options.Model, a game.Model): the
// default Swap model is the source paper's basic game, Greedy adds
// single-edge buy/delete moves with edge-cost accounting, Interests
// restricts each agent's cost to its communication-interest set, Budget
// caps how many edges a vertex may maintain (re-points must target a
// vertex with spare budget), and TwoNeighborhood swaps to maximize
// |N₂(v)| instead of minimizing a distance cost. The
// driver is generic in the model; every trajectory runs inside one
// incremental pricing instance (model.New): the starting graph is thawed
// into a mutable CSR once, each applied move patches the snapshot in
// O(deg) instead of re-freezing in O(n+m), and every probe, sweep, and
// certification pass prices against the live snapshot. NaiveRun drives the
// same policies through the model's oracle instance (model.Naive —
// re-freeze / apply-measure-revert pricing); trajectories are bit-identical
// between the two paths for every model, policy, and worker count, which
// the differential tests pin move-for-move.
//
// Move dynamics need not converge in general (the games are not potential
// games), so Run enforces MaxMoves and reports Converged=false when the
// budget is exhausted; in practice the experiments converge quickly.
package dynamics

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/graph"
)

// Policy selects the move scheduling rule.
type Policy int

const (
	// BestResponse sweeps vertices round-robin; each vertex plays its
	// cost-minimizing improving move, if any.
	BestResponse Policy = iota
	// FirstImprovement sweeps vertices round-robin; each vertex plays the
	// first improving move found in the model's deterministic scan order.
	// For the swap model the order is the pricing engine's add-major
	// enumeration (see core.PriceSwaps); it differs from the pre-engine
	// drop-major order, so trajectories differ from older builds while
	// remaining deterministic and terminating in the same certified
	// equilibria.
	FirstImprovement
	// RandomImproving samples random candidate moves; a certification
	// sweep declares equilibrium once random probing stops finding moves.
	RandomImproving
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case BestResponse:
		return "best-response"
	case FirstImprovement:
		return "first-improvement"
	case RandomImproving:
		return "random-improving"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Spec configures a dynamics run. It embeds core.CheckSpec — the same
// struct that selects an equilibrium check — so the model, objective,
// worker budget, and batched-sweep routing are declared once and shared
// verbatim between one-shot checks, dynamics, and the service layer. The
// zero value is a usable sum-version best-response run of the basic swap
// game with default budgets.
//
// CheckSpec fields under dynamics semantics:
//
//   - Model: the deviation model (nil means game.Swap{}, the basic game).
//   - Objective: the usage cost agents minimize.
//   - Batched: route the whole trajectory through the shared-row
//     machinery where the model supports it — certification sweeps
//     through the batched cross-agent pass (game.BatchedSweeper), the
//     sweeping policies' per-agent scans through the session row cache
//     (game.RowCachedScanner), and the random policy's probes through
//     thresholded cached-row rejection (game.MoveBelowPricer). Every
//     routed path returns observably identical moves and costs, so
//     trajectories do not depend on this flag; models without the
//     capabilities fall back to the per-agent paths, which Result.Batched
//     reports explicitly.
//   - Workers: pricing parallelism of every policy (<= 0 means all
//     cores); trajectories are bit-identical for every worker count.
//   - StableOnly: ignored — dynamics certify exactly the no-improving-move
//     condition.
type Spec struct {
	core.CheckSpec
	// Policy selects the move scheduling rule.
	Policy Policy
	// MaxMoves caps the number of applied moves (default 10_000).
	MaxMoves int
	// Seed drives RandomImproving sampling (ignored by the deterministic
	// policies).
	Seed int64
	// PatienceFactor scales how many consecutive failed random samples
	// trigger a certification sweep (default 20, multiplied by the
	// starting edge count).
	PatienceFactor int
	// Trace records every applied move when true.
	Trace bool
	// OnMove, when non-nil, is called synchronously with each applied
	// move's trace entry, in application order, whether or not Trace is
	// set. It observes the same entries Trace would record; the callback
	// runs on the dynamics goroutine, so a slow observer slows the run.
	OnMove func(TraceEntry)
}

// Options is the historical flat configuration of a dynamics run.
//
// Deprecated: use Spec, which embeds core.CheckSpec instead of re-growing
// one positional field per engine capability. Options converts losslessly
// via Spec(); Run and NaiveRun keep accepting it unchanged.
type Options struct {
	Objective core.Objective
	Policy    Policy
	// Model selects the deviation model (nil means game.Swap{}, the basic
	// game).
	Model game.Model
	// Workers bounds the pricing parallelism of every policy (<= 0 means
	// all cores).
	Workers int
	// MaxMoves caps the number of applied moves (default 10_000).
	MaxMoves int
	// Seed drives RandomImproving sampling.
	Seed int64
	// PatienceFactor scales the random policy's certification patience.
	PatienceFactor int
	// BatchedSweeps routes certification sweeps through the model's
	// batched cross-agent pass when it has one.
	BatchedSweeps bool
	// Trace records every applied move when true.
	Trace bool
}

// Spec converts the deprecated flat options to the spec shape.
func (o Options) Spec() Spec {
	return Spec{
		CheckSpec: core.CheckSpec{
			Model:     o.Model,
			Objective: o.Objective,
			Batched:   o.BatchedSweeps,
			Workers:   o.Workers,
		},
		Policy:         o.Policy,
		MaxMoves:       o.MaxMoves,
		Seed:           o.Seed,
		PatienceFactor: o.PatienceFactor,
		Trace:          o.Trace,
	}
}

// model resolves the deviation model.
func (s *Spec) model() game.Model {
	if s.Model == nil {
		return game.Swap{}
	}
	return s.Model
}

// TraceEntry records one applied move and the mover's cost change,
// together with the social cost after the move — individual improvements
// do not imply social improvement (the games have no potential function),
// and the trace makes that observable.
type TraceEntry struct {
	Move       core.Move
	OldCost    int64
	NewCost    int64
	SocialCost int64 // social cost under the run's objective, post-move
	MoveRank   int   // 1-based index in the run
}

// BatchedState reports how a run honored the Batched request: not
// requested at all, actively routed through the model's batched
// cross-agent pass, or requested but fallen back to the per-agent sweep
// because the model has no batched pass (2-neighborhood and every naive
// oracle; every BFS-priced model, greedy included, has one). The fallback
// used to be silent; Result and the CLI now surface it.
type BatchedState int

const (
	// BatchedOff: batched sweeps were not requested.
	BatchedOff BatchedState = iota
	// BatchedActive: requested, and certification sweeps route through
	// the model's batched cross-agent pass.
	BatchedActive
	// BatchedFallback: requested, but the model has no batched pass —
	// certification sweeps ran per agent (identical results, none of the
	// endpoint-row reuse).
	BatchedFallback
)

// String renders the state for CLI / service output.
func (s BatchedState) String() string {
	switch s {
	case BatchedOff:
		return "off"
	case BatchedActive:
		return "active"
	case BatchedFallback:
		return "fallback"
	default:
		return fmt.Sprintf("BatchedState(%d)", int(s))
	}
}

// Result reports the outcome of a dynamics run. The input graph is mutated
// in place and is the equilibrium graph when Converged is true.
type Result struct {
	Converged bool
	Moves     int
	Sweeps    int // full certification / improvement sweeps performed
	// Batched reports whether the Batched request was honored by the
	// model's batched pass or fell back to per-agent sweeps.
	Batched BatchedState
	// RowsRecomputed and RowsInvalidated report the session row cache's
	// work over the trajectory — BFS row rebuilds paid at Syncs, and rows
	// flagged by applied moves' invalidation tests. Both are zero when the
	// run never attached a cache (Batched off, or a model without one);
	// together they make cache effectiveness observable per trajectory.
	RowsRecomputed  uint64
	RowsInvalidated uint64
	Trace           []TraceEntry
}

// ErrTooSmall is returned for graphs with fewer than 2 vertices.
var ErrTooSmall = errors.New("dynamics: graph needs at least 2 vertices")

func validate(g *graph.Graph, opt *Spec) error {
	if g.N() < 2 {
		return ErrTooSmall
	}
	if !g.IsConnected() {
		return core.ErrDisconnected
	}
	if opt.MaxMoves <= 0 {
		opt.MaxMoves = 10000
	}
	if opt.PatienceFactor <= 0 {
		opt.PatienceFactor = 20
	}
	switch opt.Policy {
	case BestResponse, FirstImprovement, RandomImproving:
		return nil
	default:
		return fmt.Errorf("dynamics: unknown policy %v", opt.Policy)
	}
}

// Run executes move dynamics on g (mutating it) until equilibrium or the
// move budget is exhausted, configured by the deprecated flat Options.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	return RunSpec(g, opt.Spec())
}

// RunSpec executes move dynamics on g (mutating it) until equilibrium or
// the move budget is exhausted. The whole trajectory shares one
// incremental pricing instance of the model: applied moves patch the live
// CSR snapshot in O(deg), and all probes and sweeps price against it.
func RunSpec(g *graph.Graph, spec Spec) (*Result, error) {
	return RunSpecCtx(context.Background(), g, spec)
}

// RunSpecCtx is RunSpec with cooperative cancellation: ctx is polled
// between scheduling steps (one agent's scan or one random probe). On
// expiry the partial Result — the moves applied so far; the graph is left
// mid-trajectory — is returned together with ctx.Err().
func RunSpecCtx(ctx context.Context, g *graph.Graph, spec Spec) (*Result, error) {
	if err := validate(g, &spec); err != nil {
		return nil, err
	}
	return drive(ctx, spec.model().New(g, spec.Workers), spec)
}

// NaiveRun drives the same policies through the model's oracle instance:
// every best-move and first-improvement scan re-freezes the graph, random
// probes are priced by apply-measure-revert on the map graph, and
// certification sweeps re-freeze per vertex. Run must reproduce its
// trajectories move-for-move for every model, policy, objective, seed, and
// worker count. Configured by the deprecated flat Options.
func NaiveRun(g *graph.Graph, opt Options) (*Result, error) {
	return NaiveRunSpec(g, opt.Spec())
}

// NaiveRunSpec is NaiveRun in the spec shape.
func NaiveRunSpec(g *graph.Graph, spec Spec) (*Result, error) {
	if err := validate(g, &spec); err != nil {
		return nil, err
	}
	return drive(context.Background(), spec.model().Naive(g, spec.Workers), spec)
}

// drive dispatches the validated run to the policy loop. The instance's
// pooled resources (the row-cache arenas a batched run attaches) are
// released on every exit path; its cache counters are read into the
// Result first.
func drive(ctx context.Context, inst game.Instance, opt Spec) (*Result, error) {
	defer game.CloseInstance(inst)
	res := &Result{}
	if opt.Batched {
		if game.HasBatchedSweep(inst) {
			res.Batched = BatchedActive
		} else {
			res.Batched = BatchedFallback
		}
	}
	var err error
	switch opt.Policy {
	case BestResponse, FirstImprovement:
		err = runSweeping(ctx, inst, opt, res)
	case RandomImproving:
		err = runRandom(ctx, inst, opt, res)
	}
	if st, ok := game.InstanceRowCacheStats(inst); ok {
		res.RowsRecomputed, res.RowsInvalidated = st.Recomputed, st.Invalidated
	}
	if err != nil {
		res.Converged = false
		return res, err
	}
	return res, nil
}

// applyAndRecord applies m through the instance and appends a trace entry
// when enabled; the post-move social cost is measured on the instance.
func applyAndRecord(inst game.Instance, m core.Move, oldCost, newCost int64, opt Spec, res *Result) {
	inst.Apply(m)
	res.Moves++
	if opt.Trace || opt.OnMove != nil {
		entry := TraceEntry{
			Move: m, OldCost: oldCost, NewCost: newCost,
			SocialCost: inst.SocialCost(opt.Objective),
			MoveRank:   res.Moves,
		}
		if opt.Trace {
			res.Trace = append(res.Trace, entry)
		}
		if opt.OnMove != nil {
			opt.OnMove(entry)
		}
	}
}

// runSweeping drives the two deterministic round-robin policies through
// the shared convergence loop. When Batched is requested and the model
// scans through the session row cache (game.RowCachedScanner), each
// agent's scan prices candidate endpoints from the cached shared rows —
// observably identical moves, but an applied move only invalidates the
// rows it actually changes (exact under the multiplicity rule), so a
// sweep near equilibrium pays O(1) BFS per agent instead of Θ(n). ctx is
// polled before each agent's scan; once it expires every remaining step
// is skipped so the loop unwinds in O(n) cheap polls and the context
// error is returned.
func runSweeping(ctx context.Context, inst game.Instance, opt Spec, res *Result) error {
	n := inst.Graph().N()
	rc, hasRC := inst.(game.RowCachedScanner)
	useRC := opt.Batched && hasRC
	var ctxErr error
	_, sweeps, converged := game.RoundRobin(n, opt.MaxMoves, func(v int) bool {
		if ctxErr != nil {
			return false
		}
		if ctxErr = ctx.Err(); ctxErr != nil {
			return false
		}
		var m core.Move
		var old, newCost int64
		var improves bool
		switch {
		case opt.Policy == BestResponse && useRC:
			m, old, newCost, improves = rc.BestMoveRowCached(v, opt.Objective)
		case opt.Policy == BestResponse:
			m, old, newCost, improves = inst.BestMove(v, opt.Objective)
		case useRC:
			m, old, newCost, improves = rc.FirstImprovingRowCached(v, opt.Objective)
		default:
			m, old, newCost, improves = inst.FirstImproving(v, opt.Objective)
		}
		if !improves {
			return false
		}
		applyAndRecord(inst, m, old, newCost, opt, res)
		return true
	})
	if ctxErr != nil {
		return ctxErr
	}
	res.Sweeps, res.Converged = sweeps, converged
	return nil
}

func runRandom(ctx context.Context, inst game.Instance, opt Spec, res *Result) error {
	rng := rand.New(rand.NewSource(opt.Seed))
	n := inst.Graph().N()
	pb, hasPB := inst.(game.MoveBelowPricer)
	usePB := opt.Batched && hasPB
	patience := opt.PatienceFactor * inst.Graph().M()
	if patience < 50 {
		patience = 50
	}
	// Probes against an unchanged graph share the prober's current cost:
	// the cache is stamped with the applied-move generation and only
	// recomputed after a move actually lands, so the patience window
	// between moves pays one current-cost BFS per distinct sampled vertex
	// instead of one per probe.
	curCost := make([]int64, n)
	curGen := make([]uint64, n)
	gen := uint64(1)
	cost := func(v int) int64 {
		if curGen[v] != gen {
			curCost[v] = inst.Cost(v, opt.Objective)
			curGen[v] = gen
		}
		return curCost[v]
	}
	failStreak := 0
	for res.Moves < opt.MaxMoves {
		if err := ctx.Err(); err != nil {
			return err
		}
		if failStreak >= patience {
			// Certification sweep: exhaustively search for any improving
			// move; none ⇒ certified equilibrium of the model. The batched
			// pass returns the identical witness, so the trajectory does
			// not depend on the option.
			res.Sweeps++
			var m core.Move
			var old, newCost int64
			var found bool
			if opt.Batched {
				m, old, newCost, found = game.FindImprovementBatched(inst, opt.Objective)
			} else {
				m, old, newCost, found = inst.FindImprovement(opt.Objective)
			}
			if !found {
				res.Converged = true
				return nil
			}
			applyAndRecord(inst, m, old, newCost, opt, res)
			gen++
			failStreak = 0
			continue
		}
		m, ok := inst.Sample(rng)
		if !ok {
			failStreak++
			continue
		}
		cur := cost(m.V)
		var c int64
		var improves bool
		if usePB {
			// Thresholded probe through the cached shared rows: rejected
			// probes (the overwhelming majority near equilibrium) pay no
			// endpoint BFS; accepted ones return the exact PriceMove cost,
			// so the trajectory and its trace are bit-identical.
			c, improves = pb.PriceMoveBelow(m, opt.Objective, cur)
		} else {
			c = inst.PriceMove(m, opt.Objective)
			improves = c < cur
		}
		if improves {
			applyAndRecord(inst, m, cur, c, opt, res)
			gen++
			failStreak = 0
		} else {
			failStreak++
		}
	}
	return nil
}
