package dynamics

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// sameGraph reports edge-set equality of two graphs on the same vertices.
func sameGraph(a, b *graph.Graph) bool {
	return a.N() == b.N() && a.M() == b.M() && reflect.DeepEqual(a.Edges(), b.Edges())
}

// TestOptionsSpecEquivalence pins that the deprecated flat Options and the
// embedded-CheckSpec Spec drive bit-identical trajectories for every
// policy and the batched-sweeps flag.
func TestOptionsSpecEquivalence(t *testing.T) {
	for _, policy := range []Policy{BestResponse, FirstImprovement, RandomImproving} {
		for _, batched := range []bool{false, true} {
			opt := Options{
				Objective:     core.Sum,
				Policy:        policy,
				Workers:       2,
				Seed:          11,
				BatchedSweeps: batched,
				Trace:         true,
			}
			g1 := treegen.RandomTree(14, rand.New(rand.NewSource(5)))
			g2 := g1.Clone()
			viaOptions, err := Run(g1, opt)
			if err != nil {
				t.Fatalf("Run(Options): %v", err)
			}
			viaSpec, err := RunSpec(g2, opt.Spec())
			if err != nil {
				t.Fatalf("RunSpec: %v", err)
			}
			if !reflect.DeepEqual(viaOptions, viaSpec) {
				t.Errorf("policy %v batched %v: Options run %+v != Spec run %+v",
					policy, batched, viaOptions, viaSpec)
			}
			if !sameGraph(g1, g2) {
				t.Errorf("policy %v batched %v: final graphs diverge", policy, batched)
			}
		}
	}
}

// TestResultBatchedStates pins the explicit fallback report: off when not
// requested, active for models with a batched pass, fallback otherwise.
func TestResultBatchedStates(t *testing.T) {
	cases := []struct {
		name    string
		model   game.Model
		batched bool
		want    BatchedState
	}{
		{"swap off", nil, false, BatchedOff},
		{"swap active", nil, true, BatchedActive},
		{"greedy active", game.Greedy{EdgeCost: 2}, true, BatchedActive},
		{"2nb fallback", game.TwoNeighborhood{}, true, BatchedFallback},
		{"budget active", game.Budget{K: 3}, true, BatchedActive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := treegen.RandomTree(10, rand.New(rand.NewSource(3)))
			res, err := RunSpec(g, Spec{
				CheckSpec: core.CheckSpec{Model: tc.model, Batched: tc.batched, Workers: 2},
				Policy:    BestResponse,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Batched != tc.want {
				t.Errorf("Result.Batched=%v, want %v", res.Batched, tc.want)
			}
		})
	}
	// The naive oracle never has a batched pass: always fallback when asked.
	g := treegen.RandomTree(10, rand.New(rand.NewSource(3)))
	res, err := NaiveRunSpec(g, Spec{
		CheckSpec: core.CheckSpec{Batched: true, Workers: 1},
		Policy:    BestResponse,
	})
	if err != nil {
		t.Fatalf("naive run: %v", err)
	}
	if res.Batched != BatchedFallback {
		t.Errorf("naive Result.Batched=%v, want fallback", res.Batched)
	}
}

// TestRunSpecCtxCancellation: an already-canceled context stops the run
// before any move and reports non-convergence with the context error.
func TestRunSpecCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, policy := range []Policy{BestResponse, RandomImproving} {
		g := treegen.RandomTree(12, rand.New(rand.NewSource(9)))
		res, err := RunSpecCtx(ctx, g, Spec{Policy: policy, Seed: 1})
		if err != context.Canceled {
			t.Errorf("policy %v: err=%v, want context.Canceled", policy, err)
		}
		if res != nil && res.Converged {
			t.Errorf("policy %v: canceled run reported convergence", policy)
		}
	}
}
