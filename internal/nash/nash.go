// Package nash implements greedy best-response dynamics for the classic
// α-parametrized network creation game [9] that the basic game abstracts:
// each player owns the edges it bought, pays α per owned edge plus its sum
// of distances, and may buy one edge, delete one owned edge, or swap one
// owned edge per move. A configuration is a greedy equilibrium when no
// single-edge move strictly lowers any player's cost.
//
// Full Nash equilibria of the α-game (arbitrary strategy changes) are
// NP-hard even to recognize; the greedy (single-edge) restriction is the
// standard computationally-bounded variant and is exactly the move set
// whose swap subset the basic game keeps. Running this dynamics across an
// α grid reproduces the paper's motivation: the equilibrium structure
// varies wildly with α, while every greedy equilibrium remains stable under
// owner-side swaps — the α-independent core that swap equilibria isolate.
package nash

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pricing"
)

// MoveKind labels the three single-edge moves of the greedy α-game.
type MoveKind int

const (
	// Buy adds a new edge paid by the player.
	Buy MoveKind = iota
	// Delete removes an edge the player owns.
	Delete
	// Swap replaces an owned edge with a new one (same creation cost).
	Swap
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case Buy:
		return "buy"
	case Delete:
		return "delete"
	case Swap:
		return "swap"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is a single-edge move by Player: Buy v–Add, Delete v–Drop, or Swap
// v–Drop for v–Add.
type Move struct {
	Kind   MoveKind
	Player int
	Drop   int // Delete/Swap: the neighbor losing its edge
	Add    int // Buy/Swap: the new neighbor
}

// String renders the move.
func (m Move) String() string {
	switch m.Kind {
	case Buy:
		return fmt.Sprintf("%d buys %d", m.Player, m.Add)
	case Delete:
		return fmt.Sprintf("%d deletes %d", m.Player, m.Drop)
	default:
		return fmt.Sprintf("%d swaps %d→%d", m.Player, m.Drop, m.Add)
	}
}

// State is a configuration of the α-game: the network, who owns each edge,
// the edge price, and the usage objective (Sum for the Fabrikant et al.
// game, Max for the eccentricity variant).
type State struct {
	G     *graph.Graph
	Own   games.Ownership
	Alpha float64
	Obj   core.Objective // zero value is core.Sum
	// Workers bounds the pricing parallelism of BestResponse and
	// OwnerSwapStable (<= 0 means par.DefaultWorkers). Results are
	// identical for every worker count.
	Workers int
}

// engine returns the process-wide shared swap-pricing engine for the
// state's worker count (its pooled scratch is shared with every other
// caller at the same parallelism).
func (s *State) engine() *pricing.Engine {
	return pricing.Shared(s.Workers)
}

// pricingObj maps the state's objective onto the pricing engine's.
func (s *State) pricingObj() pricing.Objective {
	if s.Obj == core.Max {
		return pricing.Max
	}
	return pricing.Sum
}

// NewState validates and wraps a sum-version configuration.
func NewState(g *graph.Graph, own games.Ownership, alpha float64) (*State, error) {
	return NewStateObj(g, own, alpha, core.Sum)
}

// NewStateObj validates and wraps a configuration with an explicit usage
// objective.
func NewStateObj(g *graph.Graph, own games.Ownership, alpha float64, obj core.Objective) (*State, error) {
	if err := own.Validate(g); err != nil {
		return nil, err
	}
	if alpha < 0 {
		return nil, errors.New("nash: negative alpha")
	}
	return &State{G: g, Own: own, Alpha: alpha, Obj: obj}, nil
}

// PlayerCost returns cost_α(v) = α·bought(v) + usage(v), where usage is the
// distance sum (Sum) or the eccentricity (Max); usage is InfCost when
// disconnected.
func (s *State) PlayerCost(v int) float64 {
	return s.Alpha*float64(s.Own.Bought(v)) + float64(core.Cost(s.G, v, s.Obj))
}

// usageOfRow prices a BFS row under the state's objective.
func (s *State) usageOfRow(row []int32) int64 {
	if s.Obj == core.Max {
		return eccRow(row)
	}
	return sumRow(row)
}

// patchedUsage prices the patched rows under the state's objective.
func (s *State) patchedUsage(dv, dw []int32) int64 {
	if s.Obj == core.Max {
		return patchedEccRows(dv, dw)
	}
	return patchedSumRows(dv, dw)
}

// SocialCost returns α·m + Σ_v Σ_u d(v,u).
func (s *State) SocialCost() float64 {
	return games.SocialCost(s.G, s.Alpha)
}

// ownedNeighbors lists the neighbors w of v with the edge vw owned by v,
// sorted for determinism.
func (s *State) ownedNeighbors(v int) []int {
	var out []int
	for _, w := range s.G.Neighbors(v) {
		if s.Own[graph.NewEdge(v, w)] == v {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// BestResponse returns player v's cost-minimizing single-edge move and its
// (negative) cost delta, with found=false when no move strictly improves.
// The selection is deterministic for any worker count: buys, deletes, then
// swaps, each in ascending vertex order; ties keep the earliest. Pricing
// runs over a frozen snapshot through the swap-pricing engine: buys are
// sharded across workers, deletes read the engine's per-dropped-edge rows,
// and swaps are priced with two patched BFS rows per candidate instead of
// an all-pairs sweep per owned edge.
func (s *State) BestResponse(v int) (best Move, bestDelta float64, found bool) {
	return s.bestResponseOn(s.G.Freeze(), v)
}

// bestResponseOn is BestResponse priced against an explicit snapshot — a
// one-shot Frozen, or the live CSR of the incremental session that Run and
// Check hold across a whole trajectory so each player's turn skips the
// O(n+m) re-freeze.
func (s *State) bestResponseOn(f pricing.Snapshot, v int) (best Move, bestDelta float64, found bool) {
	n := f.N()
	eng := s.engine()
	obj := s.pricingObj()
	scan := eng.NewScanDrops(f, v, ownedNeighbors32(s, v))
	defer scan.Close()
	dv := scan.CurrentRow()
	baseUsage := scan.CurrentUsage(obj)
	bestDelta = 0

	consider := func(m Move, delta float64) {
		if delta < bestDelta {
			bestDelta, best, found = delta, m, true
		}
	}

	// Buys: Δ = α + (usage_after − usage_before), sharded over candidate
	// endpoints and merged toward the smallest (delta, endpoint).
	type buy struct {
		w     int
		delta float64
	}
	var mu sync.Mutex
	var bestBuy buy
	haveBuy := false
	par.ForChunked(eng.Workers(), n, func(lo, hi int) {
		dist, queue, release := eng.Scratch(n)
		defer release()
		var local buy
		have := false
		for w := lo; w < hi; w++ {
			if w == v || f.HasEdge(v, w) {
				continue
			}
			f.BFSInto(w, dist, queue)
			after := pricing.Patched(dv, dist, obj)
			delta := s.Alpha + float64(after-baseUsage)
			if !have || delta < local.delta || (delta == local.delta && w < local.w) {
				local, have = buy{w: w, delta: delta}, true
			}
		}
		if have {
			mu.Lock()
			if !haveBuy || local.delta < bestBuy.delta ||
				(local.delta == bestBuy.delta && local.w < bestBuy.w) {
				bestBuy, haveBuy = local, true
			}
			mu.Unlock()
		}
	})
	if haveBuy {
		consider(Move{Kind: Buy, Player: v, Add: bestBuy.w}, bestBuy.delta)
	}

	// Deletes and swaps share the historical interleaved scan order — for
	// each owned edge ascending, the deletion comes before the swaps that
	// drop it — so ties are merged on (delta, drop index, delete-before-
	// swap, add). Deletions read the engine's dropped-edge rows; swaps use
	// the engine's sharded best-move search with the α-game rule that the
	// target edge must not exist.
	type dsCand struct {
		m       Move
		delta   float64
		dropIdx int
		isSwap  bool
		add     int
	}
	var bestDS dsCand
	haveDS := false
	considerDS := func(c dsCand) {
		if !haveDS {
			bestDS, haveDS = c, true
			return
		}
		b := bestDS
		better := c.delta < b.delta ||
			(c.delta == b.delta && (c.dropIdx < b.dropIdx ||
				(c.dropIdx == b.dropIdx && (!c.isSwap && b.isSwap ||
					(c.isSwap == b.isSwap && c.add < b.add)))))
		if better {
			bestDS = c
		}
	}
	drops := scan.Drops()
	for i, w := range drops {
		delUsage := scan.DeletionUsage(i, obj)
		considerDS(dsCand{
			m:       Move{Kind: Delete, Player: v, Drop: int(w)},
			delta:   -s.Alpha + float64(delUsage-baseUsage),
			dropIdx: i,
		})
	}
	if b, ok := scan.BestMove(obj, true); ok {
		dropIdx := 0
		for i, w := range drops {
			if int(w) == b.Drop {
				dropIdx = i
				break
			}
		}
		considerDS(dsCand{
			m:       Move{Kind: Swap, Player: v, Drop: b.Drop, Add: b.Add},
			delta:   float64(b.Cost - baseUsage),
			dropIdx: dropIdx,
			isSwap:  true,
			add:     b.Add,
		})
	}
	if haveDS {
		consider(bestDS.m, bestDS.delta)
	}
	return best, bestDelta, found
}

// NaiveBestResponse is the pre-engine best response, kept as the
// differential-test oracle: buys re-BFS each endpoint and swaps pay a full
// all-pairs sweep per owned edge. g is mutated and restored.
func (s *State) NaiveBestResponse(v int) (best Move, bestDelta float64, found bool) {
	n := s.G.N()
	dv := s.G.BFS(v)
	baseUsage := s.usageOfRow(dv)
	bestDelta = 0

	consider := func(m Move, delta float64) {
		if delta < bestDelta {
			bestDelta, best, found = delta, m, true
		}
	}

	// Buys: Δ = α + (usage_after − usage_before).
	for w := 0; w < n; w++ {
		if w == v || s.G.HasEdge(v, w) {
			continue
		}
		dw := s.G.BFS(w)
		after := s.patchedUsage(dv, dw)
		consider(Move{Kind: Buy, Player: v, Add: w},
			s.Alpha+float64(after-baseUsage))
	}

	// Deletes and swaps of owned edges.
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	for _, w := range s.ownedNeighbors(v) {
		s.G.RemoveEdge(v, w)
		s.G.BFSInto(v, dist, queue)
		delUsage := s.usageOfRow(dist)
		consider(Move{Kind: Delete, Player: v, Drop: w},
			-s.Alpha+float64(delUsage-baseUsage))
		// Swaps: price all replacement endpoints from one APSP of G−vw.
		ap := s.G.AllPairs()
		dvPrime := ap.Row(v)
		for wp := 0; wp < n; wp++ {
			if wp == v || wp == w || s.G.HasEdge(v, wp) {
				continue
			}
			after := s.patchedUsage(dvPrime, ap.Row(wp))
			consider(Move{Kind: Swap, Player: v, Drop: w, Add: wp},
				float64(after-baseUsage))
		}
		s.G.AddEdge(v, w)
	}
	return best, bestDelta, found
}

// ownedNeighbors32 lists v's owned-edge endpoints ascending as int32 for
// the pricing engine.
func ownedNeighbors32(s *State, v int) []int32 {
	owned := s.ownedNeighbors(v)
	out := make([]int32, len(owned))
	for i, w := range owned {
		out[i] = int32(w)
	}
	return out
}

// Apply performs the move, updating graph and ownership.
func (s *State) Apply(m Move) error {
	switch m.Kind {
	case Buy:
		if !s.G.AddEdge(m.Player, m.Add) {
			return fmt.Errorf("nash: buy %v: edge exists", m)
		}
		s.Own[graph.NewEdge(m.Player, m.Add)] = m.Player
	case Delete:
		e := graph.NewEdge(m.Player, m.Drop)
		if s.Own[e] != m.Player {
			return fmt.Errorf("nash: delete %v: not owner", m)
		}
		if !s.G.RemoveEdge(m.Player, m.Drop) {
			return fmt.Errorf("nash: delete %v: edge missing", m)
		}
		delete(s.Own, e)
	case Swap:
		e := graph.NewEdge(m.Player, m.Drop)
		if s.Own[e] != m.Player {
			return fmt.Errorf("nash: swap %v: not owner", m)
		}
		if !s.G.RemoveEdge(m.Player, m.Drop) {
			return fmt.Errorf("nash: swap %v: edge missing", m)
		}
		if !s.G.AddEdge(m.Player, m.Add) {
			s.G.AddEdge(m.Player, m.Drop) // roll back
			return fmt.Errorf("nash: swap %v: target edge exists", m)
		}
		delete(s.Own, e)
		s.Own[graph.NewEdge(m.Player, m.Add)] = m.Player
	default:
		return fmt.Errorf("nash: unknown move kind %v", m.Kind)
	}
	return nil
}

// Result reports a greedy dynamics run.
type Result struct {
	Converged bool
	Moves     int
	Sweeps    int
}

// Options bounds a dynamics run.
type Options struct {
	MaxMoves int // default 10000
	// Workers bounds pricing parallelism (<= 0 keeps the state's setting).
	Workers int
}

// Run performs round-robin greedy best response until no player improves
// (a greedy equilibrium) or the budget is exhausted. The state is mutated
// in place. The whole trajectory holds one incremental pricing session:
// every applied buy, delete, or swap patches the live CSR snapshot in
// O(deg) instead of re-freezing the graph per player turn, and every
// best-response scan prices against it. The convergence loop is the
// deviation-model layer's shared round-robin driver (game.RoundRobin),
// the same loop the sweeping policies of internal/dynamics run on.
func Run(s *State, opt Options) (*Result, error) {
	if s.G.N() < 2 {
		return nil, errors.New("nash: graph needs at least 2 vertices")
	}
	maxMoves := opt.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 10000
	}
	if opt.Workers > 0 {
		prev := s.Workers
		s.Workers = opt.Workers
		defer func() { s.Workers = prev }()
	}
	sess := s.engine().NewSession(s.G)
	var applyErr error
	moves, sweeps, converged := game.RoundRobin(s.G.N(), maxMoves, func(v int) bool {
		if applyErr != nil {
			return false
		}
		m, _, found := s.bestResponseOn(sess.View(), v)
		if !found {
			return false
		}
		if err := s.Apply(m); err != nil {
			applyErr = err
			return false
		}
		mirrorMove(sess, m)
		return true
	})
	if applyErr != nil {
		return nil, applyErr
	}
	return &Result{Converged: converged, Moves: moves, Sweeps: sweeps}, nil
}

// mirrorMove patches the live session snapshot with a move already
// validated and applied to the authoritative State by Apply.
func mirrorMove(sess *pricing.Session, m Move) {
	switch m.Kind {
	case Buy:
		sess.ApplyAdd(m.Player, m.Add)
	case Delete:
		sess.ApplyRemove(m.Player, m.Drop)
	case Swap:
		sess.ApplySwap(m.Player, m.Drop, m.Add)
	}
}

// Check reports whether the state is a greedy equilibrium, with a witness
// improving move on failure. All players are priced against one shared
// snapshot (Check applies no moves, so it never goes stale).
func Check(s *State) (bool, *Move) {
	f := s.G.Freeze()
	for v := 0; v < s.G.N(); v++ {
		if m, _, found := s.bestResponseOn(f, v); found {
			mm := m
			return false, &mm
		}
	}
	return true, nil
}

// OwnerSwapStable reports whether no owner-side swap improves any player —
// the α-independent condition that transfers to the basic game. Every
// greedy equilibrium satisfies it; the converse direction (both-endpoint
// swap stability of the basic game) is strictly stronger. Players are
// sharded across the state's workers over one frozen snapshot; on failure
// some witness improving swap is returned.
func (s *State) OwnerSwapStable() (bool, *Move) {
	n := s.G.N()
	f := s.G.Freeze()
	eng := s.engine()
	obj := s.pricingObj()

	var stop atomic.Bool
	var mu sync.Mutex
	var witness *Move
	var next par.Counter
	par.Workers(eng.Workers(), func(int) {
		for v := next.Next(); v < n; v = next.Next() {
			if stop.Load() {
				return
			}
			owned := ownedNeighbors32(s, v)
			if len(owned) == 0 {
				continue
			}
			scan := eng.NewScanDrops(f, v, owned)
			base := scan.CurrentUsage(obj)
			scan.ForEach(obj, true, func(i, add int, cost int64) bool {
				if stop.Load() {
					return false
				}
				if cost < base {
					mu.Lock()
					if witness == nil {
						witness = &Move{Kind: Swap, Player: v, Drop: int(owned[i]), Add: add}
					}
					mu.Unlock()
					stop.Store(true)
					return false
				}
				return true
			})
			scan.Close()
		}
	})
	return witness == nil, witness
}

// NaiveOwnerSwapStable is the pre-engine owner-swap scan, kept as the
// differential-test oracle; it returns the first witness in (player, drop,
// add) order. g is mutated and restored.
func (s *State) NaiveOwnerSwapStable() (bool, *Move) {
	n := s.G.N()
	for v := 0; v < n; v++ {
		dv := s.G.BFS(v)
		base := s.usageOfRow(dv)
		for _, w := range s.ownedNeighbors(v) {
			s.G.RemoveEdge(v, w)
			ap := s.G.AllPairs()
			dvPrime := ap.Row(v)
			for wp := 0; wp < n; wp++ {
				if wp == v || wp == w || s.G.HasEdge(v, wp) {
					continue
				}
				if s.patchedUsage(dvPrime, ap.Row(wp)) < base {
					s.G.AddEdge(v, w)
					m := Move{Kind: Swap, Player: v, Drop: w, Add: wp}
					return false, &m
				}
			}
			s.G.AddEdge(v, w)
		}
	}
	return true, nil
}

// sumRow sums a BFS row, InfCost on unreachable entries.
func sumRow(row []int32) int64 {
	var sum int64
	for _, d := range row {
		if d == graph.Unreachable {
			return core.InfCost
		}
		sum += int64(d)
	}
	return sum
}

// patchedSumRows prices Σ_x min(dv[x], 1+dw[x]) with -1 as unreachable.
func patchedSumRows(dv, dw []int32) int64 {
	var sum int64
	for x := range dv {
		a, b := dv[x], dw[x]
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return core.InfCost
		case a == graph.Unreachable:
			sum += int64(b) + 1
		case b == graph.Unreachable:
			sum += int64(a)
		case b+1 < a:
			sum += int64(b) + 1
		default:
			sum += int64(a)
		}
	}
	return sum
}

// eccRow returns the maximum of a BFS row, InfCost on unreachable entries.
func eccRow(row []int32) int64 {
	var ecc int64
	for _, d := range row {
		if d == graph.Unreachable {
			return core.InfCost
		}
		if int64(d) > ecc {
			ecc = int64(d)
		}
	}
	return ecc
}

// patchedEccRows prices max_x min(dv[x], 1+dw[x]) with -1 as unreachable.
func patchedEccRows(dv, dw []int32) int64 {
	var ecc int64
	for x := range dv {
		a, b := dv[x], dw[x]
		var d int64
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return core.InfCost
		case a == graph.Unreachable:
			d = int64(b) + 1
		case b == graph.Unreachable:
			d = int64(a)
		default:
			d = int64(a)
			if alt := int64(b) + 1; alt < d {
				d = alt
			}
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
