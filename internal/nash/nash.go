// Package nash implements greedy best-response dynamics for the classic
// α-parametrized network creation game [9] that the basic game abstracts:
// each player owns the edges it bought, pays α per owned edge plus its sum
// of distances, and may buy one edge, delete one owned edge, or swap one
// owned edge per move. A configuration is a greedy equilibrium when no
// single-edge move strictly lowers any player's cost.
//
// Full Nash equilibria of the α-game (arbitrary strategy changes) are
// NP-hard even to recognize; the greedy (single-edge) restriction is the
// standard computationally-bounded variant and is exactly the move set
// whose swap subset the basic game keeps. Running this dynamics across an
// α grid reproduces the paper's motivation: the equilibrium structure
// varies wildly with α, while every greedy equilibrium remains stable under
// owner-side swaps — the α-independent core that swap equilibria isolate.
package nash

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
)

// MoveKind labels the three single-edge moves of the greedy α-game.
type MoveKind int

const (
	// Buy adds a new edge paid by the player.
	Buy MoveKind = iota
	// Delete removes an edge the player owns.
	Delete
	// Swap replaces an owned edge with a new one (same creation cost).
	Swap
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case Buy:
		return "buy"
	case Delete:
		return "delete"
	case Swap:
		return "swap"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is a single-edge move by Player: Buy v–Add, Delete v–Drop, or Swap
// v–Drop for v–Add.
type Move struct {
	Kind   MoveKind
	Player int
	Drop   int // Delete/Swap: the neighbor losing its edge
	Add    int // Buy/Swap: the new neighbor
}

// String renders the move.
func (m Move) String() string {
	switch m.Kind {
	case Buy:
		return fmt.Sprintf("%d buys %d", m.Player, m.Add)
	case Delete:
		return fmt.Sprintf("%d deletes %d", m.Player, m.Drop)
	default:
		return fmt.Sprintf("%d swaps %d→%d", m.Player, m.Drop, m.Add)
	}
}

// State is a configuration of the α-game: the network, who owns each edge,
// the edge price, and the usage objective (Sum for the Fabrikant et al.
// game, Max for the eccentricity variant).
type State struct {
	G     *graph.Graph
	Own   games.Ownership
	Alpha float64
	Obj   core.Objective // zero value is core.Sum
}

// NewState validates and wraps a sum-version configuration.
func NewState(g *graph.Graph, own games.Ownership, alpha float64) (*State, error) {
	return NewStateObj(g, own, alpha, core.Sum)
}

// NewStateObj validates and wraps a configuration with an explicit usage
// objective.
func NewStateObj(g *graph.Graph, own games.Ownership, alpha float64, obj core.Objective) (*State, error) {
	if err := own.Validate(g); err != nil {
		return nil, err
	}
	if alpha < 0 {
		return nil, errors.New("nash: negative alpha")
	}
	return &State{G: g, Own: own, Alpha: alpha, Obj: obj}, nil
}

// PlayerCost returns cost_α(v) = α·bought(v) + usage(v), where usage is the
// distance sum (Sum) or the eccentricity (Max); usage is InfCost when
// disconnected.
func (s *State) PlayerCost(v int) float64 {
	return s.Alpha*float64(s.Own.Bought(v)) + float64(core.Cost(s.G, v, s.Obj))
}

// usageOfRow prices a BFS row under the state's objective.
func (s *State) usageOfRow(row []int32) int64 {
	if s.Obj == core.Max {
		return eccRow(row)
	}
	return sumRow(row)
}

// patchedUsage prices the patched rows under the state's objective.
func (s *State) patchedUsage(dv, dw []int32) int64 {
	if s.Obj == core.Max {
		return patchedEccRows(dv, dw)
	}
	return patchedSumRows(dv, dw)
}

// SocialCost returns α·m + Σ_v Σ_u d(v,u).
func (s *State) SocialCost() float64 {
	return games.SocialCost(s.G, s.Alpha)
}

// ownedNeighbors lists the neighbors w of v with the edge vw owned by v,
// sorted for determinism.
func (s *State) ownedNeighbors(v int) []int {
	var out []int
	for _, w := range s.G.Neighbors(v) {
		if s.Own[graph.NewEdge(v, w)] == v {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// BestResponse returns player v's cost-minimizing single-edge move and its
// (negative) cost delta, with found=false when no move strictly improves.
// The scan order is deterministic: buys, deletes, then swaps, each in
// ascending vertex order; ties keep the earliest.
func (s *State) BestResponse(v int) (best Move, bestDelta float64, found bool) {
	n := s.G.N()
	dv := s.G.BFS(v)
	baseUsage := s.usageOfRow(dv)
	bestDelta = 0

	consider := func(m Move, delta float64) {
		if delta < bestDelta {
			bestDelta, best, found = delta, m, true
		}
	}

	// Buys: Δ = α + (usage_after − usage_before).
	for w := 0; w < n; w++ {
		if w == v || s.G.HasEdge(v, w) {
			continue
		}
		dw := s.G.BFS(w)
		after := s.patchedUsage(dv, dw)
		consider(Move{Kind: Buy, Player: v, Add: w},
			s.Alpha+float64(after-baseUsage))
	}

	// Deletes and swaps of owned edges.
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	for _, w := range s.ownedNeighbors(v) {
		s.G.RemoveEdge(v, w)
		s.G.BFSInto(v, dist, queue)
		delUsage := s.usageOfRow(dist)
		consider(Move{Kind: Delete, Player: v, Drop: w},
			-s.Alpha+float64(delUsage-baseUsage))
		// Swaps: price all replacement endpoints from one APSP of G−vw.
		ap := s.G.AllPairs()
		dvPrime := ap.Row(v)
		for wp := 0; wp < n; wp++ {
			if wp == v || wp == w || s.G.HasEdge(v, wp) {
				continue
			}
			after := s.patchedUsage(dvPrime, ap.Row(wp))
			consider(Move{Kind: Swap, Player: v, Drop: w, Add: wp},
				float64(after-baseUsage))
		}
		s.G.AddEdge(v, w)
	}
	return best, bestDelta, found
}

// Apply performs the move, updating graph and ownership.
func (s *State) Apply(m Move) error {
	switch m.Kind {
	case Buy:
		if !s.G.AddEdge(m.Player, m.Add) {
			return fmt.Errorf("nash: buy %v: edge exists", m)
		}
		s.Own[graph.NewEdge(m.Player, m.Add)] = m.Player
	case Delete:
		e := graph.NewEdge(m.Player, m.Drop)
		if s.Own[e] != m.Player {
			return fmt.Errorf("nash: delete %v: not owner", m)
		}
		if !s.G.RemoveEdge(m.Player, m.Drop) {
			return fmt.Errorf("nash: delete %v: edge missing", m)
		}
		delete(s.Own, e)
	case Swap:
		e := graph.NewEdge(m.Player, m.Drop)
		if s.Own[e] != m.Player {
			return fmt.Errorf("nash: swap %v: not owner", m)
		}
		if !s.G.RemoveEdge(m.Player, m.Drop) {
			return fmt.Errorf("nash: swap %v: edge missing", m)
		}
		if !s.G.AddEdge(m.Player, m.Add) {
			s.G.AddEdge(m.Player, m.Drop) // roll back
			return fmt.Errorf("nash: swap %v: target edge exists", m)
		}
		delete(s.Own, e)
		s.Own[graph.NewEdge(m.Player, m.Add)] = m.Player
	default:
		return fmt.Errorf("nash: unknown move kind %v", m.Kind)
	}
	return nil
}

// Result reports a greedy dynamics run.
type Result struct {
	Converged bool
	Moves     int
	Sweeps    int
}

// Options bounds a dynamics run.
type Options struct {
	MaxMoves int // default 10000
}

// Run performs round-robin greedy best response until no player improves
// (a greedy equilibrium) or the budget is exhausted. The state is mutated
// in place.
func Run(s *State, opt Options) (*Result, error) {
	if s.G.N() < 2 {
		return nil, errors.New("nash: graph needs at least 2 vertices")
	}
	maxMoves := opt.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 10000
	}
	res := &Result{}
	for res.Moves < maxMoves {
		res.Sweeps++
		moved := false
		for v := 0; v < s.G.N() && res.Moves < maxMoves; v++ {
			m, _, found := s.BestResponse(v)
			if !found {
				continue
			}
			if err := s.Apply(m); err != nil {
				return nil, err
			}
			res.Moves++
			moved = true
		}
		if !moved {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// Check reports whether the state is a greedy equilibrium, with a witness
// improving move on failure.
func Check(s *State) (bool, *Move) {
	for v := 0; v < s.G.N(); v++ {
		if m, _, found := s.BestResponse(v); found {
			mm := m
			return false, &mm
		}
	}
	return true, nil
}

// OwnerSwapStable reports whether no owner-side swap improves any player —
// the α-independent condition that transfers to the basic game. Every
// greedy equilibrium satisfies it; the converse direction (both-endpoint
// swap stability of the basic game) is strictly stronger.
func (s *State) OwnerSwapStable() (bool, *Move) {
	n := s.G.N()
	for v := 0; v < n; v++ {
		dv := s.G.BFS(v)
		base := s.usageOfRow(dv)
		for _, w := range s.ownedNeighbors(v) {
			s.G.RemoveEdge(v, w)
			ap := s.G.AllPairs()
			dvPrime := ap.Row(v)
			for wp := 0; wp < n; wp++ {
				if wp == v || wp == w || s.G.HasEdge(v, wp) {
					continue
				}
				if s.patchedUsage(dvPrime, ap.Row(wp)) < base {
					s.G.AddEdge(v, w)
					m := Move{Kind: Swap, Player: v, Drop: w, Add: wp}
					return false, &m
				}
			}
			s.G.AddEdge(v, w)
		}
	}
	return true, nil
}

// sumRow sums a BFS row, InfCost on unreachable entries.
func sumRow(row []int32) int64 {
	var sum int64
	for _, d := range row {
		if d == graph.Unreachable {
			return core.InfCost
		}
		sum += int64(d)
	}
	return sum
}

// patchedSumRows prices Σ_x min(dv[x], 1+dw[x]) with -1 as unreachable.
func patchedSumRows(dv, dw []int32) int64 {
	var sum int64
	for x := range dv {
		a, b := dv[x], dw[x]
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return core.InfCost
		case a == graph.Unreachable:
			sum += int64(b) + 1
		case b == graph.Unreachable:
			sum += int64(a)
		case b+1 < a:
			sum += int64(b) + 1
		default:
			sum += int64(a)
		}
	}
	return sum
}

// eccRow returns the maximum of a BFS row, InfCost on unreachable entries.
func eccRow(row []int32) int64 {
	var ecc int64
	for _, d := range row {
		if d == graph.Unreachable {
			return core.InfCost
		}
		if int64(d) > ecc {
			ecc = int64(d)
		}
	}
	return ecc
}

// patchedEccRows prices max_x min(dv[x], 1+dw[x]) with -1 as unreachable.
func patchedEccRows(dv, dw []int32) int64 {
	var ecc int64
	for x := range dv {
		a, b := dv[x], dw[x]
		var d int64
		switch {
		case a == graph.Unreachable && b == graph.Unreachable:
			return core.InfCost
		case a == graph.Unreachable:
			d = int64(b) + 1
		case b == graph.Unreachable:
			d = int64(a)
		default:
			d = int64(a)
			if alt := int64(b) + 1; alt < d {
				d = alt
			}
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
