package nash

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/treegen"
)

func mustState(t *testing.T, g *graph.Graph, alpha float64) *State {
	t.Helper()
	s, err := NewState(g, games.MinOwnership(g), alpha)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	g := constructions.Cycle(4)
	if _, err := NewState(g, games.Ownership{}, 1); err == nil {
		t.Error("empty ownership accepted")
	}
	if _, err := NewState(g, games.MinOwnership(g), -1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewState(g, games.MinOwnership(g), 2); err != nil {
		t.Error("valid state rejected")
	}
}

func TestPlayerCost(t *testing.T) {
	g := constructions.Star(4)
	s := mustState(t, g, 2.5) // center owns all 3 edges
	if got := s.PlayerCost(0); got != 2.5*3+3 {
		t.Errorf("center cost = %v, want 10.5", got)
	}
	if got := s.PlayerCost(1); got != 0+5 {
		t.Errorf("leaf cost = %v, want 5", got)
	}
}

func TestStarCenterOwnedIsGreedyEquilibriumForModerateAlpha(t *testing.T) {
	// Buying a leaf-leaf edge gains 1, so for α >= 1 no buy helps; deleting
	// disconnects; swaps of center edges cannot improve. The star with
	// center ownership is a greedy equilibrium for α ∈ [1, ∞).
	for _, alpha := range []float64{1, 2, 10, 1e6} {
		s := mustState(t, constructions.Star(7), alpha)
		ok, witness := Check(s)
		if !ok {
			t.Errorf("α=%v: star not greedy equilibrium, witness %v", alpha, witness)
		}
	}
	// For α < 1 leaves buy edges to each other.
	s := mustState(t, constructions.Star(7), 0.5)
	ok, witness := Check(s)
	if ok {
		t.Fatal("α=0.5: star should not be a greedy equilibrium")
	}
	if witness.Kind != Buy {
		t.Errorf("witness = %v, want a buy", witness)
	}
}

func TestBestResponseFindsDelete(t *testing.T) {
	// C4 with huge α: deleting an owned edge saves α at small usage cost.
	s := mustState(t, constructions.Cycle(4), 1000)
	m, delta, found := s.BestResponse(0)
	if !found || m.Kind != Delete {
		t.Fatalf("best response = %v (found=%v), want delete", m, found)
	}
	if delta >= 0 {
		t.Errorf("delta = %v, want negative", delta)
	}
}

func TestBestResponseFindsSwap(t *testing.T) {
	// Path with α so large that buys never pay and deletes disconnect:
	// the only improving moves are swaps; P4's endpoint owner 0 swaps
	// 0–1 for 0–2 or similar.
	g := constructions.Path(6)
	s := mustState(t, g, 1e9)
	m, _, found := s.BestResponse(0)
	if !found || m.Kind != Swap {
		t.Fatalf("best response = %v (found=%v), want swap", m, found)
	}
}

func TestApplyMoves(t *testing.T) {
	g := constructions.Path(4)
	s := mustState(t, g, 1)
	if err := s.Apply(Move{Kind: Buy, Player: 0, Add: 3}); err != nil {
		t.Fatal(err)
	}
	if !s.G.HasEdge(0, 3) || s.Own[graph.NewEdge(0, 3)] != 0 {
		t.Error("buy not applied")
	}
	if err := s.Apply(Move{Kind: Delete, Player: 0, Drop: 3}); err != nil {
		t.Fatal(err)
	}
	if s.G.HasEdge(0, 3) {
		t.Error("delete not applied")
	}
	if err := s.Apply(Move{Kind: Swap, Player: 0, Drop: 1, Add: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.G.HasEdge(0, 2) || s.G.HasEdge(0, 1) {
		t.Error("swap not applied")
	}
	if s.Own[graph.NewEdge(0, 2)] != 0 {
		t.Error("swap ownership not transferred")
	}
}

func TestApplyRejectsIllegalMoves(t *testing.T) {
	g := constructions.Path(4)
	s := mustState(t, g, 1)
	if err := s.Apply(Move{Kind: Buy, Player: 0, Add: 1}); err == nil {
		t.Error("buy of existing edge accepted")
	}
	if err := s.Apply(Move{Kind: Delete, Player: 1, Drop: 0}); err == nil {
		t.Error("delete by non-owner accepted") // MinOwnership: 0 owns {0,1}
	}
	if err := s.Apply(Move{Kind: Swap, Player: 1, Drop: 2, Add: 0}); err == nil {
		t.Error("swap onto existing edge accepted")
	}
	if err := s.Apply(Move{Kind: MoveKind(9)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunConvergesAcrossAlphaGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, alpha := range []float64{0.5, 1, 3, 20, 400} {
		g := treegen.RandomTree(14, rng)
		s := mustState(t, g, alpha)
		res, err := Run(s, Options{})
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		if !res.Converged {
			t.Fatalf("α=%v: did not converge", alpha)
		}
		if ok, witness := Check(s); !ok {
			t.Errorf("α=%v: final state not a greedy equilibrium: %v", alpha, witness)
		}
		// Transfer: every greedy equilibrium is owner-swap stable.
		if ok, witness := s.OwnerSwapStable(); !ok {
			t.Errorf("α=%v: greedy equilibrium not owner-swap-stable: %v", alpha, witness)
		}
		if !s.G.IsConnected() {
			t.Errorf("α=%v: dynamics disconnected the graph", alpha)
		}
		if err := s.Own.Validate(s.G); err != nil {
			t.Errorf("α=%v: ownership drifted: %v", alpha, err)
		}
	}
}

func TestAlphaExtremesShapeEquilibria(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Tiny α: buying is almost free; equilibrium densifies to diameter <= 2
	// (any distance-2 pair buys an edge for α < 1).
	g := treegen.RandomTree(10, rng)
	s := mustState(t, g, 0.25)
	if _, err := Run(s, Options{}); err != nil {
		t.Fatal(err)
	}
	if d, _ := s.G.Diameter(); d > 2 {
		t.Errorf("α=0.25: equilibrium diameter %d, want <= 2", d)
	}
	// Huge α: no buys survive; edge count cannot exceed the start (tree
	// edges cannot be deleted without disconnecting).
	g2 := treegen.RandomTree(10, rng)
	s2 := mustState(t, g2, 1e6)
	if _, err := Run(s2, Options{}); err != nil {
		t.Fatal(err)
	}
	if s2.G.M() != 9 {
		t.Errorf("α=1e6: m=%d, want tree edge count 9", s2.G.M())
	}
}

func TestRunBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := treegen.RandomTree(12, rng)
	s := mustState(t, g, 0.5)
	res, err := Run(s, Options{MaxMoves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Moves != 2 {
		t.Errorf("budget run: %+v", res)
	}
}

func TestSocialCostMatchesGames(t *testing.T) {
	g := constructions.Cycle(6)
	s := mustState(t, g, 3)
	if got, want := s.SocialCost(), games.SocialCost(g, 3); math.Abs(got-want) > 1e-9 {
		t.Errorf("SocialCost = %v, want %v", got, want)
	}
}

func TestMoveStringAndKinds(t *testing.T) {
	for _, m := range []Move{
		{Kind: Buy, Player: 1, Add: 2},
		{Kind: Delete, Player: 1, Drop: 2},
		{Kind: Swap, Player: 1, Drop: 2, Add: 3},
	} {
		if m.String() == "" {
			t.Error("empty move string")
		}
	}
	if MoveKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestMaxObjectiveDynamics(t *testing.T) {
	// The eccentricity variant of the α-game: dynamics must converge and
	// end in a greedy equilibrium; with small α agents buy edges to cut
	// their eccentricity, with huge α the tree survives.
	rng := rand.New(rand.NewSource(14))
	for _, alpha := range []float64{0.25, 2, 1e5} {
		g := treegen.RandomTree(12, rng)
		s, err := NewStateObj(g, games.MinOwnership(g), alpha, core.Max)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, Options{})
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		if !res.Converged {
			t.Fatalf("α=%v: did not converge", alpha)
		}
		if ok, w := Check(s); !ok {
			t.Errorf("α=%v: final state not greedy equilibrium: %v", alpha, w)
		}
		if !s.G.IsConnected() {
			t.Errorf("α=%v: disconnected", alpha)
		}
		if err := s.Own.Validate(s.G); err != nil {
			t.Errorf("α=%v: ownership drifted: %v", alpha, err)
		}
	}
}

func TestMaxObjectiveSmallAlphaLowersEccentricity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := treegen.RandomTree(14, rng)
	before, _ := g.Diameter()
	s, err := NewStateObj(g, games.MinOwnership(g), 0.25, core.Max)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, Options{}); err != nil {
		t.Fatal(err)
	}
	after, _ := s.G.Diameter()
	if after > before {
		t.Errorf("diameter grew %d→%d under cheap-edge max dynamics", before, after)
	}
	// Unlike the sum version, a single buy only pays off if it removes
	// *every* eccentricity witness, so cheap-edge max equilibria can keep
	// diameter 3; they cannot keep more (distance-4+ pairs always profit).
	if after > 3 {
		t.Errorf("α=0.25 max equilibrium diameter %d, want <= 3", after)
	}
}

func TestGreedyEquilibriaAreSwapStableWhenCheckedFromOwnersSide(t *testing.T) {
	// Cross-validate with core: if a greedy equilibrium is additionally
	// stable under *both-endpoint* swaps, core.CheckSwapStable agrees.
	rng := rand.New(rand.NewSource(21))
	g := treegen.RandomTree(12, rng)
	s := mustState(t, g, 5)
	if _, err := Run(s, Options{}); err != nil {
		t.Fatal(err)
	}
	ownerOK, _ := s.OwnerSwapStable()
	if !ownerOK {
		t.Fatal("greedy equilibrium not owner-swap-stable")
	}
	fullOK, viol, err := core.CheckSwapStable(s.G, core.Sum, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fullOK {
		return // both-sided stability implies owner-side: consistent
	}
	// If full swap stability fails, the violating move must involve an
	// edge whose mover does NOT own it (otherwise OwnerSwapStable lied).
	e := graph.NewEdge(viol.Move.V, viol.Move.Drop)
	if s.Own[e] == viol.Move.V {
		t.Errorf("owner-side violation %v missed by OwnerSwapStable", viol)
	}
}
