package nash

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/treegen"
)

// The engine-backed BestResponse and OwnerSwapStable must agree with the
// pre-engine Naive* oracles: same move kind, same delta, same verdict.

func TestBestResponseAgreesWithNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(10)
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			for _, alpha := range []float64{0.25, 1, 4, 100} {
				g := treegen.RandomTree(n, rng)
				for i := 0; i < n/3; i++ {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v {
						g.AddEdge(u, v)
					}
				}
				s, err := NewStateObj(g, games.MinOwnership(g), alpha, obj)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3} {
					s.Workers = workers
					for v := 0; v < n; v++ {
						m, delta, found := s.BestResponse(v)
						nm, ndelta, nfound := s.NaiveBestResponse(v)
						if found != nfound || delta != ndelta || (found && m != nm) {
							t.Fatalf("trial %d obj=%v α=%v v=%d workers=%d: engine (%v, %v, %v) naive (%v, %v, %v)",
								trial, obj, alpha, v, workers, m, delta, found, nm, ndelta, nfound)
						}
					}
				}
			}
		}
	}
}

func TestRunTrajectoryMatchesRefreezePerTurn(t *testing.T) {
	// Run holds one incremental session across the trajectory; a reference
	// loop that re-freezes before every player turn (the pre-session
	// behavior, via the public BestResponse) must produce the identical
	// move sequence, ownership, and final graph.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(10)
		g := treegen.RandomTree(n, rng)
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			for _, alpha := range []float64{0.5, 2, 20} {
				sessState, err := NewStateObj(g.Clone(), games.MinOwnership(g), alpha, obj)
				if err != nil {
					t.Fatal(err)
				}
				refState, err := NewStateObj(g.Clone(), games.MinOwnership(g), alpha, obj)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(sessState, Options{MaxMoves: 400})
				if err != nil {
					t.Fatal(err)
				}
				// Reference: the pre-session loop, freeze per turn.
				refMoves := 0
				refConverged := false
				for refMoves < 400 {
					moved := false
					for v := 0; v < n && refMoves < 400; v++ {
						m, _, found := refState.BestResponse(v)
						if !found {
							continue
						}
						if err := refState.Apply(m); err != nil {
							t.Fatal(err)
						}
						refMoves++
						moved = true
					}
					if !moved {
						refConverged = true
						break
					}
				}
				if res.Converged != refConverged || res.Moves != refMoves {
					t.Fatalf("trial %d obj=%v α=%v: session (converged=%v moves=%d), refreeze (converged=%v moves=%d)",
						trial, obj, alpha, res.Converged, res.Moves, refConverged, refMoves)
				}
				if !sessState.G.Equal(refState.G) {
					t.Fatalf("trial %d obj=%v α=%v: final graphs differ", trial, obj, alpha)
				}
				for e, owner := range refState.Own {
					if sessState.Own[e] != owner {
						t.Fatalf("trial %d obj=%v α=%v: ownership differs at %v", trial, obj, alpha, e)
					}
				}
			}
		}
	}
}

func TestOwnerSwapStableAgreesWithNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(10)
		g := treegen.RandomTree(n, rng)
		for i := 0; i < n/4; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for _, obj := range []core.Objective{core.Sum, core.Max} {
			s, err := NewStateObj(g.Clone(), games.MinOwnership(g), 1, obj)
			if err != nil {
				t.Fatal(err)
			}
			gotOK, gotWitness := s.OwnerSwapStable()
			naiveOK, _ := s.NaiveOwnerSwapStable()
			if gotOK != naiveOK {
				t.Fatalf("trial %d obj=%v: engine stable=%v, naive stable=%v", trial, obj, gotOK, naiveOK)
			}
			if gotWitness != nil {
				// Any witness must be a strictly improving owned swap.
				if s.Own[graph.NewEdge(gotWitness.Player, gotWitness.Drop)] != gotWitness.Player {
					t.Fatalf("trial %d: witness %v drops an unowned edge", trial, gotWitness)
				}
				before := s.PlayerCost(gotWitness.Player)
				if err := s.Apply(*gotWitness); err != nil {
					t.Fatalf("trial %d: witness %v not applicable: %v", trial, gotWitness, err)
				}
				if after := s.PlayerCost(gotWitness.Player); after >= before {
					t.Fatalf("trial %d: witness %v does not improve (%v → %v)", trial, gotWitness, before, after)
				}
			}
		}
	}
}
