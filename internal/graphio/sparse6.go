package graphio

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/graph"
)

// ToSparse6 encodes g in the standard sparse6 format (":" prefix), which is
// far more compact than graph6 for the sparse graphs this library mostly
// handles (trees, tori, equilibria with m = O(n)).
func ToSparse6(g *graph.Graph) (string, error) {
	n := g.N()
	var sb strings.Builder
	sb.WriteByte(':')
	switch {
	case n <= 62:
		sb.WriteByte(byte(n + 63))
	case n <= 258047:
		sb.WriteByte(126)
		sb.WriteByte(byte((n>>12)&63) + 63)
		sb.WriteByte(byte((n>>6)&63) + 63)
		sb.WriteByte(byte(n&63) + 63)
	default:
		return "", fmt.Errorf("graphio: sparse6 n=%d too large", n)
	}
	k := bitsFor(n)

	var bitstream []bool
	writeBit := func(b bool) { bitstream = append(bitstream, b) }
	writeK := func(x int) {
		for i := k - 1; i >= 0; i-- {
			writeBit(x>>uint(i)&1 == 1)
		}
	}
	// Edges sorted by (max endpoint, min endpoint).
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].U < edges[j].U
	})
	cur := 0
	for _, e := range edges {
		u, v := e.U, e.V // u < v
		switch {
		case v == cur:
			writeBit(false)
			writeK(u)
		case v == cur+1:
			cur++
			writeBit(true)
			writeK(u)
		default:
			cur = v
			writeBit(true)
			writeK(v)
			writeBit(false)
			writeK(u)
		}
	}
	// Pad with 1-bits to a multiple of 6 (with the special n=2^k corner
	// case handled conservatively by padding a 0 first when needed).
	if k < 6 && n == (1<<uint(k)) && len(bitstream)%6 != 0 && cur < n-1 {
		writeBit(false)
	}
	for len(bitstream)%6 != 0 {
		writeBit(true)
	}
	for i := 0; i < len(bitstream); i += 6 {
		b := 0
		for t := 0; t < 6; t++ {
			b <<= 1
			if bitstream[i+t] {
				b |= 1
			}
		}
		sb.WriteByte(byte(b + 63))
	}
	return sb.String(), nil
}

// FromSparse6 decodes a sparse6 string produced by ToSparse6 (or standard
// tools).
func FromSparse6(s string) (*graph.Graph, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != ':' {
		return nil, fmt.Errorf("graphio: sparse6 must start with ':'")
	}
	data := []byte(s[1:])
	pos := 0
	var n int
	if data[pos] == 126 {
		if len(data) < 4 {
			return nil, fmt.Errorf("graphio: truncated sparse6 header")
		}
		n = int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		pos = 4
	} else {
		n = int(data[0] - 63)
		pos = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: invalid sparse6 size")
	}
	k := bitsFor(n)
	// Unpack the bitstream.
	var bitstream []bool
	for ; pos < len(data); pos++ {
		c := data[pos]
		if c < 63 || c > 126 {
			return nil, fmt.Errorf("graphio: invalid sparse6 byte %q", c)
		}
		v := c - 63
		for t := 5; t >= 0; t-- {
			bitstream = append(bitstream, v>>uint(t)&1 == 1)
		}
	}
	g := graph.New(n)
	cur := 0
	i := 0
	readK := func() (int, bool) {
		if i+k > len(bitstream) {
			return 0, false
		}
		x := 0
		for t := 0; t < k; t++ {
			x <<= 1
			if bitstream[i] {
				x |= 1
			}
			i++
		}
		return x, true
	}
	for i < len(bitstream) {
		b := bitstream[i]
		i++
		if b {
			cur++
		}
		x, ok := readK()
		if !ok {
			break // padding
		}
		if x >= n || cur >= n {
			break // padding reached
		}
		if x > cur {
			cur = x
		} else if x != cur {
			g.AddEdge(x, cur)
		}
		// x == cur with b set only moves the pointer (loop edges are
		// invalid in simple graphs and do not occur in our encoder).
	}
	return g, nil
}

// bitsFor returns ceil(log2(n)) with the sparse6 convention (>= 1).
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
