package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// WriteSparse6Lines writes one sparse6 line per graph — the standard .s6
// multi-graph file format consumed by nauty/showg and friends. It is the
// on-disk shape of the equilibrium atlas's graph corpus (one entry per
// line, metadata carried separately).
func WriteSparse6Lines(w io.Writer, graphs []*graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, g := range graphs {
		s, err := ToSparse6(g)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSparse6Lines parses a .s6 multi-graph file: one sparse6 string per
// line. Blank lines and lines starting with '#' are ignored, and the
// optional ">>sparse6<<" header emitted by some tools is tolerated (with or
// without a trailing graph on the same line).
func ReadSparse6Lines(r io.Reader) ([]*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var out []*graph.Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimPrefix(line, ">>sparse6<<")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		g, err := FromSparse6(line)
		if err != nil {
			return nil, fmt.Errorf("graphio: sparse6 line %d: %v", lineNo, err)
		}
		out = append(out, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
