package graphio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 1+rng.Intn(20), rng.Float64())
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("ReadEdgeList: %v\ninput:\n%s", err, sb.String())
		}
		if !back.Equal(g) {
			t.Fatalf("round trip mismatch (n=%d m=%d)", g.N(), g.M())
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n4 2\n0 1\n\n# another\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Errorf("parsed wrong graph: %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x y\n",
		"self loop":    "3 1\n1 1\n",
		"out of range": "3 1\n0 5\n",
		"duplicate":    "3 2\n0 1\n1 0\n",
		"edge count":   "3 2\n0 1\n",
		"bad line":     "3 1\nzero one\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestGraph6KnownValues(t *testing.T) {
	// K3 in graph6 is "Bw"; the empty graph on 0 vertices is "?".
	k3 := graph.New(3)
	k3.AddEdge(0, 1)
	k3.AddEdge(0, 2)
	k3.AddEdge(1, 2)
	s, err := ToGraph6(k3)
	if err != nil {
		t.Fatal(err)
	}
	if s != "Bw" {
		t.Errorf("graph6(K3) = %q, want \"Bw\"", s)
	}
	empty, err := ToGraph6(graph.New(0))
	if err != nil || empty != "?" {
		t.Errorf("graph6(empty) = %q, want \"?\"", empty)
	}
	// P4 (path 0-1-2-3) is "Ch" per the nauty format description.
	p4 := graph.New(4)
	p4.AddEdge(0, 1)
	p4.AddEdge(1, 2)
	p4.AddEdge(2, 3)
	s, err = ToGraph6(p4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromGraph6(s)
	if err != nil || !back.Equal(p4) {
		t.Errorf("P4 round trip failed: %q err=%v", s, err)
	}
}

func TestGraph6RoundTripQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 70) // exercise both header forms
		g := randomGraph(rng, n, float64(pRaw)/255)
		s, err := ToGraph6(g)
		if err != nil {
			return false
		}
		back, err := FromGraph6(s)
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGraph6LargeHeader(t *testing.T) {
	g := graph.New(100) // forces the 126-prefixed header
	g.AddEdge(0, 99)
	s, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 126 {
		t.Errorf("large graph did not use extended header: %q", s[:4])
	}
	back, err := FromGraph6(s)
	if err != nil || !back.Equal(g) {
		t.Error("large graph round trip failed")
	}
}

func TestFromGraph6Errors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":     "",
		"truncated": "D",    // n=5 needs body bytes
		"long":      "Bwww", // too many body bytes
		"bad byte":  "B\x01\x01",
	} {
		if _, err := FromGraph6(in); err == nil {
			t.Errorf("%s: FromGraph6(%q) accepted bad input", name, in)
		}
	}
}

func TestToDOT(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	dot := ToDOT(g, "demo", map[int]string{0: "a", 1: "b", 2: "c"})
	for _, want := range []string{"graph \"demo\"", "0 -- 1;", "1 -- 2;", "[label=\"a\"]"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	plain := ToDOT(g, "plain", nil)
	if strings.Contains(plain, "label") {
		t.Error("nil labels still produced label attributes")
	}
}

func TestInterestsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(20)
		sets := make([][]int32, n)
		for v := range sets {
			for u := 0; u < n; u++ {
				if u != v && rng.Float64() < 0.3 {
					sets[v] = append(sets[v], int32(u))
				}
			}
		}
		var sb strings.Builder
		if err := WriteInterests(&sb, sets); err != nil {
			t.Fatal(err)
		}
		got, err := ReadInterests(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: %v\ninput:\n%s", trial, err, sb.String())
		}
		if len(got) != n {
			t.Fatalf("trial %d: round-trip n=%d, want %d", trial, len(got), n)
		}
		for v := range sets {
			if len(got[v]) != len(sets[v]) {
				t.Fatalf("trial %d vertex %d: %v, want %v", trial, v, got[v], sets[v])
			}
			for i := range sets[v] {
				if got[v][i] != sets[v][i] {
					t.Fatalf("trial %d vertex %d: %v, want %v", trial, v, got[v], sets[v])
				}
			}
		}
	}
}

func TestReadInterestsMergesAndComments(t *testing.T) {
	in := "# communication interests\n4\n\n0 1 2\n0 3\n2 0\n"
	sets, err := ReadInterests(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("n = %d, want 4", len(sets))
	}
	if got := sets[0]; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("merged set of 0 = %v, want [1 2 3]", got)
	}
	if len(sets[1]) != 0 || len(sets[3]) != 0 {
		t.Fatal("unlisted vertices should have empty sets")
	}
}

func TestReadInterestsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"bad header":   "x\n",
		"two headers":  "3 4\n",
		"vertex range": "3\n5 1\n",
		"target range": "3\n1 7\n",
		"negative":     "3\n1 -2\n",
	} {
		if _, err := ReadInterests(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadInterests(%q) accepted bad input", name, in)
		}
	}
}
