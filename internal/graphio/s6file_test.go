package graphio

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func lineGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	star := graph.New(5)
	for v := 1; v < 5; v++ {
		star.AddEdge(0, v)
	}
	cycle := graph.New(6)
	for v := 0; v < 6; v++ {
		cycle.AddEdge(v, (v+1)%6)
	}
	return []*graph.Graph{star, cycle, graph.New(3)}
}

// TestSparse6LinesRoundTrip pins the .s6 multi-graph file shape the atlas
// corpus checks in: write → read reproduces every graph in order.
func TestSparse6LinesRoundTrip(t *testing.T) {
	graphs := lineGraphs(t)
	var sb strings.Builder
	if err := WriteSparse6Lines(&sb, graphs); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(graphs) {
		t.Fatalf("wrote %d lines for %d graphs", got, len(graphs))
	}
	back, err := ReadSparse6Lines(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != len(graphs) {
		t.Fatalf("read %d graphs, wrote %d", len(back), len(graphs))
	}
	for i, g := range graphs {
		if !back[i].Equal(g) {
			t.Errorf("graph %d changed across the round trip", i)
		}
	}
}

// TestReadSparse6LinesTolerance covers the accepted decorations: comments,
// blank lines, and the optional >>sparse6<< header with and without an
// inline graph.
func TestReadSparse6LinesTolerance(t *testing.T) {
	graphs := lineGraphs(t)
	var sb strings.Builder
	if err := WriteSparse6Lines(&sb, graphs); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(sb.String(), "\n"), "\n")
	decorated := "# corpus comment\n\n>>sparse6<<\n" + lines[0] +
		"# mid-file comment\n>>sparse6<<" + strings.Join(lines[1:], "")
	back, err := ReadSparse6Lines(strings.NewReader(decorated))
	if err != nil {
		t.Fatalf("read decorated: %v", err)
	}
	if len(back) != len(graphs) {
		t.Fatalf("read %d graphs from decorated file, want %d", len(back), len(graphs))
	}
	for i, g := range graphs {
		if !back[i].Equal(g) {
			t.Errorf("graph %d changed through decorations", i)
		}
	}
}

// TestReadSparse6LinesBadLine pins the error contract: a malformed line
// fails with its line number rather than being skipped.
func TestReadSparse6LinesBadLine(t *testing.T) {
	_, err := ReadSparse6Lines(strings.NewReader("# header\n:not-a-graph!!\n"))
	if err == nil {
		t.Fatal("malformed sparse6 line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err)
	}
}
