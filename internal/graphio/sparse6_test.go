package graphio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSparse6RoundTripKnown(t *testing.T) {
	cases := []*graph.Graph{
		graph.New(0),
		graph.New(1),
		graph.New(5),
	}
	path := graph.New(6)
	for v := 0; v+1 < 6; v++ {
		path.AddEdge(v, v+1)
	}
	cases = append(cases, path)
	star := graph.New(9)
	for v := 1; v < 9; v++ {
		star.AddEdge(0, v)
	}
	cases = append(cases, star)
	for i, g := range cases {
		s, err := ToSparse6(g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back, err := FromSparse6(s)
		if err != nil {
			t.Fatalf("case %d: decode %q: %v", i, s, err)
		}
		if !back.Equal(g) {
			t.Fatalf("case %d: round trip mismatch via %q", i, s)
		}
	}
}

func TestSparse6RoundTripQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 80)
		g := randomGraph(rng, n, float64(pRaw)/255*0.3)
		s, err := ToSparse6(g)
		if err != nil {
			return false
		}
		back, err := FromSparse6(s)
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSparse6PowerOfTwoSizes(t *testing.T) {
	// The padding corner case lives at n = 2^k: exercise n = 2, 4, 8, 16,
	// 32, 64 with assorted sparse graphs.
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		for trial := 0; trial < 10; trial++ {
			g := randomGraph(rng, n, 0.15)
			s, err := ToSparse6(g)
			if err != nil {
				t.Fatal(err)
			}
			back, err := FromSparse6(s)
			if err != nil || !back.Equal(g) {
				t.Fatalf("n=%d trial %d: round trip failed via %q (err=%v)", n, trial, s, err)
			}
		}
	}
}

func TestSparse6MoreCompactThanGraph6ForSparse(t *testing.T) {
	// A big sparse graph (path on 200 vertices): sparse6 must beat graph6.
	g := graph.New(200)
	for v := 0; v+1 < 200; v++ {
		g.AddEdge(v, v+1)
	}
	s6, err := ToSparse6(g)
	if err != nil {
		t.Fatal(err)
	}
	g6, err := ToGraph6(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s6) >= len(g6) {
		t.Errorf("sparse6 %d bytes >= graph6 %d bytes on a path", len(s6), len(g6))
	}
}

func TestFromSparse6Errors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"no colon":   "Bw",
		"bad header": ":~",
		"bad byte":   ":C\x01",
	} {
		if _, err := FromSparse6(in); err == nil {
			t.Errorf("%s: FromSparse6(%q) accepted bad input", name, in)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6, 65: 7}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
