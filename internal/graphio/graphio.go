// Package graphio serializes graphs: a plain edge-list text format, the
// standard graph6 compact encoding, and Graphviz DOT export. All readers
// validate input and round-trip with the writers.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/graph"
)

// WriteEdgeList writes g in the text format:
//
//	n m
//	u v        (one line per edge, sorted)
//
// Lines starting with '#' are comments on input and are never produced on
// output.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// beginning with '#' are ignored.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var g *graph.Graph
	wantEdges := 0
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("graphio: bad line %q: %v", line, err)
		}
		if g == nil {
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("graphio: bad header %q", line)
			}
			g = graph.New(a)
			wantEdges = b
			continue
		}
		if a < 0 || a >= g.N() || b < 0 || b >= g.N() || a == b {
			return nil, fmt.Errorf("graphio: invalid edge %d-%d for n=%d", a, b, g.N())
		}
		if !g.AddEdge(a, b) {
			return nil, fmt.Errorf("graphio: duplicate edge %d-%d", a, b)
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graphio: empty input")
	}
	if edges != wantEdges {
		return nil, fmt.Errorf("graphio: header declares %d edges, found %d", wantEdges, edges)
	}
	return g, nil
}

// ToGraph6 encodes g in the standard graph6 format (ASCII, one line).
// Supported for 0 <= n <= 258047.
func ToGraph6(g *graph.Graph) (string, error) {
	n := g.N()
	var sb strings.Builder
	switch {
	case n <= 62:
		sb.WriteByte(byte(n + 63))
	case n <= 258047:
		sb.WriteByte(126)
		sb.WriteByte(byte((n>>12)&63) + 63)
		sb.WriteByte(byte((n>>6)&63) + 63)
		sb.WriteByte(byte(n&63) + 63)
	default:
		return "", fmt.Errorf("graphio: graph6 n=%d too large", n)
	}
	// Upper-triangle bits in column order: for j=1..n-1, i=0..j-1.
	var bits []bool
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			bits = append(bits, g.HasEdge(i, j))
		}
	}
	for len(bits)%6 != 0 {
		bits = append(bits, false)
	}
	for k := 0; k < len(bits); k += 6 {
		b := 0
		for t := 0; t < 6; t++ {
			b <<= 1
			if bits[k+t] {
				b |= 1
			}
		}
		sb.WriteByte(byte(b + 63))
	}
	return sb.String(), nil
}

// FromGraph6 decodes a graph6 string produced by ToGraph6 (or any standard
// graph6 tool) into a graph.
func FromGraph6(s string) (*graph.Graph, error) {
	if s == "" {
		return nil, fmt.Errorf("graphio: empty graph6 string")
	}
	data := []byte(strings.TrimSpace(s))
	pos := 0
	var n int
	if data[pos] == 126 {
		if len(data) < 4 {
			return nil, fmt.Errorf("graphio: truncated graph6 header")
		}
		n = int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		pos = 4
	} else {
		n = int(data[0] - 63)
		pos = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: invalid graph6 size")
	}
	nbits := n * (n - 1) / 2
	need := (nbits + 5) / 6
	if len(data)-pos != need {
		return nil, fmt.Errorf("graphio: graph6 body has %d bytes, want %d", len(data)-pos, need)
	}
	g := graph.New(n)
	bit := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			byteIdx := pos + bit/6
			c := data[byteIdx]
			if c < 63 || c > 126 {
				return nil, fmt.Errorf("graphio: invalid graph6 byte %q", c)
			}
			if (c-63)>>(5-uint(bit%6))&1 == 1 {
				g.AddEdge(i, j)
			}
			bit++
		}
	}
	return g, nil
}

// WriteInterests writes per-vertex interest sets (the communication-
// interests game's input) in the text format:
//
//	n
//	v u1 u2 ...    (one line per vertex with a non-empty set, sorted)
//
// Lines starting with '#' are comments on input and are never produced on
// output.
func WriteInterests(w io.Writer, sets [][]int32) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", len(sets)); err != nil {
		return err
	}
	for v, set := range sets {
		if len(set) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
			return err
		}
		sorted := append([]int32(nil), set...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, u := range sorted {
			if _, err := fmt.Fprintf(bw, " %d", u); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadInterests parses the WriteInterests format: a vertex-count header,
// then one line per vertex listing its interest targets. Vertices without
// a line get an empty set; repeated lines for a vertex merge. Blank lines
// and lines beginning with '#' are ignored. Targets are validated against
// the header's vertex count; self-interest and duplicates are tolerated
// (the game layer normalizes them away).
func ReadInterests(r io.Reader) ([][]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var sets [][]int32
	n := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if n < 0 {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graphio: bad interests header %q", line)
			}
			if _, err := fmt.Sscanf(fields[0], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: bad interests header %q", line)
			}
			sets = make([][]int32, n)
			continue
		}
		var v int
		if _, err := fmt.Sscanf(fields[0], "%d", &v); err != nil {
			return nil, fmt.Errorf("graphio: bad interests line %q: %v", line, err)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graphio: interests vertex %d out of range for n=%d", v, n)
		}
		for _, f := range fields[1:] {
			var u int
			if _, err := fmt.Sscanf(f, "%d", &u); err != nil {
				return nil, fmt.Errorf("graphio: bad interests line %q: %v", line, err)
			}
			if u < 0 || u >= n {
				return nil, fmt.Errorf("graphio: interest target %d out of range for n=%d", u, n)
			}
			sets[v] = append(sets[v], int32(u))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: empty interests input")
	}
	return sets, nil
}

// ToDOT renders g as an undirected Graphviz graph. labels may be nil; when
// provided it supplies display names per vertex.
func ToDOT(g *graph.Graph, name string, labels map[int]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", name)
	if labels != nil {
		keys := make([]int, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %d [label=%q];\n", k, labels[k])
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e.U, e.V)
	}
	sb.WriteString("}\n")
	return sb.String()
}
