package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Workers: 0, Quick: true, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(all))
	}
	want := []string{"E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16",
		"E17", "E18", "E19", "E2", "E20", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Artifact == "" || e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Error("E5 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("phantom experiment found")
	}
}

// TestEveryExperimentRunsQuick executes each experiment in quick mode and
// sanity-checks the output tables. This is the harness's own integration
// test; the scientific assertions live in the per-package tests and in the
// assertions below.
func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
				out := tab.String()
				if !strings.Contains(out, "--") {
					t.Errorf("%s: table %q did not render", e.ID, tab.Title)
				}
			}
		})
	}
}

func TestE1AllEquilibriaAreStars(t *testing.T) {
	e, _ := ByID("E1")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "yes" {
			t.Errorf("n=%s: sum-equilibrium trees are not all stars", row[0])
		}
	}
	// Dynamics table: all trials converge to a star.
	for _, row := range tables[1].Rows {
		if row[2] != row[1] || row[3] != row[1] {
			t.Errorf("dynamics row %v: not all trials converged to stars", row)
		}
	}
}

func TestE2MaxDiameterAtMost3(t *testing.T) {
	e, _ := ByID("E2")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] > "3" {
			t.Errorf("n=%s: max-equilibrium tree diameter %s > 3", row[0], row[3])
		}
	}
	// Family table: (1,1) and (1,2) rejected, others accepted.
	for _, row := range tables[1].Rows {
		wantEq := !(row[0] == "1")
		if (row[3] == "yes") != wantEq {
			t.Errorf("double star (%s,%s): equilibrium=%s unexpected", row[0], row[1], row[3])
		}
	}
}

func TestE3PaperGraphFailsRepairedHolds(t *testing.T) {
	e, _ := ByID("E3")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if rows[0][5] != "no" {
		t.Error("paper Fig3 unexpectedly verified as sum equilibrium")
	}
	for _, row := range rows[1:] {
		if row[5] != "yes" {
			t.Errorf("repaired witness %s not an equilibrium", row[0])
		}
	}
}

func TestE5TorusPredicatesHold(t *testing.T) {
	e, _ := ByID("E5")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[4] != "yes" || row[5] != "yes" {
			t.Errorf("torus k=%s: stability predicates failed: %v", row[0], row)
		}
		if row[7] == "exhaustive" && row[6] != "yes" {
			t.Errorf("torus k=%s: not a max equilibrium", row[0])
		}
	}
}

func TestE7SpreadBound(t *testing.T) {
	e, _ := ByID("E7")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "yes" {
			t.Errorf("Lemma 2 violated on %s: %v", row[0], row)
		}
	}
	for _, row := range tables[1].Rows {
		if row[2] != "0" && row[2] != "1" {
			t.Errorf("Lemma 3 violated on %s: %v far components", row[0], row[2])
		}
	}
}

func TestE10AlphaIndependence(t *testing.T) {
	e, _ := ByID("E10")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[2] != "0" {
			t.Errorf("swap delta depends on α for %s: discrepancy %s", row[0], row[2])
		}
	}
}

func TestE11NoPaperViolations(t *testing.T) {
	e, _ := ByID("E11")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] == "yes" && row[2] != "yes" {
			t.Errorf("Lemma 10 fails on an equilibrium: %v", row)
		}
	}
	for _, row := range tables[1].Rows {
		if row[5] != "yes" {
			t.Errorf("ball-growth inequality fails: %v", row)
		}
	}
}

func TestE12GreedyEquilibriaOwnerSwapStable(t *testing.T) {
	e, _ := ByID("E12")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] == "yes" && row[7] != "yes" {
			t.Errorf("α=%s: converged but not owner-swap-stable", row[0])
		}
	}
}

func TestE13SeparationPositive(t *testing.T) {
	e, _ := ByID("E13")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// First row is the star-of-paths: pairwise mass must exceed the
	// per-vertex mass by a wide margin.
	row := tables[0].Rows[0]
	if row[5][0] == '-' {
		t.Errorf("star-of-paths separation not positive: %v", row)
	}
}

func TestE14ExactlyOneSumClass(t *testing.T) {
	e, _ := ByID("E14")
	tables, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] != "1" {
			t.Errorf("n=%s: %s sum-equilibrium classes, want exactly 1 (the star)", row[0], row[1])
		}
		if row[2] != row[3] {
			t.Errorf("n=%s: %s max classes, expected %s", row[0], row[2], row[3])
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	var sb strings.Builder
	if err := RunAll(&sb, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, "### "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}
