package experiments

import (
	"fmt"

	"repro/internal/cayley"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/uniformity"
)

func init() {
	register(Experiment{
		ID:       "E9",
		Artifact: "Theorem 15 + Conjecture 14",
		Title:    "Distance uniformity of Abelian Cayley graphs and the lg n/lg(1/ε) bound",
		Run:      runE9,
	})
}

// cayleyCase builds one named Cayley graph.
type cayleyCase struct {
	name string
	mods []int
	gens [][]int
}

func cayleyCases(quick bool) []cayleyCase {
	n := 64
	if quick {
		n = 32
	}
	complete := func(n int) cayleyCase {
		var gens [][]int
		for s := 1; s < n; s++ {
			gens = append(gens, []int{s})
		}
		return cayleyCase{fmt.Sprintf("K%d = Cay(Z_%d, all)", n, n), []int{n}, gens}
	}
	cases := []cayleyCase{
		complete(n),
		{fmt.Sprintf("C%d = Cay(Z_%d, ±1)", n, n), []int{n}, [][]int{{1}, {n - 1}}},
		{fmt.Sprintf("circulant(Z_%d, ±1, ±5)", n), []int{n}, [][]int{{1}, {n - 1}, {5}, {n - 5}}},
		{"hypercube Q6 = Cay(Z_2^6, units)", []int{2, 2, 2, 2, 2, 2},
			[][]int{{1, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0}, {0, 0, 1, 0, 0, 0},
				{0, 0, 0, 1, 0, 0}, {0, 0, 0, 0, 1, 0}, {0, 0, 0, 0, 0, 1}}},
		{"torus component = Cay(Z_12², diag)", []int{12, 12},
			[][]int{{1, 1}, {11, 11}, {1, 11}, {11, 1}}},
	}
	if quick {
		cases = cases[:3]
	}
	return cases
}

func runE9(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable(
		"Theorem 15: ε-distance-uniformity vs diameter for Abelian Cayley graphs",
		"graph", "n", "diameter", "best r", "ε", "bound 2r+2 (thm 15)", "ε<1/4 ⇒ bound holds?")
	growth := stats.NewTable(
		"Sumset growth |iS| and the Plünnecke consequence |qS| ≤ |pS|^{q/p}",
		"graph", "|1S|..|6S|", "violations")

	for _, c := range cayleyCases(cfg.Quick) {
		grp, err := cayley.NewGroup(c.mods...)
		if err != nil {
			return nil, err
		}
		cg, err := grp.CayleyGraph(c.gens)
		if err != nil {
			return nil, err
		}
		comp := componentOfZero(cg)
		m := comp.AllPairsParallel(cfg.Workers)
		prof, err := uniformity.Analyze(m)
		if err != nil {
			return nil, err
		}
		diam, _ := m.Diameter()
		bound := cayley.Theorem15Bound(comp.N(), prof.Epsilon)
		holds := "n/a (ε ≥ 1/4)"
		if prof.Epsilon < 0.25 {
			holds = boolMark(float64(diam) <= bound)
		}
		tab.Add(c.name, comp.N(), diam, prof.R, prof.Epsilon, bound, holds)

		sizes, err := grp.SumsetSizes(c.gens, 6)
		if err != nil {
			return nil, err
		}
		growth.Add(c.name, fmt.Sprint(sizes[1:]), len(cayley.PlunneckeViolations(sizes)))
	}
	return []*stats.Table{tab, growth}, nil
}

// componentOfZero extracts the connected component of vertex 0 as a
// re-labeled graph (Cayley graphs of non-generating sets split into cosets;
// e.g. the diagonal torus lives inside Z_{2k}²).
func componentOfZero(g *graph.Graph) *graph.Graph {
	comps := g.ConnectedComponents()
	var comp []int
	for _, c := range comps {
		if len(c) > 0 && c[0] == 0 {
			comp = c
			break
		}
	}
	idx := make(map[int]int, len(comp))
	for i, v := range comp {
		idx[v] = i
	}
	out := graph.New(len(comp))
	for _, v := range comp {
		for _, u := range g.Neighbors(v) {
			if iu, ok := idx[u]; ok && idx[v] < iu {
				out.AddEdge(idx[v], iu)
			}
		}
	}
	return out
}
