package experiments

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treegen"
)

func init() {
	register(Experiment{
		ID:       "E4",
		Artifact: "Theorem 9 + Corollary 11",
		Title:    "Diameter of sum equilibria reached by dynamics vs the 2^O(√lg n) bound",
		Run:      runE4,
	})
}

// randomConnectedGraph produces a random tree plus `extra` random chords.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := treegen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func runE4(cfg Config) ([]*stats.Table, error) {
	sizes := []int{16, 32, 64, 96}
	trials := 3
	if cfg.Quick {
		sizes = []int{12, 24}
		trials = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	diamTab := stats.NewTable(
		"Sum equilibria from dynamics: measured diameter vs bounds",
		"n", "init", "trials", "equilibrium diameter (max)", "2 lg n", "2^√lg n")
	cor11 := stats.NewTable(
		"Corollary 11 check on reached equilibria: best single-edge gain ≤ 5·n·lg n",
		"n", "init", "max buy gain", "5 n lg n", "holds?")

	for _, n := range sizes {
		for _, init := range []string{"tree", "tree+chords"} {
			maxDiam := 0
			var maxGain int64
			for tr := 0; tr < trials; tr++ {
				var g *graph.Graph
				if init == "tree" {
					g = treegen.RandomTree(n, rng)
				} else {
					g = randomConnectedGraph(rng, n, n/4)
				}
				// Run the basic game through the deviation-model layer
				// explicitly (game.Swap is also the default model).
				res, err := dynamics.Run(g, dynamics.Options{
					Objective: core.Sum, Policy: dynamics.FirstImprovement,
					Model:    game.Swap{},
					MaxMoves: 20000,
				})
				if err != nil {
					return nil, err
				}
				if !res.Converged {
					continue
				}
				if d, ok := g.Diameter(); ok && d > maxDiam {
					maxDiam = d
				}
				if gain, _, _ := games.MaxBuyGain(g); gain > maxGain {
					maxGain = gain
				}
			}
			lg := math.Log2(float64(n))
			diamTab.Add(n, init, trials, maxDiam, 2*lg, math.Pow(2, math.Sqrt(lg)))
			bound := 5 * float64(n) * lg
			cor11.Add(n, init, maxGain, bound, boolMark(float64(maxGain) <= bound))
		}
	}
	return []*stats.Table{diamTab, cor11}, nil
}
