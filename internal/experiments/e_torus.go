package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E5",
		Artifact: "Theorem 12 / Figure 4",
		Title:    "The diagonal torus is a max equilibrium of diameter Θ(√n)",
		Run:      runE5,
	})
	register(Experiment{
		ID:       "E6",
		Artifact: "Section 4 generalization",
		Title:    "d-dimensional tori: diameter Θ(n^{1/d}) stable under d−1 insertions",
		Run:      runE6,
	})
}

func runE5(cfg Config) ([]*stats.Table, error) {
	exactKs := []int{2, 3, 4, 5}
	sampledKs := []int{8, 12, 16, 24}
	if cfg.Quick {
		exactKs = []int{2, 3}
		sampledKs = []int{8}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tab := stats.NewTable(
		"Diagonal torus (Figure 4): equilibrium predicates and diameter",
		"k", "n=2k²", "diameter", "√(n/2)", "insertion-stable", "deletion-critical", "max equilibrium", "mode")

	var ns, diams []float64
	for _, k := range exactKs {
		tor := constructions.NewTorus(k)
		g := tor.Graph()
		diam, _ := g.Diameter()
		ins, _, err := core.IsInsertionStable(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		del, _, err := core.IsDeletionCritical(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		eq, _, err := core.CheckMax(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		tab.Add(k, g.N(), diam, math.Sqrt(float64(g.N())/2),
			boolMark(ins), boolMark(del), boolMark(eq), "exhaustive")
		ns = append(ns, float64(g.N()))
		diams = append(diams, float64(diam))
	}
	for _, k := range sampledKs {
		tor := constructions.NewTorus(k)
		// Diameter from the closed-form oracle (validated against BFS in
		// the test suite): it is exactly k.
		diam := tor.LocalDiameter()
		insOK, _ := core.SampleInsertionStable(tor, 200, rng)
		g := tor.Graph()
		delOK, _ := core.SampleDeletionCritical(g, 100, rng)
		tab.Add(k, tor.N(), diam, math.Sqrt(float64(tor.N())/2),
			boolMark(insOK), boolMark(delOK), "-", "sampled")
		ns = append(ns, float64(tor.N()))
		diams = append(diams, float64(diam))
	}

	slope, c := stats.LogLogFit(ns, diams)
	fit := stats.NewTable(
		"Scaling fit: diameter ≈ c·n^slope (paper: Θ(√n) ⇒ slope 1/2, c = 1/√2)",
		"slope", "c", "paper slope", "paper c")
	fit.Add(slope, c, 0.5, 1/math.Sqrt2)
	return []*stats.Table{tab, fit}, nil
}

func runE6(cfg Config) ([]*stats.Table, error) {
	type dims struct{ d, k int }
	cases := []dims{{2, 4}, {3, 2}, {3, 3}, {4, 2}}
	if cfg.Quick {
		cases = []dims{{2, 3}, {3, 2}}
	}
	tab := stats.NewTable(
		"Multidimensional tori: stability under k simultaneous insertions",
		"d", "k", "n=2k^d", "diameter", "n^(1/d)", "deletion-critical", "stable insertions (≥ d−1 expected)")
	for _, c := range cases {
		mt := constructions.NewMultiTorus(c.d, c.k)
		g := mt.Graph()
		diam, _ := g.Diameter()
		del, _, err := core.IsDeletionCritical(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		// Find the largest j (up to d) with j-insertion stability; the
		// paper guarantees j >= d−1.
		stableUpTo := 0
		for j := 1; j <= c.d; j++ {
			ok, _, err := core.IsKInsertionStable(g, j, cfg.Workers)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			stableUpTo = j
		}
		tab.Add(c.d, c.k, g.N(), diam,
			math.Pow(float64(g.N()), 1/float64(c.d)),
			boolMark(del),
			fmt.Sprintf("%d (want ≥ %d)", stableUpTo, c.d-1))
	}

	trade := stats.NewTable(
		"Diameter vs agent power trade-off: n^{1/(k+1)} lower-bound family",
		"agent power k (insertions)", "construction d=k+1", "diameter as n^(1/d)")
	for _, c := range cases {
		trade.Add(c.d-1, c.d, fmt.Sprintf("k=%d at n=%d", c.k, 2*int(math.Pow(float64(c.k), float64(c.d)))))
	}
	return []*stats.Table{tab, trade}, nil
}
