package experiments

import (
	"repro/internal/atlas"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E20",
		Artifact: "Equilibrium structure at corpus scale (Nikoletseas et al.; Ehsani et al., arXiv:1111.0554; Conjecture 14)",
		Title:    "Equilibrium atlas: hunted corpus structure tables across the model zoo",
		Run:      runE20,
	})
}

// runE20 runs the atlas hunt in memory (the same deterministic search
// behind `bncg atlas hunt`; Quick selects the smoke-sized family set) and
// renders its structure tables — the per-model equilibrium envelope
// extending E18/E19 to corpus scale, the budget/diameter trade-off, and
// the Conjecture-14 uniformity evidence over the swap equilibria. Every
// tabulated row is a position certified through both checker paths.
func runE20(cfg Config) ([]*stats.Table, error) {
	c, err := atlas.Hunt(atlas.HuntConfig{
		Seed: cfg.Seed, Workers: cfg.Workers, Quick: cfg.Quick,
	})
	if err != nil {
		return nil, err
	}
	return atlas.StatsTables(c, cfg.Workers)
}
