package experiments

import (
	"fmt"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E3",
		Artifact: "Theorem 5 / Figure 3",
		Title:    "Diameter-3 sum equilibria exist (with a repaired witness)",
		Run:      runE3,
	})
}

// runE3 verifies the paper's Figure 3 construction and the repaired
// four-branch witness. The headline reproduction finding: the literal
// Figure 3 graph satisfies every structural claim (diameter 3, girth 4,
// the stated local diameters) but admits an improving swap for agent d_1,
// so it is not a sum equilibrium; the generalized construction with four
// or more branches is one, restoring Theorem 5's statement.
func runE3(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable(
		"Theorem 5 witnesses",
		"graph", "n", "m", "diameter", "girth", "sum equilibrium?", "witness / note")

	addRow := func(name string, g interface {
		N() int
		M() int
	}, diam, girth int, ok bool, note string) {
		t.Add(name, g.N(), g.M(), diam, girth, boolMark(ok), note)
	}

	fig3 := constructions.Fig3()
	d3, _ := fig3.Diameter()
	g3, _ := fig3.Girth()
	ok, viol, err := core.CheckSum(fig3, cfg.Workers)
	if err != nil {
		return nil, err
	}
	note := "as paper"
	if !ok && viol != nil {
		labels := constructions.Fig3Labels()
		note = fmt.Sprintf("improving swap: %s drops %s for %s (%d→%d)",
			labels[viol.Move.V], labels[viol.Move.Drop], labels[viol.Move.Add],
			viol.OldCost, viol.NewCost)
	}
	addRow("Fig3 (paper, 3 branches)", fig3, d3, g3, ok, note)

	groups := []int{4, 5, 6}
	if cfg.Quick {
		groups = []int{4}
	}
	for _, gr := range groups {
		g := constructions.DiameterThreeSumEquilibrium(gr)
		diam, _ := g.Diameter()
		girth, _ := g.Girth()
		ok, viol, err := core.CheckSum(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		note := "repaired witness (all-crossed matchings)"
		if !ok {
			note = fmt.Sprintf("UNEXPECTED violation: %v", viol)
		}
		addRow(fmt.Sprintf("repaired (%d branches)", gr), g, diam, girth, ok, note)
	}

	// Local diameters of Fig3 match the paper exactly (Lemma 6 applies to
	// the c vertices).
	ecc := stats.NewTable(
		"Figure 3 local diameters (paper: a,b,d → 3; c → 2)",
		"vertex class", "count", "local diameter")
	classCount := map[string]int{}
	classEcc := map[string]int{}
	labels := constructions.Fig3Labels()
	for v := 0; v < fig3.N(); v++ {
		class := labels[v][:1]
		e, _ := fig3.Eccentricity(v)
		classCount[class]++
		classEcc[class] = e
	}
	for _, class := range []string{"a", "b", "c", "d"} {
		ecc.Add(class, classCount[class], classEcc[class])
	}
	return []*stats.Table{t, ecc}, nil
}
