// Package experiments regenerates every figure and theorem-level claim of
// the paper as an executable experiment producing plain-text tables. Each
// experiment is registered with the paper artifact it reproduces; the
// harness is driven by cmd/bncg, by the root-level benchmarks (one per
// experiment), and by EXPERIMENTS.md.
//
// Experiments accept a Config whose Quick flag selects reduced instance
// sizes (used by benchmarks and CI) versus the full sizes recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Workers bounds parallelism (<= 0 means all cores).
	Workers int
	// Quick selects reduced sizes for benchmarks/CI.
	Quick bool
	// Seed drives every randomized component.
	Seed int64
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID       string // stable identifier, e.g. "E5"
	Artifact string // the paper artifact, e.g. "Theorem 12 / Figure 4"
	Title    string
	Run      func(cfg Config) ([]*stats.Table, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and renders its tables to w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		if err := RunOne(w, e, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment and renders its tables to w.
func RunOne(w io.Writer, e Experiment, cfg Config) error {
	if _, err := fmt.Fprintf(w, "\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Artifact); err != nil {
		return err
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// boolMark renders booleans compactly in tables.
func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
