package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cayley"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/uniformity"
)

func init() {
	register(Experiment{
		ID:       "E16",
		Artifact: "Conjecture 14 (evidence)",
		Title:    "Searching for high-diameter distance-almost-uniform graphs",
		Run:      runE16,
	})
}

// runE16 gathers evidence for Conjecture 14 (distance-almost-uniform graphs
// have diameter O(lg n)): sample random graphs from families that tend to
// concentrate distances — Erdős–Rényi around average degrees 6 and 10, and
// random circulants — measure the best almost-uniformity ε, and record the
// diameter of every instance achieving ε < 1/4. The conjecture predicts no
// such instance has diameter ω(lg n); the table reports the worst
// diameter/lg n ratio observed (expected: a small constant, and indeed the
// paper notes even *constructing* superconstant-diameter examples seems
// hard).
func runE16(cfg Config) ([]*stats.Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{64, 128, 256}
	trials := 4
	if cfg.Quick {
		sizes = []int{48, 96}
		trials = 2
	}

	tab := stats.NewTable(
		"Random families: almost-uniformity ε and diameter (Conjecture 14: ε<1/4 ⇒ diam = O(lg n))",
		"family", "n", "instances", "min ε found", "worst diam @ ε<1/4", "lg n", "worst diam/lg n")

	worstRatio := 0.0
	qualifying := 0
	addFamily := func(name string, n int, gen func() *graph.Graph) {
		minEps := math.Inf(1)
		worstDiam := 0
		for t := 0; t < trials; t++ {
			g := gen()
			if !g.IsConnected() {
				continue
			}
			m := g.AllPairsParallel(cfg.Workers)
			prof, err := uniformity.Analyze(m)
			if err != nil {
				continue
			}
			if prof.AlmostEpsilon < minEps {
				minEps = prof.AlmostEpsilon
			}
			if prof.AlmostEpsilon < 0.25 {
				qualifying++
				if prof.Diameter > worstDiam {
					worstDiam = prof.Diameter
				}
			}
		}
		lg := math.Log2(float64(n))
		ratio := float64(worstDiam) / lg
		if ratio > worstRatio {
			worstRatio = ratio
		}
		diamCell := "-"
		if worstDiam > 0 {
			diamCell = fmt.Sprint(worstDiam)
		}
		tab.Add(name, n, trials, minEps, diamCell, lg, ratio)
	}

	for _, n := range sizes {
		for _, avgDeg := range []int{6, 10} {
			n, avgDeg := n, avgDeg
			addFamily(fmt.Sprintf("G(n, %d/n)", avgDeg), n, func() *graph.Graph {
				g := graph.New(n)
				p := float64(avgDeg) / float64(n)
				for u := 0; u < n; u++ {
					for v := u + 1; v < n; v++ {
						if rng.Float64() < p {
							g.AddEdge(u, v)
						}
					}
				}
				return g
			})
		}
		n := n
		addFamily("random circulant (8 jumps)", n, func() *graph.Graph {
			grp, err := cayley.NewGroup(n)
			if err != nil {
				return graph.New(1)
			}
			var gens [][]int
			for len(gens) < 8 {
				j := 1 + rng.Intn(n-1)
				gens = append(gens, []int{j}, []int{n - j})
			}
			cg, err := grp.CayleyGraph(grp.SymmetricClosure(gens))
			if err != nil {
				return graph.New(1)
			}
			return cg
		})
	}

	summary := stats.NewTable(
		"Conjecture 14 evidence summary",
		"qualifying instances (ε < 1/4)", "worst diameter/lg n", "consistent with O(lg n)?")
	summary.Add(qualifying, worstRatio, boolMark(worstRatio < 4))
	return []*stats.Table{tab, summary}, nil
}
