package experiments

import (
	"fmt"

	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/nash"
	"repro/internal/stats"
	"repro/internal/treegen"
	"repro/internal/uniformity"
)

func init() {
	register(Experiment{
		ID:       "E11",
		Artifact: "Lemma 10 + Theorem 9 inequality (1)",
		Title:    "Constructive proof machinery: cheap removable edges and ball growth",
		Run:      runE11,
	})
	register(Experiment{
		ID:       "E12",
		Artifact: "Section 1 motivation (Fabrikant et al. [9])",
		Title:    "Greedy α-game dynamics across the α grid: structure varies, swap core persists",
		Run:      runE12,
	})
	register(Experiment{
		ID:       "E13",
		Artifact: "Conjecture 14 remark",
		Title:    "Pairwise vs per-vertex distance uniformity: the star-of-paths separation",
		Run:      runE13,
	})
	register(Experiment{
		ID:       "E14",
		Artifact: "Theorems 1 & 4 (isomorphism classes)",
		Title:    "Equilibrium trees up to isomorphism: one sum family, two max families",
		Run:      runE14,
	})
	register(Experiment{
		ID:       "E17",
		Artifact: "Deviation-model extensions (Kawald–Lenzner; Cord-Landwehr et al.)",
		Title:    "One start, three deviation models: swap vs greedy add/delete/swap vs communication interests",
		Run:      runE17,
	})
}

func runE11(cfg Config) ([]*stats.Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	eqN := 40
	if cfg.Quick {
		eqN = 20
	}
	eq := treegen.RandomTree(eqN, rng)
	if _, err := dynamics.Run(eq, dynamics.Options{Objective: core.Sum, Policy: dynamics.FirstImprovement}); err != nil {
		return nil, err
	}

	lemma := stats.NewTable(
		"Lemma 10 at every vertex: small diameter or a cheap removable edge nearby",
		"graph", "sum equilibrium?", "lemma 10 holds everywhere?", "note")
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"sum equilibrium (dynamics)", eq},
		{"star(32)", constructions.Star(32)},
		{"C5", constructions.Cycle(5)},
		{"K10", constructions.Complete(10)},
		{"path(40) [control]", constructions.Path(40)},
		{"C64 [control]", constructions.Cycle(64)},
	}
	if cfg.Quick {
		cases = cases[:4]
	}
	for _, c := range cases {
		isEq, _, err := core.CheckSum(c.g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		holds, at, err := core.Lemma10CheckAll(c.g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		note := "consistent"
		if isEq && !holds {
			note = fmt.Sprintf("PAPER VIOLATION at vertex %d", at)
		} else if !isEq && !holds {
			note = "fails, but not an equilibrium (allowed)"
		}
		lemma.Add(c.name, boolMark(isEq), boolMark(holds), note)
	}

	balls := stats.NewTable(
		"Theorem 9 inequality (1): B_4k > n/2 or B_4k ≥ (k/20 lg n)·B_k",
		"graph", "k", "min B_k", "min B_4k", "factor k/(20 lg n)", "holds?")
	growthCases := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus k=8", constructions.NewTorus(8).Graph()},
		{"grid 10x10", constructions.Grid(10, 10)},
		{"C64", constructions.Cycle(64)},
	}
	if cfg.Quick {
		growthCases = growthCases[:2]
	}
	for _, c := range growthCases {
		m := c.g.AllPairsParallel(cfg.Workers)
		for _, p := range core.BallGrowth(m) {
			balls.Add(c.name, p.K, p.BK, p.B4K, p.Factor, boolMark(p.Holds))
		}
	}
	return []*stats.Table{lemma, balls}, nil
}

func runE12(cfg Config) ([]*stats.Table, error) {
	n := 16
	alphas := []float64{0.5, 1, 2, 4, 8, 32, 256}
	if cfg.Quick {
		n = 10
		alphas = []float64{0.5, 2, 32}
	}
	tab := stats.NewTable(
		fmt.Sprintf("Greedy α-game best-response dynamics from one random tree (n=%d)", n),
		"α", "converged", "moves", "final m", "final diameter", "social cost",
		"PoA proxy", "owner-swap-stable")
	for _, alpha := range alphas {
		rng := rand.New(rand.NewSource(cfg.Seed)) // same start for every α
		g := treegen.RandomTree(n, rng)
		st, err := nash.NewState(g, games.MinOwnership(g), alpha)
		if err != nil {
			return nil, err
		}
		res, err := nash.Run(st, nash.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		diam, _ := st.G.Diameter()
		ownerStable, _ := st.OwnerSwapStable()
		tab.Add(alpha, boolMark(res.Converged), res.Moves, st.G.M(), diam,
			st.SocialCost(), games.PriceOfAnarchyProxy(st.G, alpha),
			boolMark(ownerStable))
	}
	return []*stats.Table{tab}, nil
}

func runE13(cfg Config) ([]*stats.Table, error) {
	spokes, pathLen, blob := 8, 6, 12
	if cfg.Quick {
		spokes, pathLen, blob = 6, 4, 8
	}
	tab := stats.NewTable(
		"Star-of-paths: pairwise concentration vs per-vertex uniformity",
		"graph", "n", "diameter",
		"pair fraction @r±1", "per-vertex almost-ε", "separation")
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{fmt.Sprintf("star-of-paths(%d,%d,%d)", spokes, pathLen, blob),
			constructions.StarOfPaths(spokes, pathLen, blob)},
		{"torus k=6", constructions.NewTorus(6).Graph()},
		{"hypercube Q7", constructions.Hypercube(7)},
	}
	if cfg.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		m := c.g.AllPairsParallel(cfg.Workers)
		pairs, err := uniformity.AnalyzePairs(m)
		if err != nil {
			return nil, err
		}
		prof, err := uniformity.Analyze(m)
		if err != nil {
			return nil, err
		}
		diam, _ := m.Diameter()
		// The separation: pairwise mass is high while per-vertex mass
		// (1 − almost-ε) is low for the star-of-paths.
		sep := pairs.AlmostFraction - (1 - prof.AlmostEpsilon)
		tab.Add(c.name, c.g.N(), diam, pairs.AlmostFraction,
			prof.AlmostEpsilon, sep)
	}
	return []*stats.Table{tab}, nil
}

// runE17 drives one random tree through every deviation model of the game
// layer: the paper's swap game, greedy add/delete/swap at two edge costs,
// and communication interests at two densities. Each run goes through
// dynamics.Run's model-generic driver and is re-certified by a fresh
// instance of the model — the end-to-end path the CLI's -model flag uses.
// The swap and greedy rows converge; the interests rows may exhaust the
// budget instead, reproducing the headline phenomenon of Cord-Landwehr et
// al. that interest-restricted swap games can lack equilibria entirely
// (improving moves may disconnect uninterested agents and cycle forever —
// visible here as a non-converged row with InfCost social cost).
func runE17(cfg Config) ([]*stats.Table, error) {
	n := 24
	if cfg.Quick {
		n = 14
	}
	type entry struct {
		label string
		model game.Model
	}
	irng := rand.New(rand.NewSource(cfg.Seed + 1))
	cases := []entry{
		{"swap", game.Swap{}},
		{"greedy α=1", game.Greedy{EdgeCost: 1}},
		{"greedy α=4", game.Greedy{EdgeCost: 4}},
		{"interests p=0.3", game.RandomInterests(n, 0.3, irng)},
		{"interests p=0.7", game.RandomInterests(n, 0.7, irng)},
	}
	tab := stats.NewTable(
		fmt.Sprintf("Move dynamics across deviation models from one random tree (n=%d, first-improvement, sum)", n),
		"model", "converged", "moves", "sweeps", "final m", "final diameter",
		"social cost", "certified stable")
	for _, c := range cases {
		rng := rand.New(rand.NewSource(cfg.Seed)) // same start for every model
		g := treegen.RandomTree(n, rng)
		res, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: dynamics.FirstImprovement,
			Model: c.model, Workers: cfg.Workers, MaxMoves: 2000,
		})
		if err != nil {
			return nil, err
		}
		inst := c.model.New(g, cfg.Workers)
		stable, _, err := inst.CheckStable(core.Sum)
		if err != nil {
			return nil, err
		}
		diam, _ := g.Diameter()
		tab.Add(c.label, boolMark(res.Converged), res.Moves, res.Sweeps,
			g.M(), diam, inst.SocialCost(core.Sum), boolMark(stable))
	}
	return []*stats.Table{tab}, nil
}

func runE14(cfg Config) ([]*stats.Table, error) {
	maxN := 7
	if cfg.Quick {
		maxN = 6
	}
	tab := stats.NewTable(
		"Equilibrium trees up to isomorphism (Theorem 1: {star}; Theorem 4: {star, double stars})",
		"n", "sum-eq classes", "max-eq classes", "expected max classes")
	for n := 4; n <= maxN; n++ {
		var sumEqs, maxEqs []*graph.Graph
		treegen.AllTrees(n, func(t *graph.Graph) bool {
			if ok, _, _ := core.CheckSum(t, 1); ok {
				sumEqs = append(sumEqs, t.Clone())
			}
			if ok, _, _ := core.CheckMax(t, 1); ok {
				maxEqs = append(maxEqs, t.Clone())
			}
			return true
		})
		// Expected max classes: the star plus one class per unordered pair
		// (l, r) with l, r >= 2, l+r = n-2.
		expected := 1
		for l := 2; 2*l <= n-2; l++ {
			if n-2-l >= 2 {
				expected++
			}
		}
		tab.Add(n, iso.CountClasses(sumEqs), iso.CountClasses(maxEqs), expected)
	}
	return []*stats.Table{tab}, nil
}
