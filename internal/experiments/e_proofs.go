package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treegen"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Artifact: "Proofs of Theorem 1 and Lemma 2",
		Title:    "Executable proofs: the constructed improving moves verified exhaustively",
		Run:      runE15,
	})
}

func runE15(cfg Config) ([]*stats.Table, error) {
	maxN := 8
	if cfg.Quick {
		maxN = 6
	}
	thm1 := stats.NewTable(
		"Theorem 1 proof: on every tree of diameter ≥ 3 the constructed swap strictly improves",
		"n", "trees", "diameter ≥ 3", "witness improves", "witness fails")
	for n := 4; n <= maxN; n++ {
		var applicable, improves, fails uint64
		treegen.AllTrees(n, func(t *graph.Graph) bool {
			m, err := core.Theorem1Witness(t)
			if errors.Is(err, core.ErrNotApplicable) {
				return true
			}
			if err != nil {
				fails++
				return true
			}
			applicable++
			before := core.SumCost(t, m.V)
			if core.EvaluateMove(t, m, core.Sum) < before {
				improves++
			} else {
				fails++
			}
			return true
		})
		thm1.Add(n, treegen.Count(n), applicable, improves, fails)
	}

	lemma2 := stats.NewTable(
		"Lemma 2 proof: whenever ecc spread ≥ 2, the parent-edge swap strictly improves",
		"instances", "applicable (spread ≥ 2)", "witness improves", "witness fails")
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 300
	if cfg.Quick {
		trials = 80
	}
	var applicable, improves, fails int
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(24)
		g := treegen.RandomTree(n, rng)
		for extra := rng.Intn(4); extra > 0; extra-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		m, err := core.Lemma2Witness(g)
		if errors.Is(err, core.ErrNotApplicable) {
			continue
		}
		if err != nil {
			fails++
			continue
		}
		applicable++
		before := core.MaxCost(g, m.V)
		if core.EvaluateMove(g, m, core.Max) < before {
			improves++
		} else {
			fails++
		}
	}
	lemma2.Add(trials, applicable, improves, fails)
	if fails > 0 {
		return nil, fmt.Errorf("experiments: E15 found %d failing proof witnesses", fails)
	}
	return []*stats.Table{thm1, lemma2}, nil
}
