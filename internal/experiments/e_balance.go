package experiments

import (
	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E7",
		Artifact: "Lemmas 2–3",
		Title:    "Local-diameter balance in max equilibria (spread ≤ 1)",
		Run:      runE7,
	})
}

func runE7(cfg Config) ([]*stats.Table, error) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star(9)", constructions.Star(9)},
		{"double star(2,2)", constructions.DoubleStar(2, 2)},
		{"double star(3,4)", constructions.DoubleStar(3, 4)},
		{"K6", constructions.Complete(6)},
		{"torus k=3", constructions.NewTorus(3).Graph()},
		{"torus k=4", constructions.NewTorus(4).Graph()},
		{"C5", constructions.Cycle(5)},
		// Non-equilibria for contrast: the lemma does not constrain them.
		{"path(9)", constructions.Path(9)},
		{"broom(4,3)", constructions.Broom(4, 3)},
	}
	tab := stats.NewTable(
		"Lemma 2: in max equilibria the local diameters differ by ≤ 1",
		"graph", "max equilibrium?", "ecc spread", "lemma 2 satisfied?")
	for _, c := range cases {
		eq, _, err := core.CheckMax(c.g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		spread, err := core.LocalDiameterSpread(c.g)
		if err != nil {
			return nil, err
		}
		holds := !eq || spread <= 1
		tab.Add(c.name, boolMark(eq), spread, boolMark(holds))
	}

	// Lemma 3: a cut vertex of a max equilibrium has at most one component
	// reaching distance > 1. Verify on the max-equilibrium instances.
	cut := stats.NewTable(
		"Lemma 3: components at distance > 1 across cut vertices of max equilibria",
		"graph", "cut vertices", "max far components (want ≤ 1)")
	for _, c := range cases {
		eq, _, err := core.CheckMax(c.g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		if !eq {
			continue
		}
		cuts := c.g.CutVertices()
		worst := 0
		for _, v := range cuts {
			far := farComponents(c.g, v)
			if far > worst {
				worst = far
			}
		}
		cut.Add(c.name, len(cuts), worst)
	}
	return []*stats.Table{tab, cut}, nil
}

// farComponents counts connected components of G−v containing a vertex at
// distance > 1 from v (in G).
func farComponents(g *graph.Graph, v int) int {
	h := graph.New(g.N()) // copy without v's edges; v becomes isolated
	for _, e := range g.Edges() {
		if e.U != v && e.V != v {
			h.AddEdge(e.U, e.V)
		}
	}
	count := 0
	for _, comp := range h.ConnectedComponents() {
		if len(comp) == 1 && comp[0] == v {
			continue
		}
		far := false
		for _, u := range comp {
			if !g.HasEdge(v, u) && u != v {
				far = true
				break
			}
		}
		if far {
			count++
		}
	}
	return count
}
