package experiments

import (
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treegen"
	"repro/internal/uniformity"
)

func init() {
	register(Experiment{
		ID:       "E8",
		Artifact: "Theorem 13",
		Title:    "Power-graph reduction to distance-(almost-)uniform graphs",
		Run:      runE8,
	})
}

func runE8(cfg Config) ([]*stats.Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// A sum equilibrium reached by dynamics, plus structured high-diameter
	// graphs exercising the reduction.
	eqN := 48
	if cfg.Quick {
		eqN = 24
	}
	eqG := treegen.RandomTree(eqN, rng)
	if _, err := dynamics.Run(eqG, dynamics.Options{Objective: core.Sum, Policy: dynamics.FirstImprovement}); err != nil {
		return nil, err
	}

	cycleN, torusK := 64, 8
	if cfg.Quick {
		cycleN, torusK = 32, 5
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"sum equilibrium (dynamics)", eqG},
		{"cycle", constructions.Cycle(cycleN)},
		{"torus", constructions.NewTorus(torusK).Graph()},
		{"hypercube Q8", constructions.Hypercube(8)},
		{"grid 8x8", constructions.Grid(8, 8)},
	}
	if cfg.Quick {
		cases = cases[:3]
	}

	tab := stats.NewTable(
		"Theorem 13 reduction: input diameter vs power-graph diameter and ε",
		"graph", "n", "diam", "middle interval", "x", "power diam",
		"almost-ε", "exact-ε", "uniform mode?")
	beta := 0.15
	for _, c := range cases {
		red, err := uniformity.Reduce(c.g, beta, cfg.Workers)
		if err != nil {
			return nil, err
		}
		tab.Add(c.name, c.g.N(), red.InputDiam,
			stats.FormatFloat(float64(red.Lo))+"–"+stats.FormatFloat(float64(red.Hi)),
			red.X, red.PowerDiam,
			red.Profile.AlmostEpsilon, red.Profile.Epsilon, boolMark(red.Uniform))
	}

	skew := stats.NewTable(
		"Skew triples (d(a,c) > p·lg n + d(a,b)): equilibria are nearly skew-free",
		"graph", "p", "skew fraction")
	for _, c := range cases {
		m := c.g.AllPairsParallel(cfg.Workers)
		for _, p := range []float64{0.5, 1, 2} {
			var frac float64
			if c.g.N() <= 70 {
				frac = uniformity.SkewFractionExact(m, p)
			} else {
				frac = uniformity.SkewFractionSampled(m, p, 30000, rng)
			}
			skew.Add(c.name, p, frac)
		}
	}
	return []*stats.Table{tab, skew}, nil
}
