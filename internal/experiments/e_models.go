package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treegen"
)

func init() {
	register(Experiment{
		ID:       "E18",
		Artifact: "Bounded-budget extension (Ehsani et al., arXiv:1111.0554)",
		Title:    "Budget sweep: equilibrium diameter vs per-vertex edge budget k on paths and trees",
		Run:      runE18,
	})
	register(Experiment{
		ID:       "E19",
		Artifact: "Deviation-model extensions (incl. de la Haye et al., arXiv:2502.06561)",
		Title:    "Cross-model equilibrium structure: one start, five deviation models",
		Run:      runE19,
	})
}

// runE18 sweeps the bounded-budget model's uniform budget k over path and
// random-tree starts: sum best-response dynamics, final structure, and
// certification. The headline is the budget/diameter trade-off of the
// bounded-budget literature — the unbudgeted game collapses trees to the
// diameter-2 star, but the star needs a degree-(n−1) hub, so as k shrinks
// the reachable equilibria get deeper (and at k = 2 a path freezes
// entirely: every interior target is full).
func runE18(cfg Config) ([]*stats.Table, error) {
	n := 24
	if cfg.Quick {
		n = 14
	}
	budgets := []int{2, 3, 4, 6, n - 1}
	if cfg.Quick {
		budgets = []int{2, 3, n - 1}
	}
	starts := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"path", func() *graph.Graph { return constructions.Path(n) }},
		{"tree", func() *graph.Graph {
			rng := rand.New(rand.NewSource(cfg.Seed))
			return treegen.RandomTree(n, rng)
		}},
	}
	tab := stats.NewTable(
		fmt.Sprintf("Bounded-budget sum best response (n=%d): smaller budgets force deeper equilibria", n),
		"start", "k", "converged", "moves", "final diameter", "max degree",
		"social cost", "certified stable")
	for _, st := range starts {
		for _, k := range budgets {
			g := st.mk()
			model := game.Budget{K: k}
			res, err := dynamics.Run(g, dynamics.Options{
				Objective: core.Sum, Policy: dynamics.BestResponse,
				Model: model, Workers: cfg.Workers, MaxMoves: 4000,
			})
			if err != nil {
				return nil, err
			}
			inst := model.New(g, cfg.Workers)
			stable, _, err := inst.CheckStable(core.Sum)
			if err != nil {
				return nil, err
			}
			diam, _ := g.Diameter()
			tab.Add(st.name, k, boolMark(res.Converged), res.Moves, diam,
				g.MaxDegree(), inst.SocialCost(core.Sum), boolMark(stable))
		}
	}
	return []*stats.Table{tab}, nil
}

// runE19 drives one random tree through every deviation model of the game
// layer under sum best response and tabulates the structure the models
// select: the swap game collapses to the star, the budget game stops at a
// bounded-degree tree, the greedy game trades edges against distance, the
// interests game serves its interest sets (possibly disconnecting the
// rest — an InfCost social cost with a certified-stable verdict is legal),
// and the 2-neighborhood game maximizes |N₂| with no distance pressure
// beyond two hops. Every converged row is re-certified by a fresh instance
// of its model.
func runE19(cfg Config) ([]*stats.Table, error) {
	n := 24
	if cfg.Quick {
		n = 14
	}
	irng := rand.New(rand.NewSource(cfg.Seed + 1))
	cases := []struct {
		label string
		model game.Model
	}{
		{"swap", game.Swap{}},
		{"greedy α=2", game.Greedy{EdgeCost: 2}},
		{"interests p=0.3", game.RandomInterests(n, 0.3, irng)},
		{"budget k=3", game.Budget{K: 3}},
		{"2-neighborhood", game.TwoNeighborhood{}},
	}
	tab := stats.NewTable(
		fmt.Sprintf("Equilibrium structure across all five deviation models (n=%d, best-response, sum)", n),
		"model", "converged", "moves", "final m", "diameter", "max deg",
		"social cost", "certified stable")
	for _, c := range cases {
		rng := rand.New(rand.NewSource(cfg.Seed)) // same start for every model
		g := treegen.RandomTree(n, rng)
		res, err := dynamics.Run(g, dynamics.Options{
			Objective: core.Sum, Policy: dynamics.BestResponse,
			Model: c.model, Workers: cfg.Workers, MaxMoves: 2000,
		})
		if err != nil {
			return nil, err
		}
		inst := c.model.New(g, cfg.Workers)
		stable, _, err := inst.CheckStable(core.Sum)
		if err != nil {
			return nil, err
		}
		diam, connected := g.Diameter()
		diamCell := fmt.Sprint(diam)
		if !connected {
			diamCell = "∞"
		}
		tab.Add(c.label, boolMark(res.Converged), res.Moves, g.M(), diamCell,
			g.MaxDegree(), inst.SocialCost(core.Sum), boolMark(stable))
	}
	return []*stats.Table{tab}, nil
}
