package experiments

import (
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treegen"
)

func init() {
	register(Experiment{
		ID:       "E1",
		Artifact: "Theorem 1 / Figure 1",
		Title:    "Sum-equilibrium trees are exactly the stars (diameter 2)",
		Run:      runE1,
	})
	register(Experiment{
		ID:       "E2",
		Artifact: "Theorem 4 / Figure 2",
		Title:    "Max-equilibrium trees have diameter at most 3 (stars and double stars)",
		Run:      runE2,
	})
}

// isStar reports whether t is a star (every tree on <= 3 vertices counts).
func isStar(t *graph.Graph) bool {
	if t.N() <= 3 {
		return true
	}
	return t.MaxDegree() == t.N()-1
}

func runE1(cfg Config) ([]*stats.Table, error) {
	maxN := 7
	if cfg.Quick {
		maxN = 6
	}
	enum := stats.NewTable(
		"Exhaustive check over all labeled trees (Prüfer enumeration)",
		"n", "trees", "sum-equilibria", "all stars?", "max eq diameter")
	for n := 3; n <= maxN; n++ {
		var eq, maxDiam int
		allStars := true
		treegen.AllTrees(n, func(t *graph.Graph) bool {
			ok, _, err := core.CheckSum(t, 1)
			if err != nil {
				return false
			}
			if ok {
				eq++
				if !isStar(t) {
					allStars = false
				}
				if d, _ := t.Diameter(); d > maxDiam {
					maxDiam = d
				}
			}
			return true
		})
		enum.Add(n, treegen.Count(n), eq, boolMark(allStars), maxDiam)
	}

	dyn := stats.NewTable(
		"Sum swap dynamics from uniform random trees (best response)",
		"n", "trials", "converged", "reached star", "moves (mean)")
	sizes := []int{8, 16, 32, 64}
	trials := 5
	if cfg.Quick {
		sizes = []int{8, 16}
		trials = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		converged, stars, totalMoves := 0, 0, 0
		for tr := 0; tr < trials; tr++ {
			g := treegen.RandomTree(n, rng)
			res, err := dynamics.Run(g, dynamics.Options{
				Objective: core.Sum, Policy: dynamics.BestResponse,
				Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			if res.Converged {
				converged++
				if d, _ := g.Diameter(); d <= 2 {
					stars++
				}
			}
			totalMoves += res.Moves
		}
		dyn.Add(n, trials, converged, stars, float64(totalMoves)/float64(trials))
	}
	return []*stats.Table{enum, dyn}, nil
}

func runE2(cfg Config) ([]*stats.Table, error) {
	maxN := 7
	if cfg.Quick {
		maxN = 6
	}
	enum := stats.NewTable(
		"Exhaustive check over all labeled trees",
		"n", "trees", "max-equilibria", "max diameter", "diam-3 count (double stars)")
	for n := 3; n <= maxN; n++ {
		var eq, maxDiam, diam3 int
		treegen.AllTrees(n, func(t *graph.Graph) bool {
			ok, _, err := core.CheckMax(t, 1)
			if err != nil {
				return false
			}
			if ok {
				eq++
				d, _ := t.Diameter()
				if d > maxDiam {
					maxDiam = d
				}
				if d == 3 {
					diam3++
				}
			}
			return true
		})
		enum.Add(n, treegen.Count(n), eq, maxDiam, diam3)
	}

	family := stats.NewTable(
		"Double-star family (Figure 2): at least two leaves per root required",
		"left leaves", "right leaves", "diameter", "max equilibrium?")
	for _, lr := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 3}, {4, 4}} {
		g := constructions.DoubleStar(lr[0], lr[1])
		d, _ := g.Diameter()
		ok, _, err := core.CheckMax(g, cfg.Workers)
		if err != nil {
			return nil, err
		}
		family.Add(lr[0], lr[1], d, boolMark(ok))
	}
	return []*stats.Table{enum, family}, nil
}
