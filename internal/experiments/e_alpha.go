package experiments

import (
	"math"
	"math/rand"

	"repro/internal/constructions"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Artifact: "Section 1 transfer principle + price of anarchy",
		Title:    "α-independence of swaps and PoA across the α spectrum",
		Run:      runE10,
	})
}

func runE10(cfg Config) ([]*stats.Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star(16)", constructions.Star(16)},
		{"repaired diam-3 eq (4 branches)", constructions.DiameterThreeSumEquilibrium(4)},
		{"torus k=3", constructions.NewTorus(3).Graph()},
		{"C5", constructions.Cycle(5)},
		{"K8", constructions.Complete(8)},
	}
	if cfg.Quick {
		cases = cases[:3]
	}

	// Part 1: swap pricing is α-independent on every instance.
	indep := stats.NewTable(
		"Transfer principle: max |Δcost(α=0.1) − Δcost(α=10⁶)| over sampled swaps",
		"graph", "samples", "max discrepancy")
	for _, c := range cases {
		o := games.MinOwnership(c.g)
		maxDisc := 0.0
		samples := 0
		for t := 0; t < 200 && samples < 60; t++ {
			v := rng.Intn(c.g.N())
			if c.g.Degree(v) == 0 {
				continue
			}
			nbs := c.g.Neighbors(v)
			w := nbs[rng.Intn(len(nbs))]
			wp := rng.Intn(c.g.N())
			if wp == v || c.g.HasEdge(v, wp) {
				continue // genuine swaps only
			}
			dA, dB := games.SwapDelta(c.g, o, core.Move{V: v, Drop: w, Add: wp}, 0.1, 1e6)
			if d := math.Abs(dA - dB); d > maxDisc {
				maxDisc = d
			}
			samples++
		}
		indep.Add(c.name, samples, maxDisc)
	}

	// Part 2: the α-interval on which each swap equilibrium is a greedy
	// equilibrium of the α-game.
	interval := stats.NewTable(
		"Greedy-stability α-interval for swap equilibria (lo = max buy gain, hi = min delete loss)",
		"graph", "swap-stable (all α)", "α lower", "α upper")
	for _, c := range cases {
		lo, hi, ok, err := games.StableAlphaInterval(c.g, games.MinOwnership(c.g), core.Sum, cfg.Workers)
		if err != nil {
			return nil, err
		}
		loS, hiS := "-", "-"
		if ok {
			loS = stats.FormatFloat(float64(lo))
			hiS = "∞"
			if hi < core.InfCost {
				hiS = stats.FormatFloat(float64(hi))
			}
		}
		stable, _, err := core.CheckSwapStable(c.g, core.Sum, cfg.Workers)
		if err != nil {
			return nil, err
		}
		interval.Add(c.name, boolMark(stable), loS, hiS)
	}

	// Part 3: price of anarchy across α, related to diameter ([7]: PoA is
	// Θ(diameter) up to constants).
	poa := stats.NewTable(
		"Price of anarchy proxy C(G,α)/min(star, clique) across α",
		"graph", "diameter", "α=0.5", "α=2", "α=n", "α=n²")
	for _, c := range cases {
		n := float64(c.g.N())
		diam, _ := c.g.Diameter()
		poa.Add(c.name, diam,
			games.PriceOfAnarchyProxy(c.g, 0.5),
			games.PriceOfAnarchyProxy(c.g, 2),
			games.PriceOfAnarchyProxy(c.g, n),
			games.PriceOfAnarchyProxy(c.g, n*n))
	}
	return []*stats.Table{indep, interval, poa}, nil
}
